#!/usr/bin/env bash
# Runs the benchmark suite and drops one BENCH_<name>.json per binary
# into the output directory.
#
# Usage: bench/run_benchmarks.sh [build_dir] [out_dir] [bench...]
#   build_dir  cmake build tree containing bench/ (default: build)
#   out_dir    where BENCH_<name>.json files land (default: .)
#   bench...   subset of benchmarks to run, by name with or without the
#              bench_ prefix (default: every bench_* binary found)
#
# CHAINSPLIT_SKIP_BENCHES gates heavyweight benches out of the default
# sweep: a comma-separated list of names (with or without the bench_
# prefix) skipped when no explicit bench list is given. Example:
#   CHAINSPLIT_SKIP_BENCHES=partitioned_join bench/run_benchmarks.sh
# skips the 8-thread partitioned-join comparison on constrained hosts.
# Explicitly listed benches always run.
#
# The JSON is written with --benchmark_out, NOT --benchmark_format:
# several benches print an explanatory banner on stdout which would
# corrupt a stdout JSON stream.
#
# Every BENCH_*.json records hardware_concurrency in its context block
# so scaling trends (UncachedClients, UncachedParallelScc) can be
# judged against the host that produced them. The parallel-SCC > 1.3x
# gate only applies on multi-core hosts; single-core runs log a skip
# note instead of failing.
set -euo pipefail

build_dir=${1:-build}
out_dir=${2:-.}
shift $(( $# > 2 ? 2 : $# ))

if [[ ! -d "$build_dir/bench" ]]; then
  echo "error: $build_dir/bench not found; build first:" >&2
  echo "  cmake -B $build_dir -S . && cmake --build $build_dir -j" >&2
  exit 1
fi
mkdir -p "$out_dir"

benches=()
if [[ $# -gt 0 ]]; then
  for name in "$@"; do
    [[ $name == bench_* ]] || name="bench_$name"
    benches+=("$build_dir/bench/$name")
  done
else
  skip=",${CHAINSPLIT_SKIP_BENCHES:-},"
  for bin in "$build_dir"/bench/bench_*; do
    [[ -x $bin && ! -d $bin ]] || continue
    name=$(basename "$bin")
    if [[ $skip == *",$name,"* || $skip == *",${name#bench_},"* ]]; then
      echo "== $name skipped (CHAINSPLIT_SKIP_BENCHES)"
      continue
    fi
    benches+=("$bin")
  done
fi

# Online CPU count, recorded into every JSON and used to decide
# whether the multi-core scaling gate applies at all.
hw=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)

status=0
for bin in "${benches[@]}"; do
  name=$(basename "$bin")
  json_name=${name#bench_}
  # The service bench is the acceptance artifact; keep its historical
  # short name. The saturation bench is the front-end artifact.
  [[ $json_name == service_throughput ]] && json_name=service
  [[ $json_name == net_saturation ]] && json_name=net
  out="$out_dir/BENCH_${json_name}.json"
  echo "== $name -> $out"
  if ! "$bin" --benchmark_out="$out" --benchmark_out_format=json \
      --benchmark_context=hardware_concurrency="$hw"; then
    echo "error: $name failed" >&2
    rm -f "$out"  # no partial/empty JSON from a failed run
    status=1
    continue
  fi
  if [[ $json_name == service ]]; then
    # Summarize the uncached shared-lock scaling recorded in the JSON:
    # aggregate qps at 8 clients over 1 client. On a single-core host
    # the ratio hovers near 1; the JSON still records the full trend.
    awk '
      /"name": "UncachedClients\/1\// { want = 1 }
      /"name": "UncachedClients\/8\// { want = 8 }
      want && /"qps":/ {
        gsub(/[^0-9.e+-]/, "", $2); qps[want] = $2; want = 0
      }
      END {
        if (qps[1] > 0 && qps[8] > 0)
          printf "   uncached scaling: %.0f qps @1 client, %.0f qps @8 clients (%.2fx)\n", qps[1], qps[8], qps[8] / qps[1]
      }' "$out"
    # Parallel-SCC scaling: 8 strata in flight vs the stratified
    # serial schedule (arg 1). Acceptance gate (docs/perf_notes.md):
    # > 1.3x on multi-core hosts; a single core cannot overlap strata,
    # so the gate is skipped there — with a note, never silently.
    scc_ratio=$(awk '
      /"name": "UncachedParallelScc\/1\// { want = 1 }
      /"name": "UncachedParallelScc\/8\// { want = 8 }
      want && /"qps":/ {
        gsub(/[^0-9.e+-]/, "", $2); qps[want] = $2; want = 0
      }
      END {
        if (qps[1] > 0 && qps[8] > 0) printf "%.2f", qps[8] / qps[1]
      }' "$out")
    if [[ -n $scc_ratio ]]; then
      echo "   parallel-scc scaling: ${scc_ratio}x qps (8 strata vs stratified serial)"
      if (( hw <= 1 )); then
        echo "   parallel-scc gate: skipped (single-core host, hardware_concurrency=$hw)"
      elif awk -v r="$scc_ratio" 'BEGIN { exit !(r > 1.3) }'; then
        echo "   parallel-scc gate: PASS (${scc_ratio}x > 1.3x on $hw cores)"
      else
        echo "error: parallel-scc gate FAILED: ${scc_ratio}x <= 1.3x on $hw cores" >&2
        status=1
      fi
    fi
    # Summarize the tracing cost: the acceptance bound is <= 2% on the
    # uncached single-client shape (docs/perf_notes.md).
    awk '
      /"name": "TraceOverhead\// { want = 1 }
      want && /"trace_overhead_pct":/ {
        gsub(/[^0-9.e+-]/, "", $2); pct = $2; seen = 1; want = 0
      }
      END {
        if (seen)
          printf "   trace overhead: %.2f%% (traced vs untraced, 1 client)\n", pct
      }' "$out"
  fi
done
exit $status
