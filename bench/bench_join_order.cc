// E10 — ablation: statistics-aware literal ordering (access-path
// selection, [13]/[18] in the paper) in the bottom-up join kernel.
//
// The scsg answer rules join parent, same_country and the recursive
// answer relation; with the weak same_country linkage, evaluating it
// before the (selective) recursive answers multiplies the intermediate
// bindings. We compare the bound-argument heuristic against the
// estimator-driven schedule on the exact same chain-split magic plan.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/planner.h"
#include "workload/family_gen.h"

namespace chainsplit {
namespace {

void RunOrdering(benchmark::State& state, bool use_stats) {
  const int depth = static_cast<int>(state.range(0));
  double considered = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    FamilyOptions fam;
    fam.num_families = 2;
    fam.depth = depth;
    fam.fanout = 3;
    fam.num_countries = 2;
    FamilyData data = GenerateFamily(&db, fam);
    Status status = ParseProgram(ScsgProgramSource(), &db.program());
    CS_CHECK(status.ok()) << status;
    status = db.LoadProgramFacts();
    CS_CHECK(status.ok()) << status;
    PredId scsg = db.program().preds().Find("scsg", 2).value();
    Query query;
    query.goals.push_back(
        Atom{scsg, {data.query_person, db.pool().MakeVariable("Y")}});
    state.ResumeTiming();
    PlannerOptions options;
    options.force = Technique::kChainSplitMagic;
    options.use_stats_ordering = use_stats;
    auto result = EvaluateQuery(&db, query, options);
    CS_CHECK(result.ok()) << result.status();
    considered =
        static_cast<double>(result->seminaive_stats.counters.tuples_considered);
  }
  state.counters["tuples_considered"] = considered;
}

void BoundArgHeuristic(benchmark::State& state) {
  RunOrdering(state, /*use_stats=*/false);
}
void StatsOrdering(benchmark::State& state) {
  RunOrdering(state, /*use_stats=*/true);
}

BENCHMARK(BoundArgHeuristic)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{4, 5, 6}})
    ->Iterations(5);
BENCHMARK(StatsOrdering)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{4, 5, 6}})
    ->Iterations(5);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "E10 (ablation, [13]/[18]): bound-argument join ordering vs "
      "statistics-driven access-path selection on the chain-split magic "
      "scsg plan.\nExpected shape: statistics ordering joins the "
      "selective recursive answers before the weak same_country "
      "relation, touching fewer tuples.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
