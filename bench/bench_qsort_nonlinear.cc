// E6 — §4.2 / Example 4.2: the qsort nonlinear recursion.
//
// Paper claim: chain-split is a primitive technique for nonlinear
// recursions too — partition is immediately evaluable while the two
// recursive calls and the output-building append/cons are delayed. Our
// planner evaluates qsort by SLD (the compiled-chain fragment covers
// linear recursions), which performs exactly that order of work:
// expected O(N log N) average growth vs isort's O(N^2).

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/planner.h"
#include "term/list_utils.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

void RunSort(benchmark::State& state, const char* source, const char* pred) {
  const int64_t n = state.range(0);
  Database db;
  Status status = ParseProgram(source, &db.program());
  CS_CHECK(status.ok()) << status;
  status = db.LoadProgramFacts();
  CS_CHECK(status.ok()) << status;
  TermId list = RandomIntList(db.pool(), n, 0, 1000000, 11 + n);
  PredId p = db.program().preds().Find(pred, 2).value();

  double steps = 0;
  for (auto _ : state) {
    Query query;
    query.goals.push_back(Atom{p, {list, db.pool().MakeVariable("Ys")}});
    PlannerOptions options;
    options.force = Technique::kTopDown;
    auto result = EvaluateQuery(&db, query, options);
    CS_CHECK(result.ok()) << result.status();
    CS_CHECK(result->answers.size() == 1) << "sort must be deterministic";
    steps = static_cast<double>(result->topdown_stats.steps);
  }
  state.counters["sld_steps"] = steps;
  state.SetComplexityN(n);
}

void Qsort(benchmark::State& state) {
  RunSort(state, QsortProgramSource(), "qsort");
}
void IsortForComparison(benchmark::State& state) {
  RunSort(state, IsortProgramSource(), "isort");
}

BENCHMARK(Qsort)
    ->Unit(benchmark::kMillisecond)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity(benchmark::oNLogN);
BENCHMARK(IsortForComparison)
    ->Unit(benchmark::kMillisecond)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity(benchmark::oNSquared);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "E6 (Example 4.2): qsort(xs, Ys) vs isort(xs, Ys), |xs|=N, random "
      "data.\nExpected shape: qsort's SLD step count grows ~N log N; "
      "isort's grows ~N^2 — the crossover demonstrates the nonlinear "
      "recursion evaluating asymptotically faster, as in Prolog. The "
      "exact paper trace qsort([4,9,5])=[4,5,9] is pinned in "
      "paper_traces_test.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
