// E8 — §1.1: merging unshared chains is "terribly inefficient".
//
// Paper claim: evaluating a multi-chain recursion by merging its chain
// generating paths into one (and running a transitive-closure
// algorithm on the merged relation) iterates on the cross-product of
// the per-chain relations. We measure: two independent edge relations,
// (a) per-chain TC on each (the chain-split-style evaluation), vs
// (b) TC of the merged pair-graph edge relation
//     {((a,c),(b,d)) | e1(a,b), e2(c,d)}.

#include <benchmark/benchmark.h>

#include "common/strings.h"
#include "core/chain_eval.h"
#include "rel/ops.h"
#include "workload/graph_gen.h"

namespace chainsplit {
namespace {

GraphOptions Opts(int nodes, uint64_t seed, std::string_view prefix) {
  GraphOptions g;
  g.num_nodes = nodes;
  g.num_edges = nodes * 2;
  g.acyclic = true;
  g.seed = seed;
  g.node_prefix = prefix;
  return g;
}

void PerChainTc(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Database db;
  GenerateGraph(&db, "e1", Opts(nodes, 1, "a"));
  GenerateGraph(&db, "e2", Opts(nodes, 2, "b"));
  const Relation* e1 =
      db.GetRelation(db.program().preds().Find("e1", 2).value());
  const Relation* e2 =
      db.GetRelation(db.program().preds().Find("e2", 2).value());
  double tuples = 0;
  for (auto _ : state) {
    TcStats s1, s2;
    auto tc1 = TransitiveClosure(*e1, 100000, &s1);
    auto tc2 = TransitiveClosure(*e2, 100000, &s2);
    CS_CHECK(tc1.ok() && tc2.ok());
    tuples = static_cast<double>(s1.tuples + s2.tuples);
    benchmark::DoNotOptimize(tc1->size());
  }
  state.counters["tc_tuples"] = tuples;
}

void MergedChainTc(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  Database db;
  GenerateGraph(&db, "e1", Opts(nodes, 1, "a"));
  GenerateGraph(&db, "e2", Opts(nodes, 2, "b"));
  const Relation* e1 =
      db.GetRelation(db.program().preds().Find("e1", 2).value());
  const Relation* e2 =
      db.GetRelation(db.program().preds().Find("e2", 2).value());
  double tuples = 0;
  double merged_edges = 0;
  for (auto _ : state) {
    // Merge: pair-graph edges = cross product of the two edge sets,
    // with pair nodes encoded as interned pair terms.
    Relation merged(2);
    for (int64_t i = 0; i < e1->num_rows(); ++i) {
      for (int64_t j = 0; j < e2->num_rows(); ++j) {
        TermId from_args[] = {e1->row(i)[0], e2->row(j)[0]};
        TermId to_args[] = {e1->row(i)[1], e2->row(j)[1]};
        merged.Insert({db.pool().MakeCompound("pair", from_args),
                       db.pool().MakeCompound("pair", to_args)});
      }
    }
    merged_edges = static_cast<double>(merged.size());
    TcStats stats;
    auto tc = TransitiveClosure(merged, 100000, &stats);
    CS_CHECK(tc.ok());
    tuples = static_cast<double>(stats.tuples);
    benchmark::DoNotOptimize(tc->size());
  }
  state.counters["tc_tuples"] = tuples;
  state.counters["merged_edges"] = merged_edges;
}

BENCHMARK(PerChainTc)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{8, 16, 32, 64}});
BENCHMARK(MergedChainTc)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{8, 16, 32, 64}})
    ->Iterations(3);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "E8 (§1.1): per-chain TC vs merged cross-product-chain TC on two "
      "unshared random DAGs of N nodes each.\nExpected shape: per-chain "
      "work grows ~N^2 in the worst case; the merged chain's edge set "
      "alone is |e1| x |e2| ~ 4N^2 and its closure tuples grow ~N^4 — "
      "the 'terribly inefficient' plan the paper rules out.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
