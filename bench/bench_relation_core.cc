// Microbenchmark for the Relation storage core: Insert, Probe, and
// UnionWith on the arena-backed implementation versus a faithful copy
// of the historical node-based implementation (unordered_set of Tuples
// plus unordered_map postings), kept here as the in-bench baseline.
//
// Run via bench/run_benchmarks.sh; the acceptance bar for the storage
// rewrite is >= 2x on the arena/* counterparts of legacy/*.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "rel/relation.h"

namespace chainsplit {
namespace {

/// The pre-arena Relation, verbatim in behaviour: per-tuple heap nodes,
/// Tuple-keyed hash maps for indexes, materialized probe keys.
class LegacyRelation {
 public:
  explicit LegacyRelation(int arity) : arity_(arity) {}
  LegacyRelation(const LegacyRelation&) = delete;
  LegacyRelation& operator=(const LegacyRelation&) = delete;

  int arity() const { return arity_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  bool Insert(const Tuple& tuple) {
    auto [it, inserted] = set_.insert(tuple);
    if (!inserted) return false;
    rows_.push_back(&*it);
    int64_t row_id = static_cast<int64_t>(rows_.size()) - 1;
    for (Index& index : indexes_) {
      index.map[KeyAt(tuple, index.columns)].push_back(row_id);
    }
    return true;
  }

  const Tuple& row(int64_t i) const { return *rows_[i]; }

  const std::vector<int64_t>& Probe(const std::vector<int>& columns,
                                    const Tuple& key) const {
    const Index& index = GetOrBuildIndex(columns);
    auto it = index.map.find(key);
    if (it == index.map.end()) return kEmptyPostings;
    return it->second;
  }

  int64_t UnionWith(const LegacyRelation& other) {
    int64_t added = 0;
    for (int64_t i = 0; i < other.num_rows(); ++i) {
      if (Insert(other.row(i))) ++added;
    }
    return added;
  }

  void Clear() {
    set_.clear();
    rows_.clear();
    indexes_.clear();
  }

 private:
  struct Index {
    std::vector<int> columns;
    std::unordered_map<Tuple, std::vector<int64_t>, TupleHash> map;
  };

  static Tuple KeyAt(const Tuple& tuple, const std::vector<int>& columns) {
    Tuple key;
    key.reserve(columns.size());
    for (int c : columns) key.push_back(tuple[c]);
    return key;
  }

  Index& GetOrBuildIndex(const std::vector<int>& columns) const {
    for (Index& index : indexes_) {
      if (index.columns == columns) return index;
    }
    indexes_.push_back(Index{columns, {}});
    Index& index = indexes_.back();
    for (int64_t i = 0; i < num_rows(); ++i) {
      index.map[KeyAt(*rows_[i], columns)].push_back(i);
    }
    return index;
  }

  int arity_;
  std::unordered_set<Tuple, TupleHash> set_;
  std::vector<const Tuple*> rows_;
  mutable std::vector<Index> indexes_;

  static const std::vector<int64_t> kEmptyPostings;
};

const std::vector<int64_t> LegacyRelation::kEmptyPostings = {};

// Workload shape shared by every benchmark below: binary tuples with a
// skewed first column (graph-like fan-out) and ~12% duplicates, the mix
// the semi-naive delta loops produce.
inline Tuple MakeTuple(int64_t i) {
  return {static_cast<TermId>(i % 211), static_cast<TermId>(i % 7001)};
}

template <typename R>
void FillRelation(R* rel, int64_t n) {
  for (int64_t i = 0; i < n; ++i) rel->Insert(MakeTuple(i));
}

template <typename R>
void BM_Insert(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    R rel(2);
    FillRelation(&rel, n);
    benchmark::DoNotOptimize(rel.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

template <typename R>
void BM_InsertIndexed(benchmark::State& state) {
  const int64_t n = state.range(0);
  for (auto _ : state) {
    R rel(2);
    rel.Insert(MakeTuple(0));
    benchmark::DoNotOptimize(rel.Probe({0}, {0}).size());  // force the index
    FillRelation(&rel, n);
    benchmark::DoNotOptimize(rel.num_rows());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// Probe-and-consume, the evaluators' inner loop: look up a key, then
// read a column of every matching row. 211 probes sweep all n rows.
template <typename R>
void BM_Probe(benchmark::State& state) {
  const int64_t n = state.range(0);
  R rel(2);
  FillRelation(&rel, n);
  const std::vector<int> columns = {0};
  Tuple key = {0};
  rel.Probe(columns, key);  // build the index outside the timed loop
  int64_t sum = 0;
  for (auto _ : state) {
    for (TermId k = 0; k < 211; ++k) {
      key[0] = k;
      if constexpr (std::is_same_v<R, Relation>) {
        rel.ProbeEach(columns, key.data(),
                      [&](int64_t j) { sum += rel.row(j)[1]; });
      } else {
        for (int64_t j : rel.Probe(columns, key)) sum += rel.row(j)[1];
      }
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * n);
}

template <typename R>
void BM_UnionWith(benchmark::State& state) {
  const int64_t n = state.range(0);
  R half(2);
  R full(2);
  FillRelation(&half, n / 2);
  FillRelation(&full, n);
  for (auto _ : state) {
    R dst(2);
    dst.UnionWith(half);
    benchmark::DoNotOptimize(dst.UnionWith(full));  // half dup, half new
  }
  state.SetItemsProcessed(state.iterations() * (n + n / 2));
}

BENCHMARK(BM_Insert<Relation>)->Name("arena/Insert")->Arg(1 << 15)->Arg(1 << 17);
BENCHMARK(BM_Insert<LegacyRelation>)
    ->Name("legacy/Insert")
    ->Arg(1 << 15)
    ->Arg(1 << 17);
BENCHMARK(BM_InsertIndexed<Relation>)
    ->Name("arena/InsertIndexed")
    ->Arg(1 << 15)
    ->Arg(1 << 17);
BENCHMARK(BM_InsertIndexed<LegacyRelation>)
    ->Name("legacy/InsertIndexed")
    ->Arg(1 << 15)
    ->Arg(1 << 17);
BENCHMARK(BM_Probe<Relation>)->Name("arena/Probe")->Arg(1 << 16)->Arg(1 << 17);
BENCHMARK(BM_Probe<LegacyRelation>)
    ->Name("legacy/Probe")
    ->Arg(1 << 16)
    ->Arg(1 << 17);
BENCHMARK(BM_UnionWith<Relation>)
    ->Name("arena/UnionWith")
    ->Arg(1 << 14)
    ->Arg(1 << 17);
BENCHMARK(BM_UnionWith<LegacyRelation>)
    ->Name("legacy/UnionWith")
    ->Arg(1 << 14)
    ->Arg(1 << 17);

// Build cost of the partitioned join's build side (PartitionedView:
// assign + per-partition table builds + seal), single-threaded here —
// the parallel build is bench_partitioned_join's job.
void BM_PartitionedViewBuild(benchmark::State& state) {
  const int64_t n = state.range(0);
  Relation rel(2);
  FillRelation(&rel, n);
  for (auto _ : state) {
    PartitionedView view({0}, 16);
    view.AssignRows(rel);
    for (int p = 0; p < view.num_partitions(); ++p) {
      view.BuildPartition(rel, p);
    }
    view.Finish(rel);
    benchmark::DoNotOptimize(view.skew().max_rows);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// Hashed single-partition probe, the partitioned join's inner loop;
// compare against arena/Probe (the relation-wide index) at equal n.
void BM_PartitionedViewProbe(benchmark::State& state) {
  const int64_t n = state.range(0);
  Relation rel(2);
  FillRelation(&rel, n);
  PartitionedView view({0}, 16);
  view.AssignRows(rel);
  for (int p = 0; p < view.num_partitions(); ++p) view.BuildPartition(rel, p);
  view.Finish(rel);
  Relation::ProbeCounters counters;
  int64_t sum = 0;
  for (auto _ : state) {
    for (TermId k = 0; k < 211; ++k) {
      const size_t h = PartitionedView::KeyHash(&k, 1);
      view.ProbeEachHashed(rel, view.PartitionOfHash(h), &k, h, &counters,
                           [&](int64_t j) { sum += rel.row(j)[1]; });
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK(BM_PartitionedViewBuild)
    ->Name("arena/PartitionedViewBuild")
    ->Arg(1 << 16)
    ->Arg(1 << 18);
BENCHMARK(BM_PartitionedViewProbe)
    ->Name("arena/PartitionedViewProbe")
    ->Arg(1 << 16)
    ->Arg(1 << 17);

}  // namespace
}  // namespace chainsplit

BENCHMARK_MAIN();
