// E5 — §4.1 / Example 4.1: the isort nested linear recursion.
//
// Paper claim: isort is evaluated by chain-split on the outer chain
// (buffering the list elements) with the inner insert recursion as the
// delayed portion; insert itself is chain-split (insert^bbf delays the
// output cons). Cost grows O(N^2) with list length — N buffered
// levels, each delayed step running an O(N) insert. We compare the
// buffered planner plan against plain SLD and against the classic
// counting method (which re-derives instead of buffering call states).

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/counting.h"
#include "core/planner.h"
#include "core/rectify.h"
#include "term/list_utils.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

void RunIsort(benchmark::State& state, Technique technique) {
  const int64_t n = state.range(0);
  Database db;
  Status status = ParseProgram(IsortProgramSource(), &db.program());
  CS_CHECK(status.ok()) << status;
  status = db.LoadProgramFacts();
  CS_CHECK(status.ok()) << status;
  TermId list = RandomIntList(db.pool(), n, 0, 9999, 7 + n);
  PredId isort = db.program().preds().Find("isort", 2).value();

  double buffered = 0;
  for (auto _ : state) {
    Query query;
    query.goals.push_back(Atom{isort, {list, db.pool().MakeVariable("Ys")}});
    PlannerOptions options;
    options.force = technique;
    auto result = EvaluateQuery(&db, query, options);
    CS_CHECK(result.ok()) << result.status();
    CS_CHECK(result->answers.size() == 1) << "isort must be deterministic";
    buffered = static_cast<double>(result->buffered_stats.buffered_values);
  }
  state.counters["buffered"] = buffered;
  state.SetComplexityN(n);
}

void BufferedSplit(benchmark::State& state) {
  RunIsort(state, Technique::kBuffered);
}
void TopDownSld(benchmark::State& state) {
  RunIsort(state, Technique::kTopDown);
}

void CountingMethod(benchmark::State& state) {
  const int64_t n = state.range(0);
  Database db;
  Status status = ParseProgram(IsortProgramSource(), &db.program());
  CS_CHECK(status.ok()) << status;
  status = db.LoadProgramFacts();
  CS_CHECK(status.ok()) << status;
  std::vector<Rule> rectified = RectifyRules(&db.program());
  auto chain = CompileChain(db.program(), rectified,
                            db.program().preds().Find("isort", 2).value());
  CS_CHECK(chain.ok()) << chain.status();
  TermId list = RandomIntList(db.pool(), n, 0, 9999, 7 + n);
  Atom query{chain->pred, {list, db.pool().MakeVariable("Ys")}};
  std::vector<TermId> bound;
  db.pool().CollectVariables(chain->head().args[0], &bound);
  ChainPath whole = WholeBodyPath(db.pool(), *chain);
  auto split = SplitPathByFiniteness(db.program(), *chain, whole, bound);
  CS_CHECK(split.ok()) << split.status();

  double entries = 0;
  for (auto _ : state) {
    CountingStats stats;
    auto answers =
        CountingEvaluate(&db, *chain, *split, query, {}, &stats);
    CS_CHECK(answers.ok()) << answers.status();
    entries = static_cast<double>(stats.up_entries);
  }
  state.counters["up_entries"] = entries;
  state.SetComplexityN(n);
}

BENCHMARK(BufferedSplit)
    ->Unit(benchmark::kMillisecond)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity(benchmark::oNSquared);
BENCHMARK(TopDownSld)
    ->Unit(benchmark::kMillisecond)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity(benchmark::oNSquared);
BENCHMARK(CountingMethod)
    ->Unit(benchmark::kMillisecond)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity(benchmark::oNSquared);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "E5 (Example 4.1): isort(xs, Ys), |xs|=N — nested linear recursion "
      "via chain-split.\nExpected shape: all evaluators are O(N^2) (N "
      "levels x O(N) insert); buffered buffers exactly N values; the "
      "exact paper trace isort([5,7,1])=[1,5,7] is pinned in "
      "paper_traces_test.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
