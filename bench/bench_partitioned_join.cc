// Benchmark for the partitioned parallel HashJoin (rel/ops.cc) against
// the PR 1 contiguous-chunk parallel join and the serial oracle, on an
// scsg-shaped workload: one fixpoint round's delta joined against a
// chain relation whose derivations are heavily duplicated (the paper's
// same-generation programs re-derive the same pair through many
// paths), with a hot-key segment so partition skew telemetry has
// something to report.
//
// Modes run on an 8-thread pool regardless of the host's core count —
// on a single core the partitioned path's win is cache locality
// (probes grouped per partition walk ~1/P of the index structures);
// on a multi-core host partition affinity adds real parallel scaling
// on top. Acceptance bar: partitioned >= 1.3x over contiguous.
//
// Before timing anything, main() differential-checks all three modes
// for byte-identical output (contents AND row order) and aborts on
// mismatch, so a reported speedup can never come from a wrong join.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "common/thread_pool.h"
#include "rel/ops.h"
#include "rel/relation.h"

namespace chainsplit {
namespace {

// Workload shape: ~1M-row build side over 512k distinct keys. The base
// segment has fan-out 1 (a long chain); the hot segment gives 1024
// keys ~512 extra successors each (the skewed hubs of a chain-split
// graph). Outputs collapse onto ~37k distinct tuples, so the timed
// loop is probe-bound, not output-insert-bound — matching the
// semi-naive rounds where duplicates dominate.
constexpr int64_t kKeys = 1 << 19;
constexpr int64_t kHotKeys = 1 << 10;
constexpr int64_t kHotRows = 1 << 19;
constexpr int64_t kProbeRows = 1 << 19;

void BuildEdge(Relation* edge, int64_t keys, int64_t hot_rows) {
  Tuple t(2);
  for (int64_t i = 0; i < keys; ++i) {
    t[0] = static_cast<TermId>(i);
    t[1] = static_cast<TermId>(i % 4096);
    edge->Insert(t);
  }
  for (int64_t j = 0; j < hot_rows; ++j) {
    t[0] = static_cast<TermId>(j % kHotKeys);
    t[1] = static_cast<TermId>(4096 + j / kHotKeys);
    edge->Insert(t);
  }
}

void BuildDelta(Relation* delta, int64_t rows, int64_t keys) {
  Tuple t(2);
  for (int64_t i = 0; i < rows; ++i) {
    t[0] = static_cast<TermId>(i % 64);
    t[1] = static_cast<TermId>(i % keys);
    delta->Insert(t);
  }
}

struct Workload {
  Relation edge{2};
  Relation delta{2};
  JoinSpec spec{{{1, 0}}};  // delta.reached == edge.from
  std::vector<int> out_cols{0, 3};

  Workload() {
    BuildEdge(&edge, kKeys, kHotRows);
    BuildDelta(&delta, kProbeRows, kKeys);
  }
};

Workload& SharedWorkload() {
  static Workload* w = new Workload();
  return *w;
}

ThreadPool& BenchPool() {
  static ThreadPool* pool = new ThreadPool(8);
  return *pool;
}

void RunJoin(ParallelJoinMode mode, Relation* out) {
  Workload& w = SharedWorkload();
  ParallelJoinMode prev_mode = SetParallelJoinMode(mode);
  int64_t prev_rows = SetParallelJoinMinRows(1);
  HashJoin(w.delta, w.edge, w.spec, w.out_cols, out, &BenchPool());
  SetParallelJoinMode(prev_mode);
  SetParallelJoinMinRows(prev_rows);
}

void BM_Join(benchmark::State& state, ParallelJoinMode mode) {
  Workload& w = SharedWorkload();
  const PartitionedJoinTelemetry before = GetPartitionedJoinTelemetry();
  int64_t out_rows = 0;
  for (auto _ : state) {
    Relation out(2);
    RunJoin(mode, &out);
    out_rows = out.num_rows();
    benchmark::DoNotOptimize(out_rows);
  }
  const PartitionedJoinTelemetry after = GetPartitionedJoinTelemetry();
  state.SetItemsProcessed(state.iterations() * w.delta.num_rows());
  state.counters["out_rows"] = static_cast<double>(out_rows);
  state.counters["build_rows"] = static_cast<double>(w.edge.num_rows());
  // Partition-skew telemetry (zero on the non-partitioned modes): the
  // acceptance JSON reports how balanced the radix split was.
  const int64_t batches = after.batches - before.batches;
  if (batches > 0) {
    const double partitions =
        static_cast<double>(after.partitions - before.partitions) / batches;
    const double max_rows =
        static_cast<double>(after.max_partition_rows -
                            before.max_partition_rows) /
        batches;
    const double build =
        static_cast<double>(after.build_rows - before.build_rows) / batches;
    state.counters["partitions"] = partitions;
    state.counters["max_partition_rows"] = max_rows;
    state.counters["partition_skew"] =
        build > 0 ? max_rows * partitions / build : 1.0;
    state.counters["views_built"] =
        static_cast<double>(after.views_built - before.views_built);
    // View-cache effectiveness: the edge relation never moves during
    // the timed loop, so after the first build every iteration should
    // hit the keyed LRU (rel/relation.h).
    const double hits = static_cast<double>(after.view_hits - before.view_hits);
    const double misses =
        static_cast<double>(after.view_misses - before.view_misses);
    state.counters["view_hits"] = hits;
    state.counters["view_misses"] = misses;
    state.counters["view_hit_rate"] =
        hits + misses > 0 ? hits / (hits + misses) : 0.0;
  }
}

BENCHMARK_CAPTURE(BM_Join, serial, ParallelJoinMode::kSerial)
    ->Name("join/serial")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Join, contiguous, ParallelJoinMode::kContiguous)
    ->Name("join/contiguous8")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_Join, partitioned, ParallelJoinMode::kPartitioned)
    ->Name("join/partitioned8")
    ->Unit(benchmark::kMillisecond);

/// Differential check: all three modes must produce byte-identical
/// output — same tuples in the same row order.
bool OutputsIdentical() {
  Relation serial(2), contiguous(2), partitioned(2);
  RunJoin(ParallelJoinMode::kSerial, &serial);
  RunJoin(ParallelJoinMode::kContiguous, &contiguous);
  RunJoin(ParallelJoinMode::kPartitioned, &partitioned);
  for (const Relation* got : {&contiguous, &partitioned}) {
    if (got->num_rows() != serial.num_rows()) {
      std::fprintf(stderr, "join output row count mismatch: %lld vs %lld\n",
                   static_cast<long long>(got->num_rows()),
                   static_cast<long long>(serial.num_rows()));
      return false;
    }
    for (int64_t i = 0; i < serial.num_rows(); ++i) {
      if (!(got->row(i) == serial.row(i))) {
        std::fprintf(stderr, "join output differs at row %lld\n",
                     static_cast<long long>(i));
        return false;
      }
    }
  }
  return true;
}

/// Asserts the partitioned-view LRU actually caches: joining the same
/// stable build side repeatedly must build at most one view (the first
/// join) and hit the cache on every later one. Guards against a
/// regression where the cache thrashes (every join a miss) — the bug
/// this telemetry was added to catch.
bool ViewCacheHitRateHealthy() {
  const PartitionedJoinTelemetry before = GetPartitionedJoinTelemetry();
  for (int i = 0; i < 3; ++i) {
    Relation out(2);
    RunJoin(ParallelJoinMode::kPartitioned, &out);
  }
  const PartitionedJoinTelemetry after = GetPartitionedJoinTelemetry();
  const int64_t hits = after.view_hits - before.view_hits;
  const int64_t misses = after.view_misses - before.view_misses;
  if (hits < 2 || misses > 1) {
    std::fprintf(stderr,
                 "view cache thrashing: %lld hits / %lld misses over 3 "
                 "identical joins (expected >=2 hits, <=1 miss)\n",
                 static_cast<long long>(hits),
                 static_cast<long long>(misses));
    return false;
  }
  std::printf("view cache hit rate healthy: %lld hits / %lld misses\n",
              static_cast<long long>(hits), static_cast<long long>(misses));
  return true;
}

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  if (!chainsplit::OutputsIdentical()) {
    std::fprintf(stderr,
                 "FATAL: parallel join output not byte-identical to the "
                 "serial oracle; refusing to benchmark a wrong join\n");
    return 1;
  }
  std::printf("parallel join outputs byte-identical across modes\n");
  if (!chainsplit::ViewCacheHitRateHealthy()) {
    std::fprintf(stderr,
                 "FATAL: partitioned-view cache hit rate below the "
                 "acceptance bar\n");
    return 1;
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
