// E3 — §2.2 / Algorithm 3.2: buffered evaluation of append^bff.
//
// Paper claim: the compiled append chain contains cons(X1,W1,W), which
// is not finitely evaluable forward under the bff adornment; the chain
// must be split, with the W-building cons delayed and X1 buffered per
// level. Buffered evaluation is then finite and linear in the length
// of the first list. We compare against plain SLD resolution (which
// achieves the same order of growth by literal reordering at runtime)
// and report the buffer sizes.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/planner.h"
#include "term/list_utils.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

void RunAppend(benchmark::State& state, Technique technique) {
  const int64_t n = state.range(0);
  Database db;
  Status status = ParseProgram(AppendProgramSource(), &db.program());
  CS_CHECK(status.ok()) << status;
  status = db.LoadProgramFacts();
  CS_CHECK(status.ok()) << status;
  TermId left = RandomIntList(db.pool(), n, 0, 999, 42);
  TermId right = RandomIntList(db.pool(), n / 2, 0, 999, 43);
  PredId append = db.program().preds().Find("append", 3).value();

  double buffered = 0;
  double nodes = 0;
  for (auto _ : state) {
    Query query;
    query.goals.push_back(
        Atom{append, {left, right, db.pool().MakeVariable("W")}});
    PlannerOptions options;
    options.force = technique;
    auto result = EvaluateQuery(&db, query, options);
    CS_CHECK(result.ok()) << result.status();
    CS_CHECK(result->answers.size() == 1) << "append must be deterministic";
    benchmark::DoNotOptimize(result->answers.data());
    buffered = static_cast<double>(result->buffered_stats.buffered_values);
    nodes = static_cast<double>(result->buffered_stats.nodes);
  }
  state.counters["buffered"] = buffered;
  state.counters["states"] = nodes;
  state.SetComplexityN(n);
}

void BufferedSplit(benchmark::State& state) {
  RunAppend(state, Technique::kBuffered);
}
void TopDownSld(benchmark::State& state) {
  RunAppend(state, Technique::kTopDown);
}

BENCHMARK(BufferedSplit)
    ->Unit(benchmark::kMillisecond)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Complexity(benchmark::oN);
BENCHMARK(TopDownSld)
    ->Unit(benchmark::kMillisecond)
    ->RangeMultiplier(4)
    ->Range(16, 16384)
    ->Complexity(benchmark::oN);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "E3 (Algorithm 3.2): append(xs, ys, W) with |xs|=N, |ys|=N/2.\n"
      "Expected shape: both evaluators are finite and O(N); buffered "
      "chain-split buffers exactly N values over N+1 call states. A "
      "bottom-up evaluation without chain-split is impossible (the "
      "engine rejects it as not finitely evaluable; see "
      "seminaive_test).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
