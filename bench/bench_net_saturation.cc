// Network front-end saturation: the epoll event loop holding
// ~10k mostly-idle connections with a fixed thread count and flat
// memory, and a deliberately overloaded run where the bounded request
// queue rejects with `% overloaded` instead of exploding threads.
//
// Claim: connection count is cheap per-connection state, not threads —
// and overload is a deliberate, observable rejection. IdleConnections
// reports rss_delta_kb/threads at ~10k connections (the target scales
// down to the process fd budget: each in-process connection costs two
// descriptors, client end + server end). OverloadSaturation reports
// rejected/answered frames and the queue high watermark, then proves
// every rejected connection is still alive and servable. Both phases
// check fds and threads return to baseline (zero leaks).

#include <dirent.h>
#include <sys/resource.h>
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "net/blocking_client.h"
#include "service/query_service.h"
#include "service/server.h"
#include "workload/graph_gen.h"

namespace chainsplit {
namespace {

int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

int CountThreads() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  std::fclose(f);
  return threads;
}

/// Resident set size in kB (VmRSS).
long RssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %ld", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

/// Raises RLIMIT_NOFILE to its hard limit; returns the resulting cap.
long RaiseFdLimit() {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return 1024;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    ::setrlimit(RLIMIT_NOFILE, &lim);
    ::getrlimit(RLIMIT_NOFILE, &lim);
  }
  return static_cast<long>(lim.rlim_cur);
}

void SeedTc(QueryService* service, int nodes, int edges) {
  GraphOptions graph;
  graph.num_nodes = nodes;
  graph.num_edges = edges;
  graph.acyclic = true;
  graph.seed = 41;
  GenerateGraph(&service->db(), "edge", graph);
  UpdateResponse rules = service->Update(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n");
  CS_CHECK(rules.status.ok()) << rules.status;
}

/// ~10k idle connections against one epoll server in-process. Fixed
/// thread count, flat memory, and the server keeps answering.
void IdleConnections(benchmark::State& state) {
  const long fd_cap = RaiseFdLimit();
  // Two fds per in-process connection (client + server end), plus
  // slack for the process baseline.
  const int target = static_cast<int>(
      std::min<long>(state.range(0), (fd_cap - 100) / 2));
  if (target < state.range(0)) {
    std::printf("note: fd limit %ld caps idle connections at %d\n", fd_cap,
                target);
  }

  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    SeedTc(&service, 50, 80);
    ServerOptions options;
    options.mode = ServerOptions::Mode::kEpoll;
    options.listen_backlog = 256;
    TcpServer server(&service, options);
    StatusOr<int> port = server.Start(0);
    CS_CHECK(port.ok()) << port.status();
    const int fds_before = CountOpenFds();
    const int threads_before = CountThreads();
    const long rss_before = RssKb();
    state.ResumeTiming();

    {
      std::vector<BlockingClient> idle;
      idle.reserve(static_cast<size_t>(target));
      for (int i = 0; i < target; ++i) {
        idle.emplace_back("127.0.0.1", *port);
        CS_CHECK(idle.back().connected()) << "connection " << i;
      }
      // Every connection is established and banner'd; a sample proves
      // the crowd is actually servable, not just accepted.
      const int threads_with_crowd = CountThreads();
      const long rss_with_crowd = RssKb();
      int sampled = 0;
      for (int i = 0; i < target; i += target > 64 ? target / 64 : 1) {
        idle[static_cast<size_t>(i)].ReadFrame();  // banner
        CS_CHECK(idle[static_cast<size_t>(i)].Send("?- tc(n0, Y).\n"));
        std::string answer = idle[static_cast<size_t>(i)].ReadFrame();
        CS_CHECK(answer.find("answer") != std::string::npos) << answer;
        ++sampled;
      }
      state.PauseTiming();
      state.counters["connections"] = target;
      state.counters["sampled_queries"] = sampled;
      state.counters["threads_delta"] = threads_with_crowd - threads_before;
      state.counters["rss_delta_kb"] =
          static_cast<double>(rss_with_crowd - rss_before);
      state.counters["rss_bytes_per_conn"] =
          target > 0
              ? static_cast<double>(rss_with_crowd - rss_before) * 1024.0 /
                    target
              : 0;
      state.ResumeTiming();
    }

    state.PauseTiming();
    server.Stop();
    // Zero-leak gate: all sockets and no threads left behind.
    for (int spin = 0; spin < 500 && CountOpenFds() > fds_before; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    CS_CHECK(CountOpenFds() <= fds_before)
        << CountOpenFds() << " fds after stop, baseline " << fds_before;
    CS_CHECK(CountThreads() <= threads_before)
        << CountThreads() << " threads after stop, baseline "
        << threads_before;
    state.ResumeTiming();
  }
}

/// Overload: far more concurrent uncached queries than the bounded
/// queue admits. The queue depth stays bounded, overflow is answered
/// `% overloaded`, and every rejected connection remains alive.
void OverloadSaturation(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    SeedTc(&service, 600, 1000);
    ServerOptions options;
    options.mode = ServerOptions::Mode::kEpoll;
    options.queue_capacity = 4;
    options.workers = 2;
    options.listen_backlog = 256;
    TcpServer server(&service, options);
    StatusOr<int> port = server.Start(0);
    CS_CHECK(port.ok()) << port.status();
    const int fds_before = CountOpenFds();
    const int threads_before = CountThreads();
    state.ResumeTiming();

    std::atomic<int64_t> answered{0};
    std::atomic<int64_t> overloaded{0};
    std::atomic<int64_t> recovered{0};
    {
      std::vector<std::thread> load;
      load.reserve(static_cast<size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        load.emplace_back([&, c] {
          BlockingClient client("127.0.0.1", *port);
          CS_CHECK(client.connected());
          client.ReadFrame();  // banner
          // Distinct constants: every query is a full uncached
          // parse/plan/evaluate, so 2 workers cannot keep up with the
          // flood and admission control must kick in.
          for (int q = 0; q < 4; ++q) {
            CS_CHECK(client.Send(
                StrCat("?- tc(n", (c * 4 + q) % 500, ", Y).\n")));
            std::string frame = client.ReadFrame();
            if (frame.find("% overloaded") != std::string::npos) {
              overloaded.fetch_add(1);
            } else {
              answered.fetch_add(1);
            }
          }
          // Graceful degradation, not a dropped connection: the same
          // socket must still be servable once the flood passes.
          for (int attempt = 0; attempt < 200; ++attempt) {
            CS_CHECK(client.Send("?- tc(n1, Y).\n"));
            std::string frame = client.ReadFrame();
            if (frame.find("% overloaded") == std::string::npos) {
              CS_CHECK(!frame.empty());
              recovered.fetch_add(1);
              return;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
        });
      }
      for (std::thread& t : load) t.join();
    }

    state.PauseTiming();
    const NetCounters& net = server.net_counters();
    state.counters["clients"] = clients;
    state.counters["answered"] = static_cast<double>(answered.load());
    state.counters["rejected_overloaded"] =
        static_cast<double>(overloaded.load());
    state.counters["recovered_connections"] =
        static_cast<double>(recovered.load());
    state.counters["queue_high_watermark"] =
        static_cast<double>(net.queue_high_watermark.load());
    state.counters["queue_capacity"] =
        static_cast<double>(net.queue_capacity);
    state.counters["net_rejected_overload"] =
        static_cast<double>(net.rejected_overload.load());
    CS_CHECK(recovered.load() == clients)
        << recovered.load() << " of " << clients
        << " rejected connections recovered";
    CS_CHECK(net.queue_high_watermark.load() <=
             static_cast<int64_t>(options.queue_capacity))
        << "queue grew past its bound";
    server.Stop();
    for (int spin = 0; spin < 500 && CountOpenFds() > fds_before; ++spin) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    CS_CHECK(CountOpenFds() <= fds_before)
        << CountOpenFds() << " fds after stop, baseline " << fds_before;
    CS_CHECK(CountThreads() <= threads_before)
        << CountThreads() << " threads after stop, baseline "
        << threads_before;
    state.ResumeTiming();
  }
}

BENCHMARK(IdleConnections)
    ->Unit(benchmark::kMillisecond)
    ->Arg(10000)
    ->Iterations(1);
BENCHMARK(OverloadSaturation)
    ->Unit(benchmark::kMillisecond)
    ->Arg(48)
    ->Iterations(1);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "Network saturation: the epoll front end under connection count "
      "and overload.\nExpected shape: IdleConnections holds ~10k "
      "mostly-idle connections with threads_delta = 0 and a few KB of "
      "RSS per connection; OverloadSaturation rejects with "
      "'%% overloaded' (queue_high_watermark <= queue_capacity) while "
      "every connection stays alive; both leave zero leaked fds or "
      "threads.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
