// E4 — §3.3 / Algorithm 3.3: constraint-pushing partial evaluation of
// the travel recursion.
//
// Paper claims reproduced:
//  (a) pushing the monotone fare bound into the iterated chain prunes
//      intermediate tuples: explored call states shrink as the budget
//      tightens (DAG network, push vs post-filter baseline);
//  (b) on a cyclic network the un-pushed evaluation does not terminate
//      (the answer set is infinite), while the pushed accumulator makes
//      it finite — monotonicity-based termination.

#include <benchmark/benchmark.h>

#include <random>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/planner.h"
#include "workload/flight_gen.h"

namespace chainsplit {
namespace {

/// A layered (acyclic) flight network: cities in `layers` layers,
/// flights only forward, so the unpushed answer set is finite.
void BuildDagFlights(Database* db, int layers, int per_layer,
                     int flights_per_city, TermId* origin, TermId* dest) {
  TermPool& pool = db->pool();
  PredId flight = db->program().InternPred("flight", 4);
  std::mt19937_64 rng(99);
  std::vector<std::vector<TermId>> layer(layers);
  int city = 0;
  for (int l = 0; l < layers; ++l) {
    for (int i = 0; i < per_layer; ++i) {
      layer[l].push_back(pool.MakeSymbol(StrCat("city", city++)));
    }
  }
  int fno = 0;
  for (int l = 0; l + 1 < layers; ++l) {
    for (TermId from : layer[l]) {
      for (int f = 0; f < flights_per_city; ++f) {
        TermId to = layer[l + 1][rng() % per_layer];
        int64_t fare = 50 + static_cast<int64_t>(rng() % 150);
        db->InsertFact(flight,
                       {pool.MakeInt(fno++), from, to, pool.MakeInt(fare)});
      }
    }
  }
  *origin = layer[0][0];
  *dest = layer[layers - 1][0];
}

void RunTravel(benchmark::State& state, bool push, int64_t budget) {
  Database db;
  Status status = ParseProgram(TravelProgramSource(), &db.program());
  CS_CHECK(status.ok()) << status;
  TermId origin = kNullTerm, dest = kNullTerm;
  BuildDagFlights(&db, /*layers=*/7, /*per_layer=*/5, /*flights_per_city=*/3,
                  &origin, &dest);
  PredId travel = db.program().preds().Find("travel", 4).value();

  double states = 0;
  double answers = 0;
  for (auto _ : state) {
    Query query;
    TermId f = db.pool().MakeVariable("F");
    query.goals.push_back(
        Atom{travel, {db.pool().MakeVariable("L"), origin, dest, f}});
    PredId le = db.program().InternPred("=<", 2);
    query.goals.push_back(Atom{le, {f, db.pool().MakeInt(budget)}});
    PlannerOptions options;
    if (!push) options.force = Technique::kBuffered;  // post-filter baseline
    auto result = EvaluateQuery(&db, query, options);
    CS_CHECK(result.ok()) << result.status();
    CS_CHECK(!push || result->technique == Technique::kPartial)
        << "planner should push the bound";
    states = static_cast<double>(result->buffered_stats.nodes);
    answers = static_cast<double>(result->answers.size());
  }
  state.counters["states"] = states;
  state.counters["answers"] = answers;
}

void DagPush(benchmark::State& state) {
  RunTravel(state, /*push=*/true, state.range(0));
}
void DagPostFilter(benchmark::State& state) {
  RunTravel(state, /*push=*/false, state.range(0));
}

void CyclicPush(benchmark::State& state) {
  // montreal <-> toronto cycle plus an exit to ottawa: infinitely many
  // itineraries, finite under the pushed bound.
  const int64_t budget = state.range(0);
  Database db;
  Status status = ParseProgram(StrCat(TravelProgramSource(), R"(
flight(1, montreal, toronto, 100).
flight(2, toronto, montreal, 100).
flight(3, toronto, ottawa, 100).
)"),
                               &db.program());
  CS_CHECK(status.ok()) << status;
  status = db.LoadProgramFacts();
  CS_CHECK(status.ok()) << status;
  PredId travel = db.program().preds().Find("travel", 4).value();
  double answers = 0;
  for (auto _ : state) {
    Query query;
    TermId f = db.pool().MakeVariable("F");
    query.goals.push_back(Atom{travel,
                               {db.pool().MakeVariable("L"),
                                db.pool().MakeSymbol("montreal"),
                                db.pool().MakeSymbol("ottawa"), f}});
    PredId le = db.program().InternPred("=<", 2);
    query.goals.push_back(Atom{le, {f, db.pool().MakeInt(budget)}});
    auto result = EvaluateQuery(&db, query);
    CS_CHECK(result.ok()) << result.status();
    CS_CHECK(result->technique == Technique::kPartial) << "must push";
    answers = static_cast<double>(result->answers.size());
  }
  // Itineraries grow linearly with the budget: one more round trip per
  // 200 fare.
  state.counters["answers"] = answers;
}

const std::vector<int64_t> kBudgets = {200, 300, 400, 500, 600, 800};

BENCHMARK(DagPush)->Unit(benchmark::kMillisecond)->ArgsProduct({kBudgets});
BENCHMARK(DagPostFilter)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({kBudgets});
BENCHMARK(CyclicPush)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{400, 800, 1600, 3200}});

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "E4 (Algorithm 3.3): travel(L, origin, dest, F), F =< budget.\n"
      "Expected shape: DagPush explores fewer call states as the budget "
      "tightens; DagPostFilter explores the full network regardless. "
      "CyclicPush terminates on a cyclic network (un-pushed evaluation "
      "has infinitely many answers and is rejected with a resource "
      "error; see partial_test).\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
