// E1 — Example 1.2 / Algorithm 3.1: scsg query evaluation.
//
// Paper claim: chain-following magic sets on scsg iterates on a
// cross-product-like pair relation (the bb magic set joins through the
// weak same_country linkage every step), while chain-split magic sets
// iterates on the X-descendant chain alone. With few countries (weak
// linkage) chain-split wins by a growing factor.
//
// Reported counters: derived = tuples the fixpoint derived (the
// machine-independent work measure); answers = scsg answers returned.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/planner.h"
#include "engine/seminaive.h"
#include "workload/family_gen.h"

namespace chainsplit {
namespace {

struct ScsgCase {
  FamilyData data;
  std::unique_ptr<Database> db;
  Query query;
};

ScsgCase BuildCase(int depth, int fanout, int countries) {
  ScsgCase c;
  c.db = std::make_unique<Database>();
  FamilyOptions fam;
  fam.num_families = 2;
  fam.depth = depth;
  fam.fanout = fanout;
  fam.num_countries = countries;
  c.data = GenerateFamily(c.db.get(), fam);
  Status status = ParseProgram(ScsgProgramSource(), &c.db->program());
  CS_CHECK(status.ok()) << status;
  status = c.db->LoadProgramFacts();
  CS_CHECK(status.ok()) << status;
  PredId scsg = c.db->program().preds().Find("scsg", 2).value();
  c.query.goals.push_back(
      Atom{scsg, {c.data.query_person, c.db->pool().MakeVariable("Y")}});
  return c;
}

void RunScsg(benchmark::State& state, Technique technique) {
  const int depth = static_cast<int>(state.range(0));
  const int countries = static_cast<int>(state.range(1));
  double derived = 0;
  double answers = 0;
  double persons = 0;
  StorageStats storage;
  for (auto _ : state) {
    state.PauseTiming();
    ScsgCase c = BuildCase(depth, /*fanout=*/3, countries);
    state.ResumeTiming();
    PlannerOptions options;
    options.force = technique;
    auto result = EvaluateQuery(c.db.get(), c.query, options);
    CS_CHECK(result.ok()) << result.status();
    benchmark::DoNotOptimize(result->answers.data());
    derived = static_cast<double>(result->seminaive_stats.total_derived);
    answers = static_cast<double>(result->answers.size());
    persons = static_cast<double>(c.data.num_persons);
    storage = result->seminaive_stats.storage;
  }
  state.counters["derived"] = derived;
  state.counters["answers"] = answers;
  state.counters["persons"] = persons;
  state.counters["probes"] = static_cast<double>(storage.probes);
  state.counters["hash_collisions"] =
      static_cast<double>(storage.hash_collisions);
  state.counters["arena_bytes"] = static_cast<double>(storage.arena_bytes);
  state.counters["parallel_batches"] =
      static_cast<double>(storage.parallel_batches);
  state.counters["partitioned_batches"] =
      static_cast<double>(storage.partitioned_batches);
  state.counters["partition_skew"] = storage.partition_skew;
}

void ChainFollowingMagic(benchmark::State& state) {
  RunScsg(state, Technique::kMagicSets);
}
void ChainSplitMagic(benchmark::State& state) {
  RunScsg(state, Technique::kChainSplitMagic);
}

// depth x countries. countries=2 is the paper's "weak linkage" story;
// the crossover sweep is E2.
BENCHMARK(ChainFollowingMagic)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{4, 5, 6}, {2}})
    ->Iterations(5);
BENCHMARK(ChainSplitMagic)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{4, 5, 6}, {2}})
    ->Iterations(5);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "E1 (Example 1.2, Algorithm 3.1): scsg(c, Y) — chain-following vs "
      "chain-split magic sets.\nExpected shape: with a weak same_country "
      "linkage (2 countries), chain-split derives far fewer tuples and "
      "runs faster; the gap widens with depth.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
