// E9 — §2.1 ablation: the statistics-based join-expansion estimator
// and the Algorithm 3.1 threshold decision.
//
//  (a) estimator accuracy: estimated same_country expansion ratio vs
//      the true mean fan-out, sweeping country counts;
//  (b) decision quality: does the auto gate pick the plan that derives
//      fewer tuples? reported as counter `gate_optimal` (1 = yes).

#include <benchmark/benchmark.h>

#include <unordered_map>
#include <unordered_set>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/cost_model.h"
#include "core/planner.h"
#include "workload/family_gen.h"

namespace chainsplit {
namespace {

double TrueMeanFanOut(const Relation& rel) {
  std::unordered_map<TermId, int64_t> counts;
  for (int64_t i = 0; i < rel.num_rows(); ++i) ++counts[rel.row(i)[0]];
  if (counts.empty()) return 0.0;
  double total = 0;
  for (const auto& [k, n] : counts) total += static_cast<double>(n);
  return total / static_cast<double>(counts.size());
}

void EstimatorAccuracy(benchmark::State& state) {
  const int countries = static_cast<int>(state.range(0));
  Database db;
  FamilyOptions fam;
  fam.num_families = 3;
  fam.depth = 5;
  fam.fanout = 2;
  fam.num_countries = countries;
  GenerateFamily(&db, fam);
  PredId sc = db.program().preds().Find("same_country", 2).value();

  double estimated = 0;
  double truth = 0;
  for (auto _ : state) {
    estimated = EstimateJoinExpansion(db.Stats(sc), "bf");
    truth = TrueMeanFanOut(*db.GetRelation(sc));
    benchmark::DoNotOptimize(estimated);
  }
  state.counters["estimated"] = estimated;
  state.counters["true_fanout"] = truth;
  state.counters["rel_error"] =
      truth > 0 ? std::abs(estimated - truth) / truth : 0.0;
}

void GateDecisionQuality(benchmark::State& state) {
  const int countries = static_cast<int>(state.range(0));
  double gate_optimal = 0;
  double follow_derived = 0;
  double split_derived = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto run = [&](std::optional<Technique> force, Technique* used) {
      Database db;
      FamilyOptions fam;
      fam.num_families = 2;
      fam.depth = 5;
      fam.fanout = 3;
      fam.num_countries = countries;
      FamilyData data = GenerateFamily(&db, fam);
      Status status = ParseProgram(ScsgProgramSource(), &db.program());
      CS_CHECK(status.ok()) << status;
      status = db.LoadProgramFacts();
      CS_CHECK(status.ok()) << status;
      PredId scsg = db.program().preds().Find("scsg", 2).value();
      Query query;
      query.goals.push_back(
          Atom{scsg, {data.query_person, db.pool().MakeVariable("Y")}});
      PlannerOptions options;
      options.force = force;
      auto result = EvaluateQuery(&db, query, options);
      CS_CHECK(result.ok()) << result.status();
      *used = result->technique;
      return static_cast<double>(result->seminaive_stats.total_derived);
    };
    Technique used;
    follow_derived = run(Technique::kMagicSets, &used);
    split_derived = run(Technique::kChainSplitMagic, &used);
    state.ResumeTiming();
    Technique chosen;
    run(std::nullopt, &chosen);
    bool split_better = split_derived < follow_derived;
    bool chose_split = chosen == Technique::kChainSplitMagic;
    // Optimal when it picked the cheaper side (ties: either is fine).
    gate_optimal =
        (split_derived == follow_derived || split_better == chose_split)
            ? 1.0
            : 0.0;
  }
  state.counters["gate_optimal"] = gate_optimal;
  state.counters["follow_derived"] = follow_derived;
  state.counters["split_derived"] = split_derived;
}

const std::vector<int64_t> kCountries = {1, 2, 4, 8, 16, 32, 64};

BENCHMARK(EstimatorAccuracy)
    ->Unit(benchmark::kMicrosecond)
    ->ArgsProduct({kCountries});
BENCHMARK(GateDecisionQuality)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({kCountries})
    ->Iterations(3);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "E9 (§2.1 ablation): join-expansion estimator accuracy and "
      "Algorithm 3.1 decision quality on scsg.\nExpected shape: "
      "rel_error stays small across country counts; gate_optimal is 1 "
      "except possibly inside the borderline band.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
