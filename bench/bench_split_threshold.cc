// E2 — §2.1 Heuristic 2.1: the chain-follow / chain-split crossover.
//
// Paper claim: whether to split depends on the join expansion ratio of
// the connecting predicate. We sweep the number of countries (the
// same_country fan-out is persons/countries): with few countries the
// linkage is weak and splitting wins; with many countries the linkage
// is selective and following (which also restricts the Y side) is
// competitive. The cost-model gate should track the better plan.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/cost_model.h"
#include "core/planner.h"
#include "workload/family_gen.h"

namespace chainsplit {
namespace {

void RunThreshold(benchmark::State& state, Technique technique) {
  const int countries = static_cast<int>(state.range(0));
  double derived = 0;
  double ratio = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    FamilyOptions fam;
    fam.num_families = 2;
    fam.depth = 5;
    fam.fanout = 3;
    fam.num_countries = countries;
    FamilyData data = GenerateFamily(&db, fam);
    Status status = ParseProgram(ScsgProgramSource(), &db.program());
    CS_CHECK(status.ok()) << status;
    status = db.LoadProgramFacts();
    CS_CHECK(status.ok()) << status;
    PredId scsg = db.program().preds().Find("scsg", 2).value();
    Query query;
    query.goals.push_back(
        Atom{scsg, {data.query_person, db.pool().MakeVariable("Y")}});
    PredId sc = db.program().preds().Find("same_country", 2).value();
    ratio = EstimateJoinExpansion(db.Stats(sc), "bf");
    state.ResumeTiming();

    PlannerOptions options;
    options.force = technique;
    auto result = EvaluateQuery(&db, query, options);
    CS_CHECK(result.ok()) << result.status();
    derived = static_cast<double>(result->seminaive_stats.total_derived);
  }
  state.counters["derived"] = derived;
  state.counters["expansion_ratio"] = ratio;
}

void Follow(benchmark::State& state) {
  RunThreshold(state, Technique::kMagicSets);
}
void Split(benchmark::State& state) {
  RunThreshold(state, Technique::kChainSplitMagic);
}

void AutoGate(benchmark::State& state) {
  // The planner's own decision (Algorithm 3.1 thresholds).
  const int countries = static_cast<int>(state.range(0));
  double used_split = 0;
  double derived = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    FamilyOptions fam;
    fam.num_families = 2;
    fam.depth = 5;
    fam.fanout = 3;
    fam.num_countries = countries;
    FamilyData data = GenerateFamily(&db, fam);
    Status status = ParseProgram(ScsgProgramSource(), &db.program());
    CS_CHECK(status.ok()) << status;
    status = db.LoadProgramFacts();
    CS_CHECK(status.ok()) << status;
    PredId scsg = db.program().preds().Find("scsg", 2).value();
    Query query;
    query.goals.push_back(
        Atom{scsg, {data.query_person, db.pool().MakeVariable("Y")}});
    state.ResumeTiming();
    auto result = EvaluateQuery(&db, query);
    CS_CHECK(result.ok()) << result.status();
    used_split =
        result->technique == Technique::kChainSplitMagic ? 1.0 : 0.0;
    derived = static_cast<double>(result->seminaive_stats.total_derived);
  }
  state.counters["derived"] = derived;
  state.counters["chose_split"] = used_split;
}

const std::vector<int64_t> kCountries = {1, 2, 4, 8, 16, 32, 64, 128};

BENCHMARK(Follow)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({kCountries})
    ->Iterations(5);
BENCHMARK(Split)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({kCountries})
    ->Iterations(5);
BENCHMARK(AutoGate)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({kCountries})
    ->Iterations(5);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "E2 (Heuristic 2.1): scsg crossover sweep over #countries.\n"
      "Expected shape: Split's derived-tuple count is flat-ish; Follow's "
      "falls as countries grow (the linkage gets selective) and "
      "approaches Split; AutoGate chooses split exactly while the "
      "expansion ratio is above the threshold band.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
