// E7 — Example 1.1 substrate check: sg evaluated by magic sets vs
// unrestricted bottom-up vs the buffered (memoized-counting) chain
// evaluator.
//
// Claim: the query-directed methods (magic, buffered) restrict work to
// the query constant's cone; full semi-naive derives the whole sg
// relation. Magic and buffered agree on the answers.

#include <benchmark/benchmark.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/planner.h"
#include "engine/seminaive.h"
#include "workload/family_gen.h"

namespace chainsplit {
namespace {

FamilyOptions Fam(int families) {
  FamilyOptions fam;
  fam.num_families = families;
  fam.depth = 5;
  fam.fanout = 3;
  fam.materialize_same_country = false;
  return fam;
}

void QueryDirected(benchmark::State& state, Technique technique) {
  const int families = static_cast<int>(state.range(0));
  double derived = 0;
  double answers = 0;
  StorageStats storage;
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    FamilyData data = GenerateFamily(&db, Fam(families));
    Status status = ParseProgram(SgProgramSource(), &db.program());
    CS_CHECK(status.ok()) << status;
    status = db.LoadProgramFacts();
    CS_CHECK(status.ok()) << status;
    PredId sg = db.program().preds().Find("sg", 2).value();
    Query query;
    query.goals.push_back(
        Atom{sg, {data.query_person, db.pool().MakeVariable("Y")}});
    state.ResumeTiming();
    PlannerOptions options;
    options.force = technique;
    auto result = EvaluateQuery(&db, query, options);
    CS_CHECK(result.ok()) << result.status();
    derived = static_cast<double>(result->seminaive_stats.total_derived);
    answers = static_cast<double>(result->answers.size());
    storage = result->seminaive_stats.storage;
  }
  state.counters["derived"] = derived;
  state.counters["answers"] = answers;
  state.counters["probes"] = static_cast<double>(storage.probes);
  state.counters["hash_collisions"] =
      static_cast<double>(storage.hash_collisions);
  state.counters["arena_bytes"] = static_cast<double>(storage.arena_bytes);
  state.counters["parallel_batches"] =
      static_cast<double>(storage.parallel_batches);
  state.counters["partitioned_batches"] =
      static_cast<double>(storage.partitioned_batches);
  state.counters["partition_skew"] = storage.partition_skew;
}

void MagicSets(benchmark::State& state) {
  QueryDirected(state, Technique::kMagicSets);
}
void BufferedChain(benchmark::State& state) {
  QueryDirected(state, Technique::kBuffered);
}

void FullSemiNaive(benchmark::State& state) {
  const int families = static_cast<int>(state.range(0));
  double derived = 0;
  StorageStats storage;
  for (auto _ : state) {
    state.PauseTiming();
    Database db;
    GenerateFamily(&db, Fam(families));
    Status status = ParseProgram(SgProgramSource(), &db.program());
    CS_CHECK(status.ok()) << status;
    status = db.LoadProgramFacts();
    CS_CHECK(status.ok()) << status;
    state.ResumeTiming();
    SemiNaiveStats stats;
    Status eval = SemiNaiveEvaluate(&db, db.program().rules(), {}, &stats);
    CS_CHECK(eval.ok()) << eval;
    derived = static_cast<double>(stats.total_derived);
    storage = stats.storage;
  }
  state.counters["derived"] = derived;
  state.counters["probes"] = static_cast<double>(storage.probes);
  state.counters["hash_collisions"] =
      static_cast<double>(storage.hash_collisions);
  state.counters["arena_bytes"] = static_cast<double>(storage.arena_bytes);
  state.counters["parallel_batches"] =
      static_cast<double>(storage.parallel_batches);
  state.counters["partitioned_batches"] =
      static_cast<double>(storage.partitioned_batches);
  state.counters["partition_skew"] = storage.partition_skew;
}

const std::vector<int64_t> kFamilies = {1, 2, 4, 8};

BENCHMARK(MagicSets)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({kFamilies})
    ->Iterations(5);
BENCHMARK(BufferedChain)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({kFamilies})
    ->Iterations(5);
BENCHMARK(FullSemiNaive)
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({kFamilies})
    ->Iterations(5);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "E7 (Example 1.1): sg(c, Y) — magic sets / buffered chain vs full "
      "bottom-up, sweeping the number of unrelated families.\nExpected "
      "shape: the query-directed methods' derived-tuple counts stay flat "
      "as unrelated families are added; full semi-naive grows with the "
      "database.\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
