// Service throughput: the concurrent query service replaying mixed
// read/update workloads over a transitive-closure graph.
//
// Claim: on a repeated-query workload, result-cache hits served under
// the shared lock let N client threads multiply throughput over the
// uncached single-threaded baseline (the acceptance gate checks >= 5x
// at 8 clients), while answers stay byte-identical to uncached
// evaluation.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/strings.h"
#include "service/batch_driver.h"
#include "service/query_service.h"
#include "workload/graph_gen.h"

namespace chainsplit {
namespace {

constexpr const char* kTcProgram =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

constexpr int kNodes = 200;
constexpr int kEdges = 500;
constexpr int kDistinctQueries = 8;

void Seed(QueryService* service) {
  GraphOptions graph;
  graph.num_nodes = kNodes;
  graph.num_edges = kEdges;
  graph.acyclic = true;  // finite tc without cycle handling cost
  graph.seed = 29;
  GenerateGraph(&service->db(), "edge", graph);
  UpdateResponse rules = service->Update(kTcProgram);
  CS_CHECK(rules.status.ok()) << rules.status;
}

std::vector<BatchOp> QueryOps() {
  std::vector<BatchOp> ops;
  for (int i = 0; i < kDistinctQueries; ++i) {
    ops.push_back(
        {BatchOp::Kind::kQuery, StrCat("?- tc(n", i * 7, ", Y).")});
  }
  return ops;
}

std::string FlattenAnswers(const QueryResponse& response) {
  std::string flat;
  for (const auto& row : response.rows) {
    flat += StrJoin(row, ",");
    flat += ";";
  }
  return flat;
}

/// Differential gate, run once at startup: cached answers must be
/// byte-identical to the uncached reference for every workload query.
void CheckCachedMatchesUncached() {
  QueryService service;
  Seed(&service);
  RequestOptions bypass;
  bypass.bypass_cache = true;
  for (const BatchOp& op : QueryOps()) {
    QueryResponse cold = service.Query(op.text, bypass);
    QueryResponse warm1 = service.Query(op.text);   // fills the cache
    QueryResponse warm2 = service.Query(op.text);   // served from it
    CS_CHECK(cold.status.ok()) << cold.status;
    CS_CHECK(warm1.status.ok()) << warm1.status;
    CS_CHECK(warm2.status.ok()) << warm2.status;
    CS_CHECK(warm2.result_cache_hit) << op.text;
    const std::string reference = FlattenAnswers(cold);
    CS_CHECK(FlattenAnswers(warm1) == reference) << op.text;
    CS_CHECK(FlattenAnswers(warm2) == reference) << op.text;
  }
  std::printf("differential check: cached == uncached on %d queries\n",
              kDistinctQueries);
}

void ReportBatch(benchmark::State& state, const BatchReport& report,
                 double* qps) {
  CS_CHECK(report.errors == 0) << report.errors << " request errors";
  *qps = report.qps;
  state.counters["qps"] = report.qps;
  state.counters["p50_ms"] = report.p50_ms;
  state.counters["p99_ms"] = report.p99_ms;
  state.counters["result_hit_rate"] = report.result_hit_rate;
  state.counters["plan_hit_rate"] = report.plan_hit_rate;
  state.counters["answer_rows"] = static_cast<double>(report.answer_rows);
}

/// Uncached single-threaded baseline: every query re-parsed, re-planned
/// and re-evaluated under the exclusive lock.
void UncachedSingleThread(benchmark::State& state) {
  double qps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    Seed(&service);
    state.ResumeTiming();
    BatchOptions options;
    options.num_clients = 1;
    options.ops_per_client = 64;
    options.request.bypass_cache = true;
    BatchReport report = RunBatchWorkload(&service, QueryOps(), options);
    ReportBatch(state, report, &qps);
  }
}

/// The service path: N clients on the repeated-query workload; after
/// the first round per query, hits run concurrently under the shared
/// lock.
void CachedClients(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  double qps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    Seed(&service);
    state.ResumeTiming();
    BatchOptions options;
    options.num_clients = clients;
    options.ops_per_client = 512;
    BatchReport report = RunBatchWorkload(&service, QueryOps(), options);
    ReportBatch(state, report, &qps);
  }
}

/// Mixed workload: ~12% of ops insert fresh edge facts (invalidating
/// the tc entries), the rest are the repeated queries.
void MixedReadUpdate(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  double qps = 0;
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    Seed(&service);
    std::vector<BatchOp> ops = QueryOps();
    // One update per kDistinctQueries queries; fresh node names so
    // every insert is a new tuple.
    ops.push_back({BatchOp::Kind::kUpdate,
                   StrCat("edge(m", round, "a, m", round, "b).\n")});
    ++round;
    state.ResumeTiming();
    BatchOptions options;
    options.num_clients = clients;
    options.ops_per_client = 256;
    BatchReport report = RunBatchWorkload(&service, ops, options);
    ReportBatch(state, report, &qps);
  }
}

BENCHMARK(UncachedSingleThread)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(CachedClients)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(8)
    ->Iterations(3);
BENCHMARK(MixedReadUpdate)
    ->Unit(benchmark::kMillisecond)
    ->Arg(8)
    ->Iterations(3);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "Service throughput: QueryService replaying a repeated-query "
      "transitive-closure workload.\nExpected shape: CachedClients/8 "
      "sustains >= 5x the qps of UncachedSingleThread (shared-lock "
      "cache hits); MixedReadUpdate shows the cost of invalidating "
      "writes.\n\n");
  chainsplit::CheckCachedMatchesUncached();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
