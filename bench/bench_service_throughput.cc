// Service throughput: the concurrent query service replaying mixed
// read/update workloads over a transitive-closure graph.
//
// Claim: on a repeated-query workload, result-cache hits served under
// the shared lock let N client threads multiply throughput over the
// uncached single-threaded baseline (the acceptance gate checks >= 5x
// at 8 clients), while answers stay byte-identical to uncached
// evaluation.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "net/blocking_client.h"
#include "service/batch_driver.h"
#include "service/query_service.h"
#include "service/server.h"
#include "workload/graph_gen.h"

namespace chainsplit {
namespace {

constexpr const char* kTcProgram =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

constexpr int kNodes = 200;
constexpr int kEdges = 500;
constexpr int kDistinctQueries = 8;
/// The uncached phase uses a wider query set so concurrent clients
/// mostly work on different queries (no cache to share anyway).
constexpr int kDistinctUncachedQueries = 24;

void Seed(QueryService* service) {
  GraphOptions graph;
  graph.num_nodes = kNodes;
  graph.num_edges = kEdges;
  graph.acyclic = true;  // finite tc without cycle handling cost
  graph.seed = 29;
  GenerateGraph(&service->db(), "edge", graph);
  UpdateResponse rules = service->Update(kTcProgram);
  CS_CHECK(rules.status.ok()) << rules.status;
}

std::vector<BatchOp> QueryOps() {
  std::vector<BatchOp> ops;
  for (int i = 0; i < kDistinctQueries; ++i) {
    ops.push_back(
        {BatchOp::Kind::kQuery, StrCat("?- tc(n", i * 7, ", Y).")});
  }
  return ops;
}

std::vector<BatchOp> UncachedQueryOps() {
  std::vector<BatchOp> ops;
  for (int i = 0; i < kDistinctUncachedQueries; ++i) {
    ops.push_back(
        {BatchOp::Kind::kQuery, StrCat("?- tc(n", i * 5, ", Y).")});
  }
  return ops;
}

/// The parallel-SCC phase wants a program whose condensation is wide:
/// kSccChains independent transitive closures feeding one top stratum,
/// so up to kSccChains strata are ready at once.
constexpr int kSccChains = 8;
constexpr int kSccChainLen = 96;

void SeedMultiScc(QueryService* service) {
  std::string text;
  for (int c = 0; c < kSccChains; ++c) {
    for (int i = 0; i < kSccChainLen; ++i) {
      text += StrCat("e", c, "(c", c, "n", i, ", c", c, "n", i + 1, ").\n");
    }
  }
  for (int c = 0; c < kSccChains; ++c) {
    text += StrCat("tc", c, "(X, Y) :- e", c, "(X, Y).\n");
    text += StrCat("tc", c, "(X, Y) :- e", c, "(X, Z), tc", c, "(Z, Y).\n");
    text += StrCat("top(X, Y) :- tc", c, "(X, Y).\n");
  }
  UpdateResponse r = service->Update(text);
  CS_CHECK(r.status.ok()) << r.status;
}

std::string FlattenAnswers(const QueryResponse& response) {
  std::string flat;
  for (const auto& row : response.rows) {
    flat += StrJoin(row, ",");
    flat += ";";
  }
  return flat;
}

/// Differential gate, run once at startup: cached answers must be
/// byte-identical to the uncached reference for every workload query.
void CheckCachedMatchesUncached() {
  QueryService service;
  Seed(&service);
  RequestOptions bypass;
  bypass.bypass_cache = true;
  for (const BatchOp& op : QueryOps()) {
    QueryResponse cold = service.Query(op.text, bypass);
    QueryResponse warm1 = service.Query(op.text);   // fills the cache
    QueryResponse warm2 = service.Query(op.text);   // served from it
    CS_CHECK(cold.status.ok()) << cold.status;
    CS_CHECK(warm1.status.ok()) << warm1.status;
    CS_CHECK(warm2.status.ok()) << warm2.status;
    CS_CHECK(warm2.result_cache_hit) << op.text;
    const std::string reference = FlattenAnswers(cold);
    CS_CHECK(FlattenAnswers(warm1) == reference) << op.text;
    CS_CHECK(FlattenAnswers(warm2) == reference) << op.text;
  }
  std::printf("differential check: cached == uncached on %d queries\n",
              kDistinctQueries);
}

/// Differential gate for the overlay path, run once at startup: the
/// shared-lock overlay evaluation must produce byte-identical answers
/// to the exclusive-lock baseline, and must leave the base database
/// untouched (no new relations, no version bumps).
void CheckOverlayMatchesExclusive() {
  QueryService service;
  Seed(&service);
  Database& db = service.db();

  // Snapshot the base: which relations exist and their versions.
  std::vector<std::pair<PredId, uint64_t>> before;
  for (PredId pred : db.StoredPredicates()) {
    before.emplace_back(pred, db.GetRelation(pred)->version());
  }

  RequestOptions overlay;
  overlay.bypass_cache = true;  // default path: shared lock + overlay
  std::vector<std::string> overlay_answers;
  for (const BatchOp& op : UncachedQueryOps()) {
    QueryResponse r = service.Query(op.text, overlay);
    CS_CHECK(r.status.ok()) << r.status;
    overlay_answers.push_back(FlattenAnswers(r));
  }

  // The overlay path must not have touched the base.
  std::vector<PredId> preds_after = db.StoredPredicates();
  CS_CHECK(preds_after.size() == before.size())
      << "overlay evaluation created base relations";
  for (const auto& [pred, version] : before) {
    CS_CHECK(db.GetRelation(pred)->version() == version)
        << "overlay evaluation bumped a base relation version";
  }

  // Exclusive baseline: pre-overlay reference semantics, where derived
  // relations persist in the base across queries — so each comparison
  // query runs on its own pristine, identically seeded service.
  RequestOptions exclusive;
  exclusive.bypass_cache = true;
  exclusive.force_exclusive = true;
  const std::vector<BatchOp> ops = UncachedQueryOps();
  for (size_t i = 0; i < ops.size(); ++i) {
    QueryService baseline;
    Seed(&baseline);
    QueryResponse r = baseline.Query(ops[i].text, exclusive);
    CS_CHECK(r.status.ok()) << r.status;
    CS_CHECK(FlattenAnswers(r) == overlay_answers[i]) << ops[i].text;
  }
  std::printf(
      "differential check: overlay == exclusive on %d queries, "
      "base untouched\n",
      kDistinctUncachedQueries);
}

/// Differential gate for the SCC scheduler, run once at startup:
/// parallel evaluation at every worker count must be byte-identical to
/// the stratified serial schedule (docs/service.md §Parallel SCC
/// evaluation argues why; this checks it on the bench program).
void CheckParallelSccMatchesSerial() {
  QueryService service;
  SeedMultiScc(&service);
  RequestOptions request;
  request.bypass_cache = true;
  request.parallel_scc = 1;
  const std::string query = "?- top(X, Y).";
  QueryResponse serial = service.Query(query, request);
  CS_CHECK(serial.status.ok()) << serial.status;
  CS_CHECK(serial.scc_strata >= kSccChains) << serial.scc_strata;
  const std::string reference = FlattenAnswers(serial);
  for (int workers : {2, 4, 8}) {
    request.parallel_scc = workers;
    QueryResponse parallel = service.Query(query, request);
    CS_CHECK(parallel.status.ok()) << parallel.status;
    CS_CHECK(FlattenAnswers(parallel) == reference)
        << "parallel scc answers diverged at " << workers << " workers";
  }
  std::printf(
      "differential check: parallel scc == stratified serial at "
      "2/4/8 workers (%lld strata)\n",
      static_cast<long long>(serial.scc_strata));
}

void ReportBatch(benchmark::State& state, const BatchReport& report,
                 double* qps) {
  CS_CHECK(report.errors == 0) << report.errors << " request errors";
  *qps = report.qps;
  state.counters["qps"] = report.qps;
  state.counters["p50_ms"] = report.p50_ms;
  state.counters["p99_ms"] = report.p99_ms;
  state.counters["result_hit_rate"] = report.result_hit_rate;
  state.counters["plan_hit_rate"] = report.plan_hit_rate;
  state.counters["answer_rows"] = static_cast<double>(report.answer_rows);
}

/// Uncached single-threaded baseline: every query re-parsed, re-planned
/// and re-evaluated (through a query-local overlay, like all uncached
/// evaluation).
void UncachedSingleThread(benchmark::State& state) {
  double qps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    Seed(&service);
    state.ResumeTiming();
    BatchOptions options;
    options.num_clients = 1;
    options.ops_per_client = 64;
    options.request.bypass_cache = true;
    BatchReport report = RunBatchWorkload(&service, QueryOps(), options);
    ReportBatch(state, report, &qps);
  }
}

/// Folds the interesting registry series into the benchmark counters,
/// so BENCH_service.json carries the run's registry snapshot (work
/// measures and the latency quantiles) next to the throughput numbers.
void SnapshotRegistry(benchmark::State& state, const QueryService& service) {
  for (const MetricSample& sample : service.metrics()->Snapshot()) {
    std::string key = sample.name;
    for (const auto& label : sample.labels) key += StrCat("_", label.second);
    if (key == "csdd_queries_total" ||
        key == "csdd_fixpoint_iterations_total" ||
        key == "csdd_derived_tuples_total" ||
        key == "csdd_evals_total_shared" ||
        key == "csdd_query_latency_us_count" ||
        StartsWith(key, "csdd_query_latency_us_quantile")) {
      state.counters[key] = sample.value;
    }
  }
}

/// Uncached multi-client phase: N clients each issuing distinct
/// cache-bypassing queries. Every evaluation holds only the shared
/// lock and writes into its own overlay, so the aggregate qps should
/// scale with clients on a multi-core host (on a single core the
/// 1/2/4/8 trend just records the locking overhead).
void UncachedClients(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  double qps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    Seed(&service);
    ServiceStats s0 = service.stats();
    state.ResumeTiming();
    BatchOptions options;
    options.num_clients = clients;
    options.ops_per_client = 32;
    options.request.bypass_cache = true;
    BatchReport report =
        RunBatchWorkload(&service, UncachedQueryOps(), options);
    ReportBatch(state, report, &qps);
    ServiceStats s1 = service.stats();
    state.counters["shared_evals"] =
        static_cast<double>(s1.shared_evals - s0.shared_evals);
    state.counters["exclusive_evals"] =
        static_cast<double>(s1.exclusive_evals - s0.exclusive_evals);
    state.counters["overlay_bytes"] =
        static_cast<double>(s1.overlay_bytes - s0.overlay_bytes);
    SnapshotRegistry(state, service);
  }
}

/// SCC-parallel evaluation of one wide-condensation query: arg N is
/// RequestOptions::parallel_scc (1 = stratified serial baseline, N > 1
/// = up to N strata in flight on the shared pool). The interesting
/// number is the 1 -> N qps ratio; run_benchmarks.sh gates it at
/// > 1.3x on multi-core hosts and logs a skip note on single-core
/// (where the trend only records scheduler overhead).
void UncachedParallelScc(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kQueries = 4;
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    SeedMultiScc(&service);
    RequestOptions request;
    request.bypass_cache = true;
    request.parallel_scc = workers;
    state.ResumeTiming();

    const auto start = std::chrono::steady_clock::now();
    int64_t rows = 0;
    QueryResponse last;
    for (int i = 0; i < kQueries; ++i) {
      QueryResponse r = service.Query("?- top(X, Y).", request);
      CS_CHECK(r.status.ok()) << r.status;
      CS_CHECK(r.scc_strata > 0) << "query bypassed the SCC scheduler";
      rows += static_cast<int64_t>(r.rows.size());
      last = std::move(r);
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    state.PauseTiming();
    state.counters["qps"] = seconds > 0 ? kQueries / seconds : 0;
    state.counters["answer_rows"] = static_cast<double>(rows);
    state.counters["parallel_scc"] = workers;
    state.counters["scc_strata"] = static_cast<double>(last.scc_strata);
    state.counters["scc_parallel_strata"] =
        static_cast<double>(last.scc_parallel_strata);
    state.counters["scc_max_ready_width"] =
        static_cast<double>(last.scc_max_ready_width);
    state.counters["hardware_concurrency"] =
        static_cast<double>(std::thread::hardware_concurrency());
    SnapshotRegistry(state, service);
    state.ResumeTiming();
  }
}

/// Instrumentation overhead on the uncached single-client path: the
/// same workload untraced (the production default: per query, the
/// metrics layer costs a handful of wait-free fetch_adds and two
/// relaxed atomic loads) and with tracing on (every query records its
/// full span tree). Acceptance (docs/perf_notes.md): trace_overhead_pct
/// stays <= 2 on UncachedClients/1-shaped work.
void TraceOverhead(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    Seed(&service);
    const std::vector<BatchOp> ops = UncachedQueryOps();
    RequestOptions request;
    request.bypass_cache = true;
    // Warm-up, then interleave traced/untraced single queries and
    // compare per-mode medians. Shared-box noise drifts on a scale of
    // whole batches, so timing the two modes as separate runs mostly
    // measures the machine, not the instrumentation; alternating query
    // by query subjects both modes to the same noise and the median
    // discards the outliers.
    for (const BatchOp& op : ops) {
      QueryResponse r = service.Query(op.text, request);
      CS_CHECK(r.status.ok()) << r.status;
    }
    state.ResumeTiming();
    std::vector<double> untraced_us;
    std::vector<double> traced_us;
    constexpr int kRounds = 48;
    for (int round = 0; round < kRounds; ++round) {
      const bool traced = (round & 1) != 0;
      service.set_tracing(traced);
      for (const BatchOp& op : ops) {
        const auto t0 = std::chrono::steady_clock::now();
        QueryResponse r = service.Query(op.text, request);
        const double us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        CS_CHECK(r.status.ok()) << r.status;
        (traced ? traced_us : untraced_us).push_back(us);
      }
    }
    service.set_tracing(false);
    auto median = [](std::vector<double>& v) {
      std::sort(v.begin(), v.end());
      return v[v.size() / 2];
    };
    const double untraced = median(untraced_us);
    const double traced = median(traced_us);
    state.counters["untraced_qps"] = untraced > 0 ? 1e6 / untraced : 0;
    state.counters["traced_qps"] = traced > 0 ? 1e6 / traced : 0;
    state.counters["trace_overhead_pct"] =
        untraced > 0 ? (traced - untraced) / untraced * 100.0 : 0;
    SnapshotRegistry(state, service);
  }
}

/// The service path: N clients on the repeated-query workload; after
/// the first round per query, hits run concurrently under the shared
/// lock.
void CachedClients(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  double qps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    Seed(&service);
    state.ResumeTiming();
    BatchOptions options;
    options.num_clients = clients;
    options.ops_per_client = 512;
    BatchReport report = RunBatchWorkload(&service, QueryOps(), options);
    ReportBatch(state, report, &qps);
  }
}

/// Mixed workload: ~12% of ops insert fresh edge facts (invalidating
/// the tc entries), the rest are the repeated queries.
void MixedReadUpdate(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  double qps = 0;
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    Seed(&service);
    std::vector<BatchOp> ops = QueryOps();
    // One update per kDistinctQueries queries; fresh node names so
    // every insert is a new tuple.
    ops.push_back({BatchOp::Kind::kUpdate,
                   StrCat("edge(m", round, "a, m", round, "b).\n")});
    ++round;
    state.ResumeTiming();
    BatchOptions options;
    options.num_clients = clients;
    options.ops_per_client = 256;
    BatchReport report = RunBatchWorkload(&service, ops, options);
    ReportBatch(state, report, &qps);
  }
}

/// The same cached workload, but end-to-end through the epoll network
/// front end: N socket clients on loopback, each request a full
/// framed round trip. The gap to CachedClients/N is the protocol +
/// event-loop overhead; the net counters land in BENCH_service.json.
void NetRoundTrip(benchmark::State& state) {
  const int clients = static_cast<int>(state.range(0));
  constexpr int kOpsPerClient = 256;
  for (auto _ : state) {
    state.PauseTiming();
    QueryService service;
    Seed(&service);
    ServerOptions server_options;
    server_options.mode = ServerOptions::Mode::kEpoll;
    TcpServer server(&service, server_options);
    StatusOr<int> port = server.Start(0);
    CS_CHECK(port.ok()) << port.status();
    std::vector<std::string> queries;
    for (const BatchOp& op : QueryOps()) queries.push_back(op.text + "\n");
    std::atomic<int64_t> errors{0};
    state.ResumeTiming();

    const auto start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> load;
      load.reserve(static_cast<size_t>(clients));
      for (int c = 0; c < clients; ++c) {
        load.emplace_back([&, c] {
          BlockingClient client("127.0.0.1", *port);
          if (!client.connected()) {
            errors.fetch_add(kOpsPerClient);
            return;
          }
          client.ReadFrame();  // banner
          for (int i = 0; i < kOpsPerClient; ++i) {
            const std::string& q = queries[(c + i) % queries.size()];
            if (!client.Send(q) ||
                client.ReadFrame().find("answer") == std::string::npos) {
              errors.fetch_add(1);
            }
          }
        });
      }
      for (std::thread& t : load) t.join();
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    state.PauseTiming();
    CS_CHECK(errors.load() == 0) << errors.load() << " round-trip errors";
    const NetCounters& net = server.net_counters();
    const double total_ops = static_cast<double>(clients) * kOpsPerClient;
    state.counters["qps"] = seconds > 0 ? total_ops / seconds : 0;
    state.counters["net_dispatched"] =
        static_cast<double>(net.dispatched.load());
    state.counters["net_bytes_in"] = static_cast<double>(net.bytes_in.load());
    state.counters["net_bytes_out"] =
        static_cast<double>(net.bytes_out.load());
    state.counters["net_queue_high_watermark"] =
        static_cast<double>(net.queue_high_watermark.load());
    state.counters["net_rejected_overload"] =
        static_cast<double>(net.rejected_overload.load());
    server.Stop();
    state.ResumeTiming();
  }
}

/// WAL overhead on an insert-only update stream: the same workload
/// with durability off (arg 0) vs wal-sync=none/interval/always
/// (args 1/2/3). Every update is one exclusive-lock mutation and one
/// log record. Acceptance (docs/perf_notes.md): wal-sync=interval
/// stays within ~10% of the no-WAL baseline; wal-sync=always pays one
/// fsync per update and is expected to be much slower on real disks.
void WalOverhead(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  constexpr int kUpdates = 256;
  constexpr int kFactsPerUpdate = 8;  // a realistic batched insert
  int round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         StrCat("cs_bench_wal_", ::getpid(), "_", mode, "_", round))
            .string();
    std::filesystem::remove_all(dir);
    QueryService service;
    if (mode > 0) {
      DurabilityOptions durability;
      durability.data_dir = dir;
      durability.wal.sync = mode == 1   ? WalSyncPolicy::kNone
                            : mode == 2 ? WalSyncPolicy::kInterval
                                        : WalSyncPolicy::kAlways;
      StatusOr<RecoveryResult> enabled = service.EnableDurability(durability);
      CS_CHECK(enabled.ok()) << enabled.status();
    }
    state.ResumeTiming();

    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kUpdates; ++i) {
      std::string text;
      for (int j = 0; j < kFactsPerUpdate; ++j) {
        text += StrCat("edge(w", round, "x", i, "f", j, "a, w", round, "x",
                       i, "f", j, "b).\n");
      }
      UpdateResponse r = service.Update(text);
      CS_CHECK(r.status.ok()) << r.status;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    state.PauseTiming();
    state.counters["facts_per_s"] =
        seconds > 0 ? kUpdates * kFactsPerUpdate / seconds : 0;
    state.counters["wal_sync_mode"] = mode;
    if (mode > 0) {
      DurabilityStats dur = service.durability_stats();
      state.counters["wal_records"] = static_cast<double>(dur.wal_records);
      state.counters["wal_bytes"] = static_cast<double>(dur.wal_bytes);
      state.counters["wal_syncs"] = static_cast<double>(dur.wal_syncs);
    }
    std::filesystem::remove_all(dir);
    state.ResumeTiming();
    ++round;
  }
}

BENCHMARK(UncachedSingleThread)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(UncachedClients)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(3);
BENCHMARK(UncachedParallelScc)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(3);
BENCHMARK(TraceOverhead)->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(CachedClients)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(8)
    ->Iterations(3);
BENCHMARK(MixedReadUpdate)
    ->Unit(benchmark::kMillisecond)
    ->Arg(8)
    ->Iterations(3);
BENCHMARK(NetRoundTrip)
    ->Unit(benchmark::kMillisecond)
    ->Arg(1)
    ->Arg(8)
    ->Iterations(3);
BENCHMARK(WalOverhead)
    ->Unit(benchmark::kMillisecond)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Iterations(3);

}  // namespace
}  // namespace chainsplit

int main(int argc, char** argv) {
  std::printf(
      "Service throughput: QueryService replaying transitive-closure "
      "workloads.\nExpected shape: CachedClients/8 sustains >= 5x the "
      "qps of UncachedSingleThread (shared-lock cache hits); "
      "UncachedClients/N scales with cores (shared-lock overlay "
      "evaluation, no cache); UncachedParallelScc/N evaluates one "
      "wide-condensation query with N SCC strata in flight (expect "
      "> 1.3x over /1 on multi-core); MixedReadUpdate shows the cost of "
      "invalidating writes; TraceOverhead bounds the per-query tracing "
      "cost (trace_overhead_pct <= 2 expected); NetRoundTrip adds the "
      "epoll front end's framed-socket round trip on top of the cached "
      "path; WalOverhead "
      "compares the insert stream with durability off vs "
      "wal-sync=none/interval/always (interval should stay within ~10%% "
      "of off).\n\n");
  chainsplit::CheckCachedMatchesUncached();
  chainsplit::CheckOverlayMatchesExclusive();
  chainsplit::CheckParallelSccMatchesSerial();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
