// Sorting as deductive-database queries (§4): isort (nested linear
// recursion, evaluated by buffered chain-split) and qsort (nonlinear
// recursion, evaluated top-down), reproducing the paper's Examples 4.1
// and 4.2 and printing the chain-split plan the analyzer derives.
//
//   $ ./sorting [n]

#include <cstdio>
#include <cstdlib>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/planner.h"
#include "term/list_utils.h"
#include "workload/list_gen.h"

using namespace chainsplit;

namespace {

void SortWith(const char* name, const char* source, std::string_view pred,
              int64_t n) {
  Database db;
  Status status = ParseProgram(source, &db.program());
  CS_CHECK(status.ok()) << status;
  status = db.LoadProgramFacts();
  CS_CHECK(status.ok()) << status;
  TermId list = RandomIntList(db.pool(), n, 0, 99, 13);

  Query query;
  PredId p = db.program().preds().Find(pred, 2).value();
  query.goals.push_back(Atom{p, {list, db.pool().MakeVariable("Ys")}});
  auto result = EvaluateQuery(&db, query);
  CS_CHECK(result.ok()) << result.status();
  CS_CHECK(result->answers.size() == 1) << "sorting must be deterministic";

  std::printf("== %s ==\n", name);
  std::printf("input : %s\n", db.pool().ToString(list).c_str());
  std::printf("output: %s\n",
              db.pool().ToString(result->answers[0][0]).c_str());
  std::printf("plan:\n%s\n", result->plan.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int64_t n = argc > 1 ? std::atoll(argv[1]) : 10;
  SortWith("insertion sort (Example 4.1, nested linear recursion)",
           IsortProgramSource(), "isort", n);
  SortWith("quick sort (Example 4.2, nonlinear recursion)",
           QsortProgramSource(), "qsort", n);
  return 0;
}
