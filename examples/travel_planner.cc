// Fare-bounded trip search with constraint-pushing partial evaluation
// (§3.3 / Algorithm 3.3): finds all itineraries under a budget on a
// random flight network. The planner detects the monotone fare bound
// and pushes it into the iterated chain, which also makes the search
// terminate on cyclic networks.
//
//   $ ./travel_planner [budget]

#include <cstdio>
#include <cstdlib>

#include "ast/parser.h"
#include "core/planner.h"
#include "term/list_utils.h"
#include "workload/flight_gen.h"

using namespace chainsplit;

int main(int argc, char** argv) {
  int64_t budget = argc > 1 ? std::atoll(argv[1]) : 500;

  Database db;
  FlightOptions options;
  options.num_cities = 12;
  options.num_flights = 36;
  options.seed = 2026;
  FlightData data = GenerateFlights(&db, options);
  Status status = ParseProgram(TravelProgramSource(), &db.program());
  CS_CHECK(status.ok()) << status;
  status = db.LoadProgramFacts();
  CS_CHECK(status.ok()) << status;

  std::printf("flights: %lld over %d cities; searching %s -> %s under %lld\n\n",
              static_cast<long long>(data.num_flights), options.num_cities,
              db.pool().ToString(data.origin).c_str(),
              db.pool().ToString(data.destination).c_str(),
              static_cast<long long>(budget));

  Query query;
  PredId travel = db.program().preds().Find("travel", 4).value();
  TermId fare = db.pool().MakeVariable("F");
  query.goals.push_back(Atom{travel,
                             {db.pool().MakeVariable("L"), data.origin,
                              data.destination, fare}});
  PredId le = db.program().InternPred("=<", 2);
  query.goals.push_back(Atom{le, {fare, db.pool().MakeInt(budget)}});

  auto result = EvaluateQuery(&db, query);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("technique: %s (explored %lld call states)\n\n",
              TechniqueToString(result->technique),
              static_cast<long long>(result->buffered_stats.nodes));

  if (result->answers.empty()) {
    std::printf("no itinerary under the budget — try a bigger one\n");
    return 0;
  }
  std::printf("%-28s fare\n", "flights");
  for (const Tuple& row : result->answers) {
    std::printf("%-28s %s\n", db.pool().ToString(row[0]).c_str(),
                db.pool().ToString(row[1]).c_str());
  }
  return 0;
}
