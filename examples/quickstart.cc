// Quickstart: load a tiny deductive database, ask a recursive query,
// and let the planner pick the evaluation technique.
//
//   $ ./quickstart
//
// The program is the paper's same-generation example (Example 1.1).

#include <cstdio>

#include "core/planner.h"

int main() {
  using namespace chainsplit;

  Database db;
  // A Database bundles the term universe, the rule base (IDB) and the
  // fact base (EDB). RunProgram parses source, loads the facts and
  // evaluates the first query.
  auto result = RunProgram(&db, R"(
    % EDB: a small family.
    parent(ann, carol).   parent(bob, carol).
    parent(carol, eve).   parent(dan, eve).
    parent(greg, dan).
    sibling(carol, dan).  sibling(dan, carol).

    % IDB: X and Y are same-generation relatives.
    sg(X, Y) :- sibling(X, Y).
    sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).

    ?- sg(ann, Y).
  )");

  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("technique: %s\n", TechniqueToString(result->technique));
  std::printf("plan:\n%s\n", result->plan.c_str());
  std::printf("answers (%zu):\n", result->answers.size());
  for (const Tuple& row : result->answers) {
    for (size_t i = 0; i < result->vars.size(); ++i) {
      std::printf("  %s = %s", db.pool().ToString(result->vars[i]).c_str(),
                  db.pool().ToString(row[i]).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
