// Chain-split magic sets on the scsg recursion (Example 1.2 /
// Algorithm 3.1): generates a synthetic genealogy with a controllable
// same_country fan-out and compares chain-following magic sets against
// chain-split magic sets on the same query.
//
//   $ ./family_scsg [countries]
//
// With few countries the same_country linkage is weak and chain-split
// derives far fewer tuples; with many countries the planner's cost
// gate switches back to chain-following on its own.

#include <cstdio>
#include <cstdlib>

#include "ast/parser.h"
#include "core/planner.h"
#include "workload/family_gen.h"

using namespace chainsplit;

namespace {

struct RunOutcome {
  Technique technique;
  int64_t derived;
  size_t answers;
};

RunOutcome RunOnce(int countries, std::optional<Technique> force) {
  Database db;
  FamilyOptions fam;
  fam.num_families = 2;
  fam.depth = 5;
  fam.fanout = 3;
  fam.num_countries = countries;
  FamilyData data = GenerateFamily(&db, fam);
  Status status = ParseProgram(ScsgProgramSource(), &db.program());
  CS_CHECK(status.ok()) << status;
  status = db.LoadProgramFacts();
  CS_CHECK(status.ok()) << status;

  Query query;
  PredId scsg = db.program().preds().Find("scsg", 2).value();
  query.goals.push_back(
      Atom{scsg, {data.query_person, db.pool().MakeVariable("Y")}});
  PlannerOptions options;
  options.force = force;
  auto result = EvaluateQuery(&db, query, options);
  CS_CHECK(result.ok()) << result.status();
  return RunOutcome{result->technique, result->seminaive_stats.total_derived,
                    result->answers.size()};
}

}  // namespace

int main(int argc, char** argv) {
  int countries = argc > 1 ? std::atoi(argv[1]) : 2;
  std::printf("scsg query over a 2-family genealogy, %d countries\n\n",
              countries);
  std::printf("%-24s %-10s %-8s\n", "plan", "derived", "answers");

  RunOutcome follow = RunOnce(countries, Technique::kMagicSets);
  std::printf("%-24s %-10lld %-8zu\n", "chain-following magic",
              static_cast<long long>(follow.derived), follow.answers);

  RunOutcome split = RunOnce(countries, Technique::kChainSplitMagic);
  std::printf("%-24s %-10lld %-8zu\n", "chain-split magic",
              static_cast<long long>(split.derived), split.answers);

  RunOutcome autop = RunOnce(countries, std::nullopt);
  std::printf("%-24s %-10lld %-8zu   <- planner chose %s\n", "auto (Alg 3.1)",
              static_cast<long long>(autop.derived), autop.answers,
              TechniqueToString(autop.technique));

  if (follow.answers != split.answers) {
    std::fprintf(stderr, "BUG: plans disagree on the answer count\n");
    return 1;
  }
  return 0;
}
