// TcpServer smoke test: real sockets on loopback, the csdd line
// protocol, concurrent client connections, clean shutdown.

#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace chainsplit {
namespace {

/// A minimal blocking client for the "."-framed line protocol.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  bool Send(const std::string& text) {
    return ::send(fd_, text.data(), text.size(), 0) ==
           static_cast<ssize_t>(text.size());
  }

  /// Reads until the lone "." terminator line; returns the response
  /// without it (empty string on disconnect).
  std::string ReadResponse() {
    std::string response;
    while (true) {
      size_t newline;
      while ((newline = buffer_.find('\n')) != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (line == ".") return response;
        response += line;
        response += "\n";
      }
      char chunk[1024];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

TEST(ServiceServerTest, ServesQueriesOverTcp) {
  QueryService service;
  UpdateResponse seeded = service.Update(
      "edge(x, y).\nedge(y, z).\n"
      "tc(A, B) :- edge(A, B).\n"
      "tc(A, B) :- edge(A, C), tc(C, B).\n");
  ASSERT_TRUE(seeded.status.ok());

  TcpServer server(&service);
  StatusOr<int> port = server.Start(0);  // ephemeral
  ASSERT_TRUE(port.ok()) << port.status();
  ASSERT_GT(*port, 0);

  Client client(*port);
  ASSERT_TRUE(client.connected());
  EXPECT_NE(client.ReadResponse().find("ready"), std::string::npos);

  ASSERT_TRUE(client.Send("?- tc(x, Y).\n"));
  std::string answer = client.ReadResponse();
  EXPECT_NE(answer.find("Y = y"), std::string::npos) << answer;
  EXPECT_NE(answer.find("Y = z"), std::string::npos) << answer;
  EXPECT_NE(answer.find("2 answer(s)"), std::string::npos) << answer;

  // A fact added over the wire is visible to the next query; the
  // second query of the same text was served from the result cache
  // before the update and recomputed after.
  ASSERT_TRUE(client.Send("edge(z, w).\n"));
  client.ReadResponse();
  ASSERT_TRUE(client.Send("?- tc(x, Y).\n"));
  answer = client.ReadResponse();
  EXPECT_NE(answer.find("Y = w"), std::string::npos) << answer;
  EXPECT_NE(answer.find("3 answer(s)"), std::string::npos) << answer;

  // Errors are reported in-band, not by dropping the connection.
  ASSERT_TRUE(client.Send("p(a&.\n"));
  EXPECT_NE(client.ReadResponse().find("parse error"), std::string::npos);

  // Multi-line clause accumulation works over the wire too.
  ASSERT_TRUE(client.Send("?- tc(x,\n"));
  ASSERT_TRUE(client.Send("Y).\n"));
  EXPECT_NE(client.ReadResponse().find("3 answer(s)"), std::string::npos);

  server.Stop();
}

TEST(ServiceServerTest, ConcurrentClientsGetConsistentAnswers) {
  QueryService service;
  std::string text =
      "tc(A, B) :- edge(A, B).\n"
      "tc(A, B) :- edge(A, C), tc(C, B).\n";
  for (int i = 0; i < 20; ++i) {
    text += "edge(a" + std::to_string(i) + ", a" + std::to_string(i + 1) +
            ").\n";
  }
  ASSERT_TRUE(service.Update(text).status.ok());

  TcpServer server(&service);
  StatusOr<int> port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();

  std::vector<std::thread> clients;
  std::vector<int> answer_counts(6, -1);
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      Client client(*port);
      if (!client.connected()) return;
      client.ReadResponse();  // banner
      int last = -1;
      for (int i = 0; i < 10; ++i) {
        if (!client.Send("?- tc(a0, Y).\n")) return;
        std::string answer = client.ReadResponse();
        if (answer.find("20 answer(s)") != std::string::npos) last = 20;
      }
      answer_counts[c] = last;
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < 6; ++c) EXPECT_EQ(answer_counts[c], 20) << "client " << c;

  EXPECT_GT(service.stats().result_cache_hits, 0);
  server.Stop();
  // Stop is idempotent and leaves the service usable in-process.
  server.Stop();
  EXPECT_TRUE(service.Query("?- tc(a0, Y).").status.ok());
}

}  // namespace
}  // namespace chainsplit
