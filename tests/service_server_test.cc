// TcpServer smoke test: real sockets on loopback, the csdd line
// protocol, concurrent client connections, clean shutdown. This suite
// pins the legacy thread-per-connection mode (its reaping invariants
// are threaded-specific); tests/net_server_test.cc covers the epoll
// mode and the threaded-vs-epoll differential.

#include "service/server.h"

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace chainsplit {
namespace {

/// A minimal blocking client for the "."-framed line protocol.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool connected() const { return connected_; }

  bool Send(const std::string& text) {
    return ::send(fd_, text.data(), text.size(), 0) ==
           static_cast<ssize_t>(text.size());
  }

  /// Hard-closes the connection with an RST (SO_LINGER zero), so the
  /// server's next send on this connection fails — the banner-failure
  /// path of ServeConnection.
  void Abort() {
    if (fd_ < 0) return;
    struct linger lg {
      1, 0
    };
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd_);
    fd_ = -1;
  }

  /// Reads until the lone "." terminator line; returns the response
  /// without it (empty string on disconnect).
  std::string ReadResponse() {
    std::string response;
    while (true) {
      size_t newline;
      while ((newline = buffer_.find('\n')) != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        if (line == ".") return response;
        response += line;
        response += "\n";
      }
      char chunk[1024];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// Open descriptors of this process, via /proc/self/fd.
int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

/// Spins until `pred` holds or ~5s elapse; returns pred's final value.
template <typename Pred>
bool EventuallyTrue(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

TEST(ServiceServerTest, ServesQueriesOverTcp) {
  QueryService service;
  UpdateResponse seeded = service.Update(
      "edge(x, y).\nedge(y, z).\n"
      "tc(A, B) :- edge(A, B).\n"
      "tc(A, B) :- edge(A, C), tc(C, B).\n");
  ASSERT_TRUE(seeded.status.ok());

  ServerOptions threaded;
  threaded.mode = ServerOptions::Mode::kThreaded;
  TcpServer server(&service, threaded);
  StatusOr<int> port = server.Start(0);  // ephemeral
  ASSERT_TRUE(port.ok()) << port.status();
  ASSERT_GT(*port, 0);

  Client client(*port);
  ASSERT_TRUE(client.connected());
  EXPECT_NE(client.ReadResponse().find("ready"), std::string::npos);

  ASSERT_TRUE(client.Send("?- tc(x, Y).\n"));
  std::string answer = client.ReadResponse();
  EXPECT_NE(answer.find("Y = y"), std::string::npos) << answer;
  EXPECT_NE(answer.find("Y = z"), std::string::npos) << answer;
  EXPECT_NE(answer.find("2 answer(s)"), std::string::npos) << answer;

  // A fact added over the wire is visible to the next query; the
  // second query of the same text was served from the result cache
  // before the update and recomputed after.
  ASSERT_TRUE(client.Send("edge(z, w).\n"));
  client.ReadResponse();
  ASSERT_TRUE(client.Send("?- tc(x, Y).\n"));
  answer = client.ReadResponse();
  EXPECT_NE(answer.find("Y = w"), std::string::npos) << answer;
  EXPECT_NE(answer.find("3 answer(s)"), std::string::npos) << answer;

  // Errors are reported in-band, not by dropping the connection.
  ASSERT_TRUE(client.Send("p(a&.\n"));
  EXPECT_NE(client.ReadResponse().find("parse error"), std::string::npos);

  // Multi-line clause accumulation works over the wire too.
  ASSERT_TRUE(client.Send("?- tc(x,\n"));
  ASSERT_TRUE(client.Send("Y).\n"));
  EXPECT_NE(client.ReadResponse().find("3 answer(s)"), std::string::npos);

  server.Stop();
}

TEST(ServiceServerTest, ConcurrentClientsGetConsistentAnswers) {
  QueryService service;
  std::string text =
      "tc(A, B) :- edge(A, B).\n"
      "tc(A, B) :- edge(A, C), tc(C, B).\n";
  for (int i = 0; i < 20; ++i) {
    text += "edge(a" + std::to_string(i) + ", a" + std::to_string(i + 1) +
            ").\n";
  }
  ASSERT_TRUE(service.Update(text).status.ok());

  ServerOptions threaded;
  threaded.mode = ServerOptions::Mode::kThreaded;
  TcpServer server(&service, threaded);
  StatusOr<int> port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();

  std::vector<std::thread> clients;
  std::vector<int> answer_counts(6, -1);
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      Client client(*port);
      if (!client.connected()) return;
      client.ReadResponse();  // banner
      int last = -1;
      for (int i = 0; i < 10; ++i) {
        if (!client.Send("?- tc(a0, Y).\n")) return;
        std::string answer = client.ReadResponse();
        if (answer.find("20 answer(s)") != std::string::npos) last = 20;
      }
      answer_counts[c] = last;
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < 6; ++c) EXPECT_EQ(answer_counts[c], 20) << "client " << c;

  EXPECT_GT(service.stats().result_cache_hits, 0);
  server.Stop();
  // Stop is idempotent and leaves the service usable in-process.
  server.Stop();
  EXPECT_TRUE(service.Query("?- tc(a0, Y).").status.ok());
}

/// Connection churn must not leak fds or thread handles: clients that
/// quit cleanly, vanish silently, or RST the server mid-banner (the
/// historical fd-leak path) all leave the process at its baseline fd
/// count, and finished connection threads get reaped instead of
/// accumulating until Stop().
TEST(ServiceServerTest, ConnectionChurnLeaksNoFdsOrThreads) {
  QueryService service;
  ASSERT_TRUE(service.Update("p(a).").status.ok());
  ServerOptions threaded;
  threaded.mode = ServerOptions::Mode::kThreaded;
  TcpServer server(&service, threaded);
  StatusOr<int> port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();

  {
    Client warm(*port);  // settle lazy allocations into the baseline
    ASSERT_TRUE(warm.connected());
    warm.ReadResponse();
  }
  ASSERT_TRUE(EventuallyTrue(
      [&] { return server.tracked_connection_threads() <= 1; }));
  const int fds_before = CountOpenFds();
  ASSERT_GT(fds_before, 0);

  constexpr int kChurn = 45;
  for (int i = 0; i < kChurn; ++i) {
    Client client(*port);
    ASSERT_TRUE(client.connected()) << "connection " << i;
    switch (i % 3) {
      case 0:  // polite: banner, :quit, server closes
        client.ReadResponse();
        client.Send(":quit\n");
        client.ReadResponse();
        break;
      case 1:  // vanishing: close without ever reading
        break;
      case 2:  // violent: RST racing the banner send
        client.Abort();
        break;
    }
  }

  // One more connection cycles the accept loop, which reaps finished
  // threads before blocking again.
  ASSERT_TRUE(EventuallyTrue([&] {
    Client probe(*port);
    if (!probe.connected()) return false;
    probe.ReadResponse();
    probe.Send(":quit\n");
    probe.ReadResponse();
    return server.tracked_connection_threads() <= 2;
  }));
  EXPECT_LE(server.tracked_connection_threads(), 2)
      << "dead connection threads must be reaped, not accumulated";

  // All churned sockets must be closed again; allow a little slack for
  // the final probe connection still draining.
  EXPECT_TRUE(EventuallyTrue([&] {
    int now = CountOpenFds();
    return now >= 0 && now <= fds_before + 2;
  })) << "fd count grew from " << fds_before << " to " << CountOpenFds();

  server.Stop();
}

/// A pipelined client that sends a burst of requests in one segment
/// must get every response, in order — and the server drains the
/// many-lines-in-one-recv buffer in linear time (read offset +
/// one compaction per recv, not erase-per-line).
TEST(ServiceServerTest, PipelinedClientGetsOrderedResponses) {
  QueryService service;
  ASSERT_TRUE(service.Update("p(a).\np(b).\nq(c).\n").status.ok());
  ServerOptions threaded;
  threaded.mode = ServerOptions::Mode::kThreaded;
  TcpServer server(&service, threaded);
  StatusOr<int> port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();

  Client client(*port);
  ASSERT_TRUE(client.connected());
  client.ReadResponse();  // banner

  constexpr int kRequests = 120;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += i % 2 == 0 ? "?- p(X).\n" : "?- q(X).\n";
  }
  ASSERT_TRUE(client.Send(burst));
  for (int i = 0; i < kRequests; ++i) {
    std::string answer = client.ReadResponse();
    if (i % 2 == 0) {
      EXPECT_NE(answer.find("2 answer(s)"), std::string::npos)
          << "request " << i << ": " << answer;
    } else {
      EXPECT_NE(answer.find("1 answer(s)"), std::string::npos)
          << "request " << i << ": " << answer;
    }
  }
  server.Stop();
}

}  // namespace
}  // namespace chainsplit
