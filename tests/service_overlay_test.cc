// Snapshot-isolated evaluation: the shared-lock overlay path must be
// answer-for-answer identical to the exclusive-lock baseline
// (force_exclusive) and must leave the base database untouched — no
// new base relations, no version bumps, regardless of technique.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "service/query_service.h"
#include "workload/graph_gen.h"

namespace chainsplit {
namespace {

constexpr const char* kTcProgram =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
    "rtc(X, Y) :- edge(Y, X).\n"
    "rtc(X, Y) :- edge(Z, X), rtc(Z, Y).\n"
    "sg(X, Y) :- edge(P, X), edge(P, Y).\n";

void Seed(QueryService* service) {
  GraphOptions graph;
  graph.num_nodes = 60;
  graph.num_edges = 150;
  graph.acyclic = true;
  graph.seed = 17;
  GenerateGraph(&service->db(), "edge", graph);
  UpdateResponse rules = service->Update(kTcProgram);
  ASSERT_TRUE(rules.status.ok()) << rules.status;
}

std::vector<std::string> Queries() {
  std::vector<std::string> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(StrCat("?- tc(n", i * 3, ", Y)."));
    queries.push_back(StrCat("?- rtc(n", i * 3 + 1, ", Y)."));
  }
  queries.push_back("?- sg(n5, Y).");
  queries.push_back("?- tc(X, n40).");
  return queries;
}

std::string Flatten(const QueryResponse& response) {
  std::string flat;
  for (const std::vector<std::string>& row : response.rows) {
    flat += StrJoin(row, ",");
    flat += ";";
  }
  return flat;
}

/// Sorted (pred, version) snapshot of every base relation.
std::vector<std::pair<PredId, uint64_t>> BaseSnapshot(Database* db) {
  std::vector<std::pair<PredId, uint64_t>> snapshot;
  for (PredId pred : db->StoredPredicates()) {
    snapshot.emplace_back(pred, db->GetRelation(pred)->version());
  }
  std::sort(snapshot.begin(), snapshot.end());
  return snapshot;
}

TEST(ServiceOverlayTest, OverlayMatchesExclusiveAndBaseStaysFrozen) {
  QueryService service;
  Seed(&service);
  const std::vector<std::pair<PredId, uint64_t>> before =
      BaseSnapshot(&service.db());
  ASSERT_FALSE(before.empty());

  // Overlay path first (the default): byte answers recorded, base
  // checked after every query — the overlay must never leak into it.
  RequestOptions overlay;
  overlay.bypass_cache = true;
  std::vector<std::string> overlay_answers;
  for (const std::string& text : Queries()) {
    QueryResponse r = service.Query(text, overlay);
    ASSERT_TRUE(r.status.ok()) << text << ": " << r.status;
    overlay_answers.push_back(Flatten(r));
    EXPECT_EQ(BaseSnapshot(&service.db()), before) << text;
  }

  // Exclusive baseline second: identical answers, byte for byte. The
  // baseline keeps the pre-overlay semantics — derived relations
  // persist in the base — so each query gets a pristine, identically
  // seeded service (overlay queries start pristine by construction).
  RequestOptions exclusive;
  exclusive.bypass_cache = true;
  exclusive.force_exclusive = true;
  const std::vector<std::string> queries = Queries();
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryService baseline;
    Seed(&baseline);
    QueryResponse r = baseline.Query(queries[i], exclusive);
    ASSERT_TRUE(r.status.ok()) << queries[i] << ": " << r.status;
    EXPECT_EQ(Flatten(r), overlay_answers[i]) << queries[i];
    EXPECT_EQ(baseline.stats().exclusive_evals, 1);
  }

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shared_evals, static_cast<int64_t>(queries.size()));
  EXPECT_EQ(stats.exclusive_evals, 0);
  EXPECT_GT(stats.overlay_relations, 0);
  EXPECT_GT(stats.overlay_bytes, 0);
}

TEST(ServiceOverlayTest, CachedPathMatchesOverlayReference) {
  QueryService service;
  Seed(&service);
  RequestOptions bypass;
  bypass.bypass_cache = true;
  for (const std::string& text : Queries()) {
    QueryResponse reference = service.Query(text, bypass);
    QueryResponse fill = service.Query(text);
    QueryResponse hit = service.Query(text);
    ASSERT_TRUE(reference.status.ok()) << reference.status;
    ASSERT_TRUE(fill.status.ok()) << fill.status;
    ASSERT_TRUE(hit.status.ok()) << hit.status;
    EXPECT_TRUE(hit.result_cache_hit) << text;
    EXPECT_EQ(Flatten(fill), Flatten(reference)) << text;
    EXPECT_EQ(Flatten(hit), Flatten(reference)) << text;
  }
}

TEST(ServiceOverlayTest, OverlayAnswersSeeFreshFacts) {
  // A fact write between two uncached overlay queries must be visible
  // to the second one (the overlay snapshots at query start, not at
  // service construction).
  QueryService service;
  UpdateResponse seeded = service.Update(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
      "edge(a, b).\n");
  ASSERT_TRUE(seeded.status.ok()) << seeded.status;

  RequestOptions bypass;
  bypass.bypass_cache = true;
  QueryResponse first = service.Query("?- tc(a, Y).", bypass);
  ASSERT_TRUE(first.status.ok());
  EXPECT_EQ(first.rows.size(), 1u);

  UpdateResponse grown = service.Update("edge(b, c).\n");
  ASSERT_TRUE(grown.status.ok());
  QueryResponse second = service.Query("?- tc(a, Y).", bypass);
  ASSERT_TRUE(second.status.ok());
  EXPECT_EQ(second.rows.size(), 2u);
}

}  // namespace
}  // namespace chainsplit
