#include "core/chain_compile.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "core/rectify.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

class ChainCompileTest : public ::testing::Test {
 protected:
  ChainCompileTest() : program_(&pool_) {}

  StatusOr<CompiledChain> Compile(std::string_view text,
                                  std::string_view pred, int arity) {
    EXPECT_TRUE(ParseProgram(text, &program_).ok());
    rectified_ = RectifyRules(&program_);
    return CompileChain(program_, rectified_,
                        program_.preds().Find(pred, arity).value());
  }

  TermPool pool_;
  Program program_;
  std::vector<Rule> rectified_;
};

TEST_F(ChainCompileTest, SgCompilesIntoTwoPaths) {
  auto chain = Compile(R"(
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
)",
                       "sg", 2);
  ASSERT_TRUE(chain.ok()) << chain.status();
  EXPECT_EQ(chain->paths.size(), 2u);  // {parent(X,X1)}, {parent(Y,Y1)}
  EXPECT_EQ(chain->exit_rules.size(), 1u);
  EXPECT_EQ(chain->recursive_literal, 1);
  for (const ChainPath& path : chain->paths) {
    EXPECT_EQ(path.literals.size(), 1u);
    EXPECT_EQ(path.head_vars.size(), 1u);
    EXPECT_EQ(path.rec_vars.size(), 1u);
  }
}

TEST_F(ChainCompileTest, ScsgCompilesIntoSinglePath) {
  // Example 1.2: same_country connects the two parent literals into
  // ONE chain generating path — the one chain-split must split.
  auto chain = Compile(R"(
scsg(X, Y) :- sibling(X, Y).
scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1),
              scsg(X1, Y1).
)",
                       "scsg", 2);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_EQ(chain->paths.size(), 1u);
  EXPECT_EQ(chain->paths[0].literals.size(), 3u);
  EXPECT_EQ(chain->paths[0].head_vars.size(), 2u);  // X and Y
  EXPECT_EQ(chain->paths[0].rec_vars.size(), 2u);   // X1 and Y1
}

TEST_F(ChainCompileTest, AppendChainHasConnectedConsPredicates) {
  // Rule (1.16)/(1.17): one path {cons(X1,U1,U), cons(X1,W1,W)}.
  auto chain = Compile(AppendProgramSource(), "append", 3);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_EQ(chain->paths.size(), 1u);
  EXPECT_EQ(chain->paths[0].literals.size(), 2u);
}

TEST_F(ChainCompileTest, TravelChainConnectsFlightSumCons) {
  auto chain = Compile(R"(
travel(L, D, A, F) :- flight(Fno, D, A, F), cons(Fno, [], L).
travel(L, D, A, F) :- flight(Fno, D, A1, F1), travel(L1, A1, A, F2),
                      F is F1 + F2, cons(Fno, L1, L).
)",
                       "travel", 4);
  ASSERT_TRUE(chain.ok()) << chain.status();
  ASSERT_EQ(chain->paths.size(), 1u);  // flight-sum-cons all connected
  EXPECT_EQ(chain->paths[0].literals.size(), 3u);
  EXPECT_EQ(chain->exit_rules.size(), 1u);
}

TEST_F(ChainCompileTest, NoRecursiveRuleRejected) {
  auto chain = Compile("p(X) :- e(X).", "p", 1);
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ChainCompileTest, NoExitRuleRejected) {
  auto chain = Compile("p(X) :- e(X, Y), p(Y).", "p", 1);
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ChainCompileTest, NonLinearRuleRejected) {
  auto chain = Compile(R"(
p(X, Y) :- e(X, Y).
p(X, Y) :- p(X, Z), p(Z, Y).
)",
                       "p", 2);
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.status().code(), StatusCode::kUnimplemented);
}

TEST_F(ChainCompileTest, MultipleRecursiveRulesRejected) {
  auto chain = Compile(R"(
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
p(X, Y) :- f(X, Z), p(Z, Y).
)",
                       "p", 2);
  ASSERT_FALSE(chain.ok());
  EXPECT_EQ(chain.status().code(), StatusCode::kUnimplemented);
}

TEST_F(ChainCompileTest, MultipleExitRulesKept) {
  auto chain = Compile(R"(
p(X, Y) :- e0(X, Y).
p(X, Y) :- e1(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
)",
                       "p", 2);
  ASSERT_TRUE(chain.ok());
  EXPECT_EQ(chain->exit_rules.size(), 2u);
}

TEST_F(ChainCompileTest, ToStringMentionsPathsAndExits) {
  auto chain = Compile(R"(
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
)",
                       "sg", 2);
  ASSERT_TRUE(chain.ok());
  std::string text = CompiledChainToString(program_, *chain);
  EXPECT_NE(text.find("2 chain generating path(s)"), std::string::npos);
  EXPECT_NE(text.find("exit:"), std::string::npos);
}

}  // namespace
}  // namespace chainsplit
