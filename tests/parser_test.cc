#include "ast/parser.h"

#include <gtest/gtest.h>

#include <random>

#include "ast/builtin_names.h"
#include "ast/printer.h"
#include "term/list_utils.h"

namespace chainsplit {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : program_(&pool_) {}
  TermPool pool_;
  Program program_;
};

TEST_F(ParserTest, ParsesGroundFact) {
  ASSERT_TRUE(ParseProgram("parent(tom, bob).", &program_).ok());
  ASSERT_EQ(program_.facts().size(), 1u);
  EXPECT_TRUE(program_.rules().empty());
  const Atom& fact = program_.facts()[0];
  EXPECT_EQ(program_.preds().name(fact.pred), "parent");
  EXPECT_EQ(fact.args[0], pool_.MakeSymbol("tom"));
  EXPECT_EQ(fact.args[1], pool_.MakeSymbol("bob"));
}

TEST_F(ParserTest, ParsesRuleWithBody) {
  ASSERT_TRUE(
      ParseProgram("sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).",
                   &program_)
          .ok());
  ASSERT_EQ(program_.rules().size(), 1u);
  const Rule& rule = program_.rules()[0];
  EXPECT_EQ(rule.body.size(), 3u);
  EXPECT_EQ(rule.head.args[0], pool_.MakeVariable("X"));
  EXPECT_EQ(rule.body[1].pred, rule.head.pred);
}

TEST_F(ParserTest, ParsesQuery) {
  ASSERT_TRUE(ParseProgram("?- sg(tom, Y).", &program_).ok());
  ASSERT_EQ(program_.queries().size(), 1u);
  EXPECT_EQ(program_.queries()[0].goals.size(), 1u);
}

TEST_F(ParserTest, ParsesListSugar) {
  auto term = ParseTerm("[1, 2 | T]", &program_);
  ASSERT_TRUE(term.ok());
  EXPECT_EQ(pool_.ToString(*term), "[1, 2 | T]");
  auto ground = ParseTerm("[5, 7, 1]", &program_);
  ASSERT_TRUE(ground.ok());
  auto ints = ListInts(pool_, *ground);
  ASSERT_TRUE(ints.has_value());
  EXPECT_EQ(*ints, (std::vector<int64_t>{5, 7, 1}));
  auto empty = ParseTerm("[]", &program_);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(pool_.IsNil(*empty));
}

TEST_F(ParserTest, DesugarsComparisons) {
  ASSERT_TRUE(
      ParseProgram("p(X, Y) :- q(X, Y), X > Y, X \\= 3.", &program_).ok());
  const Rule& rule = program_.rules()[0];
  ASSERT_EQ(rule.body.size(), 3u);
  EXPECT_EQ(program_.preds().name(rule.body[1].pred), kPredGt);
  EXPECT_EQ(program_.preds().name(rule.body[2].pred), kPredNe);
}

TEST_F(ParserTest, DesugarsIsArithmetic) {
  ASSERT_TRUE(
      ParseProgram("p(Z) :- q(X, Y), Z is X + Y.", &program_).ok());
  const Atom& sum = program_.rules()[0].body[1];
  EXPECT_EQ(program_.preds().name(sum.pred), kPredSum);
  ASSERT_EQ(sum.args.size(), 3u);
  EXPECT_EQ(sum.args[0], pool_.MakeVariable("X"));
  EXPECT_EQ(sum.args[1], pool_.MakeVariable("Y"));
  EXPECT_EQ(sum.args[2], pool_.MakeVariable("Z"));
}

TEST_F(ParserTest, DesugarsIsSubtractionIntoSum) {
  // Z is X - Y  <=>  X = Y + Z  <=>  sum(Y, Z, X).
  ASSERT_TRUE(ParseProgram("p(Z) :- q(X, Y), Z is X - Y.", &program_).ok());
  const Atom& sum = program_.rules()[0].body[1];
  EXPECT_EQ(program_.preds().name(sum.pred), kPredSum);
  EXPECT_EQ(sum.args[0], pool_.MakeVariable("Y"));
  EXPECT_EQ(sum.args[1], pool_.MakeVariable("Z"));
  EXPECT_EQ(sum.args[2], pool_.MakeVariable("X"));
}

TEST_F(ParserTest, ParsesEqualityAndUnderscore) {
  ASSERT_TRUE(ParseProgram("p(X, Y) :- X = Y, q(_, _).", &program_).ok());
  const Rule& rule = program_.rules()[0];
  EXPECT_EQ(program_.preds().name(rule.body[0].pred), kPredEq);
  // Each _ is a distinct fresh variable.
  EXPECT_NE(rule.body[1].args[0], rule.body[1].args[1]);
}

TEST_F(ParserTest, NegativeIntegerLiteral) {
  auto term = ParseTerm("-12", &program_);
  ASSERT_TRUE(term.ok());
  EXPECT_EQ(pool_.int_value(*term), -12);
}

TEST_F(ParserTest, CompoundTermsInFacts) {
  // A ground compound argument is a constant: still a fact.
  ASSERT_TRUE(ParseProgram("likes(pair(a, b), tom).", &program_).ok());
  EXPECT_EQ(program_.facts().size(), 1u);
}

TEST_F(ParserTest, NonGroundHeadBecomesRule) {
  ASSERT_TRUE(ParseProgram("append([], L, L).", &program_).ok());
  EXPECT_TRUE(program_.facts().empty());
  ASSERT_EQ(program_.rules().size(), 1u);
  EXPECT_TRUE(program_.rules()[0].body.empty());
}

TEST_F(ParserTest, CommentsAndWhitespace) {
  ASSERT_TRUE(ParseProgram(R"(
% a comment
p(a).   % trailing comment

p(b).
)",
                           &program_)
                  .ok());
  EXPECT_EQ(program_.facts().size(), 2u);
}

TEST_F(ParserTest, ErrorsCarryPosition) {
  Status status = ParseProgram("p(a) q(b).", &program_);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("1:"), std::string::npos);
}

TEST_F(ParserTest, RejectsUnterminatedClause) {
  EXPECT_FALSE(ParseProgram("p(a)", &program_).ok());
  EXPECT_FALSE(ParseProgram("p(a", &program_).ok());
  EXPECT_FALSE(ParseProgram("p(a,).", &program_).ok());
}

TEST_F(ParserTest, RejectsUnknownCharacter) {
  Status status = ParseProgram("p(a) &- q(b).", &program_);
  EXPECT_FALSE(status.ok());
}

TEST_F(ParserTest, ParsesIsortProgramShape) {
  ASSERT_TRUE(ParseProgram(R"(
isort([X|Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
isort([], []).
insert(X, [], [X]).
insert(X, [Y|Ys], [Y|Zs]) :- X > Y, insert(X, Ys, Zs).
insert(X, [Y|Ys], [X, Y|Ys]) :- X =< Y.
)",
                           &program_)
                  .ok());
  // isort([], []) is ground -> fact; the rest are rules.
  EXPECT_EQ(program_.facts().size(), 1u);
  EXPECT_EQ(program_.rules().size(), 4u);
}

TEST_F(ParserTest, ParseAtomHelper) {
  auto atom = ParseAtom("sg(tom, Y)", &program_);
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(program_.preds().Display(atom->pred), "sg/2");
}

TEST_F(ParserTest, LowercaseConstantComparison) {
  // "x < y" where x is a constant symbol: parsed as comparison goal.
  ASSERT_TRUE(ParseProgram("p :- q(X), X > 3.", &program_).ok());
  EXPECT_EQ(program_.rules().size(), 1u);
}

// Robustness sweep: malformed inputs must produce an error Status (or
// parse), never crash. The inputs are byte soups generated from a
// grammar-ish alphabet so some are valid prefixes.
class ParserRobustness : public ::testing::TestWithParam<int> {};

TEST_P(ParserRobustness, GarbageNeverCrashes) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  const std::string alphabet = "abXY09(),.[]|:-?<>=\\ \t\n%+*_";
  for (int round = 0; round < 200; ++round) {
    std::string input;
    size_t len = rng() % 60;
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng() % alphabet.size()]);
    }
    TermPool pool;
    Program program(&pool);
    Status status = ParseProgram(input, &program);
    // Either outcome is fine; what matters is no crash and a usable
    // Status object.
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
      EXPECT_FALSE(status.ToString().empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustness, ::testing::Range(1, 6));

}  // namespace
}  // namespace chainsplit
