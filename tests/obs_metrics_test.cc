// MetricsRegistry: counters, gauges, log-bucketed histograms with
// read-time quantiles, callback-backed series, Prometheus text
// exposition and family totals.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <vector>

namespace chainsplit {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(CounterTest, IncAndValue) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Inc();
  counter.Inc(41);
  EXPECT_EQ(counter.Value(), 42);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Set(0);
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(HistogramTest, CountSumAndBuckets) {
  Histogram histogram;
  histogram.Record(0);    // bucket 0 (< 1)
  histogram.Record(1);    // bucket 1 (< 2)
  histogram.Record(100);  // bucket 7 (< 128)
  Histogram::Snapshot snap = histogram.Read();
  EXPECT_EQ(snap.count, 3);
  EXPECT_EQ(snap.sum, 101);
  EXPECT_EQ(snap.buckets[0], 1);
  EXPECT_EQ(snap.buckets[1], 1);
  EXPECT_EQ(snap.buckets[7], 1);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwo) {
  EXPECT_EQ(Histogram::Snapshot::BucketBound(0), 1);
  EXPECT_EQ(Histogram::Snapshot::BucketBound(1), 2);
  EXPECT_EQ(Histogram::Snapshot::BucketBound(10), 1024);
  // The last bucket is +Inf.
  EXPECT_GT(Histogram::Snapshot::BucketBound(Histogram::kBuckets - 1),
            int64_t{1} << 60);
}

TEST(HistogramTest, OverflowLandsInInfBucket) {
  Histogram histogram;
  histogram.Record(int64_t{1} << 40);  // beyond the largest finite bound
  Histogram::Snapshot snap = histogram.Read();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.buckets[Histogram::kBuckets - 1], 1);
}

TEST(HistogramTest, QuantileOnEmptyIsZero) {
  Histogram histogram;
  EXPECT_EQ(histogram.Read().Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantilesAreMonotoneAndBucketAccurate) {
  Histogram histogram;
  // 90 fast samples (~8us) and 10 slow ones (~1000us): p50 must sit in
  // the fast bucket, p99 in the slow one.
  for (int i = 0; i < 90; ++i) histogram.Record(8);
  for (int i = 0; i < 10; ++i) histogram.Record(1000);
  Histogram::Snapshot snap = histogram.Read();
  double p50 = snap.Quantile(0.5);
  double p95 = snap.Quantile(0.95);
  double p99 = snap.Quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p50, 16.0);     // fast bucket upper bound
  EXPECT_GT(p99, 512.0);    // slow bucket lower bound
  EXPECT_LE(p99, 1024.0);   // slow bucket upper bound
}

TEST(RegistryTest, ReregistrationReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.AddCounter("requests_total", "help");
  Counter* b = registry.AddCounter("requests_total", "help");
  EXPECT_EQ(a, b);
  // Same name, different labels: a distinct series in the same family.
  Counter* c =
      registry.AddCounter("requests_total", "help", {{"outcome", "ok"}});
  EXPECT_NE(a, c);
}

TEST(RegistryTest, CounterFamilyTotalSumsLabelSets) {
  MetricsRegistry registry;
  registry.AddCounter("req_total", "help", {{"outcome", "ok"}})->Inc(5);
  registry.AddCounter("req_total", "help", {{"outcome", "error"}})->Inc(2);
  std::atomic<int64_t> rejected{3};
  uint64_t id = registry.AddCallback(
      "req_total", "help", MetricType::kCounter, {{"outcome", "rejected"}},
      [&rejected] { return static_cast<double>(rejected.load()); });
  EXPECT_DOUBLE_EQ(registry.CounterFamilyTotal("req_total"), 10.0);
  EXPECT_DOUBLE_EQ(registry.CounterFamilyTotal("absent_total"), 0.0);
  registry.RemoveCallback(id);
  EXPECT_DOUBLE_EQ(registry.CounterFamilyTotal("req_total"), 7.0);
}

TEST(RegistryTest, CallbackSeriesRenderAndUnregister) {
  MetricsRegistry registry;
  std::atomic<int64_t> depth{17};
  uint64_t id = registry.AddCallback(
      "queue_depth", "current depth", MetricType::kGauge, {{"port", "1234"}},
      [&depth] { return static_cast<double>(depth.load()); });
  std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "# TYPE queue_depth gauge"));
  EXPECT_TRUE(Contains(text, "queue_depth{port=\"1234\"} 17"));
  registry.RemoveCallback(id);
  EXPECT_FALSE(Contains(registry.RenderPrometheus(), "queue_depth"));
  registry.RemoveCallback(id);  // double-remove is harmless
}

TEST(RegistryTest, PrometheusExpositionShape) {
  MetricsRegistry registry;
  registry.AddCounter("reqs_total", "Requests", {{"outcome", "ok"}})->Inc(3);
  registry.AddCounter("reqs_total", "Requests", {{"outcome", "error"}})
      ->Inc(1);
  registry.AddGauge("open_conns", "Open connections")->Set(2);
  Histogram* latency = registry.AddHistogram("latency_us", "Latency");
  latency->Record(3);
  latency->Record(300);

  std::string text = registry.RenderPrometheus();
  // One HELP/TYPE block per family, not per series.
  EXPECT_EQ(text.find("# HELP reqs_total"), text.rfind("# HELP reqs_total"));
  EXPECT_TRUE(Contains(text, "# TYPE reqs_total counter"));
  EXPECT_TRUE(Contains(text, "reqs_total{outcome=\"ok\"} 3"));
  EXPECT_TRUE(Contains(text, "reqs_total{outcome=\"error\"} 1"));
  EXPECT_TRUE(Contains(text, "# TYPE open_conns gauge"));
  EXPECT_TRUE(Contains(text, "open_conns 2"));
  // Histogram: cumulative buckets, +Inf, sum/count, quantile family.
  EXPECT_TRUE(Contains(text, "# TYPE latency_us histogram"));
  EXPECT_TRUE(Contains(text, "latency_us_bucket{le=\"+Inf\"} 2"));
  EXPECT_TRUE(Contains(text, "latency_us_sum 303"));
  EXPECT_TRUE(Contains(text, "latency_us_count 2"));
  EXPECT_TRUE(Contains(text, "# TYPE latency_us_quantile gauge"));
  EXPECT_TRUE(Contains(text, "latency_us_quantile{quantile=\"0.5\"}"));
  // Quantile labels are exact decimal strings, not double round-trips.
  EXPECT_TRUE(Contains(text, "quantile=\"0.95\""));
  EXPECT_TRUE(Contains(text, "quantile=\"0.99\""));
  EXPECT_FALSE(Contains(text, "0.94999"));
}

TEST(RegistryTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* latency = registry.AddHistogram("lat_us", "Latency");
  latency->Record(0);  // bucket le="1"
  latency->Record(3);  // bucket le="4"
  std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "lat_us_bucket{le=\"1\"} 1"));
  EXPECT_TRUE(Contains(text, "lat_us_bucket{le=\"4\"} 2"));
  EXPECT_TRUE(Contains(text, "lat_us_bucket{le=\"+Inf\"} 2"));
}

TEST(RegistryTest, EscapesLabelValues) {
  MetricsRegistry registry;
  registry.AddCounter("c_total", "help", {{"path", "a\"b\\c\nd"}})->Inc();
  std::string text = registry.RenderPrometheus();
  EXPECT_TRUE(Contains(text, "path=\"a\\\"b\\\\c\\nd\""));
}

TEST(RegistryTest, SnapshotCoversAllSeries) {
  MetricsRegistry registry;
  registry.AddCounter("queries_total", "help")->Inc(7);
  registry.AddGauge("depth", "help")->Set(4);
  Histogram* latency = registry.AddHistogram("lat_us", "help");
  latency->Record(10);

  bool saw_counter = false, saw_gauge = false;
  bool saw_count = false, saw_sum = false;
  int quantile_samples = 0;
  for (const MetricSample& sample : registry.Snapshot()) {
    if (sample.name == "queries_total") {
      saw_counter = true;
      EXPECT_DOUBLE_EQ(sample.value, 7.0);
    } else if (sample.name == "depth") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(sample.value, 4.0);
    } else if (sample.name == "lat_us_count") {
      saw_count = true;
      EXPECT_DOUBLE_EQ(sample.value, 1.0);
    } else if (sample.name == "lat_us_sum") {
      saw_sum = true;
      EXPECT_DOUBLE_EQ(sample.value, 10.0);
    } else if (sample.name == "lat_us_quantile") {
      ++quantile_samples;
      ASSERT_EQ(sample.labels.size(), 1u);
      EXPECT_EQ(sample.labels[0].first, "quantile");
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_count);
  EXPECT_TRUE(saw_sum);
  EXPECT_EQ(quantile_samples, 3);
}

}  // namespace
}  // namespace chainsplit
