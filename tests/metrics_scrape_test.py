#!/usr/bin/env python3
"""End-to-end metrics scrape over the TCP line protocol.

Starts `csdd --serve 0`, runs a known query/update mix through a
socket client, then scrapes `:metrics` and checks that

  * the output is well-formed Prometheus text exposition (0.0.4):
    every sample line parses, every family has exactly one HELP and
    one TYPE comment, and they precede the family's samples;
  * the series reconcile with the traffic: csdd_queries_total equals
    the queries sent, csdd_updates_total the updates sent, the
    csdd_requests_total outcome family sums to all service requests,
    and the latency histogram's _count equals the query count with a
    cumulative, monotone bucket series capped by +Inf == _count;
  * net-, cache-, storage- and evaluator-level families are present,
    so one scrape covers every subsystem.

Usage: metrics_scrape_test.py /path/to/csdd
"""

import re
import signal
import socket
import subprocess
import sys


def read_frame(sock_file):
    """Reads one '.'-terminated response frame; returns its lines."""
    lines = []
    while True:
        line = sock_file.readline()
        if not line:
            raise AssertionError("connection closed mid-frame")
        line = line.rstrip("\n")
        if line == ".":
            return lines
        lines.append(line)


def main():
    csdd = sys.argv[1]
    proc = subprocess.Popen(
        [csdd, "--serve", "0"],
        stdin=subprocess.DEVNULL,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        port = None
        for line in proc.stdout:
            match = re.search(r"serving on port (\d+)", line)
            if match:
                port = int(match.group(1))
                break
        assert port is not None, "server never reported its port"

        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        sock_file = sock.makefile("r")
        read_frame(sock_file)  # banner

        def send(line):
            sock.sendall((line + "\n").encode())
            return read_frame(sock_file)

        updates = [
            "tc(X, Y) :- edge(X, Y).",
            "tc(X, Y) :- edge(X, Z), tc(Z, Y).",
            "edge(a, b).",
            "edge(b, c).",
            "edge(c, d).",
        ]
        queries = [
            "?- tc(a, Y).",
            "?- tc(a, Y).",  # result-cache hit
            "?- edge(X, Y).",
            "?- tc(a Y.",  # parse error: outcome=error, still a request
        ]
        for line in updates:
            send(line)
        for line in queries:
            send(line)

        exposition = send(":metrics")

        # --- Exposition well-formedness ---------------------------------
        sample_re = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'         # metric name
            r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'  # first label
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'
            r" [-+0-9.eEinf]+$"                   # value
        )
        samples = {}      # full series line name{labels} -> float value
        help_seen = {}
        type_seen = {}
        families_announced = set()
        for line in exposition:
            if line.startswith("# HELP "):
                family = line.split()[2]
                assert family not in help_seen, f"duplicate HELP {family}"
                help_seen[family] = True
                families_announced.add(family)
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                family, kind = parts[2], parts[3]
                assert family not in type_seen, f"duplicate TYPE {family}"
                assert kind in ("counter", "gauge", "histogram"), line
                type_seen[family] = kind
                families_announced.add(family)
                continue
            assert sample_re.match(line), f"malformed sample line: {line!r}"
            name = line.split("{")[0].split(" ")[0]
            base = re.sub(r"_(bucket|sum|count)$", "", name)
            assert (
                name in families_announced or base in families_announced
            ), f"sample before its HELP/TYPE: {line!r}"
            key = line.rsplit(" ", 1)[0]
            samples[key] = float(line.rsplit(" ", 1)[1])
        assert set(help_seen) == set(type_seen), "HELP/TYPE mismatch"

        def family_sum(family):
            total = 0.0
            found = False
            for key, value in samples.items():
                if key == family or key.startswith(family + "{"):
                    total += value
                    found = True
            assert found, f"family absent: {family}"
            return total

        # --- Series consistency vs the traffic we generated -------------
        assert family_sum("csdd_queries_total") == len(queries)
        assert family_sum("csdd_updates_total") == len(updates)
        # Every request is ok except the one parse error.
        assert samples['csdd_requests_total{outcome="ok"}'] == (
            len(updates) + len(queries) - 1
        )
        assert samples['csdd_requests_total{outcome="error"}'] == 1
        assert family_sum("csdd_requests_total") == len(updates) + len(queries)
        assert samples['csdd_result_cache_lookups_total{result="hit"}'] >= 1

        # Latency histogram: one sample per query, cumulative buckets.
        count = samples["csdd_query_latency_us_count"]
        assert count == len(queries), (count, len(queries))
        buckets = []
        for key, value in samples.items():
            match = re.match(r'csdd_query_latency_us_bucket\{le="(.+)"\}', key)
            if match:
                le = match.group(1)
                bound = float("inf") if le == "+Inf" else float(le)
                buckets.append((bound, value))
        buckets.sort()
        assert buckets, "histogram emitted no buckets"
        assert buckets[-1][0] == float("inf"), "missing +Inf bucket"
        assert buckets[-1][1] == count, "+Inf bucket != _count"
        values = [value for _, value in buckets]
        assert values == sorted(values), "buckets are not cumulative"
        for quantile in ("0.5", "0.95", "0.99"):
            key = f'csdd_query_latency_us_quantile{{quantile="{quantile}"}}'
            assert key in samples, f"missing {key}"

        # --- Every subsystem is represented in one scrape ---------------
        for family in (
            "csdd_net_accepted_total",
            "csdd_net_bytes_total",
            "csdd_plan_cache_lookups_total",
            "csdd_evals_total",
            "csdd_fixpoint_iterations_total",
            "csdd_storage_relations",
            "csdd_storage_rows",
        ):
            family_sum(family)
        assert family_sum("csdd_net_accepted_total") >= 1

        sock.close()
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
    print("ok")


if __name__ == "__main__":
    main()
