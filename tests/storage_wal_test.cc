// WAL framing and scanning: CRC32 vectors, append/scan roundtrips,
// torn-tail tolerance vs. mid-log corruption errors, segment rotation
// and deletion.

#include "storage/wal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "common/strings.h"
#include "storage/crc32.h"
#include "storage/log_record.h"

namespace chainsplit {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            StrCat("cs_wal_test_", ::getpid(), "_",
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST(Crc32Test, KnownVectors) {
  // The canonical check value of CRC-32/ISO-HDLC.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("a"), 0xE8B7BE43u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32Test, SeedChainsPartialComputations) {
  const std::string text = "chain-split evaluation";
  for (size_t cut = 0; cut <= text.size(); ++cut) {
    EXPECT_EQ(Crc32(text.substr(cut), Crc32(text.substr(0, cut))),
              Crc32(text));
  }
}

TEST(WalRecordTest, UpdateRoundtrip) {
  WalRecord record;
  record.lsn = 42;
  record.type = WalRecordType::kUpdate;
  record.text = "p(a, b).\nq(X) :- p(X, _).\n";
  StatusOr<WalRecord> decoded = DecodeWalRecord(EncodeWalRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->lsn, 42u);
  EXPECT_EQ(decoded->type, WalRecordType::kUpdate);
  EXPECT_EQ(decoded->text, record.text);
}

TEST(WalRecordTest, CsvRoundtrip) {
  WalRecord record;
  record.lsn = 7;
  record.type = WalRecordType::kCsvLoad;
  record.text = "a|b\nc|d\n";
  record.pred_name = "edge";
  record.arity = 2;
  record.delimiter = '|';
  StatusOr<WalRecord> decoded = DecodeWalRecord(EncodeWalRecord(record));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->type, WalRecordType::kCsvLoad);
  EXPECT_EQ(decoded->text, record.text);
  EXPECT_EQ(decoded->pred_name, "edge");
  EXPECT_EQ(decoded->arity, 2);
  EXPECT_EQ(decoded->delimiter, '|');
}

TEST(WalRecordTest, RejectsTrailingBytesAndBadType) {
  WalRecord record;
  record.type = WalRecordType::kUpdate;
  record.text = "p(a).";
  std::string payload = EncodeWalRecord(record);
  EXPECT_FALSE(DecodeWalRecord(payload + "x").ok());
  payload[8] = 99;  // type byte (after the u64 lsn)
  EXPECT_FALSE(DecodeWalRecord(payload).ok());
}

TEST(WalPolicyTest, ParsePolicy) {
  EXPECT_EQ(*ParseWalSyncPolicy("always"), WalSyncPolicy::kAlways);
  EXPECT_EQ(*ParseWalSyncPolicy("interval"), WalSyncPolicy::kInterval);
  EXPECT_EQ(*ParseWalSyncPolicy("none"), WalSyncPolicy::kNone);
  EXPECT_FALSE(ParseWalSyncPolicy("sometimes").ok());
}

TEST(WalPolicyTest, LsnHexIsSortable) {
  EXPECT_EQ(LsnToHex(0), "0000000000000000");
  EXPECT_EQ(LsnToHex(255), "00000000000000ff");
  EXPECT_LT(LsnToHex(9), LsnToHex(10));
  EXPECT_LT(LsnToHex(99), LsnToHex(256));
}

std::vector<WalRecord> ScanAll(const std::string& dir, WalScanStats* stats,
                               Status* status) {
  std::vector<WalRecord> records;
  *status = Status::Ok();
  for (const WalSegment& segment : ListWalSegments(dir)) {
    WalScanStats one;
    *status = ScanWalFile(
        segment.path,
        [&](WalRecord&& record) -> Status {
          records.push_back(std::move(record));
          return Status::Ok();
        },
        &one);
    stats->records += one.records;
    if (one.torn_tail) {
      stats->torn_tail = true;
      stats->note = one.note;
    }
    if (!status->ok()) break;
  }
  return records;
}

TEST_F(WalTest, AppendScanRoundtrip) {
  {
    StatusOr<std::unique_ptr<Wal>> wal =
        Wal::Open(dir_, 1, {WalSyncPolicy::kNone, 0});
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (int i = 0; i < 5; ++i) {
      WalRecord record;
      record.type = WalRecordType::kUpdate;
      record.text = StrCat("p(a", i, ").");
      StatusOr<uint64_t> lsn = (*wal)->Append(std::move(record));
      ASSERT_TRUE(lsn.ok()) << lsn.status();
      EXPECT_EQ(*lsn, static_cast<uint64_t>(i + 1));
    }
    EXPECT_EQ((*wal)->last_lsn(), 5u);
    EXPECT_EQ((*wal)->stats().records, 5);
  }
  WalScanStats stats;
  Status status;
  std::vector<WalRecord> records = ScanAll(dir_, &stats, &status);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_FALSE(stats.torn_tail);
  ASSERT_EQ(records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(records[i].lsn, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(records[i].text, StrCat("p(a", i, ")."));
  }
}

TEST_F(WalTest, ReopenStartsFreshSegmentAndKeepsLsnSequence) {
  for (int run = 0; run < 3; ++run) {
    StatusOr<std::unique_ptr<Wal>> wal =
        Wal::Open(dir_, static_cast<uint64_t>(run * 2 + 1),
                  {WalSyncPolicy::kNone, 0});
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (int i = 0; i < 2; ++i) {
      WalRecord record;
      record.type = WalRecordType::kUpdate;
      record.text = StrCat("r", run, "i", i, ".");
      ASSERT_TRUE((*wal)->Append(std::move(record)).ok());
    }
  }
  EXPECT_EQ(ListWalSegments(dir_).size(), 3u);
  WalScanStats stats;
  Status status;
  std::vector<WalRecord> records = ScanAll(dir_, &stats, &status);
  ASSERT_TRUE(status.ok()) << status;
  ASSERT_EQ(records.size(), 6u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, i + 1);  // consecutive across segments
  }
}

TEST_F(WalTest, TornTailIsToleratedAtEveryCut) {
  {
    StatusOr<std::unique_ptr<Wal>> wal =
        Wal::Open(dir_, 1, {WalSyncPolicy::kNone, 0});
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (int i = 0; i < 3; ++i) {
      WalRecord record;
      record.type = WalRecordType::kUpdate;
      record.text = StrCat("fact_number_", i, "(with_some_payload).");
      ASSERT_TRUE((*wal)->Append(std::move(record)).ok());
    }
  }
  std::vector<WalSegment> segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  std::ifstream in(segments[0].path, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  // Frame boundaries of the intact file: a cut exactly on one is a
  // clean (shorter) log, anywhere else is a torn tail.
  std::set<size_t> boundaries{0};
  {
    size_t at = 0;
    while (at < full.size()) {
      uint32_t length = 0;
      memcpy(&length, full.data() + at, 4);  // little-endian test host
      at += 8 + length;
      boundaries.insert(at);
    }
  }

  // Cut the file at every length shorter than full: the scan must
  // never error, and must only drop whole records from the tail.
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::ofstream out(segments[0].path,
                      std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(cut));
    out.close();
    WalScanStats stats;
    Status status = ScanWalFile(
        segments[0].path, [](WalRecord&&) { return Status::Ok(); }, &stats);
    ASSERT_TRUE(status.ok()) << "cut=" << cut << ": " << status;
    EXPECT_EQ(stats.torn_tail, boundaries.count(cut) == 0) << "cut=" << cut;
    EXPECT_LE(stats.records, 3);
  }
}

TEST_F(WalTest, BitFlipMidLogIsAHardError) {
  {
    StatusOr<std::unique_ptr<Wal>> wal =
        Wal::Open(dir_, 1, {WalSyncPolicy::kNone, 0});
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (int i = 0; i < 3; ++i) {
      WalRecord record;
      record.type = WalRecordType::kUpdate;
      record.text = StrCat("stable_payload_", i, "(a, b, c).");
      ASSERT_TRUE((*wal)->Append(std::move(record)).ok());
    }
  }
  std::vector<WalSegment> segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  std::ifstream in(segments[0].path, std::ios::binary);
  std::string full((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  // Flip one bit inside the *first* record's payload (offset 8 is just
  // past its frame header).
  std::string flipped = full;
  flipped[10] = static_cast<char>(flipped[10] ^ 0x40);
  std::ofstream out(segments[0].path, std::ios::binary | std::ios::trunc);
  out.write(flipped.data(), static_cast<std::streamsize>(flipped.size()));
  out.close();

  WalScanStats stats;
  int applied = 0;
  Status status = ScanWalFile(
      segments[0].path,
      [&](WalRecord&&) {
        ++applied;
        return Status::Ok();
      },
      &stats);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("crc mismatch"), std::string::npos)
      << status;
  // Nothing after the hole was applied.
  EXPECT_EQ(applied, 0);
}

TEST_F(WalTest, RotateAndDeleteSegmentsBelow) {
  StatusOr<std::unique_ptr<Wal>> wal =
      Wal::Open(dir_, 1, {WalSyncPolicy::kNone, 0});
  ASSERT_TRUE(wal.ok()) << wal.status();
  for (int i = 0; i < 4; ++i) {
    WalRecord record;
    record.type = WalRecordType::kUpdate;
    record.text = StrCat("p(", i, ").");
    ASSERT_TRUE((*wal)->Append(std::move(record)).ok());
  }
  ASSERT_TRUE((*wal)->Rotate().ok());  // seals lsns 1..4
  // Rotate with an empty current segment is a no-op.
  ASSERT_TRUE((*wal)->Rotate().ok());
  EXPECT_EQ(ListWalSegments(dir_).size(), 2u);

  WalRecord record;
  record.type = WalRecordType::kUpdate;
  record.text = "p(4).";
  ASSERT_TRUE((*wal)->Append(std::move(record)).ok());

  // A snapshot at lsn 4 keeps lsn 5+: the sealed segment (1..4) goes.
  StatusOr<int> removed = (*wal)->DeleteSegmentsBelow(5);
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(*removed, 1);
  std::vector<WalSegment> segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_EQ(segments[0].first_lsn, 5u);

  // The current segment is never deleted, whatever the horizon.
  removed = (*wal)->DeleteSegmentsBelow(100);
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(*removed, 0);
  EXPECT_EQ(ListWalSegments(dir_).size(), 1u);
}

TEST_F(WalTest, SyncPoliciesCountFsyncs) {
  {
    StatusOr<std::unique_ptr<Wal>> wal =
        Wal::Open(dir_, 1, {WalSyncPolicy::kAlways, 0});
    ASSERT_TRUE(wal.ok()) << wal.status();
    for (int i = 0; i < 3; ++i) {
      WalRecord record;
      record.type = WalRecordType::kUpdate;
      record.text = "p(a).";
      ASSERT_TRUE((*wal)->Append(std::move(record)).ok());
    }
    EXPECT_GE((*wal)->stats().syncs, 3);
  }
  fs::remove_all(dir_);
  fs::create_directories(dir_);
  {
    StatusOr<std::unique_ptr<Wal>> wal =
        Wal::Open(dir_, 1, {WalSyncPolicy::kNone, 0});
    ASSERT_TRUE(wal.ok()) << wal.status();
    WalRecord record;
    record.type = WalRecordType::kUpdate;
    record.text = "p(a).";
    ASSERT_TRUE((*wal)->Append(std::move(record)).ok());
    EXPECT_EQ((*wal)->stats().syncs, 0);
  }
}

}  // namespace
}  // namespace chainsplit
