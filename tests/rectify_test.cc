#include "core/rectify.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "engine/grounder.h"

namespace chainsplit {
namespace {

class RectifyTest : public ::testing::Test {
 protected:
  RectifyTest() : program_(&pool_) {}

  void Load(std::string_view text) {
    ASSERT_TRUE(ParseProgram(text, &program_).ok());
  }

  TermPool pool_;
  Program program_;
};

TEST_F(RectifyTest, FlatRuleUnchanged) {
  Load("p(X, Y) :- e(X, Z), e(Z, Y).");
  Rule flat = RectifyRule(&program_, program_.rules()[0]);
  EXPECT_EQ(flat, program_.rules()[0]);
}

TEST_F(RectifyTest, IsFlatRuleDetection) {
  Load("p(X) :- q([X|Xs]).");
  EXPECT_FALSE(IsFlatRule(pool_, program_.rules()[0]));
  Load("p(X) :- q(X).");
  EXPECT_TRUE(IsFlatRule(pool_, program_.rules()[1]));
}

TEST_F(RectifyTest, HeadListPatternBecomesConsGoal) {
  // Paper rules (4.1)/(4.6): isort([X|Xs], Ys) gets cons(X, Xs, V).
  Load("isort([X|Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).");
  Rule flat = RectifyRule(&program_, program_.rules()[0]);
  EXPECT_TRUE(IsFlatRule(pool_, flat));
  ASSERT_EQ(flat.body.size(), 3u);
  EXPECT_EQ(program_.preds().name(flat.body[0].pred), "cons");
  // The cons goal's output variable is the new head argument.
  EXPECT_EQ(flat.body[0].args[2], flat.head.args[0]);
  EXPECT_EQ(flat.body[0].args[0], pool_.MakeVariable("X"));
  EXPECT_EQ(flat.body[0].args[1], pool_.MakeVariable("Xs"));
}

TEST_F(RectifyTest, NestedListPatternRecurses) {
  // insert(X, [Y|Ys], [X, Y|Ys]): the third arg is a two-deep pattern.
  Load("insert(X, [Y|Ys], [X, Y|Ys]) :- X =< Y.");
  Rule flat = RectifyRule(&program_, program_.rules()[0]);
  EXPECT_TRUE(IsFlatRule(pool_, flat));
  int cons_goals = 0;
  for (const Atom& atom : flat.body) {
    if (program_.preds().name(atom.pred) == "cons") ++cons_goals;
  }
  // [Y|Ys] needs 1 cons; [X,Y|Ys] = [X|[Y|Ys]] needs 2 (inner shared?
  // inner [Y|Ys] is its own goal) -> 3 total.
  EXPECT_EQ(cons_goals, 3);
}

TEST_F(RectifyTest, GroundListStaysConstant) {
  Load("p(X) :- q([1, 2, 3], X).");
  Rule flat = RectifyRule(&program_, program_.rules()[0]);
  EXPECT_EQ(flat, program_.rules()[0]);  // ground compound is a constant
}

TEST_F(RectifyTest, NonConsFunctorUsesMkPredicate) {
  Load("p(X) :- q(pair(X, Y)).");
  Rule flat = RectifyRule(&program_, program_.rules()[0]);
  EXPECT_TRUE(IsFlatRule(pool_, flat));
  bool has_mk = false;
  for (const Atom& atom : flat.body) {
    if (program_.preds().name(atom.pred) == "$mk_pair") has_mk = true;
  }
  EXPECT_TRUE(has_mk);
}

TEST_F(RectifyTest, RectifiedRuleIsCompilable) {
  // After rectification, a rule over bound lists schedules bottom-up.
  Load("first(L, X) :- cons(X, Xs, L).");
  Rule rule = program_.rules()[0];
  EXPECT_TRUE(IsFlatRule(pool_, rule));
  // first with L bound position... bottom-up still cannot enumerate L;
  // so CompileRule must reject — the binding must come from a relation.
  auto compiled = CompileRule(program_, rule);
  EXPECT_FALSE(compiled.ok());
}

TEST_F(RectifyTest, RectifyAtomFlattensQueryGoal) {
  Load("dummy(a).");
  auto atom = ParseAtom("isort([X|Xs], Ys)", &program_);
  ASSERT_TRUE(atom.ok());
  std::vector<Atom> extra;
  Atom flat = RectifyAtom(&program_, *atom, &extra);
  EXPECT_EQ(extra.size(), 1u);
  EXPECT_TRUE(pool_.IsVariable(flat.args[0]));
}

TEST_F(RectifyTest, RectifyRulesProcessesWholeProgram) {
  Load(R"(
isort([X|Xs], Ys) :- isort(Xs, Zs), insert(X, Zs, Ys).
insert(X, [], [X]).
insert(X, [Y|Ys], [Y|Zs]) :- X > Y, insert(X, Ys, Zs).
insert(X, [Y|Ys], [X, Y|Ys]) :- X =< Y.
)");
  std::vector<Rule> flat = RectifyRules(&program_);
  ASSERT_EQ(flat.size(), program_.rules().size());
  for (const Rule& rule : flat) {
    EXPECT_TRUE(IsFlatRule(pool_, rule)) << RuleToString(program_, rule);
  }
}

}  // namespace
}  // namespace chainsplit
