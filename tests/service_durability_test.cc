// QueryService durability: WAL + snapshot recovery at the service
// level — restart roundtrips, checkpoint + tail replay, the
// auto-checkpointer, failure-atomic updates/CSV loads, torn-tail and
// corruption handling, and the applied-prefix == logged-prefix
// invariant of Update error paths.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "service/query_service.h"
#include "storage/wal.h"

namespace chainsplit {
namespace {

namespace fs = std::filesystem;

class ServiceDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            StrCat("cs_dur_test_", ::getpid(), "_",
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  DurabilityOptions Options(WalSyncPolicy sync = WalSyncPolicy::kNone) {
    DurabilityOptions options;
    options.data_dir = dir_;
    options.wal.sync = sync;
    return options;
  }

  std::string dir_;
};

std::string Flatten(const QueryResponse& response) {
  std::string flat;
  for (const std::string& var : response.vars) flat += var + "|";
  for (const std::vector<std::string>& row : response.rows) {
    flat += StrJoin(row, ",");
    flat += ";";
  }
  return flat;
}

constexpr const char* kTc =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

TEST_F(ServiceDurabilityTest, RestartRecoversUpdatesByteForByte) {
  std::string before;
  {
    QueryService service;
    ASSERT_TRUE(service.EnableDurability(Options()).ok());
    ASSERT_TRUE(service.Update(kTc).status.ok());
    ASSERT_TRUE(service.Update("edge(a, b). edge(b, c).").status.ok());
    ASSERT_TRUE(service.Update("edge(c, d).").status.ok());
    before = Flatten(service.Query("?- tc(a, Y)."));
    ASSERT_NE(before.find("d"), std::string::npos);
  }  // destructor flushes the WAL

  QueryService reborn;
  StatusOr<RecoveryResult> recovered = reborn.EnableDurability(Options());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(recovered->cold_start);
  EXPECT_EQ(recovered->replayed_records, 3);
  EXPECT_EQ(recovered->last_lsn, 3u);
  EXPECT_EQ(Flatten(reborn.Query("?- tc(a, Y).")), before);
}

TEST_F(ServiceDurabilityTest, CheckpointThenTailReplay) {
  std::string before;
  {
    QueryService service;
    ASSERT_TRUE(service.EnableDurability(Options()).ok());
    ASSERT_TRUE(service.Update(kTc).status.ok());
    ASSERT_TRUE(service.Update("edge(a, b).").status.ok());
    SnapshotWriteStats snap;
    ASSERT_TRUE(service.Checkpoint(&snap).ok());
    EXPECT_EQ(snap.lsn, 2u);
    // Two more records after the snapshot: the recovery tail.
    ASSERT_TRUE(service.Update("edge(b, c).").status.ok());
    ASSERT_TRUE(service.Update("edge(c, d).").status.ok());
    before = Flatten(service.Query("?- tc(a, Y)."));

    DurabilityStats dur = service.durability_stats();
    EXPECT_EQ(dur.snapshot_lsn, 2u);
    EXPECT_EQ(dur.snapshots_written, 1);
    EXPECT_EQ(dur.last_lsn, 4u);
  }

  QueryService reborn;
  StatusOr<RecoveryResult> recovered = reborn.EnableDurability(Options());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->snapshot_lsn, 2u);
  EXPECT_EQ(recovered->replayed_records, 2);  // only the tail
  EXPECT_EQ(recovered->skipped_records, 0);   // covered segments deleted
  EXPECT_EQ(recovered->last_lsn, 4u);
  EXPECT_EQ(Flatten(reborn.Query("?- tc(a, Y).")), before);
}

TEST_F(ServiceDurabilityTest, AutoCheckpointerTriggersOnRecordCount) {
  QueryService service;
  DurabilityOptions options = Options();
  options.snapshot_every_records = 5;
  ASSERT_TRUE(service.EnableDurability(options).ok());
  // Two batches with a poll between them: the checkpointer is
  // asynchronous, so a single burst of 12 updates could coalesce into
  // one checkpoint taken at the final LSN.
  DurabilityStats dur;
  for (int batch = 1; batch <= 2; ++batch) {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          service.Update(StrCat("p(a", batch, "x", i, ").")).status.ok());
    }
    for (int spin = 0; spin < 500; ++spin) {
      dur = service.durability_stats();
      if (dur.snapshots_written >= batch) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GE(dur.snapshots_written, batch);
  }
  EXPECT_GE(dur.snapshot_lsn, 5u);
  EXPECT_EQ(dur.checkpoint_failures, 0) << dur.last_checkpoint_error;
}

TEST_F(ServiceDurabilityTest, UpdateParseErrorIsAllOrNothing) {
  QueryService service;
  ASSERT_TRUE(service.EnableDurability(Options()).ok());
  ASSERT_TRUE(service.Update("p(a). q(X) :- p(X).").status.ok());
  const uint64_t epoch_before = service.rules_epoch();
  const int64_t wal_records_before = service.durability_stats().wal_records;
  const size_t rules_before = service.db().program().rules().size();
  const Relation* p_rel =
      service.db().GetRelation(*service.db().program().preds().Find("p", 1));
  ASSERT_NE(p_rel, nullptr);
  const uint64_t p_version_before = p_rel->version();

  // Valid prefix (a fact AND a rule), then a syntax error: nothing may
  // stick — not the fact, not the rule, not an epoch bump, and no WAL
  // record (applied prefix == logged prefix).
  UpdateResponse failed =
      service.Update("p(b). r(X) :- p(X). r(");  // unclosed paren
  EXPECT_FALSE(failed.status.ok());
  EXPECT_EQ(service.rules_epoch(), epoch_before);
  EXPECT_EQ(service.durability_stats().wal_records, wal_records_before);
  EXPECT_EQ(service.db().program().rules().size(), rules_before);
  EXPECT_EQ(p_rel->version(), p_version_before);
  EXPECT_EQ(Flatten(service.Query("?- p(X).")), "X|a;");

  // And the log replays to the same consistent state.
  std::string before = Flatten(service.Query("?- q(X)."));
  QueryService reborn;
  ASSERT_TRUE(reborn.EnableDurability(Options()).ok());
  EXPECT_EQ(Flatten(reborn.Query("?- q(X).")), before);
  EXPECT_EQ(reborn.db().program().rules().size(), rules_before);
}

TEST_F(ServiceDurabilityTest, CsvLoadIsFailureAtomicAndLogged) {
  QueryService service;
  ASSERT_TRUE(service.EnableDurability(Options()).ok());

  std::string good = dir_ + "_good.csv";
  std::string bad = dir_ + "_bad.csv";
  {
    std::ofstream out(good);
    out << "Alice,30\nBob,40\n";
  }
  {
    std::ofstream out(bad);
    out << "Carol,50\nbroken_line_with_one_field\n";
  }

  StatusOr<int64_t> loaded = service.LoadCsv("person", 2, good);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 2);
  const int64_t wal_after_good = service.durability_stats().wal_records;
  const std::string good_state = Flatten(service.Query("?- person(X, Y)."));
  EXPECT_NE(good_state.find("Alice"), std::string::npos);
  EXPECT_NE(good_state.find("Bob"), std::string::npos);

  // The bad file fails on line 2: line 1 must NOT be applied, and no
  // WAL record may exist for the load.
  StatusOr<int64_t> rejected = service.LoadCsv("person", 2, bad);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(service.durability_stats().wal_records, wal_after_good);
  EXPECT_EQ(Flatten(service.Query("?- person(X, Y).")), good_state);
  EXPECT_EQ(good_state.find("Carol"), std::string::npos);
  ::unlink(good.c_str());
  ::unlink(bad.c_str());

  // Replay restores the CSV facts from the log (content, not path: the
  // files are gone).
  QueryService reborn;
  StatusOr<RecoveryResult> recovered = reborn.EnableDurability(Options());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(Flatten(reborn.Query("?- person(X, Y).")), good_state);
}

TEST_F(ServiceDurabilityTest, ReplaySkipsEmbeddedQueries) {
  {
    QueryService service;
    ASSERT_TRUE(service.EnableDurability(Options()).ok());
    UpdateResponse updated =
        service.Update("p(a). p(b).\n?- p(X).\nq(c).");
    ASSERT_TRUE(updated.status.ok());
    ASSERT_EQ(updated.query_responses.size(), 1u);
  }
  QueryService reborn;
  StatusOr<RecoveryResult> recovered = reborn.EnableDurability(Options());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->replayed_records, 1);
  // The replayed update's facts are all present; its embedded query
  // produced no response anywhere (nobody is listening) but also no
  // failure.
  EXPECT_EQ(Flatten(reborn.Query("?- q(X).")), "X|c;");
}

TEST_F(ServiceDurabilityTest, TornWalTailIsDroppedOnRecovery) {
  {
    QueryService service;
    ASSERT_TRUE(service.EnableDurability(Options()).ok());
    ASSERT_TRUE(service.Update("p(a).").status.ok());
    ASSERT_TRUE(service.Update("p(b).").status.ok());
  }
  // Simulate a crash mid-append: chop bytes off the segment tail.
  std::vector<WalSegment> segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  const auto size = fs::file_size(segments[0].path);
  fs::resize_file(segments[0].path, size - 3);

  QueryService reborn;
  StatusOr<RecoveryResult> recovered = reborn.EnableDurability(Options());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->torn_tail);
  EXPECT_EQ(recovered->replayed_records, 1);  // p(b) was torn, p(a) survives
  EXPECT_EQ(Flatten(reborn.Query("?- p(X).")), "X|a;");
}

TEST_F(ServiceDurabilityTest, MidLogCorruptionRefusesToRecover) {
  {
    QueryService service;
    ASSERT_TRUE(service.EnableDurability(Options()).ok());
    ASSERT_TRUE(service.Update("p(a).").status.ok());
    ASSERT_TRUE(service.Update("p(b).").status.ok());
    ASSERT_TRUE(service.Update("p(c).").status.ok());
  }
  // Flip a bit inside the first record's payload: a hole in the middle
  // of the log, not a torn tail.
  std::vector<WalSegment> segments = ListWalSegments(dir_);
  ASSERT_EQ(segments.size(), 1u);
  std::fstream f(segments[0].path,
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(10);
  char byte;
  f.get(byte);
  f.seekp(10);
  f.put(static_cast<char>(byte ^ 0x20));
  f.close();

  QueryService reborn;
  StatusOr<RecoveryResult> recovered = reborn.EnableDurability(Options());
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.status().message().find("corruption"),
            std::string::npos)
      << recovered.status();
}

TEST_F(ServiceDurabilityTest, CorruptSnapshotFallsBackAndReplaysMore) {
  std::string before;
  SnapshotWriteStats second;
  {
    QueryService service;
    ASSERT_TRUE(service.EnableDurability(Options()).ok());
    ASSERT_TRUE(service.Update(kTc).status.ok());
    ASSERT_TRUE(service.Update("edge(a, b).").status.ok());
    ASSERT_TRUE(service.Checkpoint(nullptr).ok());  // snapshot at lsn 2
    ASSERT_TRUE(service.Update("edge(b, c).").status.ok());
    ASSERT_TRUE(service.Checkpoint(&second).ok());  // snapshot at lsn 3
    ASSERT_TRUE(service.Update("edge(c, d).").status.ok());
    before = Flatten(service.Query("?- tc(a, Y)."));
  }
  // Corrupt the *newest* snapshot. Recovery must fall back to the
  // lsn-2 one... but the segments below lsn 3 were deleted by the
  // second checkpoint, so the strict LSN chain check refuses: better
  // loud than wrong. Keep the older segments around by corrupting
  // BEFORE any segment deletion instead — so here we only verify the
  // refusal is loud.
  {
    std::fstream f(second.path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(30);
    char byte;
    f.get(byte);
    f.seekp(30);
    f.put(static_cast<char>(byte ^ 0x08));
    f.close();
  }
  QueryService reborn;
  StatusOr<RecoveryResult> recovered = reborn.EnableDurability(Options());
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.status().message().find("wal gap"), std::string::npos)
      << recovered.status();
}

TEST_F(ServiceDurabilityTest, CorruptSnapshotFallsBackWithIntactLog) {
  std::string before;
  {
    QueryService service;
    ASSERT_TRUE(service.EnableDurability(Options()).ok());
    ASSERT_TRUE(service.Update(kTc).status.ok());
    ASSERT_TRUE(service.Update("edge(a, b). edge(b, c).").status.ok());
    before = Flatten(service.Query("?- tc(a, Y)."));
    // Write snapshots WITHOUT truncating the log (WriteSnapshot
    // directly, not Checkpoint): the fallback path then has the whole
    // log to replay from the older snapshot.
    ASSERT_TRUE(WriteSnapshot(service.db(), 1, dir_, nullptr).ok());
    SnapshotWriteStats newest;
    ASSERT_TRUE(WriteSnapshot(service.db(), 2, dir_, &newest).ok());
    std::fstream f(newest.path,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(30);
    char byte;
    f.get(byte);
    f.seekp(30);
    f.put(static_cast<char>(byte ^ 0x08));
    f.close();
  }
  QueryService reborn;
  StatusOr<RecoveryResult> recovered = reborn.EnableDurability(Options());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(recovered->snapshot_lsn, 1u);  // fell back
  EXPECT_EQ(recovered->replayed_records, 1);
  EXPECT_EQ(recovered->skipped_records, 1);
  ASSERT_FALSE(recovered->notes.empty());
  EXPECT_EQ(Flatten(reborn.Query("?- tc(a, Y).")), before);
}

TEST_F(ServiceDurabilityTest, WalSyncAlwaysAcknowledgedMeansDurable) {
  {
    QueryService service;
    ASSERT_TRUE(
        service.EnableDurability(Options(WalSyncPolicy::kAlways)).ok());
    ASSERT_TRUE(service.Update("p(a).").status.ok());
    DurabilityStats dur = service.durability_stats();
    EXPECT_GE(dur.wal_syncs, 1);
  }
  QueryService reborn;
  ASSERT_TRUE(reborn.EnableDurability(Options()).ok());
  EXPECT_EQ(Flatten(reborn.Query("?- p(X).")), "X|a;");
}

TEST_F(ServiceDurabilityTest, DisabledDurabilityStillWorks) {
  QueryService service;
  ASSERT_TRUE(service.Update("p(a).").status.ok());
  EXPECT_FALSE(service.durability_stats().enabled);
  EXPECT_TRUE(service.FlushWal().ok());
  EXPECT_EQ(service.Checkpoint(nullptr).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServiceDurabilityTest, EnableTwiceFails) {
  QueryService service;
  ASSERT_TRUE(service.EnableDurability(Options()).ok());
  EXPECT_EQ(service.EnableDurability(Options()).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace chainsplit
