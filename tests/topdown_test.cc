#include "engine/topdown.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "term/list_utils.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

class TopDownTest : public ::testing::Test {
 protected:
  void Load(std::string_view text) {
    ASSERT_TRUE(ParseProgram(text, &db_.program()).ok());
    ASSERT_TRUE(db_.LoadProgramFacts().ok());
  }

  /// Parses and solves a query, returning rows of its variables.
  std::vector<std::vector<TermId>> Ask(std::string_view query_text,
                                       TopDownOptions options = {}) {
    Program scratch(&db_.pool());
    size_t before = db_.program().queries().size();
    Status status = ParseProgram(query_text, &db_.program());
    EXPECT_TRUE(status.ok()) << status;
    const Query& query = db_.program().queries()[before];
    std::vector<TermId> vars;
    for (const Atom& goal : query.goals) {
      CollectAtomVariables(db_.pool(), goal, &vars);
    }
    TopDownEvaluator solver(&db_, options);
    auto answers = solver.Answers(query.goals, vars);
    EXPECT_TRUE(answers.ok()) << answers.status();
    last_stats_ = solver.stats();
    return answers.ok() ? *answers : std::vector<std::vector<TermId>>{};
  }

  Database db_;
  TopDownStats last_stats_;
};

TEST_F(TopDownTest, SolvesEdbFacts) {
  Load("e(a, b). e(a, c). e(b, d).");
  auto rows = Ask("?- e(a, Y).");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TopDownTest, SolvesConjunction) {
  Load("e(a, b). e(b, c). e(b, d).");
  auto rows = Ask("?- e(a, Y), e(Y, Z).");
  EXPECT_EQ(rows.size(), 2u);  // (b,c), (b,d)
}

TEST_F(TopDownTest, SolvesRecursiveRulesOnAcyclicData) {
  Load(R"(
e(a, b). e(b, c). e(c, d).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
)");
  auto rows = Ask("?- tc(a, Y).");
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(TopDownTest, AppendForwards) {
  Load(AppendProgramSource());
  auto rows = Ask("?- append([1, 2], [3, 4], W).");
  ASSERT_EQ(rows.size(), 1u);
  auto ints = ListInts(db_.pool(), rows[0][0]);
  ASSERT_TRUE(ints.has_value());
  EXPECT_EQ(*ints, (std::vector<int64_t>{1, 2, 3, 4}));
}

TEST_F(TopDownTest, AppendBackwardsEnumeratesSplits) {
  Load(AppendProgramSource());
  auto rows = Ask("?- append(X, Y, [1, 2, 3]).");
  EXPECT_EQ(rows.size(), 4u);  // 4 ways to split a 3-element list
}

TEST_F(TopDownTest, IsortSortsPaperExample) {
  Load(IsortProgramSource());
  auto rows = Ask("?- isort([5, 7, 1], Ys).");
  ASSERT_EQ(rows.size(), 1u);
  auto ints = ListInts(db_.pool(), rows[0][0]);
  ASSERT_TRUE(ints.has_value());
  EXPECT_EQ(*ints, (std::vector<int64_t>{1, 5, 7}));
}

TEST_F(TopDownTest, QsortSortsPaperExample) {
  Load(QsortProgramSource());
  auto rows = Ask("?- qsort([4, 9, 5], Ys).");
  ASSERT_EQ(rows.size(), 1u);
  auto ints = ListInts(db_.pool(), rows[0][0]);
  ASSERT_TRUE(ints.has_value());
  EXPECT_EQ(*ints, (std::vector<int64_t>{4, 5, 9}));
}

TEST_F(TopDownTest, ArithmeticGoals) {
  Load("n(3). n(4).");
  auto rows = Ask("?- n(X), Y is X + 10, Y > 13.");
  EXPECT_EQ(rows.size(), 1u);  // X=4, Y=14
}

TEST_F(TopDownTest, DepthCapOnLeftRecursion) {
  Load(R"(
p(X, Y) :- p(X, Z), e(Z, Y).
p(X, Y) :- e(X, Y).
e(a, b).
)");
  TopDownOptions options;
  options.max_depth = 100;
  options.max_steps = 100000;
  Program scratch(&db_.pool());
  ASSERT_TRUE(ParseProgram("?- p(a, Y).", &db_.program()).ok());
  const Query& query = db_.program().queries().back();
  TopDownEvaluator solver(&db_, options);
  auto answers = solver.Answers(query.goals, {});
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(TopDownTest, MaxSolutionsStopsEarly) {
  Load("n(1). n(2). n(3). n(4). n(5).");
  TopDownOptions options;
  options.max_solutions = 2;
  auto rows = Ask("?- n(X).", options);
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(TopDownTest, FailingQueryHasNoAnswers) {
  Load("e(a, b).");
  auto rows = Ask("?- e(b, X).");
  EXPECT_TRUE(rows.empty());
}

TEST_F(TopDownTest, GroundQuerySucceedsWithEmptyRow) {
  Load(AppendProgramSource());
  auto rows = Ask("?- append([1], [2], [1, 2]).");
  EXPECT_EQ(rows.size(), 1u);
  auto none = Ask("?- append([1], [2], [2, 1]).");
  EXPECT_TRUE(none.empty());
}

// Property: isort output is sorted and a permutation, for random lists.
class IsortProperty : public ::testing::TestWithParam<int> {};

TEST_P(IsortProperty, SortsRandomLists) {
  Database db;
  ASSERT_TRUE(ParseProgram(IsortProgramSource(), &db.program()).ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  int n = GetParam();
  std::vector<int64_t> values = RandomInts(n, 0, 50, 1000 + n);
  TermId list = MakeIntList(db.pool(), values);

  PredId isort = db.program().preds().Find("isort", 2).value();
  TermId ys = db.pool().MakeVariable("Ys");
  Atom goal{isort, {list, ys}};
  TopDownEvaluator solver(&db);
  auto answers = solver.Answers({goal}, {ys});
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  auto sorted = ListInts(db.pool(), (*answers)[0][0]);
  ASSERT_TRUE(sorted.has_value());
  std::vector<int64_t> expect = values;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(*sorted, expect);
}

INSTANTIATE_TEST_SUITE_P(Lengths, IsortProperty,
                         ::testing::Values(0, 1, 2, 3, 8, 16, 32, 64));

// Property: qsort agrees with std::sort. (Note the classic textbook
// qsort drops duplicates of the pivot? No: partition keeps =< on the
// left, so duplicates are preserved.)
class QsortProperty : public ::testing::TestWithParam<int> {};

TEST_P(QsortProperty, SortsRandomLists) {
  Database db;
  ASSERT_TRUE(ParseProgram(QsortProgramSource(), &db.program()).ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  int n = GetParam();
  std::vector<int64_t> values = RandomInts(n, 0, 30, 2000 + n);
  TermId list = MakeIntList(db.pool(), values);

  PredId qsort = db.program().preds().Find("qsort", 2).value();
  TermId ys = db.pool().MakeVariable("Ys");
  Atom goal{qsort, {list, ys}};
  TopDownEvaluator solver(&db);
  auto answers = solver.Answers({goal}, {ys});
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  auto sorted = ListInts(db.pool(), (*answers)[0][0]);
  ASSERT_TRUE(sorted.has_value());
  std::vector<int64_t> expect = values;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(*sorted, expect);
}

INSTANTIATE_TEST_SUITE_P(Lengths, QsortProperty,
                         ::testing::Values(0, 1, 2, 3, 8, 16, 32));

}  // namespace
}  // namespace chainsplit
