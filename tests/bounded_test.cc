#include "core/bounded.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "core/planner.h"
#include "core/rectify.h"
#include "engine/seminaive.h"

namespace chainsplit {
namespace {

class BoundedTest : public ::testing::Test {
 protected:
  void Load(std::string_view text) {
    ASSERT_TRUE(ParseProgram(text, &db_.program()).ok());
    ASSERT_TRUE(db_.LoadProgramFacts().ok());
  }

  std::optional<BoundedUnfolding> Detect(std::string_view pred, int arity,
                                         int max_period = 12) {
    rectified_ = RectifyRules(&db_.program());
    return DetectBoundedRecursion(
        &db_.program(), rectified_,
        db_.program().preds().Find(pred, arity).value(), max_period);
  }

  Database db_;
  std::vector<Rule> rectified_;
};

TEST_F(BoundedTest, SwapPermutationHasPeriodTwo) {
  Load(R"(
sym(X, Y) :- base(X, Y).
sym(X, Y) :- link(X), sym(Y, X).
)");
  auto bounded = Detect("sym", 2);
  ASSERT_TRUE(bounded.has_value());
  EXPECT_EQ(bounded->period, 2);
  // Exit rename + 2 unfoldings.
  EXPECT_EQ(bounded->rules.size(), 3u);
  for (const Rule& rule : bounded->rules) {
    for (const Atom& atom : rule.body) {
      EXPECT_NE(db_.program().preds().name(atom.pred), "sym")
          << RuleToString(db_.program(), rule);
    }
  }
}

TEST_F(BoundedTest, IdentityPermutationDropsRecursion) {
  // p(X, Y) :- c(X), p(X, Y) derives nothing new: period 1.
  Load(R"(
p(X, Y) :- base(X, Y).
p(X, Y) :- c(X), p(X, Y).
)");
  auto bounded = Detect("p", 2);
  ASSERT_TRUE(bounded.has_value());
  EXPECT_EQ(bounded->period, 1);
}

TEST_F(BoundedTest, SgIsNotBounded) {
  Load(R"(
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
)");
  EXPECT_FALSE(Detect("sg", 2).has_value());
}

TEST_F(BoundedTest, RepeatedVariableIsNotAPermutation) {
  Load(R"(
p(X, Y) :- base(X, Y).
p(X, Y) :- c(X), p(X, X).
)");
  EXPECT_FALSE(Detect("p", 2).has_value());
}

TEST_F(BoundedTest, PeriodCapRejectsLongCycles) {
  // Cycles of length 3 and 5: order 15 > default cap 12.
  Load(R"(
big(A, B, C, D, E, F, G, H) :- base(A, B, C, D, E, F, G, H).
big(A, B, C, D, E, F, G, H) :- c(A), big(B, C, A, E, F, G, H, D).
)");
  EXPECT_FALSE(Detect("big", 8).has_value());
  EXPECT_TRUE(Detect("big", 8, /*max_period=*/15).has_value());
}

TEST_F(BoundedTest, UnfoldingMatchesFixpointSemantics) {
  // Symmetric-through-link recursion: compare the unfolded rules'
  // fixpoint with the original recursion's fixpoint.
  const char* source = R"(
base(a, b). base(c, d). base(e, e).
link(a). link(b). link(d).
sym(X, Y) :- base(X, Y).
sym(X, Y) :- link(X), sym(Y, X).
)";
  Load(source);
  auto bounded = Detect("sym", 2);
  ASSERT_TRUE(bounded.has_value());

  // Reference: full semi-naive on the original (recursive) program.
  SemiNaiveStats stats;
  ASSERT_TRUE(
      SemiNaiveEvaluate(&db_, db_.program().rules(), {}, &stats).ok());
  const Relation* reference =
      db_.GetRelation(db_.program().preds().Find("sym", 2).value());
  ASSERT_NE(reference, nullptr);

  // Unfolded: evaluate the replacement rules in a fresh database.
  Database db2;
  ASSERT_TRUE(ParseProgram(source, &db2.program()).ok());
  ASSERT_TRUE(db2.LoadProgramFacts().ok());
  std::vector<Rule> rectified = RectifyRules(&db2.program());
  auto bounded2 = DetectBoundedRecursion(
      &db2.program(), rectified,
      db2.program().preds().Find("sym", 2).value());
  ASSERT_TRUE(bounded2.has_value());
  ASSERT_TRUE(SemiNaiveEvaluate(&db2, bounded2->rules, {}, &stats).ok());
  const Relation* unfolded =
      db2.GetRelation(db2.program().preds().Find("sym", 2).value());
  ASSERT_NE(unfolded, nullptr);

  ASSERT_EQ(reference->size(), unfolded->size());
  for (int64_t i = 0; i < reference->num_rows(); ++i) {
    // Symbols intern in the same order in both pools.
    EXPECT_TRUE(unfolded->Contains(reference->row(i)));
  }
  // Sanity: sym(b, a) holds (base(a,b) + link(b)); sym(d, c) holds;
  // sym(c, d) held already.
  TermId b = db2.pool().MakeSymbol("b");
  TermId a = db2.pool().MakeSymbol("a");
  EXPECT_TRUE(unfolded->Contains({b, a}));
}

TEST_F(BoundedTest, PlannerUsesUnfolding) {
  Database db;
  auto result = RunProgram(&db, R"(
base(a, b). base(c, d).
link(a). link(b).
sym(X, Y) :- base(X, Y).
sym(X, Y) :- link(X), sym(Y, X).
?- sym(b, Y).
)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->plan.find("bounded recursion"), std::string::npos)
      << result->plan;
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0][0], db.pool().MakeSymbol("a"));
}

TEST_F(BoundedTest, FactsParticipateInUnfolding) {
  Database db;
  auto result = RunProgram(&db, R"(
sym(a, b).
link(b).
sym(X, Y) :- link(X), sym(Y, X).
?- sym(b, Y).
)");
  ASSERT_TRUE(result.ok()) << result.status();
  // sym(a,b) fact + link(b) => sym(b,a).
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0][0], db.pool().MakeSymbol("a"));
}

}  // namespace
}  // namespace chainsplit
