#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/status.h"
#include "common/strings.h"

namespace chainsplit {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFinitelyEvaluableError("cons is unbound");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFinitelyEvaluable);
  EXPECT_EQ(status.ToString(), "NotFinitelyEvaluable: cons is unbound");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status(), Status::Ok());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  CS_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::Ok();
}

TEST(StatusOrTest, ValueAndErrorPaths) {
  StatusOr<int> ok = Half(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  StatusOr<int> bad = Half(3);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(UseHalf(7, &out).ok());
}

TEST(StatusOrTest, MoveOnlyValues) {
  StatusOr<std::unique_ptr<int>> holder(std::make_unique<int>(5));
  ASSERT_TRUE(holder.ok());
  std::unique_ptr<int> v = std::move(holder).value();
  EXPECT_EQ(*v, 5);
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("x=", 3, "!"), "x=3!");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat(1.5), "1.5");
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, StrSplit) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("m_scsg__bf", "m_"));
  EXPECT_FALSE(StartsWith("m", "m_"));
}

TEST(HashTest, HashVectorDiscriminates) {
  std::vector<int32_t> a = {1, 2, 3};
  std::vector<int32_t> b = {3, 2, 1};
  std::vector<int32_t> c = {1, 2, 3};
  EXPECT_EQ(HashVector(a), HashVector(c));
  EXPECT_NE(HashVector(a), HashVector(b));
  EXPECT_NE(HashVector(a), HashVector(std::vector<int32_t>{1, 2}));
}

}  // namespace
}  // namespace chainsplit
