#include "engine/magic.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "engine/seminaive.h"
#include "workload/family_gen.h"

namespace chainsplit {
namespace {

class MagicTest : public ::testing::Test {
 protected:
  void Load(std::string_view text) {
    ASSERT_TRUE(ParseProgram(text, &db_.program()).ok());
    ASSERT_TRUE(db_.LoadProgramFacts().ok());
  }

  PredId Find(std::string_view name, int arity) {
    auto pred = db_.program().preds().Find(name, arity);
    EXPECT_TRUE(pred.has_value()) << name;
    return pred.value_or(kNullPred);
  }

  /// Adorn + magic + seed + semi-naive; returns the answer relation.
  const Relation* RunMagic(PredId pred, const Atom& query,
                           const PropagationGate& gate = nullptr) {
    std::string adornment;
    for (TermId arg : query.args) {
      adornment.push_back(db_.pool().IsGround(arg) ? 'b' : 'f');
    }
    auto adorned = AdornProgram(&db_.program(), db_.program().rules(), pred,
                                adornment, gate);
    EXPECT_TRUE(adorned.ok()) << adorned.status();
    if (!adorned.ok()) return nullptr;
    auto magic = MagicTransform(&db_.program(), *adorned, query);
    EXPECT_TRUE(magic.ok()) << magic.status();
    if (!magic.ok()) return nullptr;
    for (const Atom& seed : magic->seeds) {
      db_.InsertFact(seed.pred, seed.args);
    }
    SemiNaiveStats stats;
    Status status = SemiNaiveEvaluate(&db_, magic->rules, {}, &stats);
    EXPECT_TRUE(status.ok()) << status;
    answer_pred_ = magic->answer_pred;
    return db_.GetRelation(magic->answer_pred);
  }

  Database db_;
  PredId answer_pred_ = kNullPred;
};

TEST_F(MagicTest, RestrictsToQueryCone) {
  Load(R"(
e(a, b). e(b, c). e(c, d). e(x, y). e(y, z).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
)");
  Atom query;
  query.pred = Find("tc", 2);
  query.args = {db_.pool().MakeSymbol("a"), db_.pool().MakeVariable("Y")};
  const Relation* answers = RunMagic(query.pred, query);
  ASSERT_NE(answers, nullptr);
  // Only the a-cone: (a,b),(a,c),(a,d) — plus the sub-calls' answers
  // (b,*),(c,*) that magic derives. Crucially nothing from x/y/z.
  TermId x = db_.pool().MakeSymbol("x");
  for (int64_t i = 0; i < answers->num_rows(); ++i) {
    EXPECT_NE(answers->row(i)[0], x);
  }
  TermId a = db_.pool().MakeSymbol("a");
  TermId d = db_.pool().MakeSymbol("d");
  EXPECT_TRUE(answers->Contains({a, d}));
}

TEST_F(MagicTest, MagicMatchesFullEvaluationOnSg) {
  FamilyOptions fam;
  fam.num_families = 3;
  fam.depth = 4;
  fam.fanout = 2;
  fam.materialize_same_country = false;
  FamilyData data = GenerateFamily(&db_, fam);
  Load(SgProgramSource());

  // Full bottom-up evaluation of sg.
  SemiNaiveStats stats;
  ASSERT_TRUE(
      SemiNaiveEvaluate(&db_, db_.program().rules(), {}, &stats).ok());
  const Relation* full = db_.GetRelation(Find("sg", 2));
  ASSERT_NE(full, nullptr);

  // Magic evaluation for one constant.
  Atom query;
  query.pred = Find("sg", 2);
  query.args = {data.query_person, db_.pool().MakeVariable("Y")};
  const Relation* answers = RunMagic(query.pred, query);
  ASSERT_NE(answers, nullptr);

  // Answers with first column = query person must coincide.
  std::vector<TermId> expect;
  for (int64_t i = 0; i < full->num_rows(); ++i) {
    if (full->row(i)[0] == data.query_person) {
      expect.push_back(full->row(i)[1]);
    }
  }
  int64_t matched = 0;
  for (TermId y : expect) {
    EXPECT_TRUE(answers->Contains({data.query_person, y}));
    ++matched;
  }
  // And magic derives no wrong answers for that constant.
  for (int64_t i = 0; i < answers->num_rows(); ++i) {
    if (answers->row(i)[0] == data.query_person) {
      EXPECT_TRUE(full->Contains(answers->row(i)));
    }
  }
  EXPECT_GT(matched, 0);
}

TEST_F(MagicTest, SeedHasBoundArgumentsOnly) {
  Load(R"(
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
e(a, b).
)");
  Atom query;
  query.pred = Find("tc", 2);
  query.args = {db_.pool().MakeSymbol("a"), db_.pool().MakeVariable("Y")};
  auto adorned = AdornProgram(&db_.program(), db_.program().rules(),
                              query.pred, "bf");
  ASSERT_TRUE(adorned.ok());
  auto magic = MagicTransform(&db_.program(), *adorned, query);
  ASSERT_TRUE(magic.ok());
  ASSERT_EQ(magic->seeds.size(), 1u);
  EXPECT_EQ(magic->seeds[0].args.size(), 1u);
  EXPECT_EQ(magic->seeds[0].args[0], db_.pool().MakeSymbol("a"));
  // 2 rules per original rule: modified + magic (one IDB body literal).
  EXPECT_EQ(magic->rules.size(), 3u);
}

TEST_F(MagicTest, NonGroundSeedRejected) {
  Load("p(X) :- q(X). q(a).");
  Atom query;
  query.pred = Find("p", 1);
  query.args = {db_.pool().MakeVariable("X")};
  auto adorned =
      AdornProgram(&db_.program(), db_.program().rules(), query.pred, "b");
  ASSERT_TRUE(adorned.ok());
  auto magic = MagicTransform(&db_.program(), *adorned, query);
  ASSERT_FALSE(magic.ok());
  EXPECT_EQ(magic.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(MagicTest, GatedTransformAvoidsCrossProductMagic) {
  // scsg with gate on same_country: the magic rule for the recursive
  // call must not mention same_country or the second parent literal.
  Load(R"(
scsg(X, Y) :- sibling(X, Y).
scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1),
              scsg(X1, Y1).
)");
  PredId scsg = Find("scsg", 2);
  PropagationGate gate = [this](const Atom& literal,
                                const std::string& ad) {
    if (ad.find('b') == std::string::npos) return false;
    return db_.program().preds().name(literal.pred) != "same_country";
  };
  auto adorned = AdornProgram(&db_.program(), db_.program().rules(), scsg,
                              "bf", gate);
  ASSERT_TRUE(adorned.ok());
  Atom query;
  query.pred = scsg;
  query.args = {db_.pool().MakeSymbol("p0"), db_.pool().MakeVariable("Y")};
  auto magic = MagicTransform(&db_.program(), *adorned, query);
  ASSERT_TRUE(magic.ok());
  bool found_magic_rule = false;
  for (const Rule& rule : magic->rules) {
    const std::string& head = db_.program().preds().name(rule.head.pred);
    if (head.rfind("m_scsg", 0) != 0 || rule.body.empty()) continue;
    // Skip the seed-only case; a magic rule has the head magic literal
    // plus the slice.
    found_magic_rule = true;
    for (const Atom& atom : rule.body) {
      EXPECT_NE(db_.program().preds().name(atom.pred), "same_country")
          << RuleToString(db_.program(), rule);
    }
    // Slice = head magic + parent(X, X1) only.
    EXPECT_EQ(rule.body.size(), 2u)
        << RuleToString(db_.program(), rule);
  }
  EXPECT_TRUE(found_magic_rule);
}

TEST_F(MagicTest, UngatedScsgMagicIteratesOnPairs) {
  Load(R"(
scsg(X, Y) :- sibling(X, Y).
scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1),
              scsg(X1, Y1).
)");
  PredId scsg = Find("scsg", 2);
  auto adorned =
      AdornProgram(&db_.program(), db_.program().rules(), scsg, "bf");
  ASSERT_TRUE(adorned.ok());
  Atom query;
  query.pred = scsg;
  query.args = {db_.pool().MakeSymbol("p0"), db_.pool().MakeVariable("Y")};
  auto magic = MagicTransform(&db_.program(), *adorned, query);
  ASSERT_TRUE(magic.ok());
  // Chain-following: some magic predicate has arity 2 (pairs) and its
  // rule body includes same_country — the cross-product iteration the
  // paper warns about.
  bool pair_magic = false;
  for (const Rule& rule : magic->rules) {
    const std::string& head = db_.program().preds().name(rule.head.pred);
    if (head.rfind("m_scsg", 0) == 0 &&
        db_.program().preds().arity(rule.head.pred) == 2) {
      for (const Atom& atom : rule.body) {
        if (db_.program().preds().name(atom.pred) == "same_country") {
          pair_magic = true;
        }
      }
    }
  }
  EXPECT_TRUE(pair_magic);
}

TEST_F(MagicTest, GatedAndUngatedAgreeOnScsgAnswers) {
  auto build = [](Database* db) {
    FamilyOptions fam;
    fam.num_families = 2;
    fam.depth = 4;
    fam.fanout = 2;
    fam.num_countries = 2;
    fam.seed = 5;
    return GenerateFamily(db, fam);
  };

  FamilyData data = build(&db_);
  Load(ScsgProgramSource());
  PredId scsg = Find("scsg", 2);
  Atom query;
  query.pred = scsg;
  query.args = {data.query_person, db_.pool().MakeVariable("Y")};
  const Relation* follow = RunMagic(scsg, query);
  ASSERT_NE(follow, nullptr);
  std::vector<Tuple> follow_answers;
  for (int64_t i = 0; i < follow->num_rows(); ++i) {
    if (follow->row(i)[0] == data.query_person) {
      follow_answers.push_back(follow->row(i));
    }
  }

  Database db2;
  FamilyData data2 = build(&db2);
  ASSERT_TRUE(ParseProgram(ScsgProgramSource(), &db2.program()).ok());
  ASSERT_TRUE(db2.LoadProgramFacts().ok());
  PredId scsg2 = db2.program().preds().Find("scsg", 2).value();
  PropagationGate gate = [&db2](const Atom& literal,
                                const std::string& ad) {
    if (ad.find('b') == std::string::npos) return false;
    return db2.program().preds().name(literal.pred) != "same_country";
  };
  Atom query2;
  query2.pred = scsg2;
  query2.args = {data2.query_person, db2.pool().MakeVariable("Y")};
  auto adorned = AdornProgram(&db2.program(), db2.program().rules(), scsg2,
                              "bf", gate);
  ASSERT_TRUE(adorned.ok());
  auto magic = MagicTransform(&db2.program(), *adorned, query2);
  ASSERT_TRUE(magic.ok());
  for (const Atom& seed : magic->seeds) db2.InsertFact(seed.pred, seed.args);
  SemiNaiveStats stats;
  ASSERT_TRUE(SemiNaiveEvaluate(&db2, magic->rules, {}, &stats).ok());
  const Relation* split = db2.GetRelation(magic->answer_pred);
  ASSERT_NE(split, nullptr);

  // Same query person (deterministic generation): same answers.
  int64_t split_count = 0;
  for (int64_t i = 0; i < split->num_rows(); ++i) {
    if (split->row(i)[0] == data2.query_person) ++split_count;
  }
  EXPECT_EQ(split_count, static_cast<int64_t>(follow_answers.size()));
  for (const Tuple& t : follow_answers) {
    EXPECT_TRUE(split->Contains(t));
  }
}

}  // namespace
}  // namespace chainsplit
