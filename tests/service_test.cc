// QueryService: plan/result caching, epoch invalidation, deadlines,
// cancellation, and concurrent readers vs. a writer — differentially
// checked against the uncached (bypass) path.

#include "service/query_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.h"
#include "service/batch_driver.h"
#include "workload/graph_gen.h"

namespace chainsplit {
namespace {

constexpr const char* kTcProgram =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

/// A service over a chain graph a0 -> a1 -> ... -> a<n>.
void SeedChain(QueryService* service, int length) {
  std::string text = kTcProgram;
  for (int i = 0; i < length; ++i) {
    text += StrCat("edge(a", i, ", a", i + 1, ").\n");
  }
  UpdateResponse seeded = service->Update(text);
  ASSERT_TRUE(seeded.status.ok()) << seeded.status;
}

std::string Flatten(const QueryResponse& response) {
  std::string flat;
  for (const std::vector<std::string>& row : response.rows) {
    flat += StrJoin(row, ",");
    flat += ";";
  }
  return flat;
}

TEST(ServiceTest, RejectsNonQueryText) {
  QueryService service;
  EXPECT_EQ(service.Query("p(a, b).").status.code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(service.Query("?- p(a, b)").status.code(),  // no terminator
            StatusCode::kInvalidArgument);
}

TEST(ServiceTest, ResultCacheHitAndCounters) {
  QueryService service;
  SeedChain(&service, 20);

  QueryResponse first = service.Query("?- tc(a0, Y).");
  ASSERT_TRUE(first.status.ok()) << first.status;
  EXPECT_FALSE(first.result_cache_hit);
  EXPECT_EQ(first.rows.size(), 20u);

  QueryResponse second = service.Query("?- tc(a0, Y).");
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.result_cache_hit);
  EXPECT_EQ(Flatten(second), Flatten(first));
  EXPECT_EQ(second.vars, first.vars);

  // Same query up to renaming and whitespace: hits, with the caller's
  // own variable name.
  QueryResponse renamed = service.Query("?-  tc( a0 , Z ). % comment");
  ASSERT_TRUE(renamed.status.ok());
  EXPECT_TRUE(renamed.result_cache_hit);
  EXPECT_EQ(renamed.vars, (std::vector<std::string>{"Z"}));
  EXPECT_EQ(Flatten(renamed), Flatten(first));

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.result_cache_hits, 2);
  EXPECT_EQ(stats.result_cache_misses, 1);
  EXPECT_EQ(stats.queries, 3);
}

TEST(ServiceTest, PlanCacheHitsAcrossConstants) {
  QueryService service;
  SeedChain(&service, 20);

  QueryResponse first = service.Query("?- tc(a3, Y).");
  ASSERT_TRUE(first.status.ok()) << first.status;
  EXPECT_FALSE(first.plan_cache_hit);

  // Different constant, same shape: plan cache hit, result cache miss.
  QueryResponse second = service.Query("?- tc(a7, Y).");
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.plan_cache_hit);
  EXPECT_FALSE(second.result_cache_hit);
  EXPECT_EQ(second.technique, first.technique);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.plan_cache_hits, 1);
  EXPECT_EQ(stats.plan_cache_misses, 1);

  // The forced (cached-plan) evaluation returns the same answers as a
  // cache-bypassing reference run.
  RequestOptions bypass;
  bypass.bypass_cache = true;
  QueryResponse reference = service.Query("?- tc(a7, Y).", bypass);
  ASSERT_TRUE(reference.status.ok());
  EXPECT_EQ(Flatten(second), Flatten(reference));
}

TEST(ServiceTest, FactUpdateInvalidatesDependentResults) {
  QueryService service;
  SeedChain(&service, 10);
  service.Update("hub(h1, h2).\n");

  QueryResponse first = service.Query("?- tc(a0, Y).");
  ASSERT_TRUE(first.status.ok());
  QueryResponse hub_first = service.Query("?- hub(X, Y).");
  ASSERT_TRUE(hub_first.status.ok());

  // An update to an *unrelated* relation keeps the tc entry valid.
  UpdateResponse unrelated = service.Update("hub(h2, h3).\n");
  ASSERT_TRUE(unrelated.status.ok());
  EXPECT_TRUE(service.Query("?- tc(a0, Y).").result_cache_hit);
  // ...but invalidates the hub entry.
  QueryResponse hub_second = service.Query("?- hub(X, Y).");
  EXPECT_FALSE(hub_second.result_cache_hit);
  EXPECT_EQ(hub_second.rows.size(), 2u);

  // Extending the chain invalidates tc and the fresh answers include
  // the new edge.
  UpdateResponse extended = service.Update("edge(a10, a11).\n");
  ASSERT_TRUE(extended.status.ok());
  QueryResponse after = service.Query("?- tc(a0, Y).");
  EXPECT_FALSE(after.result_cache_hit);
  EXPECT_EQ(after.rows.size(), first.rows.size() + 1);

  ServiceStats stats = service.stats();
  EXPECT_GE(stats.result_cache_invalidations, 2);
}

TEST(ServiceTest, RuleUpdateDropsBothCaches) {
  QueryService service;
  SeedChain(&service, 5);
  ASSERT_TRUE(service.Query("?- tc(a0, Y).").status.ok());
  EXPECT_TRUE(service.Query("?- tc(a0, Y).").result_cache_hit);
  const uint64_t epoch = service.rules_epoch();

  // A new rule makes every node reach itself-via-loop; cached results
  // and plans must not survive.
  UpdateResponse rule = service.Update("tc(X, X) :- edge(X, Y).\n");
  ASSERT_TRUE(rule.status.ok());
  EXPECT_EQ(rule.new_rules, 1);
  EXPECT_GT(service.rules_epoch(), epoch);

  QueryResponse after = service.Query("?- tc(a0, Y).");
  EXPECT_FALSE(after.result_cache_hit);
  EXPECT_FALSE(after.plan_cache_hit);
  EXPECT_EQ(after.rows.size(), 6u);  // a0..a5: the loop rule adds a0
}

TEST(ServiceTest, CachedEqualsUncachedOnGraphWorkload) {
  QueryService cached;
  QueryService uncached;
  for (QueryService* service : {&cached, &uncached}) {
    GraphOptions graph;
    graph.num_nodes = 60;
    graph.num_edges = 150;
    graph.seed = 7;
    GenerateGraph(&service->db(), "edge", graph);
    UpdateResponse rules = service->Update(kTcProgram);
    ASSERT_TRUE(rules.status.ok());
  }
  RequestOptions bypass;
  bypass.bypass_cache = true;
  for (int round = 0; round < 3; ++round) {
    for (int n = 0; n < 60; n += 6) {
      std::string query = StrCat("?- tc(n", n, ", Y).");
      QueryResponse hot = cached.Query(query);
      QueryResponse cold = uncached.Query(query, bypass);
      ASSERT_TRUE(hot.status.ok()) << hot.status;
      ASSERT_TRUE(cold.status.ok()) << cold.status;
      // Byte-identical formatted answer sets.
      ASSERT_EQ(Flatten(hot), Flatten(cold)) << query;
    }
  }
  EXPECT_GT(cached.stats().result_cache_hits, 0);
  EXPECT_EQ(uncached.stats().result_cache_hits, 0);
}

TEST(ServiceTest, DeadlineExceededReturnsPartialStats) {
  QueryService service;
  // A long chain with a hub fan-out makes tc(a0, Y) expensive enough
  // to trip a microscopic deadline.
  std::string text = kTcProgram;
  for (int i = 0; i < 400; ++i) {
    text += StrCat("edge(b", i, ", b", i + 1, ").\n");
    text += StrCat("edge(a0, b", i, ").\n");
  }
  ASSERT_TRUE(service.Update(text).status.ok());

  // Grow the deadline until an attempt both trips it and got through
  // at least one evaluator iteration: on a fast machine 1ms already
  // does, under tsan's slowdown 1ms expires before the first fixpoint
  // iteration completes (all-zero partial stats).
  RequestOptions request;
  QueryResponse response;
  bool tripped = false;
  bool completed = false;
  for (int ms = 1; ms <= 1024; ms *= 2) {
    request.deadline = std::chrono::milliseconds(ms);
    QueryResponse attempt = service.Query("?- tc(a0, Y).", request);
    if (attempt.status.ok()) {
      // Finished inside the budget; every larger budget would too.
      completed = true;
      break;
    }
    tripped = true;
    response = attempt;
    if (response.seminaive_stats.iterations + response.topdown_stats.steps +
            response.buffered_stats.levels >
        0) {
      break;
    }
  }
  ASSERT_TRUE(tripped) << "deadline never tripped";
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  // Partial work is reported: the evaluator got through some
  // iterations (or SLD steps) before the cutoff.
  EXPECT_GT(response.seminaive_stats.iterations +
                response.topdown_stats.steps +
                response.buffered_stats.levels,
            0);
  EXPECT_FALSE(response.plan.empty());
  EXPECT_GT(service.stats().deadline_exceeded, 0);

  // The deadline failures were not cached; a deadline-free retry
  // succeeds (from the cache only if some attempt already completed).
  QueryResponse retry = service.Query("?- tc(a0, Y0).");
  EXPECT_TRUE(retry.status.ok()) << retry.status;
  if (!completed) {
    EXPECT_FALSE(retry.result_cache_hit);
  }
}

TEST(ServiceTest, PreCancelledTokenReturnsCancelled) {
  QueryService service;
  SeedChain(&service, 10);
  CancelToken token;
  token.Cancel();
  RequestOptions request;
  request.cancel = &token;
  QueryResponse response = service.Query("?- tc(a0, Y).", request);
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
  EXPECT_GT(service.stats().cancelled, 0);
}

TEST(ServiceTest, CompactsReadMostlyRelationsOnce) {
  ServiceOptions options;
  options.compact_read_mostly = true;
  QueryService service(options);
  SeedChain(&service, 200);

  ASSERT_TRUE(service.Query("?- tc(a0, Y).").status.ok());
  ServiceStats stats = service.stats();
  EXPECT_GE(stats.compacted_relations, 1);  // edge (and maybe tc)
  const int64_t compacted = stats.compacted_relations;

  // Further cached queries against the same relations do not recompact.
  ASSERT_TRUE(service.Query("?- tc(a1, Y).").status.ok());
  EXPECT_EQ(service.stats().compacted_relations, compacted);
}

TEST(ServiceTest, ConcurrentReadersWithWriterStayConsistent) {
  QueryService service;
  SeedChain(&service, 30);

  // Warm the cache, then hammer it from reader threads while a writer
  // extends the chain; readers must always see either the old or the
  // new consistent answer set, never a torn one.
  QueryResponse warm = service.Query("?- tc(a0, Y).");
  ASSERT_TRUE(warm.status.ok());
  const size_t base_answers = warm.rows.size();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> reads{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        QueryResponse response = service.Query("?- tc(a0, Y).");
        if (!response.status.ok() ||
            response.rows.size() < base_answers ||
            response.rows.size() > base_answers + 8) {
          failures.fetch_add(1);
        }
        reads.fetch_add(1);
      }
    });
  }
  for (int i = 0; i < 8; ++i) {
    UpdateResponse update =
        service.Update(StrCat("edge(a", 30 + i, ", a", 31 + i, ").\n"));
    if (!update.status.ok()) failures.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0);
  // The final answer set reflects all 8 new edges.
  QueryResponse final_response = service.Query("?- tc(a0, Y).");
  ASSERT_TRUE(final_response.status.ok());
  EXPECT_EQ(final_response.rows.size(), base_answers + 8);
}

TEST(ServiceTest, BatchDriverReportsThroughputAndHitRate) {
  QueryService service;
  SeedChain(&service, 40);
  std::vector<BatchOp> ops;
  for (int i = 0; i < 4; ++i) {
    ops.push_back({BatchOp::Kind::kQuery, StrCat("?- tc(a", i, ", Y).")});
  }
  BatchOptions options;
  options.num_clients = 4;
  options.ops_per_client = 25;
  BatchReport report = RunBatchWorkload(&service, ops, options);
  EXPECT_EQ(report.queries, 100);
  EXPECT_EQ(report.errors, 0);
  EXPECT_GT(report.qps, 0);
  EXPECT_GT(report.answer_rows, 0);
  EXPECT_GE(report.p99_ms, report.p50_ms);
  // 4 distinct queries, 100 lookups: almost everything after the first
  // round hits.
  EXPECT_GT(report.result_hit_rate, 0.9);
}

TEST(ServiceTest, StalePlanEntryIsDroppedNotForced) {
  // Regression: a plan-cache entry recorded under an older rules epoch
  // must not force its technique after the rules changed. The normal
  // paths clear the cache on epoch bumps, so the stale state is
  // planted with the test hook.
  QueryService service;
  SeedChain(&service, 10);
  ASSERT_TRUE(service
                  .TestOnlyInjectPlanEntry("?- tc(a0, Y).",
                                           Technique::kTopDown,
                                           service.rules_epoch() + 7)
                  .ok());

  QueryResponse response = service.Query("?- tc(a0, Y).");
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_FALSE(response.plan_cache_hit);
  EXPECT_EQ(response.rows.size(), 10u);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.plan_cache_hits, 0);
  EXPECT_EQ(stats.plan_cache_misses, 1);
}

TEST(ServiceTest, CurrentEpochPlanEntryIsReused) {
  // Control for the regression above: an entry stamped with the
  // *current* epoch is a legitimate hit and forces its technique.
  QueryService service;
  SeedChain(&service, 10);
  ASSERT_TRUE(service
                  .TestOnlyInjectPlanEntry("?- tc(a0, Y).",
                                           Technique::kTopDown,
                                           service.rules_epoch())
                  .ok());

  QueryResponse response = service.Query("?- tc(a0, Y).");
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_TRUE(response.plan_cache_hit);
  EXPECT_EQ(response.technique, Technique::kTopDown);
  EXPECT_EQ(response.rows.size(), 10u);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.plan_cache_hits, 1);
  EXPECT_EQ(stats.plan_cache_misses, 0);
}

TEST(ServiceTest, RuleUpdateBetweenEvalAndInsertSkipsResultCache) {
  // Regression for the epoch revalidation at the result-cache Put: a
  // rule update landing after evaluation released the db lock but
  // before the insert has already cleared the cache — the insert must
  // be skipped, not resurrect pre-update answers into the post-update
  // cache. The interleaving is forced with the before-Put test hook.
  QueryService service;
  SeedChain(&service, 10);
  int hook_runs = 0;
  service.TestOnlySetBeforeResultPutHook([&service, &hook_runs] {
    ++hook_runs;
    UpdateResponse update = service.Update("tc2(X, Y) :- edge(X, Y).\n");
    ASSERT_TRUE(update.status.ok()) << update.status;
  });
  QueryResponse first = service.Query("?- tc(a0, Y).");
  ASSERT_TRUE(first.status.ok()) << first.status;
  EXPECT_EQ(hook_runs, 1);
  EXPECT_EQ(service.stats().result_cache_stale_skips, 1);

  service.TestOnlySetBeforeResultPutHook(nullptr);
  // Nothing was inserted: the repeat query is a miss, answers intact.
  QueryResponse second = service.Query("?- tc(a0, Y).");
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(second.result_cache_hit);
  EXPECT_EQ(Flatten(second), Flatten(first));
  // With the writer gone, caching works again.
  QueryResponse third = service.Query("?- tc(a0, Y).");
  EXPECT_TRUE(third.result_cache_hit);
}

TEST(ServiceTest, ParallelSccRequestIsByteIdenticalToStratifiedSerial) {
  QueryService service;
  SeedChain(&service, 30);

  RequestOptions serial_req;
  serial_req.parallel_scc = 1;
  serial_req.bypass_cache = true;
  QueryResponse serial = service.Query("?- tc(a0, Y).", serial_req);
  ASSERT_TRUE(serial.status.ok()) << serial.status;
  EXPECT_EQ(serial.rows.size(), 30u);
  EXPECT_GE(serial.scc_strata, 1);

  for (int workers : {2, 4, 8}) {
    RequestOptions par_req;
    par_req.parallel_scc = workers;
    par_req.bypass_cache = true;
    QueryResponse parallel = service.Query("?- tc(a0, Y).", par_req);
    ASSERT_TRUE(parallel.status.ok()) << parallel.status;
    // Byte identity: same rows in the same order as the serial
    // stratified schedule, at every worker count.
    EXPECT_EQ(Flatten(parallel), Flatten(serial)) << workers << " workers";
    EXPECT_EQ(parallel.vars, serial.vars);
    EXPECT_GE(parallel.scc_strata, 1);
  }

  // The monolithic default returns the same answer set.
  RequestOptions mono_req;
  mono_req.bypass_cache = true;
  QueryResponse mono = service.Query("?- tc(a0, Y).", mono_req);
  ASSERT_TRUE(mono.status.ok());
  EXPECT_EQ(mono.scc_strata, 0);  // did not route through the scheduler
  std::vector<std::vector<std::string>> a = mono.rows;
  std::vector<std::vector<std::string>> b = serial.rows;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);

  ServiceStats stats = service.stats();
  EXPECT_GE(stats.scc_schedules, 4);
  EXPECT_GE(stats.scc_strata, stats.scc_schedules);
}

}  // namespace
}  // namespace chainsplit
