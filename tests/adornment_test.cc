#include "engine/adornment.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "ast/printer.h"
#include "core/rectify.h"

namespace chainsplit {
namespace {

class AdornmentTest : public ::testing::Test {
 protected:
  AdornmentTest() : program_(&pool_) {}

  void Load(std::string_view text) {
    ASSERT_TRUE(ParseProgram(text, &program_).ok());
  }

  PredId Find(std::string_view name, int arity) {
    auto pred = program_.preds().Find(name, arity);
    EXPECT_TRUE(pred.has_value()) << name;
    return pred.value_or(kNullPred);
  }

  TermPool pool_;
  Program program_;
};

TEST_F(AdornmentTest, AtomAdornmentFromBoundVars) {
  Load("p(X, Y) :- q(X, Y).");
  const Rule& rule = program_.rules()[0];
  TermId x = pool_.MakeVariable("X");
  std::string ad = AtomAdornment(pool_, rule.body[0], {x});
  EXPECT_EQ(ad, "bf");
  EXPECT_EQ(AtomAdornment(pool_, rule.body[0], {}), "ff");
}

TEST_F(AdornmentTest, GroundArgsAreBound) {
  Load("p(X) :- q(a, X).");
  EXPECT_EQ(AtomAdornment(pool_, program_.rules()[0].body[0], {}), "bf");
}

TEST_F(AdornmentTest, AdornsSameGeneration) {
  Load(R"(
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
)");
  auto adorned = AdornProgram(&program_, program_.rules(), Find("sg", 2),
                              "bf");
  ASSERT_TRUE(adorned.ok()) << adorned.status();
  // One call pattern (bf) with two rules.
  EXPECT_EQ(adorned->rules.size(), 2u);
  const AdornedPredInfo& info = adorned->info.at(adorned->query_pred);
  EXPECT_EQ(info.adornment, "bf");
  EXPECT_EQ(program_.preds().name(adorned->query_pred), "sg__bf");
  // The recursive call is adorned bf as well (left-to-right SIP binds
  // X1 through parent, Y1 stays free until the recursive answers).
  bool found_rec = false;
  for (const AdornedRule& ar : adorned->rules) {
    for (const Atom& atom : ar.rule.body) {
      if (atom.pred == adorned->query_pred) found_rec = true;
    }
  }
  EXPECT_TRUE(found_rec);
}

TEST_F(AdornmentTest, ScsgChainFollowingBindsBothArguments) {
  Load(R"(
scsg(X, Y) :- sibling(X, Y).
scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1),
              scsg(X1, Y1).
)");
  // Without a gate, bindings flow through same_country and the second
  // parent, so the recursive call is adorned bb (paper rules
  // (1.11)-(1.12)).
  auto adorned =
      AdornProgram(&program_, program_.rules(), Find("scsg", 2), "bf");
  ASSERT_TRUE(adorned.ok());
  bool has_bb = false;
  for (const auto& [pred, info] : adorned->info) {
    if (info.adornment == "bb") has_bb = true;
  }
  EXPECT_TRUE(has_bb);
}

TEST_F(AdornmentTest, GateCutsPropagationAcrossWeakLinkage) {
  Load(R"(
scsg(X, Y) :- sibling(X, Y).
scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1),
              scsg(X1, Y1).
)");
  // The Algorithm 3.1 gate: cut the weak linkage, and never chase
  // "bindings" out of an unrestricted scan (no bound argument).
  PropagationGate gate = [this](const Atom& literal,
                                const std::string& ad) {
    if (ad.find('b') == std::string::npos) return false;
    return program_.preds().name(literal.pred) != "same_country";
  };
  auto adorned = AdornProgram(&program_, program_.rules(), Find("scsg", 2),
                              "bf", gate);
  ASSERT_TRUE(adorned.ok());
  // With the weak linkage cut, the recursion stays bf: only one
  // adorned predicate exists.
  for (const auto& [pred, info] : adorned->info) {
    EXPECT_EQ(info.adornment, "bf");
  }
  // Literals after the cut do not see Y1 as bound, and the gated
  // literal is marked non-propagating.
  for (const AdornedRule& ar : adorned->rules) {
    for (size_t i = 0; i < ar.rule.body.size(); ++i) {
      if (program_.preds().name(ar.rule.body[i].pred) == "same_country") {
        EXPECT_FALSE(ar.propagates[i]);
      }
    }
  }
}

TEST_F(AdornmentTest, BuiltinsPropagateOnlyWhenEvaluable) {
  Load(R"(
f(X, Y) :- g(X, X1), Y is X1 + 1, f(X1, Y1).
f(X, Y) :- g(X, Y).
)");
  auto adorned =
      AdornProgram(&program_, program_.rules(), Find("f", 2), "bf");
  ASSERT_TRUE(adorned.ok());
  // sum(X1, 1, Y) is evaluable once X1 is bound: Y becomes bound, so
  // no f__bb should be needed... actually Y bound does not affect the
  // recursive call f(X1, Y1). Check instead that adornment exists and
  // that the recursive call pattern is bf.
  for (const auto& [pred, info] : adorned->info) {
    EXPECT_EQ(info.adornment, "bf");
  }
}

TEST_F(AdornmentTest, NonEvaluableBuiltinDoesNotPropagate) {
  // cons(X1, W1, W) with only X1 bound is not evaluable: W stays free.
  Load(R"(
app(U, V, W) :- cons(X1, U1, U), cons(X1, W1, W), app(U1, V, W1).
app(U, V, W) :- U = [], V = W.
)");
  auto adorned =
      AdornProgram(&program_, program_.rules(), Find("app", 3), "bbf");
  ASSERT_TRUE(adorned.ok());
  // The recursive call app(U1, V, W1) must be adorned bbf (W1 free):
  // chain-split is forced by finiteness, not blind propagation.
  for (const auto& [pred, info] : adorned->info) {
    EXPECT_EQ(info.adornment, "bbf");
  }
  for (const AdornedRule& ar : adorned->rules) {
    for (size_t i = 0; i < ar.rule.body.size(); ++i) {
      const Atom& atom = ar.rule.body[i];
      if (program_.preds().name(atom.pred) == "cons" &&
          ar.rule.body.size() > 1) {
        // First cons (decomposing U) propagates; second (building W)
        // does not.
        std::vector<TermId> vars;
        CollectAtomVariables(pool_, atom, &vars);
      }
    }
  }
}

TEST_F(AdornmentTest, AdornmentArityMismatchRejected) {
  Load("p(X) :- q(X).");
  auto adorned = AdornProgram(&program_, program_.rules(), Find("p", 1),
                              "bf");
  ASSERT_FALSE(adorned.ok());
  EXPECT_EQ(adorned.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(AdornmentTest, UnknownPredicateRejected) {
  Load("p(X) :- q(X).");
  PredId q = Find("q", 1);
  auto adorned = AdornProgram(&program_, program_.rules(), q, "b");
  ASSERT_FALSE(adorned.ok());
}

TEST_F(AdornmentTest, NestedPredicatesGetAdorned) {
  Load(R"(
outer(X, Y) :- inner(X, Y).
outer(X, Y) :- e(X, Z), outer(Z, Y).
inner(X, Y) :- f(X, Y).
)");
  auto adorned = AdornProgram(&program_, program_.rules(),
                              Find("outer", 2), "bf");
  ASSERT_TRUE(adorned.ok());
  bool inner_adorned = false;
  for (const auto& [pred, info] : adorned->info) {
    if (program_.preds().name(info.original) == "inner") {
      inner_adorned = true;
      EXPECT_EQ(info.adornment, "bf");
    }
  }
  EXPECT_TRUE(inner_adorned);
}

}  // namespace
}  // namespace chainsplit
