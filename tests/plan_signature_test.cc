// Cache keys: lexical query canonicalization and planner signatures.

#include "core/plan_signature.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "rel/catalog.h"

namespace chainsplit {
namespace {

TEST(CanonicalizeQueryTextTest, NormalizesWhitespaceCommentsAndNames) {
  auto a = CanonicalizeQueryText("?- tc(a0, Y).");
  auto b = CanonicalizeQueryText("  ?-  tc( a0 ,\n  Z ). % trailing comment");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->key, b->key);
  EXPECT_EQ(a->vars, (std::vector<std::string>{"Y"}));
  EXPECT_EQ(b->vars, (std::vector<std::string>{"Z"}));
}

TEST(CanonicalizeQueryTextTest, VariableIdentityMatters) {
  auto xy = CanonicalizeQueryText("?- p(X, Y).");
  auto xx = CanonicalizeQueryText("?- p(X, X).");
  ASSERT_TRUE(xy.has_value());
  ASSERT_TRUE(xx.has_value());
  EXPECT_NE(xy->key, xx->key);
  // Repeated variables dedup in the reported name list.
  EXPECT_EQ(xx->vars, (std::vector<std::string>{"X"}));
}

TEST(CanonicalizeQueryTextTest, AnonymousVariablesStayDistinct) {
  auto anon = CanonicalizeQueryText("?- p(_, _).");
  auto shared = CanonicalizeQueryText("?- p(X, X).");
  ASSERT_TRUE(anon.has_value());
  ASSERT_TRUE(shared.has_value());
  // The parser makes each bare `_` fresh, so p(_,_) must not share a
  // key with p(X,X)...
  EXPECT_NE(anon->key, shared->key);
  // ...but it does share one with p(A,B).
  auto ab = CanonicalizeQueryText("?- p(A, B).");
  ASSERT_TRUE(ab.has_value());
  EXPECT_EQ(anon->key, ab->key);
  EXPECT_EQ(anon->vars.size(), 2u);
}

TEST(CanonicalizeQueryTextTest, RejectsNonQueryShapes) {
  EXPECT_FALSE(CanonicalizeQueryText("p(a, b).").has_value());
  EXPECT_FALSE(CanonicalizeQueryText("?- p(a, b)").has_value());  // no dot
  EXPECT_FALSE(CanonicalizeQueryText("?- p(a). ?- q(b).").has_value());
  EXPECT_FALSE(CanonicalizeQueryText("?- p(a). garbage").has_value());
  EXPECT_FALSE(CanonicalizeQueryText("").has_value());
  EXPECT_FALSE(CanonicalizeQueryText("% only a comment").has_value());
}

TEST(CanonicalizeQueryTextTest, ConstantsKeptVerbatim) {
  auto a = CanonicalizeQueryText("?- tc(a1, Y).");
  auto b = CanonicalizeQueryText("?- tc(a2, Y).");
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->key, b->key);  // result keys distinguish constants
}

class PlanSignatureTest : public ::testing::Test {
 protected:
  // By value: the program's query vector reallocates across parses.
  Query Parse(const std::string& text) {
    Status status = ParseProgram(text, &db_.program());
    CS_CHECK(status.ok()) << status;
    return db_.program().queries().back();
  }
  Database db_;
};

TEST_F(PlanSignatureTest, AbstractsConstantsToBoundness) {
  std::string s1 = PlanSignature(db_.program(), Parse("?- tc(a1, Y)."));
  std::string s2 = PlanSignature(db_.program(), Parse("?- tc(a2, Z)."));
  // Different constants and variable names, same adorned shape.
  EXPECT_EQ(s1, s2);

  EXPECT_NE(PlanSignature(db_.program(), Parse("?- tc(Y, a1).")),
            s1);  // bf vs fb
  EXPECT_EQ(PlanSignature(db_.program(), Parse("?- tc(41, Y).")),
            s1);  // ints are just bound
}

TEST_F(PlanSignatureTest, VariableSharingChangesSignature) {
  Query shared = Parse("?- p(X, X).");
  Query distinct = Parse("?- p(X, Y).");
  EXPECT_NE(PlanSignature(db_.program(), shared),
            PlanSignature(db_.program(), distinct));
}

TEST_F(PlanSignatureTest, ReachablePredsFollowsRules) {
  Parse(
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
      "unrelated(X) :- other(X).\n"
      "?- tc(a, Y).");
  const Query& query = db_.program().queries().back();
  std::vector<PredId> deps = ReachablePreds(db_.program(), query);
  auto has = [&](const char* name, int arity) {
    auto pred = db_.program().preds().Find(name, arity);
    return pred.has_value() &&
           std::find(deps.begin(), deps.end(), *pred) != deps.end();
  };
  EXPECT_TRUE(has("tc", 2));
  EXPECT_TRUE(has("edge", 2));
  EXPECT_FALSE(has("unrelated", 1));
  EXPECT_FALSE(has("other", 1));
}

}  // namespace
}  // namespace chainsplit
