// CS_CHECK / CS_DCHECK behavior. This file is compiled into two test
// binaries (tests/CMakeLists.txt): logging_test with NDEBUG forced
// *off* and logging_ndebug_test with NDEBUG forced *on*, so both
// sides of the CS_DCHECK compile-out are asserted no matter which
// build type the suite runs under.

#include "common/logging.h"

#include <gtest/gtest.h>

namespace chainsplit {
namespace {

TEST(LoggingTest, CheckPassesOnTrue) {
  int evaluations = 0;
  CS_CHECK(++evaluations == 1) << "never printed";
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingDeathTest, CheckAbortsOnFalseInEveryBuild) {
  // CS_CHECK is never compiled out — release builds keep hard
  // invariant checks.
  EXPECT_DEATH(CS_CHECK(false) << "boom", "CHECK failed");
}

#ifdef NDEBUG

TEST(LoggingTest, DcheckCompiledOutUnderNdebug) {
  // Must not abort...
  CS_DCHECK(false) << "never evaluated";
  // ...and must not evaluate the condition or the streamed operands.
  int evaluations = 0;
  CS_DCHECK(++evaluations > 0) << "never evaluated";
  EXPECT_EQ(evaluations, 0);
}

#else  // !NDEBUG

TEST(LoggingDeathTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH(CS_DCHECK(false) << "boom", "CHECK failed");
}

TEST(LoggingTest, DcheckEvaluatesConditionInDebugBuilds) {
  int evaluations = 0;
  CS_DCHECK(++evaluations == 1) << "never printed";
  EXPECT_EQ(evaluations, 1);
}

#endif

}  // namespace
}  // namespace chainsplit
