#include "term/term.h"

#include <gtest/gtest.h>

namespace chainsplit {
namespace {

TEST(TermPoolTest, InternsIntsOnce) {
  TermPool pool;
  TermId a = pool.MakeInt(42);
  TermId b = pool.MakeInt(42);
  TermId c = pool.MakeInt(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(pool.IsInt(a));
  EXPECT_EQ(pool.int_value(a), 42);
  EXPECT_TRUE(pool.IsGround(a));
}

TEST(TermPoolTest, NegativeIntValues) {
  TermPool pool;
  TermId a = pool.MakeInt(-7);
  EXPECT_EQ(pool.int_value(a), -7);
  EXPECT_EQ(pool.ToString(a), "-7");
}

TEST(TermPoolTest, InternsSymbolsOnce) {
  TermPool pool;
  TermId a = pool.MakeSymbol("tom");
  TermId b = pool.MakeSymbol("tom");
  TermId c = pool.MakeSymbol("bob");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(pool.IsSymbol(a));
  EXPECT_EQ(pool.name(a), "tom");
  EXPECT_TRUE(pool.IsGround(a));
}

TEST(TermPoolTest, SymbolsAndVariablesAreDistinct) {
  TermPool pool;
  TermId s = pool.MakeSymbol("x");
  TermId v = pool.MakeVariable("x");
  EXPECT_NE(s, v);
  EXPECT_TRUE(pool.IsVariable(v));
  EXPECT_FALSE(pool.IsGround(v));
}

TEST(TermPoolTest, FreshVariablesAreAllDistinct) {
  TermPool pool;
  TermId a = pool.FreshVariable("X");
  TermId b = pool.FreshVariable("X");
  EXPECT_NE(a, b);
  TermId named = pool.MakeVariable("X");
  EXPECT_NE(a, named);
  EXPECT_NE(b, named);
}

TEST(TermPoolTest, HashConsesCompounds) {
  TermPool pool;
  TermId x = pool.MakeInt(1);
  TermId y = pool.MakeInt(2);
  TermId args1[] = {x, y};
  TermId args2[] = {x, y};
  TermId f1 = pool.MakeCompound("f", args1);
  TermId f2 = pool.MakeCompound("f", args2);
  EXPECT_EQ(f1, f2);
  TermId args3[] = {y, x};
  EXPECT_NE(f1, pool.MakeCompound("f", args3));
  EXPECT_NE(f1, pool.MakeCompound("g", args1));
}

TEST(TermPoolTest, CompoundAccessors) {
  TermPool pool;
  TermId x = pool.MakeInt(1);
  TermId v = pool.MakeVariable("V");
  TermId args[] = {x, v};
  TermId f = pool.MakeCompound("pair", args);
  EXPECT_TRUE(pool.IsCompound(f));
  EXPECT_EQ(pool.functor(f), "pair");
  ASSERT_EQ(pool.args(f).size(), 2u);
  EXPECT_EQ(pool.args(f)[0], x);
  EXPECT_EQ(pool.args(f)[1], v);
  EXPECT_FALSE(pool.IsGround(f));  // contains variable V
}

TEST(TermPoolTest, GroundFlagPropagates) {
  TermPool pool;
  TermId v = pool.MakeVariable("V");
  TermId inner_args[] = {v};
  TermId inner = pool.MakeCompound("g", inner_args);
  TermId outer_args[] = {inner, pool.MakeInt(3)};
  TermId outer = pool.MakeCompound("f", outer_args);
  EXPECT_FALSE(pool.IsGround(outer));

  TermId ground_args[] = {pool.MakeInt(1)};
  TermId ground_inner = pool.MakeCompound("g", ground_args);
  TermId outer2_args[] = {ground_inner, pool.MakeInt(3)};
  EXPECT_TRUE(pool.IsGround(pool.MakeCompound("f", outer2_args)));
}

TEST(TermPoolTest, ConsAndNil) {
  TermPool pool;
  EXPECT_TRUE(pool.IsNil(pool.Nil()));
  TermId cell = pool.MakeCons(pool.MakeInt(1), pool.Nil());
  EXPECT_TRUE(pool.IsCons(cell));
  EXPECT_FALSE(pool.IsCons(pool.Nil()));
  EXPECT_EQ(pool.args(cell)[0], pool.MakeInt(1));
  EXPECT_EQ(pool.args(cell)[1], pool.Nil());
}

TEST(TermPoolTest, ToStringRendersListsWithSugar) {
  TermPool pool;
  TermId list =
      pool.MakeCons(pool.MakeInt(1),
                    pool.MakeCons(pool.MakeInt(2), pool.Nil()));
  EXPECT_EQ(pool.ToString(list), "[1, 2]");
  TermId tail_var = pool.MakeVariable("T");
  TermId improper = pool.MakeCons(pool.MakeInt(1), tail_var);
  EXPECT_EQ(pool.ToString(improper), "[1 | T]");
  EXPECT_EQ(pool.ToString(pool.Nil()), "[]");
}

TEST(TermPoolTest, ToStringRendersCompounds) {
  TermPool pool;
  TermId args[] = {pool.MakeSymbol("a"), pool.MakeVariable("X")};
  EXPECT_EQ(pool.ToString(pool.MakeCompound("f", args)), "f(a, X)");
}

TEST(TermPoolTest, CollectVariablesInOrderWithoutDuplicates) {
  TermPool pool;
  TermId x = pool.MakeVariable("X");
  TermId y = pool.MakeVariable("Y");
  TermId args[] = {x, y, x};
  TermId f = pool.MakeCompound("f", args);
  std::vector<TermId> vars;
  pool.CollectVariables(f, &vars);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], x);
  EXPECT_EQ(vars[1], y);
}

TEST(TermPoolTest, DeepListInterning) {
  TermPool pool;
  // Two structurally equal 1000-element lists intern to the same id.
  TermId a = pool.Nil();
  TermId b = pool.Nil();
  for (int i = 0; i < 1000; ++i) {
    a = pool.MakeCons(pool.MakeInt(i), a);
    b = pool.MakeCons(pool.MakeInt(i), b);
  }
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace chainsplit
