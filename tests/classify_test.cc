#include "core/classify.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "core/rectify.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

class ClassifyTest : public ::testing::Test {
 protected:
  ClassifyTest() : program_(&pool_) {}

  ProgramAnalysis Analyze(std::string_view text) {
    EXPECT_TRUE(ParseProgram(text, &program_).ok());
    rectified_ = RectifyRules(&program_);
    return ProgramAnalysis::Analyze(program_, rectified_);
  }

  PredId Find(std::string_view name, int arity) {
    return program_.preds().Find(name, arity).value();
  }

  TermPool pool_;
  Program program_;
  std::vector<Rule> rectified_;
};

TEST_F(ClassifyTest, NonRecursive) {
  auto analysis = Analyze("p(X) :- e(X, Y), f(Y).");
  EXPECT_EQ(analysis.Get(Find("p", 1)).recursion,
            RecursionClass::kNonRecursive);
  EXPECT_FALSE(analysis.Get(Find("p", 1)).functional);
}

TEST_F(ClassifyTest, LinearRecursion) {
  auto analysis = Analyze(R"(
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
)");
  EXPECT_EQ(analysis.Get(Find("tc", 2)).recursion, RecursionClass::kLinear);
  EXPECT_FALSE(analysis.Get(Find("tc", 2)).functional);
}

TEST_F(ClassifyTest, SgIsLinearFunctionFree) {
  auto analysis = Analyze(R"(
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
)");
  const auto& info = analysis.Get(Find("sg", 2));
  EXPECT_EQ(info.recursion, RecursionClass::kLinear);
  EXPECT_FALSE(info.functional);
}

TEST_F(ClassifyTest, AppendIsLinearFunctional) {
  auto analysis = Analyze(AppendProgramSource());
  const auto& info = analysis.Get(Find("append", 3));
  EXPECT_EQ(info.recursion, RecursionClass::kLinear);
  EXPECT_TRUE(info.functional);  // cons after rectification
}

TEST_F(ClassifyTest, IsortIsNestedLinear) {
  auto analysis = Analyze(IsortProgramSource());
  EXPECT_EQ(analysis.Get(Find("isort", 2)).recursion,
            RecursionClass::kNestedLinear);
  EXPECT_EQ(analysis.Get(Find("insert", 3)).recursion,
            RecursionClass::kLinear);
  EXPECT_TRUE(analysis.Get(Find("isort", 2)).functional);
}

TEST_F(ClassifyTest, QsortIsNonLinear) {
  auto analysis = Analyze(QsortProgramSource());
  EXPECT_EQ(analysis.Get(Find("qsort", 2)).recursion,
            RecursionClass::kNonLinear);
  EXPECT_EQ(analysis.Get(Find("partition", 4)).recursion,
            RecursionClass::kLinear);
  EXPECT_EQ(analysis.Get(Find("append", 3)).recursion,
            RecursionClass::kLinear);
}

TEST_F(ClassifyTest, MutualRecursion) {
  auto analysis = Analyze(R"(
even(z).
even(X) :- s(X, Y), odd(Y).
odd(X) :- s(X, Y), even(Y).
)");
  EXPECT_EQ(analysis.Get(Find("even", 1)).recursion,
            RecursionClass::kMutual);
  EXPECT_EQ(analysis.Get(Find("odd", 1)).recursion, RecursionClass::kMutual);
}

TEST_F(ClassifyTest, FunctionalTaintPropagatesToCallers) {
  auto analysis = Analyze(R"(
wrap(X, Y) :- lower(X, Y).
lower(X, Y) :- Y is X + 1.
)");
  EXPECT_TRUE(analysis.Get(Find("lower", 2)).functional);
  EXPECT_TRUE(analysis.Get(Find("wrap", 2)).functional);
}

TEST_F(ClassifyTest, EvaluationOrderIsCalleeFirst) {
  auto analysis = Analyze(R"(
top(X) :- mid(X).
mid(X) :- bottom(X).
bottom(a).
)");
  const auto& order = analysis.evaluation_order();
  auto pos = [&](PredId p) {
    return std::find(order.begin(), order.end(), p) - order.begin();
  };
  // bottom/1 has a fact only (not IDB via rules? bottom(a) ground ->
  // fact, so only top and mid are IDB).
  EXPECT_LT(pos(Find("mid", 1)), pos(Find("top", 1)));
}

TEST_F(ClassifyTest, UnknownPredicateDefaults) {
  auto analysis = Analyze("p(X) :- e(X).");
  PredId e = Find("e", 1);
  EXPECT_FALSE(analysis.IsIdb(e));
  EXPECT_EQ(analysis.Get(e).recursion, RecursionClass::kNonRecursive);
}

}  // namespace
}  // namespace chainsplit
