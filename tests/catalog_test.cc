#include "rel/catalog.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace chainsplit {
namespace {

TEST(ComputeStatsTest, CardinalityAndDistincts) {
  Relation rel(2);
  TermPool pool;
  for (int i = 0; i < 12; ++i) {
    rel.Insert({pool.MakeInt(i % 3), pool.MakeInt(i)});
  }
  RelationStats stats = ComputeStats(rel);
  EXPECT_EQ(stats.cardinality, 12);
  EXPECT_EQ(stats.distinct[0], 3);
  EXPECT_EQ(stats.distinct[1], 12);
  EXPECT_DOUBLE_EQ(stats.FanOut(0), 4.0);
  EXPECT_DOUBLE_EQ(stats.FanOut(1), 1.0);
}

TEST(ComputeStatsTest, EmptyRelation) {
  Relation rel(2);
  RelationStats stats = ComputeStats(rel);
  EXPECT_EQ(stats.cardinality, 0);
  EXPECT_DOUBLE_EQ(stats.FanOut(0), 0.0);
}

TEST(DatabaseTest, LoadProgramFacts) {
  Database db;
  ASSERT_TRUE(
      ParseProgram("e(a, b). e(b, c). n(1).", &db.program()).ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  auto e = db.program().preds().Find("e", 2);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(db.GetRelation(*e)->size(), 2);
  auto n = db.program().preds().Find("n", 1);
  EXPECT_EQ(db.GetRelation(*n)->size(), 1);
  EXPECT_EQ(db.StoredPredicates().size(), 2u);
}

TEST(DatabaseTest, GetOrCreateRelationUsesArity) {
  Database db;
  PredId p = db.program().InternPred("p", 3);
  Relation* rel = db.GetOrCreateRelation(p);
  EXPECT_EQ(rel->arity(), 3);
  EXPECT_EQ(rel, db.GetOrCreateRelation(p));  // same object
  EXPECT_EQ(db.GetRelation(db.program().InternPred("q", 1)), nullptr);
}

TEST(DatabaseTest, StatsAreCachedAndRefreshed) {
  Database db;
  PredId p = db.program().InternPred("p", 2);
  db.InsertFact(p, {db.pool().MakeInt(1), db.pool().MakeInt(2)});
  const RelationStats& s1 = db.Stats(p);
  EXPECT_EQ(s1.cardinality, 1);
  db.InsertFact(p, {db.pool().MakeInt(1), db.pool().MakeInt(3)});
  const RelationStats& s2 = db.Stats(p);
  EXPECT_EQ(s2.cardinality, 2);
  EXPECT_EQ(s2.distinct[0], 1);
  EXPECT_EQ(s2.distinct[1], 2);
}

TEST(DatabaseTest, StatsForEmptyPredicate) {
  Database db;
  PredId p = db.program().InternPred("never", 2);
  const RelationStats& stats = db.Stats(p);
  EXPECT_EQ(stats.cardinality, 0);
  EXPECT_EQ(stats.distinct.size(), 2u);
}

}  // namespace
}  // namespace chainsplit
