// The event-driven network front end: protocol behavior across both
// server modes (threaded vs epoll), byte-identical differential
// sessions, bounded-queue admission control, oversize-line rejection,
// idle-connection scalability, and fd/thread leak checks.

#include <dirent.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/blocking_client.h"
#include "net/epoll_engine.h"
#include "net/listen.h"
#include "service/query_service.h"
#include "service/server.h"

namespace chainsplit {
namespace {

int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

/// Threads of this process, from /proc/self/status.
int CountThreads() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  std::fclose(f);
  return threads;
}

template <typename Pred>
bool EventuallyTrue(Pred pred) {
  for (int i = 0; i < 500; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

void SeedService(QueryService* service) {
  UpdateResponse seeded = service->Update(
      "edge(x, y).\nedge(y, z).\n"
      "tc(A, B) :- edge(A, B).\n"
      "tc(A, B) :- edge(A, C), tc(C, B).\n");
  ASSERT_TRUE(seeded.status.ok());
}

class NetServerModeTest
    : public ::testing::TestWithParam<ServerOptions::Mode> {
 protected:
  ServerOptions Options() {
    ServerOptions options;
    options.mode = GetParam();
    return options;
  }
};

TEST_P(NetServerModeTest, ServesTheLineProtocol) {
  QueryService service;
  SeedService(&service);
  TcpServer server(&service, Options());
  StatusOr<int> port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();

  BlockingClient client("127.0.0.1", *port);
  ASSERT_TRUE(client.connected());
  EXPECT_NE(client.ReadFrame().find("ready"), std::string::npos);

  ASSERT_TRUE(client.Send("?- tc(x, Y).\n"));
  std::string answer = client.ReadFrame();
  EXPECT_NE(answer.find("Y = y"), std::string::npos) << answer;
  EXPECT_NE(answer.find("2 answer(s)"), std::string::npos) << answer;

  // Update visible to the next query.
  ASSERT_TRUE(client.Send("edge(z, w).\n"));
  client.ReadFrame();
  ASSERT_TRUE(client.Send("?- tc(x, Y).\n"));
  EXPECT_NE(client.ReadFrame().find("3 answer(s)"), std::string::npos);

  // Parse errors are in-band.
  ASSERT_TRUE(client.Send("p(a&.\n"));
  EXPECT_NE(client.ReadFrame().find("parse error"), std::string::npos);

  // Multi-line clause accumulation, with CRLF endings.
  ASSERT_TRUE(client.Send("?- tc(x,\r\n"));
  ASSERT_TRUE(client.Send("Y).\r\n"));
  EXPECT_NE(client.ReadFrame().find("3 answer(s)"), std::string::npos);

  // The :net introspection command works over the wire in both modes.
  ASSERT_TRUE(client.Send(":net\n"));
  std::string net = client.ReadFrame();
  EXPECT_NE(net.find("% net mode"), std::string::npos) << net;
  EXPECT_NE(net.find("accepted"), std::string::npos) << net;

  server.Stop();
}

TEST_P(NetServerModeTest, PipelinedBurstAnsweredInOrder) {
  QueryService service;
  ASSERT_TRUE(service.Update("p(a).\np(b).\nq(c).\n").status.ok());
  TcpServer server(&service, Options());
  StatusOr<int> port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();

  BlockingClient client("127.0.0.1", *port);
  ASSERT_TRUE(client.connected());
  client.ReadFrame();  // banner

  constexpr int kRequests = 120;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += i % 2 == 0 ? "?- p(X).\n" : "?- q(X).\n";
  }
  ASSERT_TRUE(client.Send(burst));
  for (int i = 0; i < kRequests; ++i) {
    std::string answer = client.ReadFrame();
    EXPECT_NE(answer.find(i % 2 == 0 ? "2 answer(s)" : "1 answer(s)"),
              std::string::npos)
        << "request " << i << ": " << answer;
  }
  server.Stop();
}

TEST_P(NetServerModeTest, OversizeLineGetsErrorFrameAndClose) {
  QueryService service;
  ASSERT_TRUE(service.Update("p(a).").status.ok());
  ServerOptions options = Options();
  options.max_line_bytes = 64;
  TcpServer server(&service, options);
  StatusOr<int> port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();

  {
    // An endless unterminated line must not grow server memory: the
    // connection is rejected once the limit is crossed.
    BlockingClient client("127.0.0.1", *port);
    ASSERT_TRUE(client.connected());
    client.ReadFrame();
    ASSERT_TRUE(client.Send(std::string(200, 'x')));  // no newline
    EXPECT_NE(client.ReadFrame().find("request line exceeds 64 bytes"),
              std::string::npos);
    EXPECT_EQ(client.ReadFrame(), "");  // server closed
  }
  {
    // A terminated-but-huge line is rejected the same way.
    BlockingClient client("127.0.0.1", *port);
    ASSERT_TRUE(client.connected());
    client.ReadFrame();
    ASSERT_TRUE(client.Send(std::string(200, 'y') + "\n?- p(X).\n"));
    EXPECT_NE(client.ReadFrame().find("request line exceeds 64 bytes"),
              std::string::npos);
    EXPECT_EQ(client.ReadFrame(), "");
  }
  // The server survives and serves the next client.
  BlockingClient client("127.0.0.1", *port);
  ASSERT_TRUE(client.connected());
  client.ReadFrame();
  ASSERT_TRUE(client.Send("?- p(X).\n"));
  EXPECT_NE(client.ReadFrame().find("1 answer(s)"), std::string::npos);
  EXPECT_GE(server.net_counters().rejected_oversize.load(), 2);
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    BothModes, NetServerModeTest,
    ::testing::Values(ServerOptions::Mode::kThreaded,
                      ServerOptions::Mode::kEpoll),
    [](const ::testing::TestParamInfo<ServerOptions::Mode>& info) {
      return info.param == ServerOptions::Mode::kEpoll ? "Epoll" : "Threaded";
    });

/// The two front ends must speak byte-identical protocol: one scripted
/// session — facts, recursion, cache-hit replay with :plan, parse
/// errors, multi-line clauses, empty lines, commands, :quit — replayed
/// against a threaded and an epoll server over identically seeded
/// services, comparing the raw byte streams.
TEST(NetDifferentialTest, ThreadedAndEpollByteIdentical) {
  const std::string script =
      "p(a, b).\n"
      "p(b, c).\n"
      "tc(X, Y) :- p(X, Y).\n"
      "tc(X, Y) :- p(X, Z), tc(Z, Y).\n"
      "?- tc(a, Y).\n"
      "?- tc(a,\n"
      "Y).\n"
      "\n"
      ":plan\n"
      "?- tc(a, Y).\n"
      "bad(syntax&.\n"
      ":preds\n"
      ":deadline 250\n"
      "?- tc(b, Y).\n"
      ":unknowncmd\n"
      ":quit\n";

  auto run = [&script](ServerOptions::Mode mode) {
    QueryService service;
    ServerOptions options;
    options.mode = mode;
    TcpServer server(&service, options);
    StatusOr<int> port = server.Start(0);
    EXPECT_TRUE(port.ok()) << port.status();
    BlockingClient client("127.0.0.1", *port);
    EXPECT_TRUE(client.connected());
    EXPECT_TRUE(client.Send(script));
    std::string bytes = client.ReadUntilClose();
    server.Stop();
    return bytes;
  };

  std::string threaded = run(ServerOptions::Mode::kThreaded);
  std::string epoll = run(ServerOptions::Mode::kEpoll);
  EXPECT_FALSE(threaded.empty());
  EXPECT_NE(threaded.find("2 answer(s)"), std::string::npos) << threaded;
  EXPECT_EQ(threaded, epoll);
}

/// Same differential for the oversize-rejection path.
TEST(NetDifferentialTest, OversizeRejectionByteIdentical) {
  auto run = [](ServerOptions::Mode mode) {
    QueryService service;
    ServerOptions options;
    options.mode = mode;
    options.max_line_bytes = 32;
    TcpServer server(&service, options);
    StatusOr<int> port = server.Start(0);
    EXPECT_TRUE(port.ok()) << port.status();
    BlockingClient client("127.0.0.1", *port);
    EXPECT_TRUE(client.connected());
    EXPECT_TRUE(client.Send(std::string(100, 'z')));
    std::string bytes = client.ReadUntilClose();
    server.Stop();
    return bytes;
  };
  std::string threaded = run(ServerOptions::Mode::kThreaded);
  EXPECT_NE(threaded.find("request line exceeds 32 bytes"),
            std::string::npos);
  EXPECT_EQ(threaded, run(ServerOptions::Mode::kEpoll));
}

/// A handler that parks every request until released — makes queue
/// overflow deterministic for the admission-control tests.
class GatedHandlerState {
 public:
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }
  void Await() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return released_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

class GatedHandler : public LineHandler {
 public:
  explicit GatedHandler(GatedHandlerState* gate) : gate_(gate) {}
  std::string Greeting() override { return "hi\n.\n"; }
  bool HandleLine(const std::string& line, std::string* out) override {
    gate_->Await();
    *out = "ok " + line + "\n.\n";
    return true;
  }

 private:
  GatedHandlerState* gate_;
};

/// Queue overflow answers `% overloaded` immediately and keeps the
/// connection alive; once load drains, the same connection is served
/// normally.
TEST(EpollEngineTest, OverloadRejectsAndRecovers) {
  GatedHandlerState gate;
  NetCounters counters;
  EngineOptions options;
  options.queue_capacity = 1;
  options.workers = 1;
  EpollEngine engine([&gate] { return std::make_unique<GatedHandler>(&gate); },
                     options, &counters);
  StatusOr<int> listen_fd = OpenListenSocket("127.0.0.1", 0, 16);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status();
  StatusOr<int> port = BoundPort(*listen_fd);
  ASSERT_TRUE(port.ok());
  ASSERT_TRUE(engine.Start(*listen_fd).ok());

  BlockingClient blocker("127.0.0.1", *port);   // occupies the worker
  BlockingClient waiter("127.0.0.1", *port);    // occupies the queue
  BlockingClient rejected("127.0.0.1", *port);  // overflows
  for (BlockingClient* c : {&blocker, &waiter, &rejected}) {
    ASSERT_TRUE(c->connected());
    EXPECT_EQ(c->ReadFrame(), "hi\n");
  }
  ASSERT_TRUE(blocker.Send("one\n"));
  // Wait until the worker holds request "one" (dispatched and popped,
  // so the queue is empty again) and "two" fills the 1-slot queue;
  // only then is overflow deterministic.
  ASSERT_TRUE(EventuallyTrue([&] {
    return counters.dispatched.load() >= 1 &&
           counters.queue_depth.load() == 0;
  }));
  ASSERT_TRUE(waiter.Send("two\n"));
  ASSERT_TRUE(EventuallyTrue(
      [&] { return counters.queue_depth.load() >= 1; }));

  ASSERT_TRUE(rejected.Send("three\n"));
  EXPECT_EQ(rejected.ReadFrame(), "% overloaded\n");
  EXPECT_GE(counters.rejected_overload.load(), 1);
  EXPECT_GE(counters.queue_high_watermark.load(), 1);

  // The rejected connection is alive: release the gate and it gets
  // served like everyone else.
  gate.Release();
  EXPECT_EQ(blocker.ReadFrame(), "ok one\n");
  EXPECT_EQ(waiter.ReadFrame(), "ok two\n");
  ASSERT_TRUE(rejected.Send("four\n"));
  EXPECT_EQ(rejected.ReadFrame(), "ok four\n");

  engine.Stop();
}

/// One connection can never overflow the queue: at most one of its
/// lines is in flight, the rest wait under TCP backpressure — a
/// pipelining client sees every response, in order, with no
/// rejections.
TEST(EpollEngineTest, SingleConnectionPipeliningBackpressuredNotRejected) {
  GatedHandlerState gate;
  NetCounters counters;
  EngineOptions options;
  options.queue_capacity = 1;
  options.workers = 1;
  EpollEngine engine([&gate] { return std::make_unique<GatedHandler>(&gate); },
                     options, &counters);
  StatusOr<int> listen_fd = OpenListenSocket("127.0.0.1", 0, 16);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status();
  StatusOr<int> port = BoundPort(*listen_fd);
  ASSERT_TRUE(port.ok());
  ASSERT_TRUE(engine.Start(*listen_fd).ok());

  BlockingClient client("127.0.0.1", *port);
  ASSERT_TRUE(client.connected());
  client.ReadFrame();
  ASSERT_TRUE(client.Send("a\nb\nc\nd\ne\n"));
  gate.Release();
  for (const char* expect : {"ok a\n", "ok b\n", "ok c\n", "ok d\n",
                             "ok e\n"}) {
    EXPECT_EQ(client.ReadFrame(), expect);
  }
  EXPECT_EQ(counters.rejected_overload.load(), 0);
  engine.Stop();
}

/// Connection count is cheap state, not threads: hundreds of idle
/// connections add zero threads, and closing them returns the process
/// to its fd baseline.
TEST(NetServerTest, IdleConnectionsAddNoThreads) {
  QueryService service;
  ASSERT_TRUE(service.Update("p(a).").status.ok());
  ServerOptions options;
  options.mode = ServerOptions::Mode::kEpoll;
  TcpServer server(&service, options);
  StatusOr<int> port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();
  EXPECT_EQ(server.tracked_connection_threads(), 0);

  {
    BlockingClient warm("127.0.0.1", *port);
    ASSERT_TRUE(warm.connected());
    warm.ReadFrame();
  }
  const int threads_before = CountThreads();
  const int fds_before = CountOpenFds();
  ASSERT_GT(threads_before, 0);

  constexpr int kIdle = 300;
  {
    std::vector<BlockingClient> idle;
    idle.reserve(kIdle);
    for (int i = 0; i < kIdle; ++i) {
      idle.emplace_back("127.0.0.1", *port);
      ASSERT_TRUE(idle.back().connected()) << "connection " << i;
    }
    ASSERT_TRUE(EventuallyTrue([&] {
      return server.net_counters().active_connections.load() >= kIdle;
    }));
    EXPECT_EQ(CountThreads(), threads_before)
        << "idle connections must not spawn threads";

    // The server still answers while holding the idle crowd.
    BlockingClient active("127.0.0.1", *port);
    ASSERT_TRUE(active.connected());
    active.ReadFrame();
    ASSERT_TRUE(active.Send("?- p(X).\n"));
    EXPECT_NE(active.ReadFrame().find("1 answer(s)"), std::string::npos);
  }

  EXPECT_TRUE(EventuallyTrue([&] {
    return server.net_counters().active_connections.load() <= 1;
  })) << "active connections: "
      << server.net_counters().active_connections.load();
  EXPECT_TRUE(EventuallyTrue([&] {
    int now = CountOpenFds();
    return now >= 0 && now <= fds_before + 2;
  })) << "fd count grew from " << fds_before << " to " << CountOpenFds();
  server.Stop();
}

/// Stop() reclaims every fd and thread, with clients mid-flight.
TEST(NetServerTest, StopLeaksNoFdsOrThreads) {
  const int fds_baseline = CountOpenFds();
  const int threads_baseline = CountThreads();
  {
    QueryService service;
    ASSERT_TRUE(service.Update("p(a).").status.ok());
    ServerOptions options;
    options.mode = ServerOptions::Mode::kEpoll;
    TcpServer server(&service, options);
    StatusOr<int> port = server.Start(0);
    ASSERT_TRUE(port.ok()) << port.status();
    std::vector<BlockingClient> clients;
    for (int i = 0; i < 20; ++i) {
      clients.emplace_back("127.0.0.1", *port);
      ASSERT_TRUE(clients.back().connected());
      if (i % 3 == 0) clients.back().Send("?- p(X).\n");
      if (i % 3 == 1) clients.back().Abort();
    }
    server.Stop();
    server.Stop();  // idempotent
  }
  EXPECT_TRUE(EventuallyTrue([&] {
    int now = CountOpenFds();
    return now >= 0 && now <= fds_baseline;
  })) << "fds: " << fds_baseline << " -> " << CountOpenFds();
  EXPECT_TRUE(EventuallyTrue(
      [&] { return CountThreads() <= threads_baseline; }))
      << "threads: " << threads_baseline << " -> " << CountThreads();
}

TEST(NetServerTest, ConfigurableListenAddrAndBacklog) {
  QueryService service;
  ASSERT_TRUE(service.Update("p(a).").status.ok());
  ServerOptions options;
  options.listen_addr = "0.0.0.0";
  options.listen_backlog = 8;
  TcpServer server(&service, options);
  StatusOr<int> port = server.Start(0);
  ASSERT_TRUE(port.ok()) << port.status();
  BlockingClient client("127.0.0.1", *port);
  ASSERT_TRUE(client.connected());
  EXPECT_NE(client.ReadFrame().find("ready"), std::string::npos);
  server.Stop();
}

TEST(NetServerTest, RejectsInvalidListenAddr) {
  QueryService service;
  ServerOptions options;
  options.listen_addr = "not-an-address";
  TcpServer server(&service, options);
  StatusOr<int> port = server.Start(0);
  EXPECT_FALSE(port.ok());
}

}  // namespace
}  // namespace chainsplit
