#include "ast/printer.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace chainsplit {
namespace {

class PrinterTest : public ::testing::Test {
 protected:
  PrinterTest() : program_(&pool_) {}
  TermPool pool_;
  Program program_;
};

TEST_F(PrinterTest, RendersAtomAndRule) {
  ASSERT_TRUE(
      ParseProgram("sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).",
                   &program_)
          .ok());
  EXPECT_EQ(RuleToString(program_, program_.rules()[0]),
            "sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).");
}

TEST_F(PrinterTest, RendersFactAndComparisonInfix) {
  ASSERT_TRUE(ParseProgram("p(X) :- q(X), X > 3.", &program_).ok());
  EXPECT_EQ(RuleToString(program_, program_.rules()[0]),
            "p(X) :- q(X), X > 3.");
}

TEST_F(PrinterTest, RendersQuery) {
  ASSERT_TRUE(ParseProgram("?- sg(tom, Y).", &program_).ok());
  EXPECT_EQ(QueryToString(program_, program_.queries()[0]),
            "?- sg(tom, Y).");
}

TEST_F(PrinterTest, RendersListsInAtoms) {
  ASSERT_TRUE(ParseProgram("?- isort([5, 7, 1], Ys).", &program_).ok());
  EXPECT_EQ(QueryToString(program_, program_.queries()[0]),
            "?- isort([5, 7, 1], Ys).");
}

TEST_F(PrinterTest, ProgramRoundTripsThroughParser) {
  const char* source = R"(e(a, b).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
?- tc(a, Y).
)";
  ASSERT_TRUE(ParseProgram(source, &program_).ok());
  std::string printed = ProgramToString(program_);
  // Parse the printed text again: same clause counts.
  TermPool pool2;
  Program reparsed(&pool2);
  ASSERT_TRUE(ParseProgram(printed, &reparsed).ok());
  EXPECT_EQ(reparsed.facts().size(), program_.facts().size());
  EXPECT_EQ(reparsed.rules().size(), program_.rules().size());
  EXPECT_EQ(reparsed.queries().size(), program_.queries().size());
  // And printing again is a fixpoint.
  EXPECT_EQ(ProgramToString(reparsed), printed);
}

TEST_F(PrinterTest, ZeroArityAtom) {
  ASSERT_TRUE(ParseProgram("go :- e(X, Y).", &program_).ok());
  EXPECT_EQ(RuleToString(program_, program_.rules()[0]),
            "go :- e(X, Y).");
}

}  // namespace
}  // namespace chainsplit
