#include "rel/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "core/planner.h"

namespace chainsplit {
namespace {

TEST(CsvTest, LoadsSymbolsAndIntegers) {
  Database db;
  PredId flight = db.program().InternPred("flight", 4);
  auto loaded = LoadFactsFromString(&db, flight, R"(# fno,dep,arr,fare
1,montreal,toronto,200
2,toronto,ottawa,150

3,montreal,ottawa,-700
)");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 3);
  const Relation* rel = db.GetRelation(flight);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 3);
  EXPECT_TRUE(rel->Contains({db.pool().MakeInt(1),
                             db.pool().MakeSymbol("montreal"),
                             db.pool().MakeSymbol("toronto"),
                             db.pool().MakeInt(200)}));
  EXPECT_TRUE(rel->Contains({db.pool().MakeInt(3),
                             db.pool().MakeSymbol("montreal"),
                             db.pool().MakeSymbol("ottawa"),
                             db.pool().MakeInt(-700)}));
}

TEST(CsvTest, CountsOnlyNewTuples) {
  Database db;
  PredId e = db.program().InternPred("e", 2);
  ASSERT_TRUE(LoadFactsFromString(&db, e, "a,b\n").ok());
  auto loaded = LoadFactsFromString(&db, e, "a,b\nb,c\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 1);
}

TEST(CsvTest, ArityMismatchReportsLine) {
  Database db;
  PredId e = db.program().InternPred("e", 2);
  auto loaded = LoadFactsFromString(&db, e, "a,b\na,b,c\n");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, FailedLoadIsAllOrNothing) {
  // The whole file is staged and validated before the first insert, so
  // an error on line 3 must not leave lines 1-2 behind — the durable
  // WAL records a load only after it fully succeeds, and replay
  // re-runs this same path (docs/service.md §Durability).
  Database db;
  PredId e = db.program().InternPred("e", 2);
  ASSERT_TRUE(LoadFactsFromString(&db, e, "x,y\n").ok());
  const Relation* rel = db.GetRelation(e);
  ASSERT_NE(rel, nullptr);
  const uint64_t version_before = rel->version();

  auto rejected = LoadFactsFromString(&db, e, "a,b\nc,d\nbad_line\n");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(rel->num_rows(), 1);                // only x,y
  EXPECT_EQ(rel->version(), version_before);    // no partial insert

  // Staging alone never mutates the relation.
  auto staged = ParseCsvTuples(&db, e, "p,q\nr,s\n", CsvOptions());
  ASSERT_TRUE(staged.ok()) << staged.status();
  EXPECT_EQ(staged->size(), 2u);
  EXPECT_EQ(rel->num_rows(), 1);
}

TEST(CsvTest, CustomDelimiterAndCrlf) {
  Database db;
  PredId e = db.program().InternPred("e", 2);
  CsvOptions options;
  options.delimiter = '\t';
  auto loaded = LoadFactsFromString(&db, e, "a\tb\r\nc\td\r\n", options);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 2);
}

TEST(CsvTest, RoundTripThroughDump) {
  Database db;
  PredId e = db.program().InternPred("e", 2);
  ASSERT_TRUE(LoadFactsFromString(&db, e, "a,1\nb,2\n").ok());
  auto dumped = DumpFactsToString(db, e);
  ASSERT_TRUE(dumped.ok());
  Database db2;
  PredId e2 = db2.program().InternPred("e", 2);
  auto reloaded = LoadFactsFromString(&db2, e2, *dumped);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(*reloaded, 2);
}

TEST(CsvTest, DumpOfMissingRelationIsEmpty) {
  Database db;
  PredId e = db.program().InternPred("e", 2);
  auto dumped = DumpFactsToString(db, e);
  ASSERT_TRUE(dumped.ok());
  EXPECT_TRUE(dumped->empty());
}

TEST(CsvTest, FileLoadingAndMissingFile) {
  Database db;
  PredId e = db.program().InternPred("e", 2);
  const char* path = "/tmp/chainsplit_csv_test.csv";
  {
    std::ofstream out(path);
    out << "x,y\ny,z\n";
  }
  auto loaded = LoadFactsFromFile(&db, e, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 2);
  std::remove(path);
  auto missing = LoadFactsFromFile(&db, e, "/tmp/does_not_exist.csv");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, LoadedFactsAnswerQueries) {
  Database db;
  PredId edge = db.program().InternPred("edge", 2);
  ASSERT_TRUE(LoadFactsFromString(&db, edge, "a,b\nb,c\nc,d\n").ok());
  ASSERT_TRUE(ParseProgram(R"(
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).
?- tc(a, Y).
)",
                           &db.program())
                  .ok());
  auto result = EvaluateQuery(&db, db.program().queries()[0]);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 3u);
}

}  // namespace
}  // namespace chainsplit
