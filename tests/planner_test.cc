#include "core/planner.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "term/list_utils.h"
#include "workload/family_gen.h"
#include "workload/flight_gen.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

TEST(PlannerTest, SgUsesMagicSets) {
  Database db;
  auto result = RunProgram(&db, StrCat(R"(
parent(c1, p1). parent(c2, p1).
parent(g1, c1). parent(g2, c2).
sibling(c1, c2). sibling(c2, c1).
)",
                                       SgProgramSource(), "?- sg(g1, Y)."));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kMagicSets);
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0][0], db.pool().MakeSymbol("g2"));
  EXPECT_NE(result->plan.find("linear"), std::string::npos);
}

TEST(PlannerTest, ScsgWithWeakLinkageUsesChainSplitMagic) {
  Database db;
  FamilyOptions fam;
  fam.num_families = 2;
  fam.depth = 4;
  fam.fanout = 2;
  fam.num_countries = 1;  // all same country: maximally weak linkage
  FamilyData data = GenerateFamily(&db, fam);
  ASSERT_TRUE(ParseProgram(ScsgProgramSource(), &db.program()).ok());
  ASSERT_TRUE(ParseProgram(StrCat("?- scsg(", db.pool().name(data.query_person),
                                  ", Y)."),
                           &db.program())
                  .ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  auto result = EvaluateQuery(&db, db.program().queries()[0]);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kChainSplitMagic);
  EXPECT_FALSE(result->answers.empty());
}

TEST(PlannerTest, ScsgForcedTechniquesAgree) {
  auto run = [](std::optional<Technique> force,
                std::vector<Tuple>* answers) -> Technique {
    Database db;
    FamilyOptions fam;
    fam.num_families = 2;
    fam.depth = 4;
    fam.fanout = 2;
    fam.num_countries = 2;
    FamilyData data = GenerateFamily(&db, fam);
    EXPECT_TRUE(ParseProgram(ScsgProgramSource(), &db.program()).ok());
    EXPECT_TRUE(
        ParseProgram(StrCat("?- scsg(", db.pool().name(data.query_person),
                            ", Y)."),
                     &db.program())
            .ok());
    EXPECT_TRUE(db.LoadProgramFacts().ok());
    PlannerOptions options;
    options.force = force;
    auto result = EvaluateQuery(&db, db.program().queries()[0], options);
    EXPECT_TRUE(result.ok()) << result.status();
    if (!result.ok()) return Technique::kTopDown;
    // Normalize answers to strings (pools differ across runs).
    for (const Tuple& row : result->answers) {
      Tuple named;
      for (TermId t : row) {
        named.push_back(static_cast<TermId>(
            std::hash<std::string>{}(db.pool().ToString(t)) & 0x7fffffff));
      }
      answers->push_back(named);
    }
    return result->technique;
  };

  std::vector<Tuple> follow, split;
  EXPECT_EQ(run(Technique::kMagicSets, &follow), Technique::kMagicSets);
  run(Technique::kChainSplitMagic, &split);
  ASSERT_EQ(follow.size(), split.size());
  for (const Tuple& t : follow) {
    EXPECT_NE(std::find(split.begin(), split.end(), t), split.end());
  }
}

TEST(PlannerTest, AppendUsesBufferedChainSplit) {
  Database db;
  auto result = RunProgram(
      &db, StrCat(AppendProgramSource(), "?- append([1, 2], [3], W)."));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kBuffered);
  ASSERT_EQ(result->answers.size(), 1u);
  auto ints = ListInts(db.pool(), result->answers[0][0]);
  ASSERT_TRUE(ints.has_value());
  EXPECT_EQ(*ints, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_NE(result->plan.find("buffered"), std::string::npos);
}

TEST(PlannerTest, IsortPaperTraceViaBufferedSplit) {
  Database db;
  auto result = RunProgram(
      &db, StrCat(IsortProgramSource(), "?- isort([5, 7, 1], Ys)."));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kBuffered);
  ASSERT_EQ(result->answers.size(), 1u);
  auto ints = ListInts(db.pool(), result->answers[0][0]);
  ASSERT_TRUE(ints.has_value());
  EXPECT_EQ(*ints, (std::vector<int64_t>{1, 5, 7}));
  EXPECT_NE(result->plan.find("nested-linear"), std::string::npos);
}

TEST(PlannerTest, QsortFallsBackToTopDown) {
  Database db;
  auto result = RunProgram(
      &db, StrCat(QsortProgramSource(), "?- qsort([4, 9, 5], Ys)."));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kTopDown);
  ASSERT_EQ(result->answers.size(), 1u);
  auto ints = ListInts(db.pool(), result->answers[0][0]);
  EXPECT_EQ(*ints, (std::vector<int64_t>{4, 5, 9}));
}

TEST(PlannerTest, TravelWithFareBoundUsesPartialEvaluation) {
  Database db;
  auto result = RunProgram(&db, StrCat(TravelProgramSource(), R"(
flight(1, montreal, toronto, 200).
flight(2, toronto, ottawa, 150).
flight(3, montreal, ottawa, 700).
?- travel(L, montreal, ottawa, F), F =< 600.
)"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kPartial);
  // Exactly one itinerary under 600: [1,2] at 350. The pushed bound
  // prunes partial sums; the remaining goal F =< 600 post-filters the
  // direct 700 flight.
  ASSERT_EQ(result->answers.size(), 1u);
  auto flights = ListInts(db.pool(), result->answers[0][0]);
  ASSERT_TRUE(flights.has_value());
  EXPECT_EQ(*flights, (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(db.pool().int_value(result->answers[0][1]), 350);
}

TEST(PlannerTest, TravelWithoutConstraintOnAcyclicDataUsesBuffered) {
  Database db;
  auto result = RunProgram(&db, StrCat(TravelProgramSource(), R"(
flight(1, montreal, toronto, 200).
flight(2, toronto, ottawa, 150).
?- travel(L, montreal, ottawa, F).
)"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kBuffered);
  EXPECT_EQ(result->answers.size(), 1u);
}

TEST(PlannerTest, PostGoalsFilterAnswers) {
  Database db;
  auto result = RunProgram(&db, StrCat(R"(
parent(c1, p1). parent(c2, p1).
parent(g1, c1). parent(g2, c2).
sibling(c1, c2). sibling(c2, c1).
nice(g2).
)",
                                       SgProgramSource(),
                                       "?- sg(g1, Y), nice(Y)."));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 1u);
}

TEST(PlannerTest, PostGoalsCanEliminateEverything) {
  Database db;
  auto result = RunProgram(&db, StrCat(R"(
parent(g1, c1). sibling(c1, c1).
)",
                                       SgProgramSource(),
                                       "?- sg(g1, Y), nope(Y)."));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->answers.empty());
}

TEST(PlannerTest, PureEdbQueryGoesTopDown) {
  Database db;
  auto result = RunProgram(&db, "e(a, b). e(a, c).\n?- e(a, X).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kTopDown);
  EXPECT_EQ(result->answers.size(), 2u);
}

TEST(PlannerTest, ForcedTopDown) {
  Database db;
  PlannerOptions options;
  options.force = Technique::kTopDown;
  ASSERT_TRUE(ParseProgram(StrCat(AppendProgramSource(),
                                  "?- append([1], [2], W)."),
                           &db.program())
                  .ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  auto result = EvaluateQuery(&db, db.program().queries()[0], options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->technique, Technique::kTopDown);
  EXPECT_EQ(result->answers.size(), 1u);
}

TEST(PlannerTest, ForcedPartialWithoutConstraintErrors) {
  Database db;
  PlannerOptions options;
  options.force = Technique::kPartial;
  ASSERT_TRUE(ParseProgram(StrCat(AppendProgramSource(),
                                  "?- append([1], [2], W)."),
                           &db.program())
                  .ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  auto result = EvaluateQuery(&db, db.program().queries()[0], options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PlannerTest, EmptyQueryRejected) {
  Database db;
  Query query;
  auto result = EvaluateQuery(&db, query);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlannerTest, ProgramWithoutQueryRejected) {
  Database db;
  auto result = RunProgram(&db, "e(a, b).");
  ASSERT_FALSE(result.ok());
}

TEST(PlannerTest, QueryVariablesInOrder) {
  Database db;
  auto result = RunProgram(&db, StrCat(TravelProgramSource(), R"(
flight(1, montreal, ottawa, 100).
?- travel(L, montreal, ottawa, F).
)"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->vars.size(), 2u);
  EXPECT_EQ(db.pool().name(result->vars[0]), "L");
  EXPECT_EQ(db.pool().name(result->vars[1]), "F");
}

// Property: the planner's buffered isort equals std::sort for random
// lists of growing length.
class PlannerIsortProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlannerIsortProperty, SortsCorrectly) {
  int n = GetParam();
  Database db;
  ASSERT_TRUE(ParseProgram(IsortProgramSource(), &db.program()).ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  std::vector<int64_t> values = RandomInts(n, 0, 100, 77 + n);
  TermId list = MakeIntList(db.pool(), values);
  Query query;
  PredId isort = db.program().preds().Find("isort", 2).value();
  query.goals.push_back(Atom{isort, {list, db.pool().MakeVariable("Ys")}});
  auto result = EvaluateQuery(&db, query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kBuffered);
  ASSERT_EQ(result->answers.size(), 1u);
  auto sorted = ListInts(db.pool(), result->answers[0][0]);
  ASSERT_TRUE(sorted.has_value());
  std::vector<int64_t> expect = values;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(*sorted, expect);
}

INSTANTIATE_TEST_SUITE_P(Lengths, PlannerIsortProperty,
                         ::testing::Values(0, 1, 2, 5, 10, 25, 50, 100));

}  // namespace
}  // namespace chainsplit

namespace chainsplit {
namespace {

TEST(PlannerTest, IdbFactsSurviveMagicEvaluation) {
  // sg has both a stored fact and rules: the fact must appear in the
  // magic-evaluated answers.
  Database db;
  auto result = RunProgram(&db, StrCat(R"(
sg(g1, direct).
parent(c1, p1). parent(c2, p1).
parent(g1, c1). parent(g2, c2).
sibling(c1, c2). sibling(c2, c1).
)",
                                       SgProgramSource(), "?- sg(g1, Y)."));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 2u);  // direct (fact) + g2 (derived)
  bool found_direct = false;
  for (const Tuple& row : result->answers) {
    found_direct =
        found_direct || row[0] == db.pool().MakeSymbol("direct");
  }
  EXPECT_TRUE(found_direct);
}

}  // namespace
}  // namespace chainsplit

namespace chainsplit {
namespace {

TEST(MaterializeAllTest, MaterializesFunctionFreeProgram) {
  Database db;
  ASSERT_TRUE(ParseProgram(R"(
e(a, b). e(b, c). e(c, d).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
reach2(X) :- tc(a, X).
)",
                           &db.program())
                  .ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  ASSERT_TRUE(MaterializeAll(&db).ok());
  const Relation* tc =
      db.GetRelation(db.program().preds().Find("tc", 2).value());
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(tc->size(), 6);
  const Relation* reach2 =
      db.GetRelation(db.program().preds().Find("reach2", 1).value());
  ASSERT_NE(reach2, nullptr);
  EXPECT_EQ(reach2->size(), 3);
}

TEST(MaterializeAllTest, RejectsFunctionalPrograms) {
  Database db;
  ASSERT_TRUE(
      ParseProgram(IsortProgramSource(), &db.program()).ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  Status status = MaterializeAll(&db);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFinitelyEvaluable);
}

TEST(PlannerTest, StatsOrderingDoesNotChangeAnswers) {
  auto answers = [](bool use_stats) {
    Database db;
    FamilyOptions fam;
    fam.num_families = 2;
    fam.depth = 4;
    fam.fanout = 2;
    fam.num_countries = 2;
    FamilyData data = GenerateFamily(&db, fam);
    EXPECT_TRUE(ParseProgram(ScsgProgramSource(), &db.program()).ok());
    EXPECT_TRUE(db.LoadProgramFacts().ok());
    Query query;
    PredId scsg = db.program().preds().Find("scsg", 2).value();
    query.goals.push_back(
        Atom{scsg, {data.query_person, db.pool().MakeVariable("Y")}});
    PlannerOptions options;
    options.use_stats_ordering = use_stats;
    auto result = EvaluateQuery(&db, query, options);
    EXPECT_TRUE(result.ok()) << result.status();
    std::vector<std::string> names;
    for (const Tuple& row : result->answers) {
      names.push_back(db.pool().ToString(row[0]));
    }
    std::sort(names.begin(), names.end());
    return names;
  };
  EXPECT_EQ(answers(true), answers(false));
}

}  // namespace
}  // namespace chainsplit
