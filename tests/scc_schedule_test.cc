#include "core/scc_schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ast/parser.h"
#include "common/thread_pool.h"
#include "core/planner.h"
#include "core/rectify.h"
#include "rel/catalog.h"

namespace chainsplit {
namespace {

void Load(Database* db, const std::string& text) {
  ASSERT_TRUE(ParseProgram(text, &db->program()).ok()) << text;
  ASSERT_TRUE(db->LoadProgramFacts().ok());
}

/// Generates a random multi-SCC program: several disjoint linear
/// recursions (tc0..tcN over their own edge relations), one
/// same-generation component, one split-chain same-generation
/// component, and a top rule joining a chain's closure with the sg
/// component through a bridge relation. The condensation has
/// independent middle strata (each recursion is its own SCC) feeding
/// one final stratum — the shape the parallel scheduler exists for.
/// Sizes are drawn from `rng`, so repeated calls vary the stratum
/// count, chain lengths and tree fan-out while staying deterministic
/// per seed.
std::string MultiSccProgram(std::mt19937* rng) {
  std::ostringstream out;
  const int chains = 2 + static_cast<int>((*rng)() % 3);  // 2..4
  int last_len = 0;
  for (int c = 0; c < chains; ++c) {
    const int len = 4 + static_cast<int>((*rng)() % 12);  // 4..15
    if (c == 0) last_len = len;
    for (int j = 0; j < len; ++j) {
      out << "e" << c << "(m" << c << "x" << j << ", m" << c << "x" << j + 1
          << ").\n";
    }
    out << "tc" << c << "(X, Y) :- e" << c << "(X, Y).\n";
    out << "tc" << c << "(X, Y) :- e" << c << "(X, Z), tc" << c
        << "(Z, Y).\n";
  }

  // Same-generation over a random tree: children cK hang off parent
  // p0, grandchildren gK off random children. sibling seeds the
  // recursion at the child generation.
  const int kids = 2 + static_cast<int>((*rng)() % 3);  // 2..4
  for (int k = 0; k < kids; ++k) out << "par(c" << k << ", p0).\n";
  const int grand = 2 + static_cast<int>((*rng)() % 4);  // 2..5
  for (int g = 0; g < grand; ++g) {
    out << "par(g" << g << ", c" << (*rng)() % kids << ").\n";
  }
  out << "sib(c0, c1). sib(c1, c0).\n";
  out << "sg(X, Y) :- sib(X, Y).\n";
  out << "sg(X, Y) :- par(X, X1), sg(X1, Y1), par(Y, Y1).\n";

  // Split-chain same generation: up chain x0..xk, flat(xk, yk), down
  // facts mirroring the up chain, so scsg(xi, yi) holds for all i.
  const int k = 3 + static_cast<int>((*rng)() % 8);  // 3..10
  for (int i = 0; i < k; ++i) {
    out << "up(x" << i << ", x" << i + 1 << ").\n";
    out << "down(y" << i + 1 << ", y" << i << ").\n";
  }
  out << "flat(x" << k << ", y" << k << ").\n";
  out << "scsg(X, Y) :- flat(X, Y).\n";
  out << "scsg(X, Y) :- up(X, Z), scsg(Z, W), down(W, Y).\n";

  // Top stratum: depends on tc0, sg and scsg — it can only run after
  // all three complete, so it exercises the multi-dependency join of
  // published strata.
  out << "link(m0x" << last_len << ", g0).\n";
  out << "top(X, Y) :- tc0(X, Z), link(Z, W), sg(W, Y).\n";
  out << "top(X, Y) :- scsg(X, Y).\n";
  return out.str();
}

/// Byte-identity over every stored predicate: same predicates, same
/// row counts, same tuples in the same row order. Both databases must
/// have loaded the identical program text (so PredIds coincide).
void ExpectIdenticalStoredRelations(const Database& a, const Database& b,
                                    const std::string& label) {
  std::vector<PredId> pa = a.StoredPredicates();
  std::vector<PredId> pb = b.StoredPredicates();
  std::sort(pa.begin(), pa.end());
  std::sort(pb.begin(), pb.end());
  ASSERT_EQ(pa, pb) << label;
  for (PredId pred : pa) {
    const Relation* ra = a.GetRelation(pred);
    const Relation* rb = b.GetRelation(pred);
    ASSERT_NE(ra, nullptr) << label;
    ASSERT_NE(rb, nullptr) << label;
    ASSERT_EQ(ra->num_rows(), rb->num_rows())
        << label << " pred " << pred;
    for (int64_t i = 0; i < ra->num_rows(); ++i) {
      ASSERT_EQ(ra->row(i), rb->row(i))
          << label << " pred " << pred << " row " << i;
    }
  }
}

const Relation* Rel(Database* db, std::string_view name, int arity) {
  auto pred = db->program().preds().Find(name, arity);
  return pred.has_value() ? db->GetRelation(*pred) : nullptr;
}

/// The tentpole acceptance bar: the parallel schedule is byte-identical
/// to the serial stratified schedule at 1, 2, 4 and 8 workers, over
/// randomized multi-SCC programs.
TEST(SccScheduleTest, ByteIdenticalAcrossWorkerCounts) {
  std::mt19937 rng(0xC0FFEE);
  for (int round = 0; round < 4; ++round) {
    const std::string text = MultiSccProgram(&rng);
    Database serial;
    Load(&serial, text);
    ASSERT_TRUE(MaterializeAllScc(&serial, {}, /*parallel_scc=*/1).ok());
    const Relation* top = Rel(&serial, "top", 2);
    ASSERT_NE(top, nullptr);
    ASSERT_GT(top->num_rows(), 0) << "generator produced an empty top";
    for (int workers : {2, 4, 8}) {
      ThreadPool pool(workers);
      Database parallel;
      Load(&parallel, text);
      ASSERT_TRUE(
          MaterializeAllScc(&parallel, {}, workers, &pool).ok());
      ExpectIdenticalStoredRelations(
          serial, parallel,
          "round " + std::to_string(round) + " workers " +
              std::to_string(workers));
    }
  }
}

/// The stratified schedule computes the same *answers* as the
/// monolithic fixpoint (row order may differ — that is why
/// parallel_scc is opt-in).
TEST(SccScheduleTest, StratifiedAgreesWithMonolithicAsSets) {
  std::mt19937 rng(42);
  const std::string text = MultiSccProgram(&rng);
  Database mono;
  Load(&mono, text);
  ASSERT_TRUE(MaterializeAll(&mono).ok());
  Database strat;
  Load(&strat, text);
  ASSERT_TRUE(MaterializeAllScc(&strat, {}, 1).ok());
  std::vector<PredId> preds = mono.StoredPredicates();
  for (PredId pred : preds) {
    const Relation* rm = mono.GetRelation(pred);
    const Relation* rs = strat.GetRelation(pred);
    ASSERT_NE(rs, nullptr);
    ASSERT_EQ(rm->num_rows(), rs->num_rows()) << "pred " << pred;
    for (int64_t i = 0; i < rm->num_rows(); ++i) {
      ASSERT_TRUE(rs->Contains(rm->row(i)))
          << "pred " << pred << " row " << i;
    }
  }
}

/// Schedule telemetry: a multi-SCC program actually fans out — every
/// stratum is dispatched in parallel mode, and the condensation has
/// more strata than one.
TEST(SccScheduleTest, ScheduleStatsReportFanOut) {
  std::mt19937 rng(7);
  Database db;
  Load(&db, MultiSccProgram(&rng));
  std::vector<Rule> rectified = RectifyRules(&db.program());
  ThreadPool pool(4);
  SccScheduleOptions sched;
  sched.max_parallel = 4;
  sched.pool = &pool;
  SemiNaiveStats stats;
  SccScheduleStats schedule_stats;
  ASSERT_TRUE(EvaluateSccSchedule(&db, rectified, sched, &stats,
                                  &schedule_stats)
                  .ok());
  EXPECT_GE(schedule_stats.num_sccs, 4);  // >= 2 chains + sg + scsg + top
  EXPECT_EQ(schedule_stats.parallel_sccs, schedule_stats.num_sccs);
  EXPECT_GE(schedule_stats.max_ready_width, 2);
  EXPECT_GT(stats.iterations, 0);
  EXPECT_GT(stats.total_derived, 0);
}

/// A per-stratum resource cap tripping mid-schedule must surface the
/// stratum's error with well-formed partial stats, and in parallel
/// mode leave the target database untouched (publication only happens
/// on full success).
TEST(SccScheduleTest, MidScheduleFailureLeavesDbUntouchedInParallel) {
  std::ostringstream text;
  for (int j = 0; j < 40; ++j) {
    text << "e0(a" << j << ", a" << j + 1 << ").\n";
  }
  text << "tc0(X, Y) :- e0(X, Y).\n";
  text << "tc0(X, Y) :- e0(X, Z), tc0(Z, Y).\n";
  text << "p(b). q(X) :- p(X).\n";  // a second, trivially cheap SCC
  Database db;
  Load(&db, text.str());
  std::vector<Rule> rectified = RectifyRules(&db.program());

  ThreadPool pool(2);
  SccScheduleOptions sched;
  sched.max_parallel = 2;
  sched.pool = &pool;
  sched.seminaive.max_iterations = 3;  // the 40-hop chain needs ~40
  SemiNaiveStats stats;
  Status status = EvaluateSccSchedule(&db, rectified, sched, &stats);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(stats.iterations, 0);  // partial work is reported
  // Nothing was published: the IDB relations never materialize.
  EXPECT_EQ(Rel(&db, "tc0", 2), nullptr);
}

/// A schedule token cancelled before dispatch cuts every stratum
/// through its child token and reports kCancelled.
TEST(SccScheduleTest, PreCancelledTokenCutsWholeSchedule) {
  std::mt19937 rng(3);
  Database db;
  Load(&db, MultiSccProgram(&rng));
  std::vector<Rule> rectified = RectifyRules(&db.program());
  CancelToken cancel;
  cancel.Cancel();
  ThreadPool pool(4);
  SccScheduleOptions sched;
  sched.max_parallel = 4;
  sched.pool = &pool;
  sched.seminaive.cancel = &cancel;
  SemiNaiveStats stats;
  Status status = EvaluateSccSchedule(&db, rectified, sched, &stats);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(Rel(&db, "top", 2), nullptr);
}

/// Serial stratified mode evaluates in place: a failure there may
/// leave completed strata behind (documented), but the status and
/// partial stats must still be well-formed.
TEST(SccScheduleTest, SerialFailureReportsPartialStats) {
  std::ostringstream text;
  for (int j = 0; j < 40; ++j) {
    text << "e0(a" << j << ", a" << j + 1 << ").\n";
  }
  text << "tc0(X, Y) :- e0(X, Y).\n";
  text << "tc0(X, Y) :- e0(X, Z), tc0(Z, Y).\n";
  Database db;
  Load(&db, text.str());
  std::vector<Rule> rectified = RectifyRules(&db.program());
  SccScheduleOptions sched;  // max_parallel = 1: serial
  sched.seminaive.max_iterations = 3;
  SemiNaiveStats stats;
  Status status = EvaluateSccSchedule(&db, rectified, sched, &stats);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(stats.iterations, 0);
}

/// tsan stress: concurrent schedules over private databases sharing
/// one pool. Exercises the coordinator/worker handshake, the
/// help-while-waiting path in WorkGroup::Wait (a stratum's inner
/// parallel join submits to the same saturated pool), and import
/// publication, all under racing callers.
TEST(SccScheduleTest, ConcurrentSchedulesOnSharedPoolStress) {
  ThreadPool pool(4);
  std::mt19937 seed_rng(99);
  std::vector<std::string> texts;
  for (int i = 0; i < 3; ++i) {
    std::mt19937 rng(seed_rng());
    texts.push_back(MultiSccProgram(&rng));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&texts, &pool, &failures, t] {
      for (int round = 0; round < 3; ++round) {
        const std::string& text = texts[(t + round) % texts.size()];
        Database serial;
        Database parallel;
        {
          Database* dbs[] = {&serial, &parallel};
          for (Database* db : dbs) {
            if (!ParseProgram(text, &db->program()).ok() ||
                !db->LoadProgramFacts().ok()) {
              failures.fetch_add(1);
              return;
            }
          }
        }
        if (!MaterializeAllScc(&serial, {}, 1).ok() ||
            !MaterializeAllScc(&parallel, {}, 4, &pool).ok()) {
          failures.fetch_add(1);
          return;
        }
        for (PredId pred : serial.StoredPredicates()) {
          const Relation* rs = serial.GetRelation(pred);
          const Relation* rp = parallel.GetRelation(pred);
          if (rp == nullptr || rs->num_rows() != rp->num_rows()) {
            failures.fetch_add(1);
            return;
          }
          for (int64_t i = 0; i < rs->num_rows(); ++i) {
            if (!(rs->row(i) == rp->row(i))) {
              failures.fetch_add(1);
              return;
            }
          }
        }
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  EXPECT_EQ(failures.load(), 0);
}

/// StratumOverlay unit behavior: imports resolve reads, locals COW
/// from imports on first write, and PublishTo appends the local rows
/// (not the COW'd import prefix twice) in sorted-predicate order.
TEST(SccScheduleTest, StratumOverlayImportsAndPublication) {
  Database db;
  Load(&db, "e(a, b). e(b, c).\n");
  auto e = db.program().preds().Find("e", 2);
  ASSERT_TRUE(e.has_value());
  PredId derived = db.program().InternPred("derived", 2);

  StratumOverlay overlay(&db);
  overlay.AddImport(*e, db.GetRelation(*e));
  // Reads resolve through the import without copying.
  ASSERT_EQ(overlay.GetRelation(*e), db.GetRelation(*e));
  // First write to an imported predicate COWs it into the overlay.
  TermId x = db.pool().MakeSymbol("x");
  Relation* local_e = overlay.GetOrCreateRelation(*e);
  ASSERT_NE(local_e, db.GetRelation(*e));
  EXPECT_EQ(local_e->num_rows(), 2);  // seeded with the import rows
  EXPECT_TRUE(local_e->Insert({x, x}));
  EXPECT_EQ(db.GetRelation(*e)->num_rows(), 2);  // parent untouched

  Relation* d = overlay.GetOrCreateRelation(derived);
  EXPECT_TRUE(d->Insert({x, x}));

  // Publication targets the database the schedule ran over (PredIds
  // are only meaningful within one program): it creates missing
  // relations, unions the overlay's locals, and skips rows the target
  // already holds. Import-only predicates are not republished.
  overlay.PublishTo(&db);
  const Relation* pub = db.GetRelation(derived);
  ASSERT_NE(pub, nullptr);
  EXPECT_EQ(pub->num_rows(), 1);
  const Relation* pub_e = db.GetRelation(*e);
  ASSERT_NE(pub_e, nullptr);
  EXPECT_EQ(pub_e->num_rows(), 3);  // the 2 base rows + the COW'd insert
}

}  // namespace
}  // namespace chainsplit
