#include "rel/ops.h"

#include <gtest/gtest.h>

namespace chainsplit {
namespace {

Relation MakeEdges(std::vector<std::pair<TermId, TermId>> pairs) {
  Relation rel(2);
  for (auto [a, b] : pairs) rel.Insert({a, b});
  return rel;
}

TEST(OpsTest, HashJoinOnSingleKey) {
  Relation left = MakeEdges({{1, 2}, {2, 3}, {3, 4}});
  Relation right = MakeEdges({{2, 20}, {3, 30}, {9, 90}});
  Relation out(2);
  // left.1 == right.0; output (left.0, right.1).
  HashJoin(left, right, {{1, 0}}, {0, 3}, &out);
  EXPECT_EQ(out.size(), 2);
  EXPECT_TRUE(out.Contains({1, 20}));
  EXPECT_TRUE(out.Contains({2, 30}));
}

TEST(OpsTest, HashJoinMultiKey) {
  Relation left(2);
  left.Insert({1, 2});
  left.Insert({1, 3});
  Relation right(2);
  right.Insert({1, 2});
  right.Insert({2, 2});
  Relation out(2);
  HashJoin(left, right, {{0, 0}, {1, 1}}, {0, 1}, &out);
  EXPECT_EQ(out.size(), 1);
  EXPECT_TRUE(out.Contains({1, 2}));
}

TEST(OpsTest, EmptyKeysIsCrossProduct) {
  Relation left = MakeEdges({{1, 2}, {3, 4}});
  Relation right = MakeEdges({{5, 6}, {7, 8}, {9, 10}});
  Relation out(4);
  HashJoin(left, right, {}, {0, 1, 2, 3}, &out);
  EXPECT_EQ(out.size(), 6);  // 2 x 3 — the merged-chain blowup of §1.1
}

TEST(OpsTest, SelectFilters) {
  Relation rel = MakeEdges({{1, 2}, {2, 1}, {3, 3}});
  Relation out(2);
  Select(rel, [](const Tuple& t) { return t[0] < t[1]; }, &out);
  EXPECT_EQ(out.size(), 1);
  EXPECT_TRUE(out.Contains({1, 2}));
}

TEST(OpsTest, ProjectDeduplicates) {
  Relation rel = MakeEdges({{1, 2}, {1, 3}, {2, 4}});
  Relation out(1);
  Project(rel, {0}, &out);
  EXPECT_EQ(out.size(), 2);
}

TEST(OpsTest, ProjectReordersColumns) {
  Relation rel = MakeEdges({{1, 2}});
  Relation out(2);
  Project(rel, {1, 0}, &out);
  EXPECT_TRUE(out.Contains({2, 1}));
}

TEST(OpsTest, DifferenceIsDeltaStep) {
  Relation a = MakeEdges({{1, 2}, {3, 4}, {5, 6}});
  Relation b = MakeEdges({{3, 4}});
  Relation out(2);
  Difference(a, b, &out);
  EXPECT_EQ(out.size(), 2);
  EXPECT_FALSE(out.Contains({3, 4}));
}

TEST(OpsTest, SameTuplesIgnoresOrder) {
  Relation a = MakeEdges({{1, 2}, {3, 4}});
  Relation b = MakeEdges({{3, 4}, {1, 2}});
  EXPECT_TRUE(SameTuples(a, b));
  b.Insert({5, 6});
  EXPECT_FALSE(SameTuples(a, b));
}

TEST(OpsTest, JoinAlgebraicIdentity) {
  // |R join S| on a key equals sum over key values of |R_k| * |S_k|.
  Relation r(2);
  Relation s(2);
  for (TermId i = 0; i < 30; ++i) {
    r.Insert({i % 3, i});
    s.Insert({i % 3, 100 + i});
  }
  Relation out(2);
  HashJoin(r, s, {{0, 0}}, {1, 3}, &out);
  EXPECT_EQ(out.size(), 3 * 10 * 10);
}

}  // namespace
}  // namespace chainsplit
