#include "rel/ops.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/thread_pool.h"

namespace chainsplit {
namespace {

Relation MakeEdges(std::vector<std::pair<TermId, TermId>> pairs) {
  Relation rel(2);
  for (auto [a, b] : pairs) rel.Insert({a, b});
  return rel;
}

TEST(OpsTest, HashJoinOnSingleKey) {
  Relation left = MakeEdges({{1, 2}, {2, 3}, {3, 4}});
  Relation right = MakeEdges({{2, 20}, {3, 30}, {9, 90}});
  Relation out(2);
  // left.1 == right.0; output (left.0, right.1).
  HashJoin(left, right, {{1, 0}}, {0, 3}, &out);
  EXPECT_EQ(out.size(), 2);
  EXPECT_TRUE(out.Contains({1, 20}));
  EXPECT_TRUE(out.Contains({2, 30}));
}

TEST(OpsTest, HashJoinMultiKey) {
  Relation left(2);
  left.Insert({1, 2});
  left.Insert({1, 3});
  Relation right(2);
  right.Insert({1, 2});
  right.Insert({2, 2});
  Relation out(2);
  HashJoin(left, right, {{0, 0}, {1, 1}}, {0, 1}, &out);
  EXPECT_EQ(out.size(), 1);
  EXPECT_TRUE(out.Contains({1, 2}));
}

TEST(OpsTest, EmptyKeysIsCrossProduct) {
  Relation left = MakeEdges({{1, 2}, {3, 4}});
  Relation right = MakeEdges({{5, 6}, {7, 8}, {9, 10}});
  Relation out(4);
  HashJoin(left, right, {}, {0, 1, 2, 3}, &out);
  EXPECT_EQ(out.size(), 6);  // 2 x 3 — the merged-chain blowup of §1.1
}

TEST(OpsTest, SelectFilters) {
  Relation rel = MakeEdges({{1, 2}, {2, 1}, {3, 3}});
  Relation out(2);
  Select(rel, [](const Tuple& t) { return t[0] < t[1]; }, &out);
  EXPECT_EQ(out.size(), 1);
  EXPECT_TRUE(out.Contains({1, 2}));
}

TEST(OpsTest, ProjectDeduplicates) {
  Relation rel = MakeEdges({{1, 2}, {1, 3}, {2, 4}});
  Relation out(1);
  Project(rel, {0}, &out);
  EXPECT_EQ(out.size(), 2);
}

TEST(OpsTest, ProjectReordersColumns) {
  Relation rel = MakeEdges({{1, 2}});
  Relation out(2);
  Project(rel, {1, 0}, &out);
  EXPECT_TRUE(out.Contains({2, 1}));
}

TEST(OpsTest, DifferenceIsDeltaStep) {
  Relation a = MakeEdges({{1, 2}, {3, 4}, {5, 6}});
  Relation b = MakeEdges({{3, 4}});
  Relation out(2);
  Difference(a, b, &out);
  EXPECT_EQ(out.size(), 2);
  EXPECT_FALSE(out.Contains({3, 4}));
}

TEST(OpsTest, SameTuplesIgnoresOrder) {
  Relation a = MakeEdges({{1, 2}, {3, 4}});
  Relation b = MakeEdges({{3, 4}, {1, 2}});
  EXPECT_TRUE(SameTuples(a, b));
  b.Insert({5, 6});
  EXPECT_FALSE(SameTuples(a, b));
}

/// Randomized differential test: the contiguous and partitioned
/// parallel paths must reproduce the serial oracle byte-for-byte —
/// same tuples, same row order — across workload shapes (sizes, key
/// widths, match densities chosen by a fixed-seed generator).
TEST(OpsTest, ParallelModesMatchSerialOracle) {
  uint64_t rng = 0x2545f4914f6cdd1dULL;
  auto next = [&rng](uint64_t bound) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return (rng >> 33) % bound;
  };

  ThreadPool pool(4);
  const int64_t old_rows = SetParallelJoinMinRows(1);
  for (int trial = 0; trial < 5; ++trial) {
    const int64_t left_n = 512 + static_cast<int64_t>(next(2500));
    const int64_t right_n = 512 + static_cast<int64_t>(next(4000));
    const TermId key_space = 3 + static_cast<TermId>(next(400));
    const bool two_keys = trial % 2 == 1;

    Relation left(2);
    Relation right(2);
    for (int64_t i = 0; i < left_n; ++i) {
      left.Insert({static_cast<TermId>(next(key_space)),
                   static_cast<TermId>(next(key_space))});
    }
    for (int64_t i = 0; i < right_n; ++i) {
      right.Insert({static_cast<TermId>(next(key_space)),
                    static_cast<TermId>(next(key_space))});
    }
    const JoinSpec spec(two_keys
                            ? std::vector<JoinKey>{{1, 0}, {0, 1}}
                            : std::vector<JoinKey>{{1, 0}});
    const std::vector<int> out_cols = {0, 1, 3};

    SetParallelJoinMode(ParallelJoinMode::kSerial);
    Relation oracle(3);
    HashJoin(left, right, spec, out_cols, &oracle, &pool);

    for (ParallelJoinMode mode : {ParallelJoinMode::kContiguous,
                                  ParallelJoinMode::kPartitioned}) {
      SetParallelJoinMode(mode);
      Relation got(3);
      HashJoin(left, right, spec, out_cols, &got, &pool);
      ASSERT_EQ(got.size(), oracle.size())
          << "trial " << trial << " mode " << static_cast<int>(mode);
      for (int64_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got.row(i), oracle.row(i))
            << "trial " << trial << " mode " << static_cast<int>(mode)
            << " row " << i;
      }
    }
  }
  SetParallelJoinMode(ParallelJoinMode::kAuto);
  SetParallelJoinMinRows(old_rows);
}

/// A build-side insert invalidates the cached partitioned view; the
/// next partitioned join must rebuild it and see the new tuple.
TEST(OpsTest, PartitionedJoinSeesBuildSideGrowth) {
  ThreadPool pool(4);
  const int64_t old_rows = SetParallelJoinMinRows(1);
  SetParallelJoinMode(ParallelJoinMode::kPartitioned);

  Relation left(2);
  Relation right(2);
  for (TermId i = 0; i < 600; ++i) {
    left.Insert({i, i % 37});
    right.Insert({i % 37, i});
  }
  const JoinSpec spec({{1, 0}});
  Relation before(2);
  HashJoin(left, right, spec, {0, 3}, &before, &pool);

  right.Insert({7, 9999});  // stales the cached view
  Relation after(2);
  HashJoin(left, right, spec, {0, 3}, &after, &pool);
  EXPECT_GT(after.size(), before.size());
  bool found = false;
  for (int64_t i = 0; i < after.size() && !found; ++i) {
    found = after.row(i)[1] == 9999;
  }
  EXPECT_TRUE(found) << "rebuilt view must index the new build row";

  SetParallelJoinMode(ParallelJoinMode::kAuto);
  SetParallelJoinMinRows(old_rows);
}

TEST(OpsTest, JoinAlgebraicIdentity) {
  // |R join S| on a key equals sum over key values of |R_k| * |S_k|.
  Relation r(2);
  Relation s(2);
  for (TermId i = 0; i < 30; ++i) {
    r.Insert({i % 3, i});
    s.Insert({i % 3, 100 + i});
  }
  Relation out(2);
  HashJoin(r, s, {{0, 0}}, {1, 3}, &out);
  EXPECT_EQ(out.size(), 3 * 10 * 10);
}

}  // namespace
}  // namespace chainsplit
