#include "term/unify.h"

#include <gtest/gtest.h>

#include "term/list_utils.h"

namespace chainsplit {
namespace {

class UnifyTest : public ::testing::Test {
 protected:
  TermPool pool_;
};

TEST_F(UnifyTest, IdenticalGroundTermsUnify) {
  Substitution subst;
  EXPECT_TRUE(Unify(pool_, pool_.MakeInt(1), pool_.MakeInt(1), &subst));
  EXPECT_TRUE(subst.empty());
}

TEST_F(UnifyTest, DistinctGroundTermsFail) {
  Substitution subst;
  EXPECT_FALSE(Unify(pool_, pool_.MakeInt(1), pool_.MakeInt(2), &subst));
  EXPECT_FALSE(
      Unify(pool_, pool_.MakeSymbol("a"), pool_.MakeInt(1), &subst));
}

TEST_F(UnifyTest, VariableBindsToTerm) {
  Substitution subst;
  TermId x = pool_.MakeVariable("X");
  TermId a = pool_.MakeSymbol("a");
  EXPECT_TRUE(Unify(pool_, x, a, &subst));
  EXPECT_EQ(subst.Resolve(x, pool_), a);
}

TEST_F(UnifyTest, VariableChainResolves) {
  Substitution subst;
  TermId x = pool_.MakeVariable("X");
  TermId y = pool_.MakeVariable("Y");
  TermId a = pool_.MakeSymbol("a");
  EXPECT_TRUE(Unify(pool_, x, y, &subst));
  EXPECT_TRUE(Unify(pool_, y, a, &subst));
  EXPECT_EQ(subst.Resolve(x, pool_), a);
  EXPECT_EQ(subst.Walk(x, pool_), a);
}

TEST_F(UnifyTest, CompoundUnificationBindsArguments) {
  Substitution subst;
  TermId x = pool_.MakeVariable("X");
  TermId y = pool_.MakeVariable("Y");
  TermId args1[] = {x, pool_.MakeInt(2)};
  TermId args2[] = {pool_.MakeInt(1), y};
  TermId f1 = pool_.MakeCompound("f", args1);
  TermId f2 = pool_.MakeCompound("f", args2);
  EXPECT_TRUE(Unify(pool_, f1, f2, &subst));
  EXPECT_EQ(subst.Resolve(x, pool_), pool_.MakeInt(1));
  EXPECT_EQ(subst.Resolve(y, pool_), pool_.MakeInt(2));
  // Both sides resolve to the same interned term: a most general
  // unifier.
  EXPECT_EQ(subst.Resolve(f1, pool_), subst.Resolve(f2, pool_));
}

TEST_F(UnifyTest, FunctorMismatchFails) {
  Substitution subst;
  TermId args[] = {pool_.MakeInt(1)};
  EXPECT_FALSE(Unify(pool_, pool_.MakeCompound("f", args),
                     pool_.MakeCompound("g", args), &subst));
}

TEST_F(UnifyTest, SharedVariableConsistency) {
  // f(X, X) with f(1, 2) must fail; with f(1, 1) must succeed.
  TermId x = pool_.MakeVariable("X");
  TermId fxx_args[] = {x, x};
  TermId fxx = pool_.MakeCompound("f", fxx_args);
  {
    Substitution subst;
    TermId args[] = {pool_.MakeInt(1), pool_.MakeInt(2)};
    EXPECT_FALSE(Unify(pool_, fxx, pool_.MakeCompound("f", args), &subst));
  }
  {
    Substitution subst;
    TermId args[] = {pool_.MakeInt(1), pool_.MakeInt(1)};
    EXPECT_TRUE(Unify(pool_, fxx, pool_.MakeCompound("f", args), &subst));
    EXPECT_EQ(subst.Resolve(x, pool_), pool_.MakeInt(1));
  }
}

TEST_F(UnifyTest, OccursCheckRejectsCyclicBinding) {
  Substitution subst;
  TermId x = pool_.MakeVariable("X");
  TermId args[] = {x};
  TermId fx = pool_.MakeCompound("f", args);
  EXPECT_FALSE(Unify(pool_, x, fx, &subst, /*occurs_check=*/true));
  Substitution lax;
  EXPECT_TRUE(Unify(pool_, x, fx, &lax, /*occurs_check=*/false));
}

TEST_F(UnifyTest, RollbackRemovesBindings) {
  Substitution subst;
  TermId x = pool_.MakeVariable("X");
  TermId y = pool_.MakeVariable("Y");
  EXPECT_TRUE(Unify(pool_, x, pool_.MakeInt(1), &subst));
  size_t mark = subst.LogSize();
  EXPECT_TRUE(Unify(pool_, y, pool_.MakeInt(2), &subst));
  EXPECT_EQ(subst.size(), 2u);
  subst.RollbackTo(mark);
  EXPECT_EQ(subst.size(), 1u);
  EXPECT_EQ(subst.Lookup(y), kNullTerm);
  EXPECT_EQ(subst.Resolve(x, pool_), pool_.MakeInt(1));
}

TEST_F(UnifyTest, RenameApartKeepsSharing) {
  TermId x = pool_.MakeVariable("X");
  TermId args[] = {x, x, pool_.MakeVariable("Y")};
  TermId f = pool_.MakeCompound("f", args);
  std::unordered_map<TermId, TermId> renaming;
  TermId renamed = RenameApart(pool_, f, &renaming);
  ASSERT_TRUE(pool_.IsCompound(renamed));
  auto rargs = pool_.args(renamed);
  EXPECT_EQ(rargs[0], rargs[1]);       // sharing preserved
  EXPECT_NE(rargs[0], x);              // fresh
  EXPECT_NE(rargs[2], pool_.MakeVariable("Y"));
  EXPECT_NE(rargs[0], rargs[2]);
}

TEST_F(UnifyTest, RenameApartLeavesGroundTermsAlone) {
  std::vector<int64_t> values = {1, 2, 3};
  TermId list = MakeIntList(pool_, values);
  std::unordered_map<TermId, TermId> renaming;
  EXPECT_EQ(RenameApart(pool_, list, &renaming), list);
}

// Property sweep: unifying a random list pattern [V0,...,Vk | T] with a
// ground list binds each Vi to the i-th element and T to the rest.
class UnifyListProperty : public ::testing::TestWithParam<int> {};

TEST_P(UnifyListProperty, PatternAgainstGroundList) {
  TermPool pool;
  int n = GetParam();
  std::vector<int64_t> values;
  for (int i = 0; i < n + 3; ++i) values.push_back(i * 10);
  TermId ground = MakeIntList(pool, values);

  TermId tail = pool.MakeVariable("T");
  std::vector<TermId> vars;
  TermId pattern = tail;
  for (int i = n - 1; i >= 0; --i) {
    std::string name = "V";
    name += std::to_string(i);
    TermId v = pool.MakeVariable(name);
    pattern = pool.MakeCons(v, pattern);
    vars.insert(vars.begin(), v);
  }
  Substitution subst;
  ASSERT_TRUE(Unify(pool, pattern, ground, &subst));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(subst.Resolve(vars[i], pool), pool.MakeInt(values[i]));
  }
  auto rest = ListInts(pool, subst.Resolve(tail, pool));
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(rest->size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Lengths, UnifyListProperty,
                         ::testing::Values(0, 1, 2, 5, 16, 64));

}  // namespace
}  // namespace chainsplit
