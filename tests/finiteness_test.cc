#include "core/finiteness.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/chain_compile.h"
#include "core/buffered.h"
#include "core/rectify.h"
#include "core/split_decision.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

class FinitenessTest : public ::testing::Test {
 protected:
  CompiledChain Compile(std::string_view text, std::string_view pred,
                        int arity) {
    EXPECT_TRUE(ParseProgram(text, &db_.program()).ok());
    EXPECT_TRUE(db_.LoadProgramFacts().ok());
    rectified_ = RectifyRules(&db_.program());
    auto chain = CompileChain(db_.program(), rectified_,
                              db_.program().preds().Find(pred, arity).value());
    EXPECT_TRUE(chain.ok()) << chain.status();
    return *chain;
  }

  std::vector<TermId> BoundHeadVars(const CompiledChain& chain,
                                    const std::vector<int>& positions) {
    std::vector<TermId> vars;
    for (int i : positions) {
      db_.pool().CollectVariables(chain.head().args[i], &vars);
    }
    return vars;
  }

  Database db_;
  std::vector<Rule> rectified_;
};

TEST_F(FinitenessTest, AppendBffForcesFinitenessSplit) {
  // §2.2: with U (and V) bound, cons(X1,U1,U) is evaluable (ffb mode)
  // but cons(X1,W1,W) is not — it must be delayed.
  CompiledChain chain = Compile(AppendProgramSource(), "append", 3);
  ChainPath whole = WholeBodyPath(db_.pool(), chain);
  auto split = SplitPathByFiniteness(db_.program(), chain, whole,
                                     BoundHeadVars(chain, {0, 1}));
  ASSERT_TRUE(split.ok()) << split.status();
  EXPECT_TRUE(split->IsSplit());
  EXPECT_TRUE(split->finiteness_split);
  EXPECT_FALSE(split->efficiency_split);
  EXPECT_EQ(split->evaluable.size(), 1u);
  EXPECT_EQ(split->delayed.size(), 1u);
  // The list head element (X1 in the paper's rule (1.16), X in our
  // source) is shared between the portions: it must be buffered.
  ASSERT_EQ(split->buffered_vars.size(), 1u);
  EXPECT_EQ(db_.pool().name(split->buffered_vars[0])[0], 'X');
}

TEST_F(FinitenessTest, AppendAllBoundNeedsNoSplit) {
  // append with all three arguments bound: both cons literals are
  // evaluable (the third argument binds each).
  CompiledChain chain = Compile(AppendProgramSource(), "append", 3);
  ChainPath whole = WholeBodyPath(db_.pool(), chain);
  auto split = SplitPathByFiniteness(db_.program(), chain, whole,
                                     BoundHeadVars(chain, {0, 1, 2}));
  ASSERT_TRUE(split.ok());
  EXPECT_FALSE(split->IsSplit());
  EXPECT_FALSE(split->finiteness_split);
}

TEST_F(FinitenessTest, FunctionFreeChainNeedsNoSplitWithoutGate) {
  CompiledChain chain = Compile(R"(
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
)",
                                "tc", 2);
  ChainPath whole = WholeBodyPath(db_.pool(), chain);
  auto split = SplitPathByFiniteness(db_.program(), chain, whole,
                                     BoundHeadVars(chain, {0}));
  ASSERT_TRUE(split.ok());
  EXPECT_FALSE(split->IsSplit());
  EXPECT_EQ(split->evaluable.size(), 1u);
}

TEST_F(FinitenessTest, SgDownChainIsDelayed) {
  // sg^bf: parent(X,X1) iterates forward, parent(Y,Y1) is unreachable
  // from the bound side and is delayed (evaluated on the way back) —
  // this is exactly the up/down structure of counting.
  CompiledChain chain = Compile(R"(
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
)",
                                "sg", 2);
  ChainPath whole = WholeBodyPath(db_.pool(), chain);
  auto split = SplitPathByFiniteness(db_.program(), chain, whole,
                                     BoundHeadVars(chain, {0}));
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->evaluable.size(), 1u);
  EXPECT_EQ(split->delayed.size(), 1u);
  EXPECT_FALSE(split->finiteness_split);  // both are finite relations
}

TEST_F(FinitenessTest, TravelSplitsSumAndCons) {
  CompiledChain chain = Compile(R"(
travel(L, D, A, F) :- flight(Fno, D, A, F), cons(Fno, [], L).
travel(L, D, A, F) :- flight(Fno, D, A1, F1), travel(L1, A1, A, F2),
                      F is F1 + F2, cons(Fno, L1, L).
)",
                                "travel", 4);
  ChainPath whole = WholeBodyPath(db_.pool(), chain);
  // D and A bound (positions 1, 2).
  auto split = SplitPathByFiniteness(db_.program(), chain, whole,
                                     BoundHeadVars(chain, {1, 2}));
  ASSERT_TRUE(split.ok());
  EXPECT_TRUE(split->finiteness_split);
  EXPECT_EQ(split->evaluable.size(), 1u);  // flight only
  EXPECT_EQ(split->delayed.size(), 2u);    // sum and cons
  // Fno and F1 feed the delayed portion: both buffered.
  EXPECT_EQ(split->buffered_vars.size(), 2u);
}

TEST_F(FinitenessTest, EfficiencyGateDelaysWeakLinkage) {
  Database db;
  ASSERT_TRUE(ParseProgram(R"(
scsg(X, Y) :- sibling(X, Y).
scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1),
              scsg(X1, Y1).
parent(a, b). sibling(a, a).
)",
                           &db.program())
                  .ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  // Weak same_country: many tuples, few distinct keys.
  PredId sc = db.program().preds().Find("same_country", 2).value();
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      db.InsertFact(sc, {db.pool().MakeSymbol("q0"),
                         db.pool().MakeSymbol(StrCat("r", i, "_", j))});
    }
  }
  std::vector<Rule> rectified = RectifyRules(&db.program());
  auto chain = CompileChain(db.program(), rectified,
                            db.program().preds().Find("scsg", 2).value());
  ASSERT_TRUE(chain.ok());
  ChainPath whole = WholeBodyPath(db.pool(), *chain);
  std::vector<TermId> bound;
  db.pool().CollectVariables(chain->head().args[0], &bound);

  SplitDecisionOptions options;
  auto split = DecideSplit(&db, *chain, whole, bound, options);
  ASSERT_TRUE(split.ok()) << split.status();
  EXPECT_TRUE(split->IsSplit());
  EXPECT_TRUE(split->efficiency_split);
  EXPECT_FALSE(split->finiteness_split);
  EXPECT_EQ(split->evaluable.size(), 1u);  // parent(X, X1) only
  EXPECT_EQ(split->delayed.size(), 2u);

  // With the efficiency criterion disabled, everything is followed.
  options.enable_efficiency_split = false;
  auto follow = DecideSplit(&db, *chain, whole, bound, options);
  ASSERT_TRUE(follow.ok());
  EXPECT_FALSE(follow->IsSplit());
}

TEST_F(FinitenessTest, HoldsWithFanoutChecksConstraint) {
  Relation rel(2);
  TermPool pool;
  for (int i = 0; i < 10; ++i) {
    rel.Insert({pool.MakeInt(i % 2), pool.MakeInt(i)});
  }
  FinitenessConstraint constraint{{0}, 1};
  EXPECT_TRUE(HoldsWithFanout(rel, constraint, 5));
  EXPECT_FALSE(HoldsWithFanout(rel, constraint, 4));
  FinitenessConstraint reverse{{1}, 0};
  EXPECT_TRUE(HoldsWithFanout(rel, reverse, 1));
}

TEST_F(FinitenessTest, DisablingFinitenessSplitReportsError) {
  CompiledChain chain = Compile(AppendProgramSource(), "append", 3);
  ChainPath whole = WholeBodyPath(db_.pool(), chain);
  SplitDecisionOptions options;
  options.enable_finiteness_split = false;
  auto split = DecideSplit(&db_, chain, whole, BoundHeadVars(chain, {0, 1}),
                           options);
  ASSERT_FALSE(split.ok());
  EXPECT_EQ(split.status().code(), StatusCode::kNotFinitelyEvaluable);
}

TEST_F(FinitenessTest, DeclaredFiniteModeAllowsForwardIdbLiteral) {
  // same_country defined by a rule is an IDB predicate: by default the
  // splitter delays it; declaring the finiteness constraint
  // same_country: X -> Y (mode bf) lets it join the evaluable portion.
  const char* source = R"(
same_country(X, Y) :- country(X, C), country(Y, C).
scsg(X, Y) :- sibling(X, Y).
scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1),
              scsg(X1, Y1).
)";
  CompiledChain chain = Compile(source, "scsg", 2);
  ChainPath whole = WholeBodyPath(db_.pool(), chain);
  std::vector<TermId> bound = BoundHeadVars(chain, {0});

  auto delayed = SplitPathByFiniteness(db_.program(), chain, whole, bound);
  ASSERT_TRUE(delayed.ok());
  EXPECT_EQ(delayed->evaluable.size(), 1u);  // parent(X, X1) only

  PredId sc = db_.program().preds().Find("same_country", 2).value();
  db_.program().DeclareFiniteMode(sc, "bf");
  auto followed = SplitPathByFiniteness(db_.program(), chain, whole, bound);
  ASSERT_TRUE(followed.ok());
  EXPECT_EQ(followed->evaluable.size(), 3u);  // whole path followed
  EXPECT_FALSE(followed->IsSplit());
}

TEST_F(FinitenessTest, FiniteModeMatchingRules) {
  Database db;
  PredId p = db.program().InternPred("p", 3);
  EXPECT_FALSE(db.program().HasFiniteMode(p, "bbb"));
  db.program().DeclareFiniteMode(p, "bbf");
  EXPECT_TRUE(db.program().HasFiniteMode(p, "bbf"));
  EXPECT_TRUE(db.program().HasFiniteMode(p, "bbb"));  // more bound: ok
  EXPECT_FALSE(db.program().HasFiniteMode(p, "bfb"));
  EXPECT_FALSE(db.program().HasFiniteMode(p, "fb"));  // arity mismatch
}

}  // namespace
}  // namespace chainsplit
