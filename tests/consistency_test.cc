// Differential testing across evaluation techniques: on randomized
// workloads, every applicable technique must produce exactly the same
// answer set. This is the library-level statement of the paper's
// correctness claims (Remarks 3.1 and 3.2: chain-split evaluation is
// equivalent to the standard evaluations).

#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include <random>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/planner.h"
#include "term/list_utils.h"
#include "workload/family_gen.h"
#include "workload/flight_gen.h"
#include "workload/graph_gen.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

/// Runs `source` + `query` under `force`, returning answers as strings
/// (pools differ between runs).
std::multiset<std::string> AnswersOf(const std::string& source,
                                     const std::string& query,
                                     std::optional<Technique> force,
                                     Technique* used = nullptr) {
  Database db;
  Status status = ParseProgram(source, &db.program());
  EXPECT_TRUE(status.ok()) << status;
  status = ParseProgram(query, &db.program());
  EXPECT_TRUE(status.ok()) << status;
  status = db.LoadProgramFacts();
  EXPECT_TRUE(status.ok()) << status;
  PlannerOptions options;
  options.force = force;
  auto result = EvaluateQuery(&db, db.program().queries()[0], options);
  EXPECT_TRUE(result.ok()) << result.status();
  std::multiset<std::string> out;
  if (!result.ok()) return out;
  if (used != nullptr) *used = result->technique;
  for (const Tuple& row : result->answers) {
    std::vector<std::string> parts;
    for (TermId t : row) parts.push_back(db.pool().ToString(t));
    out.insert(StrJoin(parts, "|"));
  }
  return out;
}

/// Serializes a database's generated EDB into fact clauses so the same
/// data can be replayed into fresh databases.
std::string EdbToSource(Database* db) {
  std::string out;
  for (PredId pred : db->StoredPredicates()) {
    const Relation* rel = db->GetRelation(pred);
    const std::string& name = db->program().preds().name(pred);
    for (int64_t i = 0; i < rel->num_rows(); ++i) {
      std::vector<std::string> args;
      for (TermId t : rel->row(i)) args.push_back(db->pool().ToString(t));
      out += StrCat(name, "(", StrJoin(args, ", "), ").\n");
    }
  }
  return out;
}

class SgConsistency : public ::testing::TestWithParam<int> {};

TEST_P(SgConsistency, AllTechniquesAgree) {
  Database gen;
  FamilyOptions fam;
  fam.num_families = 2;
  fam.depth = 4;
  fam.fanout = 2;
  fam.seed = static_cast<uint64_t>(GetParam());
  fam.materialize_same_country = false;
  FamilyData data = GenerateFamily(&gen, fam);
  std::string source = EdbToSource(&gen) + SgProgramSource();
  std::string query =
      StrCat("?- sg(", gen.pool().ToString(data.query_person), ", Y).");

  auto magic = AnswersOf(source, query, Technique::kMagicSets);
  auto buffered = AnswersOf(source, query, Technique::kBuffered);
  auto topdown = AnswersOf(source, query, Technique::kTopDown);
  EXPECT_EQ(magic, buffered);
  EXPECT_EQ(magic, topdown);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SgConsistency, ::testing::Range(1, 7));

class ScsgConsistency
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ScsgConsistency, FollowAndSplitAgree) {
  auto [seed, countries] = GetParam();
  Database gen;
  FamilyOptions fam;
  fam.num_families = 2;
  fam.depth = 4;
  fam.fanout = 2;
  fam.num_countries = countries;
  fam.seed = static_cast<uint64_t>(seed);
  FamilyData data = GenerateFamily(&gen, fam);
  std::string source = EdbToSource(&gen) + ScsgProgramSource();
  std::string query =
      StrCat("?- scsg(", gen.pool().ToString(data.query_person), ", Y).");

  auto follow = AnswersOf(source, query, Technique::kMagicSets);
  auto split = AnswersOf(source, query, Technique::kChainSplitMagic);
  auto buffered = AnswersOf(source, query, Technique::kBuffered);
  EXPECT_EQ(follow, split);
  EXPECT_EQ(follow, buffered);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndCountries, ScsgConsistency,
    ::testing::Values(std::pair{1, 1}, std::pair{2, 2}, std::pair{3, 4},
                      std::pair{4, 2}, std::pair{5, 8}));

class TravelConsistency : public ::testing::TestWithParam<int> {};

TEST_P(TravelConsistency, PartialEqualsPostFilterOnDags) {
  // Layered DAG so the un-pushed evaluation is finite.
  int seed = GetParam();
  std::mt19937_64 rng(seed);
  std::string facts;
  int fno = 0;
  const int layers = 5, per_layer = 3;
  for (int l = 0; l + 1 < layers; ++l) {
    for (int i = 0; i < per_layer; ++i) {
      for (int f = 0; f < 2; ++f) {
        int j = static_cast<int>(rng() % per_layer);
        int64_t fare = 50 + static_cast<int64_t>(rng() % 150);
        facts += StrCat("flight(", fno++, ", c", l, "_", i, ", c", l + 1,
                        "_", j, ", ", fare, ").\n");
      }
    }
  }
  std::string source = facts + TravelProgramSource();
  std::string query = "?- travel(L, c0_0, c4_0, F), F =< 420.";

  Technique used_auto = Technique::kTopDown;
  auto pushed = AnswersOf(source, query, std::nullopt, &used_auto);
  auto filtered = AnswersOf(source, query, Technique::kBuffered);
  EXPECT_EQ(used_auto, Technique::kPartial);
  EXPECT_EQ(pushed, filtered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TravelConsistency, ::testing::Range(1, 7));

class TcCyclicConsistency : public ::testing::TestWithParam<int> {};

TEST_P(TcCyclicConsistency, MagicMatchesTopDownCone) {
  // Random cyclic digraphs: magic sets vs buffered (SLD would loop).
  Database gen;
  GraphOptions g;
  g.num_nodes = 15;
  g.num_edges = 30;
  g.seed = static_cast<uint64_t>(GetParam());
  GraphData data = GenerateGraph(&gen, "e", g);
  std::string source = EdbToSource(&gen) + R"(
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
)";
  // Query from a node with at least one outgoing edge so the cone is
  // non-empty.
  const Relation* edges =
      gen.GetRelation(gen.program().preds().Find("e", 2).value());
  TermId start = edges->row(0)[0];
  std::string query = StrCat("?- tc(", gen.pool().ToString(start), ", Y).");
  auto magic = AnswersOf(source, query, Technique::kMagicSets);
  auto buffered = AnswersOf(source, query, Technique::kBuffered);
  EXPECT_EQ(magic, buffered);
  EXPECT_FALSE(magic.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcCyclicConsistency, ::testing::Range(1, 9));

class AppendConsistency : public ::testing::TestWithParam<int> {};

TEST_P(AppendConsistency, BufferedMatchesTopDown) {
  int n = GetParam();
  std::vector<int64_t> xs = RandomInts(n, 0, 9, 100 + n);
  std::vector<int64_t> ys = RandomInts(n / 2 + 1, 0, 9, 200 + n);
  auto render = [](const std::vector<int64_t>& v) {
    std::vector<std::string> parts;
    for (int64_t x : v) parts.push_back(std::to_string(x));
    return StrCat("[", StrJoin(parts, ", "), "]");
  };
  std::string source = AppendProgramSource();
  std::string query =
      StrCat("?- append(", render(xs), ", ", render(ys), ", W).");
  auto buffered = AnswersOf(source, query, Technique::kBuffered);
  auto topdown = AnswersOf(source, query, Technique::kTopDown);
  EXPECT_EQ(buffered, topdown);
  EXPECT_EQ(buffered.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AppendConsistency,
                         ::testing::Values(0, 1, 3, 9, 27, 81));

}  // namespace
}  // namespace chainsplit
