#include "core/buffered.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/rectify.h"
#include "core/split_decision.h"
#include "term/list_utils.h"
#include "workload/family_gen.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

class BufferedTest : public ::testing::Test {
 protected:
  void Load(std::string_view text) {
    ASSERT_TRUE(ParseProgram(text, &db_.program()).ok());
    ASSERT_TRUE(db_.LoadProgramFacts().ok());
  }

  CompiledChain Compile(std::string_view pred, int arity) {
    rectified_ = RectifyRules(&db_.program());
    auto chain = CompileChain(db_.program(), rectified_,
                              db_.program().preds().Find(pred, arity).value());
    EXPECT_TRUE(chain.ok()) << chain.status();
    return *chain;
  }

  /// Splits by finiteness for the query's bound positions and runs the
  /// buffered evaluator.
  StatusOr<std::vector<Tuple>> Evaluate(const CompiledChain& chain,
                                        const Atom& query,
                                        BufferedOptions options = {}) {
    std::vector<TermId> bound;
    for (size_t i = 0; i < query.args.size(); ++i) {
      if (db_.pool().IsGround(query.args[i])) {
        db_.pool().CollectVariables(chain.head().args[i], &bound);
      }
    }
    ChainPath whole = WholeBodyPath(db_.pool(), chain);
    auto split =
        SplitPathByFiniteness(db_.program(), chain, whole, bound);
    EXPECT_TRUE(split.ok()) << split.status();
    BufferedChainEvaluator evaluator(&db_, chain, options);
    auto result = evaluator.Evaluate(query, *split);
    stats_ = evaluator.stats();
    return result;
  }

  Database db_;
  std::vector<Rule> rectified_;
  BufferedStats stats_;
};

TEST_F(BufferedTest, AppendBffPaperShape) {
  // append([1,2],[3,4],W) via chain-split: forward decomposes the first
  // list buffering its elements, exit hands over the second list, the
  // delayed cons rebuilds W back-to-front (§2.2 / Remark 3.1).
  Load(AppendProgramSource());
  CompiledChain chain = Compile("append", 3);
  Atom query;
  query.pred = chain.pred;
  query.args = {MakeIntList(db_.pool(), {{1, 2}}),
                MakeIntList(db_.pool(), {{3, 4}}),
                db_.pool().MakeVariable("W")};
  auto answers = Evaluate(chain, query);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  auto ints = ListInts(db_.pool(), (*answers)[0][2]);
  ASSERT_TRUE(ints.has_value());
  EXPECT_EQ(*ints, (std::vector<int64_t>{1, 2, 3, 4}));
  // 3 call states: [1,2], [2], []; 2 buffered edges carrying 1 and 2.
  EXPECT_EQ(stats_.nodes, 3);
  EXPECT_EQ(stats_.buffered_values, 2);
  EXPECT_EQ(stats_.exit_solutions, 1);
}

TEST_F(BufferedTest, AppendEmptyFirstList) {
  Load(AppendProgramSource());
  CompiledChain chain = Compile("append", 3);
  Atom query;
  query.pred = chain.pred;
  query.args = {db_.pool().Nil(), MakeIntList(db_.pool(), {{9}}),
                db_.pool().MakeVariable("W")};
  auto answers = Evaluate(chain, query);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  auto ints = ListInts(db_.pool(), (*answers)[0][2]);
  EXPECT_EQ(*ints, (std::vector<int64_t>{9}));
  EXPECT_EQ(stats_.nodes, 1);
}

TEST_F(BufferedTest, AppendLongLists) {
  Load(AppendProgramSource());
  CompiledChain chain = Compile("append", 3);
  std::vector<int64_t> left = RandomInts(300, 0, 99, 3);
  std::vector<int64_t> right = RandomInts(200, 0, 99, 4);
  Atom query;
  query.pred = chain.pred;
  query.args = {MakeIntList(db_.pool(), left), MakeIntList(db_.pool(), right),
                db_.pool().MakeVariable("W")};
  auto answers = Evaluate(chain, query);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  auto ints = ListInts(db_.pool(), (*answers)[0][2]);
  ASSERT_TRUE(ints.has_value());
  std::vector<int64_t> expect = left;
  expect.insert(expect.end(), right.begin(), right.end());
  EXPECT_EQ(*ints, expect);
  EXPECT_EQ(stats_.nodes, 301);  // one state per suffix of `left`
}

TEST_F(BufferedTest, SgBehavesLikeCountingWithMemoization) {
  Load(StrCat(R"(
parent(c1, p1). parent(c2, p1).
parent(g1, c1). parent(g2, c2). parent(g3, c2).
sibling(c1, c2). sibling(c2, c1).
)",
              SgProgramSource()));
  CompiledChain chain = Compile("sg", 2);
  Atom query;
  query.pred = chain.pred;
  query.args = {db_.pool().MakeSymbol("g1"), db_.pool().MakeVariable("Y")};
  auto answers = Evaluate(chain, query);
  ASSERT_TRUE(answers.ok()) << answers.status();
  // g1's same-generation partners: g2 and g3 (through c1~c2).
  TermId g1 = db_.pool().MakeSymbol("g1");
  EXPECT_EQ(answers->size(), 2u);
  EXPECT_TRUE(std::find(answers->begin(), answers->end(),
                        Tuple{g1, db_.pool().MakeSymbol("g2")}) !=
              answers->end());
  EXPECT_TRUE(std::find(answers->begin(), answers->end(),
                        Tuple{g1, db_.pool().MakeSymbol("g3")}) !=
              answers->end());
}

TEST_F(BufferedTest, CyclicDataTerminatesViaMemoizedStates) {
  // A cyclic "next" relation: the call-state memoization is the
  // cyclic-counting extension the paper points to (Remark 3.1 / [5]).
  Load(R"(
next(a, b). next(b, c). next(c, a).
goal(c).
reach(X, found) :- goal(X).
reach(X, Y) :- next(X, X1), reach(X1, Y).
)");
  CompiledChain chain = Compile("reach", 2);
  Atom query;
  query.pred = chain.pred;
  query.args = {db_.pool().MakeSymbol("a"), db_.pool().MakeVariable("Y")};
  auto answers = Evaluate(chain, query);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ((*answers)[0][1], db_.pool().MakeSymbol("found"));
  EXPECT_EQ(stats_.nodes, 3);  // a, b, c — each expanded once
}

TEST_F(BufferedTest, FullyBoundQueryActsAsBooleanCheck) {
  Load(AppendProgramSource());
  CompiledChain chain = Compile("append", 3);
  Atom query;
  query.pred = chain.pred;
  query.args = {MakeIntList(db_.pool(), {{1}}), MakeIntList(db_.pool(), {{2}}),
                MakeIntList(db_.pool(), {{1, 2}})};
  auto answers = Evaluate(chain, query);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);

  query.args[2] = MakeIntList(db_.pool(), {{2, 1}});
  auto none = Evaluate(chain, query);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST_F(BufferedTest, IsortNestedLinearRecursion) {
  // §4.1: the outer isort chain splits; the delayed insert call is a
  // nested recursion solved per backward step.
  Load(IsortProgramSource());
  CompiledChain chain = Compile("isort", 2);
  Atom query;
  query.pred = chain.pred;
  query.args = {MakeIntList(db_.pool(), {{5, 7, 1}}),
                db_.pool().MakeVariable("Ys")};
  auto answers = Evaluate(chain, query);
  ASSERT_TRUE(answers.ok()) << answers.status();
  ASSERT_EQ(answers->size(), 1u);
  auto ints = ListInts(db_.pool(), (*answers)[0][1]);
  ASSERT_TRUE(ints.has_value());
  EXPECT_EQ(*ints, (std::vector<int64_t>{1, 5, 7}));
  // Buffered values 5, 7, 1 on the three forward edges.
  EXPECT_EQ(stats_.buffered_values, 3);
  EXPECT_EQ(stats_.nodes, 4);
}

TEST_F(BufferedTest, NodeCapTriggersOnRunawayChain) {
  Load(R"(
up(X, done) :- stop(X).
up(X, Y) :- Z is X + 1, up(Z, Y).
stop(1000000).
)");
  CompiledChain chain = Compile("up", 2);
  Atom query;
  query.pred = chain.pred;
  query.args = {db_.pool().MakeInt(0), db_.pool().MakeVariable("Y")};
  BufferedOptions options;
  options.max_nodes = 100;
  auto answers = Evaluate(chain, query, options);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BufferedTest, WrongPredicateRejected) {
  Load(AppendProgramSource());
  CompiledChain chain = Compile("append", 3);
  Atom query;
  query.pred = db_.program().InternPred("other", 1);
  query.args = {db_.pool().MakeVariable("X")};
  BufferedChainEvaluator evaluator(&db_, chain, {});
  PathSplit split;
  auto answers = evaluator.Evaluate(query, split);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BufferedTest, SplitThatCannotIterateForwardRejected) {
  // Query append(U, V, W) with only V bound: the evaluable portion
  // cannot produce the recursive call's bound argument V... V is a
  // pass-through, so instead bind nothing: adornment fff has no bound
  // position at all and the root state is empty — evaluable portion is
  // empty and cons goals are unevaluable: delayed; forward then cannot
  // bind U1 -> but wait, with no bound positions there is nothing to
  // check. Use first position free, third free, second bound: U free
  // breaks the forward iteration (rec arg U1 unbound? U1 is not a
  // bound *position*). The genuinely broken case: query with W free
  // and U free but evaluable needs U. Positions bound: none. The chain
  // still "runs": root state empty, forward solve over zero evaluable
  // literals... To keep this deterministic we assert the analysis
  // rejects a hand-made bad split instead.
  Load(AppendProgramSource());
  CompiledChain chain = Compile("append", 3);
  Atom query;
  query.pred = chain.pred;
  query.args = {MakeIntList(db_.pool(), {{1}}), db_.pool().MakeVariable("V"),
                db_.pool().MakeVariable("W")};
  // Hand-made split: everything delayed. Forward cannot bind U1.
  PathSplit split;
  ChainPath whole = WholeBodyPath(db_.pool(), chain);
  split.delayed = whole.literals;
  BufferedChainEvaluator evaluator(&db_, chain, {});
  auto answers = evaluator.Evaluate(query, split);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kNotFinitelyEvaluable);
}

// Property: buffered chain-split answers equal top-down SLD answers on
// append for random list lengths.
class BufferedAppendProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(BufferedAppendProperty, MatchesTopDown) {
  auto [n, m] = GetParam();
  Database db;
  ASSERT_TRUE(ParseProgram(AppendProgramSource(), &db.program()).ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  std::vector<Rule> rectified = RectifyRules(&db.program());
  auto chain = CompileChain(db.program(), rectified,
                            db.program().preds().Find("append", 3).value());
  ASSERT_TRUE(chain.ok());

  TermId left = RandomIntList(db.pool(), n, 0, 9, 10 + n);
  TermId right = RandomIntList(db.pool(), m, 0, 9, 20 + m);
  TermId w = db.pool().MakeVariable("W");
  Atom query{chain->pred, {left, right, w}};

  std::vector<TermId> bound;
  db.pool().CollectVariables(chain->head().args[0], &bound);
  db.pool().CollectVariables(chain->head().args[1], &bound);
  ChainPath whole = WholeBodyPath(db.pool(), *chain);
  auto split = SplitPathByFiniteness(db.program(), *chain, whole, bound);
  ASSERT_TRUE(split.ok());
  BufferedChainEvaluator evaluator(&db, *chain, {});
  auto buffered = evaluator.Evaluate(query, *split);
  ASSERT_TRUE(buffered.ok()) << buffered.status();

  TopDownEvaluator solver(&db);
  auto reference = solver.Answers({query}, {w});
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(buffered->size(), reference->size());
  ASSERT_EQ(buffered->size(), 1u);
  EXPECT_EQ((*buffered)[0][2], (*reference)[0][0]);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BufferedAppendProperty,
    ::testing::Values(std::pair{0, 0}, std::pair{1, 0}, std::pair{0, 1},
                      std::pair{4, 4}, std::pair{16, 8}, std::pair{64, 64},
                      std::pair{256, 32}));

}  // namespace
}  // namespace chainsplit
