#include "rel/relation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <random>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

namespace chainsplit {
namespace {

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert({1, 2}));
  EXPECT_FALSE(rel.Insert({1, 2}));
  EXPECT_TRUE(rel.Insert({2, 1}));
  EXPECT_EQ(rel.size(), 2);
  EXPECT_EQ(rel.insert_attempts(), 3);
}

TEST(RelationTest, ContainsAndRowAccess) {
  Relation rel(2);
  rel.Insert({1, 2});
  rel.Insert({3, 4});
  EXPECT_TRUE(rel.Contains({1, 2}));
  EXPECT_FALSE(rel.Contains({2, 1}));
  EXPECT_EQ(rel.row(0), (Tuple{1, 2}));
  EXPECT_EQ(rel.row(1), (Tuple{3, 4}));  // insertion order preserved
}

TEST(RelationTest, ProbeBuildsAndMaintainsIndex) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({1, 11});
  rel.Insert({2, 20});
  const auto& hits = rel.Probe({0}, {1});
  EXPECT_EQ(hits.size(), 2u);
  // Index maintained incrementally on later inserts.
  rel.Insert({1, 12});
  EXPECT_EQ(rel.Probe({0}, {1}).size(), 3u);
  EXPECT_TRUE(rel.Probe({0}, {99}).empty());
}

TEST(RelationTest, MultiColumnProbe) {
  Relation rel(3);
  rel.Insert({1, 2, 3});
  rel.Insert({1, 2, 4});
  rel.Insert({1, 3, 5});
  EXPECT_EQ(rel.Probe({0, 1}, {1, 2}).size(), 2u);
  EXPECT_EQ(rel.Probe({1, 2}, {2, 4}).size(), 1u);
}

TEST(RelationTest, SeveralIndexesCoexist) {
  Relation rel(2);
  for (TermId i = 0; i < 100; ++i) rel.Insert({i % 10, i});
  EXPECT_EQ(rel.Probe({0}, {3}).size(), 10u);
  EXPECT_EQ(rel.Probe({1}, {42}).size(), 1u);
  EXPECT_EQ(rel.Probe({0, 1}, {2, 42}).size(), 1u);
}

TEST(RelationTest, UnionWith) {
  Relation a(1);
  Relation b(1);
  a.Insert({1});
  a.Insert({2});
  b.Insert({2});
  b.Insert({3});
  EXPECT_EQ(a.UnionWith(b), 1);
  EXPECT_EQ(a.size(), 3);
}

TEST(RelationTest, ClearDropsTuplesAndIndexes) {
  Relation rel(2);
  rel.Insert({1, 2});
  rel.Probe({0}, {1});
  rel.Clear();
  EXPECT_TRUE(rel.empty());
  EXPECT_TRUE(rel.Probe({0}, {1}).empty());
  EXPECT_TRUE(rel.Insert({1, 2}));
}

TEST(RelationTest, ZeroArityRelation) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.size(), 1);
  EXPECT_TRUE(rel.Contains({}));
}

TEST(RelationTest, LargeRelationStaysConsistent) {
  Relation rel(2);
  for (TermId i = 0; i < 20000; ++i) rel.Insert({i / 100, i});
  EXPECT_EQ(rel.size(), 20000);
  EXPECT_EQ(rel.Probe({0}, {7}).size(), 100u);
}

TEST(RelationTest, IndexesMaintainedAfterClear) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({2, 20});
  EXPECT_EQ(rel.Probe({0}, {1}).size(), 1u);
  EXPECT_EQ(rel.Probe({1}, {20}).size(), 1u);
  rel.Clear();
  EXPECT_TRUE(rel.empty());
  // Rebuilt-from-scratch indexes must see post-Clear inserts only.
  rel.Insert({1, 30});
  rel.Insert({3, 10});
  EXPECT_EQ(rel.Probe({0}, {1}).size(), 1u);
  EXPECT_TRUE(rel.Probe({0}, {2}).empty());
  EXPECT_EQ(rel.Probe({1}, {10}).size(), 1u);
  rel.Insert({1, 40});  // incremental maintenance after the rebuild
  EXPECT_EQ(rel.Probe({0}, {1}).size(), 2u);
}

TEST(RelationTest, MoveSemantics) {
  Relation a(2);
  for (TermId i = 0; i < 100; ++i) a.Insert({i % 5, i});
  a.Probe({0}, {3});  // force an index before the move

  Relation b(std::move(a));
  EXPECT_EQ(b.size(), 100);
  EXPECT_EQ(b.Probe({0}, {3}).size(), 20u);
  EXPECT_EQ(b.row(0), (Tuple{0, 0}));
  EXPECT_TRUE(b.Insert({99, 99}));

  Relation c(2);
  c.Insert({7, 7});
  c = std::move(b);
  EXPECT_EQ(c.size(), 101);
  EXPECT_FALSE(c.Contains({7, 7}));
  EXPECT_TRUE(c.Contains({99, 99}));
  EXPECT_EQ(c.Probe({0}, {3}).size(), 20u);
}

TEST(RelationTest, ReservePreservesBehaviour) {
  Relation rel(3);
  rel.Insert({1, 2, 3});
  rel.Reserve(5000);
  EXPECT_EQ(rel.size(), 1);
  EXPECT_TRUE(rel.Contains({1, 2, 3}));
  for (TermId i = 0; i < 5000; ++i) rel.Insert({i, i + 1, i % 7});
  EXPECT_EQ(rel.size(), 5001);
  EXPECT_EQ(rel.Probe({2}, {3}).size(), 5000u / 7 + 1);
  EXPECT_GE(rel.telemetry().arena_bytes,
            static_cast<int64_t>(5001 * 3 * sizeof(TermId)));
}

TEST(RelationTest, ProbeEachMatchesProbe) {
  Relation rel(2);
  for (TermId i = 0; i < 50; ++i) rel.Insert({i % 4, i});
  std::vector<int64_t> via_probe(rel.Probe({0}, {2}).begin(),
                                 rel.Probe({0}, {2}).end());
  std::vector<int64_t> via_each;
  Tuple key = {2};
  rel.ProbeEach({0}, key.data(), [&](int64_t j) { via_each.push_back(j); });
  EXPECT_EQ(via_probe, via_each);
  EXPECT_FALSE(via_probe.empty());
}

TEST(RelationTest, NestedProbeBuildingAnotherIndexIsSafe) {
  // The grounder probes a relation on one column set from inside an
  // iteration over another; building the inner index grows the shared
  // posting pool mid-iteration and must not invalidate the outer walk.
  Relation rel(2);
  for (TermId i = 0; i < 2000; ++i) rel.Insert({i % 50, i});
  std::vector<int64_t> outer;
  int64_t inner_hits = 0;
  Tuple key = {3};
  rel.ProbeEach({0}, key.data(), [&](int64_t j) {
    outer.push_back(j);
    Tuple inner_key = {rel.row(j)[1]};
    rel.ProbeEach({1}, inner_key.data(), [&](int64_t) { ++inner_hits; });
  });
  EXPECT_EQ(outer.size(), 40u);
  int64_t expected = 0;  // linear-scan oracle for the nested probes
  for (int64_t j : outer) {
    TermId v = rel.row(j)[1];
    for (int64_t r = 0; r < rel.num_rows(); ++r) {
      if (rel.row(r)[1] == v) ++expected;
    }
  }
  EXPECT_EQ(inner_hits, expected);
}

TEST(RelationTest, TelemetryCountsProbesAndSurvivesClear) {
  Relation rel(2);
  rel.Insert({1, 2});
  const int64_t before = rel.telemetry().probes;
  rel.Probe({0}, {1});
  Tuple key = {2};
  rel.ProbeEach({1}, key.data(), [](int64_t) {});
  EXPECT_EQ(rel.telemetry().probes, before + 2);
  rel.Clear();
  EXPECT_EQ(rel.telemetry().probes, before + 2);  // cumulative
  EXPECT_EQ(rel.insert_attempts(), 1);
}

TEST(RelationTest, ConcurrentLazyIndexBuildsArePublicationSafe) {
  // Several reader threads probe the same frozen relation on different
  // (and overlapping) column sets with no external synchronization:
  // the lazy index builds must race safely (double-checked under
  // index_mu_, published via the num_indexes_ release store) and every
  // thread must see exactly the right posting lists. This is the
  // regime the query service's shared lock establishes; run under tsan
  // via the tier1-tsan label.
  Relation rel(2);
  for (TermId i = 0; i < 3000; ++i) rel.Insert({i % 37, i % 111});

  // Linear-scan oracles, computed before any index exists.
  auto count_matching = [&rel](int column, TermId value) {
    int64_t n = 0;
    for (int64_t r = 0; r < rel.num_rows(); ++r) {
      if (rel.row(r)[column] == value) ++n;
    }
    return n;
  };
  std::vector<int64_t> expected0(37), expected1(111);
  for (TermId v = 0; v < 37; ++v) expected0[v] = count_matching(0, v);
  for (TermId v = 0; v < 111; ++v) expected1[v] = count_matching(1, v);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < 50; ++round) {
        const int column = (t + round) % 2;
        const TermId value =
            static_cast<TermId>((t * 13 + round) % (column == 0 ? 37 : 111));
        int64_t hits = 0;
        Tuple key = {value};
        rel.ProbeEach({column}, key.data(), [&hits](int64_t) { ++hits; });
        const int64_t expected =
            column == 0 ? expected0[value] : expected1[value];
        if (hits != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // Both indexes were built (and only once each): probing again is
  // pure lookups, and the racing builds left consistent postings.
  EXPECT_GT(rel.telemetry().probes, 0);
}

/// The pre-arena reference semantics: an unordered_set for dedup, a
/// vector for insertion order, and per-column-set postings maps. The
/// randomized test below drives Relation and this oracle with the same
/// operation stream and demands identical observable behaviour.
class OracleRelation {
 public:
  explicit OracleRelation(int arity) : arity_(arity) {}

  bool Insert(const Tuple& t) {
    if (!set_.insert(t).second) return false;
    rows_.push_back(t);
    for (auto& [columns, postings] : indexes_) {
      postings[KeyOf(t, columns)].push_back(
          static_cast<int64_t>(rows_.size()) - 1);
    }
    return true;
  }
  bool Contains(const Tuple& t) const { return set_.count(t) > 0; }
  int64_t size() const { return static_cast<int64_t>(rows_.size()); }
  const Tuple& row(int64_t i) const { return rows_[i]; }

  std::vector<int64_t> Probe(const std::vector<int>& columns,
                             const Tuple& key) {
    auto& postings = EnsureIndex(columns);
    auto it = postings.find(key);
    return it == postings.end() ? std::vector<int64_t>{} : it->second;
  }

  void Clear() {
    set_.clear();
    rows_.clear();
    indexes_.clear();
  }

 private:
  using PostingsMap = std::map<Tuple, std::vector<int64_t>>;

  static Tuple KeyOf(const Tuple& t, const std::vector<int>& columns) {
    Tuple key;
    for (int c : columns) key.push_back(t[c]);
    return key;
  }
  PostingsMap& EnsureIndex(const std::vector<int>& columns) {
    auto it = indexes_.find(columns);
    if (it == indexes_.end()) {
      it = indexes_.emplace(columns, PostingsMap{}).first;
      for (size_t i = 0; i < rows_.size(); ++i) {
        it->second[KeyOf(rows_[i], columns)].push_back(
            static_cast<int64_t>(i));
      }
    }
    return it->second;
  }

  int arity_;
  std::unordered_set<Tuple, TupleHash> set_;
  std::vector<Tuple> rows_;
  std::map<std::vector<int>, PostingsMap> indexes_;
};

TEST(RelationTest, RandomizedDifferentialAgainstOracle) {
  std::mt19937 rng(20260805);
  const std::vector<std::vector<int>> column_sets = {{0}, {1}, {2}, {0, 2}};
  for (int round = 0; round < 4; ++round) {
    Relation rel(3);
    OracleRelation oracle(3);
    std::uniform_int_distribution<int> value(0, 12);
    std::uniform_int_distribution<int> op(0, 99);
    for (int step = 0; step < 3000; ++step) {
      const int o = op(rng);
      Tuple t = {value(rng), value(rng), value(rng)};
      if (o < 55) {
        ASSERT_EQ(rel.Insert(t), oracle.Insert(t)) << "step " << step;
      } else if (o < 75) {
        ASSERT_EQ(rel.Contains(t), oracle.Contains(t)) << "step " << step;
      } else if (o < 99) {
        const auto& columns = column_sets[static_cast<size_t>(o) % 4];
        Tuple key;
        for (size_t k = 0; k < columns.size(); ++k) key.push_back(value(rng));
        std::vector<int64_t> got(rel.Probe(columns, key).begin(),
                                 rel.Probe(columns, key).end());
        ASSERT_EQ(got, oracle.Probe(columns, key)) << "step " << step;
      } else {
        rel.Clear();
        oracle.Clear();
      }
      ASSERT_EQ(rel.size(), oracle.size()) << "step " << step;
    }
    // Full sweep: identical contents in identical insertion order.
    for (int64_t i = 0; i < rel.size(); ++i) {
      ASSERT_EQ(rel.row(i), oracle.row(i)) << "row " << i;
    }
  }
}

TEST(RelationTest, VersionBumpsOnNewRowsAndClear) {
  Relation rel(2);
  const uint64_t v0 = rel.version();
  EXPECT_TRUE(rel.Insert({1, 2}));
  EXPECT_GT(rel.version(), v0);
  const uint64_t v1 = rel.version();
  EXPECT_FALSE(rel.Insert({1, 2}));  // duplicate: contents unchanged
  EXPECT_EQ(rel.version(), v1);
  rel.Clear();
  EXPECT_GT(rel.version(), v1);
}

TEST(RelationTest, CompactPostingsPreservesProbeResultsAndOrder) {
  // Interleave two key ranges so their posting chains fragment: rows of
  // each key land in blocks separated by the other keys' blocks.
  Relation rel(2);
  for (TermId i = 0; i < 4000; ++i) rel.Insert({i % 7, i});
  std::vector<std::vector<int64_t>> before(7);
  for (TermId k = 0; k < 7; ++k) {
    before[k].assign(rel.Probe({0}, {k}).begin(), rel.Probe({0}, {k}).end());
    ASSERT_FALSE(before[k].empty());
  }
  // Also fragment a second index over the same pool.
  Tuple key1 = {11};
  rel.ProbeEach({1}, key1.data(), [](int64_t) {});

  const int64_t pool_before = rel.telemetry().posting_blocks;
  Relation::CompactionStats stats = rel.CompactPostings();
  EXPECT_EQ(stats.blocks_before, pool_before);
  EXPECT_GT(stats.chains, 0);
  EXPECT_GT(stats.moved_blocks, 0);  // interleaving fragmented the chains
  EXPECT_LE(stats.blocks_after, stats.blocks_before);
  EXPECT_EQ(rel.telemetry().posting_blocks, stats.blocks_after);
  EXPECT_EQ(rel.telemetry().compactions, 1);

  for (TermId k = 0; k < 7; ++k) {
    std::vector<int64_t> after(rel.Probe({0}, {k}).begin(),
                               rel.Probe({0}, {k}).end());
    EXPECT_EQ(after, before[k]) << "key " << k;
  }
  // The relation stays fully usable: inserts extend compacted chains.
  EXPECT_TRUE(rel.Insert({3, 9999}));
  std::vector<int64_t> extended(rel.Probe({0}, {3}).begin(),
                                rel.Probe({0}, {3}).end());
  ASSERT_EQ(extended.size(), before[3].size() + 1);
  EXPECT_EQ(extended.back(), rel.num_rows() - 1);
}

/// Builds a PartitionedView over `rel` on `columns` single-threaded
/// (the parallel build is exercised through HashJoin).
std::unique_ptr<PartitionedView> BuildView(const Relation& rel,
                                           std::vector<int> columns,
                                           int partitions) {
  auto view =
      std::make_unique<PartitionedView>(std::move(columns), partitions);
  view->AssignRows(rel);
  for (int p = 0; p < view->num_partitions(); ++p) {
    view->BuildPartition(rel, p);
  }
  view->Finish(rel);
  return view;
}

TEST(PartitionedViewTest, PartitionsCoverEveryRowExactlyOnce) {
  Relation rel(2);
  for (TermId i = 0; i < 5000; ++i) rel.Insert({i % 211, i});
  auto view = BuildView(rel, {0}, 16);

  PartitionedView::SkewStats stats = view->skew();
  EXPECT_EQ(stats.partitions, 16);
  EXPECT_EQ(stats.total_rows, rel.num_rows());
  int64_t sum = 0;
  for (int p = 0; p < 16; ++p) sum += view->partition_rows(p);
  EXPECT_EQ(sum, rel.num_rows());
  EXPECT_GE(stats.max_rows, stats.min_rows);
  EXPECT_GE(stats.skew(), 1.0);
  // 211 uniform keys over 16 partitions: no partition should hog.
  EXPECT_LT(stats.skew(), 3.0);
}

TEST(PartitionedViewTest, HashedProbeMatchesGlobalIndex) {
  Relation rel(2);
  for (TermId i = 0; i < 4000; ++i) rel.Insert({i % 97, i % 501});
  auto view = BuildView(rel, {0}, 8);
  const std::vector<int> cols = {0};

  Relation::ProbeCounters counters;
  for (TermId k = 0; k < 120; ++k) {  // present and absent keys
    std::vector<int64_t> expected;
    rel.ProbeEach(cols, &k, [&](int64_t j) { expected.push_back(j); });
    const size_t h = PartitionedView::KeyHash(&k, 1);
    std::vector<int64_t> got;
    view->ProbeEachHashed(rel, view->PartitionOfHash(h), &k, h, &counters,
                          [&](int64_t j) { got.push_back(j); });
    ASSERT_EQ(got, expected) << "key " << k;
  }
  EXPECT_GT(counters.probes, 0);
}

TEST(PartitionedViewTest, SinglePartitionDegeneratesGracefully) {
  Relation rel(2);
  for (TermId i = 0; i < 300; ++i) rel.Insert({i % 7, i});
  auto view = BuildView(rel, {0}, 1);
  ASSERT_EQ(view->num_partitions(), 1);
  EXPECT_EQ(view->partition_rows(0), rel.num_rows());
  TermId key = 3;
  const size_t h = PartitionedView::KeyHash(&key, 1);
  EXPECT_EQ(view->PartitionOfHash(h), 0);
  Relation::ProbeCounters counters;
  int64_t matches = 0;
  view->ProbeEachHashed(rel, 0, &key, h, &counters,
                        [&](int64_t) { ++matches; });
  EXPECT_GT(matches, 0);
}

TEST(PartitionedViewTest, StaleAfterInsertAndCacheReplaces) {
  Relation rel(2);
  for (TermId i = 0; i < 100; ++i) rel.Insert({i, i});
  rel.CachePartitionedView(BuildView(rel, {0}, 4));
  std::shared_ptr<PartitionedView> cached = rel.FindPartitionedView({0}, 4);
  ASSERT_NE(cached, nullptr);
  EXPECT_FALSE(cached->stale(rel));
  EXPECT_EQ(rel.FindPartitionedView({0}, 8), nullptr);
  EXPECT_EQ(rel.FindPartitionedView({1}, 4), nullptr);

  rel.Insert({999, 999});
  EXPECT_TRUE(cached->stale(rel));

  // Re-caching the same (columns, partitions) replaces the slot; the
  // old view survives through our shared_ptr until we drop it.
  std::shared_ptr<PartitionedView> rebuilt =
      rel.CachePartitionedView(BuildView(rel, {0}, 4));
  EXPECT_FALSE(rebuilt->stale(rel));
  EXPECT_EQ(rel.FindPartitionedView({0}, 4), rebuilt);
  EXPECT_NE(rebuilt, cached);
  EXPECT_TRUE(cached->stale(rel));  // replaced view still usable
}

TEST(PartitionedViewTest, CacheKeepsSameVersionIncumbent) {
  Relation rel(2);
  for (TermId i = 0; i < 50; ++i) rel.Insert({i, i + 1});
  std::shared_ptr<PartitionedView> winner =
      rel.CachePartitionedView(BuildView(rel, {0}, 4));
  // A build-race loser attaching a same-version view gets the
  // incumbent back; its own copy is discarded.
  std::shared_ptr<PartitionedView> loser =
      rel.CachePartitionedView(BuildView(rel, {0}, 4));
  EXPECT_EQ(loser, winner);
}

TEST(PartitionedViewTest, LruEvictsLeastRecentlyUsedAtCapacity) {
  Relation rel(3);
  for (TermId i = 0; i < 200; ++i) rel.Insert({i % 5, i % 7, i});
  // Fill the cache to capacity with distinct partition counts
  // (powers of two are the only legal counts; 2^0..2^7 covers the
  // current capacity of 8).
  static_assert(Relation::kMaxPartitionedViews <= 8,
                "fill loop needs a key per slot");
  for (int k = 0; k < Relation::kMaxPartitionedViews; ++k) {
    rel.CachePartitionedView(BuildView(rel, {0}, 1 << k));
  }
  // Touch the oldest entry so it becomes most recent; the LRU slot is
  // now ({0}, 2).
  ASSERT_NE(rel.FindPartitionedView({0}, 1), nullptr);
  // One more distinct key evicts the least recently used entry — which
  // after the touch above is ({0}, 2), not ({0}, 1).
  std::shared_ptr<PartitionedView> held =
      rel.CachePartitionedView(BuildView(rel, {1}, 4));
  EXPECT_NE(held, nullptr);
  EXPECT_EQ(rel.FindPartitionedView({0}, 2), nullptr);  // evicted
  EXPECT_NE(rel.FindPartitionedView({0}, 1), nullptr);  // kept (touched)
  EXPECT_NE(rel.FindPartitionedView({1}, 4), nullptr);  // newly cached
}

}  // namespace
}  // namespace chainsplit
