#include "rel/relation.h"

#include <gtest/gtest.h>

namespace chainsplit {
namespace {

TEST(RelationTest, InsertDeduplicates) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert({1, 2}));
  EXPECT_FALSE(rel.Insert({1, 2}));
  EXPECT_TRUE(rel.Insert({2, 1}));
  EXPECT_EQ(rel.size(), 2);
  EXPECT_EQ(rel.insert_attempts(), 3);
}

TEST(RelationTest, ContainsAndRowAccess) {
  Relation rel(2);
  rel.Insert({1, 2});
  rel.Insert({3, 4});
  EXPECT_TRUE(rel.Contains({1, 2}));
  EXPECT_FALSE(rel.Contains({2, 1}));
  EXPECT_EQ(rel.row(0), (Tuple{1, 2}));
  EXPECT_EQ(rel.row(1), (Tuple{3, 4}));  // insertion order preserved
}

TEST(RelationTest, ProbeBuildsAndMaintainsIndex) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({1, 11});
  rel.Insert({2, 20});
  const auto& hits = rel.Probe({0}, {1});
  EXPECT_EQ(hits.size(), 2u);
  // Index maintained incrementally on later inserts.
  rel.Insert({1, 12});
  EXPECT_EQ(rel.Probe({0}, {1}).size(), 3u);
  EXPECT_TRUE(rel.Probe({0}, {99}).empty());
}

TEST(RelationTest, MultiColumnProbe) {
  Relation rel(3);
  rel.Insert({1, 2, 3});
  rel.Insert({1, 2, 4});
  rel.Insert({1, 3, 5});
  EXPECT_EQ(rel.Probe({0, 1}, {1, 2}).size(), 2u);
  EXPECT_EQ(rel.Probe({1, 2}, {2, 4}).size(), 1u);
}

TEST(RelationTest, SeveralIndexesCoexist) {
  Relation rel(2);
  for (TermId i = 0; i < 100; ++i) rel.Insert({i % 10, i});
  EXPECT_EQ(rel.Probe({0}, {3}).size(), 10u);
  EXPECT_EQ(rel.Probe({1}, {42}).size(), 1u);
  EXPECT_EQ(rel.Probe({0, 1}, {2, 42}).size(), 1u);
}

TEST(RelationTest, UnionWith) {
  Relation a(1);
  Relation b(1);
  a.Insert({1});
  a.Insert({2});
  b.Insert({2});
  b.Insert({3});
  EXPECT_EQ(a.UnionWith(b), 1);
  EXPECT_EQ(a.size(), 3);
}

TEST(RelationTest, ClearDropsTuplesAndIndexes) {
  Relation rel(2);
  rel.Insert({1, 2});
  rel.Probe({0}, {1});
  rel.Clear();
  EXPECT_TRUE(rel.empty());
  EXPECT_TRUE(rel.Probe({0}, {1}).empty());
  EXPECT_TRUE(rel.Insert({1, 2}));
}

TEST(RelationTest, ZeroArityRelation) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.size(), 1);
  EXPECT_TRUE(rel.Contains({}));
}

TEST(RelationTest, LargeRelationStaysConsistent) {
  Relation rel(2);
  for (TermId i = 0; i < 20000; ++i) rel.Insert({i / 100, i});
  EXPECT_EQ(rel.size(), 20000);
  EXPECT_EQ(rel.Probe({0}, {7}).size(), 100u);
}

}  // namespace
}  // namespace chainsplit
