// Trace span trees: nesting, attributes, early End, error-unwind
// closing via Finish, and the Chrome trace_event JSON rendering.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace chainsplit {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(TraceTest, RootSpanAndNesting) {
  Trace trace("?- tc(a, Y).");
  EXPECT_EQ(trace.num_spans(), 1);  // the root
  int outer = trace.BeginSpan("evaluate");
  int inner = trace.BeginSpan("parse");
  trace.EndSpan(inner);
  trace.EndSpan(outer);
  trace.Finish();
  EXPECT_EQ(trace.num_spans(), 3);
}

TEST(TraceTest, FinishClosesSpansLeftOpenByUnwind) {
  // An error return unwinds without EndSpan; Finish must close every
  // open span so the JSON never contains a dangling (end = -1) event.
  Trace trace("q");
  trace.BeginSpan("evaluate");
  trace.BeginSpan("fixpoint");
  trace.Finish();
  std::string json = trace.ToChromeJson();
  EXPECT_FALSE(Contains(json, "\"dur\":-1"));
  EXPECT_TRUE(Contains(json, "\"fixpoint\""));
}

TEST(TraceTest, FinishIsIdempotent) {
  Trace trace("q");
  trace.Finish();
  auto d1 = trace.duration();
  trace.Finish();
  EXPECT_EQ(trace.duration(), d1);
}

TEST(TraceTest, ChromeJsonShape) {
  Trace trace("?- path(a, Y).");
  int span = trace.BeginSpan("fixpoint_iteration");
  trace.SetAttr(span, "iteration", 2);
  trace.SetAttr(span, "delta_rows", int64_t{17});
  trace.SetAttr(span, "technique", "magic-sets");
  trace.EndSpan(span);
  trace.Finish();

  std::string json = trace.ToChromeJson();
  EXPECT_TRUE(Contains(json, "{\"traceEvents\":["));
  EXPECT_TRUE(Contains(json, "\"ph\":\"X\""));  // complete events
  EXPECT_TRUE(Contains(json, "\"name\":\"?- path(a, Y).\""));
  EXPECT_TRUE(Contains(json, "\"name\":\"fixpoint_iteration\""));
  EXPECT_TRUE(Contains(json, "\"iteration\":2"));
  EXPECT_TRUE(Contains(json, "\"delta_rows\":17"));
  EXPECT_TRUE(Contains(json, "\"technique\":\"magic-sets\""));
  // Every event carries timestamps and durations in microseconds.
  EXPECT_TRUE(Contains(json, "\"ts\":"));
  EXPECT_TRUE(Contains(json, "\"dur\":"));
}

TEST(TraceSpanTest, RaiiOpensAndCloses) {
  Trace trace("q");
  {
    TraceSpan span(&trace, "phase");
    span.Attr("rows", int64_t{3});
  }
  trace.Finish();
  std::string json = trace.ToChromeJson();
  EXPECT_TRUE(Contains(json, "\"phase\""));
  EXPECT_TRUE(Contains(json, "\"rows\":3"));
}

TEST(TraceSpanTest, NullTraceIsNoOp) {
  // The instrumentation sites pass a null Trace* when tracing is off;
  // every method must degrade to (at most) one branch.
  TraceSpan span(nullptr, "phase");
  span.Attr("rows", int64_t{3});
  span.Attr("mode", "shared");
  span.End();
  EXPECT_EQ(span.trace(), nullptr);
}

TEST(TraceSpanTest, EarlyEndStopsFurtherMutation) {
  Trace trace("q");
  {
    TraceSpan span(&trace, "phase");
    span.End();
    span.Attr("late", int64_t{1});  // after End: dropped
    span.End();                     // double End: harmless
  }
  trace.Finish();
  EXPECT_FALSE(Contains(trace.ToChromeJson(), "late"));
}

TEST(TraceSpanTest, SiblingsShareParent) {
  Trace trace("q");
  {
    TraceSpan a(&trace, "first");
  }
  {
    TraceSpan b(&trace, "second");
  }
  trace.Finish();
  std::string json = trace.ToChromeJson();
  EXPECT_TRUE(Contains(json, "\"first\""));
  EXPECT_TRUE(Contains(json, "\"second\""));
  EXPECT_EQ(trace.num_spans(), 3);
}

TEST(JsonEscapeTest, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
  // Other control characters become \u00XX escapes.
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace chainsplit
