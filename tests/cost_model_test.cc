#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "workload/family_gen.h"

namespace chainsplit {
namespace {

RelationStats MakeStats(int64_t cardinality, std::vector<int64_t> distinct) {
  RelationStats stats;
  stats.cardinality = cardinality;
  stats.distinct = std::move(distinct);
  return stats;
}

TEST(CostModelTest, ExpansionRatioBasics) {
  // parent(child, parent): each child has ~1 parent here.
  RelationStats parent = MakeStats(1000, {1000, 400});
  EXPECT_DOUBLE_EQ(EstimateJoinExpansion(parent, "bf"), 1.0);
  // same_country with 4 countries over 1000 persons: ~250 partners.
  RelationStats sc = MakeStats(250000, {1000, 1000});
  EXPECT_DOUBLE_EQ(EstimateJoinExpansion(sc, "bf"), 250.0);
  // No bound column: the full cardinality.
  EXPECT_DOUBLE_EQ(EstimateJoinExpansion(sc, "ff"), 250000.0);
  // Both bound: selective.
  EXPECT_DOUBLE_EQ(EstimateJoinExpansion(sc, "bb"), 0.25);
}

TEST(CostModelTest, EmptyRelationHasZeroRatio) {
  EXPECT_DOUBLE_EQ(EstimateJoinExpansion(MakeStats(0, {0, 0}), "bf"), 0.0);
}

TEST(CostModelTest, LinkageClassification) {
  CostModelOptions options;  // follow 2.0, split 8.0
  EXPECT_EQ(ClassifyLinkage(1.0, options), LinkageStrength::kStrong);
  EXPECT_EQ(ClassifyLinkage(2.0, options), LinkageStrength::kStrong);
  EXPECT_EQ(ClassifyLinkage(5.0, options), LinkageStrength::kBorderline);
  EXPECT_EQ(ClassifyLinkage(8.0, options), LinkageStrength::kWeak);
  EXPECT_EQ(ClassifyLinkage(1000.0, options), LinkageStrength::kWeak);
}

TEST(CostModelTest, QuantitativeAnalysisPrefersFollowWhenCheap) {
  CostModelOptions options;
  EXPECT_TRUE(QuantitativeFollowWins(1.0, 10.0, options));
  EXPECT_FALSE(QuantitativeFollowWins(6.0, 10.0, options));
}

TEST(CostModelTest, GateFollowsStrongCutsWeak) {
  Database db;
  FamilyOptions fam;
  fam.num_families = 2;
  fam.depth = 4;
  fam.fanout = 2;
  fam.num_countries = 2;  // weak: many same-country partners
  GenerateFamily(&db, fam);
  ASSERT_TRUE(ParseProgram(ScsgProgramSource(), &db.program()).ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());

  PropagationGate gate = MakeCostGate(&db);
  PredId parent = db.program().preds().Find("parent", 2).value();
  PredId sc = db.program().preds().Find("same_country", 2).value();
  Atom parent_atom{parent, {db.pool().MakeVariable("X"),
                            db.pool().MakeVariable("X1")}};
  Atom sc_atom{sc, {db.pool().MakeVariable("X1"),
                    db.pool().MakeVariable("Y1")}};
  EXPECT_TRUE(gate(parent_atom, "bf"));   // strong: ~1 parent per child
  EXPECT_FALSE(gate(sc_atom, "bf"));      // weak: persons/2 partners
  EXPECT_FALSE(gate(parent_atom, "ff"));  // never chase a full scan
}

TEST(CostModelTest, GateIsPermissiveOnEmptyRelations) {
  Database db;
  db.program().InternPred("maybe", 2);
  PropagationGate gate = MakeCostGate(&db);
  PredId maybe = db.program().preds().Find("maybe", 2).value();
  Atom atom{maybe,
            {db.pool().MakeSymbol("a"), db.pool().MakeVariable("Y")}};
  EXPECT_TRUE(gate(atom, "bf"));
}

TEST(CostModelTest, GateThresholdsAreConfigurable) {
  Database db;
  PredId r = db.program().InternPred("r", 2);
  // Fan-out exactly 4 per key.
  for (int k = 0; k < 5; ++k) {
    for (int i = 0; i < 4; ++i) {
      db.InsertFact(r, {db.pool().MakeInt(k), db.pool().MakeInt(100 + 4 * k + i)});
    }
  }
  Atom atom{r, {db.pool().MakeVariable("X"), db.pool().MakeVariable("Y")}};
  CostModelOptions lenient;
  lenient.follow_threshold = 10.0;
  lenient.split_threshold = 20.0;
  EXPECT_TRUE(MakeCostGate(&db, lenient)(atom, "bf"));
  CostModelOptions strict;
  strict.follow_threshold = 1.0;
  strict.split_threshold = 2.0;
  EXPECT_FALSE(MakeCostGate(&db, strict)(atom, "bf"));
}

// Estimator accuracy sweep: with uniform country assignment the
// estimated same_country expansion ratio tracks persons/countries.
class ExpansionAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(ExpansionAccuracy, TracksTrueFanOut) {
  int countries = GetParam();
  Database db;
  FamilyOptions fam;
  fam.num_families = 4;
  fam.depth = 4;
  fam.fanout = 2;
  fam.num_countries = countries;
  FamilyData data = GenerateFamily(&db, fam);
  PredId sc = db.program().preds().Find("same_country", 2).value();
  const RelationStats& stats = db.Stats(sc);
  double estimated = EstimateJoinExpansion(stats, "bf");
  double expected =
      static_cast<double>(data.num_persons) / static_cast<double>(countries);
  // Random assignment is uneven; allow 2x slack.
  EXPECT_GT(estimated, expected / 2.0);
  EXPECT_LT(estimated, expected * 2.0 + 2.0);
}

INSTANTIATE_TEST_SUITE_P(Countries, ExpansionAccuracy,
                         ::testing::Values(1, 2, 4, 8, 15));

}  // namespace
}  // namespace chainsplit
