#include "engine/seminaive.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "rel/ops.h"
#include "workload/graph_gen.h"

namespace chainsplit {
namespace {

class SemiNaiveTest : public ::testing::Test {
 protected:
  void Load(std::string_view text) {
    ASSERT_TRUE(ParseProgram(text, &db_.program()).ok());
    ASSERT_TRUE(db_.LoadProgramFacts().ok());
  }

  Status Run(const SemiNaiveOptions& options = {}) {
    return SemiNaiveEvaluate(&db_, db_.program().rules(), options, &stats_);
  }

  const Relation* Rel(std::string_view name, int arity) {
    auto pred = db_.program().preds().Find(name, arity);
    return pred.has_value() ? db_.GetRelation(*pred) : nullptr;
  }

  Database db_;
  SemiNaiveStats stats_;
};

TEST_F(SemiNaiveTest, NonRecursiveProjection) {
  Load(R"(
e(a, b). e(b, c).
p(Y) :- e(X, Y).
)");
  ASSERT_TRUE(Run().ok());
  const Relation* p = Rel("p", 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->size(), 2);
}

TEST_F(SemiNaiveTest, TransitiveClosureOnChain) {
  Load(R"(
e(n0, n1). e(n1, n2). e(n2, n3). e(n3, n4).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
)");
  ASSERT_TRUE(Run().ok());
  const Relation* tc = Rel("tc", 2);
  ASSERT_NE(tc, nullptr);
  EXPECT_EQ(tc->size(), 4 + 3 + 2 + 1);
  EXPECT_GT(stats_.iterations, 2);
}

TEST_F(SemiNaiveTest, TerminatesOnCyclicGraph) {
  Load(R"(
e(a, b). e(b, c). e(c, a).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
)");
  ASSERT_TRUE(Run().ok());
  EXPECT_EQ(Rel("tc", 2)->size(), 9);  // complete on the 3-cycle
}

TEST_F(SemiNaiveTest, SameGenerationFixpoint) {
  Load(R"(
parent(c1, p1). parent(c2, p1). parent(g1, c1). parent(g2, c2).
sibling(c1, c2). sibling(c2, c1).
sg(X, Y) :- sibling(X, Y).
sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
)");
  ASSERT_TRUE(Run().ok());
  const Relation* sg = Rel("sg", 2);
  ASSERT_NE(sg, nullptr);
  TermId g1 = db_.pool().MakeSymbol("g1");
  TermId g2 = db_.pool().MakeSymbol("g2");
  EXPECT_TRUE(sg->Contains({g1, g2}));
  EXPECT_TRUE(sg->Contains({g2, g1}));
  EXPECT_EQ(sg->size(), 4);
}

TEST_F(SemiNaiveTest, MutualRecursion) {
  Load(R"(
e(a, b). e(b, c). e(c, d).
even(X, X1) :- e(X, X1).
odd(X, Y) :- e(X, Z), even(Z, Y).
even2(X, Y) :- e(X, Z), odd(Z, Y).
)");
  ASSERT_TRUE(Run().ok());
  EXPECT_EQ(Rel("odd", 2)->size(), 2);
  EXPECT_EQ(Rel("even2", 2)->size(), 1);
}

TEST_F(SemiNaiveTest, BuiltinArithmeticInRecursion) {
  // to(N): numbers counting down from 5 to 0.
  Load(R"(
to(5).
to(M) :- to(N), N > 0, M is N - 1.
)");
  ASSERT_TRUE(Run().ok());
  EXPECT_EQ(Rel("to", 1)->size(), 6);
}

TEST_F(SemiNaiveTest, RunawayRecursionHitsIterationCap) {
  Load(R"(
up(0).
up(M) :- up(N), M is N + 1.
)");
  SemiNaiveOptions options;
  options.max_iterations = 50;
  Status status = Run(options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST_F(SemiNaiveTest, TupleCapTriggers) {
  Load(R"(
e(a, b). e(b, a).
p(X, Y) :- e(X, Y).
p(X, Y) :- p(X, Z), p(Z, Y).
)");
  SemiNaiveOptions options;
  options.max_tuples = 1;
  Status status = Run(options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST_F(SemiNaiveTest, NotFinitelyEvaluableProgramRejected) {
  Load(R"(
len(L, N) :- cons(X, T, L), len(T, M), N is M + 1.
len(L, 0) :- L = [].
)");
  // cons with all-free arguments in the recursive rule: no schedule.
  Status status = Run();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFinitelyEvaluable);
}

// Property: semi-naive equals naive evaluation on random graphs.
class SemiNaiveEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SemiNaiveEquivalence, MatchesNaiveOnRandomGraphs) {
  const char* rules = R"(
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
)";
  uint64_t seed = static_cast<uint64_t>(GetParam());

  Database fast;
  GraphOptions g;
  g.num_nodes = 30;
  g.num_edges = 60;
  g.seed = seed;
  GenerateGraph(&fast, "e", g);
  ASSERT_TRUE(ParseProgram(rules, &fast.program()).ok());
  SemiNaiveStats stats;
  ASSERT_TRUE(
      SemiNaiveEvaluate(&fast, fast.program().rules(), {}, &stats).ok());

  Database slow;
  GenerateGraph(&slow, "e", g);
  ASSERT_TRUE(ParseProgram(rules, &slow.program()).ok());
  SemiNaiveOptions naive;
  naive.naive = true;
  ASSERT_TRUE(
      SemiNaiveEvaluate(&slow, slow.program().rules(), naive, &stats).ok());

  auto tc_fast = fast.program().preds().Find("tc", 2);
  auto tc_slow = slow.program().preds().Find("tc", 2);
  ASSERT_TRUE(tc_fast.has_value());
  ASSERT_TRUE(tc_slow.has_value());
  const Relation* rf = fast.GetRelation(*tc_fast);
  const Relation* rs = slow.GetRelation(*tc_slow);
  ASSERT_NE(rf, nullptr);
  ASSERT_NE(rs, nullptr);
  // Symbols intern identically in both pools (same creation order), so
  // tuple-level comparison is meaningful.
  EXPECT_TRUE(SameTuples(*rf, *rs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiNaiveEquivalence,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace chainsplit
