#include "term/list_utils.h"

#include <gtest/gtest.h>

namespace chainsplit {
namespace {

TEST(ListUtilsTest, MakeAndDecomposeRoundTrip) {
  TermPool pool;
  std::vector<int64_t> values = {5, 7, 1};
  TermId list = MakeIntList(pool, values);
  EXPECT_EQ(pool.ToString(list), "[5, 7, 1]");
  auto back = ListInts(pool, list);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, values);
  EXPECT_EQ(ListLength(pool, list), 3);
  EXPECT_TRUE(IsProperList(pool, list));
}

TEST(ListUtilsTest, EmptyList) {
  TermPool pool;
  TermId list = MakeIntList(pool, {});
  EXPECT_TRUE(pool.IsNil(list));
  EXPECT_EQ(ListLength(pool, list), 0);
  auto elements = ListElements(pool, list);
  ASSERT_TRUE(elements.has_value());
  EXPECT_TRUE(elements->empty());
}

TEST(ListUtilsTest, ImproperListDetected) {
  TermPool pool;
  TermId improper = pool.MakeCons(pool.MakeInt(1), pool.MakeVariable("T"));
  EXPECT_EQ(ListLength(pool, improper), -1);
  EXPECT_FALSE(IsProperList(pool, improper));
  EXPECT_FALSE(ListElements(pool, improper).has_value());
  EXPECT_FALSE(ListInts(pool, improper).has_value());
}

TEST(ListUtilsTest, NonIntElementsRejectedByListInts) {
  TermPool pool;
  TermId elements[] = {pool.MakeSymbol("a")};
  TermId list = MakeList(pool, elements);
  EXPECT_FALSE(ListInts(pool, list).has_value());
  auto terms = ListElements(pool, list);
  ASSERT_TRUE(terms.has_value());
  EXPECT_EQ(terms->size(), 1u);
}

TEST(ListUtilsTest, MixedTermList) {
  TermPool pool;
  TermId elements[] = {pool.MakeSymbol("a"), pool.MakeInt(3)};
  TermId list = MakeList(pool, elements);
  EXPECT_EQ(pool.ToString(list), "[a, 3]");
  EXPECT_EQ(ListLength(pool, list), 2);
}

TEST(ListUtilsTest, LongListRoundTrip) {
  TermPool pool;
  std::vector<int64_t> values;
  for (int i = 0; i < 5000; ++i) values.push_back(i);
  TermId list = MakeIntList(pool, values);
  auto back = ListInts(pool, list);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, values);
}

}  // namespace
}  // namespace chainsplit
