// Integration tests pinning every derivation traced in the paper
// (Han, "Chain-Split Evaluation in Deductive Databases", ICDE 1992)
// to this library's evaluators. Each test cites the example it
// reproduces.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/planner.h"
#include "term/list_utils.h"
#include "workload/family_gen.h"
#include "workload/flight_gen.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

// Example 1.1: the sg recursion, rules (1.1)-(1.2). X and Y are same
// generation if siblings or their parents are.
TEST(PaperTraces, Example11SameGeneration) {
  Database db;
  auto result = RunProgram(&db, StrCat(R"(
parent(ann, carol).  parent(bob, carol).
parent(carol, eve).  parent(dan, eve).
sibling(carol, dan). sibling(dan, carol).
sibling(ann, bob).   sibling(bob, ann).
)",
                                       SgProgramSource(),
                                       "?- sg(ann, Y)."));
  ASSERT_TRUE(result.ok()) << result.status();
  // ann ~ bob (siblings) — and nothing else at ann's generation via
  // carol~dan (dan has no children).
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0][0], db.pool().MakeSymbol("bob"));
}

// Example 1.2: scsg — sg restricted to parents born in the same
// country (rules (1.5)-(1.7)). The compiled form is a SINGLE chain
// {parent, same_country, parent}; chain-split magic evaluates it
// without iterating on the pair relation.
TEST(PaperTraces, Example12SameCountrySameGeneration) {
  Database db;
  auto result = RunProgram(&db, StrCat(R"(
parent(ann, carol).  parent(bob, dan).
parent(carol, eve).  parent(dan, fay).
same_country(carol, dan). same_country(dan, carol).
same_country(carol, carol). same_country(dan, dan).
same_country(eve, fay). same_country(fay, eve).
same_country(eve, eve). same_country(fay, fay).
sibling(eve, fay). sibling(fay, eve).
)",
                                       ScsgProgramSource(),
                                       "?- scsg(ann, Y)."));
  ASSERT_TRUE(result.ok()) << result.status();
  // ann ~ bob: parents carol/dan same country, whose parents eve/fay
  // are same country siblings.
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0][0], db.pool().MakeSymbol("bob"));
}

// §2.2 / §3.2: the append recursion (rules (1.13)-(1.17)) under the
// bff adornment needs finiteness-based chain-split with buffering.
TEST(PaperTraces, AppendBffBufferedTrace) {
  Database db;
  auto result = RunProgram(
      &db, StrCat(AppendProgramSource(), "?- append([a, b], [c], W)."));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kBuffered);
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(db.pool().ToString(result->answers[0][0]), "[a, b, c]");
  // The forward portion buffered exactly the elements of the first
  // list (a and b) — rule (1.16)'s X1 values.
  EXPECT_EQ(result->buffered_stats.buffered_values, 2);
}

// Example 4.1: the isort nested linear recursion. The paper traces
// "? isort([5,7,1], Ys)": forward buffers 5, 7, 1; the exit returns
// []; insert(1,[],Zs'')=[1]; insert(7,[1],Zs)=[1,7];
// insert(5,[1,7],Ys)=[1,5,7].
TEST(PaperTraces, Example41IsortTrace) {
  Database db;
  auto result = RunProgram(
      &db, StrCat(IsortProgramSource(), "?- isort([5, 7, 1], Ys)."));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kBuffered);
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(db.pool().ToString(result->answers[0][0]), "[1, 5, 7]");
  // Buffered X values: 5, 7, 1 — one per level of the outer chain.
  EXPECT_EQ(result->buffered_stats.buffered_values, 3);
  EXPECT_EQ(result->buffered_stats.nodes, 4);  // [5,7,1],[7,1],[1],[]
}

// Example 4.1 inner recursion: insert^bbf itself is chain-split (the
// cons building the output is delayed).
TEST(PaperTraces, Example41InsertSteps) {
  Database db;
  ASSERT_TRUE(ParseProgram(IsortProgramSource(), &db.program()).ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  struct Step {
    std::vector<int64_t> element_then_list;
    std::vector<int64_t> expect;
  };
  // The paper's three insert calls.
  const std::vector<std::pair<std::pair<int64_t, std::vector<int64_t>>,
                              std::vector<int64_t>>>
      steps = {{{1, {}}, {1}}, {{7, {1}}, {1, 7}}, {{5, {1, 7}}, {1, 5, 7}}};
  PredId insert = db.program().preds().Find("insert", 3).value();
  for (const auto& [input, expect] : steps) {
    Query query;
    TermId zs = db.pool().MakeVariable("Zs");
    query.goals.push_back(Atom{insert,
                               {db.pool().MakeInt(input.first),
                                MakeIntList(db.pool(), input.second), zs}});
    auto result = EvaluateQuery(&db, query);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->answers.size(), 1u);
    auto ints = ListInts(db.pool(), result->answers[0][0]);
    ASSERT_TRUE(ints.has_value());
    EXPECT_EQ(*ints, expect);
  }
}

// Example 4.2: the qsort nonlinear recursion; the paper traces
// "? qsort([4,9,5], Ys)" to Ys = [4,5,9], including the partition
// sub-derivations partition([9,5],4) -> Littles=[], Bigs=[9,5].
TEST(PaperTraces, Example42QsortTrace) {
  Database db;
  ASSERT_TRUE(ParseProgram(QsortProgramSource(), &db.program()).ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());

  // The partition sub-derivation of (4.32)/(4.33).
  PredId partition = db.program().preds().Find("partition", 4).value();
  Query pquery;
  TermId ls = db.pool().MakeVariable("Ls");
  TermId bs = db.pool().MakeVariable("Bs");
  pquery.goals.push_back(
      Atom{partition,
           {MakeIntList(db.pool(), {{9, 5}}), db.pool().MakeInt(4), ls, bs}});
  auto presult = EvaluateQuery(&db, pquery);
  ASSERT_TRUE(presult.ok()) << presult.status();
  ASSERT_EQ(presult->answers.size(), 1u);
  EXPECT_EQ(db.pool().ToString(presult->answers[0][0]), "[]");
  EXPECT_EQ(db.pool().ToString(presult->answers[0][1]), "[9, 5]");

  // The full qsort trace.
  Query query;
  PredId qsort = db.program().preds().Find("qsort", 2).value();
  TermId ys = db.pool().MakeVariable("Ys");
  query.goals.push_back(
      Atom{qsort, {MakeIntList(db.pool(), {{4, 9, 5}}), ys}});
  auto result = EvaluateQuery(&db, query);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kTopDown);
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(db.pool().ToString(result->answers[0][0]), "[4, 5, 9]");
}

// §3.3: the travel recursion with pushed fare constraint. The paper's
// constraint set: departure montreal, arrival ottawa, fare =< 600.
TEST(PaperTraces, Section33TravelConstraintPushing) {
  Database db;
  auto result = RunProgram(&db, StrCat(TravelProgramSource(), R"(
flight(1, montreal, toronto, 250).
flight(2, toronto, ottawa, 200).
flight(3, montreal, ottawa, 650).
flight(4, toronto, winnipeg, 400).
flight(5, winnipeg, ottawa, 300).
?- travel(L, montreal, ottawa, F), F =< 600.
)"));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->technique, Technique::kPartial);
  // Under 600: only montreal->toronto->ottawa at 450. The 650 direct
  // flight and the 950 winnipeg route are filtered/pruned.
  ASSERT_EQ(result->answers.size(), 1u);
  auto flights = ListInts(db.pool(), result->answers[0][0]);
  ASSERT_TRUE(flights.has_value());
  EXPECT_EQ(*flights, (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(db.pool().int_value(result->answers[0][1]), 450);
}

// Cross-technique consistency on one dataset: magic (chain-following),
// chain-split magic, buffered/counting — all answer sg identically.
TEST(PaperTraces, TechniquesAgreeOnSg) {
  auto answers_with = [](std::optional<Technique> force) {
    Database db;
    FamilyOptions fam;
    fam.num_families = 2;
    fam.depth = 5;
    fam.fanout = 2;
    fam.materialize_same_country = false;
    FamilyData data = GenerateFamily(&db, fam);
    EXPECT_TRUE(ParseProgram(SgProgramSource(), &db.program()).ok());
    EXPECT_TRUE(db.LoadProgramFacts().ok());
    Query query;
    PredId sg = db.program().preds().Find("sg", 2).value();
    query.goals.push_back(
        Atom{sg, {data.query_person, db.pool().MakeVariable("Y")}});
    PlannerOptions options;
    options.force = force;
    auto result = EvaluateQuery(&db, query, options);
    EXPECT_TRUE(result.ok()) << result.status();
    std::vector<std::string> names;
    if (result.ok()) {
      for (const Tuple& row : result->answers) {
        names.push_back(db.pool().ToString(row[0]));
      }
    }
    std::sort(names.begin(), names.end());
    return names;
  };

  auto magic = answers_with(Technique::kMagicSets);
  auto buffered = answers_with(Technique::kBuffered);
  auto topdown = answers_with(Technique::kTopDown);
  EXPECT_FALSE(magic.empty());
  EXPECT_EQ(magic, buffered);
  EXPECT_EQ(magic, topdown);
}

// §1.1: chain-split turns an n-chain recursion into an (n+k)-chain
// evaluation. For scsg: the single compiled chain is evaluated as two
// chains. Check the plan report says so.
TEST(PaperTraces, ScsgPlanReportsSingleCompiledChain) {
  Database db;
  FamilyOptions fam;
  fam.num_countries = 1;
  FamilyData data = GenerateFamily(&db, fam);
  ASSERT_TRUE(ParseProgram(ScsgProgramSource(), &db.program()).ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  Query query;
  PredId scsg = db.program().preds().Find("scsg", 2).value();
  query.goals.push_back(
      Atom{scsg, {data.query_person, db.pool().MakeVariable("Y")}});
  PlannerOptions options;
  options.force = Technique::kBuffered;
  auto result = EvaluateQuery(&db, query, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->plan.find("1 chain generating path(s)"),
            std::string::npos)
      << result->plan;
  EXPECT_NE(result->plan.find("delayed"), std::string::npos);
}

}  // namespace
}  // namespace chainsplit
