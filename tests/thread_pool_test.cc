#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "rel/ops.h"
#include "rel/relation.h"

namespace chainsplit {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int64_t> sum{0};
  for (int i = 1; i <= 1000; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 1000 * 1001 / 2);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossWaves) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (wave + 1) * 20);
  }
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(3);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.ParallelFor(0, 10000, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRunsInlineBelowGrain) {
  ThreadPool pool(4);
  int64_t sum = 0;  // unsynchronized: must be safe when run inline
  pool.ParallelFor(0, 50, 1000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) sum += i;
  });
  EXPECT_EQ(sum, 49 * 50 / 2);
}

/// Regression test for the global-in_flight_ Wait() bug: a group's
/// Wait() must return once *its own* tasks are done, even while another
/// caller's task is still parked on the pool.
TEST(ThreadPoolTest, WorkGroupsWaitIndependently) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  ThreadPool::WorkGroup slow(&pool);
  std::atomic<bool> slow_done{false};
  slow.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    slow_done.store(true);
  });

  ThreadPool::WorkGroup fast(&pool);
  std::atomic<int> fast_count{0};
  for (int i = 0; i < 100; ++i) {
    fast.Submit([&fast_count] { fast_count.fetch_add(1); });
  }
  fast.Wait();  // would deadlock if Wait() counted the blocked task
  EXPECT_EQ(fast_count.load(), 100);
  EXPECT_FALSE(slow_done.load());

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  slow.Wait();
  EXPECT_TRUE(slow_done.load());
}

/// Concurrent ParallelFor callers (the two-service-queries scenario)
/// must each cover exactly their own range and return as soon as their
/// own chunks are done. Also the tsan target for the pool's queues.
TEST(ThreadPoolTest, ConcurrentParallelForCallersAreIndependent) {
  ThreadPool pool(4);
  constexpr int kCallers = 4;
  constexpr int kRounds = 20;
  constexpr int64_t kN = 2000;
  std::atomic<int64_t> bad_rounds{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &bad_rounds] {
      for (int r = 0; r < kRounds; ++r) {
        std::vector<int> hits(kN, 0);
        pool.ParallelFor(0, kN, 64, [&hits](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) ++hits[i];
        });
        // ParallelFor returned, so every chunk must have run exactly
        // once and its writes must be visible here.
        for (int64_t i = 0; i < kN; ++i) {
          if (hits[i] != 1) {
            bad_rounds.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(bad_rounds.load(), 0);
}

/// Affinity hints are soft: a backlog hinted at a blocked worker must
/// be stolen by the idle ones, and hints past size() wrap around.
TEST(ThreadPoolTest, IdleWorkersStealHintedBacklog) {
  ThreadPool pool(3);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  ThreadPool::WorkGroup group(&pool);
  group.Submit(
      [&] {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
      },
      /*affinity_hint=*/0);
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    // All hinted at the blocked worker (hint 3 wraps to worker 0).
    group.Submit([&done] { done.fetch_add(1); }, i % 2 == 0 ? 0 : 3);
  }
  // Progress must not depend on worker 0 waking up.
  while (done.load() < 64) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  group.Wait();
  EXPECT_EQ(done.load(), 64);
}

/// Regression test for the nested-submission deadlock: a task running
/// on a pool worker submits child tasks to the same pool and Wait()s
/// on them. With every worker occupied by such a parent, no worker
/// would ever be free to run a child — unless Wait() on a pool worker
/// helps by running queued tasks inline (thread_pool.cc,
/// WorkGroup::Wait). Saturates a 2-worker pool with parents at
/// submission depth 2 and requires completion.
TEST(ThreadPoolTest, NestedSubmissionAtSaturationCompletes) {
  constexpr int kWorkers = 2;
  ThreadPool pool(kWorkers);
  std::atomic<int> children_run{0};
  std::atomic<int> grandchildren_run{0};

  ThreadPool::WorkGroup parents(&pool);
  for (int i = 0; i < kWorkers; ++i) {  // one parent per worker
    parents.Submit([&] {
      // Depth 1: every worker is now inside a parent; children can
      // only run if Wait() executes them inline.
      ThreadPool::WorkGroup children(&pool);
      for (int c = 0; c < 8; ++c) {
        children.Submit([&] {
          // Depth 2: a child itself fans out and waits.
          ThreadPool::WorkGroup grand(&pool);
          for (int g = 0; g < 4; ++g) {
            grand.Submit([&] { grandchildren_run.fetch_add(1); });
          }
          grand.Wait();
          children_run.fetch_add(1);
        });
      }
      children.Wait();
    });
  }
  parents.Wait();
  EXPECT_EQ(children_run.load(), kWorkers * 8);
  EXPECT_EQ(grandchildren_run.load(), kWorkers * 8 * 4);
}

/// The inline-execution path must also hold when the nested submitter
/// mixes with unrelated outside work racing for the same workers.
TEST(ThreadPoolTest, NestedSubmissionInterleavesWithForeignTasks) {
  ThreadPool pool(2);
  std::atomic<int> nested_done{0};
  std::atomic<int> foreign_done{0};

  ThreadPool::WorkGroup outer(&pool);
  for (int i = 0; i < 4; ++i) {
    outer.Submit([&] {
      ThreadPool::WorkGroup inner(&pool);
      for (int c = 0; c < 16; ++c) {
        inner.Submit([&] { nested_done.fetch_add(1); });
      }
      inner.Wait();
    });
  }
  ThreadPool::WorkGroup foreign(&pool);
  for (int i = 0; i < 64; ++i) {
    foreign.Submit([&] { foreign_done.fetch_add(1); });
  }
  outer.Wait();
  foreign.Wait();
  EXPECT_EQ(nested_done.load(), 4 * 16);
  EXPECT_EQ(foreign_done.load(), 64);
}

/// The parallel HashJoin path must produce the same tuples in the same
/// row order as the sequential path, regardless of thread count. Runs
/// on an explicit 4-thread pool so the test is meaningful on any
/// hardware (the shared pool may have a single worker).
TEST(ThreadPoolTest, ParallelHashJoinIsDeterministic) {
  Relation left(2);
  Relation right(2);
  for (TermId i = 0; i < 5000; ++i) {
    left.Insert({i % 97, i});
    right.Insert({i % 89, i % 97});
  }
  const JoinSpec spec({{0, 1}});
  const std::vector<int> out_cols = {1, 2};

  Relation sequential(2);
  HashJoin(left, right, spec, out_cols, &sequential);  // below threshold

  const int64_t batches_before = ParallelJoinBatches();
  const int64_t old_threshold = SetParallelJoinMinRows(1);
  ThreadPool pool(4);
  Relation parallel(2);
  HashJoin(left, right, spec, out_cols, &parallel, &pool);
  SetParallelJoinMinRows(old_threshold);

  EXPECT_EQ(ParallelJoinBatches(), batches_before + 1);
  ASSERT_EQ(parallel.size(), sequential.size());
  ASSERT_GT(parallel.size(), 0);
  for (int64_t i = 0; i < parallel.size(); ++i) {
    ASSERT_EQ(parallel.row(i), sequential.row(i)) << "row " << i;
  }
}

TEST(ThreadPoolTest, ParallelHashJoinRepeatsIdentically) {
  Relation left(2);
  Relation right(2);
  for (TermId i = 0; i < 3000; ++i) {
    left.Insert({i % 31, i});
    right.Insert({i % 41, i % 31});
  }
  const JoinSpec spec({{0, 1}});
  const std::vector<int> out_cols = {0, 1, 2};

  const int64_t old_threshold = SetParallelJoinMinRows(1);
  ThreadPool pool(4);
  Relation first(3);
  HashJoin(left, right, spec, out_cols, &first, &pool);
  for (int rep = 0; rep < 3; ++rep) {
    Relation again(3);
    HashJoin(left, right, spec, out_cols, &again, &pool);
    ASSERT_EQ(again.size(), first.size());
    for (int64_t i = 0; i < again.size(); ++i) {
      ASSERT_EQ(again.row(i), first.row(i)) << "rep " << rep << " row " << i;
    }
  }
  SetParallelJoinMinRows(old_threshold);
}

}  // namespace
}  // namespace chainsplit
