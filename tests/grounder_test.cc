#include "engine/grounder.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "rel/catalog.h"

namespace chainsplit {
namespace {

class GrounderTest : public ::testing::Test {
 protected:
  // Parses one rule (last rule of `text`) into the db's program.
  Rule ParseRule(std::string_view text) {
    Status status = ParseProgram(text, &db_.program());
    EXPECT_TRUE(status.ok()) << status;
    return db_.program().rules().back();
  }

  void LoadFacts(std::string_view text) {
    ASSERT_TRUE(ParseProgram(text, &db_.program()).ok());
    ASSERT_TRUE(db_.LoadProgramFacts().ok());
  }

  RelationLookup Lookup() {
    return [this](PredId pred) { return db_.GetRelation(pred); };
  }

  Database db_;
};

TEST_F(GrounderTest, CompilesFlatRule) {
  Rule rule = ParseRule("p(X, Y) :- e(X, Z), e(Z, Y).");
  auto compiled = CompileRule(db_.program(), rule);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_EQ(compiled->slot_vars.size(), 3u);
  EXPECT_EQ(compiled->body.size(), 2u);
  EXPECT_EQ(compiled->order.size(), 2u);
}

TEST_F(GrounderTest, RejectsNonFlatRule) {
  Rule rule = ParseRule("p(X) :- q([X|Xs]).");
  auto compiled = CompileRule(db_.program(), rule);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GrounderTest, RejectsNonRangeRestrictedRule) {
  Rule rule = ParseRule("p(X, Y) :- e(X, X).");
  auto compiled = CompileRule(db_.program(), rule);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kNotFinitelyEvaluable);
}

TEST_F(GrounderTest, RejectsUnschedulableBuiltin) {
  // cons(X, Xs, L) with everything unbound can never run bottom-up.
  Rule rule = ParseRule("p(L) :- cons(X, Xs, L).");
  auto compiled = CompileRule(db_.program(), rule);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kNotFinitelyEvaluable);
}

TEST_F(GrounderTest, SchedulesComparisonAfterBindingLiteral) {
  Rule rule = ParseRule("p(X) :- X > Y, e(X, Y).");
  auto compiled = CompileRule(db_.program(), rule);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  // The relation literal (index 1) must run before the comparison (0).
  ASSERT_EQ(compiled->order.size(), 2u);
  EXPECT_EQ(compiled->order[0], 1);
  EXPECT_EQ(compiled->order[1], 0);
}

TEST_F(GrounderTest, EvaluatesJoin) {
  LoadFacts("e(a, b). e(b, c). e(c, d).");
  Rule rule = ParseRule("p(X, Y) :- e(X, Z), e(Z, Y).");
  auto compiled = CompileRule(db_.program(), rule);
  ASSERT_TRUE(compiled.ok());
  Relation out(2);
  EvalCounters counters;
  ASSERT_TRUE(EvaluateRule(db_.pool(), db_.program().preds(), *compiled,
                           Lookup(), -1, nullptr, &out, &counters)
                  .ok());
  EXPECT_EQ(out.size(), 2);  // (a,c), (b,d)
  TermId a = db_.pool().MakeSymbol("a");
  TermId c = db_.pool().MakeSymbol("c");
  EXPECT_TRUE(out.Contains({a, c}));
  EXPECT_GT(counters.derivations, 0);
}

TEST_F(GrounderTest, EvaluatesWithConstantsInBody) {
  LoadFacts("e(a, b). e(a, c). e(b, c).");
  Rule rule = ParseRule("p(Y) :- e(a, Y).");
  auto compiled = CompileRule(db_.program(), rule);
  ASSERT_TRUE(compiled.ok());
  Relation out(1);
  EvalCounters counters;
  ASSERT_TRUE(EvaluateRule(db_.pool(), db_.program().preds(), *compiled,
                           Lookup(), -1, nullptr, &out, &counters)
                  .ok());
  EXPECT_EQ(out.size(), 2);
}

TEST_F(GrounderTest, EvaluatesBuiltinFilterAndArithmetic) {
  LoadFacts("n(1). n(2). n(3). n(4).");
  Rule rule = ParseRule("big(Y) :- n(X), X > 2, Y is X + 10.");
  auto compiled = CompileRule(db_.program(), rule);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  Relation out(1);
  EvalCounters counters;
  ASSERT_TRUE(EvaluateRule(db_.pool(), db_.program().preds(), *compiled,
                           Lookup(), -1, nullptr, &out, &counters)
                  .ok());
  EXPECT_EQ(out.size(), 2);
  EXPECT_TRUE(out.Contains({db_.pool().MakeInt(13)}));
  EXPECT_TRUE(out.Contains({db_.pool().MakeInt(14)}));
}

TEST_F(GrounderTest, RepeatedVariableInLiteral) {
  LoadFacts("e(a, a). e(a, b). e(b, b).");
  Rule rule = ParseRule("loop(X) :- e(X, X).");
  auto compiled = CompileRule(db_.program(), rule);
  ASSERT_TRUE(compiled.ok());
  Relation out(1);
  EvalCounters counters;
  ASSERT_TRUE(EvaluateRule(db_.pool(), db_.program().preds(), *compiled,
                           Lookup(), -1, nullptr, &out, &counters)
                  .ok());
  EXPECT_EQ(out.size(), 2);  // a and b
}

TEST_F(GrounderTest, DeltaLiteralSubstitution) {
  LoadFacts("e(a, b). e(b, c).");
  Rule rule = ParseRule("p(X, Y) :- p0(X, Z), e(Z, Y).");
  auto compiled = CompileRule(db_.program(), rule, /*first_literal=*/0);
  ASSERT_TRUE(compiled.ok());
  EXPECT_EQ(compiled->order[0], 0);
  // Delta holds a single tuple; only joins through it are derived.
  Relation delta(2);
  TermId a = db_.pool().MakeSymbol("a");
  TermId b = db_.pool().MakeSymbol("b");
  TermId c = db_.pool().MakeSymbol("c");
  delta.Insert({a, b});
  Relation out(2);
  EvalCounters counters;
  ASSERT_TRUE(EvaluateRule(db_.pool(), db_.program().preds(), *compiled,
                           Lookup(), 0, &delta, &out, &counters)
                  .ok());
  EXPECT_EQ(out.size(), 1);
  EXPECT_TRUE(out.Contains({a, c}));
}

TEST_F(GrounderTest, DeltaMustBeRelationLiteral) {
  Rule rule = ParseRule("p(X) :- n(X), X > 2.");
  auto compiled = CompileRule(db_.program(), rule, /*first_literal=*/1);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(GrounderTest, EmptyRelationYieldsNothing) {
  Rule rule = ParseRule("p(X, Y) :- never(X, Y).");
  auto compiled = CompileRule(db_.program(), rule);
  ASSERT_TRUE(compiled.ok());
  Relation out(2);
  EvalCounters counters;
  ASSERT_TRUE(EvaluateRule(db_.pool(), db_.program().preds(), *compiled,
                           Lookup(), -1, nullptr, &out, &counters)
                  .ok());
  EXPECT_TRUE(out.empty());
}

TEST_F(GrounderTest, GroundCompoundConstantsInRelations) {
  LoadFacts("has(tom, pair(a, 1)).");
  Rule rule = ParseRule("p(X) :- has(X, pair(a, 1)).");
  auto compiled = CompileRule(db_.program(), rule);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  Relation out(1);
  EvalCounters counters;
  ASSERT_TRUE(EvaluateRule(db_.pool(), db_.program().preds(), *compiled,
                           Lookup(), -1, nullptr, &out, &counters)
                  .ok());
  EXPECT_EQ(out.size(), 1);
}

}  // namespace
}  // namespace chainsplit
