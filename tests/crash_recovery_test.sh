#!/usr/bin/env bash
# End-to-end crash recovery: every update acknowledged under
# --wal-sync=always must survive kill -9, and the restarted process
# must answer queries byte-for-byte identically to a run that was
# never interrupted.
#
# Usage: crash_recovery_test.sh /path/to/csdd
#
# Shape:
#   1. Reference run: program + :csv bulk load + a fact, clean :quit;
#      then a fresh process on the same --data-dir answers the probe
#      query — that output is the reference.
#   2. Crash run: the SAME updates fed through a fifo to a second data
#      dir. A marker query at the end doubles as an acknowledgment
#      barrier: once its answer appears on stdout, every preceding
#      update has been applied AND fsynced (wal-sync=always). Then
#      SIGKILL — no flush, no destructor, no goodbye.
#   3. The restarted process on the crashed dir must print the same
#      answers as the reference (recovery banners, which embed the
#      data-dir path, are stripped; answer lines never start with %).
set -u

CSDD="${1:?usage: crash_recovery_test.sh /path/to/csdd}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/cs_crash_XXXXXX")"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

printf 'a,b\nb,c\nc,d\n' > "$WORK/edges.csv"

PROGRAM='tc(X, Y) :- edge(X, Y).
tc(X, Y) :- edge(X, Z), tc(Z, Y).'
PROBE='?- tc(a, Y).'

# --- 1. Uninterrupted reference run.
printf '%s\n:csv edge/2 %s\nmarker(1).\n:quit\n' \
    "$PROGRAM" "$WORK/edges.csv" \
  | "$CSDD" --data-dir="$WORK/ref" --wal-sync=always > /dev/null \
  || fail "reference load run exited nonzero"
printf '%s\n?- marker(X).\n:quit\n' "$PROBE" \
  | "$CSDD" --data-dir="$WORK/ref" \
  | grep -v '^%' > "$WORK/ref.out" \
  || fail "reference probe run exited nonzero"
grep -q 'Y = d' "$WORK/ref.out" || fail "reference answers incomplete"

# --- 2. Crash run: same updates, fifo keeps stdin open, kill -9 after
#        the marker answer proves everything is acknowledged.
mkfifo "$WORK/in"
"$CSDD" --data-dir="$WORK/crash" --wal-sync=always \
    < "$WORK/in" > "$WORK/session.out" 2>&1 &
pid=$!
exec 3> "$WORK/in"
printf '%s\n:csv edge/2 %s\nmarker(1).\n?- marker(X).\n' \
    "$PROGRAM" "$WORK/edges.csv" >&3

acked=""
for _ in $(seq 1 150); do
  if grep -q 'X = 1' "$WORK/session.out"; then acked=yes; break; fi
  kill -0 "$pid" 2>/dev/null || fail "csdd died before acknowledging"
  sleep 0.1
done
[ -n "$acked" ] || fail "marker query never answered: $(cat "$WORK/session.out")"

kill -9 "$pid"
wait "$pid" 2>/dev/null
pid=""
exec 3>&-

# --- 3. Restart on the crashed dir: byte-for-byte identical answers.
printf '%s\n?- marker(X).\n:quit\n' "$PROBE" \
  | "$CSDD" --data-dir="$WORK/crash" \
  | grep -v '^%' > "$WORK/crash.out" \
  || fail "post-crash run exited nonzero"

if ! cmp -s "$WORK/ref.out" "$WORK/crash.out"; then
  echo "FAIL: post-crash answers diverge from uninterrupted run" >&2
  diff "$WORK/ref.out" "$WORK/crash.out" >&2
  exit 1
fi
echo "PASS: acknowledged updates survived kill -9"
