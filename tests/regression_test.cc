// Second-wave scenario tests: interactions between subsystems that the
// per-module suites don't reach.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/planner.h"
#include "engine/magic.h"
#include "engine/seminaive.h"
#include "term/list_utils.h"
#include "workload/list_gen.h"

namespace chainsplit {
namespace {

TEST(Regression, QueryJoiningTwoRecursiveGoals) {
  // The second IDB goal is evaluated against each answer of the first.
  Database db;
  auto result = RunProgram(&db, R"(
e(a, b). e(b, c). e(c, d).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
?- tc(a, Y), tc(Y, Z).
)");
  ASSERT_TRUE(result.ok()) << result.status();
  // (Y,Z) pairs: b->c, b->d, c->d.
  EXPECT_EQ(result->answers.size(), 3u);
}

TEST(Regression, TwoCallPatternsOfOnePredicate) {
  // p is called with adornment bf from the query and ff inside q: the
  // adornment worklist must process both patterns.
  Database db;
  ASSERT_TRUE(ParseProgram(R"(
e(a, b). e(b, c).
p(X, Y) :- e(X, Y).
p(X, Y) :- e(X, Z), p(Z, Y).
q(X, Y) :- p(X, Y), marked(Y).
marked(c).
)",
                           &db.program())
                  .ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  // Query q(X, Y) with X free: p is reached with pattern ff.
  auto result = RunProgram(&db, "?- q(X, c).");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 2u);  // a and b reach c
}

TEST(Regression, BottomUpConstructionInEvaluableConsMode) {
  // cons in bbf mode is finitely evaluable bottom-up: lists CAN be
  // built by semi-naive when the chain is bounded by the data.
  Database db;
  ASSERT_TRUE(ParseProgram(R"(
n(1). n(2).
single(L) :- n(X), cons(X, [], L).
pairlist(L) :- n(X), n(Y), single(T), cons(Y, T, M), cons(X, M, L).
)",
                           &db.program())
                  .ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  SemiNaiveStats stats;
  ASSERT_TRUE(
      SemiNaiveEvaluate(&db, db.program().rules(), {}, &stats).ok());
  const Relation* single =
      db.GetRelation(db.program().preds().Find("single", 1).value());
  EXPECT_EQ(single->size(), 2);
  const Relation* pairlist =
      db.GetRelation(db.program().preds().Find("pairlist", 1).value());
  // 2 x 2 x 2 three-element lists.
  EXPECT_EQ(pairlist->size(), 8);
  EXPECT_TRUE(pairlist->Contains({MakeIntList(db.pool(), {{1, 2, 1}})}));
}

TEST(Regression, DeepLinearRecursionTopDown) {
  // 2000-step SLD proof: the goal stack is heap-allocated, and the
  // C++ recursion in Prove stays within one frame per goal expansion.
  Database db;
  PredId e = db.program().InternPred("e", 2);
  for (int i = 0; i < 2000; ++i) {
    db.InsertFact(e, {db.pool().MakeInt(i), db.pool().MakeInt(i + 1)});
  }
  ASSERT_TRUE(ParseProgram(R"(
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
)",
                           &db.program())
                  .ok());
  Query query;
  PredId tc = db.program().preds().Find("tc", 2).value();
  query.goals.push_back(
      Atom{tc, {db.pool().MakeInt(0), db.pool().MakeInt(2000)}});
  PlannerOptions options;
  options.force = Technique::kTopDown;
  auto result = EvaluateQuery(&db, query, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 1u);  // provable, no variables
}

TEST(Regression, DeepChainBuffered) {
  // Note the inherent cost shape: the memoized evaluator computes the
  // answers of EVERY suffix call state, so a straight chain of length
  // n costs O(n^2) answer propagations — same as the magic-transformed
  // bottom-up program. Kept at n=1000 accordingly.
  Database db;
  PredId e = db.program().InternPred("e", 2);
  for (int i = 0; i < 1000; ++i) {
    db.InsertFact(e, {db.pool().MakeInt(i), db.pool().MakeInt(i + 1)});
  }
  ASSERT_TRUE(ParseProgram(R"(
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
)",
                           &db.program())
                  .ok());
  Query query;
  PredId tc = db.program().preds().Find("tc", 2).value();
  query.goals.push_back(
      Atom{tc, {db.pool().MakeInt(0), db.pool().MakeVariable("Y")}});
  PlannerOptions options;
  options.force = Technique::kBuffered;
  auto result = EvaluateQuery(&db, query, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 1000u);
}

TEST(Regression, BufferedWithMultipleExitRules) {
  Database db;
  ASSERT_TRUE(ParseProgram(R"(
e(a, b). e(b, c).
stop1(b). stop2(c).
reach(X, Y) :- stop1(X), Y = one.
reach(X, Y) :- stop2(X), Y = two.
reach(X, Y) :- e(X, X1), reach(X1, Y).
)",
                           &db.program())
                  .ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  Query query;
  PredId reach = db.program().preds().Find("reach", 2).value();
  query.goals.push_back(
      Atom{reach, {db.pool().MakeSymbol("a"), db.pool().MakeVariable("Y")}});
  PlannerOptions options;
  options.force = Technique::kBuffered;
  auto result = EvaluateQuery(&db, query, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 2u);  // one (via b) and two (via c)
}

TEST(Regression, MagicSeedAccumulationAcrossQueries) {
  // Two queries with different constants on one database: magic seeds
  // accumulate, answers stay per-query correct.
  Database db;
  ASSERT_TRUE(ParseProgram(R"(
e(a, b). e(b, c). e(x, y).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
?- tc(a, Y).
?- tc(x, Y).
)",
                           &db.program())
                  .ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  auto first = EvaluateQuery(&db, db.program().queries()[0]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->answers.size(), 2u);  // b, c
  auto second = EvaluateQuery(&db, db.program().queries()[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->answers.size(), 1u);  // y
  // And re-running the first query still gives the same answers.
  auto again = EvaluateQuery(&db, db.program().queries()[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->answers.size(), 2u);
}

TEST(Regression, ComparisonOnlyQuery) {
  Database db;
  auto result = RunProgram(&db, "n(1).\n?- 1 < 2.");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 1u);  // provable, zero variables
  Database db2;
  auto no = RunProgram(&db2, "n(1).\n?- 2 < 1.");
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->answers.empty());
}

TEST(Regression, AppendAllFreeTopDownEnumeratesWithCap) {
  // append(X, Y, Z) fully free is infinite; the solution cap bounds it.
  Database db;
  ASSERT_TRUE(ParseProgram(AppendProgramSource(), &db.program()).ok());
  ASSERT_TRUE(db.LoadProgramFacts().ok());
  Query query;
  PredId append = db.program().preds().Find("append", 3).value();
  query.goals.push_back(Atom{append,
                             {db.pool().MakeVariable("X"),
                              db.pool().MakeVariable("Y"),
                              db.pool().MakeVariable("Z")}});
  PlannerOptions options;
  options.force = Technique::kTopDown;
  options.topdown.max_solutions = 5;
  auto result = EvaluateQuery(&db, query, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 5u);
}

TEST(Regression, IsortOnPresortedAndReversedInput) {
  for (const char* input : {"[1, 2, 3, 4, 5]", "[5, 4, 3, 2, 1]",
                            "[2, 2, 2]", "[7]"}) {
    Database db;
    auto result = RunProgram(
        &db, StrCat(IsortProgramSource(), "?- isort(", input, ", Ys)."));
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->answers.size(), 1u) << input;
    auto ints = ListInts(db.pool(), result->answers[0][0]);
    ASSERT_TRUE(ints.has_value());
    EXPECT_TRUE(std::is_sorted(ints->begin(), ints->end())) << input;
  }
}

TEST(Regression, ScsgWithUnmaterializedSameCountryRule) {
  // same_country defined by a rule over country/2 instead of a
  // materialized EDB relation: scsg still evaluates (same_country is
  // then an IDB predicate handled by the adornment worklist).
  Database db;
  auto result = RunProgram(&db, R"(
parent(ann, carol). parent(bob, dan).
parent(carol, eve). parent(dan, fay).
country(carol, ca). country(dan, ca).
country(eve, ca).   country(fay, ca).
sibling(eve, fay).  sibling(fay, eve).
same_country(X, Y) :- country(X, C), country(Y, C).
scsg(X, Y) :- sibling(X, Y).
scsg(X, Y) :- parent(X, X1), same_country(X1, Y1), parent(Y, Y1),
              scsg(X1, Y1).
?- scsg(ann, Y).
)");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0][0], db.pool().MakeSymbol("bob"));
}

}  // namespace
}  // namespace chainsplit

namespace chainsplit {
namespace {

TEST(Regression, ExistenceCheckStopsEarly) {
  // Fully bound query over a big chain: the backward phase should stop
  // after the first proof instead of materializing every answer.
  Database db;
  PredId e = db.program().InternPred("e", 2);
  for (int i = 0; i < 500; ++i) {
    db.InsertFact(e, {db.pool().MakeInt(i), db.pool().MakeInt(i + 1)});
  }
  ASSERT_TRUE(ParseProgram(R"(
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
)",
                           &db.program())
                  .ok());
  Query query;
  PredId tc = db.program().preds().Find("tc", 2).value();
  query.goals.push_back(
      Atom{tc, {db.pool().MakeInt(0), db.pool().MakeInt(1)}});
  PlannerOptions options;
  options.force = Technique::kBuffered;
  auto result = EvaluateQuery(&db, query, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->answers.size(), 1u);
  EXPECT_NE(result->plan.find("existence check"), std::string::npos);
  // Without early stop, every suffix state propagates its full answer
  // set (~125k answers); with it, only the proof of tc(0,1) is needed.
  EXPECT_LT(result->buffered_stats.answers, 5000);
}

TEST(Regression, ExistenceCheckNegativeStillExhaustive) {
  Database db;
  auto result = RunProgram(&db, R"(
e(a, b). e(b, c).
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
?- tc(c, a).
)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->answers.empty());
}

}  // namespace
}  // namespace chainsplit
