#include "core/partial.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "core/rectify.h"
#include "term/list_utils.h"
#include "workload/flight_gen.h"

namespace chainsplit {
namespace {

class PartialTest : public ::testing::Test {
 protected:
  void LoadTravel(std::string_view facts) {
    ASSERT_TRUE(ParseProgram(TravelProgramSource(), &db_.program()).ok());
    ASSERT_TRUE(ParseProgram(facts, &db_.program()).ok());
    ASSERT_TRUE(db_.LoadProgramFacts().ok());
    rectified_ = RectifyRules(&db_.program());
    auto chain = CompileChain(db_.program(), rectified_,
                              db_.program().preds().Find("travel", 4).value());
    ASSERT_TRUE(chain.ok()) << chain.status();
    chain_ = std::make_unique<CompiledChain>(*chain);
  }

  Atom TravelQuery(std::string_view from, std::string_view to) {
    return Atom{chain_->pred,
                {db_.pool().MakeVariable("L"), db_.pool().MakeSymbol(from),
                 db_.pool().MakeSymbol(to), db_.pool().MakeVariable("F")}};
  }

  PathSplit Split(const Atom& query) {
    std::vector<TermId> bound;
    for (size_t i = 0; i < query.args.size(); ++i) {
      if (db_.pool().IsGround(query.args[i])) {
        db_.pool().CollectVariables(chain_->head().args[i], &bound);
      }
    }
    ChainPath whole = WholeBodyPath(db_.pool(), *chain_);
    auto split =
        SplitPathByFiniteness(db_.program(), *chain_, whole, bound);
    EXPECT_TRUE(split.ok()) << split.status();
    return *split;
  }

  Database db_;
  std::vector<Rule> rectified_;
  std::unique_ptr<CompiledChain> chain_;
  BufferedStats stats_;
};

TEST_F(PartialTest, DeducesAccumulatorForFarePosition) {
  LoadTravel(R"(
flight(1, montreal, toronto, 200).
flight(2, toronto, ottawa, 100).
)");
  Atom query = TravelQuery("montreal", "ottawa");
  PathSplit split = Split(query);
  auto constraint =
      DeduceAccumulatorConstraint(&db_, *chain_, split, 3, 600, false);
  ASSERT_TRUE(constraint.has_value());
  EXPECT_EQ(constraint->head_position, 3);
  EXPECT_EQ(constraint->limit, 600);
  EXPECT_NE(constraint->step_var, kNullTerm);
}

TEST_F(PartialTest, NoAccumulatorForListPosition) {
  LoadTravel("flight(1, montreal, ottawa, 100).");
  Atom query = TravelQuery("montreal", "ottawa");
  PathSplit split = Split(query);
  // Position 0 is the flight list: built by cons, not sum.
  EXPECT_FALSE(
      DeduceAccumulatorConstraint(&db_, *chain_, split, 0, 600, false)
          .has_value());
}

TEST_F(PartialTest, NegativeFaresBlockDeduction) {
  LoadTravel(R"(
flight(1, montreal, ottawa, -50).
flight(2, montreal, toronto, 100).
)");
  Atom query = TravelQuery("montreal", "ottawa");
  PathSplit split = Split(query);
  // A negative step breaks monotonicity: pruning would be unsound.
  EXPECT_FALSE(
      DeduceAccumulatorConstraint(&db_, *chain_, split, 3, 600, false)
          .has_value());
}

TEST_F(PartialTest, PaperStyleItinerary) {
  LoadTravel(R"(
flight(1, montreal, toronto, 200).
flight(2, toronto, ottawa, 150).
flight(3, montreal, ottawa, 700).
flight(4, toronto, vancouver, 500).
)");
  Atom query = TravelQuery("montreal", "ottawa");
  PathSplit split = Split(query);
  auto constraint =
      DeduceAccumulatorConstraint(&db_, *chain_, split, 3, 600, false);
  ASSERT_TRUE(constraint.has_value());
  auto answers = PartialEvaluate(&db_, *chain_, split, query, *constraint,
                                 {}, &stats_);
  ASSERT_TRUE(answers.ok()) << answers.status();
  // Only montreal->toronto->ottawa at 350 survives the 600 bound; the
  // direct 700 flight is pruned... note pruning bounds *partial* sums,
  // and the exit (direct flight) is not pruned by the accumulator, so
  // the 700 itinerary may appear here and must be filtered by the
  // final exact constraint. Check that the 350 one is present.
  bool found350 = false;
  for (const Tuple& t : *answers) {
    if (db_.pool().IsInt(t[3]) && db_.pool().int_value(t[3]) == 350) {
      found350 = true;
      auto flights = ListInts(db_.pool(), t[0]);
      ASSERT_TRUE(flights.has_value());
      EXPECT_EQ(*flights, (std::vector<int64_t>{1, 2}));
    }
  }
  EXPECT_TRUE(found350);
}

TEST_F(PartialTest, CyclicNetworkTerminatesOnlyWithPushing) {
  // montreal <-> toronto cycle: without pushing the answer set is
  // infinite (buffered hits its cap); with the fare bound pushed the
  // evaluation is finite (monotonicity-based termination, §3.3).
  LoadTravel(R"(
flight(1, montreal, toronto, 100).
flight(2, toronto, montreal, 100).
flight(3, toronto, ottawa, 100).
)");
  Atom query = TravelQuery("montreal", "ottawa");
  PathSplit split = Split(query);

  BufferedOptions small;
  small.max_answers = 500;
  BufferedChainEvaluator unbounded(&db_, *chain_, small);
  auto runaway = unbounded.Evaluate(query, split);
  ASSERT_FALSE(runaway.ok());
  EXPECT_EQ(runaway.status().code(), StatusCode::kResourceExhausted);

  auto constraint =
      DeduceAccumulatorConstraint(&db_, *chain_, split, 3, 600, false);
  ASSERT_TRUE(constraint.has_value());
  auto answers = PartialEvaluate(&db_, *chain_, split, query, *constraint,
                                 {}, &stats_);
  ASSERT_TRUE(answers.ok()) << answers.status();
  // Itineraries: [1,3]=200, [1,2,1,3]=400, [1,2,1,2,1,3]=600. All
  // partial sums stay within 600.
  EXPECT_EQ(answers->size(), 3u);
  for (const Tuple& t : *answers) {
    EXPECT_LE(db_.pool().int_value(t[3]), 600);
  }
}

TEST_F(PartialTest, PushedAnswersAreSubsetOfUnpushedOnAcyclicData) {
  FlightOptions options;
  options.num_cities = 12;
  options.num_flights = 30;
  options.seed = 11;
  FlightData data = GenerateFlights(&db_, options);
  // Make the network acyclic by redirecting: regenerate manually — use
  // generated data as-is; if cyclic, buffered may blow up, so cap
  // levels via the constraint itself: compare pushed vs post-filtered
  // pushed-with-huge-bound instead.
  ASSERT_TRUE(ParseProgram(TravelProgramSource(), &db_.program()).ok());
  rectified_ = RectifyRules(&db_.program());
  auto chain = CompileChain(db_.program(), rectified_,
                            db_.program().preds().Find("travel", 4).value());
  ASSERT_TRUE(chain.ok());
  chain_ = std::make_unique<CompiledChain>(*chain);

  Atom query{chain_->pred,
             {db_.pool().MakeVariable("L"), data.origin, data.destination,
              db_.pool().MakeVariable("F")}};
  PathSplit split = Split(query);
  auto tight =
      DeduceAccumulatorConstraint(&db_, *chain_, split, 3, 400, false);
  auto loose =
      DeduceAccumulatorConstraint(&db_, *chain_, split, 3, 800, false);
  ASSERT_TRUE(tight.has_value());
  ASSERT_TRUE(loose.has_value());

  BufferedStats tight_stats, loose_stats;
  auto tight_answers = PartialEvaluate(&db_, *chain_, split, query, *tight,
                                       {}, &tight_stats);
  auto loose_answers = PartialEvaluate(&db_, *chain_, split, query, *loose,
                                       {}, &loose_stats);
  ASSERT_TRUE(tight_answers.ok()) << tight_answers.status();
  ASSERT_TRUE(loose_answers.ok()) << loose_answers.status();
  // Anything fully under the tight bound is also under the loose one.
  for (const Tuple& t : *tight_answers) {
    if (db_.pool().int_value(t[3]) <= 400) {
      EXPECT_NE(std::find(loose_answers->begin(), loose_answers->end(), t),
                loose_answers->end());
    }
  }
  // Tighter bound explores no more states than the loose one.
  EXPECT_LE(tight_stats.nodes, loose_stats.nodes);
}

}  // namespace
}  // namespace chainsplit
