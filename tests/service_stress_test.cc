// Thread-sanitizer stress for the shared-lock evaluation path:
// concurrent uncached queries (each parsing, interning, lazily
// building indexes and evaluating through its own overlay) racing a
// writer that keeps inserting fresh facts with brand-new symbols.
// Run under the tsan preset (label tier1-tsan) to check the interner,
// the lazy index publication and the lock protocol; under the default
// preset it is a plain correctness smoke test.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/strings.h"
#include "service/query_service.h"

namespace chainsplit {
namespace {

constexpr const char* kRules =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
    "rtc(X, Y) :- edge(Y, X).\n"
    "rtc(X, Y) :- edge(Z, X), rtc(Z, Y).\n";

TEST(ServiceStressTest, ConcurrentUncachedReadersVsFactWriter) {
  QueryService service;
  std::string seed = kRules;
  for (int i = 0; i < 30; ++i) {
    seed += StrCat("edge(a", i, ", a", i + 1, ").\n");
  }
  UpdateResponse seeded = service.Update(seed);
  ASSERT_TRUE(seeded.status.ok()) << seeded.status;

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 40;
  constexpr int kWrites = 60;

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);

  // Readers: uncached bypass queries through the overlay path, probing
  // both directions so different index columns get built lazily — and
  // concurrently — on the same base relations.
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&service, &failed, r] {
      RequestOptions bypass;
      bypass.bypass_cache = true;
      for (int i = 0; i < kQueriesPerReader; ++i) {
        const std::string text =
            (i % 2 == 0) ? StrCat("?- tc(a", (r * 7 + i) % 30, ", Y).")
                         : StrCat("?- rtc(a", (r * 5 + i) % 30 + 1, ", Y).");
        QueryResponse response = service.Query(text, bypass);
        if (!response.status.ok() || response.rows.empty()) {
          failed.store(true);
        }
      }
    });
  }

  // Writer: keeps extending the chain with fresh facts whose node
  // names are brand-new symbols, exercising the interner against the
  // readers' concurrent parses.
  threads.emplace_back([&service, &failed] {
    for (int i = 0; i < kWrites; ++i) {
      UpdateResponse update =
          service.Update(StrCat("edge(w", i, ", w", i + 1, ").\n"));
      if (!update.status.ok() || update.new_facts != 1) failed.store(true);
    }
  });

  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shared_evals, kReaders * kQueriesPerReader);
  EXPECT_EQ(stats.updates, 1 + kWrites);

  // Every fact the writer inserted must be query-visible afterwards.
  RequestOptions bypass;
  bypass.bypass_cache = true;
  QueryResponse chain = service.Query("?- tc(w0, Y).", bypass);
  ASSERT_TRUE(chain.status.ok()) << chain.status;
  EXPECT_EQ(chain.rows.size(), static_cast<size_t>(kWrites));
}

TEST(ServiceStressTest, ConcurrentMixedCachedAndUncached) {
  // Cached hits, uncached overlay evaluations and exclusive-baseline
  // evaluations interleaving on the same service.
  QueryService service;
  std::string seed = kRules;
  for (int i = 0; i < 20; ++i) {
    seed += StrCat("edge(b", i, ", b", i + 1, ").\n");
  }
  UpdateResponse seeded = service.Update(seed);
  ASSERT_TRUE(seeded.status.ok()) << seeded.status;

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&service, &failed, t] {
      for (int i = 0; i < 30; ++i) {
        RequestOptions request;
        if (t % 2 == 0) request.bypass_cache = true;
        if (t == 3) request.force_exclusive = true;
        QueryResponse response =
            service.Query(StrCat("?- tc(b", i % 20, ", Y)."), request);
        if (!response.status.ok()) failed.store(true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace chainsplit
