// MetricsRegistry under contention (tier1-tsan): many writer threads
// hammering sharded counters and histograms while a reader scrapes
// concurrently. Asserts no update is ever lost (exact final totals)
// and that reader-observed totals are monotone.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace chainsplit {
namespace {

TEST(MetricsStressTest, ConcurrentCountersLoseNoUpdates) {
  constexpr int kWriters = 8;
  constexpr int kIncsPerWriter = 50000;

  MetricsRegistry registry;
  Counter* counter = registry.AddCounter("stress_total", "stress counter");
  Histogram* histogram = registry.AddHistogram("stress_us", "stress latency");

  std::atomic<bool> stop{false};
  // Reader: scrape while the writers run; every observed counter total
  // must be monotone non-decreasing (Value may miss in-flight relaxed
  // increments but can never go backwards or invent updates).
  std::thread reader([&] {
    int64_t last_counter = 0;
    int64_t last_hist_count = 0;
    while (!stop.load(std::memory_order_acquire)) {
      int64_t v = counter->Value();
      EXPECT_GE(v, last_counter);
      last_counter = v;
      Histogram::Snapshot snap = histogram->Read();
      EXPECT_GE(snap.count, last_hist_count);
      last_hist_count = snap.count;
      // Bucket totals and count are summed from the same shards; a
      // torn read may lag, but the invariant count == sum(buckets)
      // holds by construction of Read().
      int64_t bucket_sum = 0;
      for (int b = 0; b < Histogram::kBuckets; ++b) {
        bucket_sum += snap.buckets[b];
      }
      EXPECT_EQ(snap.count, bucket_sum);
      // Exercise the full render path under contention too.
      std::string text = registry.RenderPrometheus();
      EXPECT_NE(text.find("stress_total"), std::string::npos);
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kIncsPerWriter; ++i) {
        counter->Inc();
        histogram->Record((w * kIncsPerWriter + i) % 2048);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // After the joins every increment must be visible: exact totals.
  EXPECT_EQ(counter->Value(), int64_t{kWriters} * kIncsPerWriter);
  Histogram::Snapshot snap = histogram->Read();
  EXPECT_EQ(snap.count, int64_t{kWriters} * kIncsPerWriter);
}

TEST(MetricsStressTest, ConcurrentRegistrationAndCallbacks) {
  // Subsystems register (idempotently) and scrape from different
  // threads; the TCP server adds/removes callback series while the
  // session scrapes. None of this may race.
  constexpr int kThreads = 6;
  constexpr int kRounds = 500;

  MetricsRegistry registry;
  std::atomic<int64_t> external{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) {
        if (t % 3 == 0) {
          // Idempotent re-registration returns the shared handle.
          registry.AddCounter("shared_total", "help")->Inc();
        } else if (t % 3 == 1) {
          uint64_t id = registry.AddCallback(
              "external_gauge", "help", MetricType::kGauge, {},
              [&external] { return static_cast<double>(external.load()); });
          external.fetch_add(1, std::memory_order_relaxed);
          registry.RemoveCallback(id);
        } else {
          registry.Snapshot();
          registry.CounterFamilyTotal("shared_total");
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_DOUBLE_EQ(registry.CounterFamilyTotal("shared_total"),
                   static_cast<double>(kThreads / 3 * kRounds));
}

}  // namespace
}  // namespace chainsplit
