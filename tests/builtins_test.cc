#include "engine/builtins.h"

#include <gtest/gtest.h>

#include "ast/builtin_names.h"
#include "term/list_utils.h"

namespace chainsplit {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  PredId Pred(std::string_view name, int arity) {
    return preds_.Intern(name, arity);
  }

  // Evaluates builtin `name` on `args`; returns success flag, exposes
  // bindings via subst_.
  bool Eval(std::string_view name, std::vector<TermId> args) {
    PredId pred = Pred(name, static_cast<int>(args.size()));
    bool ok = false;
    status_ = EvalBuiltin(pool_, preds_, pred, args, &subst_, &ok);
    return status_.ok() && ok;
  }

  TermPool pool_;
  PredicateTable preds_;
  Substitution subst_;
  Status status_;
};

TEST_F(BuiltinsTest, ClassifiesBuiltins) {
  EXPECT_EQ(GetBuiltinKind(preds_, Pred("<", 2)), BuiltinKind::kLt);
  EXPECT_EQ(GetBuiltinKind(preds_, Pred("=<", 2)), BuiltinKind::kLe);
  EXPECT_EQ(GetBuiltinKind(preds_, Pred("sum", 3)), BuiltinKind::kSum);
  EXPECT_EQ(GetBuiltinKind(preds_, Pred("cons", 3)), BuiltinKind::kCons);
  EXPECT_EQ(GetBuiltinKind(preds_, Pred("$mk_pair", 3)),
            BuiltinKind::kMkCompound);
  EXPECT_EQ(GetBuiltinKind(preds_, Pred("parent", 2)), BuiltinKind::kNone);
  // sum/2 is not the arithmetic builtin.
  EXPECT_EQ(GetBuiltinKind(preds_, Pred("sum", 2)), BuiltinKind::kNone);
}

TEST_F(BuiltinsTest, ComparisonModes) {
  EXPECT_TRUE(BuiltinModeEvaluable(BuiltinKind::kLt, {true, true}));
  EXPECT_FALSE(BuiltinModeEvaluable(BuiltinKind::kLt, {true, false}));
  EXPECT_TRUE(BuiltinModeEvaluable(BuiltinKind::kSum, {true, true, false}));
  EXPECT_TRUE(BuiltinModeEvaluable(BuiltinKind::kSum, {true, false, true}));
  EXPECT_FALSE(BuiltinModeEvaluable(BuiltinKind::kSum, {true, false, false}));
  EXPECT_TRUE(BuiltinModeEvaluable(BuiltinKind::kCons, {true, true, false}));
  EXPECT_TRUE(BuiltinModeEvaluable(BuiltinKind::kCons, {false, false, true}));
  EXPECT_FALSE(
      BuiltinModeEvaluable(BuiltinKind::kCons, {true, false, false}));
}

TEST_F(BuiltinsTest, ComparisonsEvaluate) {
  EXPECT_TRUE(Eval("<", {pool_.MakeInt(1), pool_.MakeInt(2)}));
  EXPECT_FALSE(Eval("<", {pool_.MakeInt(2), pool_.MakeInt(2)}));
  EXPECT_TRUE(Eval("=<", {pool_.MakeInt(2), pool_.MakeInt(2)}));
  EXPECT_TRUE(Eval(">", {pool_.MakeInt(3), pool_.MakeInt(2)}));
  EXPECT_TRUE(Eval(">=", {pool_.MakeInt(3), pool_.MakeInt(3)}));
}

TEST_F(BuiltinsTest, ComparisonOnSymbolsFailsCleanly) {
  EXPECT_FALSE(Eval("<", {pool_.MakeSymbol("a"), pool_.MakeInt(2)}));
  EXPECT_TRUE(status_.ok());  // failure, not error
}

TEST_F(BuiltinsTest, ComparisonOnUnboundVarIsNotEvaluable) {
  EXPECT_FALSE(Eval("<", {pool_.MakeVariable("X"), pool_.MakeInt(2)}));
  EXPECT_EQ(status_.code(), StatusCode::kNotFinitelyEvaluable);
}

TEST_F(BuiltinsTest, EqualityUnifies) {
  TermId x = pool_.MakeVariable("X");
  EXPECT_TRUE(Eval("=", {x, pool_.MakeInt(7)}));
  EXPECT_EQ(subst_.Resolve(x, pool_), pool_.MakeInt(7));
}

TEST_F(BuiltinsTest, DisequalityNeedsGroundArgs) {
  EXPECT_TRUE(Eval("\\=", {pool_.MakeInt(1), pool_.MakeInt(2)}));
  EXPECT_FALSE(Eval("\\=", {pool_.MakeInt(1), pool_.MakeInt(1)}));
  EXPECT_FALSE(Eval("\\=", {pool_.MakeVariable("Z"), pool_.MakeInt(1)}));
  EXPECT_EQ(status_.code(), StatusCode::kNotFinitelyEvaluable);
}

TEST_F(BuiltinsTest, SumAllThreeModes) {
  TermId z = pool_.MakeVariable("Z");
  EXPECT_TRUE(Eval("sum", {pool_.MakeInt(2), pool_.MakeInt(3), z}));
  EXPECT_EQ(subst_.Resolve(z, pool_), pool_.MakeInt(5));
  subst_.clear();

  TermId y = pool_.MakeVariable("Y");
  EXPECT_TRUE(Eval("sum", {pool_.MakeInt(2), y, pool_.MakeInt(5)}));
  EXPECT_EQ(subst_.Resolve(y, pool_), pool_.MakeInt(3));
  subst_.clear();

  TermId x = pool_.MakeVariable("X");
  EXPECT_TRUE(Eval("sum", {x, pool_.MakeInt(3), pool_.MakeInt(5)}));
  EXPECT_EQ(subst_.Resolve(x, pool_), pool_.MakeInt(2));
}

TEST_F(BuiltinsTest, SumChecksConsistency) {
  EXPECT_FALSE(
      Eval("sum", {pool_.MakeInt(2), pool_.MakeInt(3), pool_.MakeInt(6)}));
  EXPECT_TRUE(status_.ok());
}

TEST_F(BuiltinsTest, SumUnderboundIsNotEvaluable) {
  EXPECT_FALSE(Eval("sum", {pool_.MakeInt(2), pool_.MakeVariable("Y"),
                            pool_.MakeVariable("Z")}));
  EXPECT_EQ(status_.code(), StatusCode::kNotFinitelyEvaluable);
}

TEST_F(BuiltinsTest, TimesHandlesDivisibility) {
  TermId y = pool_.MakeVariable("Y");
  EXPECT_TRUE(Eval("times", {pool_.MakeInt(3), y, pool_.MakeInt(12)}));
  EXPECT_EQ(subst_.Resolve(y, pool_), pool_.MakeInt(4));
  subst_.clear();
  EXPECT_FALSE(Eval("times", {pool_.MakeInt(5), y, pool_.MakeInt(12)}));
  EXPECT_TRUE(status_.ok());  // 12 not divisible by 5: fails, no error
}

TEST_F(BuiltinsTest, ConsConstructs) {
  TermId l = pool_.MakeVariable("L");
  EXPECT_TRUE(Eval("cons", {pool_.MakeInt(1), pool_.Nil(), l}));
  auto ints = ListInts(pool_, subst_.Resolve(l, pool_));
  ASSERT_TRUE(ints.has_value());
  EXPECT_EQ(*ints, (std::vector<int64_t>{1}));
}

TEST_F(BuiltinsTest, ConsDecomposes) {
  TermId h = pool_.MakeVariable("H");
  TermId t = pool_.MakeVariable("T");
  TermId list = MakeIntList(pool_, {{5, 7, 1}});
  EXPECT_TRUE(Eval("cons", {h, t, list}));
  EXPECT_EQ(subst_.Resolve(h, pool_), pool_.MakeInt(5));
  auto rest = ListInts(pool_, subst_.Resolve(t, pool_));
  ASSERT_TRUE(rest.has_value());
  EXPECT_EQ(*rest, (std::vector<int64_t>{7, 1}));
}

TEST_F(BuiltinsTest, ConsOnNilFails) {
  EXPECT_FALSE(Eval("cons", {pool_.MakeVariable("H"),
                             pool_.MakeVariable("T"), pool_.Nil()}));
  EXPECT_TRUE(status_.ok());
}

TEST_F(BuiltinsTest, ConsBuildsOpenListForTopDown) {
  // cons with an unbound tail builds a partial list: needed by SLD.
  TermId t = pool_.MakeVariable("T");
  TermId l = pool_.MakeVariable("L");
  EXPECT_TRUE(Eval("cons", {pool_.MakeInt(1), t, l}));
  TermId built = subst_.Resolve(l, pool_);
  EXPECT_TRUE(pool_.IsCons(built));
  EXPECT_FALSE(pool_.IsGround(built));
}

TEST_F(BuiltinsTest, MkCompoundConstructsAndDecomposes) {
  TermId v = pool_.MakeVariable("V");
  EXPECT_TRUE(
      Eval("$mk_pair", {pool_.MakeSymbol("a"), pool_.MakeInt(1), v}));
  TermId built = subst_.Resolve(v, pool_);
  EXPECT_EQ(pool_.ToString(built), "pair(a, 1)");
  subst_.clear();

  TermId x = pool_.MakeVariable("X");
  TermId y = pool_.MakeVariable("Y");
  EXPECT_TRUE(Eval("$mk_pair", {x, y, built}));
  EXPECT_EQ(subst_.Resolve(x, pool_), pool_.MakeSymbol("a"));
  EXPECT_EQ(subst_.Resolve(y, pool_), pool_.MakeInt(1));
}

TEST_F(BuiltinsTest, MkCompoundFunctorMismatchFails) {
  TermId args[] = {pool_.MakeInt(1)};
  TermId other = pool_.MakeCompound("triple", args);
  EXPECT_FALSE(Eval("$mk_pair", {pool_.MakeVariable("X"),
                                 pool_.MakeVariable("Y"), other}));
  EXPECT_TRUE(status_.ok());
}

}  // namespace
}  // namespace chainsplit
