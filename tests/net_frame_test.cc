// LineFramer: the byte-stream-to-request-line layer shared by both
// TCP front ends. CRLF handling, frames split across recv boundaries,
// pipelined frames in one segment, empty lines, oversize rejection.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace chainsplit {
namespace {

using Result = LineFramer::Result;

/// Feeds `data` in one Append and drains every complete line.
std::vector<std::string> DrainAll(LineFramer* framer,
                                  const std::string& data) {
  framer->Append(data.data(), data.size());
  std::vector<std::string> lines;
  std::string line;
  while (framer->Next(&line) == Result::kLine) lines.push_back(line);
  return lines;
}

TEST(LineFramerTest, SingleLine) {
  LineFramer framer;
  EXPECT_EQ(DrainAll(&framer, "?- p(X).\n"),
            (std::vector<std::string>{"?- p(X)."}));
  std::string line;
  EXPECT_EQ(framer.Next(&line), Result::kNeedMore);
  EXPECT_EQ(framer.buffered_bytes(), 0u);
}

TEST(LineFramerTest, StripsCarriageReturn) {
  LineFramer framer;
  EXPECT_EQ(DrainAll(&framer, "p(a).\r\nq(b).\r\n"),
            (std::vector<std::string>{"p(a).", "q(b)."}));
}

TEST(LineFramerTest, CarriageReturnOnlyInsideLineSurvives) {
  LineFramer framer;
  // Only the terminator's \r is protocol framing; interior bytes pass
  // through untouched.
  EXPECT_EQ(DrainAll(&framer, "a\rb\n"), (std::vector<std::string>{"a\rb"}));
}

TEST(LineFramerTest, FrameSplitAcrossArbitraryBoundaries) {
  const std::string stream = "?- tc(a,\r\nY).\n\np(b).\n";
  const std::vector<std::string> expected{"?- tc(a,", "Y).", "", "p(b)."};
  // Every split position, including byte-by-byte, yields identical
  // framing.
  for (size_t split = 0; split <= stream.size(); ++split) {
    LineFramer framer;
    std::vector<std::string> lines;
    std::string line;
    framer.Append(stream.data(), split);
    while (framer.Next(&line) == Result::kLine) lines.push_back(line);
    framer.Append(stream.data() + split, stream.size() - split);
    while (framer.Next(&line) == Result::kLine) lines.push_back(line);
    EXPECT_EQ(lines, expected) << "split at " << split;
  }
}

TEST(LineFramerTest, ManyPipelinedFramesInOneSegment) {
  LineFramer framer;
  std::string burst;
  for (int i = 0; i < 500; ++i) burst += "?- p(X).\n";
  EXPECT_EQ(DrainAll(&framer, burst).size(), 500u);
  EXPECT_EQ(framer.buffered_bytes(), 0u);
}

TEST(LineFramerTest, EmptyLinesAreLines) {
  LineFramer framer;
  EXPECT_EQ(DrainAll(&framer, "\n\r\n\n"),
            (std::vector<std::string>{"", "", ""}));
}

TEST(LineFramerTest, OversizeUnterminatedLineRejected) {
  LineFramer framer(16);
  std::string line;
  std::string flood(17, 'x');  // no newline, over the limit
  framer.Append(flood.data(), flood.size());
  EXPECT_EQ(framer.Next(&line), Result::kOversize);
  // Poisoned: the stream has no recoverable framing.
  framer.Append("\np(a).\n", 7);
  EXPECT_EQ(framer.Next(&line), Result::kOversize);
}

TEST(LineFramerTest, OversizeCompleteLineRejected) {
  LineFramer framer(16);
  std::string line;
  std::string big = std::string(17, 'x') + "\np(a).\n";
  framer.Append(big.data(), big.size());
  EXPECT_EQ(framer.Next(&line), Result::kOversize);
}

TEST(LineFramerTest, LineExactlyAtLimitAccepted) {
  LineFramer framer(16);
  std::string data = std::string(16, 'x') + "\n";
  EXPECT_EQ(DrainAll(&framer, data),
            (std::vector<std::string>{std::string(16, 'x')}));
}

TEST(LineFramerTest, UnderLimitAccumulationNotRejected) {
  LineFramer framer(16);
  std::string line;
  framer.Append("12345678", 8);  // under the limit, no newline yet
  EXPECT_EQ(framer.Next(&line), Result::kNeedMore);
  framer.Append("9\n", 2);
  EXPECT_EQ(framer.Next(&line), Result::kLine);
  EXPECT_EQ(line, "123456789");
}

TEST(LineFramerTest, ZeroMeansUnlimited) {
  LineFramer framer(0);
  std::string huge(1 << 20, 'x');
  huge += "\n";
  std::vector<std::string> lines = DrainAll(&framer, huge);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].size(), 1u << 20);
}

TEST(LineFramerTest, OversizeFrameNamesTheLimit) {
  EXPECT_EQ(OversizeFrame(4096),
            "% error: request line exceeds 4096 bytes\n.\n");
}

}  // namespace
}  // namespace chainsplit
