// Snapshot serialization: whole-database roundtrips (terms that do not
// survive text round-tripping included), corruption fallback to older
// snapshots, cold-start behavior.

#include "storage/snapshot.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "common/strings.h"
#include "rel/csv.h"
#include "storage/recovery.h"

namespace chainsplit {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            StrCat("cs_snap_test_", ::getpid(), "_",
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

/// A database exercising every term kind and a CSV relation whose
/// symbols would NOT survive a text round-trip ("Alice" re-parses as a
/// variable) — the reason the snapshot format is binary.
void BuildDb(Database* db) {
  const char* program =
      "tc(X, Y) :- edge(X, Y).\n"
      "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n"
      "edge(a, b). edge(b, c).\n"
      "len([], 0).\n"
      "num(-42). num(7).\n"
      "pair(point(1, 2), point(3, 4)).\n"
      "list3(l, [a, b, c]).\n";
  Status parsed = ParseProgram(program, &db->program());
  ASSERT_TRUE(parsed.ok()) << parsed;
  ASSERT_TRUE(db->LoadProgramFacts().ok());
  db->program().DeclareFiniteMode(
      db->program().InternPred("tc", 2), "bf");
  PredId person = db->program().InternPred("person", 2);
  StatusOr<int64_t> loaded = LoadFactsFromString(
      db, person, "Alice,30\nBob,-5\n_weird,0\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(*loaded, 3);
}

/// Structural equality of two databases, compared on the public
/// surface: predicates, rules, finite modes, and every relation's rows
/// rendered through the pool.
void ExpectSameDb(const Database& a, const Database& b) {
  ASSERT_EQ(a.program().preds().size(), b.program().preds().size());
  for (PredId p = 0; p < a.program().preds().size(); ++p) {
    EXPECT_EQ(a.program().preds().Display(p), b.program().preds().Display(p));
  }
  ASSERT_EQ(a.program().rules().size(), b.program().rules().size());
  ASSERT_EQ(a.program().facts().size(), b.program().facts().size());
  EXPECT_EQ(a.program().finite_modes().size(),
            b.program().finite_modes().size());

  std::vector<PredId> stored_a = a.StoredPredicates();
  std::vector<PredId> stored_b = b.StoredPredicates();
  std::sort(stored_a.begin(), stored_a.end());
  std::sort(stored_b.begin(), stored_b.end());
  ASSERT_EQ(stored_a, stored_b);
  for (PredId p : stored_a) {
    const Relation* ra = a.GetRelation(p);
    const Relation* rb = b.GetRelation(p);
    ASSERT_EQ(ra->num_rows(), rb->num_rows())
        << a.program().preds().Display(p);
    for (int64_t i = 0; i < ra->num_rows(); ++i) {
      Relation::Row row_a = ra->row(i);
      Relation::Row row_b = rb->row(i);
      ASSERT_EQ(row_a.size(), row_b.size());
      for (size_t c = 0; c < row_a.size(); ++c) {
        EXPECT_EQ(a.pool().ToString(row_a[c]), b.pool().ToString(row_b[c]))
            << a.program().preds().Display(p) << " row " << i;
      }
    }
  }
}

TEST_F(SnapshotTest, RoundtripPreservesEverything) {
  Database original;
  BuildDb(&original);

  SnapshotWriteStats stats;
  Status written = WriteSnapshot(original, 17, dir_, &stats);
  ASSERT_TRUE(written.ok()) << written;
  EXPECT_EQ(stats.lsn, 17u);
  EXPECT_GT(stats.bytes, 0);

  Database restored;
  StatusOr<uint64_t> lsn = LoadSnapshotFile(stats.path, &restored);
  ASSERT_TRUE(lsn.ok()) << lsn.status();
  EXPECT_EQ(*lsn, 17u);
  ExpectSameDb(original, restored);
}

TEST_F(SnapshotTest, ListSortsByLsn) {
  Database db;
  ASSERT_TRUE(WriteSnapshot(db, 300, dir_, nullptr).ok());
  ASSERT_TRUE(WriteSnapshot(db, 2, dir_, nullptr).ok());
  ASSERT_TRUE(WriteSnapshot(db, 45, dir_, nullptr).ok());
  std::vector<SnapshotFile> snapshots = ListSnapshots(dir_);
  ASSERT_EQ(snapshots.size(), 3u);
  EXPECT_EQ(snapshots[0].lsn, 2u);
  EXPECT_EQ(snapshots[1].lsn, 45u);
  EXPECT_EQ(snapshots[2].lsn, 300u);
}

TEST_F(SnapshotTest, CorruptNewestFallsBackToOlder) {
  Database original;
  BuildDb(&original);
  ASSERT_TRUE(WriteSnapshot(original, 5, dir_, nullptr).ok());
  SnapshotWriteStats newest;
  ASSERT_TRUE(WriteSnapshot(original, 9, dir_, &newest).ok());

  // Flip a bit in the newest snapshot's payload.
  std::fstream f(newest.path,
                 std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(40);
  char byte;
  f.seekg(40);
  f.get(byte);
  f.seekp(40);
  f.put(static_cast<char>(byte ^ 0x01));
  f.close();

  Database restored;
  StatusOr<SnapshotLoadResult> loaded = LoadNewestSnapshot(dir_, &restored);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(loaded->loaded);
  EXPECT_EQ(loaded->lsn, 5u);  // fell back past the corrupt lsn-9 file
  ASSERT_EQ(loaded->notes.size(), 1u);
  EXPECT_NE(loaded->notes[0].find("crc mismatch"), std::string::npos)
      << loaded->notes[0];
  ExpectSameDb(original, restored);
}

TEST_F(SnapshotTest, AllSnapshotsCorruptMeansColdStart) {
  Database original;
  BuildDb(&original);
  SnapshotWriteStats only;
  ASSERT_TRUE(WriteSnapshot(original, 3, dir_, &only).ok());
  std::ofstream truncate(only.path, std::ios::binary | std::ios::trunc);
  truncate << "not a snapshot";
  truncate.close();

  Database restored;
  StatusOr<SnapshotLoadResult> loaded = LoadNewestSnapshot(dir_, &restored);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->loaded);
  EXPECT_EQ(loaded->notes.size(), 1u);
}

TEST_F(SnapshotTest, EmptyDirIsCleanColdStart) {
  Database restored;
  StatusOr<SnapshotLoadResult> loaded = LoadNewestSnapshot(dir_, &restored);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_FALSE(loaded->loaded);
  EXPECT_TRUE(loaded->notes.empty());
  EXPECT_EQ(restored.StoredPredicates().size(), 0u);
}

TEST_F(SnapshotTest, TmpFilesAreIgnored) {
  Database original;
  BuildDb(&original);
  SnapshotWriteStats stats;
  ASSERT_TRUE(WriteSnapshot(original, 4, dir_, &stats).ok());
  // A crash between write and rename leaves a .tmp sibling.
  std::ofstream stray(stats.path + ".tmp", std::ios::binary);
  stray << "half-written";
  stray.close();

  std::vector<SnapshotFile> snapshots = ListSnapshots(dir_);
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].lsn, 4u);
}

TEST_F(SnapshotTest, RecoveryWithSnapshotOnly) {
  Database original;
  BuildDb(&original);
  ASSERT_TRUE(WriteSnapshot(original, 0, dir_, nullptr).ok());

  Database restored;
  int applied = 0;
  StatusOr<RecoveryResult> recovered = RecoverDatabase(
      dir_, &restored, [&](const WalRecord&) {
        ++applied;
        return Status::Ok();
      });
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(recovered->cold_start);
  EXPECT_EQ(recovered->last_lsn, 0u);
  EXPECT_EQ(applied, 0);
  ExpectSameDb(original, restored);
}

TEST_F(SnapshotTest, RecoveryCreatesMissingDir) {
  std::string fresh = dir_ + "/nested/data";
  fs::create_directories(dir_ + "/nested");
  Database restored;
  StatusOr<RecoveryResult> recovered = RecoverDatabase(
      fresh, &restored, [](const WalRecord&) { return Status::Ok(); });
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->cold_start);
  EXPECT_TRUE(fs::exists(fresh));
}

}  // namespace
}  // namespace chainsplit
