#include "core/counting.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/buffered.h"
#include "core/rectify.h"
#include "workload/family_gen.h"

namespace chainsplit {
namespace {

class CountingTest : public ::testing::Test {
 protected:
  void Load(std::string_view text) {
    ASSERT_TRUE(ParseProgram(text, &db_.program()).ok());
    ASSERT_TRUE(db_.LoadProgramFacts().ok());
  }

  CompiledChain Compile(std::string_view pred, int arity) {
    rectified_ = RectifyRules(&db_.program());
    auto chain = CompileChain(db_.program(), rectified_,
                              db_.program().preds().Find(pred, arity).value());
    EXPECT_TRUE(chain.ok()) << chain.status();
    return *chain;
  }

  PathSplit Split(const CompiledChain& chain, const Atom& query) {
    std::vector<TermId> bound;
    for (size_t i = 0; i < query.args.size(); ++i) {
      if (db_.pool().IsGround(query.args[i])) {
        db_.pool().CollectVariables(chain.head().args[i], &bound);
      }
    }
    ChainPath whole = WholeBodyPath(db_.pool(), chain);
    auto split = SplitPathByFiniteness(db_.program(), chain, whole, bound);
    EXPECT_TRUE(split.ok()) << split.status();
    return *split;
  }

  Database db_;
  std::vector<Rule> rectified_;
  CountingStats stats_;
};

TEST_F(CountingTest, SgOnTreeMatchesExpectedAnswers) {
  Load(StrCat(R"(
parent(c1, p1). parent(c2, p1).
parent(g1, c1). parent(g2, c2). parent(g3, c2).
sibling(c1, c2). sibling(c2, c1).
)",
              SgProgramSource()));
  CompiledChain chain = Compile("sg", 2);
  Atom query{chain.pred,
             {db_.pool().MakeSymbol("g1"), db_.pool().MakeVariable("Y")}};
  auto answers = CountingEvaluate(&db_, chain, Split(chain, query), query,
                                  {}, &stats_);
  ASSERT_TRUE(answers.ok()) << answers.status();
  EXPECT_EQ(answers->size(), 2u);
  EXPECT_EQ(stats_.levels, 3);  // g1 -> c1 -> p1 -> (no parents)
}

TEST_F(CountingTest, MatchesBufferedOnFamilies) {
  FamilyOptions fam;
  fam.num_families = 2;
  fam.depth = 5;
  fam.fanout = 2;
  fam.materialize_same_country = false;
  FamilyData data = GenerateFamily(&db_, fam);
  Load(SgProgramSource());
  CompiledChain chain = Compile("sg", 2);
  Atom query{chain.pred, {data.query_person, db_.pool().MakeVariable("Y")}};
  PathSplit split = Split(chain, query);

  auto counting =
      CountingEvaluate(&db_, chain, split, query, {}, &stats_);
  ASSERT_TRUE(counting.ok()) << counting.status();

  BufferedChainEvaluator buffered(&db_, chain, {});
  auto memo = buffered.Evaluate(query, split);
  ASSERT_TRUE(memo.ok()) << memo.status();

  ASSERT_EQ(counting->size(), memo->size());
  for (const Tuple& t : *counting) {
    EXPECT_NE(std::find(memo->begin(), memo->end(), t), memo->end());
  }
}

TEST_F(CountingTest, CyclicDataHitsLevelCap) {
  Load(R"(
next(a, b). next(b, a).
goal(b).
reach(X, found) :- goal(X).
reach(X, Y) :- next(X, X1), reach(X1, Y).
)");
  CompiledChain chain = Compile("reach", 2);
  Atom query{chain.pred,
             {db_.pool().MakeSymbol("a"), db_.pool().MakeVariable("Y")}};
  CountingOptions options;
  options.max_levels = 40;
  auto answers = CountingEvaluate(&db_, chain, Split(chain, query), query,
                                  options, &stats_);
  // The classic counting method loops on the 2-cycle: resource error —
  // exactly the limitation the memoized buffered evaluator removes.
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(CountingTest, ReexpandsSharedStatesUnlikeBuffered) {
  // Diamond-shaped ancestry: counting re-expands the shared ancestor,
  // buffered memoizes it. Both return the same answers; counting does
  // at least as much up-phase work as buffered has nodes.
  Load(StrCat(R"(
parent(x, m1). parent(x, m2).
parent(m1, top). parent(m2, top).
parent(y, n1). parent(n1, top).
sibling(top, top).
)",
              SgProgramSource()));
  CompiledChain chain = Compile("sg", 2);
  Atom query{chain.pred,
             {db_.pool().MakeSymbol("x"), db_.pool().MakeVariable("Y")}};
  PathSplit split = Split(chain, query);
  auto counting =
      CountingEvaluate(&db_, chain, split, query, {}, &stats_);
  ASSERT_TRUE(counting.ok());

  BufferedChainEvaluator buffered(&db_, chain, {});
  auto memo = buffered.Evaluate(query, split);
  ASSERT_TRUE(memo.ok());
  EXPECT_EQ(counting->size(), memo->size());
  // Counting's up-entries count `top` twice (via m1 and m2); buffered
  // keeps one node.
  EXPECT_GT(stats_.up_entries, buffered.stats().nodes);
}

}  // namespace
}  // namespace chainsplit
