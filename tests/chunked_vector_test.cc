// ChunkedVector: the append-only chunk ladder behind the interning
// pools. Stability of element addresses across growth, contiguity of
// AppendRange runs across chunk-boundary padding, and the
// single-writer / many-reader publication contract (exercised under
// tsan via the tier1-tsan label).

#include "common/chunked_vector.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace chainsplit {
namespace {

TEST(ChunkedVectorTest, PushBackAndIndexing) {
  ChunkedVector<int> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 10000; ++i) {
    EXPECT_EQ(v.push_back(i * 3), static_cast<size_t>(i));
  }
  EXPECT_EQ(v.size(), 10000u);
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(v[i], i * 3);
}

TEST(ChunkedVectorTest, AddressesStableAcrossGrowth) {
  ChunkedVector<std::string> v;
  v.push_back("first");
  const std::string* first = v.PtrTo(0);
  // Grow across several chunk boundaries (base chunk is 1024).
  for (int i = 0; i < 20000; ++i) v.push_back(std::to_string(i));
  EXPECT_EQ(v.PtrTo(0), first);
  EXPECT_EQ(*first, "first");
  EXPECT_EQ(v[1], "0");
  EXPECT_EQ(v[20000], "19999");
}

TEST(ChunkedVectorTest, AppendRangeIsContiguous) {
  ChunkedVector<int> v;
  // Fill to just short of the first chunk boundary (1024), then append
  // a run that cannot fit: it must land contiguously in chunk 1, with
  // the gap padded.
  for (int i = 0; i < 1020; ++i) v.push_back(i);
  int run[8] = {90, 91, 92, 93, 94, 95, 96, 97};
  size_t start = v.AppendRange(run, 8);
  EXPECT_EQ(start, 1024u) << "run must skip the 4-slot remainder";
  EXPECT_EQ(v.size(), 1032u);
  const int* p = v.PtrTo(start);
  for (int j = 0; j < 8; ++j) {
    EXPECT_EQ(p[j], 90 + j);
    EXPECT_EQ(v.PtrTo(start + j), p + j) << "run not contiguous";
  }
  // Padding slots are value-initialized.
  for (size_t i = 1020; i < 1024; ++i) EXPECT_EQ(v[i], 0);
}

TEST(ChunkedVectorTest, AppendRangeWithinChunkDoesNotPad) {
  ChunkedVector<int> v;
  int run[4] = {1, 2, 3, 4};
  EXPECT_EQ(v.AppendRange(run, 4), 0u);
  EXPECT_EQ(v.AppendRange(run, 4), 4u);
  EXPECT_EQ(v.size(), 8u);
  EXPECT_EQ(v.AppendRange(run, 0), 8u);  // empty run: no effect
  EXPECT_EQ(v.size(), 8u);
}

TEST(ChunkedVectorTest, ConcurrentReadersSeePublishedPrefix) {
  // One writer appends; readers repeatedly load size() and verify
  // every element below it. Under tsan this checks the release/acquire
  // pairing on size_ and the chunk-pointer publication.
  ChunkedVector<int> v;
  constexpr int kTotal = 60000;  // crosses several chunk boundaries
  std::atomic<bool> done{false};
  std::atomic<bool> bad{false};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&v, &done, &bad] {
      while (!done.load(std::memory_order_acquire)) {
        size_t n = v.size();
        // Spot-check a spread of the published prefix.
        for (size_t i = 0; i < n; i += 997) {
          if (v[i] != static_cast<int>(i)) bad.store(true);
        }
        if (n > 0 && v[n - 1] != static_cast<int>(n - 1)) bad.store(true);
      }
    });
  }

  for (int i = 0; i < kTotal; ++i) v.push_back(i);
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_FALSE(bad.load());
  EXPECT_EQ(v.size(), static_cast<size_t>(kTotal));
}

}  // namespace
}  // namespace chainsplit
