#include "core/chain_eval.h"

#include <gtest/gtest.h>

#include "workload/graph_gen.h"

namespace chainsplit {
namespace {

TEST(ChainEvalTest, ClosureOfLinearChain) {
  Database db;
  GraphData g = GenerateChainGraph(&db, "e", 6, "n");
  const Relation* edge =
      db.GetRelation(db.program().preds().Find("e", 2).value());
  TcStats stats;
  auto closure = TransitiveClosure(*edge, 1000, &stats);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->size(), 5 + 4 + 3 + 2 + 1);
  EXPECT_EQ(stats.tuples, closure->size());
  EXPECT_GE(stats.iterations, 4);
}

TEST(ChainEvalTest, ClosureFromSeeds) {
  Database db;
  GraphData g = GenerateChainGraph(&db, "e", 6, "n");
  const Relation* edge =
      db.GetRelation(db.program().preds().Find("e", 2).value());
  TcStats stats;
  auto reach = TransitiveClosureFrom(*edge, {g.nodes[3]}, 1000, &stats);
  ASSERT_TRUE(reach.ok());
  EXPECT_EQ(reach->size(), 2);  // n4, n5
  EXPECT_TRUE(reach->Contains({g.nodes[3], g.nodes[5]}));
}

TEST(ChainEvalTest, CyclicGraphTerminates) {
  Database db;
  PredId e = db.program().InternPred("e", 2);
  TermId a = db.pool().MakeSymbol("a");
  TermId b = db.pool().MakeSymbol("b");
  db.InsertFact(e, {a, b});
  db.InsertFact(e, {b, a});
  TcStats stats;
  auto closure = TransitiveClosure(*db.GetRelation(e), 1000, &stats);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->size(), 4);  // aa ab ba bb
}

TEST(ChainEvalTest, IterationCapTriggers) {
  Database db;
  GraphData g = GenerateChainGraph(&db, "e", 50, "n");
  const Relation* edge =
      db.GetRelation(db.program().preds().Find("e", 2).value());
  TcStats stats;
  auto closure = TransitiveClosure(*edge, 5, &stats);
  ASSERT_FALSE(closure.ok());
  EXPECT_EQ(closure.status().code(), StatusCode::kResourceExhausted);
}

TEST(ChainEvalTest, SeedsWithNoEdges) {
  Database db;
  PredId e = db.program().InternPred("e", 2);
  db.InsertFact(e, {db.pool().MakeSymbol("a"), db.pool().MakeSymbol("b")});
  TcStats stats;
  auto reach = TransitiveClosureFrom(*db.GetRelation(e),
                                     {db.pool().MakeSymbol("z")}, 10, &stats);
  ASSERT_TRUE(reach.ok());
  EXPECT_TRUE(reach->empty());
}

/// A first-round delta above the bulk-join threshold (512 rows) sends
/// the closure kernel through HashJoin; the second round falls back to
/// the per-row probe loop. Both must agree with the hand-computed
/// closure of 300 disjoint two-edge chains.
TEST(ChainEvalTest, LargeDeltaTakesJoinStepAndMatchesExpected) {
  Relation edge(2);
  constexpr TermId kChains = 300;  // 600 edges > kJoinStepMinDeltaRows
  for (TermId k = 0; k < kChains; ++k) {
    edge.Insert({3 * k, 3 * k + 1});
    edge.Insert({3 * k + 1, 3 * k + 2});
  }
  TcStats stats;
  auto closure = TransitiveClosure(edge, 100, &stats);
  ASSERT_TRUE(closure.ok());
  EXPECT_EQ(closure->size(), 3 * kChains);
  for (TermId k = 0; k < kChains; ++k) {
    EXPECT_TRUE(closure->Contains({3 * k, 3 * k + 1}));
    EXPECT_TRUE(closure->Contains({3 * k + 1, 3 * k + 2}));
    EXPECT_TRUE(closure->Contains({3 * k, 3 * k + 2}));
  }
  EXPECT_EQ(stats.iterations, 2);  // join round, then probe-loop round
}

TEST(ChainEvalTest, RandomGraphClosureIsTransitive) {
  Database db;
  GraphOptions options;
  options.num_nodes = 25;
  options.num_edges = 60;
  options.seed = 9;
  GenerateGraph(&db, "e", options);
  const Relation* edge =
      db.GetRelation(db.program().preds().Find("e", 2).value());
  TcStats stats;
  auto closure = TransitiveClosure(*edge, 1000, &stats);
  ASSERT_TRUE(closure.ok());
  // Transitivity: (a,b),(b,c) in closure => (a,c) in closure.
  for (int64_t i = 0; i < closure->num_rows(); ++i) {
    const Tuple& ab = closure->row(i);
    for (int64_t j : closure->Probe({0}, {ab[1]})) {
      EXPECT_TRUE(closure->Contains({ab[0], closure->row(j)[1]}));
    }
  }
}

}  // namespace
}  // namespace chainsplit
