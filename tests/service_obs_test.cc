// QueryService observability: the metrics registry as the single
// source of truth behind stats(), per-outcome request counters,
// latency histogram consistency, the tracing toggle + `last trace`
// JSON (per-iteration fixpoint spans), and the slow-query log.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/strings.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "service/query_service.h"

namespace chainsplit {
namespace {

namespace fs = std::filesystem;

constexpr const char* kTcProgram =
    "tc(X, Y) :- edge(X, Y).\n"
    "tc(X, Y) :- edge(X, Z), tc(Z, Y).\n";

void SeedChain(QueryService* service, int length) {
  std::string text = kTcProgram;
  for (int i = 0; i < length; ++i) {
    text += StrCat("edge(a", i, ", a", i + 1, ").\n");
  }
  UpdateResponse seeded = service->Update(text);
  ASSERT_TRUE(seeded.status.ok()) << seeded.status;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

double SampleValue(const std::vector<MetricSample>& samples,
                   const std::string& name, const MetricLabels& labels = {}) {
  for (const MetricSample& sample : samples) {
    if (sample.name == name && sample.labels == labels) return sample.value;
  }
  ADD_FAILURE() << "sample not found: " << name;
  return -1;
}

TEST(ServiceObsTest, StatsIsAViewOverTheRegistry) {
  QueryService service;
  SeedChain(&service, 10);
  ASSERT_TRUE(service.Query("?- tc(a0, Y).").status.ok());
  ASSERT_TRUE(service.Query("?- tc(a0, Y).").status.ok());  // cache hit

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.queries, 2);
  EXPECT_EQ(stats.updates, 1);
  EXPECT_EQ(stats.result_cache_hits, 1);
  EXPECT_EQ(stats.result_cache_misses, 1);

  // The same numbers, read straight off the registry.
  std::vector<MetricSample> samples = service.metrics()->Snapshot();
  EXPECT_DOUBLE_EQ(SampleValue(samples, "csdd_queries_total"), 2.0);
  EXPECT_DOUBLE_EQ(SampleValue(samples, "csdd_updates_total"), 1.0);
  EXPECT_DOUBLE_EQ(SampleValue(samples, "csdd_result_cache_lookups_total",
                               {{"result", "hit"}}),
                   1.0);
  EXPECT_DOUBLE_EQ(SampleValue(samples, "csdd_result_cache_lookups_total",
                               {{"result", "miss"}}),
                   1.0);
}

TEST(ServiceObsTest, LatencyHistogramCountsEveryQuery) {
  QueryService service;
  SeedChain(&service, 5);
  const int kQueries = 7;
  for (int i = 0; i < kQueries; ++i) {
    service.Query("?- tc(a0, Y).");
  }
  std::vector<MetricSample> samples = service.metrics()->Snapshot();
  EXPECT_DOUBLE_EQ(SampleValue(samples, "csdd_query_latency_us_count"),
                   static_cast<double>(kQueries));
  EXPECT_GE(SampleValue(samples, "csdd_query_latency_us_sum"), 0.0);
}

TEST(ServiceObsTest, OutcomeFamilyReconcilesWithRequestTotals) {
  QueryService service;
  SeedChain(&service, 5);
  ASSERT_TRUE(service.Query("?- tc(a0, Y).").status.ok());
  // A parse failure is still one request, counted under outcome=error.
  EXPECT_FALSE(service.Query("?- tc(a0 Y.").status.ok());
  ASSERT_TRUE(service.Update("edge(x, y).").status.ok());

  // SeedChain's Update counts too: three ok requests, one error.
  std::vector<MetricSample> samples = service.metrics()->Snapshot();
  EXPECT_DOUBLE_EQ(
      SampleValue(samples, "csdd_requests_total", {{"outcome", "ok"}}), 3.0);
  EXPECT_DOUBLE_EQ(
      SampleValue(samples, "csdd_requests_total", {{"outcome", "error"}}),
      1.0);
  // Family total == every top-level request (queries + updates).
  EXPECT_DOUBLE_EQ(
      service.metrics()->CounterFamilyTotal("csdd_requests_total"), 4.0);
}

TEST(ServiceObsTest, DeadlineOutcomeIsCounted) {
  QueryService service;
  SeedChain(&service, 400);
  RequestOptions request;
  request.deadline = std::chrono::milliseconds(1);
  request.bypass_cache = true;
  // Retry until the deadline actually fires (a fast machine may finish
  // a short chain in under a millisecond — the long chain makes that
  // effectively impossible, but stay robust).
  StatusCode code = StatusCode::kOk;
  for (int i = 0; i < 50 && code != StatusCode::kDeadlineExceeded; ++i) {
    code = service.Query("?- tc(a0, Y).", request).status.code();
  }
  ASSERT_EQ(code, StatusCode::kDeadlineExceeded);
  std::vector<MetricSample> samples = service.metrics()->Snapshot();
  EXPECT_GE(SampleValue(samples, "csdd_requests_total",
                        {{"outcome", "deadline_exceeded"}}),
            1.0);
  EXPECT_GE(SampleValue(samples, "csdd_evals_cut_total",
                        {{"cause", "deadline_exceeded"}}),
            1.0);
}

TEST(ServiceObsTest, RenderPrometheusCoversAllSubsystems) {
  QueryService service;
  SeedChain(&service, 10);
  service.Query("?- tc(a0, Y).");
  std::string text = service.metrics()->RenderPrometheus();
  // Service, cache, evaluator and storage families all present.
  EXPECT_TRUE(Contains(text, "# TYPE csdd_queries_total counter"));
  EXPECT_TRUE(Contains(text, "csdd_result_cache_lookups_total{result=\"miss\"} 1"));
  EXPECT_TRUE(Contains(text, "# TYPE csdd_query_latency_us histogram"));
  EXPECT_TRUE(Contains(text, "csdd_query_latency_us_bucket{le=\"+Inf\"} 1"));
  EXPECT_TRUE(Contains(text, "csdd_query_latency_us_quantile{quantile=\"0.95\"}"));
  EXPECT_TRUE(Contains(text, "csdd_evals_total{lock=\"shared\"} 1"));
  EXPECT_TRUE(Contains(text, "csdd_fixpoint_iterations_total"));
  EXPECT_TRUE(Contains(text, "csdd_storage_relations"));
  EXPECT_TRUE(Contains(text, "csdd_storage_rows"));
}

TEST(ServiceObsTest, TracingRecordsFixpointIterations) {
  QueryService service;
  SeedChain(&service, 10);
  EXPECT_FALSE(service.tracing());
  EXPECT_EQ(service.last_trace_json(), "");

  service.set_tracing(true);
  RequestOptions request;
  request.bypass_cache = true;  // force a full uncached evaluation
  ASSERT_TRUE(service.Query("?- tc(a0, Y).", request).status.ok());

  std::string json = service.last_trace_json();
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(Contains(json, "{\"traceEvents\":["));
  EXPECT_TRUE(Contains(json, "\"?- tc(a0, Y).\""));
  EXPECT_TRUE(Contains(json, "\"parse\""));
  EXPECT_TRUE(Contains(json, "\"evaluate\""));
  // The acceptance shape: per-iteration fixpoint spans carrying delta
  // sizes for a recursive query.
  EXPECT_TRUE(Contains(json, "\"fixpoint_iteration\""));
  EXPECT_TRUE(Contains(json, "\"delta_rows\":"));
  EXPECT_TRUE(Contains(json, "\"derived\":"));

  service.set_tracing(false);
  EXPECT_FALSE(service.tracing());
}

TEST(ServiceObsTest, CallerSuppliedTraceWins) {
  QueryService service;
  SeedChain(&service, 5);
  Trace trace("caller");
  RequestOptions request;
  request.trace = &trace;
  request.bypass_cache = true;
  ASSERT_TRUE(service.Query("?- tc(a0, Y).", request).status.ok());
  // The service instrumented the caller's trace (root + spans) and did
  // not publish it as `last` (tracing is off).
  EXPECT_GT(trace.num_spans(), 3);
  EXPECT_TRUE(Contains(trace.ToChromeJson(), "\"evaluate\""));
  EXPECT_EQ(service.last_trace_json(), "");
}

TEST(ServiceObsTest, UntracedQueriesLeaveNoTrace) {
  QueryService service;
  SeedChain(&service, 5);
  ASSERT_TRUE(service.Query("?- tc(a0, Y).").status.ok());
  EXPECT_EQ(service.last_trace_json(), "");
}

class SlowLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            StrCat("cs_slowlog_test_", ::getpid(), "_",
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(SlowLogTest, RecordsOnlyOverThreshold) {
  SlowQueryLog log(dir_, std::chrono::milliseconds(10));
  ASSERT_TRUE(log.enabled());

  Trace fast("fast");
  fast.Finish();
  StatusOr<std::string> under =
      log.Record(fast, std::chrono::microseconds(5000));
  ASSERT_TRUE(under.ok()) << under.status();
  EXPECT_EQ(*under, "");
  EXPECT_EQ(log.queries_logged(), 0);
  // Under-threshold traffic must not even create the directory.
  EXPECT_FALSE(fs::exists(dir_));

  Trace slow("?- tc(a0, Y).");
  slow.Finish();
  StatusOr<std::string> over =
      log.Record(slow, std::chrono::microseconds(25000));
  ASSERT_TRUE(over.ok()) << over.status();
  ASSERT_NE(*over, "");
  EXPECT_EQ(log.queries_logged(), 1);
  EXPECT_TRUE(Contains(*over, "25ms.json"));

  // The file is loadable Chrome trace JSON.
  std::ifstream in(*over);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_TRUE(Contains(content.str(), "{\"traceEvents\":["));
  EXPECT_TRUE(Contains(content.str(), "\"?- tc(a0, Y).\""));
}

TEST_F(SlowLogTest, ZeroThresholdDisables) {
  SlowQueryLog log(dir_, std::chrono::milliseconds(0));
  EXPECT_FALSE(log.enabled());
  Trace trace("q");
  trace.Finish();
  StatusOr<std::string> result =
      log.Record(trace, std::chrono::microseconds(1000000));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, "");
  EXPECT_FALSE(fs::exists(dir_));
}

TEST_F(SlowLogTest, ServiceWritesSlowQueryFiles) {
  QueryService service;
  SeedChain(&service, 10);
  // Threshold 0ms is "disabled", so arm via the service with 1ms and
  // verify the wiring with a query forced slow enough by a long chain;
  // to stay deterministic, drive the log through every query with the
  // threshold at the minimum and only require non-negative counts.
  service.EnableSlowQueryLog(dir_, std::chrono::milliseconds(1));
  for (int i = 0; i < 3; ++i) {
    RequestOptions request;
    request.bypass_cache = true;
    ASSERT_TRUE(service.Query("?- tc(a0, Y).", request).status.ok());
  }
  // Timing-dependent: a fast machine may evaluate under 1ms, so only
  // the consistency between the counter and the directory is asserted.
  int64_t logged = service.slow_queries_logged();
  EXPECT_GE(logged, 0);
  int64_t files = 0;
  if (fs::exists(dir_)) {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      ++files;
      std::ifstream in(entry.path());
      std::stringstream content;
      content << in.rdbuf();
      EXPECT_TRUE(Contains(content.str(), "{\"traceEvents\":["));
    }
  }
  EXPECT_EQ(files, logged);
}

}  // namespace
}  // namespace chainsplit
