#include <gtest/gtest.h>

#include "workload/family_gen.h"
#include "workload/flight_gen.h"
#include "workload/graph_gen.h"
#include "workload/list_gen.h"
#include "term/list_utils.h"

namespace chainsplit {
namespace {

TEST(FamilyGenTest, GeneratesConsistentFacts) {
  Database db;
  FamilyOptions options;
  options.num_families = 3;
  options.depth = 4;
  options.fanout = 2;
  options.num_countries = 2;
  FamilyData data = GenerateFamily(&db, options);
  // Persons per family: 1 + 2 + 4 + 8 = 15.
  EXPECT_EQ(data.num_persons, 45);
  EXPECT_EQ(data.num_parent_facts, 42);  // all but the 3 roots
  EXPECT_NE(data.query_person, kNullTerm);

  PredId parent = db.program().preds().Find("parent", 2).value();
  EXPECT_EQ(db.GetRelation(parent)->size(), data.num_parent_facts);
  PredId sc = db.program().preds().Find("same_country", 2).value();
  // Symmetric + reflexive: sum of group sizes squared.
  const RelationStats& stats = db.Stats(sc);
  EXPECT_EQ(stats.cardinality, data.num_same_country_facts);
  EXPECT_GE(stats.cardinality, data.num_persons);  // at least reflexive
}

TEST(FamilyGenTest, DeterministicInSeed) {
  FamilyOptions options;
  options.seed = 123;
  Database db1, db2;
  FamilyData d1 = GenerateFamily(&db1, options);
  FamilyData d2 = GenerateFamily(&db2, options);
  EXPECT_EQ(d1.num_same_country_facts, d2.num_same_country_facts);
  EXPECT_EQ(db1.pool().ToString(d1.query_person),
            db2.pool().ToString(d2.query_person));
}

TEST(FamilyGenTest, CountryCountControlsFanOut) {
  FamilyOptions few;
  few.num_countries = 1;
  FamilyOptions many;
  many.num_countries = 16;
  Database db1, db2;
  FamilyData d1 = GenerateFamily(&db1, few);
  FamilyData d2 = GenerateFamily(&db2, many);
  EXPECT_GT(d1.num_same_country_facts, d2.num_same_country_facts);
}

TEST(FlightGenTest, GeneratesFlights) {
  Database db;
  FlightOptions options;
  options.num_cities = 5;
  options.num_flights = 40;
  FlightData data = GenerateFlights(&db, options);
  EXPECT_EQ(data.num_flights, 40);
  PredId flight = db.program().preds().Find("flight", 4).value();
  const Relation* rel = db.GetRelation(flight);
  ASSERT_NE(rel, nullptr);
  EXPECT_EQ(rel->size(), 40);
  for (int64_t i = 0; i < rel->num_rows(); ++i) {
    const Tuple& t = rel->row(i);
    EXPECT_NE(t[1], t[2]);  // no self-loop flights
    int64_t fare = db.pool().int_value(t[3]);
    EXPECT_GE(fare, options.min_fare);
    EXPECT_LE(fare, options.max_fare);
  }
}

TEST(ListGenTest, RandomIntsRespectRangeAndSeed) {
  auto a = RandomInts(100, 5, 10, 42);
  auto b = RandomInts(100, 5, 10, 42);
  EXPECT_EQ(a, b);
  for (int64_t v : a) {
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
  auto c = RandomInts(100, 5, 10, 43);
  EXPECT_NE(a, c);
}

TEST(ListGenTest, RandomIntListBuildsProperList) {
  TermPool pool;
  TermId list = RandomIntList(pool, 20, 0, 9, 7);
  EXPECT_EQ(ListLength(pool, list), 20);
}

TEST(GraphGenTest, AcyclicOptionYieldsDag) {
  Database db;
  GraphOptions options;
  options.num_nodes = 20;
  options.num_edges = 50;
  options.acyclic = true;
  GraphData data = GenerateGraph(&db, "e", options);
  const Relation* rel =
      db.GetRelation(db.program().preds().Find("e", 2).value());
  // Node index increases along every edge (symbols n0..n19 interned in
  // order, so TermIds are ordered too).
  for (int64_t i = 0; i < rel->num_rows(); ++i) {
    EXPECT_LT(rel->row(i)[0], rel->row(i)[1]);
  }
  EXPECT_EQ(data.num_edges, rel->size());
}

TEST(GraphGenTest, ChainGraphShape) {
  Database db;
  GraphData data = GenerateChainGraph(&db, "e", 10, "c");
  EXPECT_EQ(data.num_edges, 9);
  EXPECT_EQ(data.nodes.size(), 10u);
}

TEST(GraphGenTest, DistinctPrefixesKeepGraphsApart) {
  Database db;
  GraphOptions options;
  options.node_prefix = "a";
  GenerateGraph(&db, "e1", options);
  options.node_prefix = "b";
  GenerateGraph(&db, "e2", options);
  const Relation* e1 =
      db.GetRelation(db.program().preds().Find("e1", 2).value());
  const Relation* e2 =
      db.GetRelation(db.program().preds().Find("e2", 2).value());
  for (int64_t i = 0; i < e1->num_rows(); ++i) {
    for (int64_t j = 0; j < e2->num_rows(); ++j) {
      EXPECT_NE(e1->row(i)[0], e2->row(j)[0]);
    }
  }
}

}  // namespace
}  // namespace chainsplit
