# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(csdd_shell_query "bash" "-c" "printf 'parent(a,b).\\ntc(X,Y) :- parent(X,Y).\\ntc(X,Y) :- parent(X,Z), tc(Z,Y).\\nparent(b,c).\\n?- tc(a, Y).\\n:quit\\n' | /root/repo/build/tools/csdd | grep -q 'Y = c'")
set_tests_properties(csdd_shell_query PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(csdd_loads_program_file "bash" "-c" "printf '?- travel(L, montreal, ottawa, F), F =< 600.\\n:quit\\n' | /root/repo/build/tools/csdd /root/repo/tools/../examples/programs/travel.dl | grep -q 'F = 450'")
set_tests_properties(csdd_loads_program_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(csdd_reports_parse_errors "bash" "-c" "printf 'p(a&.\\n:quit\\n' | /root/repo/build/tools/csdd | grep -q 'parse error'")
set_tests_properties(csdd_reports_parse_errors PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
