file(REMOVE_RECURSE
  "CMakeFiles/csdd.dir/csdd.cc.o"
  "CMakeFiles/csdd.dir/csdd.cc.o.d"
  "csdd"
  "csdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
