# Empty dependencies file for csdd.
# This may be replaced when dependencies are built.
