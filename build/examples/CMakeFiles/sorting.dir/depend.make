# Empty dependencies file for sorting.
# This may be replaced when dependencies are built.
