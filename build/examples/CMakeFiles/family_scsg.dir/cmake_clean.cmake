file(REMOVE_RECURSE
  "CMakeFiles/family_scsg.dir/family_scsg.cc.o"
  "CMakeFiles/family_scsg.dir/family_scsg.cc.o.d"
  "family_scsg"
  "family_scsg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/family_scsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
