# Empty dependencies file for family_scsg.
# This may be replaced when dependencies are built.
