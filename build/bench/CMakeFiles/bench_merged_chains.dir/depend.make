# Empty dependencies file for bench_merged_chains.
# This may be replaced when dependencies are built.
