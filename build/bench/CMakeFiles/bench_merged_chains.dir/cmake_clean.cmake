file(REMOVE_RECURSE
  "CMakeFiles/bench_merged_chains.dir/bench_merged_chains.cc.o"
  "CMakeFiles/bench_merged_chains.dir/bench_merged_chains.cc.o.d"
  "bench_merged_chains"
  "bench_merged_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merged_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
