file(REMOVE_RECURSE
  "CMakeFiles/bench_travel_partial.dir/bench_travel_partial.cc.o"
  "CMakeFiles/bench_travel_partial.dir/bench_travel_partial.cc.o.d"
  "bench_travel_partial"
  "bench_travel_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_travel_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
