# Empty dependencies file for bench_travel_partial.
# This may be replaced when dependencies are built.
