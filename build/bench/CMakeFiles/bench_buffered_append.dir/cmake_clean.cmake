file(REMOVE_RECURSE
  "CMakeFiles/bench_buffered_append.dir/bench_buffered_append.cc.o"
  "CMakeFiles/bench_buffered_append.dir/bench_buffered_append.cc.o.d"
  "bench_buffered_append"
  "bench_buffered_append.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffered_append.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
