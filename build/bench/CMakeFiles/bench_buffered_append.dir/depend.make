# Empty dependencies file for bench_buffered_append.
# This may be replaced when dependencies are built.
