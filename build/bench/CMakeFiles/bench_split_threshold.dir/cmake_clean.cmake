file(REMOVE_RECURSE
  "CMakeFiles/bench_split_threshold.dir/bench_split_threshold.cc.o"
  "CMakeFiles/bench_split_threshold.dir/bench_split_threshold.cc.o.d"
  "bench_split_threshold"
  "bench_split_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_split_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
