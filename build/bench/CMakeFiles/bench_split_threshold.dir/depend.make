# Empty dependencies file for bench_split_threshold.
# This may be replaced when dependencies are built.
