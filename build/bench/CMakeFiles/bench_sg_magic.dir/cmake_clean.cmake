file(REMOVE_RECURSE
  "CMakeFiles/bench_sg_magic.dir/bench_sg_magic.cc.o"
  "CMakeFiles/bench_sg_magic.dir/bench_sg_magic.cc.o.d"
  "bench_sg_magic"
  "bench_sg_magic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sg_magic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
