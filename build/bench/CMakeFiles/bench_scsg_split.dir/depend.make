# Empty dependencies file for bench_scsg_split.
# This may be replaced when dependencies are built.
