file(REMOVE_RECURSE
  "CMakeFiles/bench_scsg_split.dir/bench_scsg_split.cc.o"
  "CMakeFiles/bench_scsg_split.dir/bench_scsg_split.cc.o.d"
  "bench_scsg_split"
  "bench_scsg_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scsg_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
