file(REMOVE_RECURSE
  "CMakeFiles/bench_isort_nested.dir/bench_isort_nested.cc.o"
  "CMakeFiles/bench_isort_nested.dir/bench_isort_nested.cc.o.d"
  "bench_isort_nested"
  "bench_isort_nested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_isort_nested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
