# Empty compiler generated dependencies file for bench_isort_nested.
# This may be replaced when dependencies are built.
