file(REMOVE_RECURSE
  "CMakeFiles/bench_qsort_nonlinear.dir/bench_qsort_nonlinear.cc.o"
  "CMakeFiles/bench_qsort_nonlinear.dir/bench_qsort_nonlinear.cc.o.d"
  "bench_qsort_nonlinear"
  "bench_qsort_nonlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qsort_nonlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
