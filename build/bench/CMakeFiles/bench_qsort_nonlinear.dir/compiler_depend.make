# Empty compiler generated dependencies file for bench_qsort_nonlinear.
# This may be replaced when dependencies are built.
