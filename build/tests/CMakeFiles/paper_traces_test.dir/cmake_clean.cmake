file(REMOVE_RECURSE
  "CMakeFiles/paper_traces_test.dir/paper_traces_test.cc.o"
  "CMakeFiles/paper_traces_test.dir/paper_traces_test.cc.o.d"
  "paper_traces_test"
  "paper_traces_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_traces_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
