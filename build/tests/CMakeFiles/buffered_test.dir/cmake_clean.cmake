file(REMOVE_RECURSE
  "CMakeFiles/buffered_test.dir/buffered_test.cc.o"
  "CMakeFiles/buffered_test.dir/buffered_test.cc.o.d"
  "buffered_test"
  "buffered_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffered_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
