# Empty compiler generated dependencies file for buffered_test.
# This may be replaced when dependencies are built.
