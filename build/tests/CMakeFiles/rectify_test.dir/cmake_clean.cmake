file(REMOVE_RECURSE
  "CMakeFiles/rectify_test.dir/rectify_test.cc.o"
  "CMakeFiles/rectify_test.dir/rectify_test.cc.o.d"
  "rectify_test"
  "rectify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rectify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
