# Empty dependencies file for rectify_test.
# This may be replaced when dependencies are built.
