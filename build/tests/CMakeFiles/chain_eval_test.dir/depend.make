# Empty dependencies file for chain_eval_test.
# This may be replaced when dependencies are built.
