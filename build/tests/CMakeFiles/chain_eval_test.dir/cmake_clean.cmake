file(REMOVE_RECURSE
  "CMakeFiles/chain_eval_test.dir/chain_eval_test.cc.o"
  "CMakeFiles/chain_eval_test.dir/chain_eval_test.cc.o.d"
  "chain_eval_test"
  "chain_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
