# Empty dependencies file for finiteness_test.
# This may be replaced when dependencies are built.
