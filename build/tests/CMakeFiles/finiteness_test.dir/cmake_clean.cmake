file(REMOVE_RECURSE
  "CMakeFiles/finiteness_test.dir/finiteness_test.cc.o"
  "CMakeFiles/finiteness_test.dir/finiteness_test.cc.o.d"
  "finiteness_test"
  "finiteness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finiteness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
