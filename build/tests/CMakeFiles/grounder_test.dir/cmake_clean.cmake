file(REMOVE_RECURSE
  "CMakeFiles/grounder_test.dir/grounder_test.cc.o"
  "CMakeFiles/grounder_test.dir/grounder_test.cc.o.d"
  "grounder_test"
  "grounder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grounder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
