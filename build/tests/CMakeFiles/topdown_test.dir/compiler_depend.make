# Empty compiler generated dependencies file for topdown_test.
# This may be replaced when dependencies are built.
