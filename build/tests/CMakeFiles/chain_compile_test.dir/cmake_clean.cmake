file(REMOVE_RECURSE
  "CMakeFiles/chain_compile_test.dir/chain_compile_test.cc.o"
  "CMakeFiles/chain_compile_test.dir/chain_compile_test.cc.o.d"
  "chain_compile_test"
  "chain_compile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chain_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
