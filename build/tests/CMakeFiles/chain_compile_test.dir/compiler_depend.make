# Empty compiler generated dependencies file for chain_compile_test.
# This may be replaced when dependencies are built.
