# Empty compiler generated dependencies file for list_utils_test.
# This may be replaced when dependencies are built.
