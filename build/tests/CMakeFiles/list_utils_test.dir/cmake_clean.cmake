file(REMOVE_RECURSE
  "CMakeFiles/list_utils_test.dir/list_utils_test.cc.o"
  "CMakeFiles/list_utils_test.dir/list_utils_test.cc.o.d"
  "list_utils_test"
  "list_utils_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/list_utils_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
