
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rel/catalog.cc" "src/CMakeFiles/cs_rel.dir/rel/catalog.cc.o" "gcc" "src/CMakeFiles/cs_rel.dir/rel/catalog.cc.o.d"
  "/root/repo/src/rel/csv.cc" "src/CMakeFiles/cs_rel.dir/rel/csv.cc.o" "gcc" "src/CMakeFiles/cs_rel.dir/rel/csv.cc.o.d"
  "/root/repo/src/rel/ops.cc" "src/CMakeFiles/cs_rel.dir/rel/ops.cc.o" "gcc" "src/CMakeFiles/cs_rel.dir/rel/ops.cc.o.d"
  "/root/repo/src/rel/relation.cc" "src/CMakeFiles/cs_rel.dir/rel/relation.cc.o" "gcc" "src/CMakeFiles/cs_rel.dir/rel/relation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cs_term.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cs_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
