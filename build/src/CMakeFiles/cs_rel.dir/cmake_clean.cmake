file(REMOVE_RECURSE
  "CMakeFiles/cs_rel.dir/rel/catalog.cc.o"
  "CMakeFiles/cs_rel.dir/rel/catalog.cc.o.d"
  "CMakeFiles/cs_rel.dir/rel/csv.cc.o"
  "CMakeFiles/cs_rel.dir/rel/csv.cc.o.d"
  "CMakeFiles/cs_rel.dir/rel/ops.cc.o"
  "CMakeFiles/cs_rel.dir/rel/ops.cc.o.d"
  "CMakeFiles/cs_rel.dir/rel/relation.cc.o"
  "CMakeFiles/cs_rel.dir/rel/relation.cc.o.d"
  "libcs_rel.a"
  "libcs_rel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_rel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
