file(REMOVE_RECURSE
  "libcs_rel.a"
)
