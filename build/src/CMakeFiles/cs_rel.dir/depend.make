# Empty dependencies file for cs_rel.
# This may be replaced when dependencies are built.
