file(REMOVE_RECURSE
  "CMakeFiles/cs_engine.dir/engine/adornment.cc.o"
  "CMakeFiles/cs_engine.dir/engine/adornment.cc.o.d"
  "CMakeFiles/cs_engine.dir/engine/builtins.cc.o"
  "CMakeFiles/cs_engine.dir/engine/builtins.cc.o.d"
  "CMakeFiles/cs_engine.dir/engine/grounder.cc.o"
  "CMakeFiles/cs_engine.dir/engine/grounder.cc.o.d"
  "CMakeFiles/cs_engine.dir/engine/magic.cc.o"
  "CMakeFiles/cs_engine.dir/engine/magic.cc.o.d"
  "CMakeFiles/cs_engine.dir/engine/seminaive.cc.o"
  "CMakeFiles/cs_engine.dir/engine/seminaive.cc.o.d"
  "CMakeFiles/cs_engine.dir/engine/topdown.cc.o"
  "CMakeFiles/cs_engine.dir/engine/topdown.cc.o.d"
  "libcs_engine.a"
  "libcs_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
