# Empty dependencies file for cs_engine.
# This may be replaced when dependencies are built.
