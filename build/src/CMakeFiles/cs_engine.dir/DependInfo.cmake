
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/adornment.cc" "src/CMakeFiles/cs_engine.dir/engine/adornment.cc.o" "gcc" "src/CMakeFiles/cs_engine.dir/engine/adornment.cc.o.d"
  "/root/repo/src/engine/builtins.cc" "src/CMakeFiles/cs_engine.dir/engine/builtins.cc.o" "gcc" "src/CMakeFiles/cs_engine.dir/engine/builtins.cc.o.d"
  "/root/repo/src/engine/grounder.cc" "src/CMakeFiles/cs_engine.dir/engine/grounder.cc.o" "gcc" "src/CMakeFiles/cs_engine.dir/engine/grounder.cc.o.d"
  "/root/repo/src/engine/magic.cc" "src/CMakeFiles/cs_engine.dir/engine/magic.cc.o" "gcc" "src/CMakeFiles/cs_engine.dir/engine/magic.cc.o.d"
  "/root/repo/src/engine/seminaive.cc" "src/CMakeFiles/cs_engine.dir/engine/seminaive.cc.o" "gcc" "src/CMakeFiles/cs_engine.dir/engine/seminaive.cc.o.d"
  "/root/repo/src/engine/topdown.cc" "src/CMakeFiles/cs_engine.dir/engine/topdown.cc.o" "gcc" "src/CMakeFiles/cs_engine.dir/engine/topdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cs_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cs_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cs_term.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
