file(REMOVE_RECURSE
  "libcs_engine.a"
)
