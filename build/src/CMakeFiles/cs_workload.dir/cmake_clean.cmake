file(REMOVE_RECURSE
  "CMakeFiles/cs_workload.dir/workload/family_gen.cc.o"
  "CMakeFiles/cs_workload.dir/workload/family_gen.cc.o.d"
  "CMakeFiles/cs_workload.dir/workload/flight_gen.cc.o"
  "CMakeFiles/cs_workload.dir/workload/flight_gen.cc.o.d"
  "CMakeFiles/cs_workload.dir/workload/graph_gen.cc.o"
  "CMakeFiles/cs_workload.dir/workload/graph_gen.cc.o.d"
  "CMakeFiles/cs_workload.dir/workload/list_gen.cc.o"
  "CMakeFiles/cs_workload.dir/workload/list_gen.cc.o.d"
  "libcs_workload.a"
  "libcs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
