file(REMOVE_RECURSE
  "libcs_term.a"
)
