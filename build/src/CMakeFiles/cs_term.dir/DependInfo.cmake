
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/term/list_utils.cc" "src/CMakeFiles/cs_term.dir/term/list_utils.cc.o" "gcc" "src/CMakeFiles/cs_term.dir/term/list_utils.cc.o.d"
  "/root/repo/src/term/term.cc" "src/CMakeFiles/cs_term.dir/term/term.cc.o" "gcc" "src/CMakeFiles/cs_term.dir/term/term.cc.o.d"
  "/root/repo/src/term/unify.cc" "src/CMakeFiles/cs_term.dir/term/unify.cc.o" "gcc" "src/CMakeFiles/cs_term.dir/term/unify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
