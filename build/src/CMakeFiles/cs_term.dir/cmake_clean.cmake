file(REMOVE_RECURSE
  "CMakeFiles/cs_term.dir/term/list_utils.cc.o"
  "CMakeFiles/cs_term.dir/term/list_utils.cc.o.d"
  "CMakeFiles/cs_term.dir/term/term.cc.o"
  "CMakeFiles/cs_term.dir/term/term.cc.o.d"
  "CMakeFiles/cs_term.dir/term/unify.cc.o"
  "CMakeFiles/cs_term.dir/term/unify.cc.o.d"
  "libcs_term.a"
  "libcs_term.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_term.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
