# Empty dependencies file for cs_term.
# This may be replaced when dependencies are built.
