file(REMOVE_RECURSE
  "CMakeFiles/cs_common.dir/common/status.cc.o"
  "CMakeFiles/cs_common.dir/common/status.cc.o.d"
  "CMakeFiles/cs_common.dir/common/strings.cc.o"
  "CMakeFiles/cs_common.dir/common/strings.cc.o.d"
  "libcs_common.a"
  "libcs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
