file(REMOVE_RECURSE
  "libcs_ast.a"
)
