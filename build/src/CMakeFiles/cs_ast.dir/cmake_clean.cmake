file(REMOVE_RECURSE
  "CMakeFiles/cs_ast.dir/ast/ast.cc.o"
  "CMakeFiles/cs_ast.dir/ast/ast.cc.o.d"
  "CMakeFiles/cs_ast.dir/ast/parser.cc.o"
  "CMakeFiles/cs_ast.dir/ast/parser.cc.o.d"
  "CMakeFiles/cs_ast.dir/ast/printer.cc.o"
  "CMakeFiles/cs_ast.dir/ast/printer.cc.o.d"
  "CMakeFiles/cs_ast.dir/ast/symbols.cc.o"
  "CMakeFiles/cs_ast.dir/ast/symbols.cc.o.d"
  "libcs_ast.a"
  "libcs_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
