
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ast.cc" "src/CMakeFiles/cs_ast.dir/ast/ast.cc.o" "gcc" "src/CMakeFiles/cs_ast.dir/ast/ast.cc.o.d"
  "/root/repo/src/ast/parser.cc" "src/CMakeFiles/cs_ast.dir/ast/parser.cc.o" "gcc" "src/CMakeFiles/cs_ast.dir/ast/parser.cc.o.d"
  "/root/repo/src/ast/printer.cc" "src/CMakeFiles/cs_ast.dir/ast/printer.cc.o" "gcc" "src/CMakeFiles/cs_ast.dir/ast/printer.cc.o.d"
  "/root/repo/src/ast/symbols.cc" "src/CMakeFiles/cs_ast.dir/ast/symbols.cc.o" "gcc" "src/CMakeFiles/cs_ast.dir/ast/symbols.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cs_term.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
