# Empty compiler generated dependencies file for cs_ast.
# This may be replaced when dependencies are built.
