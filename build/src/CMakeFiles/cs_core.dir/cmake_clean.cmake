file(REMOVE_RECURSE
  "CMakeFiles/cs_core.dir/core/bounded.cc.o"
  "CMakeFiles/cs_core.dir/core/bounded.cc.o.d"
  "CMakeFiles/cs_core.dir/core/buffered.cc.o"
  "CMakeFiles/cs_core.dir/core/buffered.cc.o.d"
  "CMakeFiles/cs_core.dir/core/chain_compile.cc.o"
  "CMakeFiles/cs_core.dir/core/chain_compile.cc.o.d"
  "CMakeFiles/cs_core.dir/core/chain_eval.cc.o"
  "CMakeFiles/cs_core.dir/core/chain_eval.cc.o.d"
  "CMakeFiles/cs_core.dir/core/classify.cc.o"
  "CMakeFiles/cs_core.dir/core/classify.cc.o.d"
  "CMakeFiles/cs_core.dir/core/cost_model.cc.o"
  "CMakeFiles/cs_core.dir/core/cost_model.cc.o.d"
  "CMakeFiles/cs_core.dir/core/counting.cc.o"
  "CMakeFiles/cs_core.dir/core/counting.cc.o.d"
  "CMakeFiles/cs_core.dir/core/finiteness.cc.o"
  "CMakeFiles/cs_core.dir/core/finiteness.cc.o.d"
  "CMakeFiles/cs_core.dir/core/partial.cc.o"
  "CMakeFiles/cs_core.dir/core/partial.cc.o.d"
  "CMakeFiles/cs_core.dir/core/planner.cc.o"
  "CMakeFiles/cs_core.dir/core/planner.cc.o.d"
  "CMakeFiles/cs_core.dir/core/rectify.cc.o"
  "CMakeFiles/cs_core.dir/core/rectify.cc.o.d"
  "CMakeFiles/cs_core.dir/core/split_decision.cc.o"
  "CMakeFiles/cs_core.dir/core/split_decision.cc.o.d"
  "libcs_core.a"
  "libcs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
