
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounded.cc" "src/CMakeFiles/cs_core.dir/core/bounded.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/bounded.cc.o.d"
  "/root/repo/src/core/buffered.cc" "src/CMakeFiles/cs_core.dir/core/buffered.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/buffered.cc.o.d"
  "/root/repo/src/core/chain_compile.cc" "src/CMakeFiles/cs_core.dir/core/chain_compile.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/chain_compile.cc.o.d"
  "/root/repo/src/core/chain_eval.cc" "src/CMakeFiles/cs_core.dir/core/chain_eval.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/chain_eval.cc.o.d"
  "/root/repo/src/core/classify.cc" "src/CMakeFiles/cs_core.dir/core/classify.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/classify.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/cs_core.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/counting.cc" "src/CMakeFiles/cs_core.dir/core/counting.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/counting.cc.o.d"
  "/root/repo/src/core/finiteness.cc" "src/CMakeFiles/cs_core.dir/core/finiteness.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/finiteness.cc.o.d"
  "/root/repo/src/core/partial.cc" "src/CMakeFiles/cs_core.dir/core/partial.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/partial.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/CMakeFiles/cs_core.dir/core/planner.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/planner.cc.o.d"
  "/root/repo/src/core/rectify.cc" "src/CMakeFiles/cs_core.dir/core/rectify.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/rectify.cc.o.d"
  "/root/repo/src/core/split_decision.cc" "src/CMakeFiles/cs_core.dir/core/split_decision.cc.o" "gcc" "src/CMakeFiles/cs_core.dir/core/split_decision.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cs_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cs_rel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cs_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cs_term.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
