#ifndef CHAINSPLIT_AST_PARSER_H_
#define CHAINSPLIT_AST_PARSER_H_

#include <string_view>

#include "ast/ast.h"
#include "common/status.h"

namespace chainsplit {

/// Parses Datalog-with-functions source into `*program`.
///
/// Syntax (Prolog-flavoured, as in the paper):
///
///   parent(tom, bob).                         % fact
///   sg(X, Y) :- sibling(X, Y).                % rule
///   sg(X, Y) :- parent(X, X1), sg(X1, Y1), parent(Y, Y1).
///   insert(X, [Y|Ys], [Y|Zs]) :- X > Y, insert(X, Ys, Zs).
///   travel(..) :- .., F is F1 + F2, ..        % arithmetic
///   ?- sg(tom, Y).                            % query
///
/// Desugaring performed here:
///   * `A < B`, `A =< B`, `A > B`, `A >= B`, `A = B`, `A \= B` become
///     atoms over the reserved comparison predicates.
///   * `Z is X + Y` becomes `sum(X, Y, Z)`; `Z is X - Y` becomes
///     `sum(Y, Z, X)`; `Z is X * Y` becomes `times(X, Y, Z)` —
///     the functional-predicate transformation of §1.2.
///   * List sugar `[a, b | T]` builds '.'(a, '.'(b, T)) terms.
///
/// Ground atoms with empty bodies are recorded as EDB facts (except
/// for rules over reserved builtin predicates, which are rejected);
/// non-ground ones as rules. Errors carry line:column positions.
Status ParseProgram(std::string_view text, Program* program);

/// Parses exactly one query statement ("?- goals.") and returns it
/// WITHOUT appending it to `program->queries()`. Interning aside (the
/// pool and predicate table are internally synchronized), this leaves
/// `*program` untouched, so the query service can parse queries under
/// its shared (read) lock — and concurrently with other parses —
/// without growing the program's query list.
StatusOr<Query> ParseQueryOnly(std::string_view text, Program* program);

/// Parses a single term, e.g. "f(X, [1,2|T])". For tests and examples.
StatusOr<TermId> ParseTerm(std::string_view text, Program* program);

/// Parses a single atom, e.g. "sg(tom, Y)". For tests and examples.
StatusOr<Atom> ParseAtom(std::string_view text, Program* program);

}  // namespace chainsplit

#endif  // CHAINSPLIT_AST_PARSER_H_
