#include "ast/printer.h"

#include "ast/builtin_names.h"
#include "common/strings.h"

namespace chainsplit {
namespace {

bool IsComparisonName(const std::string& name) {
  return name == kPredLt || name == kPredLe || name == kPredGt ||
         name == kPredGe || name == kPredEq || name == kPredNe;
}

}  // namespace

std::string AtomToString(const Program& program, const Atom& atom) {
  const TermPool& pool = program.pool();
  const std::string& name = program.preds().name(atom.pred);
  if (atom.args.size() == 2 && IsComparisonName(name)) {
    return StrCat(pool.ToString(atom.args[0]), " ", name, " ",
                  pool.ToString(atom.args[1]));
  }
  if (atom.args.empty()) return name;
  std::vector<std::string> args;
  args.reserve(atom.args.size());
  for (TermId arg : atom.args) args.push_back(pool.ToString(arg));
  return StrCat(name, "(", StrJoin(args, ", "), ")");
}

std::string RuleToString(const Program& program, const Rule& rule) {
  std::string out = AtomToString(program, rule.head);
  if (!rule.body.empty()) {
    out += " :- ";
    std::vector<std::string> goals;
    goals.reserve(rule.body.size());
    for (const Atom& goal : rule.body) {
      goals.push_back(AtomToString(program, goal));
    }
    out += StrJoin(goals, ", ");
  }
  out += ".";
  return out;
}

std::string QueryToString(const Program& program, const Query& query) {
  std::vector<std::string> goals;
  goals.reserve(query.goals.size());
  for (const Atom& goal : query.goals) {
    goals.push_back(AtomToString(program, goal));
  }
  return StrCat("?- ", StrJoin(goals, ", "), ".");
}

std::string ProgramToString(const Program& program) {
  std::string out;
  for (const Atom& fact : program.facts()) {
    out += AtomToString(program, fact);
    out += ".\n";
  }
  for (const Rule& rule : program.rules()) {
    out += RuleToString(program, rule);
    out += "\n";
  }
  for (const Query& query : program.queries()) {
    out += QueryToString(program, query);
    out += "\n";
  }
  return out;
}

}  // namespace chainsplit
