#include "ast/symbols.h"

#include "common/strings.h"

namespace chainsplit {

std::string PredicateTable::Key(std::string_view name, int arity) {
  return StrCat(name, "/", arity);
}

PredId PredicateTable::Intern(std::string_view name, int arity) {
  std::string key = Key(name, arity);
  std::lock_guard<std::mutex> lock(intern_mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  PredId id = static_cast<PredId>(entries_.size());
  entries_.push_back(Entry{std::string(name), arity});
  index_.emplace(std::move(key), id);
  return id;
}

std::optional<PredId> PredicateTable::Find(std::string_view name,
                                           int arity) const {
  std::lock_guard<std::mutex> lock(intern_mu_);
  auto it = index_.find(Key(name, arity));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::string PredicateTable::Display(PredId p) const {
  return Key(entries_[p].name, entries_[p].arity);
}

}  // namespace chainsplit
