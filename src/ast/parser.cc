#include "ast/parser.h"

#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "ast/builtin_names.h"
#include "common/strings.h"

namespace chainsplit {
namespace {

enum class TokenKind {
  kAtomName,   // lowercase-initial identifier
  kVariable,   // uppercase- or '_'-initial identifier
  kInt,
  kPunct,      // one of the operator/punctuation spellings
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int64_t int_value = 0;
  int line = 1;
  int column = 1;
};

/// Splits source text into tokens. A '.' is a clause terminator; list
/// cells are only built through the [..|..] sugar so '.' is never an
/// identifier character here.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Status Tokenize(std::vector<Token>* out) {
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) {
        out->push_back(Token{TokenKind::kEnd, "", 0, line_, column_});
        return Status::Ok();
      }
      Token token;
      token.line = line_;
      token.column = column_;
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        token.kind = TokenKind::kInt;
        CS_RETURN_IF_ERROR(LexInt(&token));
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        LexIdentifier(&token);
      } else {
        CS_RETURN_IF_ERROR(LexPunct(&token));
      }
      out->push_back(std::move(token));
    }
  }

 private:
  void Advance() {
    if (text_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '%') {
        while (pos_ < text_.size() && text_[pos_] != '\n') Advance();
      } else {
        return;
      }
    }
  }

  Status LexInt(Token* token) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      Advance();
    }
    token->text = std::string(text_.substr(start, pos_ - start));
    token->int_value = 0;
    for (char d : token->text) {
      token->int_value = token->int_value * 10 + (d - '0');
    }
    return Status::Ok();
  }

  void LexIdentifier(Token* token) {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      Advance();
    }
    token->text = std::string(text_.substr(start, pos_ - start));
    char first = token->text[0];
    token->kind = (std::isupper(static_cast<unsigned char>(first)) ||
                   first == '_')
                      ? TokenKind::kVariable
                      : TokenKind::kAtomName;
  }

  Status LexPunct(Token* token) {
    token->kind = TokenKind::kPunct;
    // Longest-match over the two-character operators first.
    static constexpr std::string_view kTwoChar[] = {":-", "?-", "=<", ">=",
                                                    "\\="};
    std::string_view rest = text_.substr(pos_);
    for (std::string_view op : kTwoChar) {
      if (StartsWith(rest, op)) {
        token->text = std::string(op);
        Advance();
        Advance();
        return Status::Ok();
      }
    }
    static constexpr std::string_view kOneChar = "().,[]|<>=+-*";
    char c = text_[pos_];
    if (kOneChar.find(c) != std::string_view::npos) {
      token->text = std::string(1, c);
      Advance();
      return Status::Ok();
    }
    return InvalidArgumentError(StrCat("unexpected character '", c, "' at ",
                                       line_, ":", column_));
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

/// Recursive-descent parser over the token stream. One instance per
/// ParseProgram call; writes clauses into the target Program.
class Parser {
 public:
  Parser(std::vector<Token> tokens, Program* program)
      : tokens_(std::move(tokens)), program_(program) {}

  Status ParseAll() {
    while (!AtEnd()) {
      CS_RETURN_IF_ERROR(ParseClause());
    }
    return Status::Ok();
  }

  StatusOr<TermId> ParseOneTerm() {
    CS_ASSIGN_OR_RETURN(TermId term, ParseTermExpr());
    if (!AtEnd()) return ErrorHere("trailing input after term");
    return term;
  }

  StatusOr<Atom> ParseOneAtom() {
    CS_ASSIGN_OR_RETURN(Atom atom, ParseGoal());
    if (!AtEnd()) return ErrorHere("trailing input after atom");
    return atom;
  }

  StatusOr<Query> ParseOneQuery() {
    if (!TryTakePunct("?-")) return ErrorHere("expected '?-'");
    Query query;
    CS_RETURN_IF_ERROR(ParseGoalList(&query.goals));
    CS_RETURN_IF_ERROR(ExpectPunct("."));
    if (!AtEnd()) return ErrorHere("trailing input after query");
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t n) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  const Token& Take() { return tokens_[pos_++]; }

  bool TryTakePunct(std::string_view text) {
    if (Peek().kind == TokenKind::kPunct && Peek().text == text) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ExpectPunct(std::string_view text) {
    if (TryTakePunct(text)) return Status::Ok();
    return ErrorHere(StrCat("expected '", text, "'"));
  }

  Status ErrorHere(std::string_view message) const {
    const Token& t = Peek();
    return InvalidArgumentError(StrCat(message, " at ", t.line, ":",
                                       t.column, " (near '", t.text, "')"));
  }

  TermPool& pool() { return program_->pool(); }

  Status ParseClause() {
    if (TryTakePunct("?-")) {
      Query query;
      CS_RETURN_IF_ERROR(ParseGoalList(&query.goals));
      CS_RETURN_IF_ERROR(ExpectPunct("."));
      program_->AddQuery(std::move(query));
      return Status::Ok();
    }
    CS_ASSIGN_OR_RETURN(Atom head, ParseGoal());
    Rule rule;
    rule.head = std::move(head);
    if (TryTakePunct(":-")) {
      CS_RETURN_IF_ERROR(ParseGoalList(&rule.body));
    }
    CS_RETURN_IF_ERROR(ExpectPunct("."));
    if (rule.body.empty() && IsGroundAtom(pool(), rule.head)) {
      program_->AddFact(std::move(rule.head));
    } else {
      program_->AddRule(std::move(rule));
    }
    return Status::Ok();
  }

  Status ParseGoalList(std::vector<Atom>* goals) {
    while (true) {
      CS_ASSIGN_OR_RETURN(Atom goal, ParseGoal());
      goals->push_back(std::move(goal));
      if (!TryTakePunct(",")) return Status::Ok();
    }
  }

  /// goal := name '(' args ')'            ordinary atom
  ///       | name                         propositional atom
  ///       | term CMP term                comparison
  ///       | term 'is' expr               arithmetic desugaring
  StatusOr<Atom> ParseGoal() {
    // An atom goal starts with a lowercase name followed by '(' or a
    // clause separator; anything else is the left operand of an
    // operator goal.
    if (Peek().kind == TokenKind::kAtomName && Peek().text != "is" &&
        !IsOperatorNext(1)) {
      Token name = Take();
      Atom atom;
      std::vector<TermId> args;
      if (TryTakePunct("(")) {
        while (true) {
          CS_ASSIGN_OR_RETURN(TermId arg, ParseTermExpr());
          args.push_back(arg);
          if (TryTakePunct(")")) break;
          CS_RETURN_IF_ERROR(ExpectPunct(","));
        }
      }
      atom.pred =
          program_->InternPred(name.text, static_cast<int>(args.size()));
      atom.args = std::move(args);
      return atom;
    }
    CS_ASSIGN_OR_RETURN(TermId lhs, ParseTermExpr());
    return ParseOperatorGoal(lhs);
  }

  /// True when the token at lookahead `n` begins an operator goal, i.e.
  /// the current atom name is really a term operand ("x < y" with x an
  /// atom constant).
  bool IsOperatorNext(size_t n) const {
    const Token& t = PeekAhead(n);
    if (t.kind == TokenKind::kAtomName) return t.text == "is";
    if (t.kind != TokenKind::kPunct) return false;
    static constexpr std::string_view kOps[] = {"<", ">", "=<", ">=", "=",
                                                "\\="};
    for (std::string_view op : kOps) {
      if (t.text == op) return true;
    }
    return false;
  }

  StatusOr<Atom> ParseOperatorGoal(TermId lhs) {
    if (Peek().kind == TokenKind::kAtomName && Peek().text == "is") {
      Take();
      return ParseIsGoal(lhs);
    }
    if (Peek().kind != TokenKind::kPunct) {
      return ErrorHere("expected comparison operator");
    }
    std::string op = Peek().text;
    std::string_view pred_name;
    if (op == "<") {
      pred_name = kPredLt;
    } else if (op == "=<") {
      pred_name = kPredLe;
    } else if (op == ">") {
      pred_name = kPredGt;
    } else if (op == ">=") {
      pred_name = kPredGe;
    } else if (op == "=") {
      pred_name = kPredEq;
    } else if (op == "\\=") {
      pred_name = kPredNe;
    } else {
      return ErrorHere(StrCat("unknown operator '", op, "'"));
    }
    Take();
    CS_ASSIGN_OR_RETURN(TermId rhs, ParseTermExpr());
    Atom atom;
    atom.pred = program_->InternPred(pred_name, 2);
    atom.args = {lhs, rhs};
    return atom;
  }

  /// Desugars `Z is X + Y` -> sum(X,Y,Z); `Z is X - Y` -> sum(Y,Z,X);
  /// `Z is X * Y` -> times(X,Y,Z); `Z is X` -> =(Z,X).
  StatusOr<Atom> ParseIsGoal(TermId result) {
    CS_ASSIGN_OR_RETURN(TermId x, ParseTermExpr());
    Atom atom;
    if (TryTakePunct("+")) {
      CS_ASSIGN_OR_RETURN(TermId y, ParseTermExpr());
      atom.pred = program_->InternPred(kPredSum, 3);
      atom.args = {x, y, result};
    } else if (TryTakePunct("-")) {
      CS_ASSIGN_OR_RETURN(TermId y, ParseTermExpr());
      atom.pred = program_->InternPred(kPredSum, 3);
      atom.args = {y, result, x};  // result = x - y  <=>  x = y + result
    } else if (TryTakePunct("*")) {
      CS_ASSIGN_OR_RETURN(TermId y, ParseTermExpr());
      atom.pred = program_->InternPred(kPredTimes, 3);
      atom.args = {x, y, result};
    } else {
      atom.pred = program_->InternPred(kPredEq, 2);
      atom.args = {result, x};
    }
    return atom;
  }

  /// term := int | '-' int | variable | name | name '(' terms ')' | list
  StatusOr<TermId> ParseTermExpr() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        int64_t value = Take().int_value;
        return pool().MakeInt(value);
      }
      case TokenKind::kVariable: {
        std::string name = Take().text;
        if (name == "_") return pool().FreshVariable("_");
        return pool().MakeVariable(name);
      }
      case TokenKind::kAtomName: {
        std::string name = Take().text;
        if (TryTakePunct("(")) {
          std::vector<TermId> args;
          while (true) {
            CS_ASSIGN_OR_RETURN(TermId arg, ParseTermExpr());
            args.push_back(arg);
            if (TryTakePunct(")")) break;
            CS_RETURN_IF_ERROR(ExpectPunct(","));
          }
          return pool().MakeCompound(name, args);
        }
        return pool().MakeSymbol(name);
      }
      case TokenKind::kPunct:
        if (t.text == "[") return ParseList();
        if (t.text == "-" && PeekAhead(1).kind == TokenKind::kInt) {
          Take();
          int64_t value = Take().int_value;
          return pool().MakeInt(-value);
        }
        break;
      case TokenKind::kEnd:
        break;
    }
    return ErrorHere("expected a term");
  }

  /// list := '[' ']' | '[' terms ']' | '[' terms '|' term ']'
  StatusOr<TermId> ParseList() {
    CS_RETURN_IF_ERROR(ExpectPunct("["));
    if (TryTakePunct("]")) return pool().Nil();
    std::vector<TermId> elements;
    TermId tail = pool().Nil();
    while (true) {
      CS_ASSIGN_OR_RETURN(TermId element, ParseTermExpr());
      elements.push_back(element);
      if (TryTakePunct(",")) continue;
      if (TryTakePunct("|")) {
        CS_ASSIGN_OR_RETURN(tail, ParseTermExpr());
        CS_RETURN_IF_ERROR(ExpectPunct("]"));
        break;
      }
      CS_RETURN_IF_ERROR(ExpectPunct("]"));
      break;
    }
    TermId list = tail;
    for (size_t i = elements.size(); i > 0; --i) {
      list = pool().MakeCons(elements[i - 1], list);
    }
    return list;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  Program* program_;
};

StatusOr<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> tokens;
  Lexer lexer(text);
  CS_RETURN_IF_ERROR(lexer.Tokenize(&tokens));
  return tokens;
}

}  // namespace

Status ParseProgram(std::string_view text, Program* program) {
  CS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), program);
  return parser.ParseAll();
}

StatusOr<Query> ParseQueryOnly(std::string_view text, Program* program) {
  CS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), program);
  return parser.ParseOneQuery();
}

StatusOr<TermId> ParseTerm(std::string_view text, Program* program) {
  CS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), program);
  return parser.ParseOneTerm();
}

StatusOr<Atom> ParseAtom(std::string_view text, Program* program) {
  CS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens), program);
  return parser.ParseOneAtom();
}

}  // namespace chainsplit
