#ifndef CHAINSPLIT_AST_AST_H_
#define CHAINSPLIT_AST_AST_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "ast/symbols.h"
#include "term/term.h"

namespace chainsplit {

/// A positive literal `p(t1, ..., tn)`. Builtins (comparisons,
/// arithmetic, `cons`) are ordinary atoms over reserved predicate names
/// (see engine/builtins.h); the AST does not distinguish them.
struct Atom {
  PredId pred = kNullPred;
  std::vector<TermId> args;

  friend bool operator==(const Atom&, const Atom&) = default;
};

/// A Horn clause `head :- body.` (a fact when `body` is empty).
struct Rule {
  Atom head;
  std::vector<Atom> body;

  friend bool operator==(const Rule&, const Rule&) = default;
};

/// A query `?- g1, ..., gk.`
struct Query {
  std::vector<Atom> goals;

  friend bool operator==(const Query&, const Query&) = default;
};

/// A logic program: IDB rules, EDB facts and queries over a shared
/// TermPool / PredicateTable. The pool is owned by the caller (usually a
/// Database) so terms can be shared with relations.
class Program {
 public:
  explicit Program(TermPool* pool) : pool_(pool) {}
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  TermPool& pool() const { return *pool_; }
  PredicateTable& preds() { return preds_; }
  const PredicateTable& preds() const { return preds_; }

  /// Interns `name/arity` in this program's predicate table.
  PredId InternPred(std::string_view name, int arity) {
    return preds_.Intern(name, arity);
  }

  void AddRule(Rule rule) { rules_.push_back(std::move(rule)); }
  void AddFact(Atom fact) { facts_.push_back(std::move(fact)); }
  void AddQuery(Query query) { queries_.push_back(std::move(query)); }

  const std::vector<Rule>& rules() const { return rules_; }
  std::vector<Rule>& mutable_rules() { return rules_; }
  const std::vector<Atom>& facts() const { return facts_; }
  const std::vector<Query>& queries() const { return queries_; }

  /// Rollback support for transactional parsing: the parser appends
  /// clauses as it goes, so a parse error mid-text leaves a half-applied
  /// prefix behind. Callers that need all-or-nothing semantics (the
  /// query service's Update, which must keep the program consistent
  /// with its WAL) take a Marker first and RollbackTo it on failure.
  /// Interned terms and predicates are not rolled back — interning is
  /// idempotent and semantically inert.
  struct Marker {
    size_t rules = 0;
    size_t facts = 0;
    size_t queries = 0;
  };
  Marker Mark() const {
    return Marker{rules_.size(), facts_.size(), queries_.size()};
  }
  void RollbackTo(const Marker& marker) {
    rules_.resize(marker.rules);
    facts_.resize(marker.facts);
    queries_.resize(marker.queries);
  }

  /// All declared finiteness constraints (snapshot serialization).
  const std::unordered_map<PredId, std::vector<std::string>>& finite_modes()
      const {
    return finite_modes_;
  }

  /// Declares a finiteness constraint (§2.2 of the paper) for an IDB
  /// predicate: a call with (at least) the 'b' arguments of `adornment`
  /// bound has finitely many answers. EDB relations satisfy every mode
  /// trivially; builtins carry their modes intrinsically
  /// (BuiltinModeEvaluable). A declared mode lets the chain-split
  /// analysis place an IDB literal in the immediately evaluable portion
  /// instead of delaying it.
  void DeclareFiniteMode(PredId pred, std::string adornment) {
    finite_modes_[pred].push_back(std::move(adornment));
  }

  /// True when some declared mode of `pred` is covered by `boundness`
  /// (every 'b' of the mode is bound in `boundness`).
  bool HasFiniteMode(PredId pred, const std::string& boundness) const;

  /// Rules whose head predicate is `pred`.
  std::vector<const Rule*> RulesFor(PredId pred) const;

  /// True if some rule defines `pred` (it is an IDB predicate).
  bool IsIdb(PredId pred) const;

  /// Distinct variables of `rule` in first-occurrence order
  /// (head first, then body).
  std::vector<TermId> RuleVariables(const Rule& rule) const;

 private:
  TermPool* pool_;
  PredicateTable preds_;
  std::vector<Rule> rules_;
  std::vector<Atom> facts_;
  std::vector<Query> queries_;
  std::unordered_map<PredId, std::vector<std::string>> finite_modes_;
};

/// Collects the distinct variables of `atom` in order into `*out`.
void CollectAtomVariables(const TermPool& pool, const Atom& atom,
                          std::vector<TermId>* out);

/// True when every argument of `atom` is ground.
bool IsGroundAtom(const TermPool& pool, const Atom& atom);

}  // namespace chainsplit

#endif  // CHAINSPLIT_AST_AST_H_
