#include "ast/ast.h"

namespace chainsplit {

bool Program::HasFiniteMode(PredId pred, const std::string& boundness) const {
  auto it = finite_modes_.find(pred);
  if (it == finite_modes_.end()) return false;
  for (const std::string& mode : it->second) {
    if (mode.size() != boundness.size()) continue;
    bool covered = true;
    for (size_t i = 0; i < mode.size(); ++i) {
      covered = covered && (mode[i] != 'b' || boundness[i] == 'b');
    }
    if (covered) return true;
  }
  return false;
}

std::vector<const Rule*> Program::RulesFor(PredId pred) const {
  std::vector<const Rule*> out;
  for (const Rule& rule : rules_) {
    if (rule.head.pred == pred) out.push_back(&rule);
  }
  return out;
}

bool Program::IsIdb(PredId pred) const {
  for (const Rule& rule : rules_) {
    if (rule.head.pred == pred) return true;
  }
  return false;
}

std::vector<TermId> Program::RuleVariables(const Rule& rule) const {
  std::vector<TermId> vars;
  for (TermId arg : rule.head.args) pool_->CollectVariables(arg, &vars);
  for (const Atom& atom : rule.body) {
    for (TermId arg : atom.args) pool_->CollectVariables(arg, &vars);
  }
  return vars;
}

void CollectAtomVariables(const TermPool& pool, const Atom& atom,
                          std::vector<TermId>* out) {
  for (TermId arg : atom.args) pool.CollectVariables(arg, out);
}

bool IsGroundAtom(const TermPool& pool, const Atom& atom) {
  for (TermId arg : atom.args) {
    if (!pool.IsGround(arg)) return false;
  }
  return true;
}

}  // namespace chainsplit
