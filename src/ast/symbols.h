#ifndef CHAINSPLIT_AST_SYMBOLS_H_
#define CHAINSPLIT_AST_SYMBOLS_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/chunked_vector.h"

namespace chainsplit {

/// Handle to a predicate (name/arity pair) interned in a PredicateTable.
using PredId = int32_t;

inline constexpr PredId kNullPred = -1;

/// Interning table for predicate symbols. Predicates are identified by
/// name *and* arity (`p/2` and `p/3` are distinct predicates).
///
/// Thread-safety: Intern and Find are serialized by an internal mutex;
/// the entry arena is append-only, so name()/arity()/Display() on an
/// already-obtained PredId are lock-free and safe concurrently with
/// interning.
class PredicateTable {
 public:
  PredicateTable() = default;
  PredicateTable(const PredicateTable&) = delete;
  PredicateTable& operator=(const PredicateTable&) = delete;

  /// Interns `name/arity`, returning its id.
  PredId Intern(std::string_view name, int arity);

  /// Looks up `name/arity`; nullopt if never interned.
  std::optional<PredId> Find(std::string_view name, int arity) const;

  const std::string& name(PredId p) const { return entries_[p].name; }
  int arity(PredId p) const { return entries_[p].arity; }

  /// "name/arity" display form.
  std::string Display(PredId p) const;

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }

 private:
  struct Entry {
    std::string name;
    int arity;
  };

  static std::string Key(std::string_view name, int arity);

  ChunkedVector<Entry> entries_;
  std::unordered_map<std::string, PredId> index_;
  mutable std::mutex intern_mu_;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_AST_SYMBOLS_H_
