#ifndef CHAINSPLIT_AST_PRINTER_H_
#define CHAINSPLIT_AST_PRINTER_H_

#include <string>

#include "ast/ast.h"

namespace chainsplit {

/// Renders `atom` in source syntax, e.g. "sg(tom, Y)". Comparison
/// builtins are rendered infix ("X > Y").
std::string AtomToString(const Program& program, const Atom& atom);

/// Renders `rule` as "head :- b1, ..., bk." (or "head." for a fact).
std::string RuleToString(const Program& program, const Rule& rule);

/// Renders `query` as "?- g1, ..., gk.".
std::string QueryToString(const Program& program, const Query& query);

/// Renders the whole program: facts, then rules, then queries.
std::string ProgramToString(const Program& program);

}  // namespace chainsplit

#endif  // CHAINSPLIT_AST_PRINTER_H_
