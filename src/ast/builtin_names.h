#ifndef CHAINSPLIT_AST_BUILTIN_NAMES_H_
#define CHAINSPLIT_AST_BUILTIN_NAMES_H_

#include <string_view>

namespace chainsplit {

/// Reserved predicate names shared by the parser (which desugars
/// operators into these atoms) and the evaluators (which give them
/// builtin semantics; see engine/builtins.h).
///
/// Comparisons, arity 2.
inline constexpr std::string_view kPredLt = "<";
inline constexpr std::string_view kPredLe = "=<";
inline constexpr std::string_view kPredGt = ">";
inline constexpr std::string_view kPredGe = ">=";
inline constexpr std::string_view kPredEq = "=";   // unification
inline constexpr std::string_view kPredNe = "\\=";

/// Functional predicates (§1.2): `V = f(X1..Xk)` is rectified to
/// `f(X1..Xk, V)`. Arity 3 each.
inline constexpr std::string_view kPredSum = "sum";      // sum(X,Y,Z): Z=X+Y
inline constexpr std::string_view kPredTimes = "times";  // times(X,Y,Z): Z=X*Y
inline constexpr std::string_view kPredCons = "cons";    // cons(H,T,L): L=[H|T]

}  // namespace chainsplit

#endif  // CHAINSPLIT_AST_BUILTIN_NAMES_H_
