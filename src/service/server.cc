#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace chainsplit {
namespace {

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(QueryService* service) : service_(service) {}

TcpServer::~TcpServer() { Stop(); }

StatusOr<int> TcpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(StrCat("bind: ", std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(StrCat("listen: ", std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(StrCat("getsockname: ", std::strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void TcpServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (shutdown_.cancelled()) return;
      if (errno == EINTR) continue;
      return;  // listen socket closed
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      ::close(fd);
      return;
    }
    connections_.push_back(fd);
    threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  SessionOptions session_options;
  session_options.tcp_mode = true;
  session_options.cancel = &shutdown_;
  Session session(service_, session_options);

  std::string banner = "% chainsplit ready\n.\n";
  if (!SendAll(fd, banner)) return;

  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    // Drain complete lines already buffered before reading more.
    size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      buffer.erase(0, newline + 1);
      std::string out;
      open = session.HandleLine(line, &out);
      if (!out.empty() && !SendAll(fd, out)) open = false;
    }
    if (!open) break;
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // client closed (or Stop() shut the socket down)
    buffer.append(chunk, static_cast<size_t>(n));
  }
  // Close under the lock: an fd still listed in connections_ is always
  // open, so Stop() can never shut down a recycled descriptor.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(connections_.begin(), connections_.end(), fd);
  if (it != connections_.end()) {
    connections_.erase(it);
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void TcpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  shutdown_.Cancel();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Wake up every connection thread; each closes its own fd on exit.
    for (int fd : connections_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : connections_) ::close(fd);
  connections_.clear();
  listen_fd_ = -1;
}

}  // namespace chainsplit
