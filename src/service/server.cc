#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace chainsplit {
namespace {

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

TcpServer::TcpServer(QueryService* service) : service_(service) {}

TcpServer::~TcpServer() { Stop(); }

StatusOr<int> TcpServer::Start(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return InternalError(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(StrCat("bind: ", std::strerror(errno)));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(StrCat("listen: ", std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return InternalError(StrCat("getsockname: ", std::strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void TcpServer::AcceptLoop() {
  while (true) {
    ReapFinished();
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (shutdown_.cancelled()) return;
      if (errno == EINTR) continue;
      return;  // listen socket closed
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      ::close(fd);
      return;
    }
    connections_.push_back(fd);
    // Reserve the node first so the thread can carry its own stable
    // iterator (list nodes never move).
    threads_.emplace_back();
    auto self = std::prev(threads_.end());
    *self = std::thread([this, fd, self] { ServeConnection(fd, self); });
  }
}

void TcpServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done.swap(reaped_);
  }
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::ServeConnection(int fd,
                                std::list<std::thread>::iterator self) {
  SessionOptions session_options;
  session_options.tcp_mode = true;
  session_options.cancel = &shutdown_;
  Session session(service_, session_options);

  std::string banner = "% chainsplit ready\n.\n";
  if (SendAll(fd, banner)) {
    std::string buffer;
    char chunk[4096];
    bool open = true;
    while (open) {
      // Drain every complete buffered line before reading more,
      // tracking a read offset and compacting the buffer once per
      // drain — erasing the front per line is quadratic when a
      // pipelined client sends many lines in one segment.
      size_t start = 0;
      size_t newline;
      while (open &&
             (newline = buffer.find('\n', start)) != std::string::npos) {
        std::string line = buffer.substr(start, newline - start);
        start = newline + 1;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        std::string out;
        open = session.HandleLine(line, &out);
        if (!out.empty() && !SendAll(fd, out)) open = false;
      }
      if (!open) break;
      buffer.erase(0, start);
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // client closed (or Stop() shut the socket down)
      buffer.append(chunk, static_cast<size_t>(n));
    }
  }
  // Single exit path — a banner-send failure must run the same cleanup
  // or the descriptor leaks. Close under the lock: an fd still listed
  // in connections_ is always open, so Stop() can never shut down a
  // recycled descriptor.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(connections_.begin(), connections_.end(), fd);
  if (it != connections_.end()) {
    connections_.erase(it);
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  // Park this thread's own handle for the accept loop to join. When
  // Stop() already took ownership (stopped_), the handle was spliced
  // out of threads_ and `self` is no longer ours to touch.
  if (!stopped_) {
    reaped_.push_back(std::move(*self));
    threads_.erase(self);
  }
}

int64_t TcpServer::tracked_connection_threads() {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(threads_.size() + reaped_.size());
}

void TcpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  shutdown_.Cancel();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::list<std::thread> threads;
  std::vector<std::thread> reaped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Wake up every connection thread; each closes its own fd on exit.
    // Taking the whole list transfers handle ownership to Stop — the
    // threads see stopped_ and skip their self-reap.
    for (int fd : connections_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(threads_);
    reaped.swap(reaped_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : reaped) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : connections_) ::close(fd);
  connections_.clear();
  listen_fd_ = -1;
}

}  // namespace chainsplit
