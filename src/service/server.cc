#include "service/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strings.h"
#include "net/frame.h"
#include "net/listen.h"

namespace chainsplit {
namespace {

bool SendAll(int fd, const std::string& data, NetCounters* counters) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) return false;
    counters->bytes_out.fetch_add(n, std::memory_order_relaxed);
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Adapts a Session to the epoll engine's per-connection handler.
class SessionHandler : public LineHandler {
 public:
  SessionHandler(QueryService* service, const SessionOptions& options)
      : session_(service, options) {}

  std::string Greeting() override { return "% chainsplit ready\n.\n"; }

  bool HandleLine(const std::string& line, std::string* out) override {
    return session_.HandleLine(line, out);
  }

 private:
  Session session_;
};

}  // namespace

TcpServer::TcpServer(QueryService* service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

TcpServer::~TcpServer() { Stop(); }

StatusOr<int> TcpServer::Start(int port) {
  CS_ASSIGN_OR_RETURN(
      int listen_fd,
      OpenListenSocket(options_.listen_addr, port, options_.listen_backlog));
  StatusOr<int> bound = BoundPort(listen_fd);
  if (!bound.ok()) {
    ::close(listen_fd);
    return bound.status();
  }
  port_ = *bound;
  StatusOr<int> started = options_.mode == ServerOptions::Mode::kEpoll
                              ? StartEpoll(listen_fd)
                              : StartThreaded(listen_fd);
  if (started.ok()) RegisterMetrics();
  return started;
}

void TcpServer::RegisterMetrics() {
  MetricsRegistry* registry = service_->metrics();
  const std::string port = StrCat(port_);
  auto add = [&](const char* name, const char* help, MetricType type,
                 const std::atomic<int64_t>* value, MetricLabels labels) {
    labels.emplace_back("port", port);
    metric_callbacks_.push_back(
        registry->AddCallback(name, help, type, std::move(labels), [value] {
          return static_cast<double>(
              value->load(std::memory_order_relaxed));
        }));
  };
  add("csdd_net_accepted_total", "Connections accepted",
      MetricType::kCounter, &counters_.accepted, {});
  add("csdd_net_active_connections", "Currently open connections",
      MetricType::kGauge, &counters_.active_connections, {});
  add("csdd_net_dispatched_total",
      "Request lines handed to the dispatcher pool", MetricType::kCounter,
      &counters_.dispatched, {});
  add("csdd_net_responses_total", "Completed responses written back",
      MetricType::kCounter, &counters_.responses, {});
  add("csdd_net_bytes_total", "Bytes over the wire by direction",
      MetricType::kCounter, &counters_.bytes_in, {{"direction", "in"}});
  add("csdd_net_bytes_total", "Bytes over the wire by direction",
      MetricType::kCounter, &counters_.bytes_out, {{"direction", "out"}});
  add("csdd_net_queue_depth", "Requests in the bounded queue right now",
      MetricType::kGauge, &counters_.queue_depth, {});
  add("csdd_net_queue_high_watermark", "Deepest the queue has ever been",
      MetricType::kGauge, &counters_.queue_high_watermark, {});
  // Admission-control rejections join the service's per-outcome request
  // family: summing csdd_requests_total over every outcome (including
  // these) equals the request lines the front end accepted off the
  // wire, so service- and net-level totals reconcile.
  const char* outcome_help =
      "Service requests by outcome (the TCP server adds "
      "rejected_overload/rejected_oversize series to this family)";
  add("csdd_requests_total", outcome_help, MetricType::kCounter,
      &counters_.rejected_overload, {{"outcome", "rejected_overload"}});
  add("csdd_requests_total", outcome_help, MetricType::kCounter,
      &counters_.rejected_oversize, {{"outcome", "rejected_oversize"}});
}

void TcpServer::UnregisterMetrics() {
  for (uint64_t id : metric_callbacks_) {
    service_->metrics()->RemoveCallback(id);
  }
  metric_callbacks_.clear();
}

StatusOr<int> TcpServer::StartEpoll(int listen_fd) {
  SessionOptions session_options;
  session_options.tcp_mode = true;
  session_options.cancel = &shutdown_;
  session_options.net = &counters_;
  session_options.parallel_scc = options_.parallel_scc;
  EngineOptions engine_options;
  engine_options.queue_capacity = options_.queue_capacity;
  engine_options.workers = options_.workers;
  engine_options.max_line_bytes = options_.max_line_bytes;
  QueryService* service = service_;
  engine_ = std::make_unique<EpollEngine>(
      [service, session_options] {
        return std::make_unique<SessionHandler>(service, session_options);
      },
      engine_options, &counters_);
  Status status = engine_->Start(listen_fd);
  if (!status.ok()) {
    engine_.reset();  // the engine closed listen_fd on the way out
    return status;
  }
  return port_;
}

StatusOr<int> TcpServer::StartThreaded(int listen_fd) {
  listen_fd_ = listen_fd;
  counters_.mode = "threaded";
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return port_;
}

void TcpServer::AcceptLoop() {
  while (true) {
    ReapFinished();
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (shutdown_.cancelled()) return;
      if (errno == EINTR) continue;
      return;  // listen socket closed
    }
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    counters_.active_connections.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      ::close(fd);
      counters_.active_connections.fetch_sub(1, std::memory_order_relaxed);
      return;
    }
    connections_.push_back(fd);
    // Reserve the node first so the thread can carry its own stable
    // iterator (list nodes never move).
    threads_.emplace_back();
    auto self = std::prev(threads_.end());
    *self = std::thread([this, fd, self] { ServeConnection(fd, self); });
  }
}

void TcpServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done.swap(reaped_);
  }
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void TcpServer::ServeConnection(int fd,
                                std::list<std::thread>::iterator self) {
  SessionOptions session_options;
  session_options.tcp_mode = true;
  session_options.cancel = &shutdown_;
  session_options.net = &counters_;
  session_options.parallel_scc = options_.parallel_scc;
  Session session(service_, session_options);

  std::string banner = "% chainsplit ready\n.\n";
  if (SendAll(fd, banner, &counters_)) {
    // The same framer as the epoll engine: CRLF handling, pipelined
    // drain, and the max-line guard behave byte-identically.
    LineFramer framer(options_.max_line_bytes);
    char chunk[4096];
    std::string line;
    bool open = true;
    while (open) {
      LineFramer::Result result = LineFramer::Result::kNeedMore;
      while (open &&
             (result = framer.Next(&line)) == LineFramer::Result::kLine) {
        std::string out;
        open = session.HandleLine(line, &out);
        counters_.dispatched.fetch_add(1, std::memory_order_relaxed);
        counters_.responses.fetch_add(1, std::memory_order_relaxed);
        if (!out.empty() && !SendAll(fd, out, &counters_)) open = false;
      }
      if (!open) break;
      if (result == LineFramer::Result::kOversize) {
        // Reject the unframeable stream in-band, then close.
        counters_.rejected_oversize.fetch_add(1, std::memory_order_relaxed);
        counters_.responses.fetch_add(1, std::memory_order_relaxed);
        SendAll(fd, OversizeFrame(framer.max_line_bytes()), &counters_);
        break;
      }
      ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // client closed (or Stop() shut the socket down)
      counters_.bytes_in.fetch_add(n, std::memory_order_relaxed);
      framer.Append(chunk, static_cast<size_t>(n));
    }
  }
  // Single exit path — a banner-send failure must run the same cleanup
  // or the descriptor leaks. Close under the lock: an fd still listed
  // in connections_ is always open, so Stop() can never shut down a
  // recycled descriptor.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find(connections_.begin(), connections_.end(), fd);
  if (it != connections_.end()) {
    connections_.erase(it);
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    counters_.active_connections.fetch_sub(1, std::memory_order_relaxed);
  }
  // Park this thread's own handle for the accept loop to join. When
  // Stop() already took ownership (stopped_), the handle was spliced
  // out of threads_ and `self` is no longer ours to touch.
  if (!stopped_) {
    reaped_.push_back(std::move(*self));
    threads_.erase(self);
  }
}

int64_t TcpServer::tracked_connection_threads() {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(threads_.size() + reaped_.size());
}

void TcpServer::Stop() {
  shutdown_.Cancel();
  // Drop the registry callbacks first: after Stop nothing may read
  // counters_ through the service's registry. Idempotent (the id list
  // is cleared).
  UnregisterMetrics();
  if (engine_ != nullptr) {
    // Workers drain their in-flight (now cancelled) requests, then the
    // loop exits and every connection fd is reclaimed.
    engine_->Stop();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::list<std::thread> threads;
  std::vector<std::thread> reaped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Wake up every connection thread; each closes its own fd on exit.
    // Taking the whole list transfers handle ownership to Stop — the
    // threads see stopped_ and skip their self-reap.
    for (int fd : connections_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(threads_);
    reaped.swap(reaped_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  for (std::thread& t : reaped) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (int fd : connections_) ::close(fd);
  connections_.clear();
  listen_fd_ = -1;
}

}  // namespace chainsplit
