#ifndef CHAINSPLIT_SERVICE_SERVER_H_
#define CHAINSPLIT_SERVICE_SERVER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "net/epoll_engine.h"
#include "net/net_counters.h"
#include "service/query_service.h"
#include "service/session.h"

namespace chainsplit {

struct ServerOptions {
  enum class Mode {
    /// Event-driven front end: one epoll loop thread owning every
    /// connection, a bounded request queue with admission control, a
    /// fixed dispatcher pool. The default.
    kEpoll,
    /// Legacy thread-per-connection front end, kept for differential
    /// testing (`--net-mode=threaded`).
    kThreaded,
  };
  Mode mode = Mode::kEpoll;

  /// IPv4 bind address; loopback by default. "0.0.0.0" serves
  /// non-local clients.
  std::string listen_addr = "127.0.0.1";
  int listen_backlog = 64;

  /// Maximum request-line size in both modes; a longer line gets an
  /// in-band error frame and the connection is closed (an endless
  /// line must not grow server memory without bound). 0 = unlimited.
  size_t max_line_bytes = 1 << 20;

  /// Epoll mode: bounded request-queue capacity (overflow rejects
  /// with `% overloaded`) and dispatcher pool size (0 = max(2,
  /// hardware_concurrency)).
  size_t queue_capacity = 256;
  int workers = 0;

  /// Initial SCC-parallel worker count for every server session
  /// (SessionOptions::parallel_scc); 0 = monolithic evaluation.
  int parallel_scc = 0;
};

/// A line-protocol TCP front-end over a QueryService: one Session per
/// connection (docs/service.md).
///
/// Protocol (both modes, byte-identical): the client sends the same
/// lines the csdd REPL accepts; the server answers each completed
/// input with the session's output followed by a lone "." terminator
/// line. On connect the server sends a "% chainsplit ready" banner
/// (also "."-terminated). `:quit` closes the connection. Under
/// overload the epoll mode answers a request line with a
/// "% overloaded" frame instead of queueing it.
class TcpServer {
 public:
  explicit TcpServer(QueryService* service, ServerOptions options = {});
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds `options.listen_addr`:`port` (0 = pick an ephemeral port)
  /// and starts serving. Returns the bound port.
  StatusOr<int> Start(int port);

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Stops accepting, cancels in-flight requests via the shutdown
  /// token, closes every connection and joins all threads. Idempotent.
  void Stop();

  /// Cancellation token chained into every request served; fires on
  /// Stop().
  const CancelToken* shutdown_token() const { return &shutdown_; }

  /// Front-end telemetry (the `:net` command renders these).
  const NetCounters& net_counters() const { return counters_; }

  /// Threaded mode: connection threads currently tracked (serving or
  /// awaiting reap) — the no-unbounded-growth test hook. Epoll mode
  /// has no per-connection threads and always returns 0.
  int64_t tracked_connection_threads();

 private:
  StatusOr<int> StartThreaded(int listen_fd);
  StatusOr<int> StartEpoll(int listen_fd);
  /// Publishes counters_ on the service's metrics registry as
  /// csdd_net_* series (labelled with the bound port), plus
  /// rejected_overload/rejected_oversize outcomes joining the
  /// service's csdd_requests_total family so service- and net-level
  /// request totals reconcile. Stop() unregisters them.
  void RegisterMetrics();
  void UnregisterMetrics();
  void AcceptLoop();
  /// `self` is this thread's node in threads_; on exit the thread moves
  /// its own handle to reaped_ (unless Stop() already took ownership).
  void ServeConnection(int fd, std::list<std::thread>::iterator self);
  /// Joins every thread parked in reaped_ (called off the accept loop;
  /// reaped threads have already left ServeConnection or are in its
  /// final statement, so each join is near-instant).
  void ReapFinished();

  QueryService* service_;
  const ServerOptions options_;
  CancelToken shutdown_;
  NetCounters counters_;
  int port_ = 0;
  /// Registry callback ids owned by this server (see RegisterMetrics);
  /// removed before the counters they read can die.
  std::vector<uint64_t> metric_callbacks_;

  // Epoll mode.
  std::unique_ptr<EpollEngine> engine_;

  // Threaded mode.
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex mu_;  // guards connections_, threads_, reaped_, stopped_
  std::vector<int> connections_;
  // Live connection threads; a list so each thread can erase its own
  // node without invalidating others' iterators. Finished handles move
  // to reaped_ and are joined by the accept loop (or Stop), so neither
  // container grows with the total number of connections ever served.
  std::list<std::thread> threads_;
  std::vector<std::thread> reaped_;
  bool stopped_ = false;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_SERVICE_SERVER_H_
