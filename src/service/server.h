#ifndef CHAINSPLIT_SERVICE_SERVER_H_
#define CHAINSPLIT_SERVICE_SERVER_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "service/query_service.h"
#include "service/session.h"

namespace chainsplit {

/// A line-protocol TCP front-end over a QueryService: one Session per
/// connection, one thread per connection (docs/service.md).
///
/// Protocol: the client sends the same lines the csdd REPL accepts;
/// the server answers each completed input with the session's output
/// followed by a lone "." terminator line. On connect the server sends
/// a "% chainsplit ready" banner (also "."-terminated). `:quit` closes
/// the connection.
class TcpServer {
 public:
  explicit TcpServer(QueryService* service);
  ~TcpServer();
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = pick an ephemeral port) and starts
  /// the accept loop. Returns the bound port.
  StatusOr<int> Start(int port);

  /// The bound port (valid after a successful Start).
  int port() const { return port_; }

  /// Stops accepting, cancels in-flight requests via the shutdown
  /// token, closes every connection and joins all threads. Idempotent.
  void Stop();

  /// Cancellation token chained into every request served; fires on
  /// Stop().
  const CancelToken* shutdown_token() const { return &shutdown_; }

  /// Connection threads currently tracked (serving or awaiting reap).
  /// Test hook for the no-unbounded-growth invariant: after clients
  /// disconnect and one more connection cycles, this returns to O(live
  /// connections), not O(connections ever accepted).
  int64_t tracked_connection_threads();

 private:
  void AcceptLoop();
  /// `self` is this thread's node in threads_; on exit the thread moves
  /// its own handle to reaped_ (unless Stop() already took ownership).
  void ServeConnection(int fd, std::list<std::thread>::iterator self);
  /// Joins every thread parked in reaped_ (called off the accept loop;
  /// reaped threads have already left ServeConnection or are in its
  /// final statement, so each join is near-instant).
  void ReapFinished();

  QueryService* service_;
  CancelToken shutdown_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;  // guards connections_, threads_, reaped_, stopped_
  std::vector<int> connections_;
  // Live connection threads; a list so each thread can erase its own
  // node without invalidating others' iterators. Finished handles move
  // to reaped_ and are joined by the accept loop (or Stop), so neither
  // container grows with the total number of connections ever served.
  std::list<std::thread> threads_;
  std::vector<std::thread> reaped_;
  bool stopped_ = false;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_SERVICE_SERVER_H_
