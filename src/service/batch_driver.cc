#include "service/batch_driver.h"

#include <algorithm>
#include <chrono>

#include "common/thread_pool.h"

namespace chainsplit {

BatchReport RunBatchWorkload(QueryService* service,
                             const std::vector<BatchOp>& ops,
                             const BatchOptions& options) {
  BatchReport report;
  if (ops.empty() || options.num_clients <= 0 ||
      options.ops_per_client <= 0) {
    return report;
  }
  using Clock = std::chrono::steady_clock;

  struct ClientResult {
    std::vector<double> latencies_ms;
    int64_t queries = 0;
    int64_t updates = 0;
    int64_t errors = 0;
    int64_t answer_rows = 0;
  };
  std::vector<ClientResult> clients(options.num_clients);

  const ServiceStats before = service->stats();
  ThreadPool pool(options.num_clients);
  const Clock::time_point start = Clock::now();
  for (int c = 0; c < options.num_clients; ++c) {
    pool.Submit([service, &ops, &options, &clients, c] {
      ClientResult& mine = clients[c];
      mine.latencies_ms.reserve(options.ops_per_client);
      for (int i = 0; i < options.ops_per_client; ++i) {
        const BatchOp& op = ops[(c + i) % ops.size()];
        const Clock::time_point t0 = Clock::now();
        if (op.kind == BatchOp::Kind::kQuery) {
          QueryResponse response = service->Query(op.text, options.request);
          ++mine.queries;
          if (!response.status.ok()) ++mine.errors;
          mine.answer_rows += static_cast<int64_t>(response.rows.size());
        } else {
          UpdateResponse response = service->Update(op.text, options.request);
          ++mine.updates;
          if (!response.status.ok()) ++mine.errors;
        }
        mine.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count());
      }
    });
  }
  pool.Wait();
  report.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> latencies;
  for (const ClientResult& client : clients) {
    report.queries += client.queries;
    report.updates += client.updates;
    report.errors += client.errors;
    report.answer_rows += client.answer_rows;
    latencies.insert(latencies.end(), client.latencies_ms.begin(),
                     client.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    report.p50_ms = latencies[latencies.size() / 2];
    report.p99_ms = latencies[std::min(latencies.size() - 1,
                                       latencies.size() * 99 / 100)];
  }
  if (report.seconds > 0) {
    report.qps =
        static_cast<double>(report.queries + report.updates) / report.seconds;
  }

  const ServiceStats after = service->stats();
  const int64_t result_lookups =
      (after.result_cache_hits - before.result_cache_hits) +
      (after.result_cache_misses - before.result_cache_misses);
  if (result_lookups > 0) {
    report.result_hit_rate =
        static_cast<double>(after.result_cache_hits -
                            before.result_cache_hits) /
        static_cast<double>(result_lookups);
  }
  const int64_t plan_lookups =
      (after.plan_cache_hits - before.plan_cache_hits) +
      (after.plan_cache_misses - before.plan_cache_misses);
  if (plan_lookups > 0) {
    report.plan_hit_rate =
        static_cast<double>(after.plan_cache_hits - before.plan_cache_hits) /
        static_cast<double>(plan_lookups);
  }
  return report;
}

}  // namespace chainsplit
