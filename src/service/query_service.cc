#include "service/query_service.h"

#include <algorithm>
#include <fstream>
#include <optional>
#include <sstream>

#include "ast/parser.h"
#include "common/strings.h"
#include "core/rectify.h"
#include "rel/csv.h"

namespace chainsplit {

template <typename V>
void QueryService::LruCache<V>::Put(std::string key,
                                    std::shared_ptr<V> value,
                                    size_t capacity) {
  if (capacity == 0) return;
  auto it = index.find(key);
  if (it != index.end()) {
    it->second->value = std::move(value);
    order.splice(order.begin(), order, it->second);
    return;
  }
  order.push_front(Node{std::move(key), std::move(value)});
  index.emplace(std::string_view(order.front().key), order.begin());
  while (order.size() > capacity) {
    index.erase(std::string_view(order.back().key));
    order.pop_back();
  }
}

template <typename V>
void QueryService::LruCache<V>::Erase(std::string_view key) {
  auto it = index.find(key);
  if (it == index.end()) return;
  order.erase(it->second);
  index.erase(it);
}

QueryService::QueryService(ServiceOptions options)
    : options_(std::move(options)) {
  InitMetrics();
}

void QueryService::InitMetrics() {
  c_.queries = registry_.AddCounter(
      "csdd_queries_total", "Query statements evaluated (incl. embedded)");
  c_.updates = registry_.AddCounter("csdd_updates_total",
                                    "Update statements applied");
  c_.plan_cache_hits = registry_.AddCounter(
      "csdd_plan_cache_lookups_total", "Plan cache lookups by result",
      {{"result", "hit"}});
  c_.plan_cache_misses = registry_.AddCounter(
      "csdd_plan_cache_lookups_total", "Plan cache lookups by result",
      {{"result", "miss"}});
  c_.result_cache_hits = registry_.AddCounter(
      "csdd_result_cache_lookups_total", "Result cache lookups by result",
      {{"result", "hit"}});
  c_.result_cache_misses = registry_.AddCounter(
      "csdd_result_cache_lookups_total", "Result cache lookups by result",
      {{"result", "miss"}});
  c_.result_cache_invalidations = registry_.AddCounter(
      "csdd_result_cache_invalidations_total",
      "Cached results dropped because a dependency's version moved");
  c_.result_cache_stale_skips = registry_.AddCounter(
      "csdd_result_cache_stale_skips_total",
      "Result-cache inserts skipped because the rules epoch moved "
      "between evaluation and the insert");
  c_.scc_schedules = registry_.AddCounter(
      "csdd_scc_schedules_total",
      "Queries evaluated through the stratified SCC scheduler");
  c_.scc_strata = registry_.AddCounter(
      "csdd_scc_strata_total",
      "SCC strata evaluated by the stratified scheduler");
  c_.scc_parallel_strata = registry_.AddCounter(
      "csdd_scc_parallel_strata_total",
      "SCC strata dispatched onto the thread pool in parallel");
  c_.deadline_exceeded = registry_.AddCounter(
      "csdd_evals_cut_total", "Evaluations cut short, by cause",
      {{"cause", "deadline_exceeded"}});
  c_.cancelled = registry_.AddCounter(
      "csdd_evals_cut_total", "Evaluations cut short, by cause",
      {{"cause", "cancelled"}});
  c_.shared_evals = registry_.AddCounter(
      "csdd_evals_total", "Uncached evaluations by lock mode",
      {{"lock", "shared"}});
  c_.exclusive_evals = registry_.AddCounter(
      "csdd_evals_total", "Uncached evaluations by lock mode",
      {{"lock", "exclusive"}});
  c_.overlay_relations = registry_.AddCounter(
      "csdd_overlay_relations_total",
      "Query-local overlay relations materialized");
  c_.overlay_bytes = registry_.AddCounter(
      "csdd_overlay_bytes_total",
      "Arena bytes of query-local overlay scratch");
  c_.compacted_relations = registry_.AddCounter(
      "csdd_compacted_relations_total",
      "Relations marked read-mostly and postings-compacted");
  c_.compaction_blocks_before = registry_.AddCounter(
      "csdd_compaction_blocks_total", "Posting blocks around compaction",
      {{"when", "before"}});
  c_.compaction_blocks_after = registry_.AddCounter(
      "csdd_compaction_blocks_total", "Posting blocks around compaction",
      {{"when", "after"}});
  c_.compaction_moved_blocks = registry_.AddCounter(
      "csdd_compaction_moved_blocks_total",
      "Posting blocks rewritten by compaction");
  const char* outcome_help =
      "Service requests by outcome (the TCP server adds "
      "rejected_overload/rejected_oversize series to this family)";
  c_.outcome_ok = registry_.AddCounter("csdd_requests_total", outcome_help,
                                       {{"outcome", "ok"}});
  c_.outcome_error = registry_.AddCounter("csdd_requests_total", outcome_help,
                                          {{"outcome", "error"}});
  c_.outcome_deadline_exceeded = registry_.AddCounter(
      "csdd_requests_total", outcome_help, {{"outcome", "deadline_exceeded"}});
  c_.outcome_cancelled = registry_.AddCounter(
      "csdd_requests_total", outcome_help, {{"outcome", "cancelled"}});
  c_.fixpoint_iterations = registry_.AddCounter(
      "csdd_fixpoint_iterations_total",
      "Semi-naive fixpoint iterations over all uncached queries");
  c_.derived_tuples = registry_.AddCounter(
      "csdd_derived_tuples_total",
      "Tuples derived by the semi-naive evaluator");
  c_.chain_levels = registry_.AddCounter(
      "csdd_chain_levels_total",
      "Forward levels walked by the buffered chain-split evaluator");
  c_.sld_steps = registry_.AddCounter("csdd_sld_steps_total",
                                      "Top-down SLD resolution steps");
  c_.slow_queries = registry_.AddCounter(
      "csdd_slow_queries_total", "Queries written to the slow-query log");
  c_.query_latency = registry_.AddHistogram(
      "csdd_query_latency_us", "End-to-end Query() latency in microseconds");
  // Storage-layer view of the base database: relation count and total
  // rows, read under the shared db lock at scrape time.
  registry_.AddCallback("csdd_storage_relations",
                        "Stored relations in the base database",
                        MetricType::kGauge, {}, [this] {
                          std::shared_lock<std::shared_mutex> lock(db_mu_);
                          return static_cast<double>(
                              db_.StoredPredicates().size());
                        });
  registry_.AddCallback("csdd_storage_rows",
                        "Total stored tuples in the base database",
                        MetricType::kGauge, {}, [this] {
                          std::shared_lock<std::shared_mutex> lock(db_mu_);
                          double rows = 0;
                          for (PredId pred : db_.StoredPredicates()) {
                            const Relation* rel = db_.GetRelation(pred);
                            if (rel != nullptr) rows += rel->num_rows();
                          }
                          return rows;
                        });
}

Counter* QueryService::OutcomeCounter(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return c_.outcome_ok;
    case StatusCode::kDeadlineExceeded:
      return c_.outcome_deadline_exceeded;
    case StatusCode::kCancelled:
      return c_.outcome_cancelled;
    default:
      return c_.outcome_error;
  }
}

void QueryService::AccumulateEvalStats(const QueryResponse& response) {
  if (response.result_cache_hit) return;
  c_.fixpoint_iterations->Inc(response.seminaive_stats.iterations);
  c_.derived_tuples->Inc(response.seminaive_stats.total_derived);
  c_.chain_levels->Inc(response.buffered_stats.levels);
  c_.sld_steps->Inc(response.topdown_stats.steps);
  if (response.scc_strata > 0) {
    c_.scc_schedules->Inc();
    c_.scc_strata->Inc(response.scc_strata);
    c_.scc_parallel_strata->Inc(response.scc_parallel_strata);
  }
}

QueryService::~QueryService() {
  {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    stop_checkpointer_ = true;
  }
  checkpoint_cv_.notify_all();
  if (checkpointer_.joinable()) checkpointer_.join();
  // wal_'s destructor does a final best-effort fsync.
}

StatusOr<RecoveryResult> QueryService::EnableDurability(
    const DurabilityOptions& options) {
  if (wal_ != nullptr) {
    return FailedPreconditionError("durability already enabled");
  }
  if (options.data_dir.empty()) {
    return InvalidArgumentError("durability needs a data_dir");
  }
  durability_ = options;
  CS_ASSIGN_OR_RETURN(
      RecoveryResult recovered,
      RecoverDatabase(options.data_dir, &db_,
                      [this](const WalRecord& record) {
                        return ApplyWalRecord(record);
                      }));
  recovery_ = recovered;
  CS_ASSIGN_OR_RETURN(
      wal_, Wal::Open(options.data_dir, recovered.last_lsn + 1, options.wal));
  {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    logged_lsn_ = recovered.last_lsn;
    durable_snapshot_lsn_ = recovered.snapshot_lsn;
  }
  if (options.snapshot_every_records > 0) {
    checkpointer_ = std::thread([this] { CheckpointerLoop(); });
  }
  // Expose the durability counters as registry callbacks: `:wal` and
  // `:metrics` read the same live state. wal_ is never reset, so the
  // captured `this` accesses are safe for the service's lifetime.
  registry_.AddCallback("csdd_wal_records_total", "WAL records appended",
                        MetricType::kCounter, {}, [this] {
                          return static_cast<double>(wal_->stats().records);
                        });
  registry_.AddCallback("csdd_wal_bytes_total", "WAL bytes appended",
                        MetricType::kCounter, {}, [this] {
                          return static_cast<double>(wal_->stats().bytes);
                        });
  registry_.AddCallback("csdd_wal_syncs_total", "WAL fsync calls",
                        MetricType::kCounter, {}, [this] {
                          return static_cast<double>(wal_->stats().syncs);
                        });
  registry_.AddCallback(
      "csdd_wal_segments_total", "WAL segments created", MetricType::kCounter,
      {}, [this] {
        return static_cast<double>(wal_->stats().segments_created);
      });
  registry_.AddCallback("csdd_wal_last_lsn", "Highest LSN appended",
                        MetricType::kGauge, {}, [this] {
                          return static_cast<double>(wal_->stats().last_lsn);
                        });
  registry_.AddCallback("csdd_snapshot_lsn",
                        "LSN of the newest durable snapshot",
                        MetricType::kGauge, {}, [this] {
                          std::lock_guard<std::mutex> lock(checkpoint_mu_);
                          return static_cast<double>(durable_snapshot_lsn_);
                        });
  registry_.AddCallback("csdd_snapshots_total", "Snapshots written",
                        MetricType::kCounter, {}, [this] {
                          std::lock_guard<std::mutex> lock(checkpoint_mu_);
                          return static_cast<double>(snapshots_written_);
                        });
  registry_.AddCallback("csdd_checkpoint_failures_total",
                        "Failed checkpoint attempts", MetricType::kCounter,
                        {}, [this] {
                          std::lock_guard<std::mutex> lock(checkpoint_mu_);
                          return static_cast<double>(checkpoint_failures_);
                        });
  return recovered;
}

Status QueryService::ApplyWalRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecordType::kUpdate: {
      // Replay the exact deterministic apply path, minus the embedded
      // queries (they mutate nothing and their answers went to a
      // client long gone) and minus re-logging.
      UpdateResponse response = UpdateInternal(
          record.text, RequestOptions{}, /*log=*/false, /*run_queries=*/false);
      return response.status;
    }
    case WalRecordType::kCsvLoad: {
      StatusOr<int64_t> inserted =
          LoadCsvContent(record.pred_name, record.arity, record.text,
                         record.delimiter, /*log=*/false);
      if (!inserted.ok()) return inserted.status();
      return Status::Ok();
    }
  }
  return InternalError(StrCat("unknown wal record type ",
                              static_cast<int>(record.type)));
}

void QueryService::NoteLoggedRecord(uint64_t lsn) {
  bool trigger = false;
  {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    logged_lsn_ = lsn;
    trigger = durability_.snapshot_every_records > 0 &&
              lsn >= durable_snapshot_lsn_ +
                         static_cast<uint64_t>(
                             durability_.snapshot_every_records);
  }
  if (trigger) checkpoint_cv_.notify_all();
}

void QueryService::CheckpointerLoop() {
  std::unique_lock<std::mutex> lock(checkpoint_mu_);
  const uint64_t every =
      static_cast<uint64_t>(durability_.snapshot_every_records);
  while (true) {
    checkpoint_cv_.wait(lock, [&] {
      return stop_checkpointer_ ||
             logged_lsn_ >= durable_snapshot_lsn_ + every;
    });
    if (stop_checkpointer_) return;
    lock.unlock();
    Status status = Checkpoint(nullptr);  // failure recorded in stats
    lock.lock();
    if (!status.ok() && !stop_checkpointer_) {
      // Do not spin on a persistently failing disk: wait for the next
      // logged record (or shutdown) before retrying.
      checkpoint_cv_.wait(lock);
    }
  }
}

Status QueryService::Checkpoint(SnapshotWriteStats* stats) {
  if (wal_ == nullptr) {
    return FailedPreconditionError("durability not enabled");
  }
  // Serialize checkpoints against each other; db_mu_ is acquired
  // *inside* (never hold checkpoint_mu_ while waiting for db_mu_ —
  // mutators take them in that order).
  std::lock_guard<std::mutex> run_lock(snapshot_run_mu_);
  SnapshotWriteStats local;
  Status written;
  uint64_t lsn = 0;
  {
    // Shared lock: queries keep flowing, mutation waits. No mutator
    // can append to the WAL while we hold it, so last_lsn() is the
    // exact horizon of the database state being serialized.
    std::shared_lock<std::shared_mutex> db_lock(db_mu_);
    lsn = wal_->last_lsn();
    written = WriteSnapshot(db_, lsn, durability_.data_dir, &local);
  }
  if (!written.ok()) {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    ++checkpoint_failures_;
    last_checkpoint_error_ = written.message();
    return written;
  }
  // The snapshot is durable: seal the current segment and drop the
  // ones it fully covers. Failures here are cleanup failures, not
  // durability failures — recovery handles leftover segments (their
  // records are skipped as <= snapshot LSN), so report but don't
  // unwind.
  Status rotated = wal_->Rotate();
  if (rotated.ok()) {
    StatusOr<int> removed = wal_->DeleteSegmentsBelow(lsn + 1);
    if (!removed.ok()) rotated = removed.status();
  }
  {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    durable_snapshot_lsn_ = lsn;
    ++snapshots_written_;
    if (!rotated.ok()) {
      ++checkpoint_failures_;
      last_checkpoint_error_ = rotated.message();
    }
  }
  if (stats != nullptr) *stats = local;
  return rotated;
}

Status QueryService::FlushWal() {
  if (wal_ == nullptr) return Status::Ok();
  return wal_->Sync();
}

DurabilityStats QueryService::durability_stats() const {
  DurabilityStats out;
  if (wal_ == nullptr) return out;
  out.enabled = true;
  out.sync = durability_.wal.sync;
  out.data_dir = durability_.data_dir;
  WalStats wal = wal_->stats();
  out.last_lsn = wal.last_lsn;
  out.wal_records = wal.records;
  out.wal_bytes = wal.bytes;
  out.wal_syncs = wal.syncs;
  out.wal_segments_created = wal.segments_created;
  {
    std::lock_guard<std::mutex> lock(checkpoint_mu_);
    out.snapshot_lsn = durable_snapshot_lsn_;
    out.snapshots_written = snapshots_written_;
    out.checkpoint_failures = checkpoint_failures_;
    out.last_checkpoint_error = last_checkpoint_error_;
  }
  out.recovery_cold_start = recovery_.cold_start;
  out.recovery_torn_tail = recovery_.torn_tail;
  out.replayed_records = recovery_.replayed_records;
  out.skipped_records = recovery_.skipped_records;
  return out;
}

uint64_t QueryService::rules_epoch() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return rules_epoch_;
}

ServiceStats QueryService::stats() const {
  // A thin view over the registry: each field reads its backing
  // counter. No lock — counter reads are wait-free shard sums.
  ServiceStats out;
  out.queries = c_.queries->Value();
  out.updates = c_.updates->Value();
  out.plan_cache_hits = c_.plan_cache_hits->Value();
  out.plan_cache_misses = c_.plan_cache_misses->Value();
  out.result_cache_hits = c_.result_cache_hits->Value();
  out.result_cache_misses = c_.result_cache_misses->Value();
  out.result_cache_invalidations = c_.result_cache_invalidations->Value();
  out.result_cache_stale_skips = c_.result_cache_stale_skips->Value();
  out.scc_schedules = c_.scc_schedules->Value();
  out.scc_strata = c_.scc_strata->Value();
  out.scc_parallel_strata = c_.scc_parallel_strata->Value();
  out.deadline_exceeded = c_.deadline_exceeded->Value();
  out.cancelled = c_.cancelled->Value();
  out.shared_evals = c_.shared_evals->Value();
  out.exclusive_evals = c_.exclusive_evals->Value();
  out.overlay_relations = c_.overlay_relations->Value();
  out.overlay_bytes = c_.overlay_bytes->Value();
  out.compacted_relations = c_.compacted_relations->Value();
  out.compaction_blocks_before = c_.compaction_blocks_before->Value();
  out.compaction_blocks_after = c_.compaction_blocks_after->Value();
  out.compaction_moved_blocks = c_.compaction_moved_blocks->Value();
  return out;
}

void QueryService::CountStatus(const Status& status) {
  if (status.code() == StatusCode::kDeadlineExceeded) {
    c_.deadline_exceeded->Inc();
  } else if (status.code() == StatusCode::kCancelled) {
    c_.cancelled->Inc();
  }
}

std::string QueryService::last_trace_json() const {
  std::lock_guard<std::mutex> lock(trace_mu_);
  return last_trace_.has_value() ? last_trace_->ToChromeJson() : std::string();
}

void QueryService::EnableSlowQueryLog(std::string dir,
                                      std::chrono::milliseconds threshold) {
  if (threshold.count() <= 0) {
    slow_log_.reset();
    return;
  }
  slow_log_ = std::make_unique<SlowQueryLog>(std::move(dir), threshold);
}

int64_t QueryService::slow_queries_logged() const {
  return slow_log_ == nullptr ? 0 : slow_log_->queries_logged();
}

const std::vector<Rule>* QueryService::RectifiedRules() {
  // Concurrent shared-lock evaluations race here; the mutex makes the
  // rectification happen once per epoch. The returned pointer stays
  // valid for the caller's whole evaluation: invalidation only happens
  // under the exclusive db lock, which excludes every evaluator.
  std::lock_guard<std::mutex> lock(rectified_mu_);
  if (!rectified_valid_) {
    rectified_ = RectifyRules(&db_.program());
    rectified_valid_ = true;
  }
  return &rectified_;
}

std::vector<std::pair<PredId, uint64_t>> QueryService::SnapshotDeps(
    const std::vector<PredId>& preds) {
  std::vector<std::pair<PredId, uint64_t>> deps;
  deps.reserve(preds.size());
  for (PredId pred : preds) {
    const Relation* rel = db_.GetRelation(pred);
    deps.emplace_back(pred, rel == nullptr ? 0 : rel->version());
  }
  return deps;
}

void QueryService::CompactDeps(
    const std::vector<std::pair<PredId, uint64_t>>& deps) {
  if (!options_.compact_read_mostly) return;
  // Claim newly read-mostly predicates under cache_mu_, then compact
  // them under a brief exclusive db lock. The common case — every dep
  // already marked — takes no db lock at all.
  std::vector<PredId> fresh;
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (const auto& [pred, version] : deps) {
      (void)version;
      if (read_mostly_.insert(pred).second) fresh.push_back(pred);
    }
  }
  if (fresh.empty()) return;
  std::unique_lock<std::shared_mutex> db_lock(db_mu_);
  for (PredId pred : fresh) {
    if (db_.GetRelation(pred) == nullptr) continue;
    Relation* rel = db_.GetOrCreateRelation(pred);
    if (rel->num_rows() == 0) continue;
    Relation::CompactionStats compaction = rel->CompactPostings();
    c_.compacted_relations->Inc();
    c_.compaction_blocks_before->Inc(compaction.blocks_before);
    c_.compaction_blocks_after->Inc(compaction.blocks_after);
    c_.compaction_moved_blocks->Inc(compaction.moved_blocks);
  }
}

Status QueryService::RunPlanner(EvalDb* eval_db,
                                const ::chainsplit::Query& query,
                                const std::string& signature,
                                const CancelToken* cancel, Trace* trace,
                                int parallel_scc, QueryResponse* response,
                                QueryResult* result) {
  PlannerOptions planner = options_.planner;
  planner.cancel = cancel;
  planner.trace = trace;
  planner.rectified = RectifiedRules();
  // Per-request opt-in wins over the service default; the shared pool
  // serves every request (scc_pool stays null).
  if (parallel_scc > 0) planner.parallel_scc = parallel_scc;

  std::shared_ptr<PlanEntry> plan;
  if (options_.enable_plan_cache && !signature.empty() &&
      !planner.force.has_value()) {
    TraceSpan lookup_span(trace, "plan_cache_lookup");
    std::lock_guard<std::mutex> lock(cache_mu_);
    plan = plan_cache_.Get(signature);
    if (plan != nullptr && plan->rules_epoch != rules_epoch_) {
      // The technique was chosen under different rules: forcing it now
      // could pick a plan the current program makes wrong or
      // inapplicable. Rule updates clear the whole cache, so a stale
      // entry should be unreachable — revalidate anyway (defense in
      // depth; TestOnlyInjectPlanEntry exercises this path).
      plan_cache_.Erase(signature);
      plan = nullptr;
    }
    if (plan != nullptr) {
      c_.plan_cache_hits->Inc();
    } else {
      c_.plan_cache_misses->Inc();
    }
    lookup_span.Attr("hit", plan != nullptr ? int64_t{1} : int64_t{0});
  }
  if (plan != nullptr) {
    planner.force = plan->technique;
    response->plan_cache_hit = true;
  }

  Status status = EvaluateQueryInto(eval_db, query, planner, result);
  if (plan != nullptr && !status.ok() &&
      status.code() != StatusCode::kDeadlineExceeded &&
      status.code() != StatusCode::kCancelled) {
    // The cached technique stopped being applicable (e.g. a pushed
    // constraint no longer deducible after updates): drop the entry
    // and re-plan from scratch.
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      plan_cache_.Erase(signature);
    }
    response->plan_cache_hit = false;
    planner.force = options_.planner.force;
    status = EvaluateQueryInto(eval_db, query, planner, result);
    plan = nullptr;
  }
  if (status.ok() && plan == nullptr && options_.enable_plan_cache &&
      !signature.empty() && !options_.planner.force.has_value()) {
    auto entry = std::make_shared<PlanEntry>();
    entry->technique = result->technique;
    std::lock_guard<std::mutex> lock(cache_mu_);
    // The caller holds db_mu_ (at least shared), so rules_epoch_
    // cannot have moved since the evaluation started: stamping the
    // current epoch stamps the epoch the technique was chosen under.
    entry->rules_epoch = rules_epoch_;
    plan_cache_.Put(signature, std::move(entry),
                    options_.plan_cache_capacity);
  }
  if (response->plan_cache_hit) {
    result->plan += "plan: technique reused from plan cache\n";
  }
  return status;
}

QueryResponse QueryService::EvaluateOn(EvalDb* eval_db,
                                       const ::chainsplit::Query& query,
                                       const std::string& signature,
                                       const RequestOptions& request) {
  QueryResponse response;

  CancelToken token;
  std::chrono::milliseconds deadline =
      request.deadline.count() > 0 ? request.deadline
                                   : options_.default_deadline;
  if (deadline.count() > 0) token.SetTimeout(deadline);
  token.set_parent(request.cancel);
  const CancelToken* cancel =
      (deadline.count() > 0 || request.cancel != nullptr) ? &token : nullptr;

  QueryResult result;
  response.status = RunPlanner(eval_db, query, signature, cancel,
                               request.trace, request.parallel_scc, &response,
                               &result);
  response.technique = result.technique;
  response.plan = std::move(result.plan);
  response.seminaive_stats = result.seminaive_stats;
  response.buffered_stats = result.buffered_stats;
  response.topdown_stats = result.topdown_stats;
  response.scc_strata = result.scc_strata;
  response.scc_parallel_strata = result.scc_parallel_strata;
  response.scc_max_ready_width = result.scc_max_ready_width;
  if (!response.status.ok()) return response;

  const TermPool& pool =
      static_cast<const EvalDb*>(eval_db)->pool();
  response.vars.reserve(result.vars.size());
  for (TermId var : result.vars) response.vars.push_back(pool.ToString(var));
  response.rows.reserve(result.answers.size());
  for (const Tuple& row : result.answers) {
    std::vector<std::string> formatted;
    formatted.reserve(row.size());
    for (TermId value : row) formatted.push_back(pool.ToString(value));
    response.rows.push_back(std::move(formatted));
  }
  return response;
}

QueryResponse QueryService::EvaluateUncached(
    EvalDb* eval_db, std::string_view text, const RequestOptions& request,
    bool want_deps, std::vector<std::pair<PredId, uint64_t>>* deps) {
  QueryResponse response;
  Program& program = eval_db->program();
  // ParseQueryOnly leaves the program untouched apart from interning
  // (internally synchronized), so this is safe under the shared lock.
  TraceSpan parse_span(request.trace, "parse");
  StatusOr<::chainsplit::Query> parsed = ParseQueryOnly(text, &program);
  parse_span.End();
  if (!parsed.ok()) {
    response.status = parsed.status();
    return response;
  }
  const ::chainsplit::Query& query = *parsed;

  // Bypass mode skips the plan cache too (empty signature): it is the
  // uncached reference path.
  response = EvaluateOn(
      eval_db, query,
      request.bypass_cache ? std::string() : PlanSignature(program, query),
      request);
  if (want_deps) *deps = SnapshotDeps(ReachablePreds(program, query));
  return response;
}

QueryResponse QueryService::Query(std::string_view text,
                                  const RequestOptions& request) {
  const auto start = std::chrono::steady_clock::now();
  // Trace when the caller supplied a sink, when tracing is toggled on,
  // or when the slow-query log is armed (its trace is only written if
  // the query turns out slow). The common untraced path pays two
  // relaxed loads and nothing else.
  std::optional<Trace> owned;
  RequestOptions req = request;
  if (req.trace == nullptr &&
      (tracing_.load(std::memory_order_relaxed) ||
       (slow_log_ != nullptr && slow_log_->enabled()))) {
    owned.emplace(std::string(text));
    req.trace = &*owned;
  }

  QueryResponse response = QueryImpl(text, req);

  const auto duration = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  c_.query_latency->Record(duration.count());
  OutcomeCounter(response.status.code())->Inc();
  AccumulateEvalStats(response);
  if (req.trace != nullptr) req.trace->Finish();
  if (owned.has_value()) {
    if (slow_log_ != nullptr) {
      StatusOr<std::string> logged = slow_log_->Record(*owned, duration);
      if (logged.ok() && !logged->empty()) c_.slow_queries->Inc();
    }
    if (tracing_.load(std::memory_order_relaxed)) {
      // Keep the span tree itself; `:trace last` renders it on demand.
      std::lock_guard<std::mutex> lock(trace_mu_);
      last_trace_.emplace(std::move(*owned));
    }
  }
  return response;
}

QueryResponse QueryService::QueryImpl(std::string_view text,
                                      const RequestOptions& request) {
  QueryResponse response;
  std::optional<CanonicalQueryText> canonical = CanonicalizeQueryText(text);
  if (!canonical.has_value()) {
    response.status = InvalidArgumentError(
        "Query() expects a single `?- goal, ... .` statement");
    return response;
  }
  c_.queries->Inc();

  const bool use_result_cache =
      options_.enable_result_cache && !request.bypass_cache;
  if (use_result_cache) {
    TraceSpan lookup_span(request.trace, "result_cache_lookup");
    std::shared_ptr<ResultEntry> entry;
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      entry = result_cache_.Get(canonical->key);
    }
    if (entry != nullptr) {
      bool valid = entry->num_vars == canonical->vars.size();
      bool stale_deps = false;
      if (valid) {
        // Validate the dependency snapshot under the shared lock: any
        // concurrent fact writer holds the exclusive side while it
        // bumps relation versions.
        std::shared_lock<std::shared_mutex> db_lock(db_mu_);
        for (const auto& [pred, version] : entry->deps) {
          const Relation* rel = db_.GetRelation(pred);
          if ((rel == nullptr ? 0 : rel->version()) != version) {
            stale_deps = true;
            break;
          }
        }
        std::lock_guard<std::mutex> lock(cache_mu_);
        if (stale_deps || entry->rules_epoch != rules_epoch_) valid = false;
      }
      if (valid) {
        response.vars = canonical->vars;
        response.rows = entry->rows;
        response.technique = entry->technique;
        response.plan = entry->plan + "plan: answers from result cache\n";
        response.result_cache_hit = true;
        response.seminaive_stats = entry->seminaive_stats;
        response.buffered_stats = entry->buffered_stats;
        response.topdown_stats = entry->topdown_stats;
        c_.result_cache_hits->Inc();
        lookup_span.Attr("hit", int64_t{1});
        return response;
      }
      {
        std::lock_guard<std::mutex> lock(cache_mu_);
        result_cache_.Erase(canonical->key);
      }
      if (stale_deps) c_.result_cache_invalidations->Inc();
      lookup_span.Attr("invalidated", stale_deps ? int64_t{1} : int64_t{0});
    }
    c_.result_cache_misses->Inc();
    lookup_span.Attr("hit", int64_t{0});
  }

  // Miss (or bypass): parse and evaluate. The default path holds only
  // the *shared* lock — ParseQueryOnly leaves the program untouched
  // and evaluation writes into a query-local DatabaseOverlay — so
  // concurrent uncached queries run in parallel against the frozen
  // base. force_exclusive instead evaluates directly against the base
  // under the exclusive lock (the pre-overlay reference semantics).
  std::vector<std::pair<PredId, uint64_t>> deps;
  const bool want_deps = use_result_cache;
  uint64_t epoch_at_eval = 0;
  if (request.force_exclusive) {
    TraceSpan eval_span(request.trace, "evaluate");
    eval_span.Attr("lock", "exclusive");
    std::unique_lock<std::shared_mutex> db_lock(db_mu_);
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      epoch_at_eval = rules_epoch_;
    }
    c_.exclusive_evals->Inc();
    response = EvaluateUncached(&db_, text, request, want_deps, &deps);
  } else {
    TraceSpan eval_span(request.trace, "evaluate");
    eval_span.Attr("lock", "shared");
    std::shared_lock<std::shared_mutex> db_lock(db_mu_);
    {
      std::lock_guard<std::mutex> lock(cache_mu_);
      epoch_at_eval = rules_epoch_;
    }
    c_.shared_evals->Inc();
    DatabaseOverlay overlay(&db_);
    response = EvaluateUncached(&overlay, text, request, want_deps, &deps);
    DatabaseOverlay::Telemetry scratch = overlay.telemetry();
    c_.overlay_relations->Inc(scratch.relations);
    c_.overlay_bytes->Inc(scratch.arena_bytes);
    eval_span.Attr("overlay_relations", scratch.relations);
    eval_span.Attr("overlay_bytes", scratch.arena_bytes);
  }
  CountStatus(response.status);
  if (!response.status.ok() || !use_result_cache) return response;

  TraceSpan store_span(request.trace, "result_cache_store");
  auto entry = std::make_shared<ResultEntry>();
  entry->deps = std::move(deps);
  // Stamp the epoch observed *during* evaluation (captured under the
  // db lock), not the current one: a rule update interleaved between
  // lock release and this Put must leave the entry detectably stale.
  entry->rules_epoch = epoch_at_eval;
  entry->rows = response.rows;
  entry->num_vars = response.vars.size();
  entry->technique = response.technique;
  entry->plan = response.plan;
  entry->seminaive_stats = response.seminaive_stats;
  entry->buffered_stats = response.buffered_stats;
  entry->topdown_stats = response.topdown_stats;
  store_span.Attr("rows", static_cast<int64_t>(entry->rows.size()));
  store_span.Attr("deps", static_cast<int64_t>(entry->deps.size()));
  CompactDeps(entry->deps);
  if (test_before_put_hook_) test_before_put_hook_();
  std::lock_guard<std::mutex> lock(cache_mu_);
  // Revalidate the epoch under the same lock as the insert: a rule
  // update between releasing the db lock and here has already cleared
  // the cache, and inserting this entry would resurrect pre-update
  // answers into the post-update cache. The entry is stamped with
  // epoch_at_eval, so a lookup would reject it anyway (defense in
  // depth) — but skipping the insert also keeps a born-stale entry
  // from evicting a live one.
  if (rules_epoch_ != epoch_at_eval) {
    c_.result_cache_stale_skips->Inc();
    store_span.Attr("skipped_stale", int64_t{1});
    return response;
  }
  result_cache_.Put(canonical->key, std::move(entry),
                    options_.result_cache_capacity);
  return response;
}

Status QueryService::TestOnlyInjectPlanEntry(std::string_view query_text,
                                             Technique technique,
                                             uint64_t rules_epoch) {
  std::unique_lock<std::shared_mutex> db_lock(db_mu_);
  StatusOr<::chainsplit::Query> parsed =
      ParseQueryOnly(query_text, &db_.program());
  if (!parsed.ok()) return parsed.status();
  auto entry = std::make_shared<PlanEntry>();
  entry->technique = technique;
  entry->rules_epoch = rules_epoch;
  std::lock_guard<std::mutex> lock(cache_mu_);
  plan_cache_.Put(PlanSignature(db_.program(), *parsed), std::move(entry),
                  options_.plan_cache_capacity);
  return Status::Ok();
}

UpdateResponse QueryService::Update(std::string_view text,
                                    const RequestOptions& request) {
  UpdateResponse response =
      UpdateInternal(text, request, /*log=*/true, /*run_queries=*/true);
  OutcomeCounter(response.status.code())->Inc();
  return response;
}

UpdateResponse QueryService::UpdateInternal(std::string_view text,
                                            const RequestOptions& request,
                                            bool log, bool run_queries) {
  UpdateResponse response;
  std::unique_lock<std::shared_mutex> db_lock(db_mu_);
  Program& program = db_.program();
  const Program::Marker marker = program.Mark();
  const size_t facts_before = marker.facts;
  const size_t rules_before = marker.rules;
  const size_t queries_before = marker.queries;

  response.status = ParseProgram(text, &program);
  if (log) c_.updates->Inc();
  if (!response.status.ok()) {
    // The parser appends clauses as it goes: without this rollback a
    // mid-text error would leave the valid prefix applied (rules
    // visible without an epoch bump, facts never inserted) and — with
    // durability on — applied-but-not-logged. All-or-nothing instead.
    program.RollbackTo(marker);
    return response;
  }

  if (log && wal_ != nullptr) {
    // Validate → log → apply: the record hits the log only after the
    // whole text parsed, and the mutation is applied only after the
    // record is in the log. A WAL failure aborts the statement.
    WalRecord record;
    record.type = WalRecordType::kUpdate;
    record.text = std::string(text);
    StatusOr<uint64_t> lsn = wal_->Append(std::move(record));
    if (!lsn.ok()) {
      program.RollbackTo(marker);
      response.status = lsn.status();
      return response;
    }
    NoteLoggedRecord(*lsn);
  }

  for (size_t i = facts_before; i < program.facts().size(); ++i) {
    const Atom& fact = program.facts()[i];
    if (db_.InsertFact(fact.pred, fact.args)) ++response.new_facts;
  }
  if (program.rules().size() != rules_before) {
    response.new_rules =
        static_cast<int64_t>(program.rules().size() - rules_before);
    {
      std::lock_guard<std::mutex> lock(rectified_mu_);
      rectified_valid_ = false;
    }
    std::lock_guard<std::mutex> lock(cache_mu_);
    ++rules_epoch_;
    // New rules can change any derivable answer and any plan choice.
    result_cache_.Clear();
    plan_cache_.Clear();
  }
  for (size_t i = queries_before; run_queries && i < program.queries().size();
       ++i) {
    const ::chainsplit::Query& query = program.queries()[i];
    // Embedded queries run through an overlay too (still under the
    // exclusive lock we already hold): the base never accumulates
    // derived evaluation relations.
    DatabaseOverlay overlay(&db_);
    QueryResponse qr =
        EvaluateOn(&overlay, query, PlanSignature(program, query), request);
    DatabaseOverlay::Telemetry scratch = overlay.telemetry();
    c_.queries->Inc();
    c_.exclusive_evals->Inc();
    c_.overlay_relations->Inc(scratch.relations);
    c_.overlay_bytes->Inc(scratch.arena_bytes);
    CountStatus(qr.status);
    response.query_responses.push_back(std::move(qr));
  }
  return response;
}

UpdateResponse QueryService::LoadFile(const std::string& path,
                                      const RequestOptions& request) {
  std::ifstream in(path);
  if (!in) {
    UpdateResponse response;
    response.status = NotFoundError(StrCat("cannot open ", path));
    return response;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return Update(buffer.str(), request);
}

StatusOr<int64_t> QueryService::LoadCsv(const std::string& name, int arity,
                                        const std::string& path) {
  // Read the file outside the lock; the WAL stores the *content* (a
  // path may have moved or vanished by recovery time).
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError(StrCat("cannot open ", path));
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadCsvContent(name, arity, buffer.str(), /*delimiter=*/',',
                        /*log=*/true);
}

StatusOr<int64_t> QueryService::LoadCsvContent(const std::string& name,
                                               int arity,
                                               std::string_view content,
                                               char delimiter, bool log) {
  std::unique_lock<std::shared_mutex> db_lock(db_mu_);
  if (log) c_.updates->Inc();
  PredId pred = db_.program().InternPred(name, arity);
  CsvOptions options;
  options.delimiter = delimiter;
  // Stage the whole file before touching the relation: a malformed
  // line 10,000 leaves the database exactly as it was (failure-atomic),
  // and the WAL record — one per load, appended only after staging
  // succeeded — is all-or-nothing with it.
  CS_ASSIGN_OR_RETURN(std::vector<Tuple> staged,
                      ParseCsvTuples(&db_, pred, content, options));
  if (log && wal_ != nullptr) {
    WalRecord record;
    record.type = WalRecordType::kCsvLoad;
    record.text = std::string(content);
    record.pred_name = name;
    record.arity = arity;
    record.delimiter = delimiter;
    StatusOr<uint64_t> lsn = wal_->Append(std::move(record));
    if (!lsn.ok()) return lsn.status();
    NoteLoggedRecord(*lsn);
  }
  Relation* relation = db_.GetOrCreateRelation(pred);
  relation->Reserve(relation->num_rows() + static_cast<int64_t>(staged.size()));
  int64_t inserted = 0;
  for (const Tuple& tuple : staged) {
    if (relation->Insert(tuple)) ++inserted;
  }
  return inserted;
}

std::vector<std::pair<std::string, int64_t>> QueryService::ListPredicates() {
  std::shared_lock<std::shared_mutex> db_lock(db_mu_);
  std::vector<std::pair<std::string, int64_t>> preds;
  for (PredId pred : db_.StoredPredicates()) {
    const std::string& name = db_.program().preds().name(pred);
    // Hide derived evaluation relations (adorned/magic predicates).
    if (StartsWith(name, "m_") || name.find("__") != std::string::npos ||
        StartsWith(name, "$")) {
      continue;
    }
    const Relation* rel = db_.GetRelation(pred);
    preds.emplace_back(db_.program().preds().Display(pred), rel->size());
  }
  std::sort(preds.begin(), preds.end());
  return preds;
}

}  // namespace chainsplit
