#ifndef CHAINSPLIT_SERVICE_SESSION_H_
#define CHAINSPLIT_SERVICE_SESSION_H_

#include <string>

#include "net/net_counters.h"
#include "service/query_service.h"

namespace chainsplit {

/// One client session over a QueryService: the line protocol shared by
/// the csdd REPL and the TCP server (docs/service.md has the grammar).
///
/// Input is line oriented. A line starting with ':' is a command;
/// anything else accumulates into a clause buffer until a line ends
/// with '.', at which point the buffered statement(s) are executed
/// (queries run, facts/rules are added). Output is appended to the
/// caller-supplied string; in TCP mode each handled input additionally
/// ends with a lone "." terminator line so clients can frame
/// responses.
struct SessionOptions {
  /// Frame every response with a trailing "." line (TCP protocol).
  bool tcp_mode = false;
  bool show_plan = false;
  bool show_stats = false;
  /// Chained into every request (the TCP server passes its shutdown
  /// token so Stop() cancels in-flight evaluations).
  const CancelToken* cancel = nullptr;
  /// Front-end telemetry rendered by `:net`; the TCP server wires its
  /// counters in, the plain REPL has none.
  const NetCounters* net = nullptr;
  /// Initial RequestOptions::parallel_scc for every query in this
  /// session (0 = monolithic default; `:parallel N` overrides at
  /// runtime). Set from csdd's --parallel-scc=N flag.
  int parallel_scc = 0;
};

class Session {
 public:
  Session(QueryService* service, SessionOptions options = {});

  /// Handles one input line, appending any response text to `*out`.
  /// Returns false when the session asked to end (:quit).
  bool HandleLine(const std::string& line, std::string* out);

  /// True while a multi-line clause is buffered (REPL shows a
  /// continuation prompt).
  bool has_pending() const { return !pending_.empty(); }

  /// Number of failed statements/commands so far (parse errors,
  /// evaluation errors, unopenable files); batch mode exits nonzero
  /// when this is > 0.
  int error_count() const { return error_count_; }

  static const char* HelpText();

 private:
  bool HandleCommand(const std::string& line, std::string* out);
  void Consume(const std::string& text, std::string* out);
  void AppendQueryResponse(const QueryResponse& response, std::string* out);
  void Finish(std::string* out);

  QueryService* service_;
  SessionOptions options_;
  RequestOptions request_;
  std::string pending_;
  int error_count_ = 0;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_SERVICE_SESSION_H_
