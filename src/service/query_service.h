#ifndef CHAINSPLIT_SERVICE_QUERY_SERVICE_H_
#define CHAINSPLIT_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "core/plan_signature.h"
#include "core/planner.h"
#include "obs/metrics.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "rel/catalog.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace chainsplit {

/// QueryService — a concurrent front-end over one shared Database
/// (docs/service.md).
///
/// Concurrency model: a reader/writer lock over the database, where
/// *all query evaluation* — cache hits and uncached queries alike —
/// runs under the shared (read) side. An uncached query parses with
/// ParseQueryOnly (interning is internally synchronized and the
/// program is otherwise untouched) and evaluates through a
/// DatabaseOverlay: magic seeds, adorned/magic relations, deltas and
/// answer relations land in query-local scratch, lazy index builds on
/// base relations are publication-safe, and the base Database stays
/// frozen. Only genuine mutation takes the exclusive side: fact and
/// rule updates, CSV loads, and read-mostly posting compaction.
/// Relation version() snapshots taken under the shared lock are
/// consistent by construction — no writer can hold the exclusive lock
/// while the snapshot is taken.
///
/// Two caches amortize repeated work:
///  * the plan cache maps a PlanSignature (query shape, constants
///    abstracted to boundness) to the technique the planner chose, and
///    shares one rectification of the rules per rules epoch;
///  * the result cache maps the lexically canonicalized query text to
///    fully formatted answers, validated against per-relation version
///    counters (epochs) of every relation the query can read.
///
/// Invalidation: fact inserts bump the owning relation's version, so a
/// cached result is revalidated by comparing its dependency snapshot;
/// rule changes bump the service-wide rules epoch, which drops both
/// caches wholesale.
struct ServiceOptions {
  PlannerOptions planner;

  bool enable_plan_cache = true;
  bool enable_result_cache = true;
  /// LRU capacities (entries).
  size_t plan_cache_capacity = 128;
  size_t result_cache_capacity = 1024;

  /// Compact the posting chains of a relation the first time a cached
  /// query depends on it (the service then treats it as read-mostly);
  /// see Relation::CompactPostings and the storage telemetry.
  bool compact_read_mostly = true;

  /// Deadline applied to every request that does not set its own.
  /// Zero = no deadline.
  std::chrono::milliseconds default_deadline{0};
};

/// Per-request knobs.
struct RequestOptions {
  /// Zero = use the service default.
  std::chrono::milliseconds deadline{0};
  /// Optional caller-owned cancellation token (e.g. the server's
  /// shutdown token); chained under the per-request deadline token.
  const CancelToken* cancel = nullptr;
  /// Skip both caches and do not populate them — the uncached
  /// reference path used by differential tests and baselines.
  bool bypass_cache = false;
  /// Evaluate under the exclusive lock directly against the base
  /// Database instead of the shared-lock overlay path. This is the
  /// pre-overlay reference semantics (derived relations persist in the
  /// base); differential tests compare its answers byte-for-byte
  /// against the overlay path.
  bool force_exclusive = false;
  /// Optional caller-owned trace sink. When null the service makes its
  /// own Trace if tracing is on (`:trace on`) or the slow-query log is
  /// armed; otherwise the request runs untraced.
  Trace* trace = nullptr;
  /// SCC-schedule evaluation of the bottom-up fixpoint (see
  /// PlannerOptions::parallel_scc): 0 = monolithic fixpoint (default),
  /// 1 = stratified serial schedule, N > 1 = up to N strata in flight
  /// on the shared pool. Answers are identical at every setting;
  /// stratified row order can differ from monolithic, so this is
  /// per-request opt-in.
  int parallel_scc = 0;
};

/// One answered query. Rows are pre-formatted strings: a cache hit
/// must not touch the term pool (formatting TermIds outside the lock
/// could race a concurrent intern), so the service renders values
/// while it still holds the lock and the response is self-contained.
struct QueryResponse {
  Status status;

  /// Variable names in first-occurrence order, as written in *this*
  /// request's text (cache hits remap the cached row values onto the
  /// caller's own names).
  std::vector<std::string> vars;
  /// One row per answer: formatted values of `vars`.
  std::vector<std::vector<std::string>> rows;

  Technique technique = Technique::kTopDown;
  std::string plan;
  bool plan_cache_hit = false;
  bool result_cache_hit = false;

  /// Evaluator work measures. On kDeadlineExceeded/kCancelled these
  /// hold the partial work done before the cutoff.
  SemiNaiveStats seminaive_stats;
  BufferedStats buffered_stats;
  TopDownStats topdown_stats;

  /// SCC-schedule provenance (see QueryResult); zero unless the
  /// request opted into parallel_scc.
  int64_t scc_strata = 0;
  int64_t scc_parallel_strata = 0;
  int64_t scc_max_ready_width = 0;
};

/// Outcome of one Update (facts and/or rules, possibly with embedded
/// queries, as in a program file).
struct UpdateResponse {
  Status status;
  int64_t new_facts = 0;
  int64_t new_rules = 0;
  /// Responses to queries embedded in the update text, in order.
  std::vector<QueryResponse> query_responses;
};

/// Durability configuration (EnableDurability). With an empty data_dir
/// the service is purely in-memory, exactly as before.
struct DurabilityOptions {
  /// Directory for WAL segments and snapshots; created if missing.
  std::string data_dir;
  /// WAL fsync policy + interval (docs/service.md §Durability).
  WalOptions wal;
  /// Auto-checkpoint after this many logged records since the last
  /// snapshot (0 = only explicit Checkpoint()/`:snapshot` calls).
  int64_t snapshot_every_records = 0;
};

/// Point-in-time durability telemetry (`:wal` in the session protocol).
struct DurabilityStats {
  bool enabled = false;
  WalSyncPolicy sync = WalSyncPolicy::kInterval;
  std::string data_dir;
  /// Highest LSN appended (0 = nothing logged yet).
  uint64_t last_lsn = 0;
  /// LSN of the newest durable snapshot (0 = none).
  uint64_t snapshot_lsn = 0;
  int64_t wal_records = 0;
  int64_t wal_bytes = 0;
  int64_t wal_syncs = 0;
  int64_t wal_segments_created = 0;
  int64_t snapshots_written = 0;
  int64_t checkpoint_failures = 0;
  std::string last_checkpoint_error;
  /// Recovery summary, fixed at EnableDurability time.
  bool recovery_cold_start = true;
  bool recovery_torn_tail = false;
  int64_t replayed_records = 0;
  int64_t skipped_records = 0;
};

/// Service-wide counters (monotone; read with stats()). Since the
/// observability layer landed these are a *view* over the metrics
/// registry — every field is backed by a registry counter (metric
/// names in docs/observability.md) and stats() reads the live values.
struct ServiceStats {
  int64_t queries = 0;
  int64_t updates = 0;
  int64_t plan_cache_hits = 0;
  int64_t plan_cache_misses = 0;
  int64_t result_cache_hits = 0;
  int64_t result_cache_misses = 0;
  /// Result entries found but dropped because a dependency's version
  /// moved (fact update) — counted on top of the miss.
  int64_t result_cache_invalidations = 0;
  /// Result-cache inserts skipped because the rules epoch moved between
  /// evaluation and the insert: the entry would have been born stale
  /// (see the epoch revalidation at the Put in QueryImpl).
  int64_t result_cache_stale_skips = 0;
  /// SCC-schedule usage: queries routed through the stratified
  /// scheduler, total strata evaluated, and strata dispatched onto the
  /// pool in parallel.
  int64_t scc_schedules = 0;
  int64_t scc_strata = 0;
  int64_t scc_parallel_strata = 0;
  int64_t deadline_exceeded = 0;
  int64_t cancelled = 0;
  /// Lock-acquisition split of uncached evaluations: shared_evals ran
  /// concurrently under the shared lock (overlay path), exclusive_evals
  /// serialized under the exclusive lock (updates' embedded queries and
  /// force_exclusive requests).
  int64_t shared_evals = 0;
  int64_t exclusive_evals = 0;
  /// Query-local scratch footprint of overlay evaluations: relations
  /// materialized and their arena bytes, summed over all queries.
  int64_t overlay_relations = 0;
  int64_t overlay_bytes = 0;
  /// Postings-compaction telemetry (read-mostly marking).
  int64_t compacted_relations = 0;
  int64_t compaction_blocks_before = 0;
  int64_t compaction_blocks_after = 0;
  int64_t compaction_moved_blocks = 0;
};

class QueryService {
 public:
  explicit QueryService(ServiceOptions options = {});
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;
  ~QueryService();

  /// Turns on write-ahead logging + snapshot recovery over
  /// `options.data_dir`: recovers the database from the newest valid
  /// snapshot plus the WAL tail, then opens a fresh WAL segment so
  /// every later mutation is logged before it is applied. Must be
  /// called before the service starts serving concurrently (like db(),
  /// this is a single-threaded setup call); calling it twice is an
  /// error. Returns the recovery summary.
  StatusOr<RecoveryResult> EnableDurability(const DurabilityOptions& options);

  /// Writes a snapshot at the current WAL horizon, rotates the log and
  /// deletes segments the snapshot covers. Runs under the *shared*
  /// database lock (queries keep flowing; mutations wait). Safe to call
  /// concurrently — checkpoints serialize among themselves.
  Status Checkpoint(SnapshotWriteStats* stats = nullptr);

  /// Fsyncs the WAL (graceful-shutdown path). No-op when durability is
  /// off.
  Status FlushWal();

  DurabilityStats durability_stats() const;

  /// The underlying database. Unsynchronized — only for single-threaded
  /// setup (seeding facts before serving) and tests.
  Database& db() { return db_; }

  /// Test-only: plants a plan-cache entry for `query_text` stamped
  /// with `rules_epoch`, simulating an entry recorded before a rule
  /// update (the normal paths clear the cache on epoch bumps, so the
  /// stale state is unreachable without this hook). Regression tests
  /// for the epoch revalidation in RunPlanner use it.
  Status TestOnlyInjectPlanEntry(std::string_view query_text,
                                 Technique technique, uint64_t rules_epoch);

  /// Test-only: runs `hook` inside QueryImpl after evaluation releases
  /// the db lock but before the result-cache insert — the window where
  /// a concurrent rule update can bump the rules epoch. Regression
  /// tests for the stale-skip revalidation at the Put use it to force
  /// that interleaving deterministically. Not synchronized: set during
  /// single-threaded test setup only.
  void TestOnlySetBeforeResultPutHook(std::function<void()> hook) {
    test_before_put_hook_ = std::move(hook);
  }

  /// Evaluates one query statement (`?- goal, ... .`). Any other text
  /// shape is an InvalidArgument.
  QueryResponse Query(std::string_view text,
                      const RequestOptions& request = {});

  /// Parses `text` (facts, rules, queries — e.g. a whole program
  /// file), inserts the new facts, and runs any embedded queries.
  /// Rule additions bump the rules epoch and drop both caches.
  UpdateResponse Update(std::string_view text,
                        const RequestOptions& request = {});

  /// Reads and Update()s the file at `path`.
  UpdateResponse LoadFile(const std::string& path,
                          const RequestOptions& request = {});

  /// Bulk-loads delimited facts into `name/arity`; returns the number
  /// of new tuples.
  StatusOr<int64_t> LoadCsv(const std::string& name, int arity,
                            const std::string& path);

  /// Stored predicates visible to users (derived evaluation relations
  /// are hidden): display name and tuple count.
  std::vector<std::pair<std::string, int64_t>> ListPredicates();

  ServiceStats stats() const;
  uint64_t rules_epoch() const;

  /// The service-owned metrics registry: every service counter lives
  /// here, the TCP server registers its net counters here, and
  /// `:metrics` renders it (Prometheus text exposition). Registration
  /// and reads are thread-safe.
  MetricsRegistry* metrics() { return &registry_; }
  const MetricsRegistry* metrics() const { return &registry_; }

  /// Per-query tracing toggle (`:trace on|off`). While on, every
  /// Query() records a span tree (parse, cache lookups, planner
  /// phases, per-iteration fixpoint spans) and the most recent one is
  /// kept for `:trace last`.
  void set_tracing(bool on) { tracing_.store(on, std::memory_order_relaxed); }
  bool tracing() const { return tracing_.load(std::memory_order_relaxed); }

  /// Chrome trace_event JSON of the most recently completed traced
  /// query; empty string until one finishes with tracing on.
  std::string last_trace_json() const;

  /// Arms the slow-query log: every Query() at or above `threshold`
  /// writes its trace JSON to `dir` (one file per slow query). Like
  /// EnableDurability, a single-threaded setup call made before the
  /// service serves concurrently. A zero/negative threshold disables.
  void EnableSlowQueryLog(std::string dir,
                          std::chrono::milliseconds threshold);
  int64_t slow_queries_logged() const;

 private:
  struct ResultEntry {
    /// (pred, relation version) snapshot of every relation the query
    /// can read, taken at evaluation time under the db lock.
    std::vector<std::pair<PredId, uint64_t>> deps;
    uint64_t rules_epoch = 0;
    /// Formatted row values in canonical variable order.
    std::vector<std::vector<std::string>> rows;
    size_t num_vars = 0;
    Technique technique = Technique::kTopDown;
    std::string plan;
    SemiNaiveStats seminaive_stats;
    BufferedStats buffered_stats;
    TopDownStats topdown_stats;
  };
  struct PlanEntry {
    Technique technique = Technique::kTopDown;
    /// Epoch the technique was chosen under; RunPlanner drops entries
    /// whose epoch is stale instead of forcing an outdated technique.
    uint64_t rules_epoch = 0;
  };
  /// An LRU string-keyed map: O(1) lookup, recency bump and eviction.
  template <typename V>
  struct LruCache {
    struct Node {
      std::string key;
      std::shared_ptr<V> value;
    };
    std::list<Node> order;  // front = most recent
    std::unordered_map<std::string_view, typename std::list<Node>::iterator>
        index;

    std::shared_ptr<V> Get(std::string_view key) {
      auto it = index.find(key);
      if (it == index.end()) return nullptr;
      order.splice(order.begin(), order, it->second);
      return it->second->value;
    }
    void Put(std::string key, std::shared_ptr<V> value, size_t capacity);
    void Erase(std::string_view key);
    void Clear() {
      index.clear();
      order.clear();
    }
  };

  /// Evaluates `query` against `eval_db` (the caller holds db_mu_ in
  /// the mode matching eval_db: shared for an overlay, exclusive for
  /// the base), consulting the plan cache. `signature` may be empty to
  /// skip the plan cache (bypass mode). (The AST type is written
  /// qualified — the Query() method shadows it in class scope.)
  /// Query() minus the observability epilogue: the public Query()
  /// wraps this with latency/outcome recording, trace finishing and
  /// the slow-query log.
  QueryResponse QueryImpl(std::string_view text,
                          const RequestOptions& request);
  QueryResponse EvaluateOn(EvalDb* eval_db, const ::chainsplit::Query& query,
                           const std::string& signature,
                           const RequestOptions& request);
  /// Parse + evaluate + dependency snapshot for an uncached query;
  /// the caller holds db_mu_ in the mode matching `eval_db` for the
  /// whole call, which freezes relation versions and the rules epoch.
  QueryResponse EvaluateUncached(
      EvalDb* eval_db, std::string_view text, const RequestOptions& request,
      bool want_deps, std::vector<std::pair<PredId, uint64_t>>* deps);
  /// Runs the planner with `cancel` attached; retries unforced when a
  /// cached forced technique turns out inapplicable. `parallel_scc`
  /// routes the bottom-up fixpoint through the stratified SCC
  /// scheduler (RequestOptions::parallel_scc).
  Status RunPlanner(EvalDb* eval_db, const ::chainsplit::Query& query,
                    const std::string& signature, const CancelToken* cancel,
                    Trace* trace, int parallel_scc, QueryResponse* response,
                    QueryResult* result);
  /// Rectified rules of the current epoch, computed on first use.
  /// Mutex-guarded so concurrent shared-lock evaluations can share the
  /// one rectification per epoch.
  const std::vector<Rule>* RectifiedRules();
  /// Marks every dependency relation read-mostly, compacting its
  /// postings the first time. Takes the exclusive lock itself when
  /// there is anything to compact — the caller must NOT hold db_mu_.
  void CompactDeps(const std::vector<std::pair<PredId, uint64_t>>& deps);
  /// Snapshot of the current versions of the relations `preds` read.
  /// Caller holds db_mu_ (either mode).
  std::vector<std::pair<PredId, uint64_t>> SnapshotDeps(
      const std::vector<PredId>& preds);
  void CountStatus(const Status& status);
  /// Registers every service-owned series on registry_ and fills c_.
  void InitMetrics();
  /// The csdd_requests_total{outcome=...} counter for `code`.
  Counter* OutcomeCounter(StatusCode code);
  /// Accumulates one finished request's evaluator work measures onto
  /// the registry (skipped for result-cache hits — the cached stats
  /// describe work done at fill time, not now).
  void AccumulateEvalStats(const QueryResponse& response);

  /// The one mutation path behind Update() and WAL replay. Discipline:
  /// validate (parse with rollback) → log → apply, so the applied
  /// prefix and the logged prefix are identical by construction. `log`
  /// is false only on replay (the record is already in the log);
  /// replay also skips embedded queries (`run_queries`) and the
  /// user-facing stats counters.
  UpdateResponse UpdateInternal(std::string_view text,
                                const RequestOptions& request, bool log,
                                bool run_queries);
  /// Same for CSV loads: stage-parse the whole content, log it, then
  /// insert. `content` is the file's bytes (the WAL stores content, not
  /// paths).
  StatusOr<int64_t> LoadCsvContent(const std::string& name, int arity,
                                   std::string_view content, char delimiter,
                                   bool log);
  /// Replays one recovered WAL record through the paths above.
  Status ApplyWalRecord(const WalRecord& record);
  /// Bumps the auto-checkpoint trigger after a record was logged.
  /// Caller holds db_mu_ exclusive.
  void NoteLoggedRecord(uint64_t lsn);
  void CheckpointerLoop();

  const ServiceOptions options_;
  Database db_;

  /// Guards db_: shared = anything that only reads the base (cache
  /// hits, uncached evaluation through an overlay), exclusive =
  /// mutation (fact/rule updates, CSV loads, posting compaction) and
  /// force_exclusive evaluation against the base itself. Lock order
  /// when both are needed: db_mu_ before cache_mu_.
  mutable std::shared_mutex db_mu_;
  /// Guards the caches and counters; never held across evaluation.
  mutable std::mutex cache_mu_;

  LruCache<ResultEntry> result_cache_;
  LruCache<PlanEntry> plan_cache_;
  uint64_t rules_epoch_ = 0;
  /// Guards rectified_/rectified_valid_ — concurrent shared-lock
  /// evaluations race to rectify first; the mutex makes it once.
  mutable std::mutex rectified_mu_;
  /// RectifyRules(db rules) for the current epoch; reused by every
  /// evaluation of that epoch.
  std::vector<Rule> rectified_;
  bool rectified_valid_ = false;
  std::unordered_set<PredId> read_mostly_;

  /// Handles into registry_ for every service-owned series; the
  /// registry owns the instruments, so raw pointers stay valid for the
  /// service's lifetime. Counter/Gauge/Histogram updates are wait-free
  /// — none of these need cache_mu_.
  struct Counters {
    Counter* queries = nullptr;
    Counter* updates = nullptr;
    Counter* plan_cache_hits = nullptr;
    Counter* plan_cache_misses = nullptr;
    Counter* result_cache_hits = nullptr;
    Counter* result_cache_misses = nullptr;
    Counter* result_cache_invalidations = nullptr;
    Counter* result_cache_stale_skips = nullptr;
    Counter* scc_schedules = nullptr;
    Counter* scc_strata = nullptr;
    Counter* scc_parallel_strata = nullptr;
    Counter* deadline_exceeded = nullptr;
    Counter* cancelled = nullptr;
    Counter* shared_evals = nullptr;
    Counter* exclusive_evals = nullptr;
    Counter* overlay_relations = nullptr;
    Counter* overlay_bytes = nullptr;
    Counter* compacted_relations = nullptr;
    Counter* compaction_blocks_before = nullptr;
    Counter* compaction_blocks_after = nullptr;
    Counter* compaction_moved_blocks = nullptr;
    /// csdd_requests_total{outcome=...}: one bump per top-level
    /// Query()/Update(); the TCP server adds rejected_overload /
    /// rejected_oversize series to the same family.
    Counter* outcome_ok = nullptr;
    Counter* outcome_error = nullptr;
    Counter* outcome_deadline_exceeded = nullptr;
    Counter* outcome_cancelled = nullptr;
    /// Evaluator work aggregated over non-cache-hit queries.
    Counter* fixpoint_iterations = nullptr;
    Counter* derived_tuples = nullptr;
    Counter* chain_levels = nullptr;
    Counter* sld_steps = nullptr;
    Counter* slow_queries = nullptr;
    Histogram* query_latency = nullptr;
  };
  MetricsRegistry registry_;
  Counters c_;

  /// See TestOnlySetBeforeResultPutHook.
  std::function<void()> test_before_put_hook_;

  std::atomic<bool> tracing_{false};
  std::unique_ptr<SlowQueryLog> slow_log_;
  /// Guards last_trace_ only. The finished Trace is stored as-is and
  /// rendered to JSON on demand — serializing inline would tax every
  /// traced query for output only `:trace last` reads.
  mutable std::mutex trace_mu_;
  std::optional<Trace> last_trace_;

  // Durability (all null/zero until EnableDurability).
  //
  // wal_ is set once during single-threaded setup and never reset, so
  // the null-check on the mutation paths is race-free; Append calls
  // additionally run under db_mu_ exclusive, which is what makes LSN
  // order equal apply order. Lock order: db_mu_ → checkpoint_mu_;
  // Checkpoint() therefore never holds checkpoint_mu_ while waiting
  // for db_mu_.
  DurabilityOptions durability_;
  std::unique_ptr<Wal> wal_;
  RecoveryResult recovery_;
  /// Serializes whole checkpoints against each other (never held while
  /// waiting for db_mu_... it is taken first, and the shared db lock is
  /// acquired inside).
  std::mutex snapshot_run_mu_;
  /// Guards the checkpoint trigger state + durability counters below.
  mutable std::mutex checkpoint_mu_;
  std::condition_variable checkpoint_cv_;
  std::thread checkpointer_;
  bool stop_checkpointer_ = false;
  uint64_t logged_lsn_ = 0;            // newest appended LSN
  uint64_t durable_snapshot_lsn_ = 0;  // newest snapshot's LSN
  int64_t snapshots_written_ = 0;
  int64_t checkpoint_failures_ = 0;
  std::string last_checkpoint_error_;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_SERVICE_QUERY_SERVICE_H_
