#ifndef CHAINSPLIT_SERVICE_BATCH_DRIVER_H_
#define CHAINSPLIT_SERVICE_BATCH_DRIVER_H_

#include <string>
#include <vector>

#include "service/query_service.h"

namespace chainsplit {

/// In-process multi-client workload replay against a QueryService —
/// the driver behind bench_service_throughput and the concurrency
/// tests. Each simulated client runs the shared op list round-robin,
/// starting at its own offset, timing every op.
struct BatchOp {
  enum class Kind { kQuery, kUpdate };
  Kind kind = Kind::kQuery;
  std::string text;
};

struct BatchOptions {
  int num_clients = 8;
  /// Each client executes `ops_per_client` ops (cycling through the
  /// workload's op list).
  int ops_per_client = 100;
  RequestOptions request;
};

struct BatchReport {
  int64_t queries = 0;
  int64_t updates = 0;
  int64_t errors = 0;
  /// Total answer rows over all query ops (work sanity check).
  int64_t answer_rows = 0;
  double seconds = 0;
  double qps = 0;  // query+update ops per second, wall clock
  double p50_ms = 0;
  double p99_ms = 0;
  /// Cache-hit fractions over this run (delta of the service
  /// counters), in [0, 1].
  double result_hit_rate = 0;
  double plan_hit_rate = 0;
};

/// Runs `ops` with `options.num_clients` concurrent clients on a
/// private thread pool sized to the client count; blocks until every
/// client finishes.
BatchReport RunBatchWorkload(QueryService* service,
                             const std::vector<BatchOp>& ops,
                             const BatchOptions& options);

}  // namespace chainsplit

#endif  // CHAINSPLIT_SERVICE_BATCH_DRIVER_H_
