#include "service/session.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace chainsplit {

Session::Session(QueryService* service, SessionOptions options)
    : service_(service), options_(options) {
  request_.cancel = options_.cancel;
  request_.parallel_scc = options_.parallel_scc;
}

const char* Session::HelpText() {
  return
      "  ?- goal, goal.          run a query\n"
      "  head :- body.           add a rule (or `fact.`)\n"
      "  :load FILE              load a program file\n"
      "  :csv PRED/ARITY FILE    bulk-load facts (comma separated)\n"
      "  :plan                   toggle plan printing\n"
      "  :stats                  toggle evaluation statistics\n"
      "  :deadline MS            per-query deadline (0 = none)\n"
      "  :parallel N             SCC-parallel evaluation with N workers\n"
      "                          (0 = monolithic, 1 = stratified serial)\n"
      "  :preds                  list predicates with stored facts\n"
      "  :cache [json]           service cache/deadline counters\n"
      "  :net [json]             network front-end counters\n"
      "  :metrics                Prometheus text exposition of all series\n"
      "  :trace on|off|last      per-query tracing; `last` prints the\n"
      "                          newest trace (Chrome trace_event JSON)\n"
      "  :snapshot               write a snapshot, truncate the WAL\n"
      "  :wal [json]             durability counters (WAL/snapshots)\n"
      "  :quit                   exit\n";
}

void Session::AppendQueryResponse(const QueryResponse& response,
                                  std::string* out) {
  if (!response.status.ok()) {
    ++error_count_;
    *out += StrCat("error: ", response.status.ToString(), "\n");
    return;
  }
  if (options_.show_plan) {
    *out += StrCat("% technique: ", TechniqueToString(response.technique),
                   response.result_cache_hit ? " (result cache)" : "",
                   response.plan_cache_hit ? " (plan cache)" : "", "\n");
    *out += response.plan;
  }
  if (response.vars.empty()) {
    *out += response.rows.empty() ? "no\n" : "yes\n";
  } else if (response.rows.empty()) {
    *out += "no answers\n";
  } else {
    for (const std::vector<std::string>& row : response.rows) {
      std::vector<std::string> bindings;
      bindings.reserve(row.size());
      for (size_t i = 0; i < response.vars.size(); ++i) {
        bindings.push_back(StrCat(response.vars[i], " = ", row[i]));
      }
      *out += StrCat(StrJoin(bindings, ", "), "\n");
    }
    *out += StrCat("% ", response.rows.size(), " answer(s)\n");
  }
  if (options_.show_stats) {
    *out += StrCat(
        "% seminaive: ", response.seminaive_stats.total_derived,
        " derived in ", response.seminaive_stats.iterations,
        " iterations; buffered: ", response.buffered_stats.nodes, " states, ",
        response.buffered_stats.buffered_values,
        " buffered; sld: ", response.topdown_stats.steps, " steps\n");
  }
}

void Session::Consume(const std::string& text, std::string* out) {
  // A lone query statement goes through the cached query path; other
  // input (facts, rules, mixed files) is an update.
  if (CanonicalizeQueryText(text).has_value()) {
    AppendQueryResponse(service_->Query(text, request_), out);
    return;
  }
  UpdateResponse update = service_->Update(text, request_);
  if (!update.status.ok()) {
    ++error_count_;
    *out += StrCat("parse error: ", update.status.ToString(), "\n");
    return;
  }
  for (const QueryResponse& qr : update.query_responses) {
    AppendQueryResponse(qr, out);
  }
}

bool Session::HandleCommand(const std::string& line, std::string* out) {
  size_t space = line.find(' ');
  std::string cmd = line.substr(0, space);
  std::string args = space == std::string::npos ? "" : line.substr(space + 1);
  if (cmd == ":quit" || cmd == ":q") return false;
  if (cmd == ":help") {
    *out += HelpText();
  } else if (cmd == ":load") {
    UpdateResponse loaded = service_->LoadFile(args, request_);
    if (!loaded.status.ok()) {
      ++error_count_;
      *out += StrCat("error: ", loaded.status.ToString(), "\n");
    } else {
      for (const QueryResponse& qr : loaded.query_responses) {
        AppendQueryResponse(qr, out);
      }
      *out += StrCat("% loaded ", args, "\n");
    }
  } else if (cmd == ":csv") {
    std::vector<std::string> parts = StrSplit(args, ' ');
    std::vector<std::string> spec =
        parts.empty() ? std::vector<std::string>()
                      : StrSplit(parts[0], '/');
    if (parts.size() != 2 || spec.size() != 2) {
      ++error_count_;
      *out += "usage: :csv PRED/ARITY FILE\n";
    } else {
      StatusOr<int64_t> loaded = service_->LoadCsv(
          spec[0], std::atoi(spec[1].c_str()), parts[1]);
      if (!loaded.ok()) {
        ++error_count_;
        *out += StrCat("error: ", loaded.status().ToString(), "\n");
      } else {
        *out += StrCat("% ", *loaded, " new tuples into ", parts[0], "\n");
      }
    }
  } else if (cmd == ":plan") {
    options_.show_plan = !options_.show_plan;
    *out += StrCat("% plan printing ", options_.show_plan ? "on" : "off",
                   "\n");
  } else if (cmd == ":stats") {
    options_.show_stats = !options_.show_stats;
    *out += StrCat("% statistics ", options_.show_stats ? "on" : "off", "\n");
  } else if (cmd == ":deadline") {
    request_.deadline = std::chrono::milliseconds(std::atoll(args.c_str()));
    *out += StrCat("% deadline ", request_.deadline.count(), " ms\n");
  } else if (cmd == ":parallel") {
    request_.parallel_scc = std::atoi(args.c_str());
    *out += request_.parallel_scc == 0
                ? std::string("% parallel scc off (monolithic)\n")
                : StrCat("% parallel scc ", request_.parallel_scc,
                         request_.parallel_scc == 1 ? " (stratified serial)"
                                                    : " workers",
                         "\n");
  } else if (cmd == ":preds") {
    for (const auto& [name, size] : service_->ListPredicates()) {
      *out += StrCat("  ", name, "  ", size, " tuples\n");
    }
  } else if (cmd == ":cache" && args == "json") {
    ServiceStats s = service_->stats();
    *out += StrCat(
        "{\"queries\":", s.queries, ",\"updates\":", s.updates,
        ",\"result_cache\":{\"hits\":", s.result_cache_hits,
        ",\"misses\":", s.result_cache_misses,
        ",\"invalidations\":", s.result_cache_invalidations, "}",
        ",\"plan_cache\":{\"hits\":", s.plan_cache_hits,
        ",\"misses\":", s.plan_cache_misses, "}",
        ",\"evals\":{\"shared\":", s.shared_evals,
        ",\"exclusive\":", s.exclusive_evals, "}",
        ",\"overlay\":{\"relations\":", s.overlay_relations,
        ",\"bytes\":", s.overlay_bytes, "}",
        ",\"deadline_exceeded\":", s.deadline_exceeded,
        ",\"cancelled\":", s.cancelled,
        ",\"compaction\":{\"relations\":", s.compacted_relations,
        ",\"blocks_before\":", s.compaction_blocks_before,
        ",\"blocks_after\":", s.compaction_blocks_after,
        ",\"moved_blocks\":", s.compaction_moved_blocks, "}}\n");
  } else if (cmd == ":cache") {
    ServiceStats stats = service_->stats();
    *out += StrCat("% queries ", stats.queries, ", updates ", stats.updates,
                   "\n% result cache: ", stats.result_cache_hits, " hits, ",
                   stats.result_cache_misses, " misses, ",
                   stats.result_cache_invalidations, " invalidations\n",
                   "% plan cache: ", stats.plan_cache_hits, " hits, ",
                   stats.plan_cache_misses, " misses\n",
                   "% locks: ", stats.shared_evals, " shared evals, ",
                   stats.exclusive_evals, " exclusive evals\n",
                   "% overlays: ", stats.overlay_relations, " relations, ",
                   stats.overlay_bytes, " scratch bytes\n",
                   "% deadlines exceeded ", stats.deadline_exceeded,
                   ", cancelled ", stats.cancelled, "\n",
                   "% compacted ", stats.compacted_relations, " relations (",
                   stats.compaction_blocks_before, " -> ",
                   stats.compaction_blocks_after, " posting blocks)\n");
  } else if (cmd == ":metrics") {
    *out += service_->metrics()->RenderPrometheus();
  } else if (cmd == ":trace") {
    if (args == "on") {
      service_->set_tracing(true);
      *out += "% tracing on\n";
    } else if (args == "off") {
      service_->set_tracing(false);
      *out += "% tracing off\n";
    } else if (args == "last") {
      std::string json = service_->last_trace_json();
      if (json.empty()) {
        ++error_count_;
        *out += "% no trace recorded yet (:trace on, then run a query)\n";
      } else {
        *out += json;
        *out += "\n";
      }
    } else if (args.empty()) {
      *out += StrCat("% tracing ", service_->tracing() ? "on" : "off", "\n");
    } else {
      ++error_count_;
      *out += "usage: :trace on|off|last\n";
    }
  } else if (cmd == ":snapshot") {
    SnapshotWriteStats snap;
    Status status = service_->Checkpoint(&snap);
    if (!status.ok()) {
      ++error_count_;
      *out += StrCat("error: ", status.ToString(), "\n");
    } else {
      *out += StrCat("% snapshot at lsn ", snap.lsn, " (", snap.bytes,
                     " bytes) -> ", snap.path, "\n");
    }
  } else if (cmd == ":wal" && args == "json") {
    DurabilityStats d = service_->durability_stats();
    if (!d.enabled) {
      *out += "{\"enabled\":false}\n";
    } else {
      *out += StrCat(
          "{\"enabled\":true,\"data_dir\":\"", JsonEscape(d.data_dir),
          "\",\"sync\":\"", JsonEscape(WalSyncPolicyToString(d.sync)),
          "\",\"wal\":{\"records\":", d.wal_records,
          ",\"bytes\":", d.wal_bytes, ",\"syncs\":", d.wal_syncs,
          ",\"segments\":", d.wal_segments_created,
          ",\"last_lsn\":", d.last_lsn, "}",
          ",\"snapshots\":{\"written\":", d.snapshots_written,
          ",\"newest_lsn\":", d.snapshot_lsn,
          ",\"failures\":", d.checkpoint_failures, "}",
          ",\"recovery\":{\"cold_start\":",
          d.recovery_cold_start ? "true" : "false",
          ",\"torn_tail\":", d.recovery_torn_tail ? "true" : "false",
          ",\"replayed\":", d.replayed_records,
          ",\"skipped\":", d.skipped_records, "}}\n");
    }
  } else if (cmd == ":wal") {
    DurabilityStats dur = service_->durability_stats();
    if (!dur.enabled) {
      *out += "% durability off (start with --data-dir=DIR)\n";
    } else {
      *out += StrCat(
          "% wal ", dur.data_dir, " sync=", WalSyncPolicyToString(dur.sync),
          ": ", dur.wal_records, " records, ", dur.wal_bytes, " bytes, ",
          dur.wal_syncs, " fsyncs, ", dur.wal_segments_created,
          " segments, last lsn ", dur.last_lsn, "\n",
          "% snapshots: ", dur.snapshots_written, " written, newest lsn ",
          dur.snapshot_lsn, ", ", dur.checkpoint_failures, " failures",
          dur.last_checkpoint_error.empty()
              ? std::string()
              : StrCat(" (last: ", dur.last_checkpoint_error, ")"),
          "\n",
          "% recovery: ",
          dur.recovery_cold_start ? "cold start" : "recovered", ", ",
          dur.replayed_records, " replayed, ", dur.skipped_records,
          " skipped", dur.recovery_torn_tail ? ", torn tail dropped" : "",
          "\n");
    }
  } else if (cmd == ":net" && args == "json") {
    const NetCounters* net = options_.net;
    if (net == nullptr) {
      *out += "{\"enabled\":false}\n";
    } else {
      auto load = [](const std::atomic<int64_t>& v) {
        return v.load(std::memory_order_relaxed);
      };
      *out += StrCat(
          "{\"enabled\":true,\"mode\":\"", JsonEscape(net->mode),
          "\",\"workers\":", net->workers,
          ",\"queue\":{\"depth\":", load(net->queue_depth),
          ",\"capacity\":", net->queue_capacity,
          ",\"high_watermark\":", load(net->queue_high_watermark), "}",
          ",\"connections\":{\"active\":", load(net->active_connections),
          ",\"accepted\":", load(net->accepted), "}",
          ",\"requests\":{\"dispatched\":", load(net->dispatched),
          ",\"responses\":", load(net->responses),
          ",\"rejected_overload\":", load(net->rejected_overload),
          ",\"rejected_oversize\":", load(net->rejected_oversize), "}",
          ",\"bytes\":{\"in\":", load(net->bytes_in),
          ",\"out\":", load(net->bytes_out), "}}\n");
    }
  } else if (cmd == ":net") {
    const NetCounters* net = options_.net;
    if (net == nullptr) {
      *out += "% no network front end (REPL session)\n";
    } else {
      auto load = [](const std::atomic<int64_t>& v) {
        return v.load(std::memory_order_relaxed);
      };
      *out += StrCat(
          "% net mode ", net->mode, ": ", net->workers, " workers, queue ",
          load(net->queue_depth), "/", net->queue_capacity, " (high ",
          load(net->queue_high_watermark), ")\n",
          "% conns: ", load(net->active_connections), " active, ",
          load(net->accepted), " accepted\n",
          "% requests: ", load(net->dispatched), " dispatched, ",
          load(net->responses), " responses, ", load(net->rejected_overload),
          " rejected overloaded, ", load(net->rejected_oversize),
          " rejected oversize\n",
          "% bytes: ", load(net->bytes_in), " in, ", load(net->bytes_out),
          " out\n");
    }
  } else {
    ++error_count_;
    *out += StrCat("unknown command ", cmd, " — :help\n");
  }
  return true;
}

void Session::Finish(std::string* out) {
  if (options_.tcp_mode) *out += ".\n";
}

bool Session::HandleLine(const std::string& line, std::string* out) {
  if (pending_.empty() && !line.empty() && line[0] == ':') {
    bool keep_going = HandleCommand(line, out);
    Finish(out);
    return keep_going;
  }
  pending_ += line;
  pending_ += "\n";
  std::string trimmed = pending_;
  while (!trimmed.empty() &&
         std::isspace(static_cast<unsigned char>(trimmed.back()))) {
    trimmed.pop_back();
  }
  if (trimmed.empty()) {
    pending_.clear();
    return true;
  }
  if (trimmed.back() == '.') {
    std::string text = std::move(pending_);
    pending_.clear();
    Consume(text, out);
    Finish(out);
  }
  return true;
}

}  // namespace chainsplit
