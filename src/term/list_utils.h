#ifndef CHAINSPLIT_TERM_LIST_UTILS_H_
#define CHAINSPLIT_TERM_LIST_UTILS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "term/term.h"

namespace chainsplit {

/// Builds the list term `[elements[0], ..., elements[n-1]]`.
TermId MakeList(TermPool& pool, std::span<const TermId> elements);

/// Builds a list of integer terms; convenience for tests and workloads.
TermId MakeIntList(TermPool& pool, std::span<const int64_t> values);

/// Decomposes a *proper* list term into its elements. Returns nullopt
/// when `t` is not a nil-terminated list (e.g. has a variable tail).
std::optional<std::vector<TermId>> ListElements(const TermPool& pool,
                                                TermId t);

/// Decomposes a proper list of integer terms. Returns nullopt when any
/// element is not an integer or the list is improper.
std::optional<std::vector<int64_t>> ListInts(const TermPool& pool, TermId t);

/// Length of a proper list, or -1 when `t` is improper.
int64_t ListLength(const TermPool& pool, TermId t);

/// True when `t` is a nil-terminated list (possibly empty).
bool IsProperList(const TermPool& pool, TermId t);

}  // namespace chainsplit

#endif  // CHAINSPLIT_TERM_LIST_UTILS_H_
