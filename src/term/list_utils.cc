#include "term/list_utils.h"

namespace chainsplit {

TermId MakeList(TermPool& pool, std::span<const TermId> elements) {
  TermId list = pool.Nil();
  for (size_t i = elements.size(); i > 0; --i) {
    list = pool.MakeCons(elements[i - 1], list);
  }
  return list;
}

TermId MakeIntList(TermPool& pool, std::span<const int64_t> values) {
  std::vector<TermId> elements;
  elements.reserve(values.size());
  for (int64_t v : values) elements.push_back(pool.MakeInt(v));
  return MakeList(pool, elements);
}

std::optional<std::vector<TermId>> ListElements(const TermPool& pool,
                                                TermId t) {
  std::vector<TermId> elements;
  while (pool.IsCons(t)) {
    auto args = pool.args(t);
    elements.push_back(args[0]);
    t = args[1];
  }
  if (!pool.IsNil(t)) return std::nullopt;
  return elements;
}

std::optional<std::vector<int64_t>> ListInts(const TermPool& pool, TermId t) {
  auto elements = ListElements(pool, t);
  if (!elements.has_value()) return std::nullopt;
  std::vector<int64_t> values;
  values.reserve(elements->size());
  for (TermId e : *elements) {
    if (!pool.IsInt(e)) return std::nullopt;
    values.push_back(pool.int_value(e));
  }
  return values;
}

int64_t ListLength(const TermPool& pool, TermId t) {
  int64_t n = 0;
  while (pool.IsCons(t)) {
    ++n;
    t = pool.args(t)[1];
  }
  return pool.IsNil(t) ? n : -1;
}

bool IsProperList(const TermPool& pool, TermId t) {
  return ListLength(pool, t) >= 0;
}

}  // namespace chainsplit
