#ifndef CHAINSPLIT_TERM_UNIFY_H_
#define CHAINSPLIT_TERM_UNIFY_H_

#include <unordered_map>
#include <vector>

#include "term/term.h"

namespace chainsplit {

/// A set of variable bindings built up during unification. Bindings may
/// be triangular (a variable bound to a term containing other bound
/// variables); Resolve() applies them to fixpoint.
class Substitution {
 public:
  /// Follows variable->variable chains starting at `t` and returns the
  /// first non-variable term or unbound variable reached.
  TermId Walk(TermId t, const TermPool& pool) const;

  /// Binds variable `var` to `term`. Requires `var` to be an unbound
  /// variable (after Walk).
  void Bind(TermId var, TermId term);

  /// Applies the substitution to `t`, rebuilding compound terms as
  /// needed. The result is interned in `pool`.
  TermId Resolve(TermId t, TermPool& pool) const;

  /// Binding for `var` if present, else kNullTerm. Does not walk chains.
  TermId Lookup(TermId var) const;

  bool empty() const { return bindings_.empty(); }
  size_t size() const { return bindings_.size(); }
  void clear() {
    bindings_.clear();
    log_.clear();
  }

  const std::unordered_map<TermId, TermId>& bindings() const {
    return bindings_;
  }

  /// Backtracking support: every Bind is logged; RollbackTo(mark)
  /// removes all bindings made after `mark = LogSize()` was taken.
  size_t LogSize() const { return log_.size(); }
  void RollbackTo(size_t mark);

 private:
  std::unordered_map<TermId, TermId> bindings_;
  std::vector<TermId> log_;
};

/// Unifies `a` and `b`, extending `*subst` with the most general
/// unifier. Returns false (leaving `*subst` in an unspecified but valid
/// state) when the terms do not unify; callers that need rollback
/// should unify into a scratch Substitution.
///
/// `occurs_check` enables the occurs check; the engine leaves it off
/// (database terms are finite and rules are range-restricted), tests
/// turn it on to verify soundness.
bool Unify(const TermPool& pool, TermId a, TermId b, Substitution* subst,
           bool occurs_check = false);

/// True if variable `var` occurs in `t` under `subst`.
bool OccursIn(const TermPool& pool, const Substitution& subst, TermId var,
              TermId t);

/// Renames every variable of `t` to a fresh variable (recorded in
/// `*renaming` so shared variables stay shared). Used to standardize
/// rules apart before resolution.
TermId RenameApart(TermPool& pool, TermId t,
                   std::unordered_map<TermId, TermId>* renaming);

}  // namespace chainsplit

#endif  // CHAINSPLIT_TERM_UNIFY_H_
