#include "term/term.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"

namespace chainsplit {

size_t TermPool::CompoundKeyHash::operator()(const CompoundKey& k) const {
  size_t seed = static_cast<size_t>(k.functor_name_index);
  HashCombine(&seed, HashVector(k.args));
  return seed;
}

TermPool::TermPool() { nil_ = MakeSymbol(kNilName); }

int32_t TermPool::InternNameLocked(std::string_view name) {
  auto it = name_index_.find(std::string(name));
  if (it != name_index_.end()) return it->second;
  int32_t index = static_cast<int32_t>(names_.size());
  names_.push_back(std::string(name));
  name_index_.emplace(names_[index], index);
  return index;
}

TermId TermPool::AddNodeLocked(const Node& node) {
  return static_cast<TermId>(nodes_.push_back(node));
}

TermId TermPool::MakeInt(int64_t value) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  auto it = int_index_.find(value);
  if (it != int_index_.end()) return it->second;
  Node node{TermKind::kInt, /*ground=*/true,
            static_cast<int32_t>(int_values_.size())};
  int_values_.push_back(value);
  TermId id = AddNodeLocked(node);
  int_index_.emplace(value, id);
  return id;
}

TermId TermPool::MakeSymbolLocked(std::string_view name) {
  int32_t name_index = InternNameLocked(name);
  auto it = symbol_index_.find(name_index);
  if (it != symbol_index_.end()) return it->second;
  TermId id =
      AddNodeLocked(Node{TermKind::kSymbol, /*ground=*/true, name_index});
  symbol_index_.emplace(name_index, id);
  return id;
}

TermId TermPool::MakeSymbol(std::string_view name) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return MakeSymbolLocked(name);
}

TermId TermPool::MakeVariableLocked(std::string_view name) {
  int32_t name_index = InternNameLocked(name);
  auto it = variable_index_.find(name_index);
  if (it != variable_index_.end()) return it->second;
  TermId id =
      AddNodeLocked(Node{TermKind::kVariable, /*ground=*/false, name_index});
  variable_index_.emplace(name_index, id);
  return id;
}

TermId TermPool::MakeVariable(std::string_view name) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return MakeVariableLocked(name);
}

TermId TermPool::FreshVariable(std::string_view hint) {
  // Fresh names live in a reserved namespace: user variables start with
  // an upper-case letter or '_', but the parser never produces names
  // containing '#'.
  std::lock_guard<std::mutex> lock(intern_mu_);
  std::string name = StrCat(hint, "#", fresh_counter_++);
  return MakeVariableLocked(name);
}

TermId TermPool::MakeCompoundLocked(std::string_view functor,
                                    std::span<const TermId> args) {
  CompoundKey key{InternNameLocked(functor),
                  std::vector<TermId>(args.begin(), args.end())};
  auto it = compound_index_.find(key);
  if (it != compound_index_.end()) return it->second;
  bool ground = true;
  for (TermId a : args) {
    CS_DCHECK(a >= 0 && a < static_cast<TermId>(nodes_.size()))
        << "argument TermId out of range";
    ground = ground && nodes_[Index(a)].ground;
  }
  size_t args_offset = args_.AppendRange(args.data(), args.size());
  Node node{TermKind::kCompound, ground, key.functor_name_index,
            static_cast<int32_t>(args_offset),
            static_cast<int32_t>(args.size())};
  TermId id = AddNodeLocked(node);
  compound_index_.emplace(std::move(key), id);
  return id;
}

TermId TermPool::MakeCompound(std::string_view functor,
                              std::span<const TermId> args) {
  std::lock_guard<std::mutex> lock(intern_mu_);
  return MakeCompoundLocked(functor, args);
}

TermId TermPool::MakeCons(TermId head, TermId tail) {
  TermId args[] = {head, tail};
  return MakeCompound(kConsFunctor, args);
}

int64_t TermPool::int_value(TermId t) const {
  const Node& node = nodes_[Index(t)];
  CS_DCHECK(node.kind == TermKind::kInt) << "int_value on non-int term";
  return int_values_[node.payload];
}

const std::string& TermPool::name(TermId t) const {
  const Node& node = nodes_[Index(t)];
  CS_DCHECK(node.kind == TermKind::kSymbol ||
            node.kind == TermKind::kVariable)
      << "name on non-atomic term";
  return names_[node.payload];
}

const std::string& TermPool::functor(TermId t) const {
  const Node& node = nodes_[Index(t)];
  CS_DCHECK(node.kind == TermKind::kCompound) << "functor on non-compound";
  return names_[node.payload];
}

std::span<const TermId> TermPool::args(TermId t) const {
  const Node& node = nodes_[Index(t)];
  if (node.kind != TermKind::kCompound) return {};
  // One AppendRange run never straddles a chunk, so the span is
  // contiguous from the first argument's address.
  return {args_.PtrTo(static_cast<size_t>(node.args_offset)),
          static_cast<size_t>(node.arity)};
}

bool TermPool::IsCons(TermId t) const {
  const Node& node = nodes_[Index(t)];
  return node.kind == TermKind::kCompound && node.arity == 2 &&
         names_[node.payload] == kConsFunctor;
}

void TermPool::CollectVariables(TermId t, std::vector<TermId>* out) const {
  switch (kind(t)) {
    case TermKind::kInt:
    case TermKind::kSymbol:
      return;
    case TermKind::kVariable:
      if (std::find(out->begin(), out->end(), t) == out->end()) {
        out->push_back(t);
      }
      return;
    case TermKind::kCompound:
      if (IsGround(t)) return;
      for (TermId a : args(t)) CollectVariables(a, out);
      return;
  }
}

void TermPool::AppendTo(TermId t, std::string* out) const {
  switch (kind(t)) {
    case TermKind::kInt:
      out->append(std::to_string(int_value(t)));
      return;
    case TermKind::kSymbol:
    case TermKind::kVariable:
      out->append(name(t));
      return;
    case TermKind::kCompound:
      break;
  }
  if (IsCons(t)) {
    // Render with list sugar: [a, b | T] or [a, b].
    out->push_back('[');
    TermId cur = t;
    bool first = true;
    while (IsCons(cur)) {
      if (!first) out->append(", ");
      first = false;
      AppendTo(args(cur)[0], out);
      cur = args(cur)[1];
    }
    if (!IsNil(cur)) {
      out->append(" | ");
      AppendTo(cur, out);
    }
    out->push_back(']');
    return;
  }
  out->append(functor(t));
  out->push_back('(');
  bool first = true;
  for (TermId a : args(t)) {
    if (!first) out->append(", ");
    first = false;
    AppendTo(a, out);
  }
  out->push_back(')');
}

std::string TermPool::ToString(TermId t) const {
  if (t == kNullTerm) return "<null>";
  std::string out;
  AppendTo(t, &out);
  return out;
}

}  // namespace chainsplit
