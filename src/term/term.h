#ifndef CHAINSPLIT_TERM_TERM_H_
#define CHAINSPLIT_TERM_TERM_H_

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/chunked_vector.h"
#include "common/logging.h"

namespace chainsplit {

/// Handle to a term interned in a TermPool. Terms are hash-consed: two
/// structurally equal terms always have the same TermId within a pool,
/// so term equality is integer equality. This is the core idiom that
/// makes the relational engine fast on function-symbol workloads: a
/// 10,000-element list is one TermId in a tuple.
using TermId = int32_t;

/// Sentinel for "no term".
inline constexpr TermId kNullTerm = -1;

/// The four term constructors of the logic language (§1.2 of the paper):
/// integers, constant symbols, variables and compound terms f(t1..tk).
enum class TermKind : uint8_t {
  kInt,
  kSymbol,
  kVariable,
  kCompound,
};

/// Arena of hash-consed terms. All terms used by a Program / Database
/// live in one pool; TermIds from different pools must not be mixed.
///
/// Thread-safety: interning (Make*) is serialized by an internal
/// mutex, and the node/name/argument arenas are append-only
/// ChunkedVectors, so const accessors are lock-free and safe to call
/// concurrently with interning. A reader may dereference any TermId it
/// obtained through a synchronized channel (the interning call itself,
/// or a lock handoff such as the service's db_mu_).
class TermPool {
 public:
  TermPool();
  TermPool(const TermPool&) = delete;
  TermPool& operator=(const TermPool&) = delete;

  /// Interns the integer `value`.
  TermId MakeInt(int64_t value);

  /// Interns the constant symbol `name` (e.g. `tom`, `montreal`).
  TermId MakeSymbol(std::string_view name);

  /// Interns the variable `name`. Variables are identified by name
  /// within a pool; rule standardization-apart is done by renaming to
  /// fresh variables (see FreshVariable).
  TermId MakeVariable(std::string_view name);

  /// Creates a new variable guaranteed distinct from all existing ones.
  /// `hint` is used as a name prefix for readable traces.
  TermId FreshVariable(std::string_view hint = "_G");

  /// Interns the compound term `functor(args...)`. `functor` is a
  /// symbol name such as "." (list cons) or "pair".
  TermId MakeCompound(std::string_view functor, std::span<const TermId> args);

  /// The empty list constant `[]`.
  TermId Nil() const { return nil_; }
  /// Interns the list cell `[head | tail]`.
  TermId MakeCons(TermId head, TermId tail);

  TermKind kind(TermId t) const { return nodes_[Index(t)].kind; }
  bool IsInt(TermId t) const { return kind(t) == TermKind::kInt; }
  bool IsSymbol(TermId t) const { return kind(t) == TermKind::kSymbol; }
  bool IsVariable(TermId t) const { return kind(t) == TermKind::kVariable; }
  bool IsCompound(TermId t) const { return kind(t) == TermKind::kCompound; }

  /// True when `t` contains no variables (cached at interning time).
  bool IsGround(TermId t) const { return nodes_[Index(t)].ground; }

  /// Value of an integer term. Requires IsInt(t).
  int64_t int_value(TermId t) const;

  /// Name of a symbol or variable term. Requires IsSymbol or IsVariable.
  const std::string& name(TermId t) const;

  /// Functor name of a compound term. Requires IsCompound(t).
  const std::string& functor(TermId t) const;

  /// Arguments of a compound term (empty for non-compounds).
  std::span<const TermId> args(TermId t) const;

  /// True if `t` is a cons cell `[H|T]`.
  bool IsCons(TermId t) const;
  /// True if `t` is `[]`.
  bool IsNil(TermId t) const { return t == nil_; }

  /// Renders `t` in source syntax, with `[a,b|T]` sugar for lists.
  std::string ToString(TermId t) const;

  /// Number of interned terms (monotonically increasing).
  int64_t size() const { return static_cast<int64_t>(nodes_.size()); }

  /// Collects the distinct variables occurring in `t`, in first-
  /// occurrence order, appending to `*out`.
  void CollectVariables(TermId t, std::vector<TermId>* out) const;

 private:
  struct Node {
    TermKind kind;
    bool ground;
    // kInt: index into int_values_. kSymbol/kVariable: index into
    // names_. kCompound: index into names_ for the functor.
    int32_t payload;
    // kCompound: [args_offset, args_offset + arity) into args_.
    int32_t args_offset = 0;
    int32_t arity = 0;
  };

  struct CompoundKey {
    int32_t functor_name_index;
    std::vector<TermId> args;
    bool operator==(const CompoundKey&) const = default;
  };
  struct CompoundKeyHash {
    size_t operator()(const CompoundKey& k) const;
  };

  static size_t Index(TermId t) {
    CS_DCHECK(t >= 0) << "null or invalid TermId";
    return static_cast<size_t>(t);
  }

  // Unlocked interning bodies; callers hold intern_mu_.
  int32_t InternNameLocked(std::string_view name);
  TermId AddNodeLocked(const Node& node);
  TermId MakeSymbolLocked(std::string_view name);
  TermId MakeVariableLocked(std::string_view name);
  TermId MakeCompoundLocked(std::string_view functor,
                            std::span<const TermId> args);

  // Append-only arenas: readers index them lock-free; the writer side
  // is serialized by intern_mu_.
  ChunkedVector<Node> nodes_;
  ChunkedVector<int64_t> int_values_;
  ChunkedVector<std::string> names_;
  ChunkedVector<TermId> args_;

  // Hash-consing indexes; touched only under intern_mu_.
  std::unordered_map<int64_t, TermId> int_index_;
  std::unordered_map<std::string, int32_t> name_index_;
  std::unordered_map<int32_t, TermId> symbol_index_;    // name -> symbol term
  std::unordered_map<int32_t, TermId> variable_index_;  // name -> var term
  std::unordered_map<CompoundKey, TermId, CompoundKeyHash> compound_index_;

  mutable std::mutex intern_mu_;
  int64_t fresh_counter_ = 0;
  TermId nil_ = kNullTerm;

  void AppendTo(TermId t, std::string* out) const;
};

/// Functor used for list cells; `[H|T]` is `'.'(H, T)`.
inline constexpr std::string_view kConsFunctor = ".";
/// Symbol used for the empty list.
inline constexpr std::string_view kNilName = "[]";

}  // namespace chainsplit

#endif  // CHAINSPLIT_TERM_TERM_H_
