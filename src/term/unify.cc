#include "term/unify.h"

namespace chainsplit {

TermId Substitution::Walk(TermId t, const TermPool& pool) const {
  while (pool.IsVariable(t)) {
    auto it = bindings_.find(t);
    if (it == bindings_.end()) return t;
    t = it->second;
  }
  return t;
}

void Substitution::Bind(TermId var, TermId term) {
  CS_DCHECK(bindings_.find(var) == bindings_.end())
      << "rebinding a bound variable";
  bindings_.emplace(var, term);
  log_.push_back(var);
}

void Substitution::RollbackTo(size_t mark) {
  CS_DCHECK(mark <= log_.size()) << "rollback mark from the future";
  while (log_.size() > mark) {
    bindings_.erase(log_.back());
    log_.pop_back();
  }
}

TermId Substitution::Lookup(TermId var) const {
  auto it = bindings_.find(var);
  return it == bindings_.end() ? kNullTerm : it->second;
}

TermId Substitution::Resolve(TermId t, TermPool& pool) const {
  t = Walk(t, pool);
  if (!pool.IsCompound(t) || pool.IsGround(t)) return t;
  std::vector<TermId> resolved;
  auto args = pool.args(t);
  resolved.reserve(args.size());
  bool changed = false;
  for (TermId a : args) {
    TermId r = Resolve(a, pool);
    changed = changed || (r != a);
    resolved.push_back(r);
  }
  if (!changed) return t;
  // functor(t) returns a reference into the pool's name table which can
  // be invalidated by interning; copy before MakeCompound.
  std::string functor = pool.functor(t);
  return pool.MakeCompound(functor, resolved);
}

bool OccursIn(const TermPool& pool, const Substitution& subst, TermId var,
              TermId t) {
  t = subst.Walk(t, pool);
  if (t == var) return true;
  if (!pool.IsCompound(t)) return false;
  for (TermId a : pool.args(t)) {
    if (OccursIn(pool, subst, var, a)) return true;
  }
  return false;
}

bool Unify(const TermPool& pool, TermId a, TermId b, Substitution* subst,
           bool occurs_check) {
  a = subst->Walk(a, pool);
  b = subst->Walk(b, pool);
  if (a == b) return true;
  if (pool.IsVariable(a)) {
    if (occurs_check && OccursIn(pool, *subst, a, b)) return false;
    subst->Bind(a, b);
    return true;
  }
  if (pool.IsVariable(b)) {
    if (occurs_check && OccursIn(pool, *subst, b, a)) return false;
    subst->Bind(b, a);
    return true;
  }
  if (!pool.IsCompound(a) || !pool.IsCompound(b)) {
    // Distinct ground atomic terms (hash-consing guarantees a != b means
    // structural difference).
    return false;
  }
  if (pool.functor(a) != pool.functor(b)) return false;
  auto args_a = pool.args(a);
  auto args_b = pool.args(b);
  if (args_a.size() != args_b.size()) return false;
  for (size_t i = 0; i < args_a.size(); ++i) {
    if (!Unify(pool, args_a[i], args_b[i], subst, occurs_check)) {
      return false;
    }
  }
  return true;
}

TermId RenameApart(TermPool& pool, TermId t,
                   std::unordered_map<TermId, TermId>* renaming) {
  switch (pool.kind(t)) {
    case TermKind::kInt:
    case TermKind::kSymbol:
      return t;
    case TermKind::kVariable: {
      auto it = renaming->find(t);
      if (it != renaming->end()) return it->second;
      TermId fresh = pool.FreshVariable(pool.name(t));
      renaming->emplace(t, fresh);
      return fresh;
    }
    case TermKind::kCompound: {
      if (pool.IsGround(t)) return t;
      std::vector<TermId> renamed;
      auto args = pool.args(t);
      renamed.reserve(args.size());
      for (TermId a : args) renamed.push_back(RenameApart(pool, a, renaming));
      std::string functor = pool.functor(t);
      return pool.MakeCompound(functor, renamed);
    }
  }
  return t;
}

}  // namespace chainsplit
