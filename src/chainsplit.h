#ifndef CHAINSPLIT_CHAINSPLIT_H_
#define CHAINSPLIT_CHAINSPLIT_H_

/// Umbrella header for the ChainSplit-DDB library: pulls in the public
/// API a typical application needs — the Database, the parser, and the
/// query planner. Sub-headers remain available for fine-grained use
/// (individual evaluators, chain analysis, workload generators).

#include "ast/ast.h"
#include "ast/parser.h"
#include "ast/printer.h"
#include "common/status.h"
#include "core/planner.h"
#include "rel/catalog.h"
#include "rel/csv.h"
#include "term/list_utils.h"
#include "term/term.h"

#endif  // CHAINSPLIT_CHAINSPLIT_H_
