#include "net/epoll_engine.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "net/listen.h"

namespace chainsplit {

namespace {
/// Registration key of the listening socket (conn ids start at 1).
constexpr uint64_t kListenKey = 0;

ssize_t SendSome(int fd, const char* data, size_t n) {
  return ::send(fd, data, n,
#ifdef MSG_NOSIGNAL
                MSG_NOSIGNAL
#else
                0
#endif
  );
}
}  // namespace

EpollEngine::EpollEngine(LineHandlerFactory factory, EngineOptions options,
                         NetCounters* counters)
    : factory_(std::move(factory)),
      options_(options),
      counters_(counters),
      queue_(options.queue_capacity, counters) {}

EpollEngine::~EpollEngine() { Stop(); }

Status EpollEngine::Start(int listen_fd) {
  listen_fd_ = listen_fd;
  CS_RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  CS_RETURN_IF_ERROR(loop_.Init());
  CS_RETURN_IF_ERROR(loop_.Add(listen_fd_, EPOLLIN, kListenKey));

  int workers = options_.workers;
  if (workers <= 0) {
    unsigned hw = std::thread::hardware_concurrency();
    workers = static_cast<int>(hw < 2 ? 2 : hw);
  }
  counters_->mode = "epoll";
  counters_->workers = workers;
  counters_->queue_capacity =
      static_cast<int64_t>(options_.queue_capacity);

  loop_thread_ = std::thread(
      [this] { loop_.Run([this](uint64_t k, uint32_t e) { OnEvent(k, e); }); });
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
  started_ = true;
  return Status::Ok();
}

void EpollEngine::WorkerMain() {
  Request request;
  while (queue_.Pop(&request)) {
    std::string out;
    bool keep_open = request.handler->HandleLine(request.line, &out);
    uint64_t id = request.conn_id;
    loop_.Post([this, id, response = std::move(out), keep_open]() mutable {
      OnCompletion(id, std::move(response), keep_open);
    });
  }
}

void EpollEngine::OnEvent(uint64_t key, uint32_t events) {
  if (key == kListenKey) {
    Accept();
    return;
  }
  auto it = conns_.find(key);
  if (it == conns_.end()) return;  // closed before this event drained
  Conn* conn = it->second.get();
  if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
    CloseConn(conn);
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushConn(conn);
    auto again = conns_.find(key);
    if (again == conns_.end()) return;  // flush completed a close
  }
  if ((events & EPOLLIN) != 0) {
    ReadConn(conn);
  }
}

void EpollEngine::Accept() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // EAGAIN: drained. EMFILE/ENFILE & friends: retry on the next
      // listen-ready event rather than spinning.
      return;
    }
    auto conn = std::make_unique<Conn>(options_.max_line_bytes);
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->handler = factory_();
    conn->write_buf = conn->handler->Greeting();
    counters_->accepted.fetch_add(1, std::memory_order_relaxed);
    counters_->active_connections.fetch_add(1, std::memory_order_relaxed);
    Conn* raw = conn.get();
    conns_.emplace(raw->id, std::move(conn));
    if (!loop_.Add(fd, 0, raw->id).ok()) {
      CloseConn(raw);
      continue;
    }
    // Send the greeting; FlushConn ends by registering the interest
    // mask (or closes the connection on a hard send error).
    FlushConn(raw);
  }
}

void EpollEngine::UpdateInterest(Conn* conn) {
  if (conn->dead) return;
  uint32_t want = 0;
  // Backpressure: while a line is in flight (or the connection is
  // draining toward close) the loop does not read this socket.
  if (!conn->in_flight && !conn->closing) want |= EPOLLIN;
  if (conn->write_off < conn->write_buf.size()) want |= EPOLLOUT;
  if (want == conn->armed) return;
  if (loop_.Mod(conn->fd, want, conn->id).ok()) conn->armed = want;
}

void EpollEngine::ReadConn(Conn* conn) {
  char chunk[16384];
  while (!conn->closing && !conn->dead) {
    ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      counters_->bytes_in.fetch_add(n, std::memory_order_relaxed);
      conn->framer.Append(chunk, static_cast<size_t>(n));
      PumpConn(conn);
      // A dispatched line disarms EPOLLIN; stop pulling bytes too.
      if (conn->in_flight) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Peer closed (or hard error). Anything still buffered can never
    // complete into a response the peer would read.
    CloseConn(conn);
    return;
  }
  UpdateInterest(conn);
  FlushConn(conn);
}

void EpollEngine::PumpConn(Conn* conn) {
  std::string line;
  while (!conn->in_flight && !conn->closing) {
    LineFramer::Result result = conn->framer.Next(&line);
    if (result == LineFramer::Result::kNeedMore) return;
    if (result == LineFramer::Result::kOversize) {
      counters_->rejected_oversize.fetch_add(1, std::memory_order_relaxed);
      counters_->responses.fetch_add(1, std::memory_order_relaxed);
      conn->write_buf += OversizeFrame(conn->framer.max_line_bytes());
      conn->closing = true;
      return;
    }
    Request request;
    request.conn_id = conn->id;
    request.handler = conn->handler.get();
    request.line = std::move(line);
    if (queue_.TryPush(std::move(request))) {
      counters_->dispatched.fetch_add(1, std::memory_order_relaxed);
      conn->in_flight = true;
      return;
    }
    // Admission control: the queue is full. Answer this line with an
    // overload frame right away and keep the connection alive — the
    // client sees a deliberate rejection, not a stalled or dropped
    // connection.
    counters_->rejected_overload.fetch_add(1, std::memory_order_relaxed);
    counters_->responses.fetch_add(1, std::memory_order_relaxed);
    conn->write_buf += OverloadFrame();
  }
}

void EpollEngine::FlushConn(Conn* conn) {
  if (conn->dead) return;
  while (conn->write_off < conn->write_buf.size()) {
    ssize_t n = SendSome(conn->fd, conn->write_buf.data() + conn->write_off,
                         conn->write_buf.size() - conn->write_off);
    if (n > 0) {
      counters_->bytes_out.fetch_add(n, std::memory_order_relaxed);
      conn->write_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      UpdateInterest(conn);  // arm EPOLLOUT for the remainder
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn);  // peer gone mid-response
    return;
  }
  conn->write_buf.clear();
  conn->write_off = 0;
  if (conn->closing && !conn->in_flight) {
    CloseConn(conn);
    return;
  }
  UpdateInterest(conn);
}

void EpollEngine::CloseConn(Conn* conn) {
  if (!conn->dead) {
    loop_.Del(conn->fd);
    ::close(conn->fd);
    conn->fd = -1;
    conn->dead = true;
    counters_->active_connections.fetch_sub(1, std::memory_order_relaxed);
  }
  // The handler (and the Conn holding it) must survive an in-flight
  // HandleLine; OnCompletion performs the deferred destruction.
  if (!conn->in_flight) conns_.erase(conn->id);
}

void EpollEngine::OnCompletion(uint64_t conn_id, std::string out,
                               bool keep_open) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Conn* conn = it->second.get();
  conn->in_flight = false;
  if (conn->dead) {
    conns_.erase(it);
    return;
  }
  counters_->responses.fetch_add(1, std::memory_order_relaxed);
  conn->write_buf += out;
  if (!keep_open) conn->closing = true;
  FlushConn(conn);
  auto again = conns_.find(conn_id);
  if (again == conns_.end()) return;  // flush closed it
  if (!conn->closing) {
    PumpConn(conn);
    // Flush any overload frames the pump appended; this also re-arms
    // EPOLLIN now that the connection is idle (or leaves it disarmed
    // when the pump dispatched the next buffered line).
    FlushConn(conn);
  }
}

void EpollEngine::Stop() {
  if (stopped_.exchange(true)) return;
  if (started_) {
    // Order: starve the workers, then the loop, then reclaim fds. An
    // in-flight HandleLine finishes first (cancel tokens make that
    // prompt); its completion Post lands in the mailbox and is dropped
    // when the loop exits. Connections (and the handlers inside them)
    // are destroyed only after both joins, so no worker can be touching
    // one.
    queue_.Stop();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    loop_.Quit();
    if (loop_thread_.joinable()) loop_thread_.join();
  }
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  counters_->active_connections.store(0, std::memory_order_relaxed);
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace chainsplit
