#include "net/listen.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace chainsplit {

StatusOr<int> OpenListenSocket(const std::string& addr, int port,
                               int backlog) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) {
    return InvalidArgumentError(
        StrCat("listen address '", addr, "' is not an IPv4 address"));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(StrCat("socket: ", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) < 0) {
    Status status = InternalError(
        StrCat("bind ", addr, ":", port, ": ", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) < 0) {
    Status status = InternalError(StrCat("listen: ", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  return fd;
}

StatusOr<int> BoundPort(int listen_fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&sa), &len) < 0) {
    return InternalError(StrCat("getsockname: ", std::strerror(errno)));
  }
  return static_cast<int>(ntohs(sa.sin_port));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return InternalError(StrCat("fcntl O_NONBLOCK: ", std::strerror(errno)));
  }
  return Status::Ok();
}

}  // namespace chainsplit
