#ifndef CHAINSPLIT_NET_NET_COUNTERS_H_
#define CHAINSPLIT_NET_NET_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace chainsplit {

/// Front-end telemetry shared by both TCP server modes, surfaced by
/// the `:net` command and the network benches. Counters are relaxed
/// atomics — they are monotone tallies (plus two gauges), not
/// synchronization; exact cross-field consistency is not promised.
///
/// The configuration fields (`mode`, `workers`, `queue_capacity`) are
/// written once before serving starts and read-only afterwards.
struct NetCounters {
  std::string mode = "none";
  int workers = 0;
  int64_t queue_capacity = 0;

  /// Connections accepted over the lifetime of the server.
  std::atomic<int64_t> accepted{0};
  /// Currently open connections (gauge).
  std::atomic<int64_t> active_connections{0};
  /// Request lines handed to the dispatcher pool.
  std::atomic<int64_t> dispatched{0};
  /// Request lines refused because the bounded queue was full; each
  /// was answered with a `% overloaded` frame, connection kept alive.
  std::atomic<int64_t> rejected_overload{0};
  /// Connections closed for exceeding the max request-line size.
  std::atomic<int64_t> rejected_oversize{0};
  /// Completed responses written back (including error frames).
  std::atomic<int64_t> responses{0};
  std::atomic<int64_t> bytes_in{0};
  std::atomic<int64_t> bytes_out{0};
  /// Requests sitting in the bounded queue right now (gauge) and the
  /// deepest the queue has ever been.
  std::atomic<int64_t> queue_depth{0};
  std::atomic<int64_t> queue_high_watermark{0};

  /// Records a new queue depth, advancing the high watermark.
  void RecordQueueDepth(int64_t depth) {
    queue_depth.store(depth, std::memory_order_relaxed);
    int64_t seen = queue_high_watermark.load(std::memory_order_relaxed);
    while (depth > seen &&
           !queue_high_watermark.compare_exchange_weak(
               seen, depth, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_NET_NET_COUNTERS_H_
