#include "net/frame.h"

#include "common/strings.h"

namespace chainsplit {

void LineFramer::Append(const char* data, size_t n) {
  // Compact once per network read: cheap relative to the syscall, and
  // it keeps the buffer from growing with the total bytes ever seen.
  if (start_ > 0) {
    buffer_.erase(0, start_);
    start_ = 0;
  }
  buffer_.append(data, n);
}

LineFramer::Result LineFramer::Next(std::string* line) {
  if (poisoned_) return Result::kOversize;
  size_t newline = buffer_.find('\n', start_);
  if (newline == std::string::npos) {
    if (max_line_bytes_ > 0 && buffered_bytes() > max_line_bytes_) {
      poisoned_ = true;
      return Result::kOversize;
    }
    return Result::kNeedMore;
  }
  size_t len = newline - start_;
  // A complete line over the limit is as unserveable as a partial one.
  if (max_line_bytes_ > 0 && len > max_line_bytes_) {
    poisoned_ = true;
    return Result::kOversize;
  }
  line->assign(buffer_, start_, len);
  start_ = newline + 1;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return Result::kLine;
}

std::string OversizeFrame(size_t max_line_bytes) {
  return StrCat("% error: request line exceeds ", max_line_bytes,
                " bytes\n.\n");
}

}  // namespace chainsplit
