#include "net/blocking_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace chainsplit {

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

bool BlockingClient::Connect(const std::string& addr, int port) {
  Close();
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, addr.c_str(), &sa.sin_addr) != 1) return false;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return false;
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    Close();
    return false;
  }
  return true;
}

void BlockingClient::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

void BlockingClient::Abort() {
  if (fd_ < 0) return;
  struct linger lg {
    1, 0
  };
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd_);
  fd_ = -1;
}

bool BlockingClient::Send(const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                       MSG_NOSIGNAL
#else
                       0
#endif
    );
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string BlockingClient::ReadFrame() {
  std::string frame;
  while (true) {
    size_t newline;
    while ((newline = buffer_.find('\n')) != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (line == ".") return frame;
      frame += line;
      frame += "\n";
    }
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return "";
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

std::string BlockingClient::ReadUntilClose() {
  std::string all = std::move(buffer_);
  buffer_.clear();
  char chunk[4096];
  ssize_t n;
  while ((n = ::recv(fd_, chunk, sizeof(chunk), 0)) > 0) {
    all.append(chunk, static_cast<size_t>(n));
  }
  return all;
}

}  // namespace chainsplit
