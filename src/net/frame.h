#ifndef CHAINSPLIT_NET_FRAME_H_
#define CHAINSPLIT_NET_FRAME_H_

#include <cstddef>
#include <string>

namespace chainsplit {

/// Splits a TCP byte stream into protocol lines, enforcing a maximum
/// request-line size. Both server front ends (the legacy
/// thread-per-connection loop and the epoll engine) frame through this
/// class, so their byte-level behavior — CRLF stripping, pipelined
/// segments, oversize rejection — is identical by construction.
///
/// Draining is amortized linear: Next() walks a read offset through
/// the buffer and compacts once per Append, never erase-per-line (a
/// pipelined client can put hundreds of lines in one segment).
class LineFramer {
 public:
  /// `max_line_bytes` bounds one request line (terminator excluded);
  /// 0 means unlimited.
  explicit LineFramer(size_t max_line_bytes = 0)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends raw bytes received from the socket.
  void Append(const char* data, size_t n);

  enum class Result {
    kLine,      // *line holds the next complete line (no \n, no \r)
    kNeedMore,  // no complete line buffered; read more
    kOversize,  // line limit exceeded — reject and close the connection
  };

  /// Extracts the next complete line. After kOversize the framer is
  /// poisoned: every further call returns kOversize (the stream has no
  /// recoverable framing).
  Result Next(std::string* line);

  /// Bytes currently buffered and not yet returned as lines.
  size_t buffered_bytes() const { return buffer_.size() - start_; }

  size_t max_line_bytes() const { return max_line_bytes_; }

 private:
  std::string buffer_;
  size_t start_ = 0;
  size_t max_line_bytes_;
  bool poisoned_ = false;
};

/// The error frame written before closing an oversize-line connection;
/// shared verbatim by both front ends so differential tests can assert
/// byte-identical output.
std::string OversizeFrame(size_t max_line_bytes);

/// The admission-control rejection frame: written when the bounded
/// request queue is full; the connection stays open.
inline const char* OverloadFrame() { return "% overloaded\n.\n"; }

}  // namespace chainsplit

#endif  // CHAINSPLIT_NET_FRAME_H_
