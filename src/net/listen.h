#ifndef CHAINSPLIT_NET_LISTEN_H_
#define CHAINSPLIT_NET_LISTEN_H_

#include <string>

#include "common/status.h"

namespace chainsplit {

/// Opens an IPv4 listening socket bound to `addr`:`port` (dotted quad;
/// port 0 picks an ephemeral port) with the given accept backlog.
/// Returns the listening fd; the caller owns it.
StatusOr<int> OpenListenSocket(const std::string& addr, int port,
                               int backlog);

/// The locally bound port of a listening socket (after an ephemeral
/// bind).
StatusOr<int> BoundPort(int listen_fd);

/// Sets O_NONBLOCK on `fd`.
Status SetNonBlocking(int fd);

}  // namespace chainsplit

#endif  // CHAINSPLIT_NET_LISTEN_H_
