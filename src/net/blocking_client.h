#ifndef CHAINSPLIT_NET_BLOCKING_CLIENT_H_
#define CHAINSPLIT_NET_BLOCKING_CLIENT_H_

#include <string>

namespace chainsplit {

/// A minimal blocking client for the "."-framed line protocol, shared
/// by the server tests and the network benches. Not part of the
/// serving path.
class BlockingClient {
 public:
  BlockingClient() = default;
  /// Connects to `addr`:`port` (IPv4 dotted quad).
  BlockingClient(const std::string& addr, int port) { Connect(addr, port); }
  ~BlockingClient() { Close(); }
  BlockingClient(BlockingClient&& other) noexcept;
  BlockingClient& operator=(BlockingClient&& other) noexcept;
  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  bool Connect(const std::string& addr, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Hard-closes with an RST (SO_LINGER zero) — exercises the server's
  /// failed-send paths.
  void Abort();

  /// Sends raw bytes; false on any short write.
  bool Send(const std::string& data);

  /// Reads until the lone "." terminator line; returns the frame body
  /// without it. Empty string on disconnect.
  std::string ReadFrame();

  /// Reads every byte until the peer closes (for differential tests).
  std::string ReadUntilClose();

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_NET_BLOCKING_CLIENT_H_
