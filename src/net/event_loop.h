#ifndef CHAINSPLIT_NET_EVENT_LOOP_H_
#define CHAINSPLIT_NET_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/status.h"

namespace chainsplit {

/// A level-triggered epoll reactor with a cross-thread task mailbox.
///
/// One thread calls Run(); it blocks in epoll_wait and dispatches
/// ready (key, events) pairs to the callback. Any thread may Post() a
/// task (or Quit()): posted work is queued under a mutex and an
/// eventfd write wakes the loop, which runs all pending tasks on the
/// loop thread before the next wait — that is the only
/// synchronization the connection state machines need, since every
/// touch of per-connection state happens on the loop thread.
class EventLoop {
 public:
  EventLoop() = default;
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd.
  Status Init();

  /// Registers `fd` with the given level-triggered interest mask;
  /// `key` comes back in the Run callback.
  Status Add(int fd, uint32_t events, uint64_t key);
  Status Mod(int fd, uint32_t events, uint64_t key);
  void Del(int fd);

  /// Runs until Quit(). `on_event` is called on the loop thread for
  /// each ready registration.
  void Run(const std::function<void(uint64_t key, uint32_t events)>& on_event);

  /// Enqueues `task` to run on the loop thread and wakes the loop.
  /// Safe from any thread. Tasks posted after Quit() are dropped when
  /// Run() returns.
  void Post(std::function<void()> task);

  /// Asks Run() to return after the current dispatch round.
  void Quit();

 private:
  void Wake();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::mutex mu_;  // guards tasks_, quit_
  std::vector<std::function<void()>> tasks_;
  bool quit_ = false;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_NET_EVENT_LOOP_H_
