#ifndef CHAINSPLIT_NET_EPOLL_ENGINE_H_
#define CHAINSPLIT_NET_EPOLL_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/handler.h"
#include "net/net_counters.h"
#include "net/request_queue.h"

namespace chainsplit {

struct EngineOptions {
  /// Bounded request-queue capacity; a full queue rejects with
  /// `% overloaded` instead of queueing (admission control).
  size_t queue_capacity = 256;
  /// Dispatcher pool size; 0 = max(2, hardware_concurrency).
  int workers = 0;
  /// Maximum request-line size; longer lines get an error frame and
  /// the connection is closed. 0 = unlimited.
  size_t max_line_bytes = 1 << 20;
};

/// The event-driven TCP engine: one epoll loop thread owning every
/// connection fd and all per-connection state, plus a fixed dispatcher
/// pool executing request lines pulled from a bounded queue.
///
/// Data flow (docs/service.md has the full picture):
///
///   accept -> Conn{framer, handler, write buffer}
///   EPOLLIN -> read -> framer -> line -> BoundedQueue::TryPush
///     full  -> "% overloaded" frame appended, connection stays open
///   worker: handler->HandleLine(line) -> Post completion
///   loop:   append response, flush, re-arm EPOLLIN, pump next line
///
/// Per-connection ordering and backpressure come from one invariant:
/// at most one line per connection is ever in flight, and while it is,
/// the loop stops reading that socket (EPOLLIN disarmed) — a pipelining
/// client is throttled by TCP flow control, not by server memory.
/// Cross-thread handoff is mailbox-only (EventLoop::Post), so all
/// connection state is loop-thread-confined; the queue push/pop pair
/// orders the handler's memory accesses between loop and workers.
class EpollEngine {
 public:
  /// `counters` must outlive the engine; configuration fields
  /// (mode/workers/queue_capacity) are filled in by Start.
  EpollEngine(LineHandlerFactory factory, EngineOptions options,
              NetCounters* counters);
  ~EpollEngine();
  EpollEngine(const EpollEngine&) = delete;
  EpollEngine& operator=(const EpollEngine&) = delete;

  /// Takes ownership of `listen_fd` (an already-listening socket),
  /// switches it non-blocking and starts the loop thread and workers.
  Status Start(int listen_fd);

  /// Stops workers and the loop, closes every connection. Idempotent.
  /// In-flight handler calls run to completion first — cancel them via
  /// an external token (the TcpServer shutdown token) before calling.
  void Stop();

  /// Live connections (loop-thread gauge, for tests).
  int64_t active_connections() const {
    return counters_->active_connections.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    std::unique_ptr<LineHandler> handler;
    LineFramer framer;
    std::string write_buf;   // unsent response bytes
    size_t write_off = 0;    // sent prefix of write_buf
    uint32_t armed = 0;      // interest mask currently registered
    bool in_flight = false;  // one line at the dispatcher pool
    bool closing = false;    // close once write_buf drains
    bool dead = false;       // fd closed; destroy when !in_flight

    explicit Conn(size_t max_line) : framer(max_line) {}
  };

  struct Request {
    uint64_t conn_id = 0;
    /// Stable while the request is in flight: a Conn with an in-flight
    /// line is never destroyed, only marked dead.
    LineHandler* handler = nullptr;
    std::string line;
  };

  void OnEvent(uint64_t key, uint32_t events);
  void Accept();
  /// Reads until EAGAIN; feeds the framer.
  void ReadConn(Conn* conn);
  /// Parses buffered lines: dispatches one (or rejects on overflow)
  /// until a line is in flight or the buffer runs dry.
  void PumpConn(Conn* conn);
  /// Writes as much buffered output as the socket takes.
  void FlushConn(Conn* conn);
  /// Recomputes and registers the epoll interest mask.
  void UpdateInterest(Conn* conn);
  /// Closes the fd; destroys now or defers until the in-flight line
  /// completes.
  void CloseConn(Conn* conn);
  void OnCompletion(uint64_t conn_id, std::string out, bool keep_open);
  void WorkerMain();

  const LineHandlerFactory factory_;
  const EngineOptions options_;
  NetCounters* const counters_;

  EventLoop loop_;
  BoundedQueue<Request> queue_;
  int listen_fd_ = -1;
  uint64_t next_conn_id_ = 1;
  /// Loop-thread-only. Keyed by id, not fd: the kernel reuses fds
  /// immediately, ids are never reused.
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  bool started_ = false;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_NET_EPOLL_ENGINE_H_
