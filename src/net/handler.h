#ifndef CHAINSPLIT_NET_HANDLER_H_
#define CHAINSPLIT_NET_HANDLER_H_

#include <functional>
#include <memory>
#include <string>

namespace chainsplit {

/// Per-connection application logic plugged into the epoll engine.
/// The engine creates one handler per accepted connection (on the
/// loop thread) and invokes HandleLine on a dispatcher worker — one
/// line at a time per connection, never concurrently, so handlers
/// need no internal locking.
class LineHandler {
 public:
  virtual ~LineHandler() = default;

  /// Bytes to send immediately on connect ("" for none).
  virtual std::string Greeting() { return ""; }

  /// Handles one request line, appending the response bytes to `*out`.
  /// Returns false to close the connection once the response flushes.
  virtual bool HandleLine(const std::string& line, std::string* out) = 0;
};

using LineHandlerFactory = std::function<std::unique_ptr<LineHandler>()>;

}  // namespace chainsplit

#endif  // CHAINSPLIT_NET_HANDLER_H_
