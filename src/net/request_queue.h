#ifndef CHAINSPLIT_NET_REQUEST_QUEUE_H_
#define CHAINSPLIT_NET_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "net/net_counters.h"

namespace chainsplit {

/// A bounded multi-producer / multi-consumer queue — the admission
/// valve between the event loop and the dispatcher pool. Producers
/// never block: TryPush fails immediately when the queue is at
/// capacity, which is the signal to answer `% overloaded` instead of
/// letting latency and memory grow without bound. Consumers block in
/// Pop until work arrives or Stop() drains them out.
template <typename T>
class BoundedQueue {
 public:
  /// `counters` (optional) receives depth/high-watermark telemetry.
  explicit BoundedQueue(size_t capacity, NetCounters* counters = nullptr)
      : capacity_(capacity), counters_(counters) {}

  /// Enqueues unless full or stopped; never blocks.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (counters_ != nullptr) {
        counters_->RecordQueueDepth(static_cast<int64_t>(items_.size()));
      }
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next item; false once stopped and drained.
  bool Pop(T* item) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return stopped_ || !items_.empty(); });
    if (items_.empty()) return false;
    *item = std::move(items_.front());
    items_.pop_front();
    if (counters_ != nullptr) {
      counters_->RecordQueueDepth(static_cast<int64_t>(items_.size()));
    }
    return true;
  }

  /// Wakes every blocked consumer; queued items are still drained (Pop
  /// keeps returning them), new pushes are refused.
  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  const size_t capacity_;
  NetCounters* counters_;
  bool stopped_ = false;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_NET_REQUEST_QUEUE_H_
