#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace chainsplit {

namespace {
/// The registration key reserved for the wakeup eventfd.
constexpr uint64_t kWakeKey = ~uint64_t{0};
}  // namespace

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return InternalError(StrCat("epoll_create1: ", std::strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return InternalError(StrCat("eventfd: ", std::strerror(errno)));
  }
  return Add(wake_fd_, EPOLLIN, kWakeKey);
}

Status EventLoop::Add(int fd, uint32_t events, uint64_t key) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = key;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return InternalError(StrCat("epoll_ctl ADD: ", std::strerror(errno)));
  }
  return Status::Ok();
}

Status EventLoop::Mod(int fd, uint32_t events, uint64_t key) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = key;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return InternalError(StrCat("epoll_ctl MOD: ", std::strerror(errno)));
  }
  return Status::Ok();
}

void EventLoop::Del(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::Wake() {
  uint64_t one = 1;
  // A full eventfd counter already guarantees a pending wakeup.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  Wake();
}

void EventLoop::Quit() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    quit_ = true;
  }
  Wake();
}

void EventLoop::Run(
    const std::function<void(uint64_t key, uint32_t events)>& on_event) {
  epoll_event events[128];
  std::vector<std::function<void()>> ready;
  while (true) {
    // Drain the mailbox before blocking: completions posted by the
    // dispatcher pool re-arm connections for the wait below.
    {
      std::lock_guard<std::mutex> lock(mu_);
      ready.swap(tasks_);
      if (quit_ && ready.empty()) return;
    }
    for (auto& task : ready) task();
    ready.clear();

    int n = ::epoll_wait(epoll_fd_, events,
                         static_cast<int>(sizeof(events) / sizeof(events[0])),
                         -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // epoll fd gone — shutting down
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == kWakeKey) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      on_event(events[i].data.u64, events[i].events);
    }
  }
}

}  // namespace chainsplit
