#include "common/strings.h"

namespace chainsplit {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace chainsplit
