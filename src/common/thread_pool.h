#ifndef CHAINSPLIT_COMMON_THREAD_POOL_H_
#define CHAINSPLIT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chainsplit {

/// A small fixed-size work-queue thread pool for data-parallel
/// relational operators (see HashJoin in rel/ops.cc).
///
/// Scheduling: every task belongs to a WorkGroup (a per-caller
/// completion counter), so independent callers — two concurrent
/// service queries, a join and a ParallelFor — wait only for their own
/// tasks, never each other's. Tasks may carry an *affinity hint*: a
/// hinted task is queued on worker `hint % size()` and taken by that
/// worker first, so repeated submissions with the same hint land on
/// the same worker and its caches stay warm (the partitioned join
/// hints partition p to worker p). Hints are soft — an idle worker
/// steals from other workers' queues, so progress never depends on
/// the hinted worker being free.
///
/// When built with CHAINSPLIT_HAVE_NUMA (CMake detects numa.h +
/// libnuma) and the machine has more than one NUMA node, worker i is
/// bound to node i % nodes at startup, so memory first-touched inside
/// a hinted task is allocated on the node of the worker that will
/// keep probing it. Without libnuma (or on one node) this is a no-op.
///
/// Usage contract: tasks must not throw. Nested submission is safe:
/// a task running on a pool worker may submit child tasks (its own
/// WorkGroup, ParallelFor, a nested join) and Wait() on them — a
/// worker blocked in Wait() *helps*, draining queued tasks inline
/// instead of sleeping, so a saturated pool cannot deadlock on child
/// work (see WorkGroup::Wait). Determinism is the caller's job —
/// partition work into chunks, give each chunk private output
/// storage, and merge in chunk order after Wait() returns.
class ThreadPool {
 public:
  /// A per-caller completion token: counts only the tasks submitted
  /// through it, so Wait() is unaffected by other callers sharing the
  /// pool. Destroying a WorkGroup waits for its outstanding tasks.
  class WorkGroup {
   public:
    explicit WorkGroup(ThreadPool* pool) : pool_(pool) {}
    ~WorkGroup() { Wait(); }
    WorkGroup(const WorkGroup&) = delete;
    WorkGroup& operator=(const WorkGroup&) = delete;

    /// Enqueues `task`. `affinity_hint` >= 0 prefers worker
    /// `hint % size()`; -1 lets any worker take it.
    void Submit(std::function<void()> task, int affinity_hint = -1) {
      pool_->SubmitTask(this, std::move(task), affinity_hint);
    }

    /// Blocks until every task submitted through *this group* is done.
    /// When called from a worker of the same pool, runs queued tasks
    /// (any group's) inline while waiting, so nested WorkGroups never
    /// deadlock a saturated pool.
    void Wait();

   private:
    friend class ThreadPool;
    void OnTaskDone();

    ThreadPool* pool_;
    std::mutex mu_;
    std::condition_variable cv_;
    int64_t pending_ = 0;  // queued + running tasks of this group
  };

  /// `num_threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// NUMA nodes the workers are spread over (1 without libnuma).
  int numa_nodes() const { return numa_nodes_; }

  /// Enqueues `task` on the pool's default group (see Wait()).
  void Submit(std::function<void()> task) {
    SubmitTask(&default_group_, std::move(task), -1);
  }

  /// Blocks until every task submitted via Submit() has finished.
  /// Tasks submitted through explicit WorkGroups are *not* waited for
  /// — callers with private groups wait on those instead.
  void Wait() { default_group_.Wait(); }

  /// Splits [begin, end) into at most size() contiguous chunks of at
  /// least `min_grain` items and runs `body(chunk_begin, chunk_end)`
  /// on the workers, blocking until all chunks are done. Runs inline
  /// when the range is below min_grain or the pool has one thread.
  /// Uses a private WorkGroup, so concurrent ParallelFor callers do
  /// not wait on each other's chunks.
  void ParallelFor(int64_t begin, int64_t end, int64_t min_grain,
                   const std::function<void(int64_t, int64_t)>& body);

  /// Process-wide pool, sized to the hardware, created on first use.
  static ThreadPool& Shared();

 private:
  struct Task {
    std::function<void()> fn;
    WorkGroup* group;
  };

  void SubmitTask(WorkGroup* group, std::function<void()> task, int hint);
  void WorkerLoop(int worker);
  /// Pops the next task for `worker` (own hinted queue, then the
  /// shared queue, then stealing). Caller holds mu_; returns false
  /// when no task is queued anywhere.
  bool PopTask(int worker, Task* task);
  /// Index of the calling thread in this pool's workers_, or -1 when
  /// the caller is not one of this pool's workers.
  int CurrentWorkerIndex() const;
  /// Pops and runs one queued task on the calling thread (used by a
  /// worker helping while it waits). Returns false when every queue
  /// was empty.
  bool RunOneTask(int worker);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task or stop
  std::deque<Task> shared_queue_;    // unhinted tasks
  std::vector<std::deque<Task>> hinted_;  // one queue per worker
  int64_t queued_ = 0;  // tasks across all queues (wake predicate)
  bool stop_ = false;
  int numa_nodes_ = 1;
  WorkGroup default_group_{this};
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_COMMON_THREAD_POOL_H_
