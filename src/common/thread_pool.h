#ifndef CHAINSPLIT_COMMON_THREAD_POOL_H_
#define CHAINSPLIT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace chainsplit {

/// A small fixed-size work-queue thread pool for data-parallel
/// relational operators (see HashJoin in rel/ops.cc).
///
/// Usage contract: one orchestrating thread Submits tasks and calls
/// Wait(); tasks must not throw and must not Submit recursively.
/// Determinism is the caller's job — partition work into chunks, give
/// each chunk private output storage, and merge in chunk order after
/// Wait() returns.
class ThreadPool {
 public:
  /// `num_threads` == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `task` for execution on a worker thread.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Splits [begin, end) into at most size() contiguous chunks of at
  /// least `min_grain` items and runs `body(chunk_begin, chunk_end)`
  /// on the workers, blocking until all chunks are done. Runs inline
  /// when the range is below min_grain or the pool has one thread.
  void ParallelFor(int64_t begin, int64_t end, int64_t min_grain,
                   const std::function<void(int64_t, int64_t)>& body);

  /// Process-wide pool, sized to the hardware, created on first use.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: task or stop
  std::condition_variable idle_cv_;  // signals Wait(): all drained
  std::deque<std::function<void()>> queue_;
  int64_t in_flight_ = 0;  // queued + currently running tasks
  bool stop_ = false;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_COMMON_THREAD_POOL_H_
