#ifndef CHAINSPLIT_COMMON_STATUS_H_
#define CHAINSPLIT_COMMON_STATUS_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace chainsplit {

/// Error category for a failed operation. Kept deliberately small: the
/// library reports *why* a query cannot be answered (bad syntax, not
/// finitely evaluable, resource cap hit) rather than modelling every
/// possible failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // malformed input (parser errors, bad schemas)
  kNotFound,          // missing predicate/relation/rule
  kFailedPrecondition,  // operation not applicable in this state
  kUnimplemented,     // recursion class outside the supported fragment
  kNotFinitelyEvaluable,  // query requires evaluating an infinite relation
  kResourceExhausted,     // iteration/tuple cap exceeded (runaway guard)
  kDeadlineExceeded,  // per-query deadline elapsed mid-evaluation
  kCancelled,         // cooperative cancellation requested by the caller
  kInternal,          // invariant violation inside the library
};

/// Returns a short upper-camel name for `code`, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a payload. Modeled after
/// absl::Status: cheap to copy in the OK case, carries a code + message
/// otherwise. The library does not use exceptions (Google style); every
/// fallible public entry point returns Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "Code: message" form for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status UnimplementedError(std::string message);
Status NotFinitelyEvaluableError(std::string message);
Status ResourceExhaustedError(std::string message);
Status DeadlineExceededError(std::string message);
Status CancelledError(std::string message);
Status InternalError(std::string message);

/// A Status or a value of type T. Minimal analogue of absl::StatusOr.
/// Accessing value() on a non-OK StatusOr aborts (programming error).
template <typename T>
class StatusOr {
 public:
  /// Intentionally implicit, mirroring absl::StatusOr: allows
  /// `return value;` and `return SomeError(...);` from the same function.
  StatusOr(const T& value) : value_(value) {}            // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}      // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      std::cerr << "StatusOr constructed from OK status without a value\n";
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    if (!value_.has_value()) {
      std::cerr << "StatusOr::value() on error: " << status_.ToString()
                << "\n";
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace chainsplit

/// Propagates a non-OK Status from `expr` out of the current function.
#define CS_RETURN_IF_ERROR(expr)                       \
  do {                                                 \
    ::chainsplit::Status cs_status_ = (expr);          \
    if (!cs_status_.ok()) return cs_status_;           \
  } while (false)

/// Evaluates `rexpr` (a StatusOr), propagating errors, else binds `lhs`.
#define CS_ASSIGN_OR_RETURN(lhs, rexpr)                \
  CS_ASSIGN_OR_RETURN_IMPL_(                           \
      CS_STATUS_MACROS_CONCAT_(cs_statusor_, __LINE__), lhs, rexpr)

#define CS_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                              \
  if (!statusor.ok()) return statusor.status();         \
  lhs = std::move(statusor).value()

#define CS_STATUS_MACROS_CONCAT_(x, y) CS_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define CS_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

#endif  // CHAINSPLIT_COMMON_STATUS_H_
