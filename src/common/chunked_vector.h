#ifndef CHAINSPLIT_COMMON_CHUNKED_VECTOR_H_
#define CHAINSPLIT_COMMON_CHUNKED_VECTOR_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <memory>
#include <utility>

#include "common/logging.h"

namespace chainsplit {

/// Append-only storage with stable element addresses and wait-free
/// concurrent reads.
///
/// The single-writer / many-reader analogue of std::vector for the
/// interning pools: `push_back` never relocates existing elements, so a
/// reader holding an index (a TermId, a name index, ...) can
/// dereference it without any lock while a writer appends. Growth is a
/// ladder of geometrically sized chunks published through atomic
/// pointers:
///
///   chunk k covers global indices [B*(2^k - 1), B*(2^(k+1) - 1))
///   and holds B*2^k elements, with B = 2^kBaseBits.
///
/// Locating index i is pure bit math (no loop, no indirection chain):
/// k = bit_width((i >> kBaseBits) + 1) - 1.
///
/// Concurrency contract:
///  - At most one thread appends at a time (callers serialize writers
///    with their own mutex — the interning pools already have one).
///  - Readers may call size() / operator[] / PtrTo concurrently with
///    the writer. size() is an acquire load paired with the writer's
///    release store, so every element below the observed size is fully
///    constructed and visible.
///  - Readers must only access indices they learned from size() or
///    from a value published through some other synchronized channel
///    (e.g. a TermId handed over a mutex or lock acquisition).
template <typename T>
class ChunkedVector {
 public:
  ChunkedVector() = default;
  ChunkedVector(const ChunkedVector&) = delete;
  ChunkedVector& operator=(const ChunkedVector&) = delete;

  ~ChunkedVector() {
    size_t n = size_.load(std::memory_order_acquire);
    for (size_t i = 0; i < n; ++i) Slot(i)->~T();
    for (int k = 0; k < kMaxChunks; ++k) {
      T* chunk = chunks_[k].load(std::memory_order_acquire);
      if (chunk != nullptr) {
        std::allocator<T>().deallocate(chunk, ChunkCapacity(k));
      }
    }
  }

  /// Number of constructed elements. Acquire-synchronized: all
  /// elements with index < size() are safe to read.
  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  const T& operator[](size_t i) const { return *Slot(i); }
  T& operator[](size_t i) { return *Slot(i); }

  /// Stable pointer to element `i`; elements appended by one
  /// AppendRange call are contiguous from the returned pointer.
  const T* PtrTo(size_t i) const { return Slot(i); }

  /// Appends one element; returns its index. Writer-side only.
  size_t push_back(T value) {
    size_t index = size_.load(std::memory_order_relaxed);
    EnsureChunk(ChunkOf(index));
    new (Slot(index)) T(std::move(value));
    size_.store(index + 1, std::memory_order_release);
    return index;
  }

  /// Appends `count` elements as one contiguous run (never straddling
  /// a chunk boundary) and returns the index of the first. When the
  /// current chunk cannot hold the run, the remainder of the chunk is
  /// filled with value-initialized padding elements (their indices are
  /// simply never handed out). Requires count <= B (the smallest chunk
  /// size). Writer-side only.
  size_t AppendRange(const T* data, size_t count) {
    CS_CHECK(count <= (size_t{1} << kBaseBits))
        << "AppendRange run larger than the base chunk";
    size_t index = size_.load(std::memory_order_relaxed);
    if (count > 0) {
      int k = ChunkOf(index);
      size_t room = ChunkStart(k) + ChunkCapacity(k) - index;
      if (room < count) {
        // Pad out the current chunk so the run lands contiguously at
        // the start of the next one.
        EnsureChunk(k);
        for (size_t p = 0; p < room; ++p) new (Slot(index + p)) T();
        index += room;
      }
    }
    EnsureChunk(ChunkOf(index));
    for (size_t j = 0; j < count; ++j) new (Slot(index + j)) T(data[j]);
    size_.store(index + count, std::memory_order_release);
    return index;
  }

 private:
  static constexpr int kBaseBits = 10;  // smallest chunk: 1024 elements
  static constexpr int kMaxChunks = 30;

  static int ChunkOf(size_t i) {
    return std::bit_width((i >> kBaseBits) + 1) - 1;
  }
  static size_t ChunkStart(int k) {
    return ((size_t{1} << k) - 1) << kBaseBits;
  }
  static size_t ChunkCapacity(int k) { return size_t{1} << (kBaseBits + k); }

  T* Slot(size_t i) const {
    int k = ChunkOf(i);
    // Relaxed is enough: readers reach here only with an index made
    // visible by the acquire in size() (or an equivalent external
    // acquire), which also orders the chunk-pointer store.
    T* chunk = chunks_[k].load(std::memory_order_relaxed);
    CS_DCHECK(chunk != nullptr) << "read past published size";
    return chunk + (i - ChunkStart(k));
  }

  void EnsureChunk(int k) {
    CS_CHECK(k < kMaxChunks) << "ChunkedVector exhausted";
    if (chunks_[k].load(std::memory_order_relaxed) == nullptr) {
      T* chunk = std::allocator<T>().allocate(ChunkCapacity(k));
      chunks_[k].store(chunk, std::memory_order_release);
    }
  }

  std::array<std::atomic<T*>, kMaxChunks> chunks_{};
  std::atomic<size_t> size_{0};
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_COMMON_CHUNKED_VECTOR_H_
