#include "common/status.h"

namespace chainsplit {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kNotFinitelyEvaluable:
      return "NotFinitelyEvaluable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status NotFinitelyEvaluableError(std::string message) {
  return Status(StatusCode::kNotFinitelyEvaluable, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status DeadlineExceededError(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace chainsplit
