#ifndef CHAINSPLIT_COMMON_DEADLINE_H_
#define CHAINSPLIT_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace chainsplit {

/// Cooperative cancellation + deadline token, threaded through the
/// evaluator loops (semi-naive fixpoint iterations, chain-closure
/// rounds, buffered forward/backward steps, batched SLD expansions).
///
/// The checking granularity is deliberately per *iteration*, not per
/// tuple: an Expired() call reads one relaxed atomic and, when a
/// deadline is set, the steady clock — cheap enough for loop headers,
/// too expensive for the per-tuple hot paths.
///
/// Thread-safety: Cancel() may be called from any thread at any time.
/// SetDeadline()/set_parent() must happen-before the token is shared
/// with the evaluating thread (the query service configures the token
/// before evaluation starts).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation; every subsequent Check() fails kCancelled.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->cancelled());
  }

  /// Sets an absolute deadline; Check() fails kDeadlineExceeded once the
  /// steady clock passes it.
  void SetDeadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  /// Sets the deadline `budget` from now.
  void SetTimeout(Clock::duration budget) {
    SetDeadline(Clock::now() + budget);
  }

  /// Chains this token under `parent`: cancelling or expiring the
  /// parent expires this token too (a server shutdown token over
  /// per-request deadline tokens).
  void set_parent(const CancelToken* parent) { parent_ = parent; }

  bool Expired() const {
    if (cancelled()) return true;
    if (has_deadline_ && Clock::now() > deadline_) return true;
    return parent_ != nullptr && parent_->Expired();
  }

  /// Ok, or the Status describing why evaluation must stop.
  Status Check() const {
    if (cancelled()) return CancelledError("evaluation cancelled");
    if (has_deadline_ && Clock::now() > deadline_) {
      return DeadlineExceededError("query deadline exceeded");
    }
    if (parent_ != nullptr) return parent_->Check();
    return Status::Ok();
  }

 private:
  std::atomic<bool> cancelled_{false};
  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  const CancelToken* parent_ = nullptr;
};

/// Loop-header helper: Ok when `token` is null (the default for every
/// evaluator), else the token's verdict.
inline Status CheckCancel(const CancelToken* token) {
  return token == nullptr ? Status::Ok() : token->Check();
}

}  // namespace chainsplit

#endif  // CHAINSPLIT_COMMON_DEADLINE_H_
