#ifndef CHAINSPLIT_COMMON_LOGGING_H_
#define CHAINSPLIT_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>

/// CS_CHECK(cond) aborts with a source location when `cond` is false.
/// Used for internal invariants only — user-visible failures go through
/// Status. The streamed remainder lets call sites add context:
///   CS_CHECK(i < n) << "index " << i << " out of range";
#define CS_CHECK(cond)                                                \
  if (cond) {                                                         \
  } else                                                              \
    ::chainsplit::internal_logging::FatalMessage(__FILE__, __LINE__,  \
                                                 #cond)               \
        .stream()

/// CS_DCHECK(cond) is CS_CHECK in debug builds and compiled out under
/// NDEBUG (release/bench builds don't pay debug-invariant cost). The
/// condition and any streamed operands still type-check in release but
/// are never evaluated — side effects in a CS_DCHECK are a bug.
#ifdef NDEBUG
#define CS_DCHECK(cond)                                               \
  if (true || (cond)) {                                               \
  } else                                                              \
    ::chainsplit::internal_logging::FatalMessage(__FILE__, __LINE__,  \
                                                 #cond)               \
        .stream()
#else
#define CS_DCHECK(cond) CS_CHECK(cond)
#endif

namespace chainsplit {
namespace internal_logging {

/// Accumulates a fatal message and aborts the process when destroyed.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    std::cerr << "CHECK failed at " << file << ":" << line << ": "
              << condition << " ";
  }
  [[noreturn]] ~FatalMessage() {
    std::cerr << std::endl;
    std::abort();
  }
  std::ostream& stream() { return std::cerr; }
};

}  // namespace internal_logging
}  // namespace chainsplit

#endif  // CHAINSPLIT_COMMON_LOGGING_H_
