#ifndef CHAINSPLIT_COMMON_LOGGING_H_
#define CHAINSPLIT_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>

/// CS_CHECK(cond) aborts with a source location when `cond` is false.
/// Used for internal invariants only — user-visible failures go through
/// Status. The streamed remainder lets call sites add context:
///   CS_CHECK(i < n) << "index " << i << " out of range";
#define CS_CHECK(cond)                                                \
  if (cond) {                                                         \
  } else                                                              \
    ::chainsplit::internal_logging::FatalMessage(__FILE__, __LINE__,  \
                                                 #cond)               \
        .stream()

#define CS_DCHECK(cond) CS_CHECK(cond)

namespace chainsplit {
namespace internal_logging {

/// Accumulates a fatal message and aborts the process when destroyed.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition) {
    std::cerr << "CHECK failed at " << file << ":" << line << ": "
              << condition << " ";
  }
  [[noreturn]] ~FatalMessage() {
    std::cerr << std::endl;
    std::abort();
  }
  std::ostream& stream() { return std::cerr; }
};

}  // namespace internal_logging
}  // namespace chainsplit

#endif  // CHAINSPLIT_COMMON_LOGGING_H_
