#ifndef CHAINSPLIT_COMMON_HASH_H_
#define CHAINSPLIT_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace chainsplit {

/// Mixes `value` into `seed` (boost::hash_combine recipe, 64-bit).
inline void HashCombine(size_t* seed, size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Final avalanche over a hash-combine chain (murmur3 finalizer) so
/// consumers of low bits (linear probing) and of high bits (the
/// partitioned join's partition selector) both see well-spread bits.
inline size_t HashFinalize(size_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return h;
}

/// Hashes a contiguous range of integer ids (tuples, argument lists).
template <typename Int>
size_t HashRange(const Int* data, size_t n) {
  size_t seed = n;
  for (size_t i = 0; i < n; ++i) {
    HashCombine(&seed, static_cast<size_t>(data[i]));
  }
  return seed;
}

template <typename Int>
size_t HashVector(const std::vector<Int>& v) {
  return HashRange(v.data(), v.size());
}

}  // namespace chainsplit

#endif  // CHAINSPLIT_COMMON_HASH_H_
