#ifndef CHAINSPLIT_COMMON_STRINGS_H_
#define CHAINSPLIT_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace chainsplit {

/// Concatenates the string representations of all arguments, using
/// operator<<. StrCat("x=", 3, "!") == "x=3!".
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

/// Joins `parts` with `sep`: StrJoin({"a","b"}, ",") == "a,b".
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` at every occurrence of `sep` (empty pieces kept).
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace chainsplit

#endif  // CHAINSPLIT_COMMON_STRINGS_H_
