#include "common/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"

#if defined(CHAINSPLIT_HAVE_NUMA)
#include <numa.h>
#endif

namespace chainsplit {
namespace {

/// NUMA nodes available to bind workers to; 1 when libnuma is absent
/// or the machine is single-node (the graceful fallback path).
int DetectNumaNodes() {
#if defined(CHAINSPLIT_HAVE_NUMA)
  if (numa_available() < 0) return 1;
  return numa_max_node() + 1;
#else
  return 1;
#endif
}

/// Binds the calling worker thread to `node` so its allocations are
/// first-touched node-locally. No-op without libnuma.
void BindWorkerToNode(int node, int nodes) {
#if defined(CHAINSPLIT_HAVE_NUMA)
  if (nodes <= 1) return;
  numa_run_on_node(node);
  numa_set_preferred(node);
#else
  (void)node;
  (void)nodes;
#endif
}

/// Identity of the pool worker running on this thread, set for the
/// lifetime of WorkerLoop. Lets WorkGroup::Wait() detect that it is
/// being called from inside a pool task, where sleeping would strand
/// the worker (nested-submission deadlock: every worker blocked on a
/// child group none of them can drain).
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  int worker = -1;
};
thread_local WorkerIdentity g_worker_identity;

}  // namespace

void ThreadPool::WorkGroup::Wait() {
  const int worker = pool_ == nullptr ? -1 : pool_->CurrentWorkerIndex();
  if (worker < 0) {
    // External thread: nothing useful to do but sleep.
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return pending_ == 0; });
    return;
  }
  // Pool worker: help while waiting. Run queued tasks inline (any
  // group's — draining foreign work still frees workers that may be
  // running ours). When the queues are empty our remaining tasks are
  // running on other workers; poll with a short timed wait because a
  // foreign task finishing will not signal this group's cv_.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_ == 0) return;
    }
    if (pool_->RunOneTask(worker)) continue;
    std::unique_lock<std::mutex> lock(mu_);
    if (cv_.wait_for(lock, std::chrono::milliseconds(1),
                     [this] { return pending_ == 0; })) {
      return;
    }
  }
}

void ThreadPool::WorkGroup::OnTaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--pending_ == 0) cv_.notify_all();
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  numa_nodes_ = DetectNumaNodes();
  hinted_.resize(num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // default_group_ is destroyed after this body; its Wait() returns
  // immediately because the joined workers drained every queue.
}

bool ThreadPool::PopTask(int worker, Task* task) {
  std::deque<Task>& own = hinted_[worker];
  if (!own.empty()) {
    *task = std::move(own.front());
    own.pop_front();
  } else if (!shared_queue_.empty()) {
    *task = std::move(shared_queue_.front());
    shared_queue_.pop_front();
  } else {
    // Steal the oldest task of the nearest busy neighbour; hints are
    // preferences, not fences, so an idle worker always makes progress.
    int victim = -1;
    const int n = size();
    for (int d = 1; d < n; ++d) {
      const int w = (worker + d) % n;
      if (!hinted_[w].empty()) {
        victim = w;
        break;
      }
    }
    if (victim < 0) return false;
    *task = std::move(hinted_[victim].front());
    hinted_[victim].pop_front();
  }
  --queued_;
  return true;
}

int ThreadPool::CurrentWorkerIndex() const {
  return g_worker_identity.pool == this ? g_worker_identity.worker : -1;
}

bool ThreadPool::RunOneTask(int worker) {
  Task task;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!PopTask(worker, &task)) return false;
  }
  task.fn();
  task.group->OnTaskDone();
  return true;
}

void ThreadPool::WorkerLoop(int worker) {
  BindWorkerToNode(worker % numa_nodes_, numa_nodes_);
  g_worker_identity = {this, worker};
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || queued_ > 0; });
      if (!PopTask(worker, &task)) return;  // stop_ set, queues drained
    }
    task.fn();
    task.group->OnTaskDone();
  }
}

void ThreadPool::SubmitTask(WorkGroup* group, std::function<void()> task,
                            int hint) {
  {
    std::lock_guard<std::mutex> lock(group->mu_);
    ++group->pending_;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    CS_CHECK(!stop_) << "Submit on a stopping ThreadPool";
    if (hint >= 0) {
      hinted_[hint % size()].push_back(Task{std::move(task), group});
    } else {
      shared_queue_.push_back(Task{std::move(task), group});
    }
    ++queued_;
  }
  // Hinted tasks broadcast: the preferred worker may be mid-sleep and
  // notify_one could wake only a stealer.
  if (hint >= 0) {
    work_cv_.notify_all();
  } else {
    work_cv_.notify_one();
  }
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end, int64_t min_grain,
    const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (min_grain < 1) min_grain = 1;
  int64_t chunks = std::min<int64_t>(size(), (n + min_grain - 1) / min_grain);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const int64_t chunk = (n + chunks - 1) / chunks;
  WorkGroup group(this);
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t b = begin + c * chunk;
    const int64_t e = std::min(end, b + chunk);
    if (b >= e) break;
    group.Submit([&body, b, e] { body(b, e); }, static_cast<int>(c));
  }
  group.Wait();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace chainsplit
