#include "common/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace chainsplit {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    CS_CHECK(!stop_) << "Submit on a stopping ThreadPool";
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    int64_t begin, int64_t end, int64_t min_grain,
    const std::function<void(int64_t, int64_t)>& body) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (min_grain < 1) min_grain = 1;
  int64_t chunks = std::min<int64_t>(size(), (n + min_grain - 1) / min_grain);
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const int64_t chunk = (n + chunks - 1) / chunks;
  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t b = begin + c * chunk;
    const int64_t e = std::min(end, b + chunk);
    if (b >= e) break;
    Submit([&body, b, e] { body(b, e); });
  }
  Wait();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace chainsplit
