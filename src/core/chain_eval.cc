#include "core/chain_eval.h"

#include "common/strings.h"
#include "rel/ops.h"

namespace chainsplit {
namespace {

/// Delta rows at which the closure step switches from the per-row
/// probe loop to HashJoin (which parallelizes above its own
/// threshold). Below this the per-iteration scratch relation costs
/// more than it saves.
constexpr int64_t kJoinStepMinDeltaRows = 512;

/// Semi-naive closure kernel: repeatedly extends `delta` by one `edge`
/// step, accumulating into `*result` (arity 2: (origin, reached)).
///
/// The Insert return value drives the delta directly: a successful
/// insert into `result` is by definition a new tuple for the next
/// round, so no separate Contains pass (and no second hash walk) is
/// needed.
Status Closure(const Relation& edge, Relation* result, Relation&& delta0,
               int64_t max_iterations, TcStats* stats,
               const CancelToken* cancel) {
  const std::vector<int> from_col = {0};
  edge.EnsureIndex(from_col);
  Relation delta = std::move(delta0);
  while (!delta.empty()) {
    CS_RETURN_IF_ERROR(CheckCancel(cancel));
    if (++stats->iterations > max_iterations) {
      return ResourceExhaustedError(
          StrCat("transitive closure exceeded ", max_iterations,
                 " iterations"));
    }
    Relation next(2);
    if (delta.num_rows() >= kJoinStepMinDeltaRows) {
      // One bulk join step: delta.reached == edge.from, projected to
      // (delta.origin, edge.to). HashJoin emits candidates in
      // (delta row, edge posting) order — exactly the probe loop's
      // order below — so result/next contents and row order are
      // identical on either path, and the join parallelizes when the
      // delta is large enough (see rel/ops.h).
      static const JoinSpec kStep({{1, 0}});
      Relation cand(2);
      HashJoin(delta, edge, kStep, {0, 3}, &cand);
      for (int64_t i = 0; i < cand.num_rows(); ++i) {
        Relation::Row r = cand.row(i);
        if (result->Insert(r)) next.Insert(r);
      }
      stats->hash_collisions += cand.telemetry().hash_collisions;
    } else {
      TermId key;
      Tuple out(2);
      for (int64_t i = 0; i < delta.num_rows(); ++i) {
        Relation::Row t = delta.row(i);
        key = t[1];
        out[0] = t[0];
        edge.ProbeEach(from_col, &key, [&](int64_t j) {
          out[1] = edge.row(j)[1];
          if (result->Insert(out)) next.Insert(out);
        });
      }
    }
    stats->delta_tuples += next.size();
    stats->hash_collisions += delta.telemetry().hash_collisions;
    delta = std::move(next);
  }
  stats->tuples = result->size();
  return Status::Ok();
}

/// Folds the storage-layer counters of one closure run into `stats`.
/// `edge_before` is the edge telemetry snapshot taken at entry, so
/// repeated runs over the same relation do not double-count.
void FinishTelemetry(const Relation& edge, const Relation& result,
                     const Relation::Telemetry& edge_before,
                     TcStats* stats) {
  Relation::Telemetry edge_now = edge.telemetry();
  Relation::Telemetry res = result.telemetry();
  stats->probes += edge_now.probes - edge_before.probes;
  stats->hash_collisions +=
      (edge_now.hash_collisions - edge_before.hash_collisions) +
      res.hash_collisions;
  stats->arena_bytes = res.arena_bytes;
}

}  // namespace

StatusOr<Relation> TransitiveClosureFrom(const Relation& edge,
                                         const std::vector<TermId>& seeds,
                                         int64_t max_iterations,
                                         TcStats* stats,
                                         const CancelToken* cancel) {
  Relation result(2);
  CS_RETURN_IF_ERROR(TransitiveClosureFromInto(edge, seeds, max_iterations,
                                               &result, stats, cancel));
  return result;
}

Status TransitiveClosureFromInto(const Relation& edge,
                                 const std::vector<TermId>& seeds,
                                 int64_t max_iterations, Relation* result,
                                 TcStats* stats, const CancelToken* cancel) {
  *stats = TcStats{};
  Relation::Telemetry edge_before = edge.telemetry();
  Relation delta(2);
  const std::vector<int> from_col = {0};
  Tuple out(2);
  for (TermId seed : seeds) {
    out[0] = seed;
    edge.ProbeEach(from_col, &seed, [&](int64_t j) {
      out[1] = edge.row(j)[1];
      if (result->Insert(out)) delta.Insert(out);
    });
  }
  stats->delta_tuples += delta.size();
  CS_RETURN_IF_ERROR(Closure(edge, result, std::move(delta), max_iterations,
                             stats, cancel));
  FinishTelemetry(edge, *result, edge_before, stats);
  return Status::Ok();
}

StatusOr<Relation> TransitiveClosure(const Relation& edge,
                                     int64_t max_iterations, TcStats* stats,
                                     const CancelToken* cancel) {
  *stats = TcStats{};
  Relation::Telemetry edge_before = edge.telemetry();
  Relation result(2);
  Relation delta(2);
  result.Reserve(edge.num_rows());
  for (int64_t i = 0; i < edge.num_rows(); ++i) {
    if (result.Insert(edge.row(i))) delta.Insert(edge.row(i));
  }
  stats->delta_tuples += delta.size();
  CS_RETURN_IF_ERROR(Closure(edge, &result, std::move(delta), max_iterations,
                             stats, cancel));
  FinishTelemetry(edge, result, edge_before, stats);
  return result;
}

}  // namespace chainsplit
