#include "core/chain_eval.h"

#include "common/strings.h"

namespace chainsplit {
namespace {

/// Semi-naive closure kernel: repeatedly extends `delta` by one `edge`
/// step, accumulating into `*result` (arity 2: (origin, reached)).
Status Closure(const Relation& edge, Relation* result, Relation&& delta0,
               int64_t max_iterations, TcStats* stats) {
  const std::vector<int> from_col = {0};
  Relation delta = std::move(delta0);
  while (!delta.empty()) {
    if (++stats->iterations > max_iterations) {
      return ResourceExhaustedError(
          StrCat("transitive closure exceeded ", max_iterations,
                 " iterations"));
    }
    Relation next(2);
    Tuple key(1);
    Tuple out(2);
    for (int64_t i = 0; i < delta.num_rows(); ++i) {
      const Tuple& t = delta.row(i);
      key[0] = t[1];
      for (int64_t j : edge.Probe(from_col, key)) {
        out[0] = t[0];
        out[1] = edge.row(j)[1];
        if (!result->Contains(out)) next.Insert(out);
      }
    }
    stats->delta_tuples += next.size();
    for (int64_t i = 0; i < next.num_rows(); ++i) result->Insert(next.row(i));
    delta = std::move(next);
  }
  stats->tuples = result->size();
  return Status::Ok();
}

}  // namespace

StatusOr<Relation> TransitiveClosureFrom(const Relation& edge,
                                         const std::vector<TermId>& seeds,
                                         int64_t max_iterations,
                                         TcStats* stats) {
  *stats = TcStats{};
  Relation result(2);
  Relation delta(2);
  const std::vector<int> from_col = {0};
  Tuple key(1);
  for (TermId seed : seeds) {
    key[0] = seed;
    for (int64_t j : edge.Probe(from_col, key)) {
      Tuple out = {seed, edge.row(j)[1]};
      if (result.Insert(out)) delta.Insert(out);
    }
  }
  stats->delta_tuples += delta.size();
  CS_RETURN_IF_ERROR(
      Closure(edge, &result, std::move(delta), max_iterations, stats));
  return result;
}

StatusOr<Relation> TransitiveClosure(const Relation& edge,
                                     int64_t max_iterations, TcStats* stats) {
  *stats = TcStats{};
  Relation result(2);
  Relation delta(2);
  for (int64_t i = 0; i < edge.num_rows(); ++i) {
    if (result.Insert(edge.row(i))) delta.Insert(edge.row(i));
  }
  stats->delta_tuples += delta.size();
  CS_RETURN_IF_ERROR(
      Closure(edge, &result, std::move(delta), max_iterations, stats));
  return result;
}

}  // namespace chainsplit
