#include "core/finiteness.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "engine/builtins.h"

namespace chainsplit {

bool HoldsWithFanout(const Relation& relation,
                     const FinitenessConstraint& constraint,
                     int64_t max_fanout) {
  std::unordered_map<Tuple, std::unordered_set<TermId>, TupleHash> targets;
  Tuple key(constraint.source_columns.size());
  for (int64_t i = 0; i < relation.num_rows(); ++i) {
    Relation::Row row = relation.row(i);
    for (size_t c = 0; c < constraint.source_columns.size(); ++c) {
      key[c] = row[constraint.source_columns[c]];
    }
    auto& set = targets[key];
    set.insert(row[constraint.target_column]);
    if (static_cast<int64_t>(set.size()) > max_fanout) return false;
  }
  return true;
}

namespace {

bool Contains(const std::vector<TermId>& vars, TermId v) {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

void AddVars(const TermPool& pool, const Atom& atom,
             std::vector<TermId>* bound) {
  std::vector<TermId> vars;
  CollectAtomVariables(pool, atom, &vars);
  for (TermId v : vars) {
    if (!Contains(*bound, v)) bound->push_back(v);
  }
}

}  // namespace

StatusOr<PathSplit> SplitPath(const Program& program,
                              const CompiledChain& chain,
                              const ChainPath& path,
                              const std::vector<TermId>& bound_vars,
                              const PropagationGate* gate) {
  const TermPool& pool = program.pool();
  const Rule& rule = chain.recursive_rule;

  PathSplit split;
  std::vector<TermId> bound = bound_vars;
  std::vector<bool> chosen(path.literals.size(), false);
  size_t remaining = path.literals.size();

  while (remaining > 0) {
    int pick = -1;
    bool pick_is_builtin = false;
    // Pass 1: builtins that became evaluable.
    for (size_t i = 0; i < path.literals.size(); ++i) {
      if (chosen[i]) continue;
      const Atom& atom = rule.body[path.literals[i]];
      BuiltinKind kind = GetBuiltinKind(program.preds(), atom.pred);
      if (kind == BuiltinKind::kNone) continue;
      std::string ad = AtomAdornment(pool, atom, bound);
      std::vector<bool> arg_bound(ad.size());
      for (size_t a = 0; a < ad.size(); ++a) arg_bound[a] = ad[a] == 'b';
      bool evaluable = kind == BuiltinKind::kEq
                           ? (arg_bound[0] || arg_bound[1])
                           : BuiltinModeEvaluable(kind, arg_bound);
      if (evaluable) {
        pick = static_cast<int>(i);
        pick_is_builtin = true;
        break;
      }
    }
    // Pass 2: EDB relation literals connected to the bound set (and
    // past the efficiency gate when one is installed). IDB literals are
    // never iterated forward: a functional IDB predicate (e.g. isort's
    // inner `insert`, §4.1) is an infinite relation whose inputs come
    // from the recursion's own answers, so it belongs to the delayed
    // portion.
    if (pick < 0) {
      for (size_t i = 0; i < path.literals.size(); ++i) {
        if (chosen[i]) continue;
        const Atom& atom = rule.body[path.literals[i]];
        if (GetBuiltinKind(program.preds(), atom.pred) !=
            BuiltinKind::kNone) {
          continue;
        }
        if (program.IsIdb(atom.pred) &&
            !program.HasFiniteMode(atom.pred, AtomAdornment(pool, atom,
                                                            bound))) {
          continue;  // nested call without a declared finite mode: delay
        }
        std::string ad = AtomAdornment(pool, atom, bound);
        if (ad.find('b') == std::string::npos) continue;  // unconnected
        if (gate != nullptr && *gate != nullptr && !(*gate)(atom, ad)) {
          continue;  // weak linkage: leave for later or delay
        }
        pick = static_cast<int>(i);
        break;
      }
    }
    if (pick < 0) break;  // nothing more is immediately evaluable
    chosen[pick] = true;
    --remaining;
    split.evaluable.push_back(path.literals[pick]);
    AddVars(pool, rule.body[path.literals[pick]], &bound);
    (void)pick_is_builtin;
  }

  for (size_t i = 0; i < path.literals.size(); ++i) {
    if (chosen[i]) continue;
    split.delayed.push_back(path.literals[i]);
    const Atom& atom = rule.body[path.literals[i]];
    if (GetBuiltinKind(program.preds(), atom.pred) != BuiltinKind::kNone ||
        program.IsIdb(atom.pred)) {
      // A delayed functional predicate or nested recursion is a
      // dataflow-forced (finiteness) split; a delayed EDB literal under
      // a gate is an efficiency split.
      split.finiteness_split = true;
    } else if (gate != nullptr && *gate != nullptr) {
      split.efficiency_split = true;
    }
  }

  // Buffered variables: produced by the evaluable portion (not already
  // bound by the query) and consumed later — by the delayed portion or
  // directly by a free head argument at answer emission.
  std::vector<TermId> evaluable_vars;
  for (int i : split.evaluable) {
    CollectAtomVariables(pool, rule.body[i], &evaluable_vars);
  }
  std::vector<TermId> consumer_vars;
  for (int i : split.delayed) {
    CollectAtomVariables(pool, rule.body[i], &consumer_vars);
  }
  for (TermId arg : rule.head.args) {
    std::vector<TermId> head_arg_vars;
    pool.CollectVariables(arg, &head_arg_vars);
    for (TermId v : head_arg_vars) {
      if (!Contains(bound_vars, v) && !Contains(consumer_vars, v)) {
        consumer_vars.push_back(v);
      }
    }
  }
  for (TermId v : evaluable_vars) {
    if (Contains(consumer_vars, v) && !Contains(bound_vars, v)) {
      split.buffered_vars.push_back(v);
    }
  }
  return split;
}

StatusOr<PathSplit> SplitPathByFiniteness(
    const Program& program, const CompiledChain& chain, const ChainPath& path,
    const std::vector<TermId>& bound_vars) {
  return SplitPath(program, chain, path, bound_vars, nullptr);
}

}  // namespace chainsplit
