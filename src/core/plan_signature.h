#ifndef CHAINSPLIT_CORE_PLAN_SIGNATURE_H_
#define CHAINSPLIT_CORE_PLAN_SIGNATURE_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ast/ast.h"

namespace chainsplit {

/// Canonical forms of queries, used as cache keys by the query service
/// (src/service/): two queries share a *result* key iff they are the
/// same query up to variable renaming and whitespace, and share a
/// *plan* signature iff the planner makes identical decisions for them
/// (same shape, constants abstracted to their boundness).

/// Purely lexical canonical form of one query statement. Variables are
/// renamed V0, V1, ... by first occurrence; whitespace and comments
/// are dropped; everything else (constants included) is kept verbatim.
/// Crucially this never touches a TermPool or Program, so the service
/// can compute result-cache keys under a shared (read) lock without
/// parsing — parsing interns terms, which is a write.
struct CanonicalQueryText {
  std::string key;                 // e.g. "?-tc(a,V0),V0\\=b."
  std::vector<std::string> vars;   // original names, first-occurrence order
};

/// Canonicalizes `text` when it is a single query statement (starts
/// with `?-`, ends with `.`); nullopt otherwise (facts, rules,
/// commands, or trailing garbage after the terminating dot).
std::optional<CanonicalQueryText> CanonicalizeQueryText(
    std::string_view text);

/// Plan signature of a parsed query: per-goal `pred/arity` plus an
/// argument shape where variables are numbered by first occurrence
/// (V0, V1, ...), ground arguments abstract to `b` and non-ground
/// compounds to `s`. Two queries with equal signatures present the
/// planner with the same adorned, rectified problem — only the bound
/// *values* differ — so classification, chain compilation and the
/// technique choice can be reused across them.
std::string PlanSignature(const Program& program, const Query& query);

/// Every non-builtin predicate whose relation the evaluation of
/// `query` may read: the query's own goal predicates plus the body
/// predicates of all transitively reachable rules (IDB predicates
/// included — they can carry EDB facts). Sorted ascending, so the
/// service can snapshot relation versions in a deterministic order.
std::vector<PredId> ReachablePreds(const Program& program,
                                   const Query& query);

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_PLAN_SIGNATURE_H_
