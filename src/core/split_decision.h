#ifndef CHAINSPLIT_CORE_SPLIT_DECISION_H_
#define CHAINSPLIT_CORE_SPLIT_DECISION_H_

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/finiteness.h"
#include "rel/catalog.h"

namespace chainsplit {

/// Knobs of the combined chain-split decision.
struct SplitDecisionOptions {
  CostModelOptions cost;
  /// Apply the efficiency-based criterion (§2.1 / Algorithm 3.1).
  bool enable_efficiency_split = true;
  /// The finiteness-based criterion (§2.2) is not optional in substance
  /// — a non-evaluable builtin can never be iterated forward — but
  /// turning this off makes DecideSplit report an error instead of a
  /// split, which the tests use to show the query is otherwise
  /// unanswerable.
  bool enable_finiteness_split = true;
};

/// The full chain-split decision for one chain generating path: the
/// finiteness analysis gated by the cost model. On success the PathSplit
/// tells the buffered/partial evaluators what to iterate and what to
/// delay; `finiteness_split` / `efficiency_split` say why.
///
/// `bound_vars` are the head variables bound by the query adornment on
/// this path.
StatusOr<PathSplit> DecideSplit(EvalDb* db, const CompiledChain& chain,
                                const ChainPath& path,
                                const std::vector<TermId>& bound_vars,
                                const SplitDecisionOptions& options = {});

/// Renders a split for logs/tests: "evaluable {…} | delayed {…}".
std::string PathSplitToString(const Program& program,
                              const CompiledChain& chain,
                              const PathSplit& split);

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_SPLIT_DECISION_H_
