#ifndef CHAINSPLIT_CORE_CHAIN_COMPILE_H_
#define CHAINSPLIT_CORE_CHAIN_COMPILE_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"

namespace chainsplit {

/// One chain generating path of a compiled linear recursion (§1): a
/// maximal set of non-recursive body literals connected by shared
/// variables, together with the variables linking it to the head
/// (X_{i-1}) and to the recursive call (X_i).
///
/// `sg` compiles to two paths ({parent(X,X1)}, {parent(Y,Y1)});
/// `scsg` compiles to a single path
/// {parent(X,X1), same_country(X1,Y1), parent(Y,Y1)} — the path
/// chain-split evaluation splits back apart.
struct ChainPath {
  std::vector<int> literals;       // indexes into the recursive rule body
  std::vector<TermId> head_vars;   // path vars occurring in head args
  std::vector<TermId> rec_vars;    // path vars occurring in the recursive
                                   // call's args
};

/// A linear recursion compiled into chain form: one linear recursive
/// rule, its exit rules, and the partition of the recursive rule's
/// non-recursive literals into chain generating paths.
struct CompiledChain {
  PredId pred = kNullPred;
  Rule recursive_rule;
  int recursive_literal = -1;      // index of p(...) in the body
  std::vector<Rule> exit_rules;
  std::vector<ChainPath> paths;

  /// Head argument i corresponds positionally to recursive-call
  /// argument i (the normalized form of [9]); both are vars/constants
  /// in a flat rule.
  const Atom& head() const { return recursive_rule.head; }
  const Atom& recursive_call() const {
    return recursive_rule.body[recursive_literal];
  }
};

/// Compiles the (already rectified, flat) linear recursion `pred` from
/// `rules` into chain form. Requirements: exactly one recursive rule
/// (with exactly one recursive literal) plus >= 1 exit rules; otherwise
/// kUnimplemented / kInvalidArgument.
///
/// `rules` should be the rectified rule set; exit rules for `pred` and
/// the recursive rule are collected from it.
StatusOr<CompiledChain> CompileChain(const Program& program,
                                     const std::vector<Rule>& rules,
                                     PredId pred);

/// Human-readable dump of a compiled chain for diagnostics and docs.
std::string CompiledChainToString(const Program& program,
                                  const CompiledChain& chain);

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_CHAIN_COMPILE_H_
