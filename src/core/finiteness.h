#ifndef CHAINSPLIT_CORE_FINITENESS_H_
#define CHAINSPLIT_CORE_FINITENESS_H_

#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "core/chain_compile.h"
#include "engine/adornment.h"
#include "rel/relation.h"

namespace chainsplit {

/// A chain generating path split into the two portions of chain-split
/// evaluation (§2): the *immediately evaluable* portion, iterated
/// forward from the query bindings, and the *delayed-evaluation*
/// portion, evaluated after the exit portion supplies the missing
/// bindings. `evaluable` is in scheduled execution order.
struct PathSplit {
  std::vector<int> evaluable;  // body-literal indexes, schedule order
  std::vector<int> delayed;    // body-literal indexes, source order
  bool finiteness_split = false;   // a non-evaluable builtin forced it
  bool efficiency_split = false;   // the cost model cut a weak linkage
  /// Variables computed by the evaluable portion that the delayed
  /// portion consumes — the values Algorithm 3.2 buffers per level.
  std::vector<TermId> buffered_vars;

  bool IsSplit() const { return !delayed.empty(); }
};

/// Finiteness constraint "X -> Y" on a predicate (§2.2): every value of
/// the source columns corresponds to finitely many values of the target
/// column. All columns of finite EDB relations satisfy it trivially;
/// for builtins it is encoded by their evaluable modes
/// (BuiltinModeEvaluable). This checker verifies a *bounded* variant on
/// a concrete relation (every source key maps to at most `max_fanout`
/// targets), which tests and the cost model use to validate statistics.
struct FinitenessConstraint {
  std::vector<int> source_columns;
  int target_column = 0;
};

/// True when `relation` maps every source-columns key to at most
/// `max_fanout` distinct target values.
bool HoldsWithFanout(const Relation& relation,
                     const FinitenessConstraint& constraint,
                     int64_t max_fanout);

/// Splits `path` of `chain` by finite evaluability alone (§2.2):
/// greedily schedules literals that are evaluable given the variables
/// bound so far (builtins in an evaluable mode; relation literals
/// connected to a bound variable), starting from `bound_vars` (the
/// head variables bound by the query). Everything unreachable is
/// delayed. A path with no non-evaluable builtin and full connectivity
/// comes back unsplit (pure chain-following).
StatusOr<PathSplit> SplitPathByFiniteness(const Program& program,
                                          const CompiledChain& chain,
                                          const ChainPath& path,
                                          const std::vector<TermId>& bound_vars);

/// Generalized splitter: like SplitPathByFiniteness, but a relation
/// literal additionally has to pass `gate` (when non-null) to enter the
/// evaluable portion — cutting a weak linkage delays it and everything
/// only reachable through it. This is the path-level form of Algorithm
/// 3.1's modified binding propagation; split_decision.h wires the
/// cost-model gate in.
StatusOr<PathSplit> SplitPath(const Program& program,
                              const CompiledChain& chain,
                              const ChainPath& path,
                              const std::vector<TermId>& bound_vars,
                              const PropagationGate* gate);

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_FINITENESS_H_
