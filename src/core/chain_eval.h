#ifndef CHAINSPLIT_CORE_CHAIN_EVAL_H_
#define CHAINSPLIT_CORE_CHAIN_EVAL_H_

#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "rel/relation.h"

namespace chainsplit {

/// Work measures of a transitive-closure run.
struct TcStats {
  int64_t iterations = 0;
  int64_t tuples = 0;        // result size
  int64_t delta_tuples = 0;  // total delta work
  // Storage-layer telemetry (see Relation::Telemetry): edge probes
  // issued, open-addressing collision steps across edge/result/deltas,
  // and the result relation's arena footprint.
  int64_t probes = 0;
  int64_t hash_collisions = 0;
  int64_t arena_bytes = 0;
};

/// Chain-following evaluation of a single binary chain [10]: semi-naive
/// transitive closure of `edge` restricted to the nodes reachable from
/// `seeds`. Returns the set of (seed, reachable) pairs, seeds included
/// via their outgoing edges only (no reflexive tuples). `edge` columns
/// are (from, to).
StatusOr<Relation> TransitiveClosureFrom(const Relation& edge,
                                         const std::vector<TermId>& seeds,
                                         int64_t max_iterations,
                                         TcStats* stats,
                                         const CancelToken* cancel = nullptr);

/// Evaluate-into-layer form of TransitiveClosureFrom: accumulates the
/// closure into `*result` (arity 2), which may already hold rows —
/// e.g. a per-stratum overlay relation seeded by a predecessor
/// stratum; pre-existing pairs are kept and not re-derived. `cancel`
/// is checked once per closure round, so a per-stratum child token
/// (core/scc_schedule.h) cuts a long chain mid-fixpoint with `*stats`
/// holding the partial rounds.
Status TransitiveClosureFromInto(const Relation& edge,
                                 const std::vector<TermId>& seeds,
                                 int64_t max_iterations, Relation* result,
                                 TcStats* stats,
                                 const CancelToken* cancel = nullptr);

/// Full semi-naive transitive closure of `edge`. Used by the
/// merged-chain experiment (E8) as the per-chain evaluation whose cost
/// is compared against iterating the merged cross-product chain.
StatusOr<Relation> TransitiveClosure(const Relation& edge,
                                     int64_t max_iterations, TcStats* stats,
                                     const CancelToken* cancel = nullptr);

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_CHAIN_EVAL_H_
