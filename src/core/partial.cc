#include "core/partial.h"

#include <algorithm>

#include "ast/builtin_names.h"
#include "common/strings.h"
#include "engine/builtins.h"

namespace chainsplit {

StatusOr<std::vector<Tuple>> PartialEvaluate(
    EvalDb* db, const CompiledChain& chain, const PathSplit& split,
    const Atom& query, const AccumulatorConstraint& constraint,
    const BufferedOptions& options, BufferedStats* stats) {
  Program& program = db->program();
  TermPool& pool = program.pool();
  if (constraint.step_var == kNullTerm) {
    return InvalidArgumentError("accumulator constraint has no step var");
  }

  const Rule& rule = chain.recursive_rule;
  int arity = program.preds().arity(chain.pred);
  PredId pushed_pred = program.InternPred(
      StrCat(program.preds().name(chain.pred), "$pushed"), arity + 1);

  TermId acc = pool.FreshVariable("Acc");
  TermId acc1 = pool.FreshVariable("Acc");
  PredId sum_pred = program.InternPred(kPredSum, 3);
  PredId le_pred = program.InternPred(constraint.strict ? kPredLt : kPredLe, 2);
  TermId limit_term = pool.MakeInt(constraint.limit);

  // Transformed recursive rule: accumulator threaded through the
  // evaluable portion, bound-checked before the recursive call.
  Rule pushed;
  pushed.head = rule.head;
  pushed.head.pred = pushed_pred;
  pushed.head.args.push_back(acc);
  for (int i : split.evaluable) pushed.body.push_back(rule.body[i]);
  pushed.body.push_back(Atom{sum_pred, {acc, constraint.step_var, acc1}});
  pushed.body.push_back(Atom{le_pred, {acc1, limit_term}});
  Atom rec_call = chain.recursive_call();
  rec_call.pred = pushed_pred;
  rec_call.args.push_back(acc1);
  pushed.body.push_back(std::move(rec_call));
  for (int i : split.delayed) pushed.body.push_back(rule.body[i]);

  std::vector<Rule> pushed_rules;
  pushed_rules.push_back(std::move(pushed));
  for (const Rule& exit : chain.exit_rules) {
    Rule pushed_exit = exit;
    pushed_exit.head.pred = pushed_pred;
    pushed_exit.head.args.push_back(pool.FreshVariable("Acc"));
    pushed_rules.push_back(std::move(pushed_exit));
  }

  CS_ASSIGN_OR_RETURN(CompiledChain pushed_chain,
                      CompileChain(program, pushed_rules, pushed_pred));

  // Re-split the transformed body for the extended bound set (original
  // bound head vars + the accumulator).
  std::vector<TermId> bound_vars;
  for (size_t i = 0; i < query.args.size(); ++i) {
    if (pool.IsGround(query.args[i])) {
      pool.CollectVariables(pushed_chain.head().args[i], &bound_vars);
    }
  }
  bound_vars.push_back(acc);
  ChainPath whole = WholeBodyPath(pool, pushed_chain);
  CS_ASSIGN_OR_RETURN(
      PathSplit pushed_split,
      SplitPathByFiniteness(program, pushed_chain, whole, bound_vars));

  Atom pushed_query = query;
  pushed_query.pred = pushed_pred;
  pushed_query.args.push_back(pool.MakeInt(constraint.initial));

  BufferedChainEvaluator evaluator(db, pushed_chain, options);
  CS_ASSIGN_OR_RETURN(std::vector<Tuple> pushed_answers,
                      evaluator.Evaluate(pushed_query, pushed_split));
  *stats = evaluator.stats();

  std::vector<Tuple> answers;
  answers.reserve(pushed_answers.size());
  for (Tuple& row : pushed_answers) {
    row.pop_back();  // drop the accumulator column
    answers.push_back(std::move(row));
  }
  return answers;
}

std::optional<AccumulatorConstraint> DeduceAccumulatorConstraint(
    EvalDb* db, const CompiledChain& chain, const PathSplit& split,
    int head_position, int64_t limit, bool strict) {
  const Program& program = db->program();
  const TermPool& pool = program.pool();
  const Rule& rule = chain.recursive_rule;

  // The constrained head position and the recursive call's same
  // position must both be variables related by one sum literal.
  TermId head_var = rule.head.args[head_position];
  TermId rec_var = chain.recursive_call().args[head_position];
  if (!pool.IsVariable(head_var) || !pool.IsVariable(rec_var)) {
    return std::nullopt;
  }

  std::vector<TermId> evaluable_vars;
  for (int i : split.evaluable) {
    CollectAtomVariables(pool, rule.body[i], &evaluable_vars);
  }

  for (size_t i = 0; i < rule.body.size(); ++i) {
    const Atom& atom = rule.body[i];
    if (GetBuiltinKind(program.preds(), atom.pred) != BuiltinKind::kSum) {
      continue;
    }
    // sum(A, B, head_var) with {A, B} = {step, rec_var}.
    if (atom.args[2] != head_var) continue;
    TermId step = kNullTerm;
    if (atom.args[0] == rec_var) {
      step = atom.args[1];
    } else if (atom.args[1] == rec_var) {
      step = atom.args[0];
    } else {
      continue;
    }
    if (std::find(evaluable_vars.begin(), evaluable_vars.end(), step) ==
        evaluable_vars.end()) {
      continue;  // step not produced by the forward portion
    }
    // Verify the step is non-negative: find the evaluable EDB literal
    // and column that binds it and scan that column's minimum.
    bool nonnegative = false;
    for (int lit : split.evaluable) {
      const Atom& producer = rule.body[lit];
      if (IsBuiltinPred(program.preds(), producer.pred)) continue;
      for (size_t c = 0; c < producer.args.size(); ++c) {
        if (producer.args[c] != step) continue;
        const Relation* rel = db->GetRelation(producer.pred);
        if (rel == nullptr) continue;
        bool all_nonneg = rel->size() > 0;
        for (int64_t r = 0; r < rel->num_rows(); ++r) {
          TermId v = rel->row(r)[c];
          if (!pool.IsInt(v) || pool.int_value(v) < 0) {
            all_nonneg = false;
            break;
          }
        }
        nonnegative = nonnegative || all_nonneg;
      }
    }
    if (!nonnegative) continue;

    AccumulatorConstraint constraint;
    constraint.head_position = head_position;
    constraint.step_var = step;
    constraint.initial = 0;
    constraint.limit = limit;
    constraint.strict = strict;
    return constraint;
  }
  return std::nullopt;
}

}  // namespace chainsplit
