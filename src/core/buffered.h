#ifndef CHAINSPLIT_CORE_BUFFERED_H_
#define CHAINSPLIT_CORE_BUFFERED_H_

#include <vector>

#include "common/deadline.h"
#include "core/chain_compile.h"
#include "core/finiteness.h"
#include "engine/topdown.h"
#include "obs/trace.h"
#include "rel/catalog.h"

namespace chainsplit {

/// Options for the buffered chain-split evaluator.
struct BufferedOptions {
  /// Forward-phase caps (the chain may be infinite when the analysis is
  /// bypassed; these turn runaways into kResourceExhausted).
  int64_t max_levels = 1000000;
  int64_t max_nodes = 5000000;
  /// Backward-phase cap: with cyclic data a recursion can have
  /// infinitely many answers (e.g. `travel` over a cyclic flight
  /// network without a fare bound); the cap turns that into
  /// kResourceExhausted. Constraint pushing (partial.h) is the paper's
  /// way to make such queries finite.
  int64_t max_answers = 10000000;
  /// Caps for the conjunctive sub-queries (portion/exit solving).
  TopDownOptions subquery;

  /// Existence checking (§5): stop as soon as the *query's* call state
  /// has one answer. The planner enables this for fully-bound
  /// (boolean) queries, where any proof suffices.
  bool stop_at_first_answer = false;

  /// Cooperative cancellation/deadline token, checked once per forward
  /// level, per exit-phase call state and per backward-phase worklist
  /// item (never per tuple). Null = never cancelled.
  const CancelToken* cancel = nullptr;

  /// Optional trace sink (same seam as `cancel`): records one span per
  /// forward level plus one per phase (forward/exit/backward). Null =
  /// no tracing.
  Trace* trace = nullptr;
};

/// Work measures of one buffered evaluation, reported by benchmarks.
struct BufferedStats {
  int64_t levels = 0;          // forward BFS depth reached
  int64_t nodes = 0;           // distinct call states (memoized)
  int64_t edges = 0;           // forward derivation steps
  int64_t buffered_values = 0; // buffered tuples stored (== edges)
  int64_t exit_solutions = 0;
  int64_t delayed_solves = 0;  // delayed-portion applications
  int64_t answers = 0;         // total answers over all call states
};

/// The whole-body pseudo chain path: all non-recursive literals of the
/// recursive rule as one path. The buffered evaluator splits the whole
/// body at once; per-path splits are a view for diagnostics.
ChainPath WholeBodyPath(const TermPool& pool, const CompiledChain& chain);

/// Buffered chain-split evaluation (Algorithm 3.2), generalized with
/// call-state memoization (the cyclic-counting extension of Remark 3.1).
///
/// Forward phase: starting from the query's bound arguments, the
/// *evaluable* portion of the split is iterated level by level. Each
/// derivation step buffers the values of `split.buffered_vars` on the
/// edge between the two call states it connects; states are
/// deduplicated, so cyclic EDB data terminates.
///
/// Exit phase: every call state is matched against the exit rules,
/// seeding its answer set.
///
/// Backward phase: answers propagate against the forward edges; each
/// propagation re-applies the *delayed* portion using the buffered
/// values of the edge — this replays exactly the reuse step of
/// Algorithm 3.2. Propagation runs to fixpoint, so shared and cyclic
/// states are handled once.
///
/// Returns the full-arity answer tuples of the query call. Sub-goals in
/// the portions may call other IDB predicates (nested linear
/// recursions, §4.1): they are solved by the SLD engine.
class BufferedChainEvaluator {
 public:
  BufferedChainEvaluator(EvalDb* db, CompiledChain chain,
                         BufferedOptions options = BufferedOptions());

  /// Evaluates `query` (an atom over the chain's predicate; its ground
  /// arguments define the adornment) under `split` (a split of
  /// WholeBodyPath, typically from DecideSplit).
  StatusOr<std::vector<Tuple>> Evaluate(const Atom& query,
                                        const PathSplit& split);

  const BufferedStats& stats() const { return stats_; }

 private:
  class Run;

  EvalDb* db_;
  CompiledChain chain_;
  BufferedOptions options_;
  BufferedStats stats_;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_BUFFERED_H_
