#ifndef CHAINSPLIT_CORE_PARTIAL_H_
#define CHAINSPLIT_CORE_PARTIAL_H_

#include <optional>
#include <vector>

#include "core/buffered.h"

namespace chainsplit {

/// A pushable query constraint (§3.3): the answer value at
/// `head_position` accumulates monotonically along the chain (one
/// `step_var` increment per level, all increments non-negative), and
/// the query demands `answer <= limit` (or `<` when `strict`). Under
/// monotonicity, any partial accumulation above the limit can be pruned
/// — "when S > 600, the continued search following this intermediate
/// tuple will be hopeless".
struct AccumulatorConstraint {
  int head_position = -1;   // constrained head argument (diagnostics)
  TermId step_var = kNullTerm;  // per-level increment, bound by the
                                // evaluable portion
  int64_t initial = 0;
  int64_t limit = 0;
  bool strict = false;
};

/// Chain-split partial evaluation (Algorithm 3.3): pushes
/// `constraint` into the iterated chain by threading an accumulator
/// argument through the recursion —
///
///   p'(args.., Acc) :- <evaluable>, sum(Acc, Step, Acc1),
///                      Acc1 =< limit, p'(rec_args.., Acc1), <delayed>.
///
/// — and evaluating the transformed chain with the buffered evaluator.
/// The forward phase now fails (prunes) as soon as the partial sum
/// exceeds the limit, and on cyclic data with strictly positive steps
/// the accumulator bound is what makes the evaluation terminate (the
/// paper's monotonicity-based termination).
///
/// The returned answers are answers of the *original* query; the final
/// (exact) constraint on the answer value is NOT applied here — the
/// caller post-filters, keeping pruning and exactness separable for the
/// E4 experiment.
StatusOr<std::vector<Tuple>> PartialEvaluate(
    EvalDb* db, const CompiledChain& chain, const PathSplit& split,
    const Atom& query, const AccumulatorConstraint& constraint,
    const BufferedOptions& options, BufferedStats* stats);

/// Tries to derive an AccumulatorConstraint for "answer at
/// `head_position` <= limit" from the chain's structure: looks for a
/// `sum` literal combining a step variable (bound by the evaluable
/// portion) with the recursive call's value at that position, and
/// verifies the step is non-negative by scanning the EDB column that
/// produces it. Returns nullopt when the pattern does not apply (the
/// planner then falls back to post-filtering).
std::optional<AccumulatorConstraint> DeduceAccumulatorConstraint(
    EvalDb* db, const CompiledChain& chain, const PathSplit& split,
    int head_position, int64_t limit, bool strict);

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_PARTIAL_H_
