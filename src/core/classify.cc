#include "core/classify.h"

#include <algorithm>
#include <functional>
#include <set>

#include "engine/builtins.h"

namespace chainsplit {

const char* RecursionClassToString(RecursionClass c) {
  switch (c) {
    case RecursionClass::kNonRecursive: return "non-recursive";
    case RecursionClass::kLinear: return "linear";
    case RecursionClass::kNestedLinear: return "nested-linear";
    case RecursionClass::kNonLinear: return "nonlinear";
    case RecursionClass::kMutual: return "mutual";
  }
  return "unknown";
}

ProgramAnalysis ProgramAnalysis::Analyze(const Program& program,
                                         const std::vector<Rule>& rules) {
  ProgramAnalysis analysis;
  const PredicateTable& preds = program.preds();

  // Call graph over IDB predicates.
  std::set<PredId> idb;
  for (const Rule& rule : rules) idb.insert(rule.head.pred);
  std::unordered_map<PredId, std::set<PredId>> calls;
  std::unordered_map<PredId, bool> uses_builtin;
  for (const Rule& rule : rules) {
    for (const Atom& atom : rule.body) {
      if (idb.count(atom.pred) > 0) calls[rule.head.pred].insert(atom.pred);
      if (IsBuiltinPred(preds, atom.pred)) {
        uses_builtin[rule.head.pred] = true;
      }
    }
  }

  // Tarjan SCC (iterative-enough: recursion depth = #preds, small).
  std::unordered_map<PredId, int> index, lowlink, scc_of;
  std::vector<PredId> stack;
  std::unordered_map<PredId, bool> on_stack;
  int next_index = 0;
  int next_scc = 0;
  std::vector<std::vector<PredId>> sccs;

  std::function<void(PredId)> strongconnect = [&](PredId v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    for (PredId w : calls[v]) {
      if (index.find(w) == index.end()) {
        strongconnect(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<PredId> component;
      while (true) {
        PredId w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc_of[w] = next_scc;
        component.push_back(w);
        if (w == v) break;
      }
      sccs.push_back(std::move(component));
      ++next_scc;
    }
  };
  for (PredId p : idb) {
    if (index.find(p) == index.end()) strongconnect(p);
  }
  // Tarjan emits SCCs in reverse topological order of the call graph,
  // i.e. callees before callers — exactly bottom-up evaluation order.
  for (const auto& component : sccs) {
    for (PredId p : component) analysis.evaluation_order_.push_back(p);
  }
  analysis.sccs_ = sccs;

  // Condensation predecessor edges: deps[s] = callee SCCs of s
  // (deduplicated, sorted; every dep id < s by the topological
  // numbering above). The scheduler dispatches SCC s when they are
  // all complete.
  analysis.scc_deps_.resize(sccs.size());
  for (const auto& [caller, callees] : calls) {
    const int s = scc_of[caller];
    for (PredId callee : callees) {
      const int d = scc_of[callee];
      if (d != s) analysis.scc_deps_[s].push_back(d);
    }
  }
  for (std::vector<int>& deps : analysis.scc_deps_) {
    std::sort(deps.begin(), deps.end());
    deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  }

  // Functional closure: a predicate is functional when it or any
  // (transitive) callee uses a builtin with an infinite domain.
  std::unordered_map<PredId, bool> functional;
  for (PredId p : analysis.evaluation_order_) {
    bool f = uses_builtin[p];
    for (PredId w : calls[p]) f = f || functional[w];
    functional[p] = f;
  }

  for (PredId p : idb) {
    PredicateClassification info;
    info.pred = p;
    info.scc = scc_of[p];
    info.functional = functional[p];

    bool in_cycle = false;
    for (PredId q : idb) {
      if (q != p && scc_of[q] == scc_of[p]) in_cycle = true;
    }
    bool self_recursive = false;
    int max_recursive_literals = 0;
    bool calls_other_recursion = false;
    for (const Rule& rule : rules) {
      if (rule.head.pred != p) continue;
      int recursive_literals = 0;
      for (const Atom& atom : rule.body) {
        if (idb.count(atom.pred) == 0) continue;
        if (scc_of[atom.pred] == scc_of[p]) {
          ++recursive_literals;
        } else {
          // A callee in a *different* SCC: nested if that callee is
          // itself recursive.
          for (const Rule& callee_rule : rules) {
            if (callee_rule.head.pred != atom.pred) continue;
            for (const Atom& b : callee_rule.body) {
              if (idb.count(b.pred) > 0 &&
                  scc_of[b.pred] == scc_of[atom.pred]) {
                calls_other_recursion = true;
              }
            }
          }
        }
      }
      self_recursive = self_recursive || recursive_literals > 0;
      max_recursive_literals =
          std::max(max_recursive_literals, recursive_literals);
    }

    if (in_cycle) {
      info.recursion = RecursionClass::kMutual;
    } else if (!self_recursive) {
      info.recursion = RecursionClass::kNonRecursive;
    } else if (max_recursive_literals >= 2) {
      info.recursion = RecursionClass::kNonLinear;
    } else if (calls_other_recursion) {
      info.recursion = RecursionClass::kNestedLinear;
    } else {
      info.recursion = RecursionClass::kLinear;
    }
    analysis.info_.emplace(p, info);
  }
  return analysis;
}

const PredicateClassification& ProgramAnalysis::Get(PredId pred) const {
  auto it = info_.find(pred);
  return it == info_.end() ? default_info_ : it->second;
}

}  // namespace chainsplit
