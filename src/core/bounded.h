#ifndef CHAINSPLIT_CORE_BOUNDED_H_
#define CHAINSPLIT_CORE_BOUNDED_H_

#include <optional>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"

namespace chainsplit {

/// Bounded-recursion compilation (§1 of the paper, after [8, 9]): a
/// linear recursion is *bounded* when it is equivalent to a
/// non-recursive rule set, so no chain evaluation is needed at all.
///
/// This module detects the classic permutation-bounded case: a single
/// linear recursive rule whose recursive call's arguments are a
/// permutation of the head variables,
///
///   p(X1..Xn) :- B, p(Xs1..Xsn).     (sigma a permutation, order k)
///
/// Since sigma^k is the identity, any derivation of length j+k needs a
/// superset of the conditions of the length-j derivation ending at the
/// same exit fact, so unfolding k times captures the fixpoint. The
/// returned non-recursive replacement is
///
///   p$exit(args) :- <each exit rule body>          (renamed exits)
///   p(X)  :- p$exit(X)                             (j = 0)
///   p(X)  :- B[sigma^0], .., B[sigma^(j-1)], p$exit(sigma^j X)
///                                                  (j = 1..k-1)
///
/// with the non-head variables of B freshened per unfolding step.
struct BoundedUnfolding {
  /// Non-recursive rules that replace the recursion's rules.
  std::vector<Rule> rules;
  /// The permutation's order (number of unfoldings).
  int period = 0;
};

/// Detects whether `pred` (with one linear recursive rule in `rules`)
/// is permutation-bounded, returning the unfolded non-recursive rule
/// set; nullopt when the pattern does not apply (the recursion then
/// goes through chain compilation as usual). `max_period` guards
/// against pathological permutation orders.
std::optional<BoundedUnfolding> DetectBoundedRecursion(
    Program* program, const std::vector<Rule>& rules, PredId pred,
    int max_period = 12);

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_BOUNDED_H_
