#ifndef CHAINSPLIT_CORE_CLASSIFY_H_
#define CHAINSPLIT_CORE_CLASSIFY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "ast/ast.h"
#include "common/status.h"

namespace chainsplit {

/// Recursion classes distinguished by the paper (§1, §4).
enum class RecursionClass {
  kNonRecursive,
  kLinear,        // single self-recursive literal per recursive rule
  kNestedLinear,  // linear, with a body call into another recursion (§4.1)
  kNonLinear,     // >= 2 recursive literals in some rule (§4.2, qsort)
  kMutual,        // recursion through a multi-predicate SCC
};

const char* RecursionClassToString(RecursionClass c);

/// Per-IDB-predicate classification results.
struct PredicateClassification {
  PredId pred = kNullPred;
  RecursionClass recursion = RecursionClass::kNonRecursive;
  bool functional = false;  // its rules (transitively) use functional
                            // predicates / builtins with infinite domains
  int scc = -1;             // SCC id (topological order: callees first)
};

/// Dependency analysis of a program's IDB: SCCs of the predicate call
/// graph, recursion classes, and functionality (presence of function
/// symbols after rectification).
class ProgramAnalysis {
 public:
  /// Analyzes `rules` (typically the rectified rules) over `program`'s
  /// predicate table.
  static ProgramAnalysis Analyze(const Program& program,
                                 const std::vector<Rule>& rules);

  /// Classification for `pred`; kNonRecursive default for unknown preds.
  const PredicateClassification& Get(PredId pred) const;

  /// True if `pred` is the head of some analyzed rule.
  bool IsIdb(PredId pred) const { return info_.count(pred) > 0; }

  /// IDB predicates in bottom-up (callee-first) evaluation order.
  const std::vector<PredId>& evaluation_order() const {
    return evaluation_order_;
  }

  /// SCC member lists, indexed by SCC id. Ids follow bottom-up
  /// topological order: every predecessor (callee) SCC has a smaller
  /// id than its callers, so iterating 0..num_sccs()-1 is a valid
  /// serial evaluation schedule.
  const std::vector<std::vector<PredId>>& sccs() const { return sccs_; }
  int num_sccs() const { return static_cast<int>(sccs_.size()); }

  /// Predecessor edges of the condensation: scc_deps()[s] lists the
  /// SCC ids (all < s) whose predicates appear in the bodies of SCC
  /// s's rules. An SCC may be dispatched once these are complete.
  const std::vector<std::vector<int>>& scc_deps() const { return scc_deps_; }

 private:
  std::unordered_map<PredId, PredicateClassification> info_;
  std::vector<PredId> evaluation_order_;
  std::vector<std::vector<PredId>> sccs_;
  std::vector<std::vector<int>> scc_deps_;
  PredicateClassification default_info_;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_CLASSIFY_H_
