#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

namespace chainsplit {

double EstimateJoinExpansion(const RelationStats& stats,
                             const std::string& adornment) {
  if (stats.cardinality == 0) return 0.0;
  double denom = 1.0;
  for (size_t c = 0; c < adornment.size(); ++c) {
    if (adornment[c] == 'b' && c < stats.distinct.size() &&
        stats.distinct[c] > 0) {
      denom *= static_cast<double>(stats.distinct[c]);
    }
  }
  return static_cast<double>(stats.cardinality) / denom;
}

LinkageStrength ClassifyLinkage(double expansion_ratio,
                                const CostModelOptions& options) {
  if (expansion_ratio <= options.follow_threshold) {
    return LinkageStrength::kStrong;
  }
  if (expansion_ratio >= options.split_threshold) {
    return LinkageStrength::kWeak;
  }
  return LinkageStrength::kBorderline;
}

bool QuantitativeFollowWins(double expansion_ratio, double bound_bindings,
                            const CostModelOptions& options) {
  // Following propagates `bound_bindings * er` tuples into every
  // subsequent iteration of the chain; splitting keeps the iterated
  // relation at `bound_bindings` tuples and pays one extra join of the
  // two sub-chain answer sets, of estimated size
  // `bound_bindings + er` per binding. With the iteration count unknown
  // at planning time, we compare one iteration's intermediate sizes —
  // the same simplification a System-R-style estimator would make
  // without a depth estimate.
  double follow_cost = bound_bindings * std::max(expansion_ratio, 1.0);
  double split_cost = bound_bindings + expansion_ratio;
  (void)options;
  return follow_cost <= split_cost;
}

PropagationGate MakeCostGate(EvalDb* db, const CostModelOptions& options) {
  return [db, options](const Atom& literal,
                       const std::string& adornment) -> bool {
    // A literal with no bound argument contributes no selective
    // bindings: never treat its scan output as bindings worth chasing.
    if (adornment.find('b') == std::string::npos) return false;
    const RelationStats& stats = db->Stats(literal.pred);
    if (stats.cardinality == 0) return true;  // nothing to expand
    double er = EstimateJoinExpansion(stats, adornment);
    switch (ClassifyLinkage(er, options)) {
      case LinkageStrength::kStrong:
        return true;
      case LinkageStrength::kWeak:
        return false;
      case LinkageStrength::kBorderline:
        // One arriving binding per magic tuple is the neutral estimate.
        return QuantitativeFollowWins(er, /*bound_bindings=*/1.0, options);
    }
    return true;
  };
}

}  // namespace chainsplit
