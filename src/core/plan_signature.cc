#include "core/plan_signature.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "engine/builtins.h"

namespace chainsplit {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsVariableStart(char c) {
  // Mirrors the parser's lexer: uppercase- or '_'-initial identifiers
  // are variables.
  return std::isupper(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::optional<CanonicalQueryText> CanonicalizeQueryText(
    std::string_view text) {
  CanonicalQueryText out;
  std::unordered_map<std::string, size_t> var_index;
  bool saw_dot = false;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '%') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (saw_dot) return std::nullopt;  // trailing non-space after '.'
    if (IsIdentChar(c)) {
      size_t start = i;
      while (i < text.size() && IsIdentChar(text[i])) ++i;
      std::string token(text.substr(start, i - start));
      if (token == "_") {
        // The parser makes each bare `_` a fresh variable; mirror that
        // (p(_,_) must not share a key with p(X,X)).
        const size_t idx = var_index.size();
        out.key += StrCat("V", idx);
        var_index.emplace(StrCat("_#", idx), idx);
        out.vars.push_back(token);
      } else if (IsVariableStart(token[0])) {
        auto [it, inserted] =
            var_index.emplace(token, var_index.size());
        if (inserted) out.vars.push_back(token);
        out.key += StrCat("V", it->second);
      } else {
        out.key += token;
      }
      continue;
    }
    out.key.push_back(c);
    // A '.' terminates the statement unless it opens a float-like or
    // operator sequence; the parser has no such forms, so any '.'
    // outside an identifier is the clause terminator.
    if (c == '.') saw_dot = true;
    ++i;
  }
  if (!saw_dot) return std::nullopt;
  if (out.key.size() < 3 || out.key[0] != '?' || out.key[1] != '-') {
    return std::nullopt;
  }
  return out;
}

std::string PlanSignature(const Program& program, const Query& query) {
  const TermPool& pool = program.pool();
  std::string sig;
  std::unordered_map<TermId, size_t> var_index;
  for (const Atom& goal : query.goals) {
    if (!sig.empty()) sig.push_back(',');
    sig += program.preds().Display(goal.pred);
    sig.push_back('(');
    for (size_t a = 0; a < goal.args.size(); ++a) {
      if (a > 0) sig.push_back(';');
      TermId arg = goal.args[a];
      if (pool.IsVariable(arg)) {
        auto [it, inserted] = var_index.emplace(arg, var_index.size());
        (void)inserted;
        sig += StrCat("V", it->second);
      } else if (pool.IsGround(arg)) {
        sig.push_back('b');
      } else {
        sig.push_back('s');  // non-ground compound: planner falls back
      }
    }
    sig.push_back(')');
  }
  return sig;
}

std::vector<PredId> ReachablePreds(const Program& program,
                                   const Query& query) {
  std::unordered_set<PredId> seen;
  std::vector<PredId> frontier;
  auto visit = [&](PredId pred) {
    if (IsBuiltinPred(program.preds(), pred)) return;
    if (seen.insert(pred).second) frontier.push_back(pred);
  };
  for (const Atom& goal : query.goals) visit(goal.pred);
  while (!frontier.empty()) {
    PredId pred = frontier.back();
    frontier.pop_back();
    for (const Rule* rule : program.RulesFor(pred)) {
      for (const Atom& atom : rule->body) visit(atom.pred);
    }
  }
  std::vector<PredId> preds(seen.begin(), seen.end());
  std::sort(preds.begin(), preds.end());
  return preds;
}

}  // namespace chainsplit
