#ifndef CHAINSPLIT_CORE_PLANNER_H_
#define CHAINSPLIT_CORE_PLANNER_H_

#include <optional>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "common/deadline.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/buffered.h"
#include "core/partial.h"
#include "core/split_decision.h"
#include "engine/seminaive.h"
#include "engine/topdown.h"
#include "rel/catalog.h"

namespace chainsplit {

/// Evaluation techniques the planner can pick (§3 of the paper, plus
/// the SLD fallback for recursion classes outside the compiled-chain
/// fragment).
enum class Technique {
  kMagicSets,        // chain-following magic sets + semi-naive
  kChainSplitMagic,  // Algorithm 3.1 (gated binding propagation)
  kBuffered,         // Algorithm 3.2 (buffered chain-split)
  kPartial,          // Algorithm 3.3 (constraint-pushing partial eval)
  kTopDown,          // SLD resolution (nonlinear recursions, fallback)
};

const char* TechniqueToString(Technique t);

struct PlannerOptions {
  SplitDecisionOptions split;
  SemiNaiveOptions seminaive;
  BufferedOptions buffered;
  TopDownOptions topdown;
  /// Force a technique instead of letting the analysis choose. Forcing
  /// an inapplicable technique returns an error — benchmarks use this
  /// to run baselines.
  std::optional<Technique> force;

  /// Order body literals by catalog-statistics cardinality estimates
  /// (access-path selection [13, 18]) during bottom-up evaluation.
  /// Off = the bound-argument-count heuristic; the join-order ablation
  /// benchmark compares the two.
  bool use_stats_ordering = true;

  /// SCC-schedule evaluation of the bottom-up fixpoint (see
  /// core/scc_schedule.h). 0 = off: one monolithic semi-naive fixpoint
  /// over all rules (the default; row order differs from the
  /// stratified schedule, so this stays opt-in). 1 = stratified serial
  /// schedule, the parallel path's baseline. N > 1 = up to N SCC
  /// fixpoints in flight on `scc_pool`; results are byte-identical to
  /// N = 1 at every worker count.
  int parallel_scc = 0;

  /// Pool for parallel_scc > 1; null uses ThreadPool::Shared().
  ThreadPool* scc_pool = nullptr;

  /// Precomputed rectification of the program's rules (RectifyRules
  /// output for the *current* rule set). When set, the planner reuses
  /// it instead of re-rectifying every query — the query service
  /// caches this per rules-epoch. Must be invalidated when rules
  /// change.
  const std::vector<Rule>* rectified = nullptr;

  /// Cooperative deadline/cancellation for the whole evaluation;
  /// propagated into every evaluator invoked (semi-naive, buffered,
  /// SLD) unless that evaluator's own options already carry a token.
  const CancelToken* cancel = nullptr;

  /// Optional trace sink for the whole evaluation. The planner records
  /// spans for classification, chain compilation, the split decision,
  /// magic rewriting and each evaluator run (with the technique taken),
  /// and propagates the sink into the evaluators' own options (same
  /// propagation rule as `cancel`). Null = no tracing.
  Trace* trace = nullptr;
};

/// Answers plus provenance of one query evaluation.
struct QueryResult {
  /// The query's distinct variables, in first-occurrence order.
  std::vector<TermId> vars;
  /// One row per answer: bindings of `vars`.
  std::vector<Tuple> answers;
  Technique technique = Technique::kTopDown;
  /// Human-readable plan: recursion class, chain form, split, reasons.
  std::string plan;

  SemiNaiveStats seminaive_stats;
  BufferedStats buffered_stats;
  TopDownStats topdown_stats;

  /// SCC-schedule provenance; all zero unless
  /// PlannerOptions::parallel_scc routed the fixpoint through the
  /// stratified scheduler (core/scc_schedule.h).
  int64_t scc_strata = 0;
  int64_t scc_parallel_strata = 0;
  int64_t scc_max_ready_width = 0;
};

/// Plans and evaluates `query` against `*db` (rules + EDB facts):
/// classifies the queried recursion, compiles its chain form, runs the
/// chain-split analysis, picks the technique, evaluates, and applies
/// the remaining query goals (constraints) to the answers.
///
/// This is the library's main entry point; see examples/.
StatusOr<QueryResult> EvaluateQuery(EvalDb* db, const Query& query,
                                    const PlannerOptions& options = {});

/// As EvaluateQuery, but writes into `*result` and reports failures
/// through the returned Status. On error (including kDeadlineExceeded
/// and kCancelled) `result->plan` and the evaluator statistics hold
/// the partial work done before the failure — the query service
/// surfaces these as partial stats of a timed-out query.
Status EvaluateQueryInto(EvalDb* db, const Query& query,
                         const PlannerOptions& options, QueryResult* result);

/// Convenience: parse `source` (rules + facts + one query), load facts,
/// and evaluate the first query.
StatusOr<QueryResult> RunProgram(Database* db, std::string_view source,
                                 const PlannerOptions& options = {});

/// Materializes every IDB predicate of `db`'s program bottom-up (the
/// classic Datalog fixpoint over the rectified rules, callee SCCs
/// first). Only valid for function-free programs: a functional
/// recursion denotes an infinite relation and is rejected with
/// kNotFinitelyEvaluable — use query-directed evaluation
/// (EvaluateQuery) for those, which is the paper's whole point.
Status MaterializeAll(EvalDb* db, const SemiNaiveOptions& options = {});

/// As MaterializeAll, but evaluates the SCC condensation of the
/// rectified rules as a stratum schedule (core/scc_schedule.h) with up
/// to `parallel_scc` strata in flight on `pool` (null =
/// ThreadPool::Shared()). parallel_scc <= 1 runs the serial stratified
/// schedule; results are byte-identical at every worker count.
Status MaterializeAllScc(EvalDb* db, const SemiNaiveOptions& options,
                         int parallel_scc, ThreadPool* pool = nullptr);

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_PLANNER_H_
