#ifndef CHAINSPLIT_CORE_COUNTING_H_
#define CHAINSPLIT_CORE_COUNTING_H_

#include <vector>

#include "core/chain_compile.h"
#include "core/finiteness.h"
#include "engine/topdown.h"
#include "rel/catalog.h"

namespace chainsplit {

struct CountingOptions {
  /// Level cap: the classic counting method does not terminate on
  /// cyclic data (the paper points to cyclic-counting extensions [5];
  /// our BufferedChainEvaluator memoizes call states and is the
  /// cyclic-safe variant). Exceeding the cap returns
  /// kResourceExhausted.
  int64_t max_levels = 100000;
  int64_t max_entries = 5000000;
  TopDownOptions subquery;
};

struct CountingStats {
  int64_t levels = 0;
  int64_t up_entries = 0;      // forward (counting-set) tuples
  int64_t exit_solutions = 0;
  int64_t down_applications = 0;
  int64_t answers = 0;
};

/// The classic counting method [1] for a compiled chain recursion,
/// expressed in chain-split vocabulary: the *evaluable* portion of
/// `split` is the up-chain iterated from the query constants with a
/// level index; the *delayed* portion is the down-chain applied exactly
/// level-many times on the way back. Unlike BufferedChainEvaluator it
/// keeps no memo table — identical call states reached along different
/// derivation paths are re-expanded, and cyclic data loops (level cap).
///
/// Used as the chain-following baseline in benchmarks E5/E7.
StatusOr<std::vector<Tuple>> CountingEvaluate(EvalDb* db,
                                              const CompiledChain& chain,
                                              const PathSplit& split,
                                              const Atom& query,
                                              const CountingOptions& options,
                                              CountingStats* stats);

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_COUNTING_H_
