#ifndef CHAINSPLIT_CORE_RECTIFY_H_
#define CHAINSPLIT_CORE_RECTIFY_H_

#include <vector>

#include "ast/ast.h"
#include "common/status.h"

namespace chainsplit {

/// Rule rectification (§1.2 of the paper): rewrites every non-ground
/// compound argument `f(t1..tk)` of an atom into a fresh variable `V`
/// plus a functional-predicate goal `f(t1..tk, V)` (`cons` for list
/// cells, `$mk_f` otherwise). The result is a *flat* rule — every atom
/// argument is a variable or a ground term — the normalized form the
/// bottom-up engine, the chain compiler and the adornment analysis all
/// operate on.
///
/// Example (paper rules (4.4)/(4.9)):
///   insert(X, [Y|Ys], [Y|Zs]) :- X > Y, insert(X, Ys, Zs).
/// becomes
///   insert(X, A, B) :- cons(Y, Ys, A), cons(Y, Zs, B), X > Y,
///                      insert(X, Ys, Zs).
///
/// Ground compound arguments (e.g. the constant list [5,7,1]) are left
/// in place: flat rules allow ground terms as constants.
Rule RectifyRule(Program* program, const Rule& rule);

/// Rectified copies of all rules of `*program` (facts are untouched —
/// they are ground). The program itself is not modified.
std::vector<Rule> RectifyRules(Program* program);

/// Rectifies a query atom: non-ground compound arguments become fresh
/// variables with functional goals appended to `*extra_goals`.
Atom RectifyAtom(Program* program, const Atom& atom,
                 std::vector<Atom>* extra_goals);

/// True when every atom of `rule` has only variable or ground
/// arguments.
bool IsFlatRule(const TermPool& pool, const Rule& rule);

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_RECTIFY_H_
