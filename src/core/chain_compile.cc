#include "core/chain_compile.h"

#include <algorithm>
#include <numeric>

#include "ast/printer.h"
#include "common/strings.h"

namespace chainsplit {
namespace {

/// Union-find over literal indexes.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

StatusOr<CompiledChain> CompileChain(const Program& program,
                                     const std::vector<Rule>& rules,
                                     PredId pred) {
  const TermPool& pool = program.pool();
  CompiledChain chain;
  chain.pred = pred;

  int recursive_rules = 0;
  for (const Rule& rule : rules) {
    if (rule.head.pred != pred) continue;
    int rec_literals = 0;
    int rec_index = -1;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (rule.body[i].pred == pred) {
        ++rec_literals;
        rec_index = static_cast<int>(i);
      }
    }
    if (rec_literals == 0) {
      chain.exit_rules.push_back(rule);
    } else if (rec_literals == 1) {
      ++recursive_rules;
      chain.recursive_rule = rule;
      chain.recursive_literal = rec_index;
    } else {
      return UnimplementedError(
          StrCat("nonlinear rule for ", program.preds().Display(pred),
                 " cannot be compiled into a chain form"));
    }
  }
  if (recursive_rules == 0) {
    return InvalidArgumentError(StrCat(program.preds().Display(pred),
                                       " has no recursive rule"));
  }
  if (recursive_rules > 1) {
    return UnimplementedError(
        StrCat(program.preds().Display(pred),
               " has multiple recursive rules (multi-chain-form recursions"
               " are out of scope)"));
  }
  // Ground clauses of the recursion predicate (e.g. isort([], []).)
  // are stored as facts by the parser; as exit portions they are rules
  // with an empty body.
  for (const Atom& fact : program.facts()) {
    if (fact.pred == pred) chain.exit_rules.push_back(Rule{fact, {}});
  }
  if (chain.exit_rules.empty()) {
    return InvalidArgumentError(StrCat(program.preds().Display(pred),
                                       " has no exit rule"));
  }

  // Partition the non-recursive literals into connected components by
  // shared variables.
  const Rule& rule = chain.recursive_rule;
  std::vector<int> path_literals;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (static_cast<int>(i) != chain.recursive_literal) {
      path_literals.push_back(static_cast<int>(i));
    }
  }
  std::vector<std::vector<TermId>> vars(path_literals.size());
  for (size_t i = 0; i < path_literals.size(); ++i) {
    CollectAtomVariables(pool, rule.body[path_literals[i]], &vars[i]);
  }
  UnionFind uf(static_cast<int>(path_literals.size()));
  for (size_t i = 0; i < path_literals.size(); ++i) {
    for (size_t j = i + 1; j < path_literals.size(); ++j) {
      bool shares = false;
      for (TermId v : vars[i]) {
        if (std::find(vars[j].begin(), vars[j].end(), v) != vars[j].end()) {
          shares = true;
          break;
        }
      }
      if (shares) uf.Union(static_cast<int>(i), static_cast<int>(j));
    }
  }

  std::vector<TermId> head_vars;
  for (TermId arg : chain.head().args) pool.CollectVariables(arg, &head_vars);
  std::vector<TermId> rec_vars;
  for (TermId arg : chain.recursive_call().args) {
    pool.CollectVariables(arg, &rec_vars);
  }

  std::vector<int> roots;
  for (size_t i = 0; i < path_literals.size(); ++i) {
    int root = uf.Find(static_cast<int>(i));
    if (std::find(roots.begin(), roots.end(), root) == roots.end()) {
      roots.push_back(root);
      chain.paths.emplace_back();
    }
    ChainPath& path =
        chain.paths[std::find(roots.begin(), roots.end(), root) -
                    roots.begin()];
    path.literals.push_back(path_literals[i]);
    for (TermId v : vars[i]) {
      if (std::find(head_vars.begin(), head_vars.end(), v) !=
              head_vars.end() &&
          std::find(path.head_vars.begin(), path.head_vars.end(), v) ==
              path.head_vars.end()) {
        path.head_vars.push_back(v);
      }
      if (std::find(rec_vars.begin(), rec_vars.end(), v) != rec_vars.end() &&
          std::find(path.rec_vars.begin(), path.rec_vars.end(), v) ==
              path.rec_vars.end()) {
        path.rec_vars.push_back(v);
      }
    }
  }
  return chain;
}

std::string CompiledChainToString(const Program& program,
                                  const CompiledChain& chain) {
  const TermPool& pool = program.pool();
  std::string out =
      StrCat("compiled chain for ", program.preds().Display(chain.pred),
             " (", chain.paths.size(), " chain generating path(s))\n");
  out += StrCat("  recursive rule: ",
                RuleToString(program, chain.recursive_rule), "\n");
  for (size_t p = 0; p < chain.paths.size(); ++p) {
    const ChainPath& path = chain.paths[p];
    out += StrCat("  path ", p, ": {");
    std::vector<std::string> lits;
    for (int i : path.literals) {
      lits.push_back(AtomToString(program, chain.recursive_rule.body[i]));
    }
    out += StrJoin(lits, ", ");
    out += "}  head-vars {";
    std::vector<std::string> names;
    for (TermId v : path.head_vars) names.push_back(pool.ToString(v));
    out += StrJoin(names, ", ");
    out += "}  rec-vars {";
    names.clear();
    for (TermId v : path.rec_vars) names.push_back(pool.ToString(v));
    out += StrJoin(names, ", ");
    out += "}\n";
  }
  for (const Rule& exit : chain.exit_rules) {
    out += StrCat("  exit: ", RuleToString(program, exit), "\n");
  }
  return out;
}

}  // namespace chainsplit
