#ifndef CHAINSPLIT_CORE_SCC_SCHEDULE_H_
#define CHAINSPLIT_CORE_SCC_SCHEDULE_H_

#include <vector>

#include "ast/ast.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "engine/seminaive.h"
#include "rel/catalog.h"

namespace chainsplit {

/// Options for the SCC condensation schedule (EvaluateSccSchedule).
struct SccScheduleOptions {
  /// Maximum strata in flight. <= 1 runs the serial stratified
  /// schedule (SCCs one after another, in place, in topological
  /// order); N > 1 dispatches up to N independent SCC fixpoints onto
  /// `pool` concurrently. Results are byte-identical at every value.
  int max_parallel = 1;

  /// Pool for max_parallel > 1; null uses ThreadPool::Shared().
  ThreadPool* pool = nullptr;

  /// Base evaluator options. `cancel` is treated as the whole-schedule
  /// token: every stratum evaluates under its own child CancelToken
  /// parented to it, so a deadline or cancellation cuts all in-flight
  /// strata. `trace`, when set, receives one "scc" span per stratum
  /// plus per-iteration spans on the serial path (parallel strata
  /// record summary spans from the scheduling thread — a Trace is
  /// thread-confined).
  SemiNaiveOptions seminaive;

  /// Attach a per-stratum statistics estimator for body-literal
  /// ordering (same estimates in serial and parallel mode: a stratum
  /// sees exactly its completed predecessors either way).
  bool use_stats_ordering = false;
};

/// Scheduling telemetry of one EvaluateSccSchedule run.
struct SccScheduleStats {
  int num_sccs = 0;        // strata in the condensation
  int parallel_sccs = 0;   // strata dispatched to pool workers
  int max_ready_width = 0;  // peak runnable strata (parallelism bound)
};

/// Evaluates `rules` to fixpoint over `*db` by scheduling the SCC
/// condensation of their predicate dependency graph: each SCC's rules
/// form one stratum, evaluated semi-naively once all its callee SCCs
/// are complete (Tarjan's numbering in ProgramAnalysis makes
/// ascending SCC id a valid serial order). In parallel mode every
/// stratum runs on a per-SCC StratumOverlay whose imports are the
/// completed predecessor strata; completed overlays are published
/// into `*db` in one deterministic topological merge pass, so the
/// final relation contents — including row order — are byte-identical
/// to the serial stratified schedule regardless of worker count or
/// interleaving.
///
/// On error (deadline, cancellation, resource caps) the first failing
/// stratum's status is returned, in-flight siblings are cancelled via
/// their child tokens, and `*stats` holds the merged partial work of
/// every stratum that ran; in parallel mode `*db` is left untouched.
Status EvaluateSccSchedule(EvalDb* db, const std::vector<Rule>& rules,
                           const SccScheduleOptions& options,
                           SemiNaiveStats* stats,
                           SccScheduleStats* schedule_stats = nullptr);

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_SCC_SCHEDULE_H_
