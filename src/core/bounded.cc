#include "core/bounded.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/strings.h"
#include "term/unify.h"

namespace chainsplit {
namespace {

/// Applies `perm` m times to position i.
int Iterate(const std::vector<int>& perm, int i, int m) {
  for (int step = 0; step < m; ++step) i = perm[i];
  return i;
}

/// Order of the permutation (smallest k > 0 with perm^k = id), or -1
/// when it exceeds `max_period`.
int PermutationOrder(const std::vector<int>& perm, int max_period) {
  std::vector<int> current(perm.size());
  std::iota(current.begin(), current.end(), 0);
  for (int k = 1; k <= max_period; ++k) {
    for (size_t i = 0; i < current.size(); ++i) {
      current[i] = perm[current[i]];
    }
    bool identity = true;
    for (size_t i = 0; i < current.size(); ++i) {
      identity = identity && current[i] == static_cast<int>(i);
    }
    if (identity) return k;
  }
  return -1;
}

}  // namespace

std::optional<BoundedUnfolding> DetectBoundedRecursion(
    Program* program, const std::vector<Rule>& rules, PredId pred,
    int max_period) {
  TermPool& pool = program->pool();

  const Rule* recursive = nullptr;
  std::vector<const Rule*> exits;
  for (const Rule& rule : rules) {
    if (rule.head.pred != pred) continue;
    int rec_literals = 0;
    for (const Atom& atom : rule.body) {
      if (atom.pred == pred) ++rec_literals;
    }
    if (rec_literals == 0) {
      exits.push_back(&rule);
    } else if (rec_literals == 1 && recursive == nullptr) {
      recursive = &rule;
    } else {
      return std::nullopt;  // nonlinear or multiple recursive rules
    }
  }
  if (recursive == nullptr) return std::nullopt;

  // Head arguments must be distinct variables.
  const Atom& head = recursive->head;
  for (size_t i = 0; i < head.args.size(); ++i) {
    if (!pool.IsVariable(head.args[i])) return std::nullopt;
    for (size_t j = 0; j < i; ++j) {
      if (head.args[i] == head.args[j]) return std::nullopt;
    }
  }
  // The recursive call's arguments must be a permutation of them.
  const Atom* rec_call = nullptr;
  for (const Atom& atom : recursive->body) {
    if (atom.pred == pred) rec_call = &atom;
  }
  const int n = static_cast<int>(head.args.size());
  std::vector<int> perm(n, -1);  // value position i takes from
  std::vector<bool> used(n, false);
  for (int i = 0; i < n; ++i) {
    auto it = std::find(head.args.begin(), head.args.end(),
                        rec_call->args[i]);
    if (it == head.args.end()) return std::nullopt;
    int j = static_cast<int>(it - head.args.begin());
    if (used[j]) return std::nullopt;  // repeated variable: not a perm
    used[j] = true;
    perm[i] = j;
  }

  int period = PermutationOrder(perm, max_period);
  if (period < 0) return std::nullopt;

  BoundedUnfolding unfolding;
  unfolding.period = period;
  PredId exit_pred = program->InternPred(
      StrCat(program->preds().name(pred), "$exit"), n);

  // Renamed exit rules (and exit facts).
  for (const Rule* exit : exits) {
    Rule renamed = *exit;
    renamed.head.pred = exit_pred;
    unfolding.rules.push_back(std::move(renamed));
  }
  for (const Atom& fact : program->facts()) {
    if (fact.pred != pred) continue;
    Rule renamed;
    renamed.head = fact;
    renamed.head.pred = exit_pred;
    unfolding.rules.push_back(std::move(renamed));
  }

  // Non-recursive body of the recursive rule.
  std::vector<Atom> conditions;
  for (const Atom& atom : recursive->body) {
    if (&atom != rec_call) conditions.push_back(atom);
  }

  // Unfoldings j = 0 .. period-1.
  for (int j = 0; j < period; ++j) {
    Rule rule;
    rule.head = head;
    for (int m = 0; m < j; ++m) {
      // Substitution for step m: head var at position i becomes the
      // head var at position perm^m(i); other variables are freshened.
      std::unordered_map<TermId, TermId> subst;
      for (int i = 0; i < n; ++i) {
        subst[head.args[i]] = head.args[Iterate(perm, i, m)];
      }
      std::unordered_map<TermId, TermId> fresh;
      for (const Atom& atom : conditions) {
        Atom stepped = atom;
        for (TermId& arg : stepped.args) {
          if (!pool.IsVariable(arg)) {
            if (!pool.IsGround(arg)) {
              return std::nullopt;  // non-flat condition: stay general
            }
            continue;
          }
          auto it = subst.find(arg);
          if (it != subst.end()) {
            arg = it->second;
          } else {
            auto [fit, inserted] = fresh.try_emplace(arg, kNullTerm);
            if (inserted) fit->second = pool.FreshVariable(pool.name(arg));
            arg = fit->second;
          }
        }
        rule.body.push_back(std::move(stepped));
      }
    }
    Atom exit_call;
    exit_call.pred = exit_pred;
    for (int i = 0; i < n; ++i) {
      exit_call.args.push_back(head.args[Iterate(perm, i, j)]);
    }
    rule.body.push_back(std::move(exit_call));
    unfolding.rules.push_back(std::move(rule));
  }
  return unfolding;
}

}  // namespace chainsplit
