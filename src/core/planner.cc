#include "core/planner.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "ast/builtin_names.h"
#include "ast/parser.h"
#include "ast/printer.h"
#include "common/strings.h"
#include "core/bounded.h"
#include "core/classify.h"
#include "core/rectify.h"
#include "core/scc_schedule.h"
#include "engine/builtins.h"
#include "engine/magic.h"

namespace chainsplit {

const char* TechniqueToString(Technique t) {
  switch (t) {
    case Technique::kMagicSets: return "magic-sets";
    case Technique::kChainSplitMagic: return "chain-split-magic";
    case Technique::kBuffered: return "buffered-chain-split";
    case Technique::kPartial: return "partial-evaluation";
    case Technique::kTopDown: return "top-down";
  }
  return "unknown";
}

namespace {

/// Extracts "Var <op> constant" upper-bound constraints usable for
/// constraint pushing from the non-main query goals.
struct UpperBound {
  TermId var = kNullTerm;
  int64_t limit = 0;
  bool strict = false;
};

std::vector<UpperBound> FindUpperBounds(const Program& program,
                                        const std::vector<Atom>& goals) {
  std::vector<UpperBound> bounds;
  const TermPool& pool = program.pool();
  for (const Atom& goal : goals) {
    BuiltinKind kind = GetBuiltinKind(program.preds(), goal.pred);
    UpperBound b;
    if (kind == BuiltinKind::kLe || kind == BuiltinKind::kLt) {
      // V =< c.
      if (pool.IsVariable(goal.args[0]) && pool.IsInt(goal.args[1])) {
        b.var = goal.args[0];
        b.limit = pool.int_value(goal.args[1]);
        b.strict = kind == BuiltinKind::kLt;
        bounds.push_back(b);
      }
    } else if (kind == BuiltinKind::kGe || kind == BuiltinKind::kGt) {
      // c >= V.
      if (pool.IsInt(goal.args[0]) && pool.IsVariable(goal.args[1])) {
        b.var = goal.args[1];
        b.limit = pool.int_value(goal.args[0]);
        b.strict = kind == BuiltinKind::kGt;
        bounds.push_back(b);
      }
    }
  }
  return bounds;
}

/// Evaluation context for one query. Writes into caller-owned result
/// storage so partial work (plan lines, evaluator stats) survives an
/// error return — the service reports them for timed-out queries.
class PlanRun {
 public:
  PlanRun(EvalDb* db, const Query& query, const PlannerOptions& options,
          QueryResult* result)
      : db_(db),
        program_(db->program()),
        pool_(db->pool()),
        query_(query),
        options_(options),
        result_(*result) {}

  Status Execute() {
    if (query_.goals.empty()) {
      return InvalidArgumentError("empty query");
    }
    for (const Atom& goal : query_.goals) {
      CollectAtomVariables(pool_, goal, &result_.vars);
    }

    // Main goal: the first IDB, non-builtin goal.
    int main_idx = -1;
    for (size_t i = 0; i < query_.goals.size(); ++i) {
      const Atom& goal = query_.goals[i];
      if (!IsBuiltinPred(program_.preds(), goal.pred) &&
          program_.IsIdb(goal.pred)) {
        main_idx = static_cast<int>(i);
        break;
      }
    }
    if (main_idx < 0 || (options_.force.has_value() &&
                         *options_.force == Technique::kTopDown)) {
      return RunTopDown();
    }
    main_goal_ = query_.goals[main_idx];
    for (size_t i = 0; i < query_.goals.size(); ++i) {
      if (static_cast<int>(i) != main_idx) {
        rest_goals_.push_back(query_.goals[i]);
      }
    }
    // The techniques need a flat main goal (ground or variable args).
    for (TermId arg : main_goal_.args) {
      if (!pool_.IsGround(arg) && !pool_.IsVariable(arg)) {
        return RunTopDown();
      }
    }

    if (options_.rectified != nullptr) {
      rectified_ = *options_.rectified;
    } else {
      rectified_ = RectifyRules(&program_);
    }
    // EDB facts of IDB predicates (e.g. `sg(tom, sue).` next to sg
    // rules) participate in rule-based evaluation as body-less rules,
    // so the adorned/magic program derives them into the adorned
    // answer relations too.
    {
      std::unordered_set<PredId> idb;
      for (const Rule& rule : rectified_) idb.insert(rule.head.pred);
      for (const Atom& fact : program_.facts()) {
        if (idb.count(fact.pred) > 0) {
          rectified_.push_back(Rule{fact, {}});
        }
      }
    }

    if (options_.force.has_value()) {
      // Forced techniques (benchmarks, plan-cache replays) skip
      // classification entirely: RunMagic/RunChain revalidate
      // applicability themselves and fail on a mismatch.
      switch (*options_.force) {
        case Technique::kMagicSets:
          return RunMagic(/*use_gate=*/false);
        case Technique::kChainSplitMagic:
          return RunMagic(/*use_gate=*/true);
        case Technique::kBuffered:
          return RunChain(/*allow_partial=*/false);
        case Technique::kPartial:
          return RunChain(/*allow_partial=*/true);
        case Technique::kTopDown:
          return RunTopDown();
      }
    }

    TraceSpan classify_span(options_.trace, "classify");
    ProgramAnalysis analysis = ProgramAnalysis::Analyze(program_, rectified_);
    const PredicateClassification& cls = analysis.Get(main_goal_.pred);
    classify_span.Attr("recursion_class",
                       RecursionClassToString(cls.recursion));
    classify_span.Attr("functional", cls.functional ? int64_t{1} : int64_t{0});
    classify_span.End();
    AppendPlan(StrCat("recursion class of ",
                      program_.preds().Display(main_goal_.pred), ": ",
                      RecursionClassToString(cls.recursion),
                      cls.functional ? " (functional)" : " (function-free)"));

    if (!cls.functional) {
      // Bounded-recursion compilation ([8, 9]): a permutation-bounded
      // linear recursion is replaced by its non-recursive unfolding.
      if (cls.recursion == RecursionClass::kLinear) {
        std::optional<BoundedUnfolding> bounded = DetectBoundedRecursion(
            &program_, rectified_, main_goal_.pred);
        if (bounded.has_value()) {
          AppendPlan(StrCat("bounded recursion: unfolded with period ",
                            bounded->period,
                            "; evaluating non-recursively"));
          std::vector<Rule> replaced;
          for (const Rule& rule : rectified_) {
            if (rule.head.pred != main_goal_.pred) replaced.push_back(rule);
          }
          for (const Rule& rule : bounded->rules) replaced.push_back(rule);
          rectified_ = std::move(replaced);
        }
      }
      return RunMagic(options_.split.enable_efficiency_split);
    }
    if (cls.recursion == RecursionClass::kLinear ||
        cls.recursion == RecursionClass::kNestedLinear) {
      Status chain_status = RunChain(/*allow_partial=*/true);
      if (chain_status.ok() ||
          chain_status.code() != StatusCode::kUnimplemented) {
        return chain_status;
      }
      AppendPlan(StrCat("chain compilation unavailable (",
                        chain_status.message(),
                        "); falling back to SLD"));
    }
    return RunTopDown();
  }

 private:
  void AppendPlan(std::string line) {
    result_.plan += line;
    result_.plan += "\n";
  }

  /// options_.topdown with the planner-wide cancel token attached.
  TopDownOptions TopDownWithCancel() const {
    TopDownOptions topdown = options_.topdown;
    if (topdown.cancel == nullptr) topdown.cancel = options_.cancel;
    return topdown;
  }

  Status RunTopDown() {
    AppendPlan("technique: top-down SLD resolution");
    result_.technique = Technique::kTopDown;
    TraceSpan span(options_.trace, "topdown_sld");
    span.Attr("technique", TechniqueToString(result_.technique));
    TopDownEvaluator solver(db_, TopDownWithCancel());
    StatusOr<std::vector<Tuple>> answers =
        solver.Answers(query_.goals, result_.vars);
    result_.topdown_stats = solver.stats();
    span.Attr("steps", result_.topdown_stats.steps);
    span.Attr("solutions", result_.topdown_stats.solutions);
    CS_RETURN_IF_ERROR(answers.status());
    result_.answers = *std::move(answers);
    return Status::Ok();
  }

  std::string QueryAdornment() const {
    std::string adornment;
    for (TermId arg : main_goal_.args) {
      adornment.push_back(pool_.IsGround(arg) ? 'b' : 'f');
    }
    return adornment;
  }

  Status RunMagic(bool use_gate) {
    auto gate_fired = std::make_shared<bool>(false);
    PropagationGate gate;
    if (use_gate) {
      PropagationGate cost_gate = MakeCostGate(db_, options_.split.cost);
      gate = [cost_gate, gate_fired](const Atom& literal,
                                     const std::string& ad) {
        bool propagate = cost_gate(literal, ad);
        // Only a cut on a *partially bound* literal is a chain-split
        // decision; all-free literals never carry bindings anyway.
        if (!propagate && ad.find('b') != std::string::npos) {
          *gate_fired = true;
        }
        return propagate;
      };
    }
    TraceSpan rewrite_span(options_.trace, "magic_rewrite");
    CS_ASSIGN_OR_RETURN(
        AdornedProgram adorned,
        AdornProgram(&program_, rectified_, main_goal_.pred,
                     QueryAdornment(), gate));
    CS_ASSIGN_OR_RETURN(MagicProgram magic,
                        MagicTransform(&program_, adorned, main_goal_));
    for (const Atom& seed : magic.seeds) {
      db_->InsertFact(seed.pred, seed.args);
    }
    rewrite_span.Attr("transformed_rules",
                      static_cast<int64_t>(magic.rules.size()));
    rewrite_span.Attr("gate_fired", *gate_fired ? int64_t{1} : int64_t{0});
    rewrite_span.End();
    result_.technique = (use_gate && *gate_fired)
                            ? Technique::kChainSplitMagic
                            : Technique::kMagicSets;
    SemiNaiveOptions seminaive = options_.seminaive;
    if (seminaive.cancel == nullptr) seminaive.cancel = options_.cancel;
    if (seminaive.trace == nullptr) seminaive.trace = options_.trace;
    if (options_.parallel_scc > 0) {
      // SCC-schedule path: stratified fixpoint over the condensation
      // of the magic program, serial at 1, parallel strata above.
      SccScheduleOptions sched;
      sched.max_parallel = options_.parallel_scc;
      sched.pool = options_.scc_pool;
      sched.seminaive = seminaive;
      sched.use_stats_ordering =
          options_.use_stats_ordering && seminaive.estimator == nullptr;
      SccScheduleStats sched_stats;
      TraceSpan fixpoint_span(options_.trace, "scc_schedule");
      fixpoint_span.Attr("technique", TechniqueToString(result_.technique));
      fixpoint_span.Attr("max_parallel",
                         static_cast<int64_t>(sched.max_parallel));
      Status status = EvaluateSccSchedule(db_, magic.rules, sched,
                                          &result_.seminaive_stats,
                                          &sched_stats);
      fixpoint_span.Attr("sccs", static_cast<int64_t>(sched_stats.num_sccs));
      fixpoint_span.Attr("parallel_sccs",
                         static_cast<int64_t>(sched_stats.parallel_sccs));
      fixpoint_span.Attr("iterations", result_.seminaive_stats.iterations);
      fixpoint_span.Attr("derived", result_.seminaive_stats.total_derived);
      fixpoint_span.End();
      result_.scc_strata = sched_stats.num_sccs;
      result_.scc_parallel_strata = sched_stats.parallel_sccs;
      result_.scc_max_ready_width = sched_stats.max_ready_width;
      CS_RETURN_IF_ERROR(status);
      AppendPlan(StrCat("scc schedule: ", sched_stats.num_sccs, " strata, ",
                        sched_stats.parallel_sccs, " dispatched in parallel (",
                        sched.max_parallel, " max in flight)"));
    } else {
      if (options_.use_stats_ordering && seminaive.estimator == nullptr) {
        EvalDb* db = db_;
        seminaive.estimator = [db](PredId pred, const std::string& ad) {
          return EstimateJoinExpansion(db->Stats(pred), ad);
        };
      }
      TraceSpan fixpoint_span(options_.trace, "fixpoint");
      fixpoint_span.Attr("technique",
                         TechniqueToString(result_.technique));
      Status status = SemiNaiveEvaluate(db_, magic.rules, seminaive,
                                        &result_.seminaive_stats);
      fixpoint_span.Attr("iterations", result_.seminaive_stats.iterations);
      fixpoint_span.Attr("derived", result_.seminaive_stats.total_derived);
      fixpoint_span.End();
      CS_RETURN_IF_ERROR(status);
    }
    AppendPlan(StrCat("technique: ", TechniqueToString(result_.technique),
                      " (", magic.rules.size(), " transformed rules, query ",
                      program_.preds().Display(magic.answer_pred), ")"));

    // Answers: tuples of the adorned query predicate matching the
    // query's ground arguments.
    std::vector<Tuple> answers;
    const Relation* rel = db_->GetRelation(magic.answer_pred);
    if (rel != nullptr) {
      for (int64_t i = 0; i < rel->num_rows(); ++i) {
        Relation::Row row = rel->row(i);
        bool match = true;
        for (size_t a = 0; a < main_goal_.args.size() && match; ++a) {
          if (pool_.IsGround(main_goal_.args[a])) {
            match = row[a] == main_goal_.args[a];
          }
        }
        if (match) answers.push_back(row);
      }
    }
    return FinishWithMainAnswers(answers);
  }

  Status RunChain(bool allow_partial) {
    TraceSpan compile_span(options_.trace, "chain_compile");
    CS_ASSIGN_OR_RETURN(
        CompiledChain chain,
        CompileChain(program_, rectified_, main_goal_.pred));
    compile_span.End();
    std::vector<TermId> bound_vars;
    for (size_t i = 0; i < main_goal_.args.size(); ++i) {
      if (pool_.IsGround(main_goal_.args[i])) {
        pool_.CollectVariables(chain.head().args[i], &bound_vars);
      }
    }
    ChainPath whole = WholeBodyPath(pool_, chain);
    TraceSpan split_span(options_.trace, "split_decision");
    CS_ASSIGN_OR_RETURN(
        PathSplit split,
        DecideSplit(db_, chain, whole, bound_vars, options_.split));
    split_span.Attr("evaluable_literals",
                    static_cast<int64_t>(split.evaluable.size()));
    split_span.Attr("delayed_literals",
                    static_cast<int64_t>(split.delayed.size()));
    split_span.End();
    AppendPlan(CompiledChainToString(program_, chain));
    AppendPlan(StrCat("split: ", PathSplitToString(program_, chain, split)));

    BufferedOptions buffered = options_.buffered;
    if (buffered.cancel == nullptr) buffered.cancel = options_.cancel;
    if (buffered.subquery.cancel == nullptr) {
      buffered.subquery.cancel = options_.cancel;
    }
    if (buffered.trace == nullptr) buffered.trace = options_.trace;

    // Constraint pushing (Algorithm 3.3) when the query carries an
    // upper bound on a monotone answer position.
    if (allow_partial) {
      for (const UpperBound& bound :
           FindUpperBounds(program_, rest_goals_)) {
        int position = -1;
        for (size_t i = 0; i < main_goal_.args.size(); ++i) {
          if (main_goal_.args[i] == bound.var) {
            position = static_cast<int>(i);
          }
        }
        if (position < 0) continue;
        std::optional<AccumulatorConstraint> constraint =
            DeduceAccumulatorConstraint(db_, chain, split, position,
                                        bound.limit, bound.strict);
        if (!constraint.has_value()) continue;
        AppendPlan(StrCat(
            "technique: partial evaluation, pushing bound ", bound.limit,
            " on argument ", position, " into the chain"));
        result_.technique = Technique::kPartial;
        TraceSpan eval_span(options_.trace, "partial_eval");
        eval_span.Attr("technique",
                       TechniqueToString(result_.technique));
        StatusOr<std::vector<Tuple>> answers = PartialEvaluate(
            db_, chain, split, main_goal_, *constraint, buffered,
            &result_.buffered_stats);
        eval_span.Attr("levels", result_.buffered_stats.levels);
        eval_span.Attr("answers", result_.buffered_stats.answers);
        eval_span.End();
        CS_RETURN_IF_ERROR(answers.status());
        return FinishWithMainAnswers(*answers);
      }
      if (options_.force == Technique::kPartial) {
        return FailedPreconditionError(
            "partial evaluation forced but no pushable constraint found");
      }
    }

    AppendPlan("technique: buffered chain-split evaluation");
    result_.technique = Technique::kBuffered;
    bool boolean_query = true;
    for (TermId arg : main_goal_.args) {
      boolean_query = boolean_query && pool_.IsGround(arg);
    }
    if (boolean_query && rest_goals_.empty()) {
      // Existence check: one proof suffices for a fully bound query.
      buffered.stop_at_first_answer = true;
      AppendPlan("existence check: stopping at the first proof");
    }
    BufferedChainEvaluator evaluator(db_, chain, buffered);
    TraceSpan eval_span(options_.trace, "buffered_eval");
    eval_span.Attr("technique",
                   TechniqueToString(result_.technique));
    StatusOr<std::vector<Tuple>> answers = evaluator.Evaluate(main_goal_, split);
    result_.buffered_stats = evaluator.stats();
    eval_span.Attr("levels", result_.buffered_stats.levels);
    eval_span.Attr("call_states", result_.buffered_stats.nodes);
    eval_span.Attr("answers", result_.buffered_stats.answers);
    eval_span.End();
    CS_RETURN_IF_ERROR(answers.status());
    return FinishWithMainAnswers(*answers);
  }

  /// Joins the main-goal answers with the remaining query goals and
  /// projects to the query variables.
  Status FinishWithMainAnswers(const std::vector<Tuple>& answers) {
    TraceSpan span(options_.trace, "apply_rest_goals");
    span.Attr("main_answers", static_cast<int64_t>(answers.size()));
    TopDownEvaluator solver(db_, TopDownWithCancel());
    std::unordered_set<Tuple, TupleHash> seen;
    for (const Tuple& tuple : answers) {
      Substitution subst0;
      bool ok = true;
      for (size_t i = 0; i < main_goal_.args.size() && ok; ++i) {
        ok = Unify(pool_, main_goal_.args[i], tuple[i], &subst0);
      }
      if (!ok) continue;
      auto emit = [&](const Substitution& s) {
        Tuple row;
        row.reserve(result_.vars.size());
        for (TermId v : result_.vars) {
          row.push_back(s.Resolve(subst0.Resolve(v, pool_), pool_));
        }
        if (seen.insert(row).second) result_.answers.push_back(row);
      };
      if (rest_goals_.empty()) {
        Substitution empty;
        emit(empty);
        continue;
      }
      std::vector<Atom> goals;
      goals.reserve(rest_goals_.size());
      for (const Atom& goal : rest_goals_) {
        Atom g = goal;
        for (TermId& arg : g.args) arg = subst0.Resolve(arg, pool_);
        goals.push_back(std::move(g));
      }
      CS_RETURN_IF_ERROR(solver.Solve(goals, emit));
    }
    result_.topdown_stats = solver.stats();
    return Status::Ok();
  }

  EvalDb* db_;
  Program& program_;
  TermPool& pool_;
  const Query& query_;
  const PlannerOptions& options_;

  Atom main_goal_;
  std::vector<Atom> rest_goals_;
  std::vector<Rule> rectified_;
  QueryResult& result_;
};

}  // namespace

StatusOr<QueryResult> EvaluateQuery(EvalDb* db, const Query& query,
                                    const PlannerOptions& options) {
  QueryResult result;
  CS_RETURN_IF_ERROR(EvaluateQueryInto(db, query, options, &result));
  return result;
}

Status EvaluateQueryInto(EvalDb* db, const Query& query,
                         const PlannerOptions& options, QueryResult* result) {
  *result = QueryResult();
  PlanRun run(db, query, options, result);
  return run.Execute();
}

Status MaterializeAll(EvalDb* db, const SemiNaiveOptions& options) {
  Program& program = db->program();
  std::vector<Rule> rectified = RectifyRules(&program);
  SemiNaiveStats stats;
  return SemiNaiveEvaluate(db, rectified, options, &stats);
}

Status MaterializeAllScc(EvalDb* db, const SemiNaiveOptions& options,
                         int parallel_scc, ThreadPool* pool) {
  Program& program = db->program();
  std::vector<Rule> rectified = RectifyRules(&program);
  SccScheduleOptions sched;
  sched.max_parallel = parallel_scc;
  sched.pool = pool;
  sched.seminaive = options;
  SemiNaiveStats stats;
  return EvaluateSccSchedule(db, rectified, sched, &stats);
}

StatusOr<QueryResult> RunProgram(Database* db, std::string_view source,
                                 const PlannerOptions& options) {
  CS_RETURN_IF_ERROR(ParseProgram(source, &db->program()));
  CS_RETURN_IF_ERROR(db->LoadProgramFacts());
  if (db->program().queries().empty()) {
    return InvalidArgumentError("program contains no query");
  }
  return EvaluateQuery(db, db->program().queries().front(), options);
}

}  // namespace chainsplit
