#include "core/buffered.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "term/unify.h"

namespace chainsplit {

ChainPath WholeBodyPath(const TermPool& pool, const CompiledChain& chain) {
  ChainPath path;
  const Rule& rule = chain.recursive_rule;
  std::vector<TermId> head_vars;
  for (TermId arg : rule.head.args) pool.CollectVariables(arg, &head_vars);
  std::vector<TermId> rec_vars;
  for (TermId arg : chain.recursive_call().args) {
    pool.CollectVariables(arg, &rec_vars);
  }
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (static_cast<int>(i) == chain.recursive_literal) continue;
    path.literals.push_back(static_cast<int>(i));
    std::vector<TermId> vars;
    CollectAtomVariables(pool, rule.body[i], &vars);
    for (TermId v : vars) {
      if (std::find(head_vars.begin(), head_vars.end(), v) !=
              head_vars.end() &&
          std::find(path.head_vars.begin(), path.head_vars.end(), v) ==
              path.head_vars.end()) {
        path.head_vars.push_back(v);
      }
      if (std::find(rec_vars.begin(), rec_vars.end(), v) != rec_vars.end() &&
          std::find(path.rec_vars.begin(), path.rec_vars.end(), v) ==
              path.rec_vars.end()) {
        path.rec_vars.push_back(v);
      }
    }
  }
  return path;
}

/// One Evaluate() call. Holds the forward node graph (call states +
/// buffered edges) and runs the three phases.
class BufferedChainEvaluator::Run {
 public:
  Run(EvalDb* db, const CompiledChain& chain, const PathSplit& split,
      const BufferedOptions& options, BufferedStats* stats)
      : db_(db),
        pool_(db->pool()),
        chain_(chain),
        split_(split),
        options_(options),
        stats_(stats),
        solver_(db, options.subquery) {}

  StatusOr<std::vector<Tuple>> Execute(const Atom& query) {
    CS_RETURN_IF_ERROR(Setup(query));
    {
      TraceSpan span(options_.trace, "chain_forward_phase");
      CS_RETURN_IF_ERROR(ForwardPhase());
      span.Attr("levels", stats_->levels);
      span.Attr("nodes", stats_->nodes);
      span.Attr("edges", stats_->edges);
    }
    {
      TraceSpan span(options_.trace, "chain_exit_phase");
      CS_RETURN_IF_ERROR(ExitPhase());
      span.Attr("exit_solutions", stats_->exit_solutions);
    }
    if (!Done()) {
      TraceSpan span(options_.trace, "chain_backward_phase");
      CS_RETURN_IF_ERROR(BackwardPhase());
      span.Attr("delayed_solves", stats_->delayed_solves);
      span.Attr("answers", stats_->answers);
    }
    return CollectRootAnswers(query);
  }

 private:
  struct Edge {
    int parent;
    Tuple buffered;
  };
  struct Node {
    Tuple state;  // values of the bound head positions
    std::vector<Edge> in_edges;
    std::unordered_set<Tuple, TupleHash> answer_set;  // free-position rows
  };

  Status Setup(const Atom& query) {
    const Rule& rule = chain_.recursive_rule;
    if (query.pred != chain_.pred) {
      return InvalidArgumentError("query predicate does not match chain");
    }
    for (size_t i = 0; i < query.args.size(); ++i) {
      if (pool_.IsGround(query.args[i])) {
        bound_pos_.push_back(static_cast<int>(i));
      } else if (pool_.IsVariable(query.args[i])) {
        free_pos_.push_back(static_cast<int>(i));
      } else {
        return InvalidArgumentError(
            "query arguments must be ground or variables");
      }
    }
    // The evaluable portion must produce the recursive call's bound
    // arguments, otherwise the chain cannot be iterated forward — the
    // split is not a valid chain-split for this adornment.
    std::vector<TermId> forward_bound;
    for (int i : bound_pos_) {
      pool_.CollectVariables(rule.head.args[i], &forward_bound);
    }
    for (int lit : split_.evaluable) {
      CollectAtomVariables(pool_, rule.body[lit], &forward_bound);
    }
    for (int i : bound_pos_) {
      std::vector<TermId> vars;
      pool_.CollectVariables(chain_.recursive_call().args[i], &vars);
      for (TermId v : vars) {
        if (std::find(forward_bound.begin(), forward_bound.end(), v) ==
            forward_bound.end()) {
          return NotFinitelyEvaluableError(StrCat(
              "evaluable portion does not bind recursive argument ", i,
              " of ", db_->program().preds().Display(chain_.pred)));
        }
      }
    }
    for (int i : bound_pos_) root_state_.push_back(query.args[i]);

    // Effective buffer set: the split's buffered variables plus any
    // variable the evaluable portion binds that also occurs in a
    // *free* position of the recursive call. Without the latter, a
    // followed (unsplit) chain that derives the recursive call's free
    // arguments forward would lose the correlation between those
    // values and the buffered answer variables when the backward phase
    // re-binds the free positions from the child's answers.
    buffered_vars_ = split_.buffered_vars;
    std::vector<TermId> evaluable_vars;
    for (int lit : split_.evaluable) {
      CollectAtomVariables(pool_, rule.body[lit], &evaluable_vars);
    }
    for (int i : free_pos_) {
      std::vector<TermId> vars;
      pool_.CollectVariables(chain_.recursive_call().args[i], &vars);
      for (TermId v : vars) {
        bool from_forward =
            std::find(evaluable_vars.begin(), evaluable_vars.end(), v) !=
            evaluable_vars.end();
        bool present =
            std::find(buffered_vars_.begin(), buffered_vars_.end(), v) !=
            buffered_vars_.end();
        if (from_forward && !present) buffered_vars_.push_back(v);
      }
    }
    return Status::Ok();
  }

  /// Unifies `args[i]` with `values[k]` for the positions in `pos`.
  static bool BindPositions(TermPool& pool, const std::vector<TermId>& args,
                            const std::vector<int>& pos, const Tuple& values,
                            Substitution* subst) {
    for (size_t k = 0; k < pos.size(); ++k) {
      if (!Unify(pool, args[pos[k]], values[k], subst)) return false;
    }
    return true;
  }

  std::vector<Atom> SubstituteLiterals(const std::vector<int>& literals,
                                       const Substitution& subst) {
    std::vector<Atom> goals;
    goals.reserve(literals.size());
    for (int i : literals) {
      Atom goal = chain_.recursive_rule.body[i];
      for (TermId& arg : goal.args) arg = subst.Resolve(arg, pool_);
      goals.push_back(std::move(goal));
    }
    return goals;
  }

  int InternNode(const Tuple& state, bool* is_new) {
    auto it = node_index_.find(state);
    if (it != node_index_.end()) {
      *is_new = false;
      return it->second;
    }
    int id = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{state, {}, {}});
    node_index_.emplace(state, id);
    *is_new = true;
    ++stats_->nodes;
    return id;
  }

  Status ForwardPhase() {
    const Rule& rule = chain_.recursive_rule;
    const Atom& rec = chain_.recursive_call();

    bool is_new = false;
    InternNode(root_state_, &is_new);
    std::vector<int> frontier = {0};

    while (!frontier.empty()) {
      CS_RETURN_IF_ERROR(CheckCancel(options_.cancel));
      if (++stats_->levels > options_.max_levels) {
        return ResourceExhaustedError(
            StrCat("forward chain exceeded ", options_.max_levels,
                   " levels"));
      }
      TraceSpan level_span(options_.trace, "chain_level");
      level_span.Attr("level", stats_->levels);
      level_span.Attr("frontier", static_cast<int64_t>(frontier.size()));
      const int64_t edges_before = stats_->edges;
      std::vector<int> next;
      for (int node_id : frontier) {
        Substitution subst0;
        if (!BindPositions(pool_, rule.head.args, bound_pos_,
                           nodes_[node_id].state, &subst0)) {
          continue;  // head constants incompatible with this state
        }
        std::vector<Atom> goals = SubstituteLiterals(split_.evaluable, subst0);

        // Terms whose solutions we read out of each sub-proof.
        std::vector<TermId> rec_bound_terms;
        for (int i : bound_pos_) {
          rec_bound_terms.push_back(subst0.Resolve(rec.args[i], pool_));
        }
        std::vector<TermId> buffer_terms;
        for (TermId v : buffered_vars_) {
          buffer_terms.push_back(subst0.Resolve(v, pool_));
        }

        // Dedup forward derivations per node.
        std::unordered_set<Tuple, TupleHash> seen;
        Status inner = Status::Ok();
        Status status = solver_.Solve(goals, [&](const Substitution& s) {
          if (!inner.ok()) return;
          Tuple combined;
          combined.reserve(rec_bound_terms.size() + buffer_terms.size());
          for (TermId t : rec_bound_terms) {
            combined.push_back(s.Resolve(t, pool_));
          }
          for (TermId t : buffer_terms) combined.push_back(s.Resolve(t, pool_));
          for (TermId t : combined) {
            if (!pool_.IsGround(t)) {
              inner = NotFinitelyEvaluableError(
                  "forward step produced a non-ground value");
              return;
            }
          }
          if (!seen.insert(combined).second) return;
          Tuple child_state(combined.begin(),
                            combined.begin() + rec_bound_terms.size());
          Tuple buffered(combined.begin() + rec_bound_terms.size(),
                         combined.end());
          bool child_is_new = false;
          int child = InternNode(child_state, &child_is_new);
          nodes_[child].in_edges.push_back(Edge{node_id, std::move(buffered)});
          ++stats_->edges;
          ++stats_->buffered_values;
          if (child_is_new) next.push_back(child);
        });
        CS_RETURN_IF_ERROR(status);
        CS_RETURN_IF_ERROR(inner);
        if (static_cast<int64_t>(nodes_.size()) > options_.max_nodes) {
          return ResourceExhaustedError(
              StrCat("forward chain exceeded ", options_.max_nodes,
                     " call states"));
        }
      }
      level_span.Attr("new_states", static_cast<int64_t>(next.size()));
      level_span.Attr("edges", stats_->edges - edges_before);
      frontier = std::move(next);
    }
    return Status::Ok();
  }

  /// True when existence checking is on and the query call already has
  /// an answer.
  bool Done() const {
    return options_.stop_at_first_answer && !nodes_[0].answer_set.empty();
  }

  Status ExitPhase() {
    for (size_t node_id = 0; node_id < nodes_.size() && !Done();
         ++node_id) {
      CS_RETURN_IF_ERROR(CheckCancel(options_.cancel));
      for (const Rule& exit : chain_.exit_rules) {
        Substitution subst0;
        if (!BindPositions(pool_, exit.head.args, bound_pos_,
                           nodes_[node_id].state, &subst0)) {
          continue;
        }
        std::vector<Atom> goals;
        goals.reserve(exit.body.size());
        for (const Atom& atom : exit.body) {
          Atom goal = atom;
          for (TermId& arg : goal.args) arg = subst0.Resolve(arg, pool_);
          goals.push_back(std::move(goal));
        }
        std::vector<TermId> free_terms;
        for (int i : free_pos_) {
          free_terms.push_back(subst0.Resolve(exit.head.args[i], pool_));
        }
        Status inner = Status::Ok();
        Status status = solver_.Solve(goals, [&](const Substitution& s) {
          if (!inner.ok()) return;
          Tuple row;
          row.reserve(free_terms.size());
          for (TermId t : free_terms) row.push_back(s.Resolve(t, pool_));
          for (TermId t : row) {
            if (!pool_.IsGround(t)) {
              inner = NotFinitelyEvaluableError(
                  "exit rule produced a non-ground answer");
              return;
            }
          }
          ++stats_->exit_solutions;
          AddAnswer(static_cast<int>(node_id), std::move(row));
        });
        CS_RETURN_IF_ERROR(status);
        CS_RETURN_IF_ERROR(inner);
      }
    }
    return Status::Ok();
  }

  void AddAnswer(int node_id, Tuple row) {
    if (nodes_[node_id].answer_set.insert(row).second) {
      ++stats_->answers;
      worklist_.push_back({node_id, std::move(row)});
    }
  }

  Status BackwardPhase() {
    const Rule& rule = chain_.recursive_rule;
    const Atom& rec = chain_.recursive_call();
    while (!worklist_.empty() && !Done()) {
      CS_RETURN_IF_ERROR(CheckCancel(options_.cancel));
      if (stats_->answers > options_.max_answers) {
        return ResourceExhaustedError(
            StrCat("backward phase exceeded ", options_.max_answers,
                   " answers (unbounded recursion? push a constraint)"));
      }
      auto [child_id, answer] = std::move(worklist_.front());
      worklist_.pop_front();
      // Copy: AddAnswer may reallocate nodes_' vectors' contents? No —
      // nodes_ itself is stable here, but in_edges is only read.
      const Node& child = nodes_[child_id];
      for (const Edge& edge : child.in_edges) {
        Substitution subst0;
        if (!BindPositions(pool_, rule.head.args, bound_pos_,
                           nodes_[edge.parent].state, &subst0)) {
          continue;
        }
        bool ok = true;
        for (size_t k = 0; k < buffered_vars_.size() && ok; ++k) {
          ok = Unify(pool_, buffered_vars_[k], edge.buffered[k], &subst0);
        }
        if (ok) ok = BindPositions(pool_, rec.args, bound_pos_, child.state,
                                   &subst0);
        if (ok) ok = BindPositions(pool_, rec.args, free_pos_, answer,
                                   &subst0);
        if (!ok) continue;

        std::vector<Atom> goals = SubstituteLiterals(split_.delayed, subst0);
        std::vector<TermId> free_terms;
        for (int i : free_pos_) {
          free_terms.push_back(subst0.Resolve(rule.head.args[i], pool_));
        }
        ++stats_->delayed_solves;
        Status inner = Status::Ok();
        Status status = solver_.Solve(goals, [&](const Substitution& s) {
          if (!inner.ok()) return;
          Tuple row;
          row.reserve(free_terms.size());
          for (TermId t : free_terms) row.push_back(s.Resolve(t, pool_));
          for (TermId t : row) {
            if (!pool_.IsGround(t)) {
              inner = NotFinitelyEvaluableError(
                  "delayed portion produced a non-ground answer");
              return;
            }
          }
          AddAnswer(edge.parent, std::move(row));
        });
        CS_RETURN_IF_ERROR(status);
        CS_RETURN_IF_ERROR(inner);
      }
    }
    return Status::Ok();
  }

  StatusOr<std::vector<Tuple>> CollectRootAnswers(const Atom& query) {
    std::vector<Tuple> result;
    const Node& root = nodes_[0];
    for (const Tuple& row : root.answer_set) {
      Tuple full(query.args.size(), kNullTerm);
      for (size_t k = 0; k < bound_pos_.size(); ++k) {
        full[bound_pos_[k]] = root.state[k];
      }
      for (size_t k = 0; k < free_pos_.size(); ++k) {
        full[free_pos_[k]] = row[k];
      }
      result.push_back(std::move(full));
    }
    return result;
  }

 private:
  EvalDb* db_;
  TermPool& pool_;
  const CompiledChain& chain_;
  const PathSplit& split_;
  const BufferedOptions& options_;
  BufferedStats* stats_;
  TopDownEvaluator solver_;

  std::vector<int> bound_pos_;
  std::vector<int> free_pos_;
  std::vector<TermId> buffered_vars_;  // split buffer + forward-bound
                                       // free-position variables
  Tuple root_state_;
  std::vector<Node> nodes_;
  std::unordered_map<Tuple, int, TupleHash> node_index_;
  std::deque<std::pair<int, Tuple>> worklist_;
};

BufferedChainEvaluator::BufferedChainEvaluator(EvalDb* db,
                                               CompiledChain chain,
                                               BufferedOptions options)
    : db_(db), chain_(std::move(chain)), options_(options) {}

StatusOr<std::vector<Tuple>> BufferedChainEvaluator::Evaluate(
    const Atom& query, const PathSplit& split) {
  stats_ = BufferedStats{};
  Run run(db_, chain_, split, options_, &stats_);
  return run.Execute(query);
}

}  // namespace chainsplit
