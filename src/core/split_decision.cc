#include "core/split_decision.h"

#include "ast/printer.h"
#include "common/strings.h"

namespace chainsplit {

StatusOr<PathSplit> DecideSplit(EvalDb* db, const CompiledChain& chain,
                                const ChainPath& path,
                                const std::vector<TermId>& bound_vars,
                                const SplitDecisionOptions& options) {
  const Program& program = db->program();
  PropagationGate gate;
  if (options.enable_efficiency_split) {
    gate = MakeCostGate(db, options.cost);
  }
  CS_ASSIGN_OR_RETURN(
      PathSplit split,
      SplitPath(program, chain, path, bound_vars,
                options.enable_efficiency_split ? &gate : nullptr));
  if (split.finiteness_split && !options.enable_finiteness_split) {
    return NotFinitelyEvaluableError(
        StrCat("path of ", program.preds().Display(chain.pred),
               " contains a non-evaluable functional predicate and "
               "finiteness-based chain-split is disabled"));
  }
  return split;
}

std::string PathSplitToString(const Program& program,
                              const CompiledChain& chain,
                              const PathSplit& split) {
  auto literals = [&](const std::vector<int>& indexes) {
    std::vector<std::string> parts;
    for (int i : indexes) {
      parts.push_back(AtomToString(program, chain.recursive_rule.body[i]));
    }
    return StrJoin(parts, ", ");
  };
  std::string why;
  if (split.finiteness_split) why += " [finiteness]";
  if (split.efficiency_split) why += " [efficiency]";
  std::vector<std::string> buffered;
  for (TermId v : split.buffered_vars) {
    buffered.push_back(program.pool().ToString(v));
  }
  return StrCat("evaluable {", literals(split.evaluable), "} | delayed {",
                literals(split.delayed), "} buffered {",
                StrJoin(buffered, ", "), "}", why);
}

}  // namespace chainsplit
