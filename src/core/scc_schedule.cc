#include "core/scc_schedule.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "common/deadline.h"
#include "core/classify.h"
#include "core/cost_model.h"
#include "rel/ops.h"

namespace chainsplit {
namespace {

/// Running sum of Relation storage counters (mirror of the seminaive
/// accounting, taken at schedule scope so concurrent strata are not
/// double-counted).
struct TelemetrySum {
  int64_t probes = 0;
  int64_t collisions = 0;
  int64_t arena = 0;
};

TelemetrySum DatabaseTelemetry(const EvalDb& db) {
  TelemetrySum sum;
  for (PredId pred : db.StoredPredicates()) {
    const Relation* rel = db.GetRelation(pred);
    if (rel == nullptr) continue;
    Relation::Telemetry t = rel->telemetry();
    sum.probes += t.probes;
    sum.collisions += t.hash_collisions;
    sum.arena += t.arena_bytes;
  }
  return sum;
}

/// State of one stratum (one SCC of the condensation).
struct Stratum {
  std::vector<Rule> rules;  // rules headed in this SCC, program order
  std::vector<int> succs;   // condensation successors
  int unmet_deps = 0;
  std::unique_ptr<StratumOverlay> overlay;  // parallel mode only
  CancelToken cancel;       // child of the schedule token
  SemiNaiveStats stats;
  Status status;
  int64_t duration_us = 0;
  bool done = false;       // set by the worker, read under the mutex
  bool processed = false;  // coordinator consumed the completion
};

/// Per-stratum evaluator options: child cancel token, optional
/// per-stratum estimator, caller's caps.
SemiNaiveOptions StratumOptions(const SccScheduleOptions& options,
                                EvalDb* eval_db, const CancelToken* cancel,
                                Trace* trace) {
  SemiNaiveOptions sn = options.seminaive;
  sn.cancel = cancel;
  sn.trace = trace;
  if (options.use_stats_ordering && sn.estimator == nullptr) {
    sn.estimator = [eval_db](PredId pred, const std::string& adornment) {
      return EstimateJoinExpansion(eval_db->Stats(pred), adornment);
    };
  }
  return sn;
}

void MergeStats(const SemiNaiveStats& from, SemiNaiveStats* into) {
  into->iterations += from.iterations;
  into->total_derived += from.total_derived;
  into->counters.Add(from.counters);
}

}  // namespace

Status EvaluateSccSchedule(EvalDb* db, const std::vector<Rule>& rules,
                           const SccScheduleOptions& options,
                           SemiNaiveStats* stats,
                           SccScheduleStats* schedule_stats) {
  using Clock = std::chrono::steady_clock;
  *stats = SemiNaiveStats{};
  SccScheduleStats sched;

  // Storage-telemetry baseline at schedule scope (the per-stratum
  // deltas of concurrent fixpoints overlap on the global join
  // counters, so per-run storage numbers are computed once, here).
  const int64_t parallel_batches_before = ParallelJoinBatches();
  const PartitionedJoinTelemetry pjoin_before = GetPartitionedJoinTelemetry();
  const TelemetrySum db_before = DatabaseTelemetry(*db);

  ProgramAnalysis analysis = ProgramAnalysis::Analyze(db->program(), rules);
  const int n = analysis.num_sccs();
  sched.num_sccs = n;

  std::vector<Stratum> strata(n);
  for (const Rule& rule : rules) {
    const int s = analysis.Get(rule.head.pred).scc;
    strata[s].rules.push_back(rule);
  }
  for (int s = 0; s < n; ++s) {
    strata[s].unmet_deps = static_cast<int>(analysis.scc_deps()[s].size());
    for (int dep : analysis.scc_deps()[s]) strata[dep].succs.push_back(s);
    strata[s].cancel.set_parent(options.seminaive.cancel);
  }

  Status status;
  Trace* trace = options.seminaive.trace;
  const bool parallel = options.max_parallel > 1 && n > 1;

  if (!parallel) {
    // Serial stratified schedule: ascending SCC id is topological, so
    // every stratum evaluates in place over its completed callees.
    for (int s = 0; s < n && status.ok(); ++s) {
      TraceSpan span(trace, "scc");
      span.Attr("scc", static_cast<int64_t>(s));
      span.Attr("preds",
                static_cast<int64_t>(analysis.sccs()[s].size()));
      const Clock::time_point t0 = Clock::now();
      SemiNaiveOptions sn =
          StratumOptions(options, db, &strata[s].cancel, trace);
      status = SemiNaiveEvaluate(db, strata[s].rules, sn, &strata[s].stats);
      strata[s].duration_us =
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                t0)
              .count();
      MergeStats(strata[s].stats, stats);
      span.Attr("iterations", strata[s].stats.iterations);
      span.Attr("derived", strata[s].stats.total_derived);
    }
  } else {
    ThreadPool* pool =
        options.pool != nullptr ? options.pool : &ThreadPool::Shared();
    std::mutex mu;
    std::condition_variable done_cv;
    int inflight = 0;
    int completed = 0;
    bool failed = false;
    std::deque<int> ready;
    for (int s = 0; s < n; ++s) {
      if (strata[s].unmet_deps == 0) ready.push_back(s);
    }

    // Resolves the import snapshot of stratum `s`: every predicate its
    // rules mention, from the completed predecessor stratum that owns
    // it, else from the parent database. Runs on the coordinating
    // thread — in-flight strata never touch these structures.
    auto build_overlay = [&](int s) {
      auto overlay = std::make_unique<StratumOverlay>(db);
      std::set<PredId> mentioned;
      for (const Rule& rule : strata[s].rules) {
        mentioned.insert(rule.head.pred);
        for (const Atom& atom : rule.body) mentioned.insert(atom.pred);
      }
      for (PredId pred : mentioned) {
        const Relation* rel = nullptr;
        const int owner = analysis.Get(pred).scc;
        if (owner >= 0 && owner != s && strata[owner].overlay != nullptr) {
          rel = strata[owner].overlay->GetRelation(pred);
        }
        if (rel == nullptr) rel = db->GetRelation(pred);
        overlay->AddImport(pred, rel);
      }
      strata[s].overlay = std::move(overlay);
    };

    ThreadPool::WorkGroup group(pool);
    {
      std::unique_lock<std::mutex> lock(mu);
      for (;;) {
        while (!failed && !ready.empty() && inflight < options.max_parallel) {
          const int s = ready.front();
          ready.pop_front();
          lock.unlock();
          build_overlay(s);
          lock.lock();
          ++inflight;
          ++sched.parallel_sccs;
          sched.max_ready_width = std::max(
              sched.max_ready_width,
              inflight + static_cast<int>(ready.size()));
          Stratum* st = &strata[s];
          group.Submit([st, &options, &mu, &done_cv] {
            const Clock::time_point t0 = Clock::now();
            SemiNaiveOptions sn = StratumOptions(
                options, st->overlay.get(), &st->cancel, nullptr);
            st->status = SemiNaiveEvaluate(st->overlay.get(), st->rules, sn,
                                           &st->stats);
            st->duration_us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - t0)
                    .count();
            {
              std::lock_guard<std::mutex> guard(mu);
              st->done = true;
            }
            done_cv.notify_all();
          });
        }
        if (completed == n || (failed && inflight == 0)) break;
        done_cv.wait(lock, [&] {
          for (int s = 0; s < n; ++s) {
            if (strata[s].done && !strata[s].processed) return true;
          }
          return false;
        });
        for (int s = 0; s < n; ++s) {
          if (!strata[s].done || strata[s].processed) continue;
          strata[s].processed = true;
          --inflight;
          ++completed;
          MergeStats(strata[s].stats, stats);
          if (!strata[s].status.ok() && !failed) {
            failed = true;
            status = strata[s].status;
            // Cut the siblings: their child tokens fail at the next
            // iteration check; the ready queue is simply abandoned.
            for (int t = 0; t < n; ++t) {
              if (!strata[t].done) strata[t].cancel.Cancel();
            }
          }
          if (!failed) {
            for (int succ : strata[s].succs) {
              if (--strata[succ].unmet_deps == 0) ready.push_back(succ);
            }
          }
        }
      }
    }
    group.Wait();  // no-op: every submitted stratum was processed

    if (status.ok()) {
      // Deterministic merge: topological stratum order; each relation
      // keeps its stratum's derivation order. This is the only point
      // where `*db` is written.
      for (int s = 0; s < n; ++s) {
        if (strata[s].overlay != nullptr) strata[s].overlay->PublishTo(db);
      }
    }
    if (trace != nullptr) {
      // Summary spans from the coordinating thread (a Trace is
      // thread-confined); wall time rides as an attribute.
      for (int s = 0; s < n; ++s) {
        if (strata[s].overlay == nullptr) continue;
        TraceSpan span(trace, "scc");
        span.Attr("scc", static_cast<int64_t>(s));
        span.Attr("preds", static_cast<int64_t>(analysis.sccs()[s].size()));
        span.Attr("iterations", strata[s].stats.iterations);
        span.Attr("derived", strata[s].stats.total_derived);
        span.Attr("eval_us", strata[s].duration_us);
      }
    }
  }

  const TelemetrySum db_after = DatabaseTelemetry(*db);
  stats->storage.probes = db_after.probes - db_before.probes;
  stats->storage.hash_collisions = db_after.collisions - db_before.collisions;
  stats->storage.arena_bytes = db_after.arena;
  stats->storage.parallel_batches =
      ParallelJoinBatches() - parallel_batches_before;
  const PartitionedJoinTelemetry pjoin = GetPartitionedJoinTelemetry();
  stats->storage.partitioned_batches = pjoin.batches - pjoin_before.batches;
  stats->storage.partitioned_views_built =
      pjoin.views_built - pjoin_before.views_built;
  stats->storage.partition_build_rows =
      pjoin.build_rows - pjoin_before.build_rows;
  stats->storage.max_partition_rows =
      pjoin.max_partition_rows - pjoin_before.max_partition_rows;

  if (schedule_stats != nullptr) *schedule_stats = sched;
  return status;
}

}  // namespace chainsplit
