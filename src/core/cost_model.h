#ifndef CHAINSPLIT_CORE_COST_MODEL_H_
#define CHAINSPLIT_CORE_COST_MODEL_H_

#include <string>

#include "engine/adornment.h"
#include "rel/catalog.h"

namespace chainsplit {

/// Thresholds of the efficiency-based chain-split decision (Algorithm
/// 3.1). Below `follow_threshold` the linkage is *strong*: bindings are
/// propagated through it (chain-following). Above `split_threshold` it
/// is *weak*: propagation is cut (chain-split). In between, a
/// quantitative comparison of the two plans decides.
struct CostModelOptions {
  double follow_threshold = 2.0;
  double split_threshold = 8.0;
};

/// Join expansion ratio of one literal under `adornment` (§2.1):
/// the expected number of result tuples produced per distinct binding
/// of the bound arguments, estimated from catalog statistics assuming
/// column independence:
///
///   er = cardinality / prod_{c bound} distinct(c)
///
/// With no bound argument the ratio is the full cardinality (an
/// unrestricted scan). An empty relation has ratio 0.
double EstimateJoinExpansion(const RelationStats& stats,
                             const std::string& adornment);

/// Result of the per-literal split decision, for diagnostics.
enum class LinkageStrength { kStrong, kWeak, kBorderline };

/// Classifies one linkage by the thresholds.
LinkageStrength ClassifyLinkage(double expansion_ratio,
                                const CostModelOptions& options);

/// The detailed quantitative analysis for borderline linkages
/// (Heuristic 2.1): compares the estimated per-iteration cost of
/// following (propagating through the linkage, paying the expanded
/// intermediate relation on every subsequent step) against splitting
/// (paying a join of the two sub-chain results once at the end).
/// `bound_bindings` estimates the number of distinct bindings arriving
/// at the linkage per iteration. Returns true when following is
/// estimated cheaper.
bool QuantitativeFollowWins(double expansion_ratio, double bound_bindings,
                            const CostModelOptions& options);

/// Builds the Algorithm 3.1 binding-propagation gate over the EDB
/// statistics of `*db`: propagate through strong linkages, cut weak
/// ones, quantitative analysis in between. The returned gate reads
/// statistics at call time, so it sees data loaded after creation.
/// `db` must outlive the gate.
PropagationGate MakeCostGate(EvalDb* db,
                             const CostModelOptions& options = {});

}  // namespace chainsplit

#endif  // CHAINSPLIT_CORE_COST_MODEL_H_
