#include "core/counting.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"
#include "term/unify.h"

namespace chainsplit {
namespace {

/// A forward derivation at some level: the call state, the buffered
/// values of the step that produced it, and the producing entry at the
/// previous level (-1 for the root).
struct Entry {
  Tuple state;
  Tuple buffered;
  int parent = -1;
  std::unordered_set<Tuple, TupleHash> answers;
};

}  // namespace

StatusOr<std::vector<Tuple>> CountingEvaluate(EvalDb* db,
                                              const CompiledChain& chain,
                                              const PathSplit& split,
                                              const Atom& query,
                                              const CountingOptions& options,
                                              CountingStats* stats) {
  *stats = CountingStats{};
  TermPool& pool = db->pool();
  const Rule& rule = chain.recursive_rule;
  const Atom& rec = chain.recursive_call();
  TopDownEvaluator solver(db, options.subquery);

  std::vector<int> bound_pos, free_pos;
  for (size_t i = 0; i < query.args.size(); ++i) {
    if (pool.IsGround(query.args[i])) {
      bound_pos.push_back(static_cast<int>(i));
    } else {
      free_pos.push_back(static_cast<int>(i));
    }
  }

  // Effective buffer set; see BufferedChainEvaluator::Run::Setup — a
  // followed chain that binds the recursive call's free arguments
  // forward must buffer them to keep them correlated with the other
  // buffered values during the down phase.
  std::vector<TermId> buffered_vars = split.buffered_vars;
  {
    std::vector<TermId> evaluable_vars;
    for (int lit : split.evaluable) {
      CollectAtomVariables(pool, rule.body[lit], &evaluable_vars);
    }
    for (int i : free_pos) {
      std::vector<TermId> vars;
      pool.CollectVariables(rec.args[i], &vars);
      for (TermId v : vars) {
        bool from_forward =
            std::find(evaluable_vars.begin(), evaluable_vars.end(), v) !=
            evaluable_vars.end();
        bool present = std::find(buffered_vars.begin(), buffered_vars.end(),
                                 v) != buffered_vars.end();
        if (from_forward && !present) buffered_vars.push_back(v);
      }
    }
  }

  auto bind_positions = [&](const std::vector<TermId>& args,
                            const std::vector<int>& pos, const Tuple& values,
                            Substitution* subst) {
    for (size_t k = 0; k < pos.size(); ++k) {
      if (!Unify(pool, args[pos[k]], values[k], subst)) return false;
    }
    return true;
  };
  auto substitute = [&](const std::vector<int>& literals,
                        const Substitution& subst) {
    std::vector<Atom> goals;
    for (int i : literals) {
      Atom goal = rule.body[i];
      for (TermId& arg : goal.args) arg = subst.Resolve(arg, pool);
      goals.push_back(std::move(goal));
    }
    return goals;
  };

  // Up phase: counting sets, one entry vector per level.
  std::vector<std::vector<Entry>> levels(1);
  Tuple root_state;
  for (int i : bound_pos) root_state.push_back(query.args[i]);
  levels[0].push_back(Entry{root_state, {}, -1, {}});
  ++stats->up_entries;

  int64_t total_entries = 1;
  while (!levels.back().empty()) {
    if (++stats->levels > options.max_levels) {
      return ResourceExhaustedError(
          StrCat("counting exceeded ", options.max_levels,
                 " levels (cyclic data? use the buffered evaluator)"));
    }
    std::vector<Entry> next;
    for (size_t e = 0; e < levels.back().size(); ++e) {
      const Entry& entry = levels.back()[e];
      Substitution subst0;
      if (!bind_positions(rule.head.args, bound_pos, entry.state, &subst0)) {
        continue;
      }
      std::vector<Atom> goals = substitute(split.evaluable, subst0);
      std::vector<TermId> rec_bound_terms;
      for (int i : bound_pos) {
        rec_bound_terms.push_back(subst0.Resolve(rec.args[i], pool));
      }
      std::vector<TermId> buffer_terms;
      for (TermId v : buffered_vars) {
        buffer_terms.push_back(subst0.Resolve(v, pool));
      }
      Status inner = Status::Ok();
      Status status = solver.Solve(goals, [&](const Substitution& s) {
        if (!inner.ok()) return;
        Entry child;
        for (TermId t : rec_bound_terms) {
          child.state.push_back(s.Resolve(t, pool));
        }
        for (TermId t : buffer_terms) {
          child.buffered.push_back(s.Resolve(t, pool));
        }
        for (TermId t : child.state) {
          if (!pool.IsGround(t)) {
            inner = NotFinitelyEvaluableError(
                "counting up-phase produced a non-ground state");
            return;
          }
        }
        child.parent = static_cast<int>(e);
        next.push_back(std::move(child));
      });
      CS_RETURN_IF_ERROR(status);
      CS_RETURN_IF_ERROR(inner);
    }
    total_entries += static_cast<int64_t>(next.size());
    stats->up_entries += static_cast<int64_t>(next.size());
    if (total_entries > options.max_entries) {
      return ResourceExhaustedError(
          StrCat("counting exceeded ", options.max_entries, " entries"));
    }
    levels.push_back(std::move(next));
  }

  // Exit phase: every level's entries seed their own answers.
  for (auto& level : levels) {
    for (Entry& entry : level) {
      for (const Rule& exit : chain.exit_rules) {
        Substitution subst0;
        if (!bind_positions(exit.head.args, bound_pos, entry.state,
                            &subst0)) {
          continue;
        }
        std::vector<Atom> goals;
        for (const Atom& atom : exit.body) {
          Atom goal = atom;
          for (TermId& arg : goal.args) arg = subst0.Resolve(arg, pool);
          goals.push_back(std::move(goal));
        }
        std::vector<TermId> free_terms;
        for (int i : free_pos) {
          free_terms.push_back(subst0.Resolve(exit.head.args[i], pool));
        }
        Status inner = Status::Ok();
        Status status = solver.Solve(goals, [&](const Substitution& s) {
          if (!inner.ok()) return;
          Tuple row;
          for (TermId t : free_terms) row.push_back(s.Resolve(t, pool));
          for (TermId t : row) {
            if (!pool.IsGround(t)) {
              inner = NotFinitelyEvaluableError(
                  "counting exit produced a non-ground answer");
              return;
            }
          }
          ++stats->exit_solutions;
          entry.answers.insert(std::move(row));
        });
        CS_RETURN_IF_ERROR(status);
        CS_RETURN_IF_ERROR(inner);
      }
    }
  }

  // Down phase: from the deepest level towards the root, apply the
  // delayed portion once per level — the "counting down" that matches
  // up-steps and down-steps.
  for (size_t li = levels.size(); li-- > 1;) {
    for (Entry& entry : levels[li]) {
      if (entry.answers.empty() || entry.parent < 0) continue;
      Entry& parent = levels[li - 1][entry.parent];
      for (const Tuple& answer : entry.answers) {
        Substitution subst0;
        bool ok =
            bind_positions(rule.head.args, bound_pos, parent.state, &subst0);
        for (size_t k = 0; k < buffered_vars.size() && ok; ++k) {
          ok = Unify(pool, buffered_vars[k], entry.buffered[k], &subst0);
        }
        if (ok) {
          ok = bind_positions(rec.args, bound_pos, entry.state, &subst0);
        }
        if (ok) ok = bind_positions(rec.args, free_pos, answer, &subst0);
        if (!ok) continue;
        std::vector<Atom> goals = substitute(split.delayed, subst0);
        std::vector<TermId> free_terms;
        for (int i : free_pos) {
          free_terms.push_back(subst0.Resolve(rule.head.args[i], pool));
        }
        ++stats->down_applications;
        Status inner = Status::Ok();
        Status status = solver.Solve(goals, [&](const Substitution& s) {
          if (!inner.ok()) return;
          Tuple row;
          for (TermId t : free_terms) row.push_back(s.Resolve(t, pool));
          for (TermId t : row) {
            if (!pool.IsGround(t)) {
              inner = NotFinitelyEvaluableError(
                  "counting down-phase produced a non-ground answer");
              return;
            }
          }
          parent.answers.insert(std::move(row));
        });
        CS_RETURN_IF_ERROR(status);
        CS_RETURN_IF_ERROR(inner);
      }
    }
  }

  std::vector<Tuple> result;
  const Entry& root = levels[0][0];
  stats->answers = static_cast<int64_t>(root.answers.size());
  for (const Tuple& row : root.answers) {
    Tuple full(query.args.size(), kNullTerm);
    for (size_t k = 0; k < bound_pos.size(); ++k) {
      full[bound_pos[k]] = root.state[k];
    }
    for (size_t k = 0; k < free_pos.size(); ++k) {
      full[free_pos[k]] = row[k];
    }
    result.push_back(std::move(full));
  }
  return result;
}

}  // namespace chainsplit
