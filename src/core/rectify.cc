#include "core/rectify.h"

#include "ast/builtin_names.h"
#include "engine/builtins.h"

namespace chainsplit {
namespace {

/// Replaces a non-ground compound `term` by a fresh variable, emitting
/// the functional-predicate goals that define it. Nested compounds
/// recurse, innermost first, so each emitted goal has flat arguments.
TermId FlattenTerm(Program* program, TermId term, std::vector<Atom>* goals) {
  TermPool& pool = program->pool();
  if (!pool.IsCompound(term) || pool.IsGround(term)) return term;

  std::vector<TermId> flat_args;
  for (TermId arg : pool.args(term)) {
    flat_args.push_back(FlattenTerm(program, arg, goals));
  }
  std::string functor = pool.functor(term);
  TermId value = pool.FreshVariable("V");

  Atom goal;
  if (functor == kConsFunctor) {
    goal.pred = program->InternPred(kPredCons, 3);
  } else {
    goal.pred = program->InternPred(
        MkCompoundPredName(functor), static_cast<int>(flat_args.size()) + 1);
  }
  goal.args = std::move(flat_args);
  goal.args.push_back(value);
  goals->push_back(std::move(goal));
  return value;
}

Atom FlattenAtom(Program* program, const Atom& atom,
                 std::vector<Atom>* goals) {
  Atom flat = atom;
  for (TermId& arg : flat.args) {
    arg = FlattenTerm(program, arg, goals);
  }
  return flat;
}

}  // namespace

bool IsFlatRule(const TermPool& pool, const Rule& rule) {
  auto flat_atom = [&](const Atom& atom) {
    for (TermId arg : atom.args) {
      if (pool.IsCompound(arg) && !pool.IsGround(arg)) return false;
    }
    return true;
  };
  if (!flat_atom(rule.head)) return false;
  for (const Atom& atom : rule.body) {
    if (!flat_atom(atom)) return false;
  }
  return true;
}

Rule RectifyRule(Program* program, const Rule& rule) {
  if (IsFlatRule(program->pool(), rule)) return rule;
  Rule flat;
  // Head decomposition goals go in front of the body: under a bound
  // head argument they *decompose* the input (cons^ffb), which is what
  // the forward portion of a chain consumes first.
  std::vector<Atom> head_goals;
  flat.head = FlattenAtom(program, rule.head, &head_goals);
  flat.body = std::move(head_goals);
  for (const Atom& atom : rule.body) {
    std::vector<Atom> goals;
    Atom flat_atom = FlattenAtom(program, atom, &goals);
    // Argument-definition goals precede the atom that uses them.
    for (Atom& g : goals) flat.body.push_back(std::move(g));
    flat.body.push_back(std::move(flat_atom));
  }
  return flat;
}

std::vector<Rule> RectifyRules(Program* program) {
  std::vector<Rule> rectified;
  rectified.reserve(program->rules().size());
  for (const Rule& rule : program->rules()) {
    rectified.push_back(RectifyRule(program, rule));
  }
  return rectified;
}

Atom RectifyAtom(Program* program, const Atom& atom,
                 std::vector<Atom>* extra_goals) {
  return FlattenAtom(program, atom, extra_goals);
}

}  // namespace chainsplit
