#ifndef CHAINSPLIT_STORAGE_SNAPSHOT_H_
#define CHAINSPLIT_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/catalog.h"

namespace chainsplit {

/// Point-in-time serialization of a whole Database — term pool,
/// predicate table, rules, program facts, finiteness declarations and
/// every stored relation (raw arena rows) — to a single CRC-checked
/// file `snap-<16-hex lsn>.css` in the data directory.
///
/// The recorded LSN is the last WAL record the snapshot includes:
/// recovery loads the snapshot and replays only records with a higher
/// LSN. Durability discipline: write to a `.tmp` sibling, fsync it,
/// rename over the final name, fsync the directory — a crash leaves
/// either the old set of snapshots or the old set plus a complete new
/// one, never a half-written file under the real name (stray `.tmp`
/// files are ignored by recovery and cleaned up by the next write).
///
/// Reading a snapshot only needs the const surface of Database; writing
/// one therefore runs safely under the service's *shared* lock (no
/// relation or rule can change, and the term/predicate arenas are
/// append-only, so serializing the first N entries is race-free even
/// with concurrent queries interning new terms).

struct SnapshotWriteStats {
  uint64_t lsn = 0;
  int64_t bytes = 0;
  std::string path;
};

Status WriteSnapshot(const Database& db, uint64_t lsn, const std::string& dir,
                     SnapshotWriteStats* stats);

/// One snapshot file found in a data directory.
struct SnapshotFile {
  uint64_t lsn = 0;
  std::string path;
};

/// Snapshots of `dir`, sorted ascending by LSN.
std::vector<SnapshotFile> ListSnapshots(const std::string& dir);

struct SnapshotLoadResult {
  /// False when the directory holds no (valid) snapshot — a cold start
  /// from an empty database plus whatever the WAL replays.
  bool loaded = false;
  uint64_t lsn = 0;
  std::string path;
  /// One line per snapshot that failed its CRC/format check and was
  /// skipped in favor of an older one.
  std::vector<std::string> notes;
};

/// Loads the newest structurally valid snapshot of `dir` into `*db`
/// (which must be freshly constructed). A snapshot failing its CRC or
/// framing check is skipped with a note and the next older one is
/// tried; corruption is only fatal when a snapshot passes the CRC but
/// decodes inconsistently (which indicates a bug, not a bit flip — the
/// database may be half-populated at that point, so startup must
/// abort rather than serve from it).
StatusOr<SnapshotLoadResult> LoadNewestSnapshot(const std::string& dir,
                                                Database* db);

/// Decodes one snapshot file into `*db` (fresh). Exposed for tests.
StatusOr<uint64_t> LoadSnapshotFile(const std::string& path, Database* db);

}  // namespace chainsplit

#endif  // CHAINSPLIT_STORAGE_SNAPSHOT_H_
