#ifndef CHAINSPLIT_STORAGE_WAL_H_
#define CHAINSPLIT_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "storage/log_record.h"

namespace chainsplit {

/// When appended records reach the disk platter (docs/service.md has
/// the trade-off table).
enum class WalSyncPolicy {
  /// fsync after every Append: an acknowledged mutation survives even
  /// an OS crash / power loss. The slowest option — one fsync per
  /// mutation sits inside the service's exclusive section.
  kAlways,
  /// A background flusher fsyncs every `sync_interval_ms`: bounded data
  /// loss (at most one interval) on OS crash, near-zero overhead on the
  /// mutation path. Process crashes (kill -9) lose nothing either way —
  /// completed write()s live in the page cache, which survives the
  /// process. The default.
  kInterval,
  /// Never fsync (the OS flushes when it likes). Still torn-write safe
  /// on process crash; an OS crash can lose the un-flushed suffix.
  kNone,
};

const char* WalSyncPolicyToString(WalSyncPolicy policy);
/// Parses "always" / "interval" / "none".
StatusOr<WalSyncPolicy> ParseWalSyncPolicy(std::string_view text);

struct WalOptions {
  WalSyncPolicy sync = WalSyncPolicy::kInterval;
  int sync_interval_ms = 50;
};

/// Monotone counters (mutex-guarded snapshot via Wal::stats()).
struct WalStats {
  int64_t records = 0;
  int64_t bytes = 0;  // framed bytes written (header + payload)
  int64_t syncs = 0;  // fsync calls issued
  int64_t segments_created = 0;
  uint64_t last_lsn = 0;  // 0 = nothing appended yet
};

/// Append-only write-ahead log over numbered segment files
/// `wal-<16-hex first-lsn>.log` in one data directory.
///
/// Frame format (little-endian):
///   u32 payload_length | u32 crc32(payload) | payload
///
/// Each Append writes one frame with a single write() to an O_APPEND
/// fd, so a *process* crash never interleaves partial frames; an OS
/// crash can leave a torn final frame, which the scanner tolerates by
/// stopping at the last valid one. A new segment starts at every Open
/// (so recovery never appends after a possibly-torn tail) and at every
/// checkpoint rotation; segments fully covered by a durable snapshot
/// are deleted by DeleteSegmentsBelow.
///
/// Thread-safety: all public methods are internally synchronized. The
/// service additionally serializes Append through its exclusive
/// database lock, which is what makes LSN order equal apply order.
class Wal {
 public:
  /// Opens a WAL in `dir` (which must exist), starting a fresh segment
  /// whose first record will carry `next_lsn`.
  static StatusOr<std::unique_ptr<Wal>> Open(const std::string& dir,
                                             uint64_t next_lsn,
                                             const WalOptions& options);
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Frames and appends `record` (its `lsn` field is assigned here),
  /// applying the sync policy. Returns the assigned LSN. After a write
  /// error the log is poisoned: every later Append fails too, so a
  /// half-written frame is never followed by a valid one.
  StatusOr<uint64_t> Append(WalRecord record);

  /// Forces an fsync of the current segment (shutdown, checkpoints).
  Status Sync();

  /// Starts a fresh segment at the next LSN (no-op when the current
  /// segment is still empty). Called after a checkpoint so the covered
  /// records' segment becomes deletable.
  Status Rotate();

  /// Deletes every segment whose records all precede `first_kept_lsn`
  /// (i.e. whose successor segment starts at or below it). The current
  /// segment is never deleted. Returns the number of segments removed.
  StatusOr<int> DeleteSegmentsBelow(uint64_t first_kept_lsn);

  uint64_t last_lsn() const;
  WalStats stats() const;

 private:
  Wal(std::string dir, uint64_t next_lsn, const WalOptions& options)
      : dir_(std::move(dir)), next_lsn_(next_lsn), options_(options) {}

  /// Opens (creating if needed) the segment starting at next_lsn_ as
  /// the current append target. Caller holds mu_.
  Status OpenSegmentLocked();
  Status SyncLocked();
  void StartFlusher();

  const std::string dir_;
  mutable std::mutex mu_;
  uint64_t next_lsn_;
  uint64_t segment_first_lsn_ = 0;  // first lsn of the current segment
  int fd_ = -1;
  bool broken_ = false;
  bool dirty_ = false;  // unsynced bytes in the current segment
  WalStats stats_;
  const WalOptions options_;

  // kInterval flusher.
  std::thread flusher_;
  std::condition_variable flusher_cv_;
  bool stop_flusher_ = false;
};

/// One on-disk segment, for recovery. `first_lsn` comes from the file
/// name; an unparsable wal-*.log name is reported as an error by the
/// scan (never silently skipped).
struct WalSegment {
  uint64_t first_lsn = 0;
  std::string path;
};

/// Segments of `dir` sorted by first LSN. Files not matching the
/// segment name pattern are ignored.
std::vector<WalSegment> ListWalSegments(const std::string& dir);

/// Scan outcome beyond the records themselves.
struct WalScanStats {
  int64_t records = 0;
  /// The file ended inside a frame (crash mid-write): the scan stopped
  /// at the last complete valid frame. `note` says where.
  bool torn_tail = false;
  std::string note;
};

/// Reads every frame of one segment file in order, invoking `fn` per
/// decoded record. Distinguishes the two failure shapes:
///  * truncated tail (EOF inside a frame) — tolerated: scan stops at
///    the last valid frame, `stats->torn_tail` is set;
///  * CRC mismatch or undecodable payload with the frame's bytes fully
///    present (a bit flip, not a torn write) — returns an error naming
///    the file and offset; the caller must not serve from a log with a
///    hole in the middle.
/// `fn` may return a non-OK Status to abort the scan.
Status ScanWalFile(const std::string& path,
                   const std::function<Status(WalRecord&&)>& fn,
                   WalScanStats* stats);

/// Formats an LSN as the 16-digit hex used in segment/snapshot names.
std::string LsnToHex(uint64_t lsn);

/// Fsyncs a directory so a rename/create/unlink inside it is durable.
Status SyncDir(const std::string& dir);

}  // namespace chainsplit

#endif  // CHAINSPLIT_STORAGE_WAL_H_
