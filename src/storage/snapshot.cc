#include "storage/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <fstream>
#include <map>

#include "common/strings.h"
#include "storage/crc32.h"
#include "storage/log_record.h"
#include "storage/wal.h"

namespace chainsplit {
namespace {

// File layout:
//   8-byte magic | u64 payload_length | u32 crc32(payload) | payload
// Payload sections (all wire:: little-endian):
//   u64 lsn
//   term pool:   u64 count, then per node a kind byte + kind payload
//   predicates:  u64 count, then (string name, u32 arity)
//   rules:       u64 count, then head atom + u32 body size + body atoms
//   facts:       u64 count, then atoms (program-level fact list)
//   finite modes:u64 count, then (u32 pred, u32 n, n strings)
//   relations:   u64 count, then (u32 pred, u32 arity, u64 rows,
//                rows*arity raw i32 TermIds — the arena, verbatim)
constexpr char kMagic[8] = {'C', 'S', 'D', 'S', 'N', 'A', 'P', '1'};
constexpr char kSnapPrefix[] = "snap-";
constexpr char kSnapSuffix[] = ".css";

void PutAtom(std::string* out, const Atom& atom) {
  wire::PutU32(out, static_cast<uint32_t>(atom.pred));
  wire::PutU32(out, static_cast<uint32_t>(atom.args.size()));
  for (TermId arg : atom.args) {
    wire::PutU32(out, static_cast<uint32_t>(arg));
  }
}

Status CorruptError(std::string_view what) {
  return InvalidArgumentError(StrCat("snapshot decode: ", what));
}

bool ReadAtom(wire::Reader* in, int64_t num_preds, int64_t num_terms,
              Atom* atom) {
  uint32_t pred = 0;
  uint32_t argc = 0;
  if (!in->ReadU32(&pred) || !in->ReadU32(&argc)) return false;
  if (pred >= static_cast<uint32_t>(num_preds)) return false;
  atom->pred = static_cast<PredId>(pred);
  atom->args.clear();
  atom->args.reserve(argc);
  for (uint32_t i = 0; i < argc; ++i) {
    uint32_t term = 0;
    if (!in->ReadU32(&term)) return false;
    if (term >= static_cast<uint32_t>(num_terms)) return false;
    atom->args.push_back(static_cast<TermId>(term));
  }
  return true;
}

std::string EncodeSnapshotPayload(const Database& db, uint64_t lsn) {
  std::string out;
  wire::PutU64(&out, lsn);

  // Term pool. The arenas are append-only, so capturing the size first
  // and serializing exactly that prefix is consistent even while
  // concurrent queries intern new terms (under the service's shared
  // lock nothing a relation or rule references can change).
  const TermPool& pool = db.pool();
  const int64_t num_terms = pool.size();
  wire::PutU64(&out, static_cast<uint64_t>(num_terms));
  for (TermId t = 0; t < num_terms; ++t) {
    wire::PutU8(&out, static_cast<uint8_t>(pool.kind(t)));
    switch (pool.kind(t)) {
      case TermKind::kInt:
        wire::PutI64(&out, pool.int_value(t));
        break;
      case TermKind::kSymbol:
      case TermKind::kVariable:
        wire::PutString(&out, pool.name(t));
        break;
      case TermKind::kCompound: {
        wire::PutString(&out, pool.functor(t));
        std::span<const TermId> args = pool.args(t);
        wire::PutU32(&out, static_cast<uint32_t>(args.size()));
        for (TermId arg : args) {
          wire::PutU32(&out, static_cast<uint32_t>(arg));
        }
        break;
      }
    }
  }

  // Predicate table.
  const PredicateTable& preds = db.program().preds();
  const int64_t num_preds = preds.size();
  wire::PutU64(&out, static_cast<uint64_t>(num_preds));
  for (PredId p = 0; p < num_preds; ++p) {
    wire::PutString(&out, preds.name(p));
    wire::PutU32(&out, static_cast<uint32_t>(preds.arity(p)));
  }

  // Rules.
  const std::vector<Rule>& rules = db.program().rules();
  wire::PutU64(&out, static_cast<uint64_t>(rules.size()));
  for (const Rule& rule : rules) {
    PutAtom(&out, rule.head);
    wire::PutU32(&out, static_cast<uint32_t>(rule.body.size()));
    for (const Atom& atom : rule.body) PutAtom(&out, atom);
  }

  // Program-level fact list (kept so a recovered program is
  // structurally identical, not just relation-equivalent).
  const std::vector<Atom>& facts = db.program().facts();
  wire::PutU64(&out, static_cast<uint64_t>(facts.size()));
  for (const Atom& fact : facts) PutAtom(&out, fact);

  // Finiteness declarations, in pred order for determinism.
  std::map<PredId, std::vector<std::string>> modes(
      db.program().finite_modes().begin(), db.program().finite_modes().end());
  wire::PutU64(&out, static_cast<uint64_t>(modes.size()));
  for (const auto& [pred, adornments] : modes) {
    wire::PutU32(&out, static_cast<uint32_t>(pred));
    wire::PutU32(&out, static_cast<uint32_t>(adornments.size()));
    for (const std::string& adornment : adornments) {
      wire::PutString(&out, adornment);
    }
  }

  // Relations: the arena layout makes each one a single contiguous
  // block of rows*arity TermIds — serialization is one memcpy.
  std::vector<PredId> stored = db.StoredPredicates();
  std::sort(stored.begin(), stored.end());
  wire::PutU64(&out, static_cast<uint64_t>(stored.size()));
  for (PredId pred : stored) {
    const Relation* rel = db.GetRelation(pred);
    wire::PutU32(&out, static_cast<uint32_t>(pred));
    wire::PutU32(&out, static_cast<uint32_t>(rel->arity()));
    wire::PutU64(&out, static_cast<uint64_t>(rel->num_rows()));
    if (rel->num_rows() > 0) {
      static_assert(sizeof(TermId) == 4);
      const size_t bytes = static_cast<size_t>(rel->num_rows()) *
                           static_cast<size_t>(rel->arity()) * sizeof(TermId);
      out.append(reinterpret_cast<const char*>(rel->row(0).data()), bytes);
    }
  }
  return out;
}

Status DecodeSnapshotPayload(std::string_view payload, Database* db,
                             uint64_t* lsn) {
  wire::Reader in{payload};
  if (!in.ReadU64(lsn)) return CorruptError("missing lsn");

  // Term pool: replay the interning calls in node order. Hash-consing
  // makes this exact — node i either already exists (the pool's
  // constructor pre-interns `[]`) or is created by the i-th call, so
  // every TermId in the rest of the snapshot keeps its meaning.
  TermPool& pool = db->pool();
  uint64_t num_terms = 0;
  if (!in.ReadU64(&num_terms)) return CorruptError("missing term count");
  if (pool.size() > 1) {
    return InternalError("snapshot load requires a fresh Database");
  }
  std::vector<TermId> scratch_args;
  for (uint64_t i = 0; i < num_terms; ++i) {
    uint8_t kind = 0;
    if (!in.ReadU8(&kind)) return CorruptError("truncated term node");
    TermId id = kNullTerm;
    switch (static_cast<TermKind>(kind)) {
      case TermKind::kInt: {
        int64_t value = 0;
        if (!in.ReadI64(&value)) return CorruptError("truncated int term");
        id = pool.MakeInt(value);
        break;
      }
      case TermKind::kSymbol: {
        std::string name;
        if (!in.ReadString(&name)) return CorruptError("truncated symbol");
        id = pool.MakeSymbol(name);
        break;
      }
      case TermKind::kVariable: {
        std::string name;
        if (!in.ReadString(&name)) return CorruptError("truncated variable");
        id = pool.MakeVariable(name);
        break;
      }
      case TermKind::kCompound: {
        std::string functor;
        uint32_t argc = 0;
        if (!in.ReadString(&functor) || !in.ReadU32(&argc)) {
          return CorruptError("truncated compound");
        }
        scratch_args.clear();
        scratch_args.reserve(argc);
        for (uint32_t a = 0; a < argc; ++a) {
          uint32_t arg = 0;
          if (!in.ReadU32(&arg)) return CorruptError("truncated compound arg");
          if (arg >= i) return CorruptError("compound arg references later term");
          scratch_args.push_back(static_cast<TermId>(arg));
        }
        id = pool.MakeCompound(functor, scratch_args);
        break;
      }
      default:
        return CorruptError(StrCat("unknown term kind ", kind));
    }
    if (id != static_cast<TermId>(i)) {
      return CorruptError(StrCat("term id mismatch at node ", i, " (got ", id,
                                 ") — snapshot not built from a fresh pool?"));
    }
  }

  // Predicate table.
  uint64_t num_preds = 0;
  if (!in.ReadU64(&num_preds)) return CorruptError("missing pred count");
  Program& program = db->program();
  for (uint64_t i = 0; i < num_preds; ++i) {
    std::string name;
    uint32_t arity = 0;
    if (!in.ReadString(&name) || !in.ReadU32(&arity)) {
      return CorruptError("truncated predicate entry");
    }
    PredId id = program.InternPred(name, static_cast<int>(arity));
    if (id != static_cast<PredId>(i)) {
      return CorruptError(StrCat("pred id mismatch at entry ", i));
    }
  }

  // Rules.
  uint64_t num_rules = 0;
  if (!in.ReadU64(&num_rules)) return CorruptError("missing rule count");
  for (uint64_t i = 0; i < num_rules; ++i) {
    Rule rule;
    uint32_t body_size = 0;
    if (!ReadAtom(&in, num_preds, num_terms, &rule.head) ||
        !in.ReadU32(&body_size)) {
      return CorruptError("truncated rule");
    }
    rule.body.resize(body_size);
    for (uint32_t b = 0; b < body_size; ++b) {
      if (!ReadAtom(&in, num_preds, num_terms, &rule.body[b])) {
        return CorruptError("truncated rule body");
      }
    }
    program.AddRule(std::move(rule));
  }

  // Program-level facts.
  uint64_t num_facts = 0;
  if (!in.ReadU64(&num_facts)) return CorruptError("missing fact count");
  for (uint64_t i = 0; i < num_facts; ++i) {
    Atom fact;
    if (!ReadAtom(&in, num_preds, num_terms, &fact)) {
      return CorruptError("truncated fact");
    }
    program.AddFact(std::move(fact));
  }

  // Finiteness declarations.
  uint64_t num_modes = 0;
  if (!in.ReadU64(&num_modes)) return CorruptError("missing mode count");
  for (uint64_t i = 0; i < num_modes; ++i) {
    uint32_t pred = 0;
    uint32_t n = 0;
    if (!in.ReadU32(&pred) || !in.ReadU32(&n)) {
      return CorruptError("truncated finite mode");
    }
    if (pred >= num_preds) return CorruptError("finite mode pred out of range");
    for (uint32_t m = 0; m < n; ++m) {
      std::string adornment;
      if (!in.ReadString(&adornment)) {
        return CorruptError("truncated finite mode adornment");
      }
      program.DeclareFiniteMode(static_cast<PredId>(pred),
                                std::move(adornment));
    }
  }

  // Relations.
  uint64_t num_relations = 0;
  if (!in.ReadU64(&num_relations)) return CorruptError("missing rel count");
  for (uint64_t i = 0; i < num_relations; ++i) {
    uint32_t pred = 0;
    uint32_t arity = 0;
    uint64_t rows = 0;
    if (!in.ReadU32(&pred) || !in.ReadU32(&arity) || !in.ReadU64(&rows)) {
      return CorruptError("truncated relation header");
    }
    if (pred >= num_preds) return CorruptError("relation pred out of range");
    if (static_cast<int>(arity) !=
        program.preds().arity(static_cast<PredId>(pred))) {
      return CorruptError("relation arity disagrees with predicate table");
    }
    const size_t cells = static_cast<size_t>(rows) * arity;
    if (in.remaining() < cells * sizeof(TermId)) {
      return CorruptError("truncated relation rows");
    }
    Relation* rel = db->GetOrCreateRelation(static_cast<PredId>(pred));
    rel->Reserve(static_cast<int64_t>(rows));
    const char* raw = in.data.data() + in.at;
    std::vector<TermId> row(arity);
    for (uint64_t r = 0; r < rows; ++r) {
      memcpy(row.data(), raw + r * arity * sizeof(TermId),
             arity * sizeof(TermId));
      for (TermId cell : row) {
        if (cell < 0 || cell >= static_cast<TermId>(num_terms)) {
          return CorruptError("relation cell term out of range");
        }
      }
      rel->Insert(row);
    }
    in.at += cells * sizeof(TermId);
  }
  if (in.remaining() != 0) return CorruptError("trailing bytes");
  return Status::Ok();
}

Status ErrnoError(std::string_view what, std::string_view path) {
  return InternalError(StrCat(what, " ", path, ": ", strerror(errno)));
}

}  // namespace

Status WriteSnapshot(const Database& db, uint64_t lsn, const std::string& dir,
                     SnapshotWriteStats* stats) {
  const std::string payload = EncodeSnapshotPayload(db, lsn);
  std::string file;
  file.reserve(sizeof(kMagic) + 12 + payload.size());
  file.append(kMagic, sizeof(kMagic));
  wire::PutU64(&file, static_cast<uint64_t>(payload.size()));
  wire::PutU32(&file, Crc32(payload));
  file += payload;

  const std::string final_path =
      StrCat(dir, "/", kSnapPrefix, LsnToHex(lsn), kSnapSuffix);
  const std::string tmp_path = StrCat(final_path, ".tmp");

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoError("open", tmp_path);
  size_t done = 0;
  while (done < file.size()) {
    ssize_t n = ::write(fd, file.data() + done, file.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = ErrnoError("write", tmp_path);
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return status;
    }
    done += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = ErrnoError("fsync", tmp_path);
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    Status status = ErrnoError("rename", tmp_path);
    ::unlink(tmp_path.c_str());
    return status;
  }
  // The rename is only durable once the directory entry is.
  Status synced = SyncDir(dir);
  if (!synced.ok()) return synced;

  if (stats != nullptr) {
    stats->lsn = lsn;
    stats->bytes = static_cast<int64_t>(file.size());
    stats->path = final_path;
  }
  return Status::Ok();
}

std::vector<SnapshotFile> ListSnapshots(const std::string& dir) {
  std::vector<SnapshotFile> snapshots;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return snapshots;
  const size_t prefix_len = strlen(kSnapPrefix);
  const size_t suffix_len = strlen(kSnapSuffix);
  while (struct dirent* entry = ::readdir(d)) {
    std::string_view name = entry->d_name;
    if (!StartsWith(name, kSnapPrefix)) continue;
    if (name.size() != prefix_len + 16 + suffix_len) continue;
    if (name.substr(prefix_len + 16) != kSnapSuffix) continue;
    uint64_t lsn = 0;
    bool valid = true;
    for (char c : name.substr(prefix_len, 16)) {
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else {
        valid = false;
        break;
      }
      lsn = (lsn << 4) | static_cast<uint64_t>(digit);
    }
    if (!valid) continue;
    snapshots.push_back({lsn, StrCat(dir, "/", name)});
  }
  ::closedir(d);
  std::sort(snapshots.begin(), snapshots.end(),
            [](const SnapshotFile& a, const SnapshotFile& b) {
              return a.lsn < b.lsn;
            });
  return snapshots;
}

StatusOr<uint64_t> LoadSnapshotFile(const std::string& path, Database* db) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError(StrCat("cannot open snapshot ", path));
  std::string file((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  if (file.size() < sizeof(kMagic) + 12 ||
      memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    return InvalidArgumentError(
        StrCat("snapshot ", path, ": bad magic or truncated header"));
  }
  wire::Reader header{std::string_view(file).substr(sizeof(kMagic), 12)};
  uint64_t length = 0;
  uint32_t crc = 0;
  header.ReadU64(&length);
  header.ReadU32(&crc);
  if (file.size() - sizeof(kMagic) - 12 != length) {
    return InvalidArgumentError(
        StrCat("snapshot ", path, ": payload length mismatch (header says ",
               length, ", file holds ", file.size() - sizeof(kMagic) - 12,
               ")"));
  }
  std::string_view payload =
      std::string_view(file).substr(sizeof(kMagic) + 12, length);
  // CRC gate first: only a checksum-clean payload is allowed to touch
  // the database, so a bit-flipped snapshot fails *here* — before any
  // state is mutated — and the caller can fall back to an older file.
  if (Crc32(payload) != crc) {
    return InvalidArgumentError(
        StrCat("snapshot ", path, ": crc mismatch (corrupt)"));
  }
  uint64_t lsn = 0;
  Status status = DecodeSnapshotPayload(payload, db, &lsn);
  if (!status.ok()) {
    // Past the CRC, a decode failure means an inconsistent writer or a
    // format bug — and the database may be half-populated. Escalate to
    // Internal so the caller aborts instead of falling back over a
    // polluted database.
    return InternalError(StrCat("snapshot ", path, ": ", status.message()));
  }
  return lsn;
}

StatusOr<SnapshotLoadResult> LoadNewestSnapshot(const std::string& dir,
                                                Database* db) {
  SnapshotLoadResult result;
  std::vector<SnapshotFile> snapshots = ListSnapshots(dir);
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    StatusOr<uint64_t> lsn = LoadSnapshotFile(it->path, db);
    if (lsn.ok()) {
      result.loaded = true;
      result.lsn = *lsn;
      result.path = it->path;
      return result;
    }
    if (lsn.status().code() == StatusCode::kInternal) {
      // Database possibly polluted — do not fall back.
      return lsn.status();
    }
    result.notes.push_back(
        StrCat("skipping snapshot: ", lsn.status().message()));
  }
  return result;  // nothing loadable: cold start (notes say why, if any)
}

}  // namespace chainsplit
