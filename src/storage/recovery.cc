#include "storage/recovery.h"

#include <errno.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>

#include "common/strings.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace chainsplit {

StatusOr<RecoveryResult> RecoverDatabase(const std::string& dir, Database* db,
                                         const WalApplyFn& apply) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return InternalError(
        StrCat("cannot create data dir ", dir, ": ", strerror(errno)));
  }

  RecoveryResult result;
  CS_ASSIGN_OR_RETURN(SnapshotLoadResult snap, LoadNewestSnapshot(dir, db));
  result.notes = std::move(snap.notes);
  if (snap.loaded) {
    result.cold_start = false;
    result.snapshot_lsn = snap.lsn;
    result.snapshot_path = snap.path;
    result.last_lsn = snap.lsn;
  }

  // Replay the log tail. Segments are scanned oldest-first; within the
  // covered prefix records are skipped (the snapshot already holds
  // their effects), after it every record must apply cleanly and carry
  // the next consecutive LSN.
  std::vector<WalSegment> segments = ListWalSegments(dir);
  for (size_t i = 0; i < segments.size(); ++i) {
    const WalSegment& segment = segments[i];
    // A whole segment below the snapshot horizon still gets scanned
    // (cheap, and it validates checksums), but its records are skipped
    // individually — simpler than reasoning about segment boundaries.
    WalScanStats scan;
    Status scanned = ScanWalFile(
        segment.path,
        [&](WalRecord&& record) -> Status {
          if (record.lsn <= result.snapshot_lsn) {
            ++result.skipped_records;
            return Status::Ok();
          }
          // Strict consecutiveness: on a cold start last_lsn is 0 and
          // the first record ever logged carries LSN 1, so this single
          // check also catches "all snapshots corrupt but their covered
          // segments already deleted" — the tail then starts past 1 and
          // recovery refuses rather than serve partial history.
          if (record.lsn != result.last_lsn + 1) {
            return InternalError(StrCat(
                "wal gap: expected lsn ", result.last_lsn + 1, ", found ",
                record.lsn, " in ", segment.path,
                " — a segment or record is missing; refusing to recover"));
          }
          Status applied = apply(record);
          if (!applied.ok()) {
            return InternalError(StrCat("replaying lsn ", record.lsn, " (",
                                        segment.path,
                                        "): ", applied.message()));
          }
          result.cold_start = false;
          result.last_lsn = record.lsn;
          ++result.replayed_records;
          return Status::Ok();
        },
        &scan);
    if (!scanned.ok()) return scanned;
    if (scan.torn_tail) {
      // A torn tail in the newest segment is the crash-mid-append case.
      // In an *older* segment it is also legitimate — after a previous
      // torn-tail recovery the next Open starts a fresh segment whose
      // first record re-uses the dropped LSN, so the chain continues
      // seamlessly. Genuine loss (records torn away with nothing
      // re-logging their LSNs) is caught by the consecutiveness check
      // above when the next segment's records arrive.
      result.torn_tail = true;
      result.notes.push_back(scan.note);
    }
  }
  return result;
}

}  // namespace chainsplit
