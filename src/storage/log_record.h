#ifndef CHAINSPLIT_STORAGE_LOG_RECORD_H_
#define CHAINSPLIT_STORAGE_LOG_RECORD_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/strings.h"

namespace chainsplit {

/// Little-endian wire primitives shared by the WAL record payloads and
/// the snapshot format. Everything durable is written through these, so
/// the on-disk encoding is host-endianness independent.
namespace wire {

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}
inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}
/// Length-prefixed string (u32 length + raw bytes).
inline void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

/// Cursor over an encoded payload. Every Read* returns false on
/// underflow instead of reading past the end, so a decoder can turn
/// truncation into a clean Status.
struct Reader {
  std::string_view data;
  size_t at = 0;

  size_t remaining() const { return data.size() - at; }
  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<uint8_t>(data[at++]);
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) {
      r |= static_cast<uint32_t>(static_cast<uint8_t>(data[at + i])) << (8 * i);
    }
    at += 4;
    *v = r;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) {
      r |= static_cast<uint64_t>(static_cast<uint8_t>(data[at + i])) << (8 * i);
    }
    at += 8;
    *v = r;
    return true;
  }
  bool ReadI64(int64_t* v) {
    uint64_t u;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }
  bool ReadString(std::string* v) {
    uint32_t n;
    if (!ReadU32(&n)) return false;
    if (remaining() < n) return false;
    v->assign(data.data() + at, n);
    at += n;
    return true;
  }
};

}  // namespace wire

/// What one WAL record means. The log replays *mutation statements*,
/// not low-level tuple writes: a record is appended only after its text
/// fully parsed (validation precedes logging), so replay re-runs the
/// exact deterministic apply path the live service ran. This keeps the
/// applied prefix and the logged prefix identical by construction — a
/// statement is either validated + logged + applied, or nothing.
enum class WalRecordType : uint8_t {
  /// One Update() statement batch: program text (facts, rules; any
  /// embedded queries are skipped on replay — they mutate nothing).
  kUpdate = 1,
  /// One bulk CSV load: the *content* of the file (not its path, which
  /// may have changed or vanished by recovery time) plus the target
  /// predicate spec.
  kCsvLoad = 2,
};

struct WalRecord {
  /// Log sequence number, assigned by Wal::Append; strictly
  /// consecutive across segments. Recovery verifies consecutiveness to
  /// detect gaps (a lost segment is never silently skipped).
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kUpdate;

  /// kUpdate: the statement text. kCsvLoad: the delimited file content.
  std::string text;

  // kCsvLoad only.
  std::string pred_name;
  int32_t arity = 0;
  char delimiter = ',';
};

/// Encodes the record payload (the Wal adds the length + CRC framing).
inline std::string EncodeWalRecord(const WalRecord& record) {
  std::string out;
  wire::PutU64(&out, record.lsn);
  wire::PutU8(&out, static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kUpdate:
      wire::PutString(&out, record.text);
      break;
    case WalRecordType::kCsvLoad:
      wire::PutString(&out, record.pred_name);
      wire::PutU32(&out, static_cast<uint32_t>(record.arity));
      wire::PutU8(&out, static_cast<uint8_t>(record.delimiter));
      wire::PutString(&out, record.text);
      break;
  }
  return out;
}

inline StatusOr<WalRecord> DecodeWalRecord(std::string_view payload) {
  wire::Reader in{payload};
  WalRecord record;
  uint8_t type = 0;
  if (!in.ReadU64(&record.lsn) || !in.ReadU8(&type)) {
    return InvalidArgumentError("wal record payload truncated");
  }
  switch (static_cast<WalRecordType>(type)) {
    case WalRecordType::kUpdate:
      record.type = WalRecordType::kUpdate;
      if (!in.ReadString(&record.text)) {
        return InvalidArgumentError("wal update record truncated");
      }
      break;
    case WalRecordType::kCsvLoad: {
      record.type = WalRecordType::kCsvLoad;
      uint32_t arity = 0;
      uint8_t delimiter = 0;
      if (!in.ReadString(&record.pred_name) || !in.ReadU32(&arity) ||
          !in.ReadU8(&delimiter) || !in.ReadString(&record.text)) {
        return InvalidArgumentError("wal csv record truncated");
      }
      record.arity = static_cast<int32_t>(arity);
      record.delimiter = static_cast<char>(delimiter);
      break;
    }
    default:
      return InvalidArgumentError(
          StrCat("unknown wal record type ", static_cast<int>(type)));
  }
  if (in.remaining() != 0) {
    return InvalidArgumentError("trailing bytes after wal record payload");
  }
  return record;
}

}  // namespace chainsplit

#endif  // CHAINSPLIT_STORAGE_LOG_RECORD_H_
