#ifndef CHAINSPLIT_STORAGE_RECOVERY_H_
#define CHAINSPLIT_STORAGE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "rel/catalog.h"
#include "storage/log_record.h"

namespace chainsplit {

/// Startup recovery: newest valid snapshot + WAL tail replay.
///
/// The procedure (docs/service.md §Durability):
///   1. create the data directory if missing (first boot);
///   2. load the newest snapshot whose CRC verifies, falling back to
///      older ones past bit-flipped files (cold start when none);
///   3. scan every WAL segment in LSN order, skip records the snapshot
///      already covers, apply the rest through `apply`;
///   4. tolerate a torn final record (crash mid-write) but refuse a
///      checksum hole in the middle of the log — recovery never skips a
///      record and silently applies later ones.
/// LSNs must be strictly consecutive across segments; a gap means a
/// segment went missing and recovery fails loudly rather than serve
/// partial history.

struct RecoveryResult {
  /// True when neither a snapshot nor any WAL record was found.
  bool cold_start = true;
  /// LSN of the loaded snapshot (0 when none).
  uint64_t snapshot_lsn = 0;
  std::string snapshot_path;
  /// Highest LSN seen anywhere (snapshot or log); the WAL resumes at
  /// last_lsn + 1.
  uint64_t last_lsn = 0;
  /// Records re-applied from the log.
  int64_t replayed_records = 0;
  /// Records skipped because the snapshot already covered them.
  int64_t skipped_records = 0;
  /// A torn final record was dropped (crash mid-append).
  bool torn_tail = false;
  /// Human-readable trail: skipped snapshots, torn-tail details.
  std::vector<std::string> notes;
};

/// Applies one logged mutation to the database being recovered. The
/// service supplies its replay path (Update text without embedded
/// queries / staged CSV load); errors abort recovery.
using WalApplyFn = std::function<Status(const WalRecord&)>;

/// Recovers `*db` (freshly constructed) from `dir`, creating the
/// directory on first use. Returns how far the timeline went so the
/// caller can open the WAL at last_lsn + 1.
StatusOr<RecoveryResult> RecoverDatabase(const std::string& dir, Database* db,
                                         const WalApplyFn& apply);

}  // namespace chainsplit

#endif  // CHAINSPLIT_STORAGE_RECOVERY_H_
