#include "storage/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <fstream>

#include "common/strings.h"
#include "storage/crc32.h"

namespace chainsplit {
namespace {

/// A frame longer than this is never legitimate (updates are bounded
/// by request sizes); seeing one mid-file means a corrupt length field.
constexpr uint32_t kMaxFrameBytes = 1u << 30;

constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";

Status ErrnoError(std::string_view what, std::string_view path) {
  return InternalError(StrCat(what, " ", path, ": ", strerror(errno)));
}

/// Full write, retrying short writes/EINTR. A short write that cannot
/// be completed leaves a torn tail, which the caller must treat as a
/// poisoned log.
Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

const char* WalSyncPolicyToString(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kAlways:
      return "always";
    case WalSyncPolicy::kInterval:
      return "interval";
    case WalSyncPolicy::kNone:
      return "none";
  }
  return "?";
}

StatusOr<WalSyncPolicy> ParseWalSyncPolicy(std::string_view text) {
  if (text == "always") return WalSyncPolicy::kAlways;
  if (text == "interval") return WalSyncPolicy::kInterval;
  if (text == "none") return WalSyncPolicy::kNone;
  return InvalidArgumentError(
      StrCat("--wal-sync must be always, interval or none (got '", text,
             "')"));
}

std::string LsnToHex(uint64_t lsn) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[lsn & 0xF];
    lsn >>= 4;
  }
  return out;
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("open dir", dir);
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoError("fsync dir", dir);
  return Status::Ok();
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                         uint64_t next_lsn,
                                         const WalOptions& options) {
  std::unique_ptr<Wal> wal(new Wal(dir, next_lsn, options));
  {
    std::lock_guard<std::mutex> lock(wal->mu_);
    Status status = wal->OpenSegmentLocked();
    if (!status.ok()) return status;
    wal->stats_.last_lsn = next_lsn - 1;
  }
  if (options.sync == WalSyncPolicy::kInterval) wal->StartFlusher();
  return wal;
}

Wal::~Wal() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_flusher_ = true;
  }
  flusher_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    // Best-effort final flush so a clean shutdown loses nothing even
    // under kNone.
    if (dirty_) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void Wal::StartFlusher() {
  flusher_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    const auto interval = std::chrono::milliseconds(
        options_.sync_interval_ms > 0 ? options_.sync_interval_ms : 50);
    while (!stop_flusher_) {
      flusher_cv_.wait_for(lock, interval);
      if (dirty_ && fd_ >= 0) {
        // fsync with the lock held: appends are serialized behind the
        // sync, which is exactly the bounded-loss contract (at most
        // one interval of acknowledged-but-unsynced records).
        if (::fsync(fd_) == 0) {
          dirty_ = false;
          ++stats_.syncs;
        }
      }
    }
  });
}

Status Wal::OpenSegmentLocked() {
  if (fd_ >= 0) {
    if (dirty_) {
      if (::fsync(fd_) != 0) return ErrnoError("fsync", dir_);
      dirty_ = false;
      ++stats_.syncs;
    }
    ::close(fd_);
    fd_ = -1;
  }
  std::string path =
      StrCat(dir_, "/", kSegmentPrefix, LsnToHex(next_lsn_), kSegmentSuffix);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return ErrnoError("open", path);
  segment_first_lsn_ = next_lsn_;
  ++stats_.segments_created;
  // Make the segment's directory entry durable before any record is
  // acknowledged out of it.
  return SyncDir(dir_);
}

StatusOr<uint64_t> Wal::Append(WalRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) {
    return InternalError(
        "wal poisoned by an earlier write error; refusing to append");
  }
  if (fd_ < 0) return InternalError("wal is closed");
  record.lsn = next_lsn_;
  const std::string payload = EncodeWalRecord(record);

  std::string frame;
  frame.reserve(8 + payload.size());
  wire::PutU32(&frame, static_cast<uint32_t>(payload.size()));
  wire::PutU32(&frame, Crc32(payload));
  frame += payload;

  Status status = WriteAll(fd_, frame.data(), frame.size(), dir_);
  if (!status.ok()) {
    broken_ = true;
    return status;
  }
  dirty_ = true;
  ++next_lsn_;
  ++stats_.records;
  stats_.bytes += static_cast<int64_t>(frame.size());
  stats_.last_lsn = record.lsn;
  if (options_.sync == WalSyncPolicy::kAlways) {
    Status synced = SyncLocked();
    if (!synced.ok()) {
      broken_ = true;
      return synced;
    }
  }
  return record.lsn;
}

Status Wal::SyncLocked() {
  if (fd_ < 0 || !dirty_) return Status::Ok();
  if (::fsync(fd_) != 0) return ErrnoError("fsync", dir_);
  dirty_ = false;
  ++stats_.syncs;
  return Status::Ok();
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncLocked();
}

Status Wal::Rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (broken_) return InternalError("wal poisoned; refusing to rotate");
  if (segment_first_lsn_ == next_lsn_) return Status::Ok();  // still empty
  return OpenSegmentLocked();
}

StatusOr<int> Wal::DeleteSegmentsBelow(uint64_t first_kept_lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WalSegment> segments = ListWalSegments(dir_);
  int removed = 0;
  // A segment is deletable when its successor starts at or below
  // first_kept_lsn — then every record it holds precedes the kept
  // range. The newest segment (the current one) has no successor.
  for (size_t i = 0; i + 1 < segments.size(); ++i) {
    if (segments[i + 1].first_lsn > first_kept_lsn) break;
    if (segments[i].first_lsn == segment_first_lsn_) break;  // current
    if (::unlink(segments[i].path.c_str()) != 0) {
      return ErrnoError("unlink", segments[i].path);
    }
    ++removed;
  }
  if (removed > 0) {
    Status status = SyncDir(dir_);
    if (!status.ok()) return status;
  }
  return removed;
}

uint64_t Wal::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.last_lsn;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<WalSegment> ListWalSegments(const std::string& dir) {
  std::vector<WalSegment> segments;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return segments;
  while (struct dirent* entry = ::readdir(d)) {
    std::string_view name = entry->d_name;
    if (!StartsWith(name, kSegmentPrefix)) continue;
    if (name.size() != strlen(kSegmentPrefix) + 16 + strlen(kSegmentSuffix)) {
      continue;
    }
    std::string_view hex = name.substr(strlen(kSegmentPrefix), 16);
    if (name.substr(strlen(kSegmentPrefix) + 16) != kSegmentSuffix) continue;
    uint64_t lsn = 0;
    bool valid = true;
    for (char c : hex) {
      int digit;
      if (c >= '0' && c <= '9') {
        digit = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        digit = c - 'a' + 10;
      } else {
        valid = false;
        break;
      }
      lsn = (lsn << 4) | static_cast<uint64_t>(digit);
    }
    if (!valid) continue;
    segments.push_back({lsn, StrCat(dir, "/", name)});
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end(),
            [](const WalSegment& a, const WalSegment& b) {
              return a.first_lsn < b.first_lsn;
            });
  return segments;
}

Status ScanWalFile(const std::string& path,
                   const std::function<Status(WalRecord&&)>& fn,
                   WalScanStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError(StrCat("cannot open wal segment ", path));
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();

  size_t at = 0;
  while (at < data.size()) {
    const size_t remaining = data.size() - at;
    if (remaining < 8) {
      stats->torn_tail = true;
      stats->note = StrCat("torn frame header at offset ", at, " of ", path,
                           " (", remaining, " bytes)");
      return Status::Ok();
    }
    wire::Reader header{std::string_view(data).substr(at, 8)};
    uint32_t length = 0;
    uint32_t crc = 0;
    header.ReadU32(&length);
    header.ReadU32(&crc);
    if (length > kMaxFrameBytes) {
      return InvalidArgumentError(
          StrCat("wal corruption: implausible frame length ", length,
                 " at offset ", at, " of ", path));
    }
    if (remaining - 8 < length) {
      // The frame claims more bytes than the file holds: a write torn
      // by a crash. Stop at the last complete frame. (A corrupted
      // length field in the *final* frame is indistinguishable from
      // this and is likewise dropped — the record was never
      // acknowledged as durable past its fsync horizon.)
      stats->torn_tail = true;
      stats->note =
          StrCat("torn frame at offset ", at, " of ", path, " (length ",
                 length, ", only ", remaining - 8, " payload bytes)");
      return Status::Ok();
    }
    std::string_view payload = std::string_view(data).substr(at + 8, length);
    if (Crc32(payload) != crc) {
      // Full frame present but the checksum disagrees: a bit flip, not
      // a torn tail. Refusing to continue is the only safe option —
      // records after a hole must not be applied.
      return InvalidArgumentError(
          StrCat("wal corruption: crc mismatch at offset ", at, " of ", path,
                 " (record ", stats->records + 1, " of this segment)"));
    }
    StatusOr<WalRecord> record = DecodeWalRecord(payload);
    if (!record.ok()) {
      return InvalidArgumentError(StrCat("wal corruption: ",
                                         record.status().message(),
                                         " at offset ", at, " of ", path));
    }
    ++stats->records;
    Status applied = fn(std::move(*record));
    if (!applied.ok()) return applied;
    at += 8 + length;
  }
  return Status::Ok();
}

}  // namespace chainsplit
