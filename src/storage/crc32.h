#ifndef CHAINSPLIT_STORAGE_CRC32_H_
#define CHAINSPLIT_STORAGE_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace chainsplit {

/// CRC-32 (IEEE 802.3 polynomial, the zlib/ethernet one). Every durable
/// frame — WAL records and snapshot payloads — carries one of these so
/// a bit flip anywhere in the payload is detected before replay. The
/// `seed` parameter chains partial computations:
///   Crc32(b, nb, Crc32(a, na)) == Crc32(ab, na + nb).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace chainsplit

#endif  // CHAINSPLIT_STORAGE_CRC32_H_
