#include "rel/catalog.h"

#include <unordered_set>

#include "common/strings.h"

namespace chainsplit {

RelationStats ComputeStats(const Relation& relation) {
  RelationStats stats;
  stats.cardinality = relation.size();
  stats.distinct.assign(relation.arity(), 0);
  std::vector<std::unordered_set<TermId>> seen(relation.arity());
  for (int64_t i = 0; i < relation.num_rows(); ++i) {
    Relation::Row t = relation.row(i);
    for (int c = 0; c < relation.arity(); ++c) seen[c].insert(t[c]);
  }
  for (int c = 0; c < relation.arity(); ++c) {
    stats.distinct[c] = static_cast<int64_t>(seen[c].size());
  }
  return stats;
}

Relation* Database::GetOrCreateRelation(PredId pred) {
  auto it = relations_.find(pred);
  if (it != relations_.end()) return &it->second;
  auto [inserted, ok] =
      relations_.emplace(pred, Relation(program_.preds().arity(pred)));
  return &inserted->second;
}

const Relation* Database::GetRelation(PredId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

Status Database::LoadProgramFacts() {
  for (const Atom& fact : program_.facts()) {
    if (!IsGroundAtom(pool_, fact)) {
      return InvalidArgumentError(
          StrCat("non-ground fact for ", program_.preds().Display(fact.pred)));
    }
    GetOrCreateRelation(fact.pred)->Insert(fact.args);
  }
  return Status::Ok();
}

bool Database::InsertFact(PredId pred, const Tuple& tuple) {
  return GetOrCreateRelation(pred)->Insert(tuple);
}

const RelationStats& Database::Stats(PredId pred) {
  CachedStats& cached = stats_[pred];
  const Relation* relation = GetRelation(pred);
  int64_t size = relation == nullptr ? 0 : relation->size();
  if (cached.at_size != size) {
    if (relation == nullptr) {
      cached.stats = RelationStats{};
      cached.stats.distinct.assign(program_.preds().arity(pred), 0);
    } else {
      cached.stats = ComputeStats(*relation);
    }
    cached.at_size = size;
  }
  return cached.stats;
}

std::vector<PredId> Database::StoredPredicates() const {
  std::vector<PredId> preds;
  preds.reserve(relations_.size());
  for (const auto& [pred, relation] : relations_) preds.push_back(pred);
  return preds;
}

}  // namespace chainsplit
