#include "rel/catalog.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"

namespace chainsplit {

RelationStats ComputeStats(const Relation& relation) {
  RelationStats stats;
  stats.cardinality = relation.size();
  stats.distinct.assign(relation.arity(), 0);
  std::vector<std::unordered_set<TermId>> seen(relation.arity());
  for (int64_t i = 0; i < relation.num_rows(); ++i) {
    Relation::Row t = relation.row(i);
    for (int c = 0; c < relation.arity(); ++c) seen[c].insert(t[c]);
  }
  for (int c = 0; c < relation.arity(); ++c) {
    stats.distinct[c] = static_cast<int64_t>(seen[c].size());
  }
  return stats;
}

Relation* Database::GetOrCreateRelation(PredId pred) {
  auto it = relations_.find(pred);
  if (it != relations_.end()) return &it->second;
  auto [inserted, ok] =
      relations_.emplace(pred, Relation(program_.preds().arity(pred)));
  return &inserted->second;
}

const Relation* Database::GetRelation(PredId pred) const {
  auto it = relations_.find(pred);
  return it == relations_.end() ? nullptr : &it->second;
}

Status Database::LoadProgramFacts() {
  for (const Atom& fact : program_.facts()) {
    if (!IsGroundAtom(pool_, fact)) {
      return InvalidArgumentError(
          StrCat("non-ground fact for ", program_.preds().Display(fact.pred)));
    }
    GetOrCreateRelation(fact.pred)->Insert(fact.args);
  }
  return Status::Ok();
}

bool Database::InsertFact(PredId pred, const Tuple& tuple) {
  return GetOrCreateRelation(pred)->Insert(tuple);
}

RelationStats Database::Stats(PredId pred) {
  const Relation* relation = GetRelation(pred);
  int64_t size = relation == nullptr ? 0 : relation->size();
  std::lock_guard<std::mutex> lock(stats_mu_);
  CachedStats& cached = stats_[pred];
  if (cached.at_size != size) {
    if (relation == nullptr) {
      cached.stats = RelationStats{};
      cached.stats.distinct.assign(program_.preds().arity(pred), 0);
    } else {
      cached.stats = ComputeStats(*relation);
    }
    cached.at_size = size;
  }
  return cached.stats;
}

std::vector<PredId> Database::StoredPredicates() const {
  std::vector<PredId> preds;
  preds.reserve(relations_.size());
  for (const auto& [pred, relation] : relations_) preds.push_back(pred);
  return preds;
}

Relation* DatabaseOverlay::GetOrCreateRelation(PredId pred) {
  auto it = local_.find(pred);
  if (it != local_.end()) return &it->second;
  auto [inserted, ok] =
      local_.emplace(pred, Relation(program().preds().arity(pred)));
  // Copy-on-write: a predicate with base facts gets those rows copied
  // into the overlay so derivations see them; the base stays frozen.
  const Relation* base_rel =
      static_cast<const Database*>(base_)->GetRelation(pred);
  if (base_rel != nullptr && !base_rel->empty()) {
    inserted->second.UnionWith(*base_rel);
  }
  return &inserted->second;
}

const Relation* DatabaseOverlay::GetRelation(PredId pred) const {
  auto it = local_.find(pred);
  if (it != local_.end()) return &it->second;
  return static_cast<const Database*>(base_)->GetRelation(pred);
}

bool DatabaseOverlay::InsertFact(PredId pred, const Tuple& tuple) {
  return GetOrCreateRelation(pred)->Insert(tuple);
}

RelationStats DatabaseOverlay::Stats(PredId pred) {
  auto it = local_.find(pred);
  if (it == local_.end()) return base_->Stats(pred);
  const Relation& relation = it->second;
  CachedStats& cached = stats_[pred];
  if (cached.at_size != relation.size()) {
    cached.stats = ComputeStats(relation);
    cached.at_size = relation.size();
  }
  return cached.stats;
}

std::vector<PredId> DatabaseOverlay::StoredPredicates() const {
  std::vector<PredId> preds = base_->StoredPredicates();
  for (const auto& [pred, relation] : local_) {
    if (base_->GetRelation(pred) == nullptr) preds.push_back(pred);
  }
  return preds;
}

Relation* StratumOverlay::GetOrCreateRelation(PredId pred) {
  auto it = local_.find(pred);
  if (it != local_.end()) return &it->second;
  auto [inserted, ok] =
      local_.emplace(pred, Relation(program().preds().arity(pred)));
  // Copy-on-write against the import snapshot: pre-seeded rows (magic
  // seeds, EDB facts of this stratum's predicates) become the local
  // relation's prefix, so derivation order matches evaluating in
  // place.
  auto imp = imports_.find(pred);
  if (imp != imports_.end() && !imp->second->empty()) {
    inserted->second.UnionWith(*imp->second);
  }
  return &inserted->second;
}

const Relation* StratumOverlay::GetRelation(PredId pred) const {
  auto it = local_.find(pred);
  if (it != local_.end()) return &it->second;
  auto imp = imports_.find(pred);
  return imp == imports_.end() ? nullptr : imp->second;
}

bool StratumOverlay::InsertFact(PredId pred, const Tuple& tuple) {
  return GetOrCreateRelation(pred)->Insert(tuple);
}

RelationStats StratumOverlay::Stats(PredId pred) {
  const Relation* relation = GetRelation(pred);
  int64_t size = relation == nullptr ? 0 : relation->size();
  CachedStats& cached = stats_[pred];
  if (cached.at_size != size) {
    if (relation == nullptr) {
      cached.stats = RelationStats{};
      cached.stats.distinct.assign(program().preds().arity(pred), 0);
    } else {
      cached.stats = ComputeStats(*relation);
    }
    cached.at_size = size;
  }
  return cached.stats;
}

std::vector<PredId> StratumOverlay::StoredPredicates() const {
  std::vector<PredId> preds;
  preds.reserve(local_.size() + imports_.size());
  for (const auto& [pred, relation] : local_) preds.push_back(pred);
  for (const auto& [pred, relation] : imports_) {
    if (local_.count(pred) == 0) preds.push_back(pred);
  }
  return preds;
}

void StratumOverlay::PublishTo(EvalDb* target) const {
  // Sorted predicate order keeps the pass deterministic; row order
  // within each relation is the stratum's own derivation order, and
  // UnionWith skips the seed prefix the target already holds.
  std::vector<PredId> preds;
  preds.reserve(local_.size());
  for (const auto& [pred, relation] : local_) preds.push_back(pred);
  std::sort(preds.begin(), preds.end());
  for (PredId pred : preds) {
    target->GetOrCreateRelation(pred)->UnionWith(local_.at(pred));
  }
}

DatabaseOverlay::Telemetry DatabaseOverlay::telemetry() const {
  Telemetry t;
  t.relations = static_cast<int64_t>(local_.size());
  for (const auto& [pred, relation] : local_) {
    t.arena_bytes += relation.telemetry().arena_bytes;
  }
  return t;
}

}  // namespace chainsplit
