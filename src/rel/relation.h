#ifndef CHAINSPLIT_REL_RELATION_H_
#define CHAINSPLIT_REL_RELATION_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <iterator>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "term/term.h"

namespace chainsplit {

class PartitionedView;

/// A database tuple: one interned TermId per column. All values are
/// ground terms, so tuple equality is memberwise integer equality.
using Tuple = std::vector<TermId>;

struct TupleHash {
  size_t operator()(const Tuple& t) const { return HashVector(t); }
};

/// A deduplicated set of same-arity tuples with lazily built, but
/// incrementally maintained, hash indexes on column subsets.
///
/// Storage layout (see docs/perf_notes.md): all rows live in one
/// contiguous arena of TermIds with stride == arity; deduplication is
/// an open-addressing table of row ids hashed directly from arena
/// memory, and every index is a flat open-addressing table whose
/// per-key posting lists are chains threaded through that index's own
/// posting pool. No per-tuple heap allocation happens on
/// Insert/Contains/Probe.
///
/// This is the storage unit of both EDB relations and the intermediate
/// relations (deltas, magic sets, buffers) of the evaluators. Insertion
/// order is preserved for deterministic output; Probe postings are in
/// ascending row order (= insertion order).
///
/// Invalidation contract (same as the historical unordered_set-based
/// implementation): views returned by row()/Probe() stay valid while
/// the relation is only read, and across inserts *into other
/// relations*; inserting into this relation or moving it may invalidate
/// them.
///
/// Thread-safety: the const read surface (Contains, row, Probe,
/// ProbeEach, EnsureIndex, telemetry) is safe for any number of
/// concurrent readers as long as no thread mutates the relation
/// (Insert/Clear/UnionWith/CompactPostings and move require exclusive
/// access). Lazy index construction is publication-safe: each index is
/// built fully under an internal mutex, then published through an
/// atomic slot, so concurrent readers can trigger index builds —
/// including builds on different column subsets — without a data race.
/// The probe/collision counters are relaxed atomics for the same
/// reason.
class Relation {
 public:
  /// A borrowed, non-owning view of one stored row. Implicitly converts
  /// to Tuple when an owning copy is needed.
  class Row {
   public:
    // No default constructor: keeps brace-initialized Insert({...})
    // calls unambiguously resolving to the Tuple overload.
    Row(const TermId* data, int size) : data_(data), size_(size) {}

    TermId operator[](size_t i) const { return data_[i]; }
    size_t size() const { return static_cast<size_t>(size_); }
    bool empty() const { return size_ == 0; }
    const TermId* data() const { return data_; }
    const TermId* begin() const { return data_; }
    const TermId* end() const { return data_ + size_; }
    operator Tuple() const { return Tuple(begin(), end()); }

    friend bool operator==(const Row& a, const Row& b) {
      return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
    }
    friend bool operator==(const Row& a, const Tuple& b) {
      return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
    }
    friend bool operator==(const Tuple& a, const Row& b) { return b == a; }

   private:
    const TermId* data_ = nullptr;
    int size_ = 0;
  };

  /// The row ids matching one Probe key: a view over an index chain in
  /// the owning index's posting pool. Iteration yields int64_t row
  /// ids in insertion order.
  ///
  /// Chains are unrolled: each pool node is a 32-byte block of up to
  /// six row ids, so consuming a chain costs one dependent pointer
  /// chase per six postings and the block's row ids land in one cache
  /// line (the subsequent arena row loads can overlap).
  class Postings {
   public:
    struct PostingBlock {
      static constexpr uint32_t kCapacity = 6;
      uint32_t rows[kCapacity];
      uint32_t count;  // used entries in this block
      uint32_t next;   // next block id, or kNull
    };

    class const_iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = int64_t;
      using difference_type = std::ptrdiff_t;
      using pointer = const int64_t*;
      using reference = int64_t;

      const_iterator() = default;
      const_iterator(const std::vector<PostingBlock>* pool, uint32_t at)
          : pool_(pool), at_(at) {}
      int64_t operator*() const {
        return static_cast<int64_t>((*pool_)[at_].rows[slot_]);
      }
      const_iterator& operator++() {
        if (++slot_ >= (*pool_)[at_].count) {
          at_ = (*pool_)[at_].next;
          slot_ = 0;
        }
        return *this;
      }
      const_iterator operator++(int) {
        const_iterator old = *this;
        ++*this;
        return old;
      }
      friend bool operator==(const const_iterator& a, const const_iterator& b) {
        return a.at_ == b.at_ && a.slot_ == b.slot_;
      }

     private:
      const std::vector<PostingBlock>* pool_ = nullptr;
      uint32_t at_ = kNull;
      uint32_t slot_ = 0;
    };

    Postings() = default;
    Postings(const std::vector<PostingBlock>* pool, uint32_t head,
             uint32_t count)
        : pool_(pool), head_(head), count_(count) {}

    const_iterator begin() const { return const_iterator(pool_, head_); }
    const_iterator end() const { return const_iterator(pool_, kNull); }
    size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }

    static constexpr uint32_t kNull = 0xFFFFFFFFu;

   private:
    const std::vector<PostingBlock>* pool_ = nullptr;
    uint32_t head_ = kNull;
    uint32_t count_ = 0;
  };

  /// Storage/telemetry counters; cumulative over the relation's
  /// lifetime (they survive Clear, like insert_attempts).
  struct Telemetry {
    int64_t probes = 0;           // Probe/ProbeEach calls
    int64_t hash_collisions = 0;  // extra open-addressing slot steps
    int64_t arena_bytes = 0;      // current arena capacity in bytes
    int64_t posting_blocks = 0;   // current posting-pool size in blocks
    int64_t compactions = 0;      // CompactPostings calls so far
  };

  /// Outcome of one CompactPostings call: how fragmented the posting
  /// pool was before and how dense it is now (storage telemetry
  /// reports these as the before/after of read-mostly compaction).
  struct CompactionStats {
    int64_t chains = 0;         // posting chains (index buckets) rewritten
    int64_t blocks_before = 0;  // pool blocks before compaction
    int64_t blocks_after = 0;   // pool blocks after (fully packed chains)
    int64_t moved_blocks = 0;   // non-adjacent chain links eliminated
  };

  /// Thread-local probe counters for concurrent readers (parallel
  /// hash join); merged back with MergeProbeCounters.
  struct ProbeCounters {
    int64_t probes = 0;
    int64_t collisions = 0;
  };

  explicit Relation(int arity) : arity_(arity) {}
  ~Relation();  // out-of-line: pviews_ holds an incomplete type here
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) noexcept;
  Relation& operator=(Relation&&) noexcept;

  int arity() const { return arity_; }
  int64_t size() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Monotonic mutation counter: bumped on every *new* row inserted and
  /// on Clear. The query service's epoch-based cache invalidation
  /// compares snapshots of this value — equal versions guarantee the
  /// relation's logical contents are unchanged.
  uint64_t version() const { return version_; }

  /// Pre-sizes the arena and the dedup table for `n` rows.
  void Reserve(int64_t n);

  /// Inserts `tuple`; returns true when it was not already present.
  bool Insert(const Tuple& tuple) {
    CS_DCHECK(static_cast<int>(tuple.size()) == arity_)
        << "arity mismatch: got " << tuple.size() << ", want " << arity_;
    return InsertRow(tuple.data());
  }
  /// Allocation-free insert of a borrowed row (e.g. another relation's).
  bool Insert(Row row) {
    CS_DCHECK(static_cast<int>(row.size()) == arity_)
        << "arity mismatch: got " << row.size() << ", want " << arity_;
    return InsertRow(row.data());
  }

  bool Contains(const Tuple& tuple) const {
    if (static_cast<int>(tuple.size()) != arity_) return false;
    return FindRow(tuple.data()) >= 0;
  }
  bool Contains(Row row) const {
    if (static_cast<int>(row.size()) != arity_) return false;
    return FindRow(row.data()) >= 0;
  }

  /// Stable row access: rows keep their index forever (until Clear).
  Row row(int64_t i) const {
    return Row(arena_.data() + i * arity_, arity_);
  }
  int64_t num_rows() const { return num_rows_; }

  /// Row ids whose values at `columns` equal `key` (same order).
  /// Builds a hash index on `columns` on first use; subsequent inserts
  /// maintain it. `columns` must be non-empty, sorted ascending.
  Postings Probe(const std::vector<int>& columns, const Tuple& key) const;

  /// Allocation-free probe: invokes `fn(int64_t row_id)` for every
  /// matching row, in insertion order. `key` holds columns.size()
  /// values. Reentrant: the callback may probe this or other relations
  /// (but must not insert into this one).
  template <typename Fn>
  void ProbeEach(const std::vector<int>& columns, const TermId* key,
                 Fn&& fn) const {
    probes_.fetch_add(1, std::memory_order_relaxed);
    const Index& index = GetOrBuildIndex(columns);
    uint32_t bucket = FindBucket(index, key);
    if (bucket == kEmpty) return;
    for (uint32_t at = index.buckets[bucket].head; at != Postings::kNull;) {
      const PostingBlock block = index.pool[at];  // by value: cheap + safe
      for (uint32_t s = 0; s < block.count; ++s) {
        fn(static_cast<int64_t>(block.rows[s]));
      }
      at = block.next;
    }
  }
  template <typename Fn>
  void ProbeEach(const std::vector<int>& columns, const Tuple& key,
                 Fn&& fn) const {
    ProbeEach(columns, key.data(), static_cast<Fn&&>(fn));
  }

  /// Forces the index on `columns` to exist. Publication-safe: any
  /// reader may call this; losers of a concurrent build race reuse the
  /// winner's index.
  void EnsureIndex(const std::vector<int>& columns) const {
    GetOrBuildIndex(columns);
  }

  /// Read-only probe for concurrent readers: requires EnsureIndex to
  /// have been called for `columns`; avoids even the relaxed atomic
  /// counter bumps by counting into `*local` instead (merge with
  /// MergeProbeCounters).
  template <typename Fn>
  void ProbeEachShared(const std::vector<int>& columns, const TermId* key,
                       ProbeCounters* local, Fn&& fn) const {
    ++local->probes;
    const Index* index = FindIndex(columns);
    CS_DCHECK(index != nullptr) << "ProbeEachShared without EnsureIndex";
    uint32_t bucket = FindBucketCounted(*index, key, &local->collisions);
    if (bucket == kEmpty) return;
    for (uint32_t at = index->buckets[bucket].head; at != Postings::kNull;) {
      const PostingBlock block = index->pool[at];  // by value, as ProbeEach
      for (uint32_t s = 0; s < block.count; ++s) {
        fn(static_cast<int64_t>(block.rows[s]));
      }
      at = block.next;
    }
  }
  void MergeProbeCounters(const ProbeCounters& local) const {
    probes_.fetch_add(local.probes, std::memory_order_relaxed);
    hash_collisions_.fetch_add(local.collisions, std::memory_order_relaxed);
  }

  /// Cached hash-partitioned views of this relation (see
  /// PartitionedView below): a small LRU keyed by (columns,
  /// partitions), at most kMaxPartitionedViews entries, so two
  /// concurrent evaluations joining this relation on different column
  /// sets (or partition counts) each keep their own view warm instead
  /// of evicting each other every probe. Built and attached by the
  /// partitioned HashJoin; an entry survives inserts but goes stale
  /// (built_version() != version()) and is rebuilt by the next join.
  /// Both calls are mutex-guarded, and entries are handed out as
  /// shared_ptr: a view evicted or replaced while another join still
  /// probes it stays alive until the last holder drops its reference
  /// — eviction can never destroy a view mid-probe.
  /// CachePartitionedView keeps the incumbent (and discards `view`)
  /// when an entry built against the same or a newer version already
  /// exists, so concurrent build-race losers reuse the winner's view.
  std::shared_ptr<PartitionedView> FindPartitionedView(
      const std::vector<int>& columns, int partitions) const;
  std::shared_ptr<PartitionedView> CachePartitionedView(
      std::unique_ptr<PartitionedView> view) const;

  /// Capacity of the partitioned-view LRU. Keys come from join column
  /// sets over small arities; a handful covers every concurrent
  /// evaluation shape seen in practice.
  static constexpr int kMaxPartitionedViews = 8;

  /// Copies every tuple of `other` into this relation; returns the
  /// number of new tuples.
  int64_t UnionWith(const Relation& other);

  /// Removes all tuples (indexes are dropped; telemetry survives).
  void Clear();

  /// Rewrites every index bucket's posting chain contiguously (blocks
  /// of one chain adjacent in the pool, fully packed), so long Probe
  /// scans become sequential reads instead of pool-order pointer
  /// chasing. Intended for read-mostly relations: inserts after
  /// compaction re-fragment the tail of the pool. Invalidates
  /// outstanding Postings views. No-op counters when no index exists.
  CompactionStats CompactPostings();

  /// Total tuples ever inserted via Insert (survives Clear); used by
  /// benchmarks as a work measure.
  int64_t insert_attempts() const { return insert_attempts_; }

  Telemetry telemetry() const {
    Telemetry t;
    t.probes = probes_.load(std::memory_order_relaxed);
    t.hash_collisions = hash_collisions_.load(std::memory_order_relaxed);
    t.arena_bytes =
        static_cast<int64_t>(arena_.capacity() * sizeof(TermId));
    const int n = num_indexes_.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
      const Index* index = index_slots_[i].load(std::memory_order_relaxed);
      t.posting_blocks += static_cast<int64_t>(index->pool.size());
    }
    t.compactions = compactions_;
    return t;
  }

 private:
  using PostingBlock = Postings::PostingBlock;
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;

  /// One column-subset index: open-addressing table of bucket ids; each
  /// bucket chains its postings through the index's own pool. A
  /// bucket's key is implicit — the indexed columns of its first row.
  /// Heap-allocated and published through an atomic slot (below), so
  /// an Index never moves after publication.
  struct Index {
    std::vector<int> columns;
    std::vector<uint32_t> slots;  // bucket ids, kEmpty = free; pow2 size
    struct Bucket {
      uint32_t head;
      uint32_t tail;
      uint32_t count;
      uint32_t rep;  // first row of the bucket; its key is the bucket key
    };
    std::vector<Bucket> buckets;
    std::vector<PostingBlock> pool;  // this index's posting blocks
  };

  const TermId* RowData(uint32_t row_id) const {
    return arena_.data() + static_cast<int64_t>(row_id) * arity_;
  }
  bool RowEquals(uint32_t row_id, const TermId* row) const {
    const TermId* stored = RowData(row_id);
    for (int c = 0; c < arity_; ++c) {
      if (stored[c] != row[c]) return false;
    }
    return true;
  }

  /// Final avalanche over the hash-combine chain so linear probing sees
  /// well-spread low bits (shared with PartitionedView, which must
  /// partition probe keys and stored rows identically).
  static size_t MixHash(size_t h) { return HashFinalize(h); }
  size_t RowHash(const TermId* row) const {
    return MixHash(HashRange(row, static_cast<size_t>(arity_)));
  }
  static size_t KeyHash(const TermId* key, size_t n) {
    return MixHash(HashRange(key, n));
  }
  size_t RowKeyHash(uint32_t row_id, const std::vector<int>& columns) const {
    const TermId* r = RowData(row_id);
    size_t seed = columns.size();
    for (int c : columns) HashCombine(&seed, static_cast<size_t>(r[c]));
    return MixHash(seed);
  }
  bool RowKeyEquals(uint32_t row_id, const std::vector<int>& columns,
                    const TermId* key) const {
    const TermId* r = RowData(row_id);
    for (size_t k = 0; k < columns.size(); ++k) {
      if (r[columns[k]] != key[k]) return false;
    }
    return true;
  }

  bool InsertRow(const TermId* row);
  /// Row id of `row` in the dedup table, or -1.
  int64_t FindRow(const TermId* row) const;
  void GrowDedup(size_t min_slots);

  Index& GetOrBuildIndex(const std::vector<int>& columns) const;
  Index* FindIndex(const std::vector<int>& columns) const;
  /// Slot whose bucket matches `key`, or kEmpty.
  uint32_t FindBucket(const Index& index, const TermId* key) const {
    int64_t collisions = 0;
    uint32_t bucket = FindBucketCounted(index, key, &collisions);
    if (collisions != 0) {
      hash_collisions_.fetch_add(collisions, std::memory_order_relaxed);
    }
    return bucket;
  }
  uint32_t FindBucketCounted(const Index& index, const TermId* key,
                             int64_t* collisions) const;
  void IndexInsert(Index* index, uint32_t row_id, int64_t* collisions) const;
  void GrowIndexSlots(Index* index) const;
  void DeleteIndexes();

  /// Upper bound on distinct column-subset indexes per relation. The
  /// slots are a fixed array so publication is a pointer store plus a
  /// release on the count — no reallocation a concurrent reader could
  /// trip over. Probed subsets come from join orders over small
  /// arities, so a handful is the realistic maximum.
  static constexpr int kMaxIndexes = 16;

  int arity_;
  int64_t num_rows_ = 0;
  uint64_t version_ = 0;
  std::vector<TermId> arena_;      // rows back-to-back, stride = arity
  std::vector<uint32_t> slots_;    // dedup table: row ids; pow2 size
  // Indexes are caches: mutating them does not change the logical
  // value, so they live behind `mutable` and may be built from const
  // readers. index_slots_[i] for i < num_indexes_ (acquire) is a fully
  // built, immutable-until-exclusive-insert Index.
  mutable std::array<std::atomic<Index*>, kMaxIndexes> index_slots_{};
  mutable std::atomic<int> num_indexes_{0};
  mutable std::mutex index_mu_;  // serializes index builds
  // LRU order: least recently used at the front, most recent at the
  // back. Find moves the hit to the back; Cache evicts the front when
  // a new key would exceed kMaxPartitionedViews.
  mutable std::vector<std::shared_ptr<PartitionedView>> pviews_;
  mutable std::mutex pview_mu_;  // guards pviews_
  int64_t insert_attempts_ = 0;
  int64_t compactions_ = 0;
  mutable std::atomic<int64_t> probes_{0};
  mutable std::atomic<int64_t> hash_collisions_{0};
};

/// A hash-partitioned, read-only view of one relation's rows keyed on
/// a column subset: partition p owns exactly the rows whose key hash
/// selects p, with an independent hash table (open-addressing slots,
/// implicit-key buckets, private unrolled posting pool) per partition
/// — the build side of the topology-aware partitioned HashJoin
/// (docs/perf_notes.md). A probe key hashes to exactly one partition,
/// so a worker that owns partition p probes a table ~1/P the size of
/// the relation-wide index, and the table stays hot in that worker's
/// cache across fixpoint iterations.
///
/// Build is two-phase so the caller controls memory placement:
/// AssignRows() (single-threaded) hashes every row and scatters row
/// ids per partition; BuildPartition(p) builds one partition's table
/// and is safe to run concurrently for distinct p — run it on the
/// worker that will probe p, so with NUMA-bound workers the table is
/// first-touched on that worker's node. Finish(version) seals the
/// view. The view borrows row ids into the relation's arena and does
/// not copy tuples; it never mutates the relation (probe telemetry
/// goes to caller-owned ProbeCounters).
class PartitionedView {
 public:
  /// Partition counts are powers of two in [1, kMaxPartitions].
  static constexpr int kMaxPartitions = 256;

  /// Per-build balance telemetry: a max/ideal ratio of 1.0 is a
  /// perfectly uniform key spread; skew >> 1 means one partition's
  /// worker does most of the probing.
  struct SkewStats {
    int partitions = 0;
    int64_t total_rows = 0;  // rows indexed across partitions
    int64_t max_rows = 0;    // largest partition
    int64_t min_rows = 0;    // smallest partition
    double skew() const {
      if (total_rows <= 0 || partitions <= 0) return 1.0;
      return static_cast<double>(max_rows) * partitions / total_rows;
    }
  };

  PartitionedView(std::vector<int> columns, int num_partitions);

  int num_partitions() const { return static_cast<int>(parts_.size()); }
  const std::vector<int>& columns() const { return columns_; }

  /// Relation::version() this view was built against; stale when the
  /// relation has moved past it.
  uint64_t built_version() const { return built_version_; }
  bool stale(const Relation& rel) const {
    return built_version_ != rel.version();
  }

  /// The full key hash (shared with Relation's index hashing) and the
  /// partition it selects. Partition bits come from the high half of
  /// the finalized hash; slot indexes use the low bits, so the two
  /// never alias.
  static size_t KeyHash(const TermId* key, size_t n) {
    return HashFinalize(HashRange(key, n));
  }
  int PartitionOfHash(size_t hash) const {
    return static_cast<int>((hash >> 32) & (parts_.size() - 1));
  }

  /// Phase 1: hashes every row's key columns and scatters row ids into
  /// per-partition lists (ascending row order — posting order, which
  /// the deterministic merge depends on).
  void AssignRows(const Relation& rel);

  /// Phase 2: builds partition p's hash table. Concurrency-safe across
  /// distinct p after AssignRows; touches only partition-local memory.
  void BuildPartition(const Relation& rel, int p);

  /// Phase 3: seals the view against rel.version() and drops the
  /// scratch row-hash cache.
  void Finish(const Relation& rel);

  int64_t partition_rows(int p) const {
    return static_cast<int64_t>(parts_[p].row_ids.size());
  }
  SkewStats skew() const;

  /// Probes partition p for `key` whose full hash is `hash` (from
  /// KeyHash; PartitionOfHash(hash) must equal p). Invokes
  /// `fn(int64_t row_id)` in insertion order, counting into `*local`.
  template <typename Fn>
  void ProbeEachHashed(const Relation& rel, int p, const TermId* key,
                       size_t hash, Relation::ProbeCounters* local,
                       Fn&& fn) const {
    ++local->probes;
    const Part& part = parts_[p];
    if (part.slots.empty()) return;
    const size_t mask = part.slots.size() - 1;
    size_t idx = hash & mask;
    while (part.slots[idx] != kEmpty) {
      const Bucket& bucket = part.buckets[part.slots[idx]];
      if (RowKeyEquals(rel, bucket.rep, key)) {
        for (uint32_t at = bucket.head; at != Relation::Postings::kNull;
             at = part.pool[at].next) {
          const PostingBlock& block = part.pool[at];
          for (uint32_t s = 0; s < block.count; ++s) {
            fn(static_cast<int64_t>(block.rows[s]));
          }
        }
        return;
      }
      ++local->collisions;
      idx = (idx + 1) & mask;
    }
  }

 private:
  using PostingBlock = Relation::Postings::PostingBlock;
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;

  struct Bucket {
    uint32_t head;
    uint32_t tail;
    uint32_t count;
    uint32_t rep;  // first row of the bucket; its key is the bucket key
  };

  /// One partition's private table. Everything here is allocated
  /// inside BuildPartition (except row_ids, scattered by AssignRows),
  /// so it is first-touched by the building worker.
  struct Part {
    std::vector<uint32_t> row_ids;  // ascending row ids of this partition
    std::vector<uint32_t> slots;    // open addressing: bucket ids
    std::vector<Bucket> buckets;
    std::vector<PostingBlock> pool;
  };

  bool RowKeyEquals(const Relation& rel, uint32_t row_id,
                    const TermId* key) const {
    const TermId* r = rel.row(static_cast<int64_t>(row_id)).data();
    for (size_t k = 0; k < columns_.size(); ++k) {
      if (r[columns_[k]] != key[k]) return false;
    }
    return true;
  }

  std::vector<int> columns_;
  uint64_t built_version_ = 0;
  std::vector<Part> parts_;
  std::vector<size_t> row_hashes_;  // scratch between phases 1 and 2
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_REL_RELATION_H_
