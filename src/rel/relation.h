#ifndef CHAINSPLIT_REL_RELATION_H_
#define CHAINSPLIT_REL_RELATION_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "term/term.h"

namespace chainsplit {

/// A database tuple: one interned TermId per column. All values are
/// ground terms, so tuple equality is memberwise integer equality.
using Tuple = std::vector<TermId>;

struct TupleHash {
  size_t operator()(const Tuple& t) const { return HashVector(t); }
};

/// A deduplicated set of same-arity tuples with lazily built, but
/// incrementally maintained, hash indexes on column subsets.
///
/// This is the storage unit of both EDB relations and the intermediate
/// relations (deltas, magic sets, buffers) of the evaluators. Insertion
/// order is preserved for deterministic output.
class Relation {
 public:
  explicit Relation(int arity) : arity_(arity) {}
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  int arity() const { return arity_; }
  int64_t size() const { return static_cast<int64_t>(rows_.size()); }
  bool empty() const { return rows_.empty(); }

  /// Inserts `tuple`; returns true when it was not already present.
  bool Insert(const Tuple& tuple);

  bool Contains(const Tuple& tuple) const {
    return set_.find(tuple) != set_.end();
  }

  /// Stable row access: rows keep their index forever.
  const Tuple& row(int64_t i) const { return *rows_[i]; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  /// Row indexes whose values at `columns` equal `key` (same order).
  /// Builds a hash index on `columns` on first use; subsequent inserts
  /// maintain it. `columns` must be non-empty, strictly increasing.
  const std::vector<int64_t>& Probe(const std::vector<int>& columns,
                                    const Tuple& key) const;

  /// Copies every tuple of `other` into this relation; returns the
  /// number of new tuples.
  int64_t UnionWith(const Relation& other);

  /// Removes all tuples (indexes are dropped).
  void Clear();

  /// Total tuples ever inserted via Insert (survives Clear); used by
  /// benchmarks as a work measure.
  int64_t insert_attempts() const { return insert_attempts_; }

 private:
  struct Index {
    std::vector<int> columns;
    std::unordered_map<Tuple, std::vector<int64_t>, TupleHash> map;
  };

  Index& GetOrBuildIndex(const std::vector<int>& columns) const;
  static Tuple KeyAt(const Tuple& tuple, const std::vector<int>& columns);

  int arity_;
  std::unordered_set<Tuple, TupleHash> set_;
  std::vector<const Tuple*> rows_;
  // Indexes are caches: mutating them does not change the logical value.
  mutable std::vector<Index> indexes_;
  int64_t insert_attempts_ = 0;

  static const std::vector<int64_t> kEmptyPostings;
};

}  // namespace chainsplit

#endif  // CHAINSPLIT_REL_RELATION_H_
