#include "rel/csv.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace chainsplit {
namespace {

bool IsIntegerField(std::string_view field) {
  if (field.empty()) return false;
  size_t start = field[0] == '-' ? 1 : 0;
  if (start == field.size()) return false;
  for (size_t i = start; i < field.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(field[i]))) return false;
  }
  return true;
}

}  // namespace

StatusOr<std::vector<Tuple>> ParseCsvTuples(Database* db, PredId pred,
                                            std::string_view text,
                                            const CsvOptions& options) {
  const int arity = db->program().preds().arity(pred);
  TermPool& pool = db->pool();

  std::vector<Tuple> staged;
  int line_number = 0;
  for (std::string_view line_raw : StrSplit(text, '\n')) {
    ++line_number;
    std::string line(line_raw);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = StrSplit(line, options.delimiter);
    if (static_cast<int>(fields.size()) != arity) {
      return InvalidArgumentError(
          StrCat("line ", line_number, ": expected ", arity, " fields for ",
                 db->program().preds().Display(pred), ", got ",
                 fields.size()));
    }
    Tuple tuple;
    tuple.reserve(fields.size());
    for (const std::string& field : fields) {
      if (IsIntegerField(field)) {
        tuple.push_back(pool.MakeInt(std::stoll(field)));
      } else {
        tuple.push_back(pool.MakeSymbol(field));
      }
    }
    staged.push_back(std::move(tuple));
  }
  return staged;
}

StatusOr<int64_t> LoadFactsFromString(Database* db, PredId pred,
                                      std::string_view text,
                                      const CsvOptions& options) {
  // Stage first, insert only after the whole text validated: a parse
  // error anywhere leaves the relation exactly as it was.
  CS_ASSIGN_OR_RETURN(std::vector<Tuple> staged,
                      ParseCsvTuples(db, pred, text, options));
  Relation* relation = db->GetOrCreateRelation(pred);
  relation->Reserve(relation->num_rows() +
                    static_cast<int64_t>(staged.size()));
  int64_t inserted = 0;
  for (const Tuple& tuple : staged) {
    if (relation->Insert(tuple)) ++inserted;
  }
  return inserted;
}

StatusOr<int64_t> LoadFactsFromFile(Database* db, PredId pred,
                                    std::string_view path,
                                    const CsvOptions& options) {
  std::ifstream in{std::string(path)};
  if (!in) {
    return NotFoundError(StrCat("cannot open ", path));
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return LoadFactsFromString(db, pred, buffer.str(), options);
}

StatusOr<std::string> DumpFactsToString(const Database& db, PredId pred,
                                        const CsvOptions& options) {
  const Relation* relation = db.GetRelation(pred);
  std::string out;
  if (relation == nullptr) return out;
  const TermPool& pool = db.pool();
  for (int64_t i = 0; i < relation->num_rows(); ++i) {
    Relation::Row t = relation->row(i);
    for (size_t c = 0; c < t.size(); ++c) {
      if (c > 0) out.push_back(options.delimiter);
      out += pool.ToString(t[c]);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace chainsplit
