#ifndef CHAINSPLIT_REL_CSV_H_
#define CHAINSPLIT_REL_CSV_H_

#include <string_view>

#include "common/status.h"
#include "rel/catalog.h"

namespace chainsplit {

/// Bulk fact loading from delimiter-separated text, the practical path
/// for EDB relations too large to write as `p(a, b).` facts.
///
/// Each line is one tuple; fields are split at `delimiter`. A field
/// consisting of an optional '-' and digits is loaded as an integer
/// term; anything else as a constant symbol. Empty lines and lines
/// starting with '#' are skipped. Every line must have exactly
/// `arity(pred)` fields.
struct CsvOptions {
  char delimiter = ',';
};

/// Parses every line of `text` into tuples for `pred` without touching
/// the relation (interned terms are the only side effect, and interning
/// is semantically inert). This is the staging half of a failure-atomic
/// load: the caller inserts the staged tuples only after the *whole*
/// file validated, so a malformed line 10,000 never leaves lines
/// 1..9,999 behind.
StatusOr<std::vector<Tuple>> ParseCsvTuples(Database* db, PredId pred,
                                            std::string_view text,
                                            const CsvOptions& options = {});

/// Loads `text` into the relation of `pred` in `*db`. Returns the
/// number of *new* tuples inserted. Failure-atomic: on any parse error
/// the relation is untouched (stage via ParseCsvTuples, then insert).
StatusOr<int64_t> LoadFactsFromString(Database* db, PredId pred,
                                      std::string_view text,
                                      const CsvOptions& options = {});

/// Loads the file at `path` into the relation of `pred`.
StatusOr<int64_t> LoadFactsFromFile(Database* db, PredId pred,
                                    std::string_view path,
                                    const CsvOptions& options = {});

/// Writes the relation of `pred` as delimiter-separated text (inverse
/// of LoadFactsFromString for symbol/int relations).
StatusOr<std::string> DumpFactsToString(const Database& db, PredId pred,
                                        const CsvOptions& options = {});

}  // namespace chainsplit

#endif  // CHAINSPLIT_REL_CSV_H_
